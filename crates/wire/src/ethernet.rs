//! Ethernet II frames, MAC addresses, and 802.1Q VLAN tags.

use core::fmt;

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Locally-administered unicast address derived from a small host id,
    /// in the style of the smoltcp examples (02-00-00-00-00-xx).
    pub fn local(id: u8) -> MacAddr {
        MacAddr([0x02, 0, 0, 0, 0, id])
    }

    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 1 != 0
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}
impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values we speak.
pub mod ethertype {
    pub const IPV4: u16 = 0x0800;
    pub const ARP: u16 = 0x0806;
    pub const VLAN: u16 = 0x8100;
}

pub const ETH_HDR_LEN: usize = 14;
pub const VLAN_TAG_LEN: usize = 4;

/// View over an Ethernet II frame.
pub struct EthFrame<T>(pub T);

impl<T: AsRef<[u8]>> EthFrame<T> {
    /// Wrap a buffer, validating the minimum length.
    pub fn new_checked(buf: T) -> Result<Self, crate::WireError> {
        if buf.as_ref().len() < ETH_HDR_LEN {
            return Err(crate::WireError::Truncated("ethernet header"));
        }
        Ok(EthFrame(buf))
    }

    fn b(&self) -> &[u8] {
        self.0.as_ref()
    }

    pub fn dst(&self) -> MacAddr {
        MacAddr(self.b()[0..6].try_into().unwrap())
    }
    pub fn src(&self) -> MacAddr {
        MacAddr(self.b()[6..12].try_into().unwrap())
    }
    pub fn ethertype(&self) -> u16 {
        u16::from_be_bytes([self.b()[12], self.b()[13]])
    }
    pub fn payload(&self) -> &[u8] {
        &self.b()[ETH_HDR_LEN..]
    }
    /// If the frame carries an 802.1Q tag, its VLAN id (low 12 bits of TCI).
    pub fn vlan_id(&self) -> Option<u16> {
        if self.ethertype() == ethertype::VLAN && self.b().len() >= ETH_HDR_LEN + VLAN_TAG_LEN {
            Some(u16::from_be_bytes([self.b()[14], self.b()[15]]) & 0x0fff)
        } else {
            None
        }
    }
    /// EtherType of the encapsulated protocol, looking through one VLAN tag.
    pub fn inner_ethertype(&self) -> u16 {
        if self.vlan_id().is_some() {
            u16::from_be_bytes([self.b()[16], self.b()[17]])
        } else {
            self.ethertype()
        }
    }
    /// Payload after any VLAN tag.
    pub fn inner_payload(&self) -> &[u8] {
        if self.vlan_id().is_some() {
            &self.b()[ETH_HDR_LEN + VLAN_TAG_LEN..]
        } else {
            self.payload()
        }
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthFrame<T> {
    fn m(&mut self) -> &mut [u8] {
        self.0.as_mut()
    }

    pub fn set_dst(&mut self, mac: MacAddr) {
        self.m()[0..6].copy_from_slice(&mac.0);
    }
    pub fn set_src(&mut self, mac: MacAddr) {
        self.m()[6..12].copy_from_slice(&mac.0);
    }
    pub fn set_ethertype(&mut self, et: u16) {
        self.m()[12..14].copy_from_slice(&et.to_be_bytes());
    }
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.m()[ETH_HDR_LEN..]
    }
}

/// Remove an 802.1Q tag in place (the `vlan-strip` XDP module of Table 2).
/// Returns the stripped VLAN id, or `None` if the frame was untagged.
pub fn strip_vlan(frame: &mut Vec<u8>) -> Option<u16> {
    let view = EthFrame::new_checked(frame.as_slice()).ok()?;
    let vid = view.vlan_id()?;
    let inner_et = [frame[16], frame[17]];
    frame.copy_within(ETH_HDR_LEN + VLAN_TAG_LEN.., ETH_HDR_LEN);
    frame[12..14].copy_from_slice(&inner_et);
    frame.truncate(frame.len() - VLAN_TAG_LEN);
    Some(vid)
}

/// Insert an 802.1Q tag in place (used by tests and workload generators).
pub fn insert_vlan(frame: &mut Vec<u8>, vid: u16) {
    assert!(frame.len() >= ETH_HDR_LEN);
    let inner_et = [frame[12], frame[13]];
    frame.splice(12..14, [0u8; 0]);
    let tci = vid & 0x0fff;
    let tag = [
        (ethertype::VLAN >> 8) as u8,
        ethertype::VLAN as u8,
        (tci >> 8) as u8,
        tci as u8,
        inner_et[0],
        inner_et[1],
    ];
    for (i, b) in tag.iter().enumerate() {
        frame.insert(12 + i, *b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Vec<u8> {
        let mut f = vec![0u8; ETH_HDR_LEN + 4];
        let mut v = EthFrame(&mut f[..]);
        v.set_dst(MacAddr::local(1));
        v.set_src(MacAddr::local(2));
        v.set_ethertype(ethertype::IPV4);
        f[14..18].copy_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        f
    }

    #[test]
    fn field_roundtrip() {
        let f = frame();
        let v = EthFrame::new_checked(&f[..]).unwrap();
        assert_eq!(v.dst(), MacAddr::local(1));
        assert_eq!(v.src(), MacAddr::local(2));
        assert_eq!(v.ethertype(), ethertype::IPV4);
        assert_eq!(v.payload(), &[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(v.vlan_id(), None);
        assert_eq!(v.inner_ethertype(), ethertype::IPV4);
    }

    #[test]
    fn too_short_rejected() {
        assert!(EthFrame::new_checked(&[0u8; 13][..]).is_err());
        assert!(EthFrame::new_checked(&[0u8; 14][..]).is_ok());
    }

    #[test]
    fn vlan_insert_and_strip_roundtrip() {
        let orig = frame();
        let mut f = orig.clone();
        insert_vlan(&mut f, 0x123);
        let v = EthFrame::new_checked(&f[..]).unwrap();
        assert_eq!(v.ethertype(), ethertype::VLAN);
        assert_eq!(v.vlan_id(), Some(0x123));
        assert_eq!(v.inner_ethertype(), ethertype::IPV4);
        assert_eq!(v.inner_payload(), &[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(f.len(), orig.len() + VLAN_TAG_LEN);

        let vid = strip_vlan(&mut f);
        assert_eq!(vid, Some(0x123));
        assert_eq!(f, orig);
        // stripping an untagged frame is a no-op
        assert_eq!(strip_vlan(&mut f), None);
        assert_eq!(f, orig);
    }

    #[test]
    fn mac_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::local(3).is_multicast());
        assert_eq!(format!("{}", MacAddr::local(0x1f)), "02:00:00:00:00:1f");
    }
}
