//! CRC-32 (IEEE 802.3 polynomial, reflected).
//!
//! The NFP-4000 FPCs have CRC acceleration (§2.3); FlexTOE's pre-processor
//! uses it to hash a segment's 4-tuple for the active-connection lookup and
//! flow-group steering (§4.1). We implement the same CRC-32 so flow-group
//! assignment is stable and testable.

const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Streaming CRC-32 (init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`).
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    #[inline]
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = TABLE[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    #[inline]
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The canonical CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn sensitive_to_each_byte() {
        let a = crc32(&[1, 2, 3, 4]);
        for i in 0..4 {
            let mut v = [1u8, 2, 3, 4];
            v[i] ^= 0x80;
            assert_ne!(crc32(&v), a, "flip at {i} not detected");
        }
    }
}
