//! libpcap capture-file writer.
//!
//! Backs the `tcpdump`-style traffic logging extension of Table 2 and the
//! `packet_capture` example; output opens in Wireshark.

const MAGIC: u32 = 0xa1b2_c3d4; // big/little detected by readers
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
const LINKTYPE_ETHERNET: u32 = 1;

/// An in-memory pcap capture. All writes are infallible; callers persist
/// the buffer (or not) at the end of a run.
#[derive(Clone, Debug)]
pub struct PcapWriter {
    buf: Vec<u8>,
    snaplen: u32,
    packets: u64,
}

impl PcapWriter {
    pub fn new() -> PcapWriter {
        Self::with_snaplen(65535)
    }

    pub fn with_snaplen(snaplen: u32) -> PcapWriter {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&VERSION_MAJOR.to_le_bytes());
        buf.extend_from_slice(&VERSION_MINOR.to_le_bytes());
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&snaplen.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        PcapWriter {
            buf,
            snaplen,
            packets: 0,
        }
    }

    /// Append one frame captured at `at_us` microseconds of simulated time.
    /// (Takes a raw count, not a `flextoe_sim::Time`, so the wire crate
    /// stays at the bottom of the dependency graph.)
    pub fn record(&mut self, at_us: u64, frame: &[u8]) {
        let usec_total = at_us;
        let sec = (usec_total / 1_000_000) as u32;
        let usec = (usec_total % 1_000_000) as u32;
        let incl = (frame.len() as u32).min(self.snaplen);
        self.buf.extend_from_slice(&sec.to_le_bytes());
        self.buf.extend_from_slice(&usec.to_le_bytes());
        self.buf.extend_from_slice(&incl.to_le_bytes());
        self.buf
            .extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&frame[..incl as usize]);
        self.packets += 1;
    }

    pub fn packets(&self) -> u64 {
        self.packets
    }

    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for PcapWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// A parsed pcap record (for tests and the capture example's summary).
#[derive(Debug, PartialEq, Eq)]
pub struct PcapRecord {
    pub sec: u32,
    pub usec: u32,
    pub orig_len: u32,
    pub data: Vec<u8>,
}

/// Parse a capture produced by [`PcapWriter`] (little-endian only).
pub fn parse(bytes: &[u8]) -> Result<Vec<PcapRecord>, crate::WireError> {
    if bytes.len() < 24 {
        return Err(crate::WireError::Truncated("pcap global header"));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(crate::WireError::Malformed("pcap magic"));
    }
    let mut out = Vec::new();
    let mut off = 24;
    while off < bytes.len() {
        if bytes.len() - off < 16 {
            return Err(crate::WireError::Truncated("pcap record header"));
        }
        let sec = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let usec = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        let incl = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
        let orig_len = u32::from_le_bytes(bytes[off + 12..off + 16].try_into().unwrap());
        off += 16;
        if bytes.len() - off < incl {
            return Err(crate::WireError::Truncated("pcap record data"));
        }
        out.push(PcapRecord {
            sec,
            usec,
            orig_len,
            data: bytes[off..off + incl].to_vec(),
        });
        off += incl;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_two_packets() {
        let mut w = PcapWriter::new();
        w.record(1_500_000, &[1, 2, 3]);
        w.record(2_000_001, &[4, 5]);
        assert_eq!(w.packets(), 2);
        let recs = parse(w.bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].sec, 1);
        assert_eq!(recs[0].usec, 500_000);
        assert_eq!(recs[0].data, vec![1, 2, 3]);
        assert_eq!(recs[1].sec, 2);
        assert_eq!(recs[1].usec, 1);
        assert_eq!(recs[1].orig_len, 2);
    }

    #[test]
    fn snaplen_truncates_but_keeps_orig_len() {
        let mut w = PcapWriter::with_snaplen(4);
        w.record(0, &[9; 100]);
        let recs = parse(w.bytes()).unwrap();
        assert_eq!(recs[0].data.len(), 4);
        assert_eq!(recs[0].orig_len, 100);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&[0u8; 10]).is_err());
        let mut w = PcapWriter::new();
        w.record(0, &[1]);
        let mut b = w.into_bytes();
        b[0] = 0; // break magic
        assert!(parse(&b).is_err());
    }

    #[test]
    fn empty_capture_has_just_header() {
        let w = PcapWriter::new();
        assert_eq!(w.bytes().len(), 24);
        assert!(parse(w.bytes()).unwrap().is_empty());
    }
}
