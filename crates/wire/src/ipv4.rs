//! IPv4 addresses and header view (no options: IHL = 5).

use core::fmt;

use crate::checksum;

/// An IPv4 address stored as a native-endian `u32` for cheap hashing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Ip4(pub u32);

impl Ip4 {
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ip4 {
        Ip4(u32::from_be_bytes([a, b, c, d]))
    }
    /// Test-network address 10.0.0.`id`.
    pub const fn host(id: u8) -> Ip4 {
        Ip4::new(10, 0, 0, id)
    }
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Debug for Ip4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}
impl fmt::Display for Ip4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// IP protocol numbers.
pub mod protocol {
    pub const ICMP: u8 = 1;
    pub const TCP: u8 = 6;
    pub const UDP: u8 = 17;
}

/// ECN codepoints (RFC 3168), the low two bits of the TOS byte.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Ecn {
    #[default]
    NotEct = 0b00,
    Ect1 = 0b01,
    Ect0 = 0b10,
    Ce = 0b11,
}

impl Ecn {
    pub fn from_bits(b: u8) -> Ecn {
        match b & 0b11 {
            0b00 => Ecn::NotEct,
            0b01 => Ecn::Ect1,
            0b10 => Ecn::Ect0,
            _ => Ecn::Ce,
        }
    }
    pub fn is_ce(self) -> bool {
        self == Ecn::Ce
    }
}

pub const IPV4_HDR_LEN: usize = 20;

/// View over an IPv4 header + payload.
pub struct Ipv4Packet<T>(pub T);

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    pub fn new_checked(buf: T) -> Result<Self, crate::WireError> {
        let b = buf.as_ref();
        if b.len() < IPV4_HDR_LEN {
            return Err(crate::WireError::Truncated("ipv4 header"));
        }
        let p = Ipv4Packet(buf);
        if p.version() != 4 {
            return Err(crate::WireError::Malformed("ip version"));
        }
        if p.ihl() != 5 {
            return Err(crate::WireError::Unsupported("ipv4 options"));
        }
        if (p.total_len() as usize) > p.0.as_ref().len() {
            return Err(crate::WireError::Truncated("ipv4 total length"));
        }
        Ok(p)
    }

    fn b(&self) -> &[u8] {
        self.0.as_ref()
    }

    pub fn version(&self) -> u8 {
        self.b()[0] >> 4
    }
    pub fn ihl(&self) -> u8 {
        self.b()[0] & 0x0f
    }
    pub fn dscp(&self) -> u8 {
        self.b()[1] >> 2
    }
    pub fn ecn(&self) -> Ecn {
        Ecn::from_bits(self.b()[1])
    }
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }
    pub fn ttl(&self) -> u8 {
        self.b()[8]
    }
    pub fn protocol(&self) -> u8 {
        self.b()[9]
    }
    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes([self.b()[10], self.b()[11]])
    }
    pub fn src(&self) -> Ip4 {
        Ip4(u32::from_be_bytes(self.b()[12..16].try_into().unwrap()))
    }
    pub fn dst(&self) -> Ip4 {
        Ip4(u32::from_be_bytes(self.b()[16..20].try_into().unwrap()))
    }
    /// Payload as delimited by `total_len` (ignores any trailing padding).
    pub fn payload(&self) -> &[u8] {
        &self.b()[IPV4_HDR_LEN..self.total_len() as usize]
    }
    pub fn verify_checksum(&self) -> bool {
        checksum::is_valid(&self.b()[..IPV4_HDR_LEN])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    fn m(&mut self) -> &mut [u8] {
        self.0.as_mut()
    }

    pub fn set_version_ihl(&mut self) {
        self.m()[0] = 0x45;
    }
    pub fn set_ecn(&mut self, ecn: Ecn) {
        let tos = self.m()[1] & !0b11;
        self.m()[1] = tos | ecn as u8;
    }
    pub fn set_dscp(&mut self, dscp: u8) {
        let ecn = self.m()[1] & 0b11;
        self.m()[1] = (dscp << 2) | ecn;
    }
    pub fn set_total_len(&mut self, len: u16) {
        self.m()[2..4].copy_from_slice(&len.to_be_bytes());
    }
    pub fn set_ident(&mut self, id: u16) {
        self.m()[4..6].copy_from_slice(&id.to_be_bytes());
    }
    pub fn set_flags_df(&mut self) {
        self.m()[6] = 0x40;
        self.m()[7] = 0;
    }
    pub fn set_ttl(&mut self, ttl: u8) {
        self.m()[8] = ttl;
    }
    pub fn set_protocol(&mut self, p: u8) {
        self.m()[9] = p;
    }
    pub fn set_src(&mut self, ip: Ip4) {
        self.m()[12..16].copy_from_slice(&ip.octets());
    }
    pub fn set_dst(&mut self, ip: Ip4) {
        self.m()[16..20].copy_from_slice(&ip.octets());
    }
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.m()[IPV4_HDR_LEN..]
    }
    /// Zero, compute, and store the header checksum.
    pub fn fill_checksum(&mut self) {
        self.m()[10] = 0;
        self.m()[11] = 0;
        let ck = checksum::checksum(&self.b()[..IPV4_HDR_LEN]);
        self.m()[10..12].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(payload_len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; IPV4_HDR_LEN + payload_len];
        let mut p = Ipv4Packet(&mut buf[..]);
        p.set_version_ihl();
        p.set_total_len((IPV4_HDR_LEN + payload_len) as u16);
        p.set_ident(0x1c46);
        p.set_flags_df();
        p.set_ttl(64);
        p.set_protocol(protocol::TCP);
        p.set_src(Ip4::host(1));
        p.set_dst(Ip4::host(2));
        p.fill_checksum();
        buf
    }

    #[test]
    fn roundtrip_and_checksum() {
        let buf = packet(8);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.version(), 4);
        assert_eq!(p.ihl(), 5);
        assert_eq!(p.total_len() as usize, 28);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.protocol(), protocol::TCP);
        assert_eq!(p.src(), Ip4::host(1));
        assert_eq!(p.dst(), Ip4::host(2));
        assert!(p.verify_checksum());
        assert_eq!(p.payload().len(), 8);
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let mut buf = packet(0);
        buf[8] ^= 0xff; // ttl
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn rejects_bad_version_and_short() {
        let mut buf = packet(0);
        buf[0] = 0x65;
        assert!(Ipv4Packet::new_checked(&buf[..]).is_err());
        assert!(Ipv4Packet::new_checked(&buf[..10]).is_err());
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut buf = packet(4);
        buf[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert!(Ipv4Packet::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn ecn_codepoints() {
        let mut buf = packet(0);
        let mut p = Ipv4Packet(&mut buf[..]);
        assert_eq!(p.ecn(), Ecn::NotEct);
        p.set_ecn(Ecn::Ect0);
        assert_eq!(p.ecn(), Ecn::Ect0);
        p.set_ecn(Ecn::Ce);
        assert!(p.ecn().is_ce());
        // DSCP survives ECN updates
        p.set_dscp(46);
        p.set_ecn(Ecn::Ect0);
        assert_eq!(p.dscp(), 46);
    }

    #[test]
    fn payload_ignores_padding() {
        // Ethernet pads short frames; total_len delimits the real payload.
        let mut buf = packet(4);
        buf.extend_from_slice(&[0xaa; 10]);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.payload().len(), 4);
    }

    #[test]
    fn ip_display() {
        assert_eq!(format!("{}", Ip4::host(7)), "10.0.0.7");
        assert_eq!(format!("{}", Ip4::new(192, 168, 69, 100)), "192.168.69.100");
    }
}
