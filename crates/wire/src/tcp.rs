//! TCP header view, flags, options, and sequence-number arithmetic.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use crate::checksum;
use crate::ipv4::Ip4;

/// TCP flag bits (byte 13 of the header).
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    pub const FIN: TcpFlags = TcpFlags(0x01);
    pub const SYN: TcpFlags = TcpFlags(0x02);
    pub const RST: TcpFlags = TcpFlags(0x04);
    pub const PSH: TcpFlags = TcpFlags(0x08);
    pub const ACK: TcpFlags = TcpFlags(0x10);
    pub const URG: TcpFlags = TcpFlags(0x20);
    pub const ECE: TcpFlags = TcpFlags(0x40);
    pub const CWR: TcpFlags = TcpFlags(0x80);

    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }
    pub fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
    pub fn fin(self) -> bool {
        self.contains(Self::FIN)
    }
    pub fn syn(self) -> bool {
        self.contains(Self::SYN)
    }
    pub fn rst(self) -> bool {
        self.contains(Self::RST)
    }
    pub fn psh(self) -> bool {
        self.contains(Self::PSH)
    }
    pub fn ack(self) -> bool {
        self.contains(Self::ACK)
    }
    pub fn ece(self) -> bool {
        self.contains(Self::ECE)
    }
    pub fn cwr(self) -> bool {
        self.contains(Self::CWR)
    }

    /// FlexTOE's data-path filter (§3.1.3, footnote 2): data-path segments
    /// have any of ACK, FIN, PSH, ECE, CWR and none of SYN/RST/URG;
    /// everything else is redirected to the control plane.
    pub fn is_datapath(self) -> bool {
        self.intersects(TcpFlags(0x01 | 0x08 | 0x10 | 0x40 | 0x80))
            && !self.intersects(TcpFlags(0x02 | 0x04 | 0x20))
    }
}

impl core::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.union(rhs)
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Self::FIN, "FIN"),
            (Self::SYN, "SYN"),
            (Self::RST, "RST"),
            (Self::PSH, "PSH"),
            (Self::ACK, "ACK"),
            (Self::URG, "URG"),
            (Self::ECE, "ECE"),
            (Self::CWR, "CWR"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

/// A TCP sequence number with wrapping modular comparison (RFC 793 §3.3).
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// `self < other` in sequence space.
    #[inline]
    pub fn before(self, other: SeqNum) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }
    #[inline]
    pub fn before_eq(self, other: SeqNum) -> bool {
        !other.before(self)
    }
    #[inline]
    pub fn after(self, other: SeqNum) -> bool {
        other.before(self)
    }
    #[inline]
    pub fn after_eq(self, other: SeqNum) -> bool {
        !self.before(other)
    }
    /// Distance `self - earlier` (callers must know the order).
    #[inline]
    pub fn diff(self, earlier: SeqNum) -> u32 {
        self.0.wrapping_sub(earlier.0)
    }
    #[inline]
    pub fn min(self, other: SeqNum) -> SeqNum {
        if self.before(other) {
            self
        } else {
            other
        }
    }
    #[inline]
    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.after(other) {
            self
        } else {
            other
        }
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    #[inline]
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}
impl AddAssign<u32> for SeqNum {
    #[inline]
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}
impl Sub<SeqNum> for SeqNum {
    type Output = u32;
    #[inline]
    fn sub(self, rhs: SeqNum) -> u32 {
        self.diff(rhs)
    }
}
impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}
impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

pub const TCP_HDR_LEN: usize = 20;
/// NOP, NOP, Timestamp(10) — the layout every major stack emits.
pub const TCP_TS_OPT_LEN: usize = 12;

/// Parsed TCP options (the subset the paper's stacks negotiate).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpOptions {
    pub mss: Option<u16>,
    pub window_scale: Option<u8>,
    pub sack_permitted: bool,
    /// (TSval, TSecr) — FlexTOE stamps these for RTT estimation (§3.1.3).
    pub timestamp: Option<(u32, u32)>,
}

impl TcpOptions {
    /// Encoded length, padded to a multiple of 4.
    pub fn len(&self) -> usize {
        let mut n = 0usize;
        if self.mss.is_some() {
            n += 4;
        }
        if self.window_scale.is_some() {
            n += 3;
        }
        if self.sack_permitted {
            n += 2;
        }
        if self.timestamp.is_some() {
            n += 12; // NOP NOP TS
        }
        n.div_ceil(4) * 4
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn emit(&self, buf: &mut [u8]) {
        let mut i = 0;
        if let Some(mss) = self.mss {
            buf[i] = 2;
            buf[i + 1] = 4;
            buf[i + 2..i + 4].copy_from_slice(&mss.to_be_bytes());
            i += 4;
        }
        if let Some(ws) = self.window_scale {
            buf[i] = 3;
            buf[i + 1] = 3;
            buf[i + 2] = ws;
            i += 3;
        }
        if self.sack_permitted {
            buf[i] = 4;
            buf[i + 1] = 2;
            i += 2;
        }
        if let Some((tsval, tsecr)) = self.timestamp {
            buf[i] = 1; // NOP
            buf[i + 1] = 1; // NOP
            buf[i + 2] = 8;
            buf[i + 3] = 10;
            buf[i + 4..i + 8].copy_from_slice(&tsval.to_be_bytes());
            buf[i + 8..i + 12].copy_from_slice(&tsecr.to_be_bytes());
            i += 12;
        }
        // pad with END-of-options then zeros
        for b in buf[i..].iter_mut() {
            *b = 0;
        }
    }

    pub fn parse(mut buf: &[u8]) -> Result<TcpOptions, crate::WireError> {
        let mut opts = TcpOptions::default();
        while !buf.is_empty() {
            match buf[0] {
                0 => break, // end of options
                1 => buf = &buf[1..],
                kind => {
                    if buf.len() < 2 {
                        return Err(crate::WireError::Truncated("tcp option"));
                    }
                    let len = buf[1] as usize;
                    if len < 2 || len > buf.len() {
                        return Err(crate::WireError::Malformed("tcp option length"));
                    }
                    match (kind, len) {
                        (2, 4) => opts.mss = Some(u16::from_be_bytes([buf[2], buf[3]])),
                        (3, 3) => opts.window_scale = Some(buf[2]),
                        (4, 2) => opts.sack_permitted = true,
                        (8, 10) => {
                            opts.timestamp = Some((
                                u32::from_be_bytes(buf[2..6].try_into().unwrap()),
                                u32::from_be_bytes(buf[6..10].try_into().unwrap()),
                            ))
                        }
                        _ => {} // unknown option: skip
                    }
                    buf = &buf[len..];
                }
            }
        }
        Ok(opts)
    }
}

/// View over a TCP header + payload (the TCP portion of an IP payload).
pub struct TcpPacket<T>(pub T);

impl<T: AsRef<[u8]>> TcpPacket<T> {
    pub fn new_checked(buf: T) -> Result<Self, crate::WireError> {
        let b = buf.as_ref();
        if b.len() < TCP_HDR_LEN {
            return Err(crate::WireError::Truncated("tcp header"));
        }
        let p = TcpPacket(buf);
        let off = p.data_offset();
        if off < TCP_HDR_LEN || off > p.0.as_ref().len() {
            return Err(crate::WireError::Malformed("tcp data offset"));
        }
        Ok(p)
    }

    fn b(&self) -> &[u8] {
        self.0.as_ref()
    }

    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[0], self.b()[1]])
    }
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }
    pub fn seq(&self) -> SeqNum {
        SeqNum(u32::from_be_bytes(self.b()[4..8].try_into().unwrap()))
    }
    pub fn ack(&self) -> SeqNum {
        SeqNum(u32::from_be_bytes(self.b()[8..12].try_into().unwrap()))
    }
    /// Header length in bytes.
    pub fn data_offset(&self) -> usize {
        ((self.b()[12] >> 4) as usize) * 4
    }
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.b()[13])
    }
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.b()[14], self.b()[15]])
    }
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.b()[16], self.b()[17]])
    }
    pub fn options_raw(&self) -> &[u8] {
        &self.b()[TCP_HDR_LEN..self.data_offset()]
    }
    pub fn options(&self) -> Result<TcpOptions, crate::WireError> {
        TcpOptions::parse(self.options_raw())
    }
    pub fn payload(&self) -> &[u8] {
        &self.b()[self.data_offset()..]
    }

    /// Verify the TCP checksum given the IP addresses.
    pub fn verify_checksum(&self, src: Ip4, dst: Ip4) -> bool {
        let data = self.b();
        let acc = checksum::pseudo_header_sum(
            src.octets(),
            dst.octets(),
            crate::ipv4::protocol::TCP,
            data.len() as u16,
        ) + checksum::sum(data);
        checksum::fold(acc) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpPacket<T> {
    fn m(&mut self) -> &mut [u8] {
        self.0.as_mut()
    }

    pub fn set_src_port(&mut self, p: u16) {
        self.m()[0..2].copy_from_slice(&p.to_be_bytes());
    }
    pub fn set_dst_port(&mut self, p: u16) {
        self.m()[2..4].copy_from_slice(&p.to_be_bytes());
    }
    pub fn set_seq(&mut self, s: SeqNum) {
        self.m()[4..8].copy_from_slice(&s.0.to_be_bytes());
    }
    pub fn set_ack(&mut self, s: SeqNum) {
        self.m()[8..12].copy_from_slice(&s.0.to_be_bytes());
    }
    pub fn set_data_offset(&mut self, bytes: usize) {
        debug_assert!(bytes.is_multiple_of(4) && (20..=60).contains(&bytes));
        self.m()[12] = ((bytes / 4) as u8) << 4;
    }
    pub fn set_flags(&mut self, f: TcpFlags) {
        self.m()[13] = f.0;
    }
    pub fn set_window(&mut self, w: u16) {
        self.m()[14..16].copy_from_slice(&w.to_be_bytes());
    }
    pub fn set_urgent(&mut self, u: u16) {
        self.m()[18..20].copy_from_slice(&u.to_be_bytes());
    }
    pub fn set_checksum_raw(&mut self, ck: u16) {
        self.m()[16..18].copy_from_slice(&ck.to_be_bytes());
    }
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let off = self.data_offset();
        &mut self.m()[off..]
    }

    /// Zero, compute over pseudo-header + segment, and store the checksum.
    pub fn fill_checksum(&mut self, src: Ip4, dst: Ip4) {
        self.m()[16] = 0;
        self.m()[17] = 0;
        let data = self.b();
        let acc = checksum::pseudo_header_sum(
            src.octets(),
            dst.octets(),
            crate::ipv4::protocol::TCP,
            data.len() as u16,
        ) + checksum::sum(data);
        let ck = checksum::fold(acc);
        self.m()[16..18].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqnum_wrapping_order() {
        let a = SeqNum(u32::MAX - 10);
        let b = a + 20; // wraps
        assert!(a.before(b));
        assert!(b.after(a));
        assert_eq!(b - a, 20);
        assert!(a.before_eq(a));
        assert!(a.after_eq(a));
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn flags_classification() {
        assert!((TcpFlags::ACK | TcpFlags::PSH).is_datapath());
        assert!(TcpFlags::FIN.union(TcpFlags::ACK).is_datapath());
        assert!((TcpFlags::ACK | TcpFlags::ECE).is_datapath());
        assert!(!(TcpFlags::SYN | TcpFlags::ACK).is_datapath()); // handshake -> control plane
        assert!(!TcpFlags::RST.is_datapath());
        assert!(!TcpFlags(0).is_datapath());
        assert_eq!(format!("{:?}", TcpFlags::SYN | TcpFlags::ACK), "SYN|ACK");
    }

    #[test]
    fn options_roundtrip_all() {
        let opts = TcpOptions {
            mss: Some(1448),
            window_scale: Some(7),
            sack_permitted: true,
            timestamp: Some((0x11223344, 0x55667788)),
        };
        let mut buf = vec![0u8; opts.len()];
        assert_eq!(opts.len() % 4, 0);
        opts.emit(&mut buf);
        let parsed = TcpOptions::parse(&buf).unwrap();
        assert_eq!(parsed, opts);
    }

    #[test]
    fn options_roundtrip_timestamp_only() {
        let opts = TcpOptions {
            timestamp: Some((123, 456)),
            ..Default::default()
        };
        assert_eq!(opts.len(), TCP_TS_OPT_LEN);
        let mut buf = vec![0u8; opts.len()];
        opts.emit(&mut buf);
        assert_eq!(TcpOptions::parse(&buf).unwrap(), opts);
    }

    #[test]
    fn options_parse_rejects_garbage_length() {
        assert!(TcpOptions::parse(&[2, 0, 0, 0]).is_err()); // len 0
        assert!(TcpOptions::parse(&[8, 10, 0]).is_err()); // truncated
                                                          // unknown option kinds are skipped
        let o = TcpOptions::parse(&[30, 4, 0xaa, 0xbb, 0]).unwrap();
        assert_eq!(o, TcpOptions::default());
    }

    fn segment(payload: &[u8]) -> Vec<u8> {
        let opts = TcpOptions {
            timestamp: Some((1000, 2000)),
            ..Default::default()
        };
        let hdr = TCP_HDR_LEN + opts.len();
        let mut buf = vec![0u8; hdr + payload.len()];
        let mut p = TcpPacket(&mut buf[..]);
        p.set_src_port(40000);
        p.set_dst_port(11211);
        p.set_seq(SeqNum(1_000_000));
        p.set_ack(SeqNum(2_000_000));
        p.set_data_offset(hdr);
        p.set_flags(TcpFlags::ACK | TcpFlags::PSH);
        p.set_window(65535);
        opts.emit(&mut p.m()[TCP_HDR_LEN..hdr]);
        p.payload_mut().copy_from_slice(payload);
        p.fill_checksum(Ip4::host(1), Ip4::host(2));
        buf
    }

    #[test]
    fn header_roundtrip_with_checksum() {
        let buf = segment(b"GET key\r\n");
        let p = TcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.src_port(), 40000);
        assert_eq!(p.dst_port(), 11211);
        assert_eq!(p.seq(), SeqNum(1_000_000));
        assert_eq!(p.ack(), SeqNum(2_000_000));
        assert_eq!(p.flags(), TcpFlags::ACK | TcpFlags::PSH);
        assert_eq!(p.window(), 65535);
        assert_eq!(p.payload(), b"GET key\r\n");
        assert_eq!(p.options().unwrap().timestamp, Some((1000, 2000)));
        assert!(p.verify_checksum(Ip4::host(1), Ip4::host(2)));
        // corrupt one payload byte -> checksum fails
        let mut bad = buf.clone();
        let n = bad.len();
        bad[n - 1] ^= 1;
        let pb = TcpPacket::new_checked(&bad[..]).unwrap();
        assert!(!pb.verify_checksum(Ip4::host(1), Ip4::host(2)));
        // wrong pseudo-header (spoofed IP) also fails
        assert!(!p.verify_checksum(Ip4::host(1), Ip4::host(3)));
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut buf = segment(b"");
        buf[12] = 0x20; // header length 8 < 20
        assert!(TcpPacket::new_checked(&buf[..]).is_err());
        let mut buf2 = segment(b"");
        buf2[12] = 0xf0; // 60 bytes > buffer
        buf2.truncate(32);
        assert!(TcpPacket::new_checked(&buf2[..]).is_err());
    }
}
