//! Flow identification: 4-tuples, CRC-32 flow hashing, flow groups.
//!
//! FlexTOE steers each connection to one of four flow-group pipelines via a
//! hash on the 4-tuple (§3.1: "each pipeline handles a fixed flow-group,
//! determined by a hash on the flow's 4-tuple"). Both directions of a
//! connection must land in the same group so protocol state stays local,
//! so the hash is computed over the *canonically ordered* tuple.

use core::fmt;

use crate::crc32::crc32;
use crate::ipv4::Ip4;

/// A directed TCP 4-tuple as seen on a segment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FourTuple {
    pub src_ip: Ip4,
    pub dst_ip: Ip4,
    pub src_port: u16,
    pub dst_port: u16,
}

impl FourTuple {
    pub fn new(src_ip: Ip4, src_port: u16, dst_ip: Ip4, dst_port: u16) -> FourTuple {
        FourTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
        }
    }

    /// The tuple of traffic flowing the opposite way.
    pub fn reverse(self) -> FourTuple {
        FourTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// Canonical (direction-independent) byte encoding: the (ip, port)
    /// endpoint pairs sorted, so a tuple and its reverse encode identically.
    fn canonical_bytes(self) -> [u8; 12] {
        let a = (self.src_ip.0, self.src_port);
        let b = (self.dst_ip.0, self.dst_port);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut out = [0u8; 12];
        out[0..4].copy_from_slice(&lo.0.to_be_bytes());
        out[4..6].copy_from_slice(&lo.1.to_be_bytes());
        out[6..10].copy_from_slice(&hi.0.to_be_bytes());
        out[10..12].copy_from_slice(&hi.1.to_be_bytes());
        out
    }

    /// CRC-32 flow hash (the pre-processor's lookup key, §4.1).
    pub fn flow_hash(self) -> u32 {
        crc32(&self.canonical_bytes())
    }

    /// Flow-group assignment: `hash % n_groups` (Table 5: `flow_group =
    /// hash(4-tuple) % 4` on the Agilio CX).
    pub fn flow_group(self, n_groups: usize) -> usize {
        debug_assert!(n_groups > 0);
        (self.flow_hash() as usize) % n_groups
    }
}

/// Salt-independent basis of the fabric ECMP flow hash: the directed
/// 4-tuple folded into one word. Switches finish the hash by XORing in
/// their per-switch salt and running the splitmix64 finalizer
/// ([`ecmp_hash_with_basis`]); emitters precompute the basis once into
/// [`crate::FrameMeta::flow_basis`] so no hop re-reads the headers.
#[inline]
pub fn ecmp_basis(src_ip: Ip4, dst_ip: Ip4, src_port: u16, dst_port: u16) -> u64 {
    ((src_ip.0 as u64) << 32 | dst_ip.0 as u64)
        ^ ((src_port as u64) << 16 | dst_port as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Finalize an ECMP flow hash from a precomputed basis and a per-switch
/// salt (splitmix64 finalizer). `ecmp_hash_with_basis(ecmp_basis(..), s)`
/// is bit-identical to the historical whole-header hash, so delivery
/// logs stay byte-identical per seed.
#[inline]
pub fn ecmp_hash_with_basis(basis: u64, salt: u64) -> u64 {
    let mut z = basis ^ salt;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl fmt::Debug for FourTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}
impl fmt::Display for FourTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> FourTuple {
        FourTuple::new(Ip4::host(1), 40000, Ip4::host(2), 11211)
    }

    #[test]
    fn reverse_twice_is_identity() {
        assert_eq!(t().reverse().reverse(), t());
        assert_ne!(t().reverse(), t());
    }

    #[test]
    fn hash_is_direction_independent() {
        assert_eq!(t().flow_hash(), t().reverse().flow_hash());
        for n in [1usize, 2, 4, 8] {
            assert_eq!(t().flow_group(n), t().reverse().flow_group(n));
        }
    }

    #[test]
    fn different_flows_usually_differ() {
        let a = t().flow_hash();
        let b = FourTuple::new(Ip4::host(1), 40001, Ip4::host(2), 11211).flow_hash();
        let c = FourTuple::new(Ip4::host(3), 40000, Ip4::host(2), 11211).flow_hash();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn groups_cover_range_and_distribute() {
        let n = 4;
        let mut counts = [0usize; 4];
        for port in 0..4000u16 {
            let ft = FourTuple::new(Ip4::host(1), 1024 + port, Ip4::host(2), 80);
            counts[ft.flow_group(n)] += 1;
        }
        for (g, &c) in counts.iter().enumerate() {
            // CRC-32 should be near-uniform: each group within 20% of fair share
            assert!(
                (c as f64 - 1000.0).abs() < 200.0,
                "group {g} got {c} of 4000"
            );
        }
    }

    #[test]
    fn single_group_always_zero() {
        assert_eq!(t().flow_group(1), 0);
    }
}
