//! Parse-once frame metadata.
//!
//! Every fabric element used to re-derive the same facts from the bytes
//! of a frame at every hop: the switch re-validated the Ethernet/IPv4
//! headers and re-hashed the 4-tuple for ECMP, links re-read lengths,
//! WRED/ECN re-inspected the TOS byte. [`FrameMeta`] is that summary,
//! computed **once** where the frame is emitted (the NIC DMA stage, the
//! host stack's TX path, the control plane) and carried alongside the
//! bytes in [`crate::Frame`].
//!
//! The invariant: when `Frame::meta` is `Some(m)`, then
//! `FrameMeta::parse(frame.bytes()) == Some(m)` — metadata is a cache of
//! a parse, never an independent source of truth. Anything that mutates
//! frame bytes must either update the metadata to match (the switch's
//! CE-marking does) or drop it (link corruption does), sending the frame
//! down the checked slow path. A property test in the integration suite
//! re-parses tagged frames and asserts equality, including VLAN-tagged,
//! checksum-corrupted, and non-IP frames.

use crate::ethernet::{ethertype, EthFrame, ETH_HDR_LEN, VLAN_TAG_LEN};
use crate::ipv4::{protocol, Ecn, Ip4, Ipv4Packet};
use crate::tcp::TcpPacket;

/// Compact per-frame routing/queueing summary carried with the bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameMeta {
    /// Inner ethertype (after any single 802.1Q tag).
    pub ethertype: u16,
    /// Byte offset of the IPv4 header within the frame.
    pub ip_off: u8,
    /// IP protocol number.
    pub protocol: u8,
    /// ECN codepoint of the IP header. Kept in sync by the switch when it
    /// CE-marks a frame (which also rewrites the bytes + checksum).
    pub ecn: Ecn,
    pub src_ip: Ip4,
    pub dst_ip: Ip4,
    /// TCP/UDP ports; 0 for other protocols (matches the ECMP hash the
    /// switch historically computed for those frames).
    pub src_port: u16,
    pub dst_port: u16,
    /// L4 payload bytes (TCP: after the data offset; UDP: after the 8-byte
    /// header; otherwise the IP payload length).
    pub payload_len: u16,
    /// Salt-independent ECMP flow-hash basis over the directed 4-tuple;
    /// see [`crate::flow::ecmp_basis`]. Switches mix in their per-switch
    /// salt and finalize without touching the frame bytes.
    pub flow_basis: u64,
}

impl FrameMeta {
    /// Parse metadata from raw frame bytes — the checked slow path, and
    /// the definition the fast path is differential-tested against.
    /// `None` for truncated, non-IPv4, or malformed-IP frames (those are
    /// not routable and keep their legacy handling).
    pub fn parse(frame: &[u8]) -> Option<FrameMeta> {
        let eth = EthFrame::new_checked(frame).ok()?;
        let inner_et = eth.inner_ethertype();
        if inner_et != ethertype::IPV4 {
            return None;
        }
        let ip_off = if eth.vlan_id().is_some() {
            ETH_HDR_LEN + VLAN_TAG_LEN
        } else {
            ETH_HDR_LEN
        };
        let ip = Ipv4Packet::new_checked(frame.get(ip_off..)?).ok()?;
        let (src_ip, dst_ip) = (ip.src(), ip.dst());
        let proto = ip.protocol();
        let l4 = ip.payload();
        let (src_port, dst_port, payload_len) = match proto {
            protocol::TCP => {
                let tcp = TcpPacket::new_checked(l4).ok()?;
                (
                    tcp.src_port(),
                    tcp.dst_port(),
                    l4.len().saturating_sub(tcp.data_offset()),
                )
            }
            protocol::UDP if l4.len() >= 8 => (
                u16::from_be_bytes([l4[0], l4[1]]),
                u16::from_be_bytes([l4[2], l4[3]]),
                l4.len() - 8,
            ),
            _ => (0, 0, l4.len()),
        };
        Some(FrameMeta {
            ethertype: inner_et,
            ip_off: ip_off as u8,
            protocol: proto,
            ecn: ip.ecn(),
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            payload_len: payload_len.min(u16::MAX as usize) as u16,
            flow_basis: crate::flow::ecmp_basis(src_ip, dst_ip, src_port, dst_port),
        })
    }
}

/// A raw frame travelling between simulation nodes (MAC blocks, links,
/// switch ports), optionally carrying parse-once [`FrameMeta`].
///
/// Equality compares **bytes only**: metadata is a cache of a parse, so
/// two byte-identical frames are the same frame whether or not one side
/// happened to carry the summary.
#[derive(Clone, Debug, Default)]
pub struct Frame {
    pub bytes: Vec<u8>,
    pub meta: Option<FrameMeta>,
}

impl Frame {
    /// An untagged frame: consumers take the checked parse path.
    pub fn raw(bytes: Vec<u8>) -> Frame {
        Frame { bytes, meta: None }
    }

    /// A frame with emitter-computed metadata. Debug builds verify the
    /// tag against a fresh reparse — the fast path must never disagree
    /// with the bytes.
    pub fn tagged(bytes: Vec<u8>, meta: FrameMeta) -> Frame {
        debug_assert_eq!(
            FrameMeta::parse(&bytes),
            Some(meta),
            "frame tagged with metadata that does not match its bytes"
        );
        Frame {
            bytes,
            meta: Some(meta),
        }
    }

    /// Tag by parsing the bytes once here (emitters without a
    /// `SegmentSpec` at hand).
    pub fn parsed(bytes: Vec<u8>) -> Frame {
        let meta = FrameMeta::parse(&bytes);
        Frame { bytes, meta }
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}
impl Eq for Frame {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::SegmentSpec;
    use crate::ethernet::{insert_vlan, MacAddr};
    use crate::flow::ecmp_basis;

    fn spec() -> SegmentSpec {
        SegmentSpec {
            src_mac: MacAddr::local(1),
            dst_mac: MacAddr::local(2),
            src_ip: Ip4::host(1),
            dst_ip: Ip4::host(2),
            src_port: 40_000,
            dst_port: 80,
            ecn: Ecn::Ect0,
            payload_len: 33,
            ..Default::default()
        }
    }

    #[test]
    fn parse_matches_spec() {
        let s = spec();
        let m = FrameMeta::parse(&s.emit_zeroed()).unwrap();
        assert_eq!(m, s.meta());
        assert_eq!(m.ethertype, ethertype::IPV4);
        assert_eq!(m.ip_off as usize, ETH_HDR_LEN);
        assert_eq!(m.protocol, protocol::TCP);
        assert_eq!(m.ecn, Ecn::Ect0);
        assert_eq!((m.src_port, m.dst_port), (40_000, 80));
        assert_eq!(m.payload_len, 33);
        assert_eq!(
            m.flow_basis,
            ecmp_basis(Ip4::host(1), Ip4::host(2), 40_000, 80)
        );
    }

    #[test]
    fn parse_sees_through_vlan() {
        let s = spec();
        let mut bytes = s.emit_zeroed();
        insert_vlan(&mut bytes, 42);
        let m = FrameMeta::parse(&bytes).unwrap();
        assert_eq!(m.ip_off as usize, ETH_HDR_LEN + VLAN_TAG_LEN);
        assert_eq!(m.src_ip, Ip4::host(1));
        assert_eq!((m.src_port, m.dst_port), (40_000, 80));
    }

    #[test]
    fn non_ip_and_short_frames_unparsed() {
        assert_eq!(FrameMeta::parse(&[0u8; 10]), None);
        let mut arp = spec().emit_zeroed();
        arp[12..14].copy_from_slice(&ethertype::ARP.to_be_bytes());
        assert_eq!(FrameMeta::parse(&arp), None);
    }

    #[test]
    fn frame_equality_ignores_meta() {
        let bytes = spec().emit_zeroed();
        assert_eq!(Frame::parsed(bytes.clone()), Frame::raw(bytes));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "does not match its bytes")]
    fn tagged_mismatch_caught_in_debug() {
        let a = spec();
        let mut b = spec();
        b.src_port = 1;
        let _ = Frame::tagged(a.emit_zeroed(), b.meta());
    }
}
