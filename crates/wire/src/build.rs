//! Whole-segment construction and parsing: Ethernet + IPv4 + TCP in one
//! contiguous buffer, checksums filled.
//!
//! The data-path works on raw frames (XDP modules see bytes), so the
//! canonical representation of a segment "on the wire" is a `Vec<u8>`
//! built and inspected through these helpers.

use crate::ethernet::{ethertype, EthFrame, MacAddr, ETH_HDR_LEN};
use crate::flow::FourTuple;
use crate::ipv4::{protocol, Ecn, Ip4, Ipv4Packet, IPV4_HDR_LEN};
use crate::tcp::{SeqNum, TcpFlags, TcpOptions, TcpPacket, TCP_HDR_LEN};
use crate::WireError;

/// Everything needed to emit one TCP/IPv4/Ethernet segment.
#[derive(Clone, Debug, Default)]
pub struct SegmentSpec {
    pub src_mac: MacAddr,
    pub dst_mac: MacAddr,
    pub src_ip: Ip4,
    pub dst_ip: Ip4,
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: SeqNum,
    pub ack: SeqNum,
    pub flags: TcpFlags,
    pub window: u16,
    pub ecn: Ecn,
    pub options: TcpOptions,
    pub payload_len: usize,
}

impl SegmentSpec {
    pub fn total_len(&self) -> usize {
        ETH_HDR_LEN + IPV4_HDR_LEN + TCP_HDR_LEN + self.options.len() + self.payload_len
    }

    /// The parse-once [`crate::FrameMeta`] of the frame this spec emits —
    /// computed from the spec fields, no byte inspection. Equal to
    /// `FrameMeta::parse(&self.emit(..))` by construction (asserted in
    /// debug builds by [`crate::Frame::tagged`]).
    pub fn meta(&self) -> crate::FrameMeta {
        crate::FrameMeta {
            ethertype: ethertype::IPV4,
            ip_off: ETH_HDR_LEN as u8,
            protocol: protocol::TCP,
            ecn: self.ecn,
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            src_port: self.src_port,
            dst_port: self.dst_port,
            payload_len: self.payload_len as u16,
            flow_basis: crate::flow::ecmp_basis(
                self.src_ip,
                self.dst_ip,
                self.src_port,
                self.dst_port,
            ),
        }
    }

    /// Emit a tagged [`crate::Frame`] into a recycled buffer — the pooled,
    /// parse-once emission path.
    pub fn emit_frame_into(
        &self,
        mut buf: Vec<u8>,
        fill_payload: impl FnOnce(&mut [u8]),
    ) -> crate::Frame {
        self.emit_into(&mut buf, fill_payload);
        crate::Frame::tagged(buf, self.meta())
    }

    /// Emit the frame; `fill_payload` writes the TCP payload bytes.
    pub fn emit_with(&self, fill_payload: impl FnOnce(&mut [u8])) -> Vec<u8> {
        let mut buf = Vec::new();
        self.emit_into(&mut buf, fill_payload);
        buf
    }

    /// Emit into an existing buffer (cleared first, capacity reused) —
    /// the allocation-free path for pooled segment buffers.
    pub fn emit_into(&self, buf: &mut Vec<u8>, fill_payload: impl FnOnce(&mut [u8])) {
        let tcp_hdr = TCP_HDR_LEN + self.options.len();
        let ip_len = IPV4_HDR_LEN + tcp_hdr + self.payload_len;
        buf.clear();
        buf.resize(ETH_HDR_LEN + ip_len, 0);

        {
            let mut eth = EthFrame(&mut buf[..]);
            eth.set_dst(self.dst_mac);
            eth.set_src(self.src_mac);
            eth.set_ethertype(ethertype::IPV4);
        }
        {
            let mut ip = Ipv4Packet(&mut buf[ETH_HDR_LEN..]);
            ip.set_version_ihl();
            ip.set_ecn(self.ecn);
            ip.set_total_len(ip_len as u16);
            ip.set_flags_df();
            ip.set_ttl(64);
            ip.set_protocol(protocol::TCP);
            ip.set_src(self.src_ip);
            ip.set_dst(self.dst_ip);
            ip.fill_checksum();
        }
        {
            let tcp_buf = &mut buf[ETH_HDR_LEN + IPV4_HDR_LEN..];
            let mut tcp = TcpPacket(&mut tcp_buf[..]);
            tcp.set_src_port(self.src_port);
            tcp.set_dst_port(self.dst_port);
            tcp.set_seq(self.seq);
            tcp.set_ack(self.ack);
            tcp.set_data_offset(tcp_hdr);
            tcp.set_flags(self.flags);
            tcp.set_window(self.window);
            tcp.set_urgent(0);
            self.options.emit(&mut tcp_buf[TCP_HDR_LEN..tcp_hdr]);
            fill_payload(&mut tcp_buf[tcp_hdr..]);
            let mut tcp = TcpPacket(&mut tcp_buf[..]);
            tcp.fill_checksum(self.src_ip, self.dst_ip);
        }
    }

    /// Emit with a payload copied from a slice.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        assert_eq!(payload.len(), self.payload_len);
        self.emit_with(|buf| buf.copy_from_slice(payload))
    }

    /// Emit into an existing buffer with a payload copied from a slice.
    pub fn emit_payload_into(&self, buf: &mut Vec<u8>, payload: &[u8]) {
        assert_eq!(payload.len(), self.payload_len);
        self.emit_into(buf, |b| b.copy_from_slice(payload));
    }

    /// Emit a zero-payload frame into an existing buffer.
    pub fn emit_zeroed_into(&self, buf: &mut Vec<u8>) {
        self.emit_into(buf, |_| {});
    }

    /// Emit with a zero payload (bulk-transfer benchmarks where content is
    /// irrelevant still materialize real frames).
    pub fn emit_zeroed(&self) -> Vec<u8> {
        self.emit_with(|_| {})
    }
}

/// A parsed view of a received frame: the "header summary" the FlexTOE
/// pre-processor forwards to later stages (§3.1.3 "Sum"), plus payload
/// location in the original buffer.
#[derive(Clone, Copy, Debug)]
pub struct SegmentView {
    pub src_mac: MacAddr,
    pub dst_mac: MacAddr,
    pub src_ip: Ip4,
    pub dst_ip: Ip4,
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: SeqNum,
    pub ack: SeqNum,
    pub flags: TcpFlags,
    pub window: u16,
    pub ecn: Ecn,
    pub tsval: u32,
    pub tsecr: u32,
    pub has_ts: bool,
    /// Byte offset of the TCP payload within the frame.
    pub payload_off: usize,
    pub payload_len: usize,
}

impl SegmentView {
    /// Parse and validate a frame (the pre-processor's "Val" step).
    /// `verify_checksums` is a knob because the NIC's MAC block verifies
    /// checksums in hardware on real NICs; when enabled we verify in
    /// software (and corrupted frames are rejected).
    pub fn parse(frame: &[u8], verify_checksums: bool) -> Result<SegmentView, WireError> {
        let eth = EthFrame::new_checked(frame)?;
        if eth.inner_ethertype() != ethertype::IPV4 {
            return Err(WireError::NotTcp);
        }
        let ip_off = frame.len() - eth.inner_payload().len();
        let ip = Ipv4Packet::new_checked(&frame[ip_off..])?;
        if ip.protocol() != protocol::TCP {
            return Err(WireError::NotTcp);
        }
        if verify_checksums && !ip.verify_checksum() {
            return Err(WireError::BadChecksum("ipv4"));
        }
        let tcp_off = ip_off + IPV4_HDR_LEN;
        let tcp_end = ip_off + ip.total_len() as usize;
        let tcp = TcpPacket::new_checked(&frame[tcp_off..tcp_end])?;
        if verify_checksums && !tcp.verify_checksum(ip.src(), ip.dst()) {
            return Err(WireError::BadChecksum("tcp"));
        }
        let opts = tcp.options()?;
        let (tsval, tsecr) = opts.timestamp.unwrap_or((0, 0));
        Ok(SegmentView {
            src_mac: eth.src(),
            dst_mac: eth.dst(),
            src_ip: ip.src(),
            dst_ip: ip.dst(),
            src_port: tcp.src_port(),
            dst_port: tcp.dst_port(),
            seq: tcp.seq(),
            ack: tcp.ack(),
            flags: tcp.flags(),
            window: tcp.window(),
            ecn: ip.ecn(),
            tsval,
            tsecr,
            has_ts: opts.timestamp.is_some(),
            payload_off: tcp_off + tcp.data_offset(),
            payload_len: tcp_end - tcp_off - tcp.data_offset(),
        })
    }

    pub fn four_tuple(&self) -> FourTuple {
        FourTuple::new(self.src_ip, self.src_port, self.dst_ip, self.dst_port)
    }

    pub fn payload<'a>(&self, frame: &'a [u8]) -> &'a [u8] {
        &frame[self.payload_off..self.payload_off + self.payload_len]
    }

    /// Sequence number of the byte after this segment (incl. SYN/FIN).
    pub fn seq_end(&self) -> SeqNum {
        let mut n = self.payload_len as u32;
        if self.flags.syn() {
            n += 1;
        }
        if self.flags.fin() {
            n += 1;
        }
        self.seq + n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(payload_len: usize) -> SegmentSpec {
        SegmentSpec {
            src_mac: MacAddr::local(1),
            dst_mac: MacAddr::local(2),
            src_ip: Ip4::host(1),
            dst_ip: Ip4::host(2),
            src_port: 40000,
            dst_port: 11211,
            seq: SeqNum(111),
            ack: SeqNum(222),
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 0x8000,
            ecn: Ecn::Ect0,
            options: TcpOptions {
                timestamp: Some((7, 9)),
                ..Default::default()
            },
            payload_len,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let payload = b"hello flextoe";
        let frame = spec(payload.len()).emit(payload);
        let v = SegmentView::parse(&frame, true).unwrap();
        assert_eq!(v.src_ip, Ip4::host(1));
        assert_eq!(v.dst_port, 11211);
        assert_eq!(v.seq, SeqNum(111));
        assert_eq!(v.ack, SeqNum(222));
        assert!(v.flags.psh());
        assert_eq!(v.window, 0x8000);
        assert_eq!(v.ecn, Ecn::Ect0);
        assert_eq!((v.tsval, v.tsecr), (7, 9));
        assert!(v.has_ts);
        assert_eq!(v.payload(&frame), payload);
        assert_eq!(v.seq_end(), SeqNum(111 + payload.len() as u32));
    }

    #[test]
    fn corruption_detected_when_verifying() {
        let frame = spec(32).emit(&[0x5a; 32]);
        for idx in [20usize, 40, 60] {
            let mut bad = frame.clone();
            bad[idx] ^= 0x01;
            assert!(
                SegmentView::parse(&bad, true).is_err(),
                "corruption at byte {idx} undetected"
            );
        }
        // without verification, header-intact corruption passes through
        let mut bad = frame.clone();
        let n = bad.len();
        bad[n - 1] ^= 1; // payload byte
        assert!(SegmentView::parse(&bad, false).is_ok());
    }

    #[test]
    fn non_tcp_rejected() {
        let mut frame = spec(0).emit(&[]);
        frame[12..14].copy_from_slice(&ethertype::ARP.to_be_bytes());
        assert!(matches!(
            SegmentView::parse(&frame, true),
            Err(WireError::NotTcp)
        ));
    }

    #[test]
    fn syn_fin_consume_sequence_space() {
        let mut s = spec(0);
        s.flags = TcpFlags::SYN;
        s.options.mss = Some(1448);
        let frame = s.emit_zeroed();
        let v = SegmentView::parse(&frame, true).unwrap();
        assert_eq!(v.seq_end(), SeqNum(112));
        let mut s = spec(3);
        s.flags = TcpFlags::FIN | TcpFlags::ACK;
        let frame = s.emit(b"xyz");
        let v = SegmentView::parse(&frame, true).unwrap();
        assert_eq!(v.seq_end(), SeqNum(111 + 3 + 1));
    }

    #[test]
    fn parse_through_vlan_tag() {
        let mut frame = spec(5).emit(b"taggd");
        crate::ethernet::insert_vlan(&mut frame, 42);
        let v = SegmentView::parse(&frame, true).unwrap();
        assert_eq!(v.payload(&frame), b"taggd");
        assert_eq!(v.src_port, 40000);
    }

    #[test]
    fn mtu_sized_frame() {
        // 1448 MSS + 12B ts option + 20 TCP + 20 IP + 14 ETH = 1514 (MTU frame)
        let s = spec(1448);
        let frame = s.emit_zeroed();
        assert_eq!(frame.len(), 1514);
        let v = SegmentView::parse(&frame, true).unwrap();
        assert_eq!(v.payload_len, 1448);
    }
}
