//! # flextoe-wire — packet formats for the FlexTOE reproduction
//!
//! Ethernet II / 802.1Q / IPv4 / TCP views over byte buffers in the style
//! of `smoltcp::wire`: cheap field accessors rather than full
//! deserialization, plus whole-segment build/parse helpers, checksums,
//! CRC-32 flow hashing (the NFP's CRC acceleration), and a pcap writer for
//! the tcpdump data-path extension.

pub mod build;
pub mod checksum;
pub mod crc32;
pub mod ethernet;
pub mod flow;
pub mod ipv4;
pub mod meta;
pub mod pcap;
pub mod tcp;

pub use build::{SegmentSpec, SegmentView};
pub use crc32::{crc32, Crc32};
pub use ethernet::{ethertype, insert_vlan, strip_vlan, EthFrame, MacAddr, ETH_HDR_LEN};
pub use flow::{ecmp_basis, ecmp_hash_with_basis, FourTuple};
pub use ipv4::{protocol, Ecn, Ip4, Ipv4Packet, IPV4_HDR_LEN};
pub use meta::{Frame, FrameMeta};
pub use pcap::PcapWriter;
pub use tcp::{SeqNum, TcpFlags, TcpOptions, TcpPacket, TCP_HDR_LEN, TCP_TS_OPT_LEN};

/// Standard Ethernet MTU and the MSS values it implies.
pub const MTU: usize = 1500;
/// MSS when the 12-byte timestamp option is carried on every segment.
pub const MSS_WITH_TS: usize = MTU - IPV4_HDR_LEN - TCP_HDR_LEN - TCP_TS_OPT_LEN; // 1448
/// Total frame overhead for a timestamped segment (everything but payload).
pub const FRAME_OVERHEAD_TS: usize = ETH_HDR_LEN + IPV4_HDR_LEN + TCP_HDR_LEN + TCP_TS_OPT_LEN;

/// Errors from parsing wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short for the claimed structure.
    Truncated(&'static str),
    /// A field has an impossible value.
    Malformed(&'static str),
    /// Valid but something we do not implement (e.g. IPv4 options).
    Unsupported(&'static str),
    /// A checksum failed verification.
    BadChecksum(&'static str),
    /// Frame is not TCP/IPv4 (forwarded to the kernel path / control plane).
    NotTcp,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated(w) => write!(f, "truncated: {w}"),
            WireError::Malformed(w) => write!(f, "malformed: {w}"),
            WireError::Unsupported(w) => write!(f, "unsupported: {w}"),
            WireError::BadChecksum(w) => write!(f, "bad checksum: {w}"),
            WireError::NotTcp => write!(f, "not a tcp/ipv4 frame"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mss_constant_matches_paper_figures() {
        // Fig. 14 sweeps MSS up to 1448 — MTU minus TCP/IP + ts option.
        assert_eq!(MSS_WITH_TS, 1448);
        assert_eq!(FRAME_OVERHEAD_TS, 66);
    }

    #[test]
    fn error_display() {
        assert_eq!(WireError::NotTcp.to_string(), "not a tcp/ipv4 frame");
        assert_eq!(WireError::Truncated("x").to_string(), "truncated: x");
    }
}
