//! Internet checksum (RFC 1071) and the TCP pseudo-header sum.

/// One's-complement sum of a byte slice, as used by IPv4/TCP/UDP.
/// Odd-length data is padded with a zero byte, per the RFC.
pub fn sum(data: &[u8]) -> u32 {
    let mut acc = 0u32;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        acc += u16::from_be_bytes([w[0], w[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        acc += u16::from_be_bytes([*last, 0]) as u32;
    }
    acc
}

/// Fold a 32-bit accumulator into a 16-bit one's-complement checksum.
pub fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// Checksum of a self-contained header (e.g. the IPv4 header) whose
/// checksum field is currently zero.
pub fn checksum(data: &[u8]) -> u16 {
    fold(sum(data))
}

/// Verify: summing data *including* a correct checksum folds to zero.
pub fn is_valid(data: &[u8]) -> bool {
    fold(sum(data)) == 0
}

/// The TCP/UDP pseudo-header contribution for IPv4.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], protocol: u8, len: u16) -> u32 {
    sum(&src) + sum(&dst) + protocol as u32 + len as u32
}

/// Incremental checksum update per RFC 1624 (HC' = ~(~HC + ~m + m')).
/// Used by the connection-splicing XDP module, which rewrites addresses,
/// ports, and sequence numbers without re-summing the payload.
pub fn update16(check: u16, old: u16, new: u16) -> u16 {
    // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m'); `fold` performs the final ~.
    let acc = (!check) as u32 + (!old) as u32 + new as u32;
    fold(acc)
}

/// 32-bit variant of [`update16`] (sequence/ack numbers, IPv4 addresses).
pub fn update32(mut check: u16, old: u32, new: u32) -> u16 {
    check = update16(check, (old >> 16) as u16, (new >> 16) as u16);
    update16(check, old as u16, new as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example: 00 01 f2 03 f4 f5 f6 f7 -> sum 2ddf0 -> fold ddf2 -> cksum 220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(sum(&[0xab]), 0xab00);
        assert_eq!(sum(&[0x12, 0x34, 0x56]), 0x1234 + 0x5600);
    }

    #[test]
    fn checksum_verifies_itself() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0, 0, 10, 0, 0, 1, 10, 0,
            0, 2,
        ];
        let ck = checksum(&data);
        data[10] = (ck >> 8) as u8;
        data[11] = ck as u8;
        assert!(is_valid(&data));
        data[3] ^= 1;
        assert!(!is_valid(&data));
    }

    #[test]
    fn incremental_update_matches_recompute_16() {
        let mut data = vec![0u8; 40];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        // checksum with field at [2..4] zeroed
        data[2] = 0;
        data[3] = 0;
        let ck = checksum(&data);
        // change a 16-bit field and recompute both ways
        let old = u16::from_be_bytes([data[6], data[7]]);
        let new = 0xbeef;
        data[6] = (new >> 8) as u8;
        data[7] = new as u8;
        let full = checksum(&data);
        let inc = update16(ck, old, new);
        assert_eq!(full, inc);
    }

    #[test]
    fn incremental_update_matches_recompute_32() {
        let mut data = vec![0u8; 60];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(91).wrapping_add(3);
        }
        data[0] = 0;
        data[1] = 0;
        let ck = checksum(&data);
        let old = u32::from_be_bytes([data[8], data[9], data[10], data[11]]);
        let new: u32 = 0xdead_beef;
        data[8..12].copy_from_slice(&new.to_be_bytes());
        assert_eq!(checksum(&data), update32(ck, old, new));
    }

    #[test]
    fn pseudo_header_known_value() {
        let ps = pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], 6, 20);
        assert_eq!(ps, 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 6 + 20);
    }
}
