//! The MAC island / network block interface (NBI).
//!
//! Egress frames serialize at line rate (40 Gbps on the Agilio CX40);
//! ingress frames are handed to the pipeline entry (the sequencer) after a
//! small fixed NBI latency. "After DMA completes, it issues the segment to
//! the NBI (TX), which transmits and frees it" (§3.1.2).

use flextoe_sim::{
    BoundedQueue, CounterHandle, Ctx, Duration, Msg, MsgBurst, Node, NodeId, Stats, Time,
};
use flextoe_wire::Frame;

/// A frame submitted by the data-path for transmission (re-exported from
/// the engine's typed message vocabulary).
pub use flextoe_sim::MacTx;

/// Ingress handoff latency (NBI packet-buffer to first pipeline stage).
const NBI_INGRESS_LATENCY: Duration = Duration::from_ns(120);

/// Self-wake token: current egress serialization finished.
const TOK_TX_DONE: u64 = 0;

pub struct MacPort {
    bps: u64,
    /// Where serialized egress frames go (a link endpoint).
    pub wire_out: NodeId,
    /// Where ingress frames go (pipeline entry / sequencer).
    pub rx_to: NodeId,
    egress_free: Time,
    egress_q: BoundedQueue<Frame>,
    transmitting: bool,
    pub tx_frames: u64,
    pub tx_bytes: u64,
    pub rx_frames: u64,
    pub rx_bytes: u64,
    tx_drops: Option<CounterHandle>,
}

impl MacPort {
    pub fn new(bps: u64, wire_out: NodeId, rx_to: NodeId) -> MacPort {
        MacPort {
            bps,
            wire_out,
            rx_to,
            egress_free: Time::ZERO,
            egress_q: BoundedQueue::new(4096),
            transmitting: false,
            tx_frames: 0,
            tx_bytes: 0,
            rx_frames: 0,
            rx_bytes: 0,
            tx_drops: None,
        }
    }

    fn serialize_time(&self, bytes: usize) -> Duration {
        Duration::from_ps((bytes as u64 * 8).saturating_mul(1_000_000_000_000) / self.bps)
    }

    fn start_tx(&mut self, ctx: &mut Ctx<'_>) {
        if self.transmitting {
            return;
        }
        let Some(frame) = self.egress_q.pop() else {
            return;
        };
        self.transmitting = true;
        let d = self.serialize_time(frame.len());
        self.tx_frames += 1;
        self.tx_bytes += frame.len() as u64;
        self.egress_free = ctx.now() + d;
        // The frame "appears on the wire" when serialization completes.
        ctx.send(self.wire_out, d, frame);
        ctx.wake(d, TOK_TX_DONE);
    }
}

impl MacPort {
    /// One delivery with the overflow-drop handle already resolved
    /// ([`Node::on_batch`] hoists the lookup out of the loop).
    fn deliver(&mut self, ctx: &mut Ctx<'_>, msg: Msg, tx_drops: CounterHandle) {
        match msg {
            Msg::MacTx(tx) => {
                if let Err(frame) = self.egress_q.push(tx.0) {
                    ctx.stats.inc(tx_drops);
                    ctx.pool.put(frame.into_bytes());
                }
                self.start_tx(ctx);
            }
            Msg::Token(TOK_TX_DONE) => {
                self.transmitting = false;
                self.start_tx(ctx);
            }
            Msg::Frame(frame) => {
                // ingress frame from the wire
                self.rx_frames += 1;
                self.rx_bytes += frame.len() as u64;
                ctx.send(self.rx_to, NBI_INGRESS_LATENCY, frame);
            }
            m => panic!("mac-port: unexpected message {}", m.variant_name()),
        }
    }
}

impl Node for MacPort {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let tx_drops = self.tx_drops.expect("mac attached to a sim");
        self.deliver(ctx, msg, tx_drops);
    }

    fn on_batch(&mut self, ctx: &mut Ctx<'_>, burst: &mut MsgBurst) {
        // back-to-back NBI submissions and TX-done tokens coalesce; each
        // message still charges its own serialization slot in order
        let tx_drops = self.tx_drops.expect("mac attached to a sim");
        while let Some(msg) = burst.next(ctx) {
            self.deliver(ctx, msg, tx_drops);
        }
    }

    fn on_attach(&mut self, stats: &mut Stats) {
        self.tx_drops = Some(stats.counter("mac.tx_drops"));
    }

    fn name(&self) -> String {
        "mac-port".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextoe_sim::{cast, Sim};

    struct Probe {
        frames: Vec<(u64, usize)>, // (ns, len)
    }
    impl Node for Probe {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let f = cast::<Frame>(msg);
            self.frames.push((ctx.now().as_ns(), f.len()));
        }
    }

    #[test]
    fn egress_serializes_at_line_rate() {
        let mut sim = Sim::new(1);
        let wire = sim.add_node(Probe { frames: vec![] });
        let rx = sim.add_node(Probe { frames: vec![] });
        let mac = sim.add_node(MacPort::new(40_000_000_000, wire, rx));
        // two back-to-back 1514B frames: 302.8ns each
        sim.schedule(Time::ZERO, mac, MacTx(Frame::raw(vec![0; 1514])));
        sim.schedule(Time::ZERO, mac, MacTx(Frame::raw(vec![0; 1514])));
        sim.run();
        let w = &sim.node_ref::<Probe>(wire).frames;
        assert_eq!(w.len(), 2);
        assert!((300..=305).contains(&w[0].0), "{}", w[0].0);
        assert!((603..=610).contains(&w[1].0), "{}", w[1].0);
        let m = sim.node_ref::<MacPort>(mac);
        assert_eq!(m.tx_frames, 2);
        assert_eq!(m.tx_bytes, 3028);
    }

    #[test]
    fn ingress_forwards_to_pipeline() {
        let mut sim = Sim::new(1);
        let wire = sim.add_node(Probe { frames: vec![] });
        let rx = sim.add_node(Probe { frames: vec![] });
        let mac = sim.add_node(MacPort::new(40_000_000_000, wire, rx));
        sim.schedule(Time::from_ns(50), mac, Frame::raw(vec![1, 2, 3]));
        sim.run();
        let r = &sim.node_ref::<Probe>(rx).frames;
        assert_eq!(r.len(), 1);
        assert_eq!(r[0], (170, 3)); // 50 + 120ns NBI latency
        assert_eq!(sim.node_ref::<MacPort>(mac).rx_frames, 1);
    }

    #[test]
    fn interleaved_tx_keeps_order() {
        let mut sim = Sim::new(1);
        let wire = sim.add_node(Probe { frames: vec![] });
        let rx = sim.add_node(Probe { frames: vec![] });
        let mac = sim.add_node(MacPort::new(10_000_000_000, wire, rx));
        for len in [100usize, 200, 300] {
            sim.schedule(Time::ZERO, mac, MacTx(Frame::raw(vec![0; len])));
        }
        sim.run();
        let lens: Vec<usize> = sim
            .node_ref::<Probe>(wire)
            .frames
            .iter()
            .map(|f| f.1)
            .collect();
        assert_eq!(lens, vec![100, 200, 300]);
    }
}
