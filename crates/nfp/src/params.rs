//! Platform parameters for the data-path's execution substrates.
//!
//! §2.3 of the paper gives the NFP-4000 numbers we model directly:
//! 60 FPCs at 800 MHz with 8 hardware threads, island-local CLS/CTM at up
//! to 100 cycles, IMEM SRAM at up to 250 cycles, EMEM DRAM at up to 500
//! cycles fronted by a 3 MB SRAM cache, PCIe Gen3 x8 with a 256-deep DMA
//! engine, and a 40 Gbps MAC. The x86 and BlueField ports (§E) replace the
//! exotic memory hierarchy with hardware-managed caches and software
//! copies instead of a DMA engine.

use flextoe_sim::{clocks, Clock, Duration};

/// A memory level of the NFP-4000 (§2.3 "Memory").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// FPC-local memory / registers (LMEM): effectively free.
    Local,
    /// Island-local scratch (64 KB).
    Cls,
    /// Island target memory (256 KB).
    Ctm,
    /// Internal SRAM (4 MB).
    Imem,
    /// External DRAM (2 GB) behind a 3 MB SRAM cache — this latency is the
    /// *miss* path; hits in the SRAM cache cost [`MemLatencies::emem_sram`].
    Emem,
}

/// Access latencies in cycles of the owning clock domain.
#[derive(Clone, Copy, Debug)]
pub struct MemLatencies {
    pub local: u64,
    pub cls: u64,
    pub ctm: u64,
    pub imem: u64,
    /// Hit in the 3 MB SRAM cache in front of EMEM DRAM.
    pub emem_sram: u64,
    /// Miss to EMEM DRAM.
    pub emem_dram: u64,
}

impl MemLatencies {
    pub fn cycles(&self, level: MemLevel) -> u64 {
        match level {
            MemLevel::Local => self.local,
            MemLevel::Cls => self.cls,
            MemLevel::Ctm => self.ctm,
            MemLevel::Imem => self.imem,
            MemLevel::Emem => self.emem_dram,
        }
    }
}

/// PCIe interconnect between NIC and host (§2.3, \[41\]).
#[derive(Clone, Copy, Debug)]
pub struct PcieParams {
    /// One-way posted-write latency.
    pub write_latency: Duration,
    /// Read (round-trip) latency: request crosses, completion returns.
    pub read_latency: Duration,
    /// Usable data bandwidth in bytes/second (Gen3 x8 ≈ 7.88 GB/s).
    pub bytes_per_sec: u64,
    /// DMA engine transaction queue depth ("up to 256 asynchronous DMA
    /// transactions", §2.3).
    pub max_inflight: usize,
    /// MMIO doorbell latency (host write reaching NIC logic).
    pub mmio_latency: Duration,
}

/// A data-path execution platform (§4 Agilio, §E x86 and BlueField ports).
#[derive(Clone, Copy, Debug)]
pub struct Platform {
    pub name: &'static str,
    pub clock: Clock,
    /// General-purpose islands available for flow-group pipelines.
    pub flow_group_islands: usize,
    pub fpcs_per_island: usize,
    /// Hardware threads per FPC that can hide memory latency.
    pub threads_per_fpc: usize,
    pub mem: MemLatencies,
    pub pcie: PcieParams,
    /// MAC line rate in bits/second.
    pub mac_bps: u64,
    /// True when a hardware DMA engine moves payload (Agilio); the x86 and
    /// BlueField ports copy through shared memory on a core instead (§E).
    pub hw_dma: bool,
    /// Per-core software memcpy throughput for ports without a DMA engine.
    pub copy_bytes_per_cycle: u64,
}

impl Platform {
    pub fn mem_cycles(&self, level: MemLevel) -> u64 {
        self.mem.cycles(level)
    }
    /// Wall-clock of `n` cycles on this platform.
    pub fn cycles(&self, n: u64) -> Duration {
        self.clock.cycles(n)
    }
    /// Serialization time of `bytes` on the MAC.
    pub fn mac_serialize(&self, bytes: usize) -> Duration {
        Duration::from_ps((bytes as u64 * 8).saturating_mul(1_000_000_000_000) / self.mac_bps)
    }
}

/// Netronome Agilio CX40 (NFP-4000) — the paper's primary target (§4).
pub fn agilio_cx40() -> Platform {
    Platform {
        name: "agilio-cx40",
        clock: clocks::FPC_800MHZ,
        flow_group_islands: 4, // 5 GP islands; one is the service island
        fpcs_per_island: 12,
        threads_per_fpc: 8,
        mem: MemLatencies {
            local: 2,
            cls: 30,
            ctm: 80,
            imem: 200,
            emem_sram: 250,
            emem_dram: 500,
        },
        pcie: PcieParams {
            write_latency: Duration::from_ns(450),
            read_latency: Duration::from_ns(900),
            bytes_per_sec: 7_880_000_000,
            max_inflight: 256,
            mmio_latency: Duration::from_ns(350),
        },
        mac_bps: 40_000_000_000,
        hw_dma: true,
        copy_bytes_per_cycle: 4,
    }
}

/// Agilio LX (footnote 7): 1.2 GHz FPCs, double the islands.
pub fn agilio_lx() -> Platform {
    Platform {
        name: "agilio-lx",
        clock: clocks::FPC_1200MHZ,
        flow_group_islands: 8,
        fpcs_per_island: 12,
        ..agilio_cx40()
    }
}

/// x86 port (§E): EPYC 7452 cores, hardware caches, software copies,
/// shared-memory context queues (no PCIe between data-path and apps).
pub fn x86_port() -> Platform {
    Platform {
        name: "x86",
        clock: clocks::X86_2350MHZ,
        flow_group_islands: 1, // §E: one pipeline instance, no flow groups
        fpcs_per_island: 9,
        threads_per_fpc: 1, // big OoO cores; latency hiding is the core's job
        mem: MemLatencies {
            // hardware-managed caches: model L1/L2/LLC-ish costs
            local: 1,
            cls: 4,
            ctm: 12,
            imem: 40,
            emem_sram: 40,
            emem_dram: 90,
        },
        pcie: PcieParams {
            // context queues are plain shared memory on the ports (§E)
            write_latency: Duration::from_ns(60),
            read_latency: Duration::from_ns(90),
            bytes_per_sec: 30_000_000_000,
            max_inflight: 64,
            mmio_latency: Duration::from_ns(50),
        },
        mac_bps: 100_000_000_000,
        hw_dma: false,
        copy_bytes_per_cycle: 16,
    }
}

/// BlueField port (§E): wimpy A72 cores — closest to the target NPU (§5.2).
pub fn bluefield_port() -> Platform {
    Platform {
        name: "bluefield",
        clock: clocks::BLUEFIELD_800MHZ,
        flow_group_islands: 1,
        fpcs_per_island: 9,
        threads_per_fpc: 1,
        mem: MemLatencies {
            local: 1,
            cls: 6,
            ctm: 20,
            imem: 60,
            emem_sram: 60,
            emem_dram: 160,
        },
        pcie: PcieParams {
            write_latency: Duration::from_ns(90),
            read_latency: Duration::from_ns(140),
            bytes_per_sec: 12_000_000_000,
            max_inflight: 64,
            mmio_latency: Duration::from_ns(80),
        },
        mac_bps: 25_000_000_000,
        hw_dma: false,
        copy_bytes_per_cycle: 8,
    }
}

/// Host CPU parameters for applications + libTOE (testbed Xeon @ 2 GHz).
pub fn host_xeon() -> Platform {
    Platform {
        name: "host-xeon",
        clock: clocks::HOST_2GHZ,
        flow_group_islands: 1,
        fpcs_per_island: 20,
        threads_per_fpc: 1,
        mem: MemLatencies {
            local: 1,
            cls: 4,
            ctm: 12,
            imem: 40,
            emem_sram: 40,
            emem_dram: 90,
        },
        pcie: agilio_cx40().pcie,
        mac_bps: 40_000_000_000,
        hw_dma: false,
        copy_bytes_per_cycle: 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agilio_matches_paper_architecture() {
        let p = agilio_cx40();
        // §2.3: 60 FPCs in 5 GP islands of 12; we use 4 for flow groups.
        assert_eq!(p.fpcs_per_island, 12);
        assert_eq!(p.flow_group_islands, 4);
        assert_eq!(p.threads_per_fpc, 8);
        assert_eq!(p.clock.hz(), 800_000_000);
        // memory ladder is monotone
        assert!(p.mem.local < p.mem.cls);
        assert!(p.mem.cls < p.mem.ctm);
        assert!(p.mem.ctm < p.mem.imem);
        assert!(p.mem.imem < p.mem.emem_dram);
        assert!(p.mem.emem_sram <= p.mem.emem_dram);
    }

    #[test]
    fn mac_serialization_40g() {
        let p = agilio_cx40();
        // 1514-byte frame at 40 Gbps ≈ 302.8 ns
        let d = p.mac_serialize(1514);
        assert!(d.as_ns() >= 300 && d.as_ns() <= 305, "{d}");
    }

    #[test]
    fn congestion_computation_cost_anchor() {
        // §2.3: the ECN-ratio gradient takes 1,500 cycles = 1.875 us on FPCs.
        let p = agilio_cx40();
        let d = p.cycles(1500);
        assert_eq!(d.as_ns(), 1875);
    }

    #[test]
    fn ports_have_no_hw_dma() {
        assert!(agilio_cx40().hw_dma);
        assert!(!x86_port().hw_dma);
        assert!(!bluefield_port().hw_dma);
    }

    #[test]
    fn mem_level_lookup() {
        let p = agilio_cx40();
        assert_eq!(p.mem_cycles(MemLevel::Local), 2);
        assert_eq!(p.mem_cycles(MemLevel::Emem), 500);
    }
}
