//! Near-memory lookup structures (§4.1 "Near-memory Processing").
//!
//! The NFP exposes a content-addressable memory per FPC and hash-lookup
//! acceleration. FlexTOE builds "16-entry fully-associative local memory
//! caches that evict entries based on LRU" and a "512-entry direct-mapped
//! second-level cache in CLS". Both structures are implemented here and
//! reused for the EMEM SRAM cache model.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    val: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU cache (arena-backed doubly-linked list, O(1) ops).
pub struct LruCache<K: Eq + Hash + Clone, V> {
    cap: usize,
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    head: usize, // most recently used
    tail: usize, // least recently used
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        LruCache {
            cap,
            map: HashMap::with_capacity(cap),
            entries: Vec::with_capacity(cap.min(4096)),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up and touch (promote to MRU). Counts hit/miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if let Some(&idx) = self.map.get(key) {
            self.hits += 1;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            Some(&self.entries[idx].val)
        } else {
            self.misses += 1;
            None
        }
    }

    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        if let Some(&idx) = self.map.get(key) {
            self.hits += 1;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            Some(&mut self.entries[idx].val)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Check presence without touching or counting.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Insert (or refresh) an entry; returns the evicted LRU entry if the
    /// cache was full.
    pub fn insert(&mut self, key: K, val: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.entries[idx].val = val;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return None;
        }
        if self.map.len() >= self.cap {
            let victim = self.tail;
            self.unlink(victim);
            let old_key = self.entries[victim].key.clone();
            self.map.remove(&old_key);
            self.evictions += 1;
            // reuse slot
            let old = std::mem::replace(
                &mut self.entries[victim],
                Entry {
                    key: key.clone(),
                    val,
                    prev: NIL,
                    next: NIL,
                },
            );
            self.map.insert(key, victim);
            self.push_front(victim);
            Some((old.key, old.val))
        } else {
            let idx = self.entries.len();
            self.entries.push(Entry {
                key: key.clone(),
                val,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, idx);
            self.push_front(idx);
            None
        }
    }

    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        V: Default,
    {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        // Leave a tombstone in the arena (slot reuse is handled on insert
        // only for evictions; removed slots are simply abandoned, which is
        // fine for the small, long-lived caches we model).
        Some(std::mem::take(&mut self.entries[idx].val))
    }
}

/// A direct-mapped tag cache: `slots[hash % n]` holds one key.
///
/// Models the 512-entry CLS second-level connection-state cache and the
/// pre-processor's 128-entry lookup cache (§4.1). Only presence is
/// tracked; the cached data itself lives in the authoritative store.
pub struct DirectMapped<K: Eq + Clone> {
    slots: Vec<Option<K>>,
    pub hits: u64,
    pub misses: u64,
}

impl<K: Eq + Clone> DirectMapped<K> {
    pub fn new(n_slots: usize) -> Self {
        assert!(n_slots > 0);
        DirectMapped {
            slots: vec![None; n_slots],
            hits: 0,
            misses: 0,
        }
    }

    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Access `key` whose hash is `hash`: returns true on hit; on miss the
    /// key is installed (evicting any conflicting occupant).
    pub fn access(&mut self, key: &K, hash: u64) -> bool {
        let slot = (hash % self.slots.len() as u64) as usize;
        if self.slots[slot].as_ref() == Some(key) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.slots[slot] = Some(key.clone());
            false
        }
    }

    pub fn invalidate(&mut self, key: &K, hash: u64) {
        let slot = (hash % self.slots.len() as u64) as usize;
        if self.slots[slot].as_ref() == Some(key) {
            self.slots[slot] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.get(&1), Some(&10)); // touch 1: order now 1,3,2
        let ev = c.insert(4, 40); // evicts 2
        assert_eq!(ev, Some((2, 20)));
        assert!(c.contains(&1) && c.contains(&3) && c.contains(&4));
        assert!(!c.contains(&2));
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn lru_reinsert_updates_value_and_order() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(1, "a2"); // refresh 1
        let ev = c.insert(3, "c"); // should evict 2, not 1
        assert_eq!(ev, Some((2, "b")));
        assert_eq!(c.get(&1), Some(&"a2"));
    }

    #[test]
    fn lru_hit_miss_accounting() {
        let mut c: LruCache<u32, ()> = LruCache::new(16);
        for i in 0..16 {
            c.insert(i, ());
        }
        for i in 0..16 {
            assert!(c.get(&i).is_some());
        }
        assert!(c.get(&99).is_none());
        assert_eq!(c.hits, 16);
        assert_eq!(c.misses, 1);
        assert_eq!(c.len(), 16);
    }

    #[test]
    fn lru_capacity_one() {
        let mut c: LruCache<u8, u8> = LruCache::new(1);
        assert!(c.insert(1, 1).is_none());
        assert_eq!(c.insert(2, 2), Some((1, 1)));
        assert_eq!(c.get(&2), Some(&2));
    }

    #[test]
    fn lru_heavy_churn_consistent() {
        // stress arena/list consistency under eviction pressure
        let mut c: LruCache<u64, u64> = LruCache::new(16);
        for i in 0..10_000u64 {
            c.insert(i % 37, i);
            if let Some(v) = c.get(&(i % 17)) {
                assert_eq!(*v % 17, (*v) % 17);
            }
            assert!(c.len() <= 16);
        }
    }

    #[test]
    fn lru_remove() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 11);
        c.insert(2, 22);
        assert_eq!(c.remove(&1), Some(11));
        assert!(!c.contains(&1));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn direct_mapped_conflict_eviction() {
        let mut d: DirectMapped<u32> = DirectMapped::new(4);
        assert!(!d.access(&1, 1)); // cold miss, installed
        assert!(d.access(&1, 1)); // hit
        assert!(!d.access(&5, 5)); // maps to slot 1, evicts key 1
        assert!(!d.access(&1, 1)); // miss again (was evicted)
        assert_eq!(d.hits, 1);
        assert_eq!(d.misses, 3);
    }

    #[test]
    fn direct_mapped_invalidate() {
        let mut d: DirectMapped<u32> = DirectMapped::new(8);
        d.access(&3, 3);
        d.invalidate(&3, 3);
        assert!(!d.access(&3, 3));
        // invalidating a non-resident key is a no-op
        d.invalidate(&99, 99);
    }

    #[test]
    fn lru_working_set_behaviour() {
        // A working set within capacity hits ~100% after warmup; beyond
        // capacity with cyclic access it thrashes — the Fig. 13 mechanism.
        let mut c: LruCache<u64, ()> = LruCache::new(512);
        for round in 0..4 {
            for i in 0..512u64 {
                if round == 0 {
                    c.insert(i, ());
                } else {
                    assert!(c.get(&i).is_some());
                }
            }
        }
        let mut c: LruCache<u64, ()> = LruCache::new(512);
        let mut miss = 0;
        for _ in 0..4 {
            for i in 0..1024u64 {
                if c.get(&i).is_none() {
                    miss += 1;
                    c.insert(i, ());
                }
            }
        }
        assert_eq!(
            miss,
            4 * 1024,
            "cyclic scan over 2x capacity must thrash LRU"
        );
    }
}
