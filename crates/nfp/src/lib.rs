//! # flextoe-nfp — the SmartNIC hardware substrate, simulated
//!
//! The paper's target is the Netronome Agilio-CX40 (NFP-4000 NPU). That
//! hardware cannot be expressed directly in Rust, so this crate provides
//! the closest synthetic equivalent per DESIGN.md §1: cycle-cost models of
//! the FPCs (with 8-thread memory-latency hiding), the CLS/CTM/IMEM/EMEM
//! memory hierarchy and its caches, the IMEM lookup engine, the PCIe DMA
//! engine, and the 40 Gbps MAC/NBI — all driven by the `flextoe-sim`
//! discrete-event engine. The TCP data-path in `flextoe-core` charges its
//! work against these models, which is what makes Table 3 (parallelism
//! breakdown) and Fig. 13 (connection scalability) reproducible.

pub mod cam;
pub mod dma;
pub mod fpc;
pub mod lookup;
pub mod mac;
pub mod memory;
pub mod params;

pub use cam::{DirectMapped, LruCache};
pub use dma::{dma_req, DmaDir, DmaEngine};
pub use fpc::{Cost, FpcTimer};
pub use lookup::{ConnDb, LookupCache};
pub use mac::{MacPort, MacTx};
pub use memory::{ConnStateCache, PktBufPool, StateHit};
pub use params::{
    agilio_cx40, agilio_lx, bluefield_port, host_xeon, x86_port, MemLatencies, MemLevel,
    PcieParams, Platform,
};
