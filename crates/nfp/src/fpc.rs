//! Flow-processing-core timing model.
//!
//! An FPC is a single-issue 32-bit core with 8 hardware threads (§2.3).
//! Compute serializes on the issue pipeline; memory waits park the thread,
//! letting sibling threads run. This is the mechanism behind Table 3's
//! "+Intra-FPC parallelism 2.25×" row: with multithreading on, memory
//! latency overlaps compute of other segments; with it off, every memory
//! reference stalls the whole core.
//!
//! The model: each work item costs `compute` cycles (exclusive use of the
//! issue pipeline) followed by `mem` cycles of memory waiting (thread
//! parked). At most `threads` items are in flight; further arrivals queue.

use flextoe_sim::{Duration, Time};

/// Cost of one work item on an FPC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Instruction-execution cycles (occupy the issue pipeline).
    pub compute: u64,
    /// Memory-wait cycles (overlappable across hardware threads).
    pub mem: u64,
}

impl Cost {
    pub const ZERO: Cost = Cost { compute: 0, mem: 0 };

    pub fn new(compute: u64, mem: u64) -> Cost {
        Cost { compute, mem }
    }

    pub fn total(&self) -> u64 {
        self.compute + self.mem
    }
}

impl core::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            compute: self.compute + rhs.compute,
            mem: self.mem + rhs.mem,
        }
    }
}
impl core::ops::AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

/// Timing state of one FPC (or one host core).
#[derive(Clone, Debug)]
pub struct FpcTimer {
    cycle: Duration,
    threads: usize,
    /// When the issue pipeline frees up.
    core_free: Time,
    /// Completion times of in-flight items (one slot per busy hw thread).
    inflight: Vec<Time>,
    /// Total cycles of compute issued (utilization accounting).
    pub busy: Duration,
    pub items: u64,
}

impl FpcTimer {
    pub fn new(clock: flextoe_sim::Clock, threads: usize) -> FpcTimer {
        assert!(threads >= 1);
        FpcTimer {
            cycle: clock.cycles(1),
            threads,
            core_free: Time::ZERO,
            inflight: Vec::with_capacity(threads),
            busy: Duration::ZERO,
            items: 0,
        }
    }

    fn cycles(&self, n: u64) -> Duration {
        Duration::from_ps(self.cycle.ps().saturating_mul(n))
    }

    /// Admit a work item arriving at `now`; returns its completion time.
    ///
    /// With `threads == 1` the item also blocks the core during its memory
    /// wait (no latency hiding) — the Table 3 "pipelining only" config.
    pub fn execute(&mut self, now: Time, cost: Cost) -> Time {
        // Retire completed items: reverse swap_remove scan — no element
        // shifting, and the slot swapped in from the tail was already
        // examined. (The list is a multiset of completion times; order
        // never matters.)
        let mut i = self.inflight.len();
        while i > 0 {
            i -= 1;
            if self.inflight[i] <= now {
                self.inflight.swap_remove(i);
            }
        }

        // Wait for a hardware thread.
        let thread_free = if self.inflight.len() < self.threads {
            now
        } else {
            // earliest completion
            let (idx, &t) = self
                .inflight
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .unwrap();
            self.inflight.swap_remove(idx);
            t
        };

        let start = thread_free.max(now).max(self.core_free);
        let compute_end = start + self.cycles(cost.compute);
        let done = if self.threads == 1 {
            // single-threaded: memory stalls the issue pipeline too
            let d = compute_end + self.cycles(cost.mem);
            self.core_free = d;
            d
        } else {
            self.core_free = compute_end;
            compute_end + self.cycles(cost.mem)
        };
        self.inflight.push(done);
        self.busy += self.cycles(cost.compute);
        self.items += 1;
        done
    }

    /// Earliest time a new arrival could *start* executing.
    pub fn next_free(&self, now: Time) -> Time {
        let mut live: Vec<Time> = self.inflight.iter().copied().filter(|&t| t > now).collect();
        if live.len() < self.threads {
            return now.max(self.core_free);
        }
        live.sort();
        live[live.len() - self.threads].max(self.core_free)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextoe_sim::clocks::FPC_800MHZ;

    fn t_ns(ns: u64) -> Time {
        Time::from_ns(ns)
    }

    #[test]
    fn single_item_cost() {
        let mut f = FpcTimer::new(FPC_800MHZ, 8);
        // 100 compute + 400 mem cycles at 1.25ns/cyc = 125ns + 500ns
        let done = f.execute(Time::ZERO, Cost::new(100, 400));
        assert_eq!(done.as_ns(), 625);
    }

    #[test]
    fn multithreading_hides_memory_latency() {
        // 8 items of (100 compute, 700 mem) cycles on 8 threads:
        // compute serializes (8 * 100 = 800 cyc), memory overlaps.
        // Item k completes at (k+1)*100 + 700 cycles.
        let mut mt = FpcTimer::new(FPC_800MHZ, 8);
        let mut last = Time::ZERO;
        for _ in 0..8 {
            last = mt.execute(Time::ZERO, Cost::new(100, 700));
        }
        assert_eq!(last.as_ns(), (8 * 100 + 700) * 125 / 100); // 1500 cyc = 1875ns

        // Single-threaded: fully serialized: 8 * 800 cycles.
        let mut st = FpcTimer::new(FPC_800MHZ, 1);
        let mut last = Time::ZERO;
        for _ in 0..8 {
            last = st.execute(Time::ZERO, Cost::new(100, 700));
        }
        assert_eq!(last.as_ns(), 8 * 800 * 125 / 100); // 6400 cyc = 8000ns
    }

    #[test]
    fn throughput_ratio_approaches_paper_gain() {
        // Table 3 reports 2.25x from enabling 8 threads. With a
        // compute:mem split like the protocol stage's (~1:1.3), sustained
        // throughput improves by about that factor.
        let run = |threads: usize| {
            let mut f = FpcTimer::new(FPC_800MHZ, threads);
            let mut now = Time::ZERO;
            let mut done = Time::ZERO;
            for _ in 0..10_000 {
                done = f.execute(now, Cost::new(120, 160));
                // arrivals are back-to-back (saturated stage)
                now = f.next_free(now);
            }
            done
        };
        let st = run(1).as_ns() as f64;
        let mt = run(8).as_ns() as f64;
        let speedup = st / mt;
        assert!(
            (1.8..=2.6).contains(&speedup),
            "speedup {speedup} out of expected band"
        );
    }

    #[test]
    fn queueing_when_all_threads_busy() {
        let mut f = FpcTimer::new(FPC_800MHZ, 2);
        let a = f.execute(Time::ZERO, Cost::new(10, 1000));
        let b = f.execute(Time::ZERO, Cost::new(10, 1000));
        // third item must wait for a thread (the earliest of a, b)
        let c = f.execute(Time::ZERO, Cost::new(10, 0));
        assert!(c >= a.min(b));
        assert_eq!(f.items, 3);
    }

    #[test]
    fn retires_old_items() {
        let mut f = FpcTimer::new(FPC_800MHZ, 1);
        let a = f.execute(Time::ZERO, Cost::new(100, 0));
        // long after completion, the core is free immediately
        let later = a + Duration::from_us(10);
        let b = f.execute(later, Cost::new(100, 0));
        assert_eq!((b - later).as_ns(), 125);
    }

    #[test]
    fn next_free_reflects_backlog() {
        let mut f = FpcTimer::new(FPC_800MHZ, 1);
        assert_eq!(f.next_free(t_ns(5)), t_ns(5));
        let done = f.execute(t_ns(5), Cost::new(800, 0)); // 1us busy
        assert_eq!(f.next_free(t_ns(5)), done);
    }

    #[test]
    fn busy_accounts_compute_only() {
        let mut f = FpcTimer::new(FPC_800MHZ, 8);
        f.execute(Time::ZERO, Cost::new(100, 900));
        assert_eq!(f.busy.as_ns(), 125);
    }

    #[test]
    fn cost_addition() {
        let c = Cost::new(10, 20) + Cost::new(1, 2);
        assert_eq!(c, Cost::new(11, 22));
        assert_eq!(c.total(), 33);
    }
}
