//! Active-connection database (§4.1).
//!
//! "To facilitate connection index lookup in the pre-processing stage, we
//! employ the hardware lookup capability of IMEM to maintain a database of
//! active connections. CAM is used to resolve hash collisions. The
//! pre-processor computes a CRC-32 hash on a segment's 4-tuple to locate
//! the connection index using the lookup engine. The pre-processor caches
//! up to 128 lookup entries in its local memory via a direct-mapped cache
//! on the hash value."

use flextoe_sim::FxHashMap;
use flextoe_wire::FourTuple;

use crate::cam::DirectMapped;
use crate::fpc::Cost;
use crate::params::Platform;

/// The IMEM-resident connection database, shared by all pre-processors.
/// (A `Rc<RefCell<ConnDb>>` in practice; the control plane inserts and
/// removes entries, pre-processors look up.)
pub struct ConnDb {
    table: FxHashMap<FourTuple, u32>,
    imem_cycles: u64,
    pub lookups: u64,
}

impl ConnDb {
    pub fn new(p: &Platform) -> ConnDb {
        ConnDb {
            table: FxHashMap::default(),
            imem_cycles: p.mem.imem,
            lookups: 0,
        }
    }

    /// Control-plane insert when a connection reaches ESTABLISHED (§D).
    pub fn insert(&mut self, tuple: FourTuple, conn: u32) {
        // Both orientations resolve to the same connection; store the
        // canonical (RX) orientation: segments arrive with src=peer.
        self.table.insert(tuple, conn);
    }

    pub fn remove(&mut self, tuple: &FourTuple) -> Option<u32> {
        self.table.remove(tuple)
    }

    pub fn len(&self) -> usize {
        self.table.len()
    }
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Raw lookup (no cost modelling) — control-plane use.
    pub fn get(&self, tuple: &FourTuple) -> Option<u32> {
        self.table.get(tuple).copied()
    }

    /// Lookup via the IMEM lookup engine: costs one IMEM access.
    pub fn lookup_engine(&mut self, tuple: &FourTuple) -> (Option<u32>, Cost) {
        self.lookups += 1;
        (
            self.table.get(tuple).copied(),
            Cost::new(4, self.imem_cycles),
        )
    }
}

/// A pre-processor's private 128-entry direct-mapped lookup cache.
pub struct LookupCache {
    cache: DirectMapped<FourTuple>,
    cached: FxHashMap<FourTuple, u32>,
    local_cycles: u64,
}

impl LookupCache {
    pub fn new(p: &Platform) -> LookupCache {
        LookupCache {
            cache: DirectMapped::new(128),
            cached: FxHashMap::default(),
            local_cycles: p.mem.local,
        }
    }

    /// Resolve `tuple` to a connection index, consulting the local cache
    /// first and falling back to the shared IMEM database.
    pub fn resolve(&mut self, tuple: &FourTuple, db: &mut ConnDb) -> (Option<u32>, Cost) {
        let hash = tuple.flow_hash() as u64;
        if self.cache.access(tuple, hash) {
            if let Some(&conn) = self.cached.get(tuple) {
                // Stale entries are possible after control-plane removal;
                // validate against the authoritative table only on use of
                // the data-path (cheap shadow check here, free of cost).
                if db.get(tuple) == Some(conn) {
                    return (Some(conn), Cost::new(2, self.local_cycles));
                }
            }
        }
        let (res, mut cost) = db.lookup_engine(tuple);
        cost += Cost::new(2, self.local_cycles);
        if let Some(conn) = res {
            self.cached.insert(*tuple, conn);
        } else {
            self.cached.remove(tuple);
        }
        (res, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::agilio_cx40;
    use flextoe_wire::Ip4;

    fn tuple(port: u16) -> FourTuple {
        FourTuple::new(Ip4::host(2), port, Ip4::host(1), 11211)
    }

    #[test]
    fn db_insert_lookup_remove() {
        let p = agilio_cx40();
        let mut db = ConnDb::new(&p);
        db.insert(tuple(1000), 5);
        let (hit, cost) = db.lookup_engine(&tuple(1000));
        assert_eq!(hit, Some(5));
        assert_eq!(cost.mem, p.mem.imem);
        assert_eq!(db.lookup_engine(&tuple(1001)).0, None);
        assert_eq!(db.remove(&tuple(1000)), Some(5));
        assert!(db.is_empty());
    }

    #[test]
    fn cache_hit_is_cheap_after_first_resolve() {
        let p = agilio_cx40();
        let mut db = ConnDb::new(&p);
        let mut lc = LookupCache::new(&p);
        db.insert(tuple(2000), 9);
        let (r1, c1) = lc.resolve(&tuple(2000), &mut db);
        assert_eq!(r1, Some(9));
        assert!(c1.mem >= p.mem.imem); // cold: engine lookup
        let (r2, c2) = lc.resolve(&tuple(2000), &mut db);
        assert_eq!(r2, Some(9));
        assert_eq!(c2.mem, p.mem.local); // warm: local cache
    }

    #[test]
    fn stale_cache_entry_not_returned_after_removal() {
        let p = agilio_cx40();
        let mut db = ConnDb::new(&p);
        let mut lc = LookupCache::new(&p);
        db.insert(tuple(3000), 4);
        lc.resolve(&tuple(3000), &mut db);
        db.remove(&tuple(3000));
        let (r, _) = lc.resolve(&tuple(3000), &mut db);
        assert_eq!(r, None);
    }

    #[test]
    fn unknown_flow_misses() {
        let p = agilio_cx40();
        let mut db = ConnDb::new(&p);
        let mut lc = LookupCache::new(&p);
        let (r, _) = lc.resolve(&tuple(1), &mut db);
        assert_eq!(r, None);
        assert_eq!(db.lookups, 1);
    }
}
