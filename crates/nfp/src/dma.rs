//! The PCIe DMA engine (§2.3): up to 256 asynchronous transactions between
//! host and NIC memory.
//!
//! The engine is a simulation node modelling *timing only*: the requester
//! performs the actual byte movement (into/out of shared-memory payload
//! buffers) when the completion message arrives, which matches the real
//! ordering constraint in §3.1.3 — notifications must not overtake payload
//! DMA completion.
//!
//! Requests arrive as typed [`Msg::Xfer`] messages carrying a `u64`
//! continuation token; completions return as [`Msg::XferDone`] — both
//! allocation-free. Requesters keep their continuation state in their own
//! pending tables (usually the work-pool slot index doubles as the token).
//!
//! On the x86/BlueField ports there is no DMA engine: payload is copied
//! through shared memory on the stage's own core (§E).

use std::collections::VecDeque;

use flextoe_sim::{Ctx, Duration, Msg, Node, Time, XferDone, XferReq};

use crate::params::PcieParams;

/// Direction of a transaction (host-memory read vs. write).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaDir {
    /// NIC reads host memory (TX payload fetch, descriptor fetch).
    HostToNic,
    /// NIC writes host memory (RX payload placement, notifications).
    NicToHost,
}

impl DmaDir {
    /// The `write` flag of the corresponding [`XferReq`].
    pub fn is_write(self) -> bool {
        matches!(self, DmaDir::NicToHost)
    }
}

/// Build a typed transfer request for the engine.
pub fn dma_req(bytes: usize, dir: DmaDir, reply_to: flextoe_sim::NodeId, token: u64) -> XferReq {
    XferReq {
        bytes: bytes as u32,
        write: dir.is_write(),
        reply_to,
        token,
    }
}

pub struct DmaEngine {
    pcie: PcieParams,
    /// When the shared PCIe data link frees up.
    link_free: Time,
    inflight: usize,
    pending: VecDeque<XferReq>,
    pub completed: u64,
    pub bytes_moved: u64,
}

impl DmaEngine {
    pub fn new(pcie: PcieParams) -> DmaEngine {
        DmaEngine {
            pcie,
            link_free: Time::ZERO,
            inflight: 0,
            pending: VecDeque::new(),
            completed: 0,
            bytes_moved: 0,
        }
    }

    fn xfer_time(&self, bytes: usize) -> Duration {
        Duration::from_ps(
            (bytes as u64)
                .saturating_mul(1_000_000_000_000)
                .div_ceil(self.pcie.bytes_per_sec),
        )
    }

    fn admit(&mut self, ctx: &mut Ctx<'_>, req: XferReq) {
        let now = ctx.now();
        let start = self.link_free.max(now);
        let xfer_end = start + self.xfer_time(req.bytes as usize);
        self.link_free = xfer_end;
        let latency = if req.write {
            self.pcie.write_latency
        } else {
            self.pcie.read_latency
        };
        let done = xfer_end + latency;
        self.inflight += 1;
        self.bytes_moved += req.bytes as u64;
        ctx.send_at(
            ctx.self_id(),
            done,
            XferDone {
                token: req.token,
                to: req.reply_to,
            },
        );
    }
}

impl Node for DmaEngine {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg {
            Msg::Xfer(req) => {
                if self.inflight >= self.pcie.max_inflight {
                    self.pending.push_back(req);
                } else {
                    self.admit(ctx, req);
                }
            }
            Msg::XferDone(done) => {
                self.inflight -= 1;
                self.completed += 1;
                ctx.send(done.to, Duration::ZERO, done);
                if self.inflight < self.pcie.max_inflight {
                    if let Some(req) = self.pending.pop_front() {
                        self.admit(ctx, req);
                    }
                }
            }
            m => panic!("dma-engine: unexpected message {}", m.variant_name()),
        }
    }

    fn name(&self) -> String {
        "dma-engine".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::agilio_cx40;
    use flextoe_sim::{NodeId, Sim};

    struct Sink {
        tokens: Vec<(u64, u64)>, // (arrival ns, token value)
    }
    impl Node for Sink {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let Msg::XferDone(done) = msg else {
                panic!("expected completion")
            };
            self.tokens.push((ctx.now().as_ns(), done.token));
        }
    }

    fn setup() -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(1);
        let sink = sim.add_node(Sink { tokens: vec![] });
        let dma = sim.add_node(DmaEngine::new(agilio_cx40().pcie));
        (sim, dma, sink)
    }

    #[test]
    fn single_read_latency() {
        let (mut sim, dma, sink) = setup();
        sim.schedule(Time::ZERO, dma, dma_req(1448, DmaDir::HostToNic, sink, 7));
        sim.run();
        let t = sim.node_ref::<Sink>(sink).tokens[0];
        // xfer 1448B @ 7.88GB/s ≈ 183.7ns + 900ns read latency
        assert_eq!(t.1, 7);
        assert!(t.0 >= 1080 && t.0 <= 1090, "arrival {}ns", t.0);
    }

    #[test]
    fn write_is_cheaper_than_read() {
        let (mut sim, dma, sink) = setup();
        sim.schedule(Time::ZERO, dma, dma_req(64, DmaDir::NicToHost, sink, 1));
        sim.schedule(
            Time::from_us(10),
            dma,
            dma_req(64, DmaDir::HostToNic, sink, 2),
        );
        sim.run();
        let toks = &sim.node_ref::<Sink>(sink).tokens;
        let write_lat = toks[0].0;
        let read_lat = toks[1].0 - 10_000;
        assert!(write_lat < read_lat);
    }

    #[test]
    fn transactions_serialize_on_link_bandwidth() {
        let (mut sim, dma, sink) = setup();
        for i in 0..10u64 {
            sim.schedule(Time::ZERO, dma, dma_req(16_384, DmaDir::NicToHost, sink, i));
        }
        sim.run();
        let toks = &sim.node_ref::<Sink>(sink).tokens;
        assert_eq!(toks.len(), 10);
        // 10 * 16KiB at 7.88 GB/s ≈ 20.8us of serialization; last completion
        // must be at least that far out (latency pipelines across xfers).
        assert!(toks[9].0 >= 20_700, "last {}ns", toks[9].0);
        // FIFO completion order
        let vals: Vec<u64> = toks.iter().map(|t| t.1).collect();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn inflight_cap_queues_excess() {
        let mut pcie = agilio_cx40().pcie;
        pcie.max_inflight = 2;
        let mut sim = Sim::new(1);
        let sink = sim.add_node(Sink { tokens: vec![] });
        let dma = sim.add_node(DmaEngine::new(pcie));
        for i in 0..5u64 {
            sim.schedule(Time::ZERO, dma, dma_req(4096, DmaDir::HostToNic, sink, i));
        }
        sim.run();
        let eng = sim.node_ref::<DmaEngine>(dma);
        assert_eq!(eng.completed, 5);
        assert_eq!(eng.bytes_moved, 5 * 4096);
        assert_eq!(sim.node_ref::<Sink>(sink).tokens.len(), 5);
    }
}
