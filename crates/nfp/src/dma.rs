//! The PCIe DMA engine (§2.3): up to 256 asynchronous transactions between
//! host and NIC memory.
//!
//! The engine is a simulation node modelling *timing only*: the requester
//! performs the actual byte movement (into/out of shared-memory payload
//! buffers) when the completion message arrives, which matches the real
//! ordering constraint in §3.1.3 — notifications must not overtake payload
//! DMA completion.

use std::collections::VecDeque;

use flextoe_sim::{cast, Ctx, Duration, Msg, Node, NodeId, Time};

use crate::params::PcieParams;

/// Direction of a transaction (host-memory read vs. write).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaDir {
    /// NIC reads host memory (TX payload fetch, descriptor fetch).
    HostToNic,
    /// NIC writes host memory (RX payload placement, notifications).
    NicToHost,
}

/// Request message: on completion, `token` is sent back to `reply_to`.
pub struct DmaReq {
    pub bytes: usize,
    pub dir: DmaDir,
    pub reply_to: NodeId,
    pub token: Msg,
}

/// Internal completion marker carrying the continuation (completions are
/// NOT FIFO: reads and writes have different latencies).
struct DmaDone {
    to: NodeId,
    token: Msg,
}

pub struct DmaEngine {
    pcie: PcieParams,
    /// When the shared PCIe data link frees up.
    link_free: Time,
    inflight: usize,
    pending: VecDeque<DmaReq>,
    pub completed: u64,
    pub bytes_moved: u64,
}

impl DmaEngine {
    pub fn new(pcie: PcieParams) -> DmaEngine {
        DmaEngine {
            pcie,
            link_free: Time::ZERO,
            inflight: 0,
            pending: VecDeque::new(),
            completed: 0,
            bytes_moved: 0,
        }
    }

    fn xfer_time(&self, bytes: usize) -> Duration {
        Duration::from_ps(
            (bytes as u64)
                .saturating_mul(1_000_000_000_000)
                .div_ceil(self.pcie.bytes_per_sec),
        )
    }

    fn admit(&mut self, ctx: &mut Ctx<'_>, req: DmaReq) {
        let now = ctx.now();
        let start = self.link_free.max(now);
        let xfer_end = start + self.xfer_time(req.bytes);
        self.link_free = xfer_end;
        let latency = match req.dir {
            DmaDir::HostToNic => self.pcie.read_latency,
            DmaDir::NicToHost => self.pcie.write_latency,
        };
        let done = xfer_end + latency;
        self.inflight += 1;
        self.bytes_moved += req.bytes as u64;
        ctx.send_at(
            ctx.self_id(),
            done,
            DmaDone {
                to: req.reply_to,
                token: req.token,
            },
        );
    }
}

impl Node for DmaEngine {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match flextoe_sim::try_cast::<DmaReq>(msg) {
            Ok(req) => {
                if self.inflight >= self.pcie.max_inflight {
                    self.pending.push_back(*req);
                } else {
                    self.admit(ctx, *req);
                }
            }
            Err(msg) => {
                let done = cast::<DmaDone>(msg);
                self.inflight -= 1;
                self.completed += 1;
                ctx.send_boxed(done.to, Duration::ZERO, done.token);
                if self.inflight < self.pcie.max_inflight {
                    if let Some(req) = self.pending.pop_front() {
                        self.admit(ctx, req);
                    }
                }
            }
        }
    }

    fn name(&self) -> String {
        "dma-engine".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::agilio_cx40;
    use flextoe_sim::Sim;

    struct Sink {
        tokens: Vec<(u64, u32)>, // (arrival ns, token value)
    }
    impl Node for Sink {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            self.tokens.push((ctx.now().as_ns(), *cast::<u32>(msg)));
        }
    }

    fn setup() -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(1);
        let sink = sim.add_node(Sink { tokens: vec![] });
        let dma = sim.add_node(DmaEngine::new(agilio_cx40().pcie));
        (sim, dma, sink)
    }

    #[test]
    fn single_read_latency() {
        let (mut sim, dma, sink) = setup();
        sim.schedule(
            Time::ZERO,
            dma,
            DmaReq {
                bytes: 1448,
                dir: DmaDir::HostToNic,
                reply_to: sink,
                token: Box::new(7u32),
            },
        );
        sim.run();
        let t = sim.node_ref::<Sink>(sink).tokens[0];
        // xfer 1448B @ 7.88GB/s ≈ 183.7ns + 900ns read latency
        assert_eq!(t.1, 7);
        assert!(t.0 >= 1080 && t.0 <= 1090, "arrival {}ns", t.0);
    }

    #[test]
    fn write_is_cheaper_than_read() {
        let (mut sim, dma, sink) = setup();
        sim.schedule(
            Time::ZERO,
            dma,
            DmaReq {
                bytes: 64,
                dir: DmaDir::NicToHost,
                reply_to: sink,
                token: Box::new(1u32),
            },
        );
        sim.schedule(
            Time::from_us(10),
            dma,
            DmaReq {
                bytes: 64,
                dir: DmaDir::HostToNic,
                reply_to: sink,
                token: Box::new(2u32),
            },
        );
        sim.run();
        let toks = &sim.node_ref::<Sink>(sink).tokens;
        let write_lat = toks[0].0;
        let read_lat = toks[1].0 - 10_000;
        assert!(write_lat < read_lat);
    }

    #[test]
    fn transactions_serialize_on_link_bandwidth() {
        let (mut sim, dma, sink) = setup();
        for i in 0..10u32 {
            sim.schedule(
                Time::ZERO,
                dma,
                DmaReq {
                    bytes: 16_384,
                    dir: DmaDir::NicToHost,
                    reply_to: sink,
                    token: Box::new(i),
                },
            );
        }
        sim.run();
        let toks = &sim.node_ref::<Sink>(sink).tokens;
        assert_eq!(toks.len(), 10);
        // 10 * 16KiB at 7.88 GB/s ≈ 20.8us of serialization; last completion
        // must be at least that far out (latency pipelines across xfers).
        assert!(toks[9].0 >= 20_700, "last {}ns", toks[9].0);
        // FIFO completion order
        let vals: Vec<u32> = toks.iter().map(|t| t.1).collect();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn inflight_cap_queues_excess() {
        let mut pcie = agilio_cx40().pcie;
        pcie.max_inflight = 2;
        let mut sim = Sim::new(1);
        let sink = sim.add_node(Sink { tokens: vec![] });
        let dma = sim.add_node(DmaEngine::new(pcie));
        for i in 0..5u32 {
            sim.schedule(
                Time::ZERO,
                dma,
                DmaReq {
                    bytes: 4096,
                    dir: DmaDir::HostToNic,
                    reply_to: sink,
                    token: Box::new(i),
                },
            );
        }
        sim.run();
        let eng = sim.node_ref::<DmaEngine>(dma);
        assert_eq!(eng.completed, 5);
        assert_eq!(eng.bytes_moved, 5 * 4096);
        assert_eq!(sim.node_ref::<Sink>(sink).tokens.len(), 5);
    }
}
