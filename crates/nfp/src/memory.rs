//! Connection-state cache hierarchy of the protocol stage (§4.1 "Caching").
//!
//! "We use each FPC's CAM to build 16-entry fully-associative local memory
//! caches … The protocol stage adds a 512-entry direct-mapped second-level
//! cache in CLS. Across four islands, we can accommodate up to 2K flows …
//! The final level of memory is in EMEM", whose 3 MB SRAM front cache is
//! "increasingly strained as the number of connections increases"
//! (Fig. 13). This module turns a connection-state access into a cycle
//! cost by walking that hierarchy.

use crate::cam::{DirectMapped, LruCache};
use crate::fpc::Cost;
use crate::params::Platform;

/// Which level served a state access (for tracepoints/stats).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateHit {
    Local,
    Cls,
    EmemSram,
    EmemDram,
}

/// Per-island connection-state cache for the protocol stage.
pub struct ConnStateCache {
    /// 16-entry fully-associative FPC-local CAM cache.
    local: LruCache<u32, ()>,
    /// 512-entry direct-mapped CLS cache.
    cls: DirectMapped<u32>,
    /// Model of the shared 3 MB EMEM SRAM cache (entries of conn state +
    /// metadata; the effective share for connection state is configurable).
    emem_sram: LruCache<u32, ()>,
    lat_local: u64,
    lat_cls: u64,
    lat_sram: u64,
    lat_dram: u64,
    pub local_hits: u64,
    pub cls_hits: u64,
    pub sram_hits: u64,
    pub dram_accesses: u64,
    /// Most connection-state entries simultaneously resident in the EMEM
    /// SRAM front cache — every connection's first access lands here, so
    /// this tracks the distinct-connection footprint until the cache caps
    /// out and Fig. 13's cliff begins.
    pub occ_high_water: usize,
}

/// Default share of the EMEM SRAM cache available for connection state.
/// 3 MB total, but work queues, descriptors, and payload staging compete;
/// FlexTOE reports throughput decline by 8K connections (Fig. 13).
pub const DEFAULT_EMEM_SRAM_CONNS: usize = 6144;

impl ConnStateCache {
    pub fn new(p: &Platform, emem_sram_conns: usize) -> ConnStateCache {
        ConnStateCache {
            local: LruCache::new(16),
            cls: DirectMapped::new(512),
            emem_sram: LruCache::new(emem_sram_conns.max(1)),
            lat_local: p.mem.local,
            lat_cls: p.mem.cls,
            lat_sram: p.mem.emem_sram,
            lat_dram: p.mem.emem_dram,
            local_hits: 0,
            cls_hits: 0,
            sram_hits: 0,
            dram_accesses: 0,
            occ_high_water: 0,
        }
    }

    pub fn with_defaults(p: &Platform) -> ConnStateCache {
        Self::new(p, DEFAULT_EMEM_SRAM_CONNS)
    }

    /// Charge a full connection-state fetch + writeback for `conn`.
    ///
    /// FlexTOE allocates connection identifiers "such that we minimize
    /// collisions on the direct-mapped CLS cache" (§4.1) — we index the
    /// CLS cache by connection id directly, which is exactly that scheme.
    pub fn access(&mut self, conn: u32) -> (Cost, StateHit) {
        if self.local.get(&conn).is_some() {
            self.local_hits += 1;
            return (Cost::new(0, self.lat_local), StateHit::Local);
        }
        // Fetch into local CAM (evicting LRU), from wherever it lives.
        self.local.insert(conn, ());
        if self.cls.access(&conn, conn as u64) {
            self.cls_hits += 1;
            return (Cost::new(0, self.lat_cls), StateHit::Cls);
        }
        // CLS miss walks to EMEM; the SRAM front cache may still hold it.
        if self.emem_sram.get(&conn).is_some() {
            self.sram_hits += 1;
            return (Cost::new(0, self.lat_sram), StateHit::EmemSram);
        }
        self.emem_sram.insert(conn, ());
        self.occ_high_water = self.occ_high_water.max(self.emem_sram.len());
        self.dram_accesses += 1;
        (Cost::new(0, self.lat_dram), StateHit::EmemDram)
    }

    /// Connection-state entries currently resident in the EMEM SRAM cache.
    pub fn occupancy(&self) -> usize {
        self.emem_sram.len()
    }

    /// Remove a connection's cached state (teardown).
    pub fn evict(&mut self, conn: u32) {
        self.local.remove(&conn);
        self.cls.invalidate(&conn, conn as u64);
        self.emem_sram.remove(&conn);
    }

    pub fn accesses(&self) -> u64 {
        self.local_hits + self.cls_hits + self.sram_hits + self.dram_accesses
    }
}

pub use flextoe_sim::PktBufPool;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::agilio_cx40;

    fn cache() -> ConnStateCache {
        ConnStateCache::with_defaults(&agilio_cx40())
    }

    #[test]
    fn few_connections_stay_local() {
        let mut c = cache();
        // 8 conns round-robin: after the first pass everything is in CAM.
        for round in 0..10 {
            for conn in 0..8u32 {
                let (cost, hit) = c.access(conn);
                if round > 0 {
                    assert_eq!(hit, StateHit::Local, "round {round} conn {conn}");
                    assert_eq!(cost.mem, 2);
                }
            }
        }
        assert_eq!(c.dram_accesses, 8); // cold misses only
    }

    #[test]
    fn medium_working_set_served_by_cls() {
        let mut c = cache();
        // 256 conns round-robin exceed the 16-entry CAM but fit CLS.
        for _ in 0..5 {
            for conn in 0..256u32 {
                c.access(conn);
            }
        }
        assert!(c.cls_hits > 800, "cls_hits {}", c.cls_hits);
        assert_eq!(c.dram_accesses, 256); // cold only
    }

    #[test]
    fn huge_working_set_hits_dram() {
        let mut c = ConnStateCache::new(&agilio_cx40(), 2048);
        // 16K conns cycling: SRAM (2048) thrashes, DRAM dominates.
        for _ in 0..2 {
            for conn in 0..16_384u32 {
                c.access(conn);
            }
        }
        assert!(
            c.dram_accesses as f64 / c.accesses() as f64 > 0.9,
            "dram fraction too low: {}/{}",
            c.dram_accesses,
            c.accesses()
        );
    }

    #[test]
    fn cost_ladder_matches_platform() {
        let p = agilio_cx40();
        let mut c = ConnStateCache::with_defaults(&p);
        let (cold, hit) = c.access(7);
        assert_eq!(hit, StateHit::EmemDram);
        assert_eq!(cold.mem, p.mem.emem_dram);
        let (warm, hit) = c.access(7);
        assert_eq!(hit, StateHit::Local);
        assert_eq!(warm.mem, p.mem.local);
    }

    /// A hot, reused connection set that overflows the direct-mapped CLS
    /// must be served by the EMEM SRAM tier — `sram_hits` may not stay
    /// zero. Regression guard for the scale sweep's cache gauges: the
    /// sweep once reported `conn_cache_sram_hits: 0` on every row
    /// because its window gave each connection a single cold burst (no
    /// revisits ever reached below the local CAM).
    #[test]
    fn hot_reused_set_beyond_cls_hits_emem_sram() {
        let mut c = cache();
        // 1024 conns with dense ids: two contenders per CLS slot. Three
        // round-robin passes: pass 1 is cold (DRAM), later passes miss
        // local (16 entries) and CLS (conflicting pairs) but find the
        // state resident in the 6144-entry EMEM SRAM cache.
        for _ in 0..3 {
            for conn in 0..1024u32 {
                c.access(conn);
            }
        }
        assert_eq!(c.dram_accesses, 1024, "cold misses only");
        assert!(
            c.sram_hits >= 1024,
            "revisits past a conflicted CLS must hit EMEM SRAM, got {}",
            c.sram_hits
        );
    }

    #[test]
    fn evict_forces_refetch() {
        let mut c = cache();
        c.access(3);
        c.access(3);
        c.evict(3);
        let (_, hit) = c.access(3);
        assert_eq!(hit, StateHit::EmemDram);
    }
}
