//! Connection-state cache hierarchy of the protocol stage (§4.1 "Caching").
//!
//! "We use each FPC's CAM to build 16-entry fully-associative local memory
//! caches … The protocol stage adds a 512-entry direct-mapped second-level
//! cache in CLS. Across four islands, we can accommodate up to 2K flows …
//! The final level of memory is in EMEM", whose 3 MB SRAM front cache is
//! "increasingly strained as the number of connections increases"
//! (Fig. 13). This module turns a connection-state access into a cycle
//! cost by walking that hierarchy.

use crate::cam::{DirectMapped, LruCache};
use crate::fpc::Cost;
use crate::params::Platform;

/// Which level served a state access (for tracepoints/stats).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateHit {
    Local,
    Cls,
    EmemSram,
    EmemDram,
}

/// Per-island connection-state cache for the protocol stage.
pub struct ConnStateCache {
    /// 16-entry fully-associative FPC-local CAM cache.
    local: LruCache<u32, ()>,
    /// 512-entry direct-mapped CLS cache.
    cls: DirectMapped<u32>,
    /// Model of the shared 3 MB EMEM SRAM cache (entries of conn state +
    /// metadata; the effective share for connection state is configurable).
    emem_sram: LruCache<u32, ()>,
    lat_local: u64,
    lat_cls: u64,
    lat_sram: u64,
    lat_dram: u64,
    pub local_hits: u64,
    pub cls_hits: u64,
    pub sram_hits: u64,
    pub dram_accesses: u64,
    /// Most connection-state entries simultaneously resident in the EMEM
    /// SRAM front cache — every connection's first access lands here, so
    /// this tracks the distinct-connection footprint until the cache caps
    /// out and Fig. 13's cliff begins.
    pub occ_high_water: usize,
}

/// Default share of the EMEM SRAM cache available for connection state.
/// 3 MB total, but work queues, descriptors, and payload staging compete;
/// FlexTOE reports throughput decline by 8K connections (Fig. 13).
pub const DEFAULT_EMEM_SRAM_CONNS: usize = 6144;

impl ConnStateCache {
    pub fn new(p: &Platform, emem_sram_conns: usize) -> ConnStateCache {
        ConnStateCache {
            local: LruCache::new(16),
            cls: DirectMapped::new(512),
            emem_sram: LruCache::new(emem_sram_conns.max(1)),
            lat_local: p.mem.local,
            lat_cls: p.mem.cls,
            lat_sram: p.mem.emem_sram,
            lat_dram: p.mem.emem_dram,
            local_hits: 0,
            cls_hits: 0,
            sram_hits: 0,
            dram_accesses: 0,
            occ_high_water: 0,
        }
    }

    pub fn with_defaults(p: &Platform) -> ConnStateCache {
        Self::new(p, DEFAULT_EMEM_SRAM_CONNS)
    }

    /// Charge a full connection-state fetch + writeback for `conn`.
    ///
    /// FlexTOE allocates connection identifiers "such that we minimize
    /// collisions on the direct-mapped CLS cache" (§4.1) — we index the
    /// CLS cache by connection id directly, which is exactly that scheme.
    pub fn access(&mut self, conn: u32) -> (Cost, StateHit) {
        if self.local.get(&conn).is_some() {
            self.local_hits += 1;
            return (Cost::new(0, self.lat_local), StateHit::Local);
        }
        // Fetch into local CAM (evicting LRU), from wherever it lives.
        self.local.insert(conn, ());
        if self.cls.access(&conn, conn as u64) {
            self.cls_hits += 1;
            return (Cost::new(0, self.lat_cls), StateHit::Cls);
        }
        // CLS miss walks to EMEM; the SRAM front cache may still hold it.
        if self.emem_sram.get(&conn).is_some() {
            self.sram_hits += 1;
            return (Cost::new(0, self.lat_sram), StateHit::EmemSram);
        }
        self.emem_sram.insert(conn, ());
        self.occ_high_water = self.occ_high_water.max(self.emem_sram.len());
        self.dram_accesses += 1;
        (Cost::new(0, self.lat_dram), StateHit::EmemDram)
    }

    /// Connection-state entries currently resident in the EMEM SRAM cache.
    pub fn occupancy(&self) -> usize {
        self.emem_sram.len()
    }

    /// Remove a connection's cached state (teardown).
    pub fn evict(&mut self, conn: u32) {
        self.local.remove(&conn);
        self.cls.invalidate(&conn, conn as u64);
        self.emem_sram.remove(&conn);
    }

    pub fn accesses(&self) -> u64 {
        self.local_hits + self.cls_hits + self.sram_hits + self.dram_accesses
    }
}

/// A free-list of per-packet byte buffers — the CTM/EMEM packet-buffer
/// pool of the NFP, where "the NBI DMAs the packet into CTM" and the DMA
/// stage "transmits and frees it" (§3.1.2). Buffers are recycled with
/// their capacity, so the steady-state data path performs no per-packet
/// heap allocation: the RX side returns consumed frames here and the TX
/// side draws ACK/segment buffers from the same pool.
#[derive(Debug, Default)]
pub struct PktBufPool {
    free: Vec<Vec<u8>>,
    /// Bound on pooled (idle) buffers; returns beyond it are dropped to
    /// the allocator, modelling the finite packet-buffer memory.
    max_pooled: usize,
    pub takes: u64,
    pub fresh_allocs: u64,
    pub returns: u64,
    pub dropped_returns: u64,
    /// Most buffers simultaneously outstanding (taken, not yet returned) —
    /// the pool-pressure gauge the connection-scalability sweep records.
    pub high_water: u64,
}

impl PktBufPool {
    pub fn new(max_pooled: usize) -> PktBufPool {
        PktBufPool {
            free: Vec::new(),
            max_pooled,
            takes: 0,
            fresh_allocs: 0,
            returns: 0,
            dropped_returns: 0,
            high_water: 0,
        }
    }

    /// Buffers currently outstanding (taken and not yet returned).
    /// Saturating: a pool can be handed more foreign buffers than it gave
    /// out (frames allocated on one NIC are consumed — and returned — on
    /// the peer's).
    pub fn in_flight(&self) -> u64 {
        self.takes.saturating_sub(self.returns)
    }

    /// Take a cleared buffer, reusing pooled capacity when available.
    pub fn take(&mut self) -> Vec<u8> {
        self.takes += 1;
        self.high_water = self.high_water.max(self.in_flight());
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => {
                self.fresh_allocs += 1;
                Vec::new()
            }
        }
    }

    /// Return a buffer to the pool (capacity kept for reuse).
    pub fn put(&mut self, buf: Vec<u8>) {
        self.returns += 1;
        if self.free.len() < self.max_pooled {
            self.free.push(buf);
        } else {
            self.dropped_returns += 1;
        }
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Fraction of takes served from the pool (1.0 = fully recycled).
    pub fn reuse_ratio(&self) -> f64 {
        if self.takes == 0 {
            return 1.0;
        }
        1.0 - self.fresh_allocs as f64 / self.takes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::agilio_cx40;

    #[test]
    fn pkt_buf_pool_recycles_capacity() {
        let mut pool = PktBufPool::new(4);
        let mut a = pool.take();
        assert_eq!(pool.fresh_allocs, 1);
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take();
        assert!(b.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(b.capacity(), cap, "capacity survives the round-trip");
        assert_eq!(pool.fresh_allocs, 1, "second take reused the buffer");
        assert!(pool.reuse_ratio() > 0.49);
    }

    #[test]
    fn pkt_buf_pool_bounds_idle_buffers() {
        let mut pool = PktBufPool::new(2);
        for _ in 0..4 {
            let b = pool.take();
            pool.put(b);
        }
        let (x, y, z) = (pool.take(), pool.take(), pool.take());
        pool.put(x);
        pool.put(y);
        pool.put(z);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.dropped_returns, 1);
    }

    fn cache() -> ConnStateCache {
        ConnStateCache::with_defaults(&agilio_cx40())
    }

    #[test]
    fn few_connections_stay_local() {
        let mut c = cache();
        // 8 conns round-robin: after the first pass everything is in CAM.
        for round in 0..10 {
            for conn in 0..8u32 {
                let (cost, hit) = c.access(conn);
                if round > 0 {
                    assert_eq!(hit, StateHit::Local, "round {round} conn {conn}");
                    assert_eq!(cost.mem, 2);
                }
            }
        }
        assert_eq!(c.dram_accesses, 8); // cold misses only
    }

    #[test]
    fn medium_working_set_served_by_cls() {
        let mut c = cache();
        // 256 conns round-robin exceed the 16-entry CAM but fit CLS.
        for _ in 0..5 {
            for conn in 0..256u32 {
                c.access(conn);
            }
        }
        assert!(c.cls_hits > 800, "cls_hits {}", c.cls_hits);
        assert_eq!(c.dram_accesses, 256); // cold only
    }

    #[test]
    fn huge_working_set_hits_dram() {
        let mut c = ConnStateCache::new(&agilio_cx40(), 2048);
        // 16K conns cycling: SRAM (2048) thrashes, DRAM dominates.
        for _ in 0..2 {
            for conn in 0..16_384u32 {
                c.access(conn);
            }
        }
        assert!(
            c.dram_accesses as f64 / c.accesses() as f64 > 0.9,
            "dram fraction too low: {}/{}",
            c.dram_accesses,
            c.accesses()
        );
    }

    #[test]
    fn cost_ladder_matches_platform() {
        let p = agilio_cx40();
        let mut c = ConnStateCache::with_defaults(&p);
        let (cold, hit) = c.access(7);
        assert_eq!(hit, StateHit::EmemDram);
        assert_eq!(cold.mem, p.mem.emem_dram);
        let (warm, hit) = c.access(7);
        assert_eq!(hit, StateHit::Local);
        assert_eq!(warm.mem, p.mem.local);
    }

    #[test]
    fn evict_forces_refetch() {
        let mut c = cache();
        c.access(3);
        c.access(3);
        c.evict(3);
        let (_, hit) = c.access(3);
        assert_eq!(hit, StateHit::EmemDram);
    }
}
