//! Ground-truth differential scoring: the one experiment a real
//! testbed cannot run. The sim records exact per-flow byte counts next
//! to the sketch; these helpers turn (truth, estimator, candidates)
//! into ARE and heavy-hitter recall/precision.

/// Accuracy of one sketch against exact truth.
#[derive(Clone, Copy, Debug)]
pub struct SketchScore {
    /// Average relative error over all true flows: mean |est-true|/true.
    pub are: f64,
    /// Flows where the sketch reported less than truth (0 for an intact
    /// count-min; >0 means epochs were lost, e.g. a killed switch).
    pub underestimates: u64,
    /// True heavy hitters (flows with >= theta * total true bytes).
    pub hh_truth: usize,
    /// Reported heavy hitters among the candidate keys.
    pub hh_est: usize,
    /// |truth ∩ est| / |truth| (1.0 when truth set is empty).
    pub hh_recall: f64,
    /// |truth ∩ est| / |est| (1.0 when est set is empty).
    pub hh_precision: f64,
}

/// Keys whose value meets `theta * total`, from a `(key, value)` slice.
/// Returns keys sorted ascending. `total` is passed explicitly so the
/// estimate side can threshold on the sketch's own observed total.
pub fn heavy_hitters(flows: &[(u64, u64)], total: u64, theta: f64) -> Vec<u64> {
    let thresh = (theta * total as f64).max(1.0) as u64;
    let mut hh: Vec<u64> = flows
        .iter()
        .filter(|&&(_, v)| v >= thresh)
        .map(|&(k, _)| k)
        .collect();
    hh.sort_unstable();
    hh
}

/// Score an estimator against exact truth.
///
/// * `truth` — exact per-flow byte counts, sorted by key (determinism:
///   all accumulation runs in that order).
/// * `est` — point-query closure (sketch estimate for a key).
/// * `est_total` / `candidates` — the sketch's own observed byte total
///   and candidate-key set (what a real collector would threshold on).
/// * `theta` — heavy-hitter threshold as a fraction of total bytes.
pub fn score_sketch(
    truth: &[(u64, u64)],
    est: impl Fn(u64) -> u64,
    candidates: &[u64],
    est_total: u64,
    theta: f64,
) -> SketchScore {
    let mut are_sum = 0.0f64;
    let mut n = 0u64;
    let mut underestimates = 0u64;
    let mut truth_total = 0u64;
    for &(k, t) in truth {
        truth_total += t;
        if t == 0 {
            continue;
        }
        let e = est(k);
        if e < t {
            underestimates += 1;
        }
        are_sum += (e.abs_diff(t)) as f64 / t as f64;
        n += 1;
    }
    let are = if n == 0 { 0.0 } else { are_sum / n as f64 };

    let hh_true = heavy_hitters(truth, truth_total, theta);
    let est_flows: Vec<(u64, u64)> = candidates.iter().map(|&k| (k, est(k))).collect();
    let hh_rep = heavy_hitters(&est_flows, est_total, theta);
    let hit = hh_rep
        .iter()
        .filter(|k| hh_true.binary_search(k).is_ok())
        .count();
    let hh_recall = if hh_true.is_empty() {
        1.0
    } else {
        hit as f64 / hh_true.len() as f64
    };
    let hh_precision = if hh_rep.is_empty() {
        1.0
    } else {
        hit as f64 / hh_rep.len() as f64
    };
    SketchScore {
        are,
        underestimates,
        hh_truth: hh_true.len(),
        hh_est: hh_rep.len(),
        hh_recall,
        hh_precision,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{CountMin, SketchCfg};

    #[test]
    fn perfect_estimator_scores_perfectly() {
        let truth: Vec<(u64, u64)> = (1..=100).map(|k| (k, k * 10)).collect();
        let total: u64 = truth.iter().map(|&(_, v)| v).sum();
        let cands: Vec<u64> = truth.iter().map(|&(k, _)| k).collect();
        let s = score_sketch(&truth, |k| k * 10, &cands, total, 0.01);
        assert_eq!(s.are, 0.0);
        assert_eq!(s.underestimates, 0);
        assert_eq!(s.hh_recall, 1.0);
        assert_eq!(s.hh_precision, 1.0);
        assert!(s.hh_truth > 0);
    }

    #[test]
    fn heavy_hitters_threshold() {
        let flows = vec![(1u64, 500u64), (2, 400), (3, 50), (4, 50)];
        let hh = heavy_hitters(&flows, 1000, 0.1);
        assert_eq!(hh, vec![1, 2]);
    }

    #[test]
    fn sketch_scores_sanely() {
        let cfg = SketchCfg {
            depth: 4,
            width: 1024,
            key_slots: 256,
        };
        let mut cm = CountMin::new(&cfg);
        let truth: Vec<(u64, u64)> = (1..=200u64)
            .map(|k| (k.wrapping_mul(0x9E37_79B9_7F4A_7C15), 64 + (k % 7) * 64))
            .collect();
        let mut sorted = truth.clone();
        sorted.sort_unstable();
        for &(k, v) in &sorted {
            cm.update(k, v);
        }
        let cands: Vec<u64> = sorted.iter().map(|&(k, _)| k).collect();
        let s = score_sketch(&sorted, |k| cm.estimate(k), &cands, cm.total(), 0.005);
        // 200 keys into 4x1024 cells: essentially collision-free.
        assert!(s.are < 0.05, "are {}", s.are);
        assert_eq!(s.underestimates, 0);
        assert!(s.hh_recall > 0.9);
    }

    #[test]
    fn empty_sets_convention() {
        let s = score_sketch(&[], |_| 0, &[], 0, 0.01);
        assert_eq!(s.are, 0.0);
        assert_eq!(s.hh_recall, 1.0);
        assert_eq!(s.hh_precision, 1.0);
    }
}
