//! The sketches themselves: count-min, the LSB-sharing variant, and the
//! direct-mapped candidate-key table that makes heavy-hitter *identity*
//! recoverable (a sketch alone only answers point queries).

/// splitmix64 finalizer: the one extra mix the fast path is allowed on
/// top of the already-computed `ecmp_basis`. One multiply-shift chain,
/// no key-material re-read.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^ (z >> 33)
}

/// Per-row odd multipliers for count-min's multiply-shift indexing.
/// Eight rows is far more depth than any configuration here uses.
const ROW_ODD: [u64; 8] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0x27D4_EB2F_1656_67C5,
    0x85EB_CA77_C2B2_AE63,
    0xA24B_AED4_963E_E407,
    0x9FB2_1C65_1E98_DF25,
    0xCC9E_2D51_0B5E_1B87,
];

/// Shape shared by every sketch instance in one scenario. `width` and
/// `key_slots` must be powers of two (indexing is mask/shift only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SketchCfg {
    /// Rows per sketch (hash functions).
    pub depth: usize,
    /// Counters per row; power of two.
    pub width: usize,
    /// Slots in the candidate-key table; power of two.
    pub key_slots: usize,
}

impl SketchCfg {
    pub fn validate(&self) {
        assert!(
            self.depth >= 1 && self.depth <= ROW_ODD.len(),
            "sketch depth {} out of range 1..={}",
            self.depth,
            ROW_ODD.len()
        );
        assert!(
            self.width.is_power_of_two() && self.width >= 2,
            "sketch width {} must be a power of two >= 2",
            self.width
        );
        assert!(
            self.key_slots.is_power_of_two(),
            "key_slots {} must be a power of two",
            self.key_slots
        );
    }
}

impl Default for SketchCfg {
    fn default() -> SketchCfg {
        SketchCfg {
            depth: 4,
            width: 4096,
            key_slots: 4096,
        }
    }
}

/// Count-min sketch. Each row indexes the raw key through a private odd
/// multiplier and a shift (multiply-shift hashing): one multiply per
/// row, no rehash of key material.
pub struct CountMin {
    depth: usize,
    width: usize,
    shift: u32,
    cells: Vec<u64>,
    total: u64,
}

impl CountMin {
    pub fn new(cfg: &SketchCfg) -> CountMin {
        cfg.validate();
        CountMin {
            depth: cfg.depth,
            width: cfg.width,
            shift: 64 - cfg.width.trailing_zeros(),
            cells: vec![0; cfg.depth * cfg.width],
            total: 0,
        }
    }

    #[inline]
    pub fn update(&mut self, key: u64, v: u64) {
        let mut base = 0usize;
        for &odd in ROW_ODD.iter().take(self.depth) {
            let idx = (key.wrapping_mul(odd) >> self.shift) as usize;
            self.cells[base + idx] += v;
            base += self.width;
        }
        self.total += v;
    }

    /// Point query: min over rows. Never under-estimates the true count.
    pub fn estimate(&self, key: u64) -> u64 {
        let mut est = u64::MAX;
        let mut base = 0usize;
        for &odd in ROW_ODD.iter().take(self.depth) {
            let idx = (key.wrapping_mul(odd) >> self.shift) as usize;
            est = est.min(self.cells[base + idx]);
            base += self.width;
        }
        est
    }

    /// Cell-wise merge; `merge(A, B)` is exactly `sketch(stream A ++ stream B)`.
    pub fn merge_cells(&mut self, cells: &[u64], total: u64) {
        assert_eq!(cells.len(), self.cells.len(), "count-min shape mismatch");
        for (c, &o) in self.cells.iter_mut().zip(cells) {
            *c += o;
        }
        self.total += total;
    }

    pub fn reset(&mut self) {
        self.cells.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }

    pub fn cells(&self) -> &[u64] {
        &self.cells
    }
    pub fn total(&self) -> u64 {
        self.total
    }
    pub fn depth(&self) -> usize {
        self.depth
    }
    pub fn width(&self) -> usize {
        self.width
    }
}

/// LSB-sharing sketch (arXiv:2503.11777 style, with the
/// locality-sensitive framing of arXiv:1905.03113): one `mix64` of the
/// key, then each row reads an overlapping bit window of that single
/// hash — adjacent rows share their low `log2(width)/2` bits. Update
/// cost is one mix regardless of depth; rows are correlated, which is
/// the resilience/accuracy trade the papers study.
pub struct LsbSketch {
    depth: usize,
    width: usize,
    mask: u64,
    /// Bits each successive row shifts the shared hash by.
    share_shift: u32,
    cells: Vec<u64>,
    total: u64,
}

impl LsbSketch {
    pub fn new(cfg: &SketchCfg) -> LsbSketch {
        cfg.validate();
        let log_w = cfg.width.trailing_zeros();
        let share_shift = (log_w / 2).max(1);
        assert!(
            (cfg.depth as u32 - 1) * share_shift + log_w <= 64,
            "LSB windows exceed 64 bits (depth {} width {})",
            cfg.depth,
            cfg.width
        );
        LsbSketch {
            depth: cfg.depth,
            width: cfg.width,
            mask: (cfg.width - 1) as u64,
            share_shift,
            cells: vec![0; cfg.depth * cfg.width],
            total: 0,
        }
    }

    /// Update from an already-mixed hash (the fast path computes
    /// `mix64(basis)` once and shares it with the key table).
    #[inline]
    pub fn update_hashed(&mut self, h: u64, v: u64) {
        let mut base = 0usize;
        let mut w = h;
        for _ in 0..self.depth {
            self.cells[base + (w & self.mask) as usize] += v;
            base += self.width;
            w >>= self.share_shift;
        }
        self.total += v;
    }

    pub fn update(&mut self, key: u64, v: u64) {
        self.update_hashed(mix64(key), v);
    }

    pub fn estimate(&self, key: u64) -> u64 {
        let mut est = u64::MAX;
        let mut base = 0usize;
        let mut w = mix64(key);
        for _ in 0..self.depth {
            est = est.min(self.cells[base + (w & self.mask) as usize]);
            base += self.width;
            w >>= self.share_shift;
        }
        est
    }

    pub fn merge_cells(&mut self, cells: &[u64], total: u64) {
        assert_eq!(cells.len(), self.cells.len(), "lsb sketch shape mismatch");
        for (c, &o) in self.cells.iter_mut().zip(cells) {
            *c += o;
        }
        self.total += total;
    }

    pub fn reset(&mut self) {
        self.cells.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }

    pub fn cells(&self) -> &[u64] {
        &self.cells
    }
    pub fn total(&self) -> u64 {
        self.total
    }
    pub fn share_shift(&self) -> u32 {
        self.share_shift
    }
}

/// Direct-mapped candidate-key table: remembers *which* keys were seen
/// so heavy hitters can be named, not just counted. Last writer wins a
/// slot, so a flow's survival probability tracks its update share —
/// exactly the bias a heavy-hitter table wants. Key 0 means empty
/// (`ecmp_basis` of real traffic is never 0: src_ip is nonzero in the
/// high bits).
pub struct KeyTable {
    slots: Vec<u64>,
    mask: u64,
}

impl KeyTable {
    pub fn new(cfg: &SketchCfg) -> KeyTable {
        cfg.validate();
        KeyTable {
            slots: vec![0; cfg.key_slots],
            mask: (cfg.key_slots - 1) as u64,
        }
    }

    /// Store from the already-mixed hash (slot index reuses `mix64`'s
    /// top bits so it is independent of the LSB windows).
    #[inline]
    pub fn insert_hashed(&mut self, key: u64, h: u64) {
        self.slots[((h >> 32) & self.mask) as usize] = key;
    }

    /// Non-empty candidates in slot order (deterministic).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().copied().filter(|&k| k != 0)
    }

    pub fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = 0);
    }
}

/// Everything one switch carries for telemetry: both sketches, the
/// candidate table, and exact frame/byte totals for the epoch.
pub struct SwitchSketch {
    pub cfg: SketchCfg,
    pub cm: CountMin,
    pub lsb: LsbSketch,
    pub keys: KeyTable,
    pub frames: u64,
    pub bytes: u64,
}

impl SwitchSketch {
    pub fn new(cfg: SketchCfg) -> SwitchSketch {
        SwitchSketch {
            cfg,
            cm: CountMin::new(&cfg),
            lsb: LsbSketch::new(&cfg),
            keys: KeyTable::new(&cfg),
            frames: 0,
            bytes: 0,
        }
    }

    /// THE fast-path hook. `basis` is the frame's precomputed
    /// `FrameMeta::flow_basis`; `len` the wire length. One `mix64`, a
    /// handful of multiply-shift adds — no parse, no alloc, no rehash.
    #[inline]
    pub fn update(&mut self, basis: u64, len: u64) {
        let h = mix64(basis);
        self.cm.update(basis, len);
        self.lsb.update_hashed(h, len);
        self.keys.insert_hashed(basis, h);
        self.frames += 1;
        self.bytes += len;
    }

    pub fn reset(&mut self) {
        self.cm.reset();
        self.lsb.reset();
        self.keys.reset();
        self.frames = 0;
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) struct Lcg(pub u64);
    impl Lcg {
        pub fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 8
        }
    }

    fn tiny() -> SketchCfg {
        SketchCfg {
            depth: 3,
            width: 256,
            key_slots: 64,
        }
    }

    #[test]
    fn never_underestimates() {
        let mut rng = Lcg(42);
        let mut cm = CountMin::new(&tiny());
        let mut lsb = LsbSketch::new(&tiny());
        let keys: Vec<(u64, u64)> = (0..500)
            .map(|_| (rng.next(), 1 + rng.next() % 900))
            .collect();
        for &(k, v) in &keys {
            cm.update(k, v);
            lsb.update(k, v);
        }
        let mut truth = std::collections::BTreeMap::new();
        for &(k, v) in &keys {
            *truth.entry(k).or_insert(0u64) += v;
        }
        for (&k, &t) in &truth {
            assert!(cm.estimate(k) >= t, "count-min under-estimated");
            assert!(lsb.estimate(k) >= t, "lsb sketch under-estimated");
        }
    }

    #[test]
    fn respects_eps_n_bound() {
        // Classic count-min guarantee: overshoot <= e/width * N with
        // prob 1 - exp(-depth) per key. With a fixed seed we assert the
        // bound with a small slack on every key rather than in
        // expectation.
        let cfg = tiny();
        let mut rng = Lcg(7);
        let mut cm = CountMin::new(&cfg);
        let mut truth = std::collections::BTreeMap::new();
        for _ in 0..2000 {
            let (k, v) = (rng.next(), 1 + rng.next() % 50);
            cm.update(k, v);
            *truth.entry(k).or_insert(0u64) += v;
        }
        let n = cm.total();
        let bound = (3.0 * std::f64::consts::E * n as f64 / cfg.width as f64) as u64;
        for (&k, &t) in &truth {
            let over = cm.estimate(k) - t;
            assert!(
                over <= bound,
                "overshoot {over} exceeds 3eN/w = {bound} (N={n})"
            );
        }
    }

    #[test]
    fn merge_equals_union_stream() {
        let cfg = tiny();
        let mut rng = Lcg(99);
        let a: Vec<(u64, u64)> = (0..300)
            .map(|_| (rng.next() % 512, 1 + rng.next() % 9))
            .collect();
        let b: Vec<(u64, u64)> = (0..300)
            .map(|_| (rng.next() % 512, 1 + rng.next() % 9))
            .collect();
        let mut cm_a = CountMin::new(&cfg);
        let mut cm_b = CountMin::new(&cfg);
        let mut cm_u = CountMin::new(&cfg);
        let mut ls_a = LsbSketch::new(&cfg);
        let mut ls_b = LsbSketch::new(&cfg);
        let mut ls_u = LsbSketch::new(&cfg);
        for &(k, v) in &a {
            cm_a.update(k, v);
            ls_a.update(k, v);
            cm_u.update(k, v);
            ls_u.update(k, v);
        }
        for &(k, v) in &b {
            cm_b.update(k, v);
            ls_b.update(k, v);
            cm_u.update(k, v);
            ls_u.update(k, v);
        }
        cm_a.merge_cells(cm_b.cells(), cm_b.total());
        ls_a.merge_cells(ls_b.cells(), ls_b.total());
        assert_eq!(cm_a.cells(), cm_u.cells(), "count-min merge != union");
        assert_eq!(cm_a.total(), cm_u.total());
        assert_eq!(ls_a.cells(), ls_u.cells(), "lsb merge != union");
        assert_eq!(ls_a.total(), ls_u.total());
    }

    #[test]
    fn key_table_keeps_hot_keys() {
        let cfg = tiny();
        let mut kt = KeyTable::new(&cfg);
        // A heavy key updated last in its slot must be present.
        for k in 1..=200u64 {
            kt.insert_hashed(k, mix64(k));
        }
        kt.insert_hashed(7777, mix64(7777));
        assert!(kt.keys().any(|k| k == 7777));
        kt.reset();
        assert_eq!(kt.keys().count(), 0);
    }

    #[test]
    fn switch_sketch_update_and_reset() {
        let mut s = SwitchSketch::new(tiny());
        s.update(0xdead_beef, 100);
        s.update(0xdead_beef, 50);
        assert_eq!(s.frames, 2);
        assert_eq!(s.bytes, 150);
        assert!(s.cm.estimate(0xdead_beef) >= 150);
        assert!(s.lsb.estimate(0xdead_beef) >= 150);
        s.reset();
        assert_eq!(s.frames, 0);
        assert_eq!(s.cm.estimate(0xdead_beef), 0);
    }
}
