//! Epoch report wire format and the collector's merged view.
//!
//! A sweep freezes one switch's sketch state into a flat little-endian
//! u64 payload (carried through the fabric in a pooled frame buffer)
//! and resets the sketch — epochs are disjoint by construction, so the
//! collector's cell-wise merge is exactly the sketch of the union
//! stream.
//!
//! Layout (u64 little-endian words):
//! `magic, switch<<32|epoch, frames, bytes, depth, width, share_shift,`
//! `cm cells (depth*width), lsb cells (depth*width), nkeys, keys...`

use std::collections::BTreeSet;

use crate::sketch::{CountMin, LsbSketch, SketchCfg, SwitchSketch};

/// First word of every telemetry report payload.
pub const REPORT_MAGIC: u64 = 0x544C_4D52_5054_0001; // "TLMRPT" v1

#[inline]
fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn read_u64(buf: &[u8], word: usize) -> Option<u64> {
    let off = word * 8;
    buf.get(off..off + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
}

impl SwitchSketch {
    /// Snapshot this epoch into `out` (cleared first) and reset the
    /// sketch for the next epoch.
    pub fn encode_sweep(&mut self, switch: u32, epoch: u32, out: &mut Vec<u8>) {
        out.clear();
        push_u64(out, REPORT_MAGIC);
        push_u64(out, (switch as u64) << 32 | epoch as u64);
        push_u64(out, self.frames);
        push_u64(out, self.bytes);
        push_u64(out, self.cfg.depth as u64);
        push_u64(out, self.cfg.width as u64);
        push_u64(out, self.lsb.share_shift() as u64);
        for &c in self.cm.cells() {
            push_u64(out, c);
        }
        for &c in self.lsb.cells() {
            push_u64(out, c);
        }
        let keys: Vec<u64> = self.keys.keys().collect();
        push_u64(out, keys.len() as u64);
        for k in keys {
            push_u64(out, k);
        }
        self.reset();
    }
}

/// One decoded sweep payload.
pub struct EpochReport {
    pub switch: u32,
    pub epoch: u32,
    pub frames: u64,
    pub bytes: u64,
    pub depth: usize,
    pub width: usize,
    pub share_shift: u32,
    pub cm_cells: Vec<u64>,
    pub lsb_cells: Vec<u64>,
    pub keys: Vec<u64>,
}

/// Decode a report payload; `None` on wrong magic or truncation.
pub fn decode_report(buf: &[u8]) -> Option<EpochReport> {
    if read_u64(buf, 0)? != REPORT_MAGIC {
        return None;
    }
    let tag = read_u64(buf, 1)?;
    let frames = read_u64(buf, 2)?;
    let bytes = read_u64(buf, 3)?;
    let depth = read_u64(buf, 4)? as usize;
    let width = read_u64(buf, 5)? as usize;
    let share_shift = read_u64(buf, 6)? as u32;
    if depth == 0 || depth > 8 || !width.is_power_of_two() {
        return None;
    }
    let cells = depth * width;
    let mut w = 7usize;
    let mut cm_cells = Vec::with_capacity(cells);
    for _ in 0..cells {
        cm_cells.push(read_u64(buf, w)?);
        w += 1;
    }
    let mut lsb_cells = Vec::with_capacity(cells);
    for _ in 0..cells {
        lsb_cells.push(read_u64(buf, w)?);
        w += 1;
    }
    let nkeys = read_u64(buf, w)? as usize;
    w += 1;
    let mut keys = Vec::with_capacity(nkeys);
    for _ in 0..nkeys {
        keys.push(read_u64(buf, w)?);
        w += 1;
    }
    Some(EpochReport {
        switch: (tag >> 32) as u32,
        epoch: tag as u32,
        frames,
        bytes,
        depth,
        width,
        share_shift,
        cm_cells,
        lsb_cells,
        keys,
    })
}

/// Collector-side accumulated state for one switch: cell-wise merged
/// sketches across epochs plus the union of candidate keys (a
/// `BTreeSet` so every iteration is deterministic and sorted).
pub struct MergedView {
    pub cm: CountMin,
    pub lsb: LsbSketch,
    pub keys: BTreeSet<u64>,
    pub frames: u64,
    pub bytes: u64,
    pub epochs: u32,
}

impl MergedView {
    pub fn new(cfg: &SketchCfg) -> MergedView {
        MergedView {
            cm: CountMin::new(cfg),
            lsb: LsbSketch::new(cfg),
            keys: BTreeSet::new(),
            frames: 0,
            bytes: 0,
            epochs: 0,
        }
    }

    /// Merge one epoch in. Returns `false` (report dropped) on a shape
    /// mismatch instead of corrupting the view.
    pub fn absorb(&mut self, rep: &EpochReport) -> bool {
        if rep.depth != self.cm.depth() || rep.width != self.cm.width() {
            return false;
        }
        self.cm.merge_cells(&rep.cm_cells, rep.bytes);
        self.lsb.merge_cells(&rep.lsb_cells, rep.bytes);
        self.keys.extend(rep.keys.iter().copied());
        self.frames += rep.frames;
        self.bytes += rep.bytes;
        self.epochs += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SketchCfg {
        SketchCfg {
            depth: 2,
            width: 128,
            key_slots: 32,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut s = SwitchSketch::new(cfg());
        for k in 1..=40u64 {
            s.update(k * 0x1234_5678_9abc, 64 * k);
        }
        let (frames, bytes) = (s.frames, s.bytes);
        let cm_before = s.cm.cells().to_vec();
        let mut buf = Vec::new();
        s.encode_sweep(3, 17, &mut buf);
        // sweep resets the live sketch
        assert_eq!(s.frames, 0);
        assert!(s.cm.cells().iter().all(|&c| c == 0));
        let rep = decode_report(&buf).expect("decodes");
        assert_eq!((rep.switch, rep.epoch), (3, 17));
        assert_eq!((rep.frames, rep.bytes), (frames, bytes));
        assert_eq!(rep.cm_cells, cm_before);
        assert!(!rep.keys.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_report(&[]).is_none());
        assert!(decode_report(&[0u8; 64]).is_none());
        let mut s = SwitchSketch::new(cfg());
        s.update(9, 9);
        let mut buf = Vec::new();
        s.encode_sweep(0, 0, &mut buf);
        buf.truncate(buf.len() - 3);
        assert!(decode_report(&buf).is_none());
    }

    #[test]
    fn merged_view_matches_single_stream() {
        let c = cfg();
        let mut live = SwitchSketch::new(c);
        let mut whole = SwitchSketch::new(c);
        let mut view = MergedView::new(&c);
        let mut buf = Vec::new();
        for epoch in 0..3u32 {
            for k in 1..=30u64 {
                let key = k.wrapping_mul(0x9E37_79B9) + epoch as u64;
                live.update(key, k);
                whole.update(key, k);
            }
            live.encode_sweep(0, epoch, &mut buf);
            let rep = decode_report(&buf).unwrap();
            assert!(view.absorb(&rep));
        }
        assert_eq!(view.cm.cells(), whole.cm.cells());
        assert_eq!(view.lsb.cells(), whole.lsb.cells());
        assert_eq!(view.frames, whole.frames);
        assert_eq!(view.epochs, 3);
    }

    #[test]
    fn absorb_rejects_shape_mismatch() {
        let mut s = SwitchSketch::new(SketchCfg {
            depth: 3,
            width: 256,
            key_slots: 32,
        });
        s.update(5, 5);
        let mut buf = Vec::new();
        s.encode_sweep(0, 0, &mut buf);
        let rep = decode_report(&buf).unwrap();
        let mut view = MergedView::new(&cfg());
        assert!(!view.absorb(&rep));
        assert_eq!(view.epochs, 0);
    }
}
