//! In-fabric sketch telemetry: per-switch fast-path sketches, epoch
//! reports, collector-side merged views, and ground-truth differential
//! metrics.
//!
//! Two sketch families run side by side on every telemetry-enabled
//! switch, both fed from the *same* precomputed flow key
//! (`flextoe-wire`'s `FrameMeta::flow_basis`) so the forwarding fast
//! path pays no extra parse and no extra allocation:
//!
//! - [`CountMin`] — the classic count-min sketch with per-row
//!   multiply-shift indexing (one multiply + shift per row, no fresh
//!   hash of the key material).
//! - [`LsbSketch`] — an LSB-sharing / locality-sensitive variant after
//!   arXiv:1905.03113 and arXiv:2503.11777: a *single* 64-bit mix of
//!   the basis is computed once, and each row indexes an overlapping
//!   bit window of that one hash. Rows share low bits (hence the
//!   name), which makes the per-update cost one mix regardless of
//!   depth and makes row indices of one key *correlated* — the trade
//!   the papers study for resilient monitoring.
//!
//! Sketches snapshot-and-reset into flat epoch reports
//! ([`SwitchSketch::encode_sweep`]) that travel the simulated fabric
//! as pooled frames; the collector decodes and [`MergedView::absorb`]s
//! them. Accuracy against sim ground truth is scored by
//! [`score_sketch`] (ARE + heavy-hitter recall/precision).

mod metrics;
mod report;
mod sketch;

pub use metrics::{heavy_hitters, score_sketch, SketchScore};
pub use report::{decode_report, EpochReport, MergedView, REPORT_MAGIC};
pub use sketch::{mix64, CountMin, KeyTable, LsbSketch, SketchCfg, SwitchSketch};
