//! The engine event-core benchmark: a synthetic FlexTOE-shaped pipeline
//! ring (SEQR → PRE → PROTO → POST → DMA → NBI → back) with realistic hop
//! latencies, plus a slow control timer that exercises the wheel's
//! overflow path.
//!
//! Shared by `benches/micro.rs` (interactive runs) and the
//! `bench-pipeline` experiment (which records `BENCH_pipeline.json`).
//! `typed = false` replays the pre-typed engine's cost model: every hop
//! re-boxes the work item (`Msg::Custom`) and the receiver downcasts —
//! exactly what `Box<dyn Any>` messages did.

use std::time::Instant;

use flextoe_sim::{
    cast, Ctx, Duration, IntoMsg, Msg, Node, NodeId, QueueKind, Sim, Time, WorkToken,
};

/// Stand-in for the old boxed `PipelineMsg` payload.
pub struct LegacyWork {
    pub entry_seq: u64,
    pub state: [u64; 6],
}
flextoe_sim::custom_msg!(LegacyWork);

struct Stage {
    next: NodeId,
    hop: Duration,
    seen: u64,
}

impl Node for Stage {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        self.seen += 1;
        match msg {
            Msg::Work(tok) => ctx.send(self.next, self.hop, tok),
            m @ Msg::Custom(_) => {
                // old-engine cost model: unbox, touch, re-box
                let w = cast::<LegacyWork>(m);
                let w = LegacyWork {
                    entry_seq: w.entry_seq.wrapping_add(1),
                    state: w.state,
                };
                ctx.send(self.next, self.hop, w);
            }
            m => panic!("stage: unexpected {}", m.variant_name()),
        }
    }
}

/// Slow control-plane timer: far-future events through the overflow heap.
struct SlowTimer;
impl Node for SlowTimer {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        ctx.wake(Duration::from_ms(1), flextoe_sim::Tick);
    }
}

pub const PIPE_EVENTS: u64 = 2_000_000;

/// Build and run the synthetic pipeline; returns events/sec of wall time.
pub fn pipeline_events_per_sec(kind: QueueKind, typed: bool) -> f64 {
    let mut sim = Sim::with_queue(7, kind);
    // FlexTOE-ish stage hops: intra-island CLS hops, a PCIe DMA hop and
    // the wire serialization of an MTU frame at 40 Gbps
    let hops_ns: [u64; 6] = [20, 30, 25, 40, 900, 300];
    let stages: Vec<NodeId> = (0..hops_ns.len()).map(|_| sim.reserve_node()).collect();
    for (i, &h) in hops_ns.iter().enumerate() {
        sim.fill_node(
            stages[i],
            Stage {
                next: stages[(i + 1) % stages.len()],
                hop: Duration::from_ns(h),
                seen: 0,
            },
        );
    }
    let timer = sim.add_node(SlowTimer);
    sim.schedule(Time::ZERO, timer, flextoe_sim::Tick);
    // 64 packets in flight, entering staggered like line-rate arrivals
    for p in 0..64u64 {
        let at = Time::from_ns(p * 300);
        if typed {
            sim.schedule(
                at,
                stages[0],
                WorkToken {
                    slot: p as u32,
                    entry_seq: Some(p),
                },
            );
        } else {
            sim.schedule(
                at,
                stages[0],
                LegacyWork {
                    entry_seq: p,
                    state: [p; 6],
                }
                .into_msg(),
            );
        }
    }
    let t0 = Instant::now();
    while sim.events_processed() < PIPE_EVENTS && sim.step() {}
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(sim.events_processed(), PIPE_EVENTS);
    sim.events_processed() as f64 / secs
}

/// Best-of-n measurement (benchmarks want the least-disturbed run).
pub fn best_of(n: u32, kind: QueueKind, typed: bool) -> f64 {
    (0..n)
        .map(|_| pipeline_events_per_sec(kind, typed))
        .fold(0.0f64, f64::max)
}
