//! The engine event-core benchmark: a synthetic FlexTOE-shaped pipeline
//! ring (SEQR → PRE → PROTO → POST → DMA → NBI → back) with realistic hop
//! latencies, plus a slow control timer that exercises the wheel's
//! overflow path.
//!
//! Shared by `benches/micro.rs` (interactive runs) and the
//! `bench-pipeline` experiment (which records `BENCH_pipeline.json`).
//! `typed = false` replays the pre-typed engine's cost model: every hop
//! re-boxes the work item (`Msg::Custom`) and the receiver downcasts —
//! exactly what `Box<dyn Any>` messages did.

use std::time::Instant;

use flextoe_sim::{
    cast, Ctx, Duration, IntoMsg, Msg, Node, NodeId, QueueKind, Sim, Time, WorkToken,
};

/// Stand-in for the old boxed `PipelineMsg` payload.
pub struct LegacyWork {
    pub entry_seq: u64,
    pub state: [u64; 6],
}
flextoe_sim::custom_msg!(LegacyWork);

struct Stage {
    next: NodeId,
    hop: Duration,
    seen: u64,
}

impl Node for Stage {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        self.seen += 1;
        match msg {
            Msg::Work(tok) => ctx.send(self.next, self.hop, tok),
            m @ Msg::Custom(_) => {
                // old-engine cost model: unbox, touch, re-box
                let w = cast::<LegacyWork>(m);
                let w = LegacyWork {
                    entry_seq: w.entry_seq.wrapping_add(1),
                    state: w.state,
                };
                ctx.send(self.next, self.hop, w);
            }
            m => panic!("stage: unexpected {}", m.variant_name()),
        }
    }
}

/// Slow control-plane timer: far-future events through the overflow heap.
struct SlowTimer;
impl Node for SlowTimer {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        ctx.wake(Duration::from_ms(1), flextoe_sim::Tick);
    }
}

pub const PIPE_EVENTS: u64 = 2_000_000;

/// Build and run the synthetic pipeline; returns events/sec of wall time.
pub fn pipeline_events_per_sec(kind: QueueKind, typed: bool) -> f64 {
    let mut sim = Sim::with_queue(7, kind);
    // FlexTOE-ish stage hops: intra-island CLS hops, a PCIe DMA hop and
    // the wire serialization of an MTU frame at 40 Gbps
    let hops_ns: [u64; 6] = [20, 30, 25, 40, 900, 300];
    let stages: Vec<NodeId> = (0..hops_ns.len()).map(|_| sim.reserve_node()).collect();
    for (i, &h) in hops_ns.iter().enumerate() {
        sim.fill_node(
            stages[i],
            Stage {
                next: stages[(i + 1) % stages.len()],
                hop: Duration::from_ns(h),
                seen: 0,
            },
        );
    }
    let timer = sim.add_node(SlowTimer);
    sim.schedule(Time::ZERO, timer, flextoe_sim::Tick);
    // 64 packets in flight, entering staggered like line-rate arrivals
    for p in 0..64u64 {
        let at = Time::from_ns(p * 300);
        if typed {
            sim.schedule(
                at,
                stages[0],
                WorkToken {
                    slot: p as u32,
                    entry_seq: Some(p),
                },
            );
        } else {
            sim.schedule(
                at,
                stages[0],
                LegacyWork {
                    entry_seq: p,
                    state: [p; 6],
                }
                .into_msg(),
            );
        }
    }
    let t0 = Instant::now();
    while sim.events_processed() < PIPE_EVENTS && sim.step() {}
    let secs = t0.elapsed().as_secs_f64();
    // burst delivery may overshoot the target by a few events (one step
    // drains a whole burst); the rate uses the exact count either way
    assert!(sim.events_processed() >= PIPE_EVENTS);
    sim.events_processed() as f64 / secs
}

/// Best-of-n measurement (benchmarks want the least-disturbed run).
pub fn best_of(n: u32, kind: QueueKind, typed: bool) -> f64 {
    (0..n)
        .map(|_| pipeline_events_per_sec(kind, typed))
        .fold(0.0f64, f64::max)
}

// ---- engine-dispatch micro -----------------------------------------------
//
// Raw delivery overhead, stripped of all protocol work: nodes that do
// nothing but forward a token. `nodes = 1` is a zero-delay self-send chain
// — every send lands in the wheel slot currently being drained, so the
// whole run lives on the same-slot direct-drain lane and (with bursting)
// in long per-node bursts. `nodes = 8` hands the token round-robin with a
// small hop, the worst case for coalescing: every delivery is a singleton
// and the burst probe always fails. The gap between the two bounds what
// burst-mode delivery can and cannot save.

/// Events per dispatch-micro measurement.
pub const DISPATCH_EVENTS: u64 = 2_000_000;

struct Forwarder {
    next: NodeId,
    hop: Duration,
}

impl Node for Forwarder {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let Msg::Token(v) = msg else {
            panic!("forwarder: unexpected {}", msg.variant_name())
        };
        ctx.send(self.next, self.hop, v);
    }
}

/// Events/sec of wall time for the dispatch micro.
pub fn dispatch_events_per_sec(nodes: usize, burst: bool) -> f64 {
    assert!(nodes >= 1);
    let mut sim = Sim::with_queue(7, QueueKind::Wheel);
    sim.set_burst(burst);
    let ids: Vec<NodeId> = (0..nodes).map(|_| sim.reserve_node()).collect();
    let hop = if nodes == 1 {
        Duration::ZERO
    } else {
        Duration::from_ns(25)
    };
    for (i, &id) in ids.iter().enumerate() {
        sim.fill_node(
            id,
            Forwarder {
                next: ids[(i + 1) % nodes],
                hop,
            },
        );
    }
    sim.schedule(Time::ZERO, ids[0], 1u64);
    let t0 = Instant::now();
    while sim.events_processed() < DISPATCH_EVENTS && sim.step() {}
    let secs = t0.elapsed().as_secs_f64();
    assert!(sim.events_processed() >= DISPATCH_EVENTS);
    sim.events_processed() as f64 / secs
}

/// Best-of-n for the dispatch micro.
pub fn dispatch_best_of(n: u32, nodes: usize, burst: bool) -> f64 {
    (0..n)
        .map(|_| dispatch_events_per_sec(nodes, burst))
        .fold(0.0f64, f64::max)
}

// ---- switch-forwarding micro ---------------------------------------------
//
// Frames/s through one ECMP leaf hop: a pump cycles through a set of
// pre-built flows, the switch routes each frame to one of two uplink
// sinks, and the sinks recycle the buffers into the sim pool. `tagged`
// selects the parse-once fast path (frames carry `FrameMeta`, as every
// in-sim stack emits them) vs. the checked reparse path — the regression
// guard for the fabric fast path. `sketched` additionally arms the
// telemetry sketch on the forwarding path (no ground-truth map, no
// sweeps — the marginal cost of the sketch update alone), the guard for
// the <5% telemetry-overhead budget.

use flextoe_netsim::{PortConfig, Switch, TelemetrySpec};
use flextoe_sim::Tick;
use flextoe_wire::{Ecn, Frame, FrameMeta, Ip4, MacAddr, SegmentSpec};

/// Frames pushed through the switch per measurement.
pub const SWITCH_FRAMES: u64 = 1_000_000;
/// Distinct flows the pump cycles through (spreads over both uplinks).
const SWITCH_FLOWS: usize = 64;

struct SwitchSink;
impl Node for SwitchSink {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let Msg::Frame(frame) = msg else {
            panic!("sink expects frames")
        };
        ctx.pool.put(frame.into_bytes());
    }
}

struct SwitchPump {
    sw: NodeId,
    flows: Vec<(Vec<u8>, FrameMeta)>,
    next_flow: usize,
    remaining: u64,
    gap: Duration,
    tagged: bool,
}

impl Node for SwitchPump {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let (bytes, meta) = &self.flows[self.next_flow];
        self.next_flow = (self.next_flow + 1) % self.flows.len();
        let mut buf = ctx.pool.take();
        buf.extend_from_slice(bytes);
        let frame = if self.tagged {
            Frame::tagged(buf, *meta)
        } else {
            Frame::raw(buf)
        };
        ctx.send(self.sw, Duration::ZERO, frame);
        if self.remaining > 0 {
            ctx.wake(self.gap, Tick);
        }
    }
}

/// Frames/s of wall time through one leaf-spine hop.
pub fn switch_forwarding_fps(tagged: bool, sketched: bool) -> f64 {
    let mut sim = Sim::with_queue(7, QueueKind::Wheel);
    let up0 = sim.add_node(SwitchSink);
    let up1 = sim.add_node(SwitchSink);
    let mut sw = Switch::new();
    let p0 = sw.add_port(up0, PortConfig::default());
    let p1 = sw.add_port(up1, PortConfig::default());
    sw.route(Ip4::host(2), vec![p0, p1]);
    sw.set_ecmp_salt(sim.rng.next_u64());
    if sketched {
        // sketch-only telemetry: no exact per-flow map, and no sweep is
        // ever scheduled, so the nominal collector (a sink) stays idle —
        // the run isolates the per-frame sketch update
        let spec = TelemetrySpec {
            ground_truth: false,
            ..Default::default()
        };
        sw.enable_telemetry(0, up0, &spec);
    }
    let sw = sim.add_node(sw);

    let flows: Vec<(Vec<u8>, FrameMeta)> = (0..SWITCH_FLOWS)
        .map(|i| {
            let spec = SegmentSpec {
                src_mac: MacAddr::local(1),
                dst_mac: MacAddr::local(2), // not in the MAC table: L3 route
                src_ip: Ip4::host(1),
                dst_ip: Ip4::host(2),
                src_port: 10_000 + i as u16,
                dst_port: 7777,
                ecn: Ecn::Ect0,
                payload_len: 64,
                ..Default::default()
            };
            (spec.emit_zeroed(), spec.meta())
        })
        .collect();
    // 130-byte frames serialize in ~10ns at 100G; a 20ns gap keeps the
    // queue shallow so the run measures forwarding, not queueing
    let pump = sim.add_node(SwitchPump {
        sw,
        flows,
        next_flow: 0,
        remaining: SWITCH_FRAMES,
        gap: Duration::from_ns(20),
        tagged,
    });
    sim.schedule(Time::ZERO, pump, Tick);
    let t0 = Instant::now();
    sim.run();
    let secs = t0.elapsed().as_secs_f64();
    let routed = sim.node_ref::<Switch>(sw).routed;
    assert_eq!(routed, SWITCH_FRAMES, "every frame must route");
    routed as f64 / secs
}

/// Best-of-n for the switch micro.
pub fn switch_best_of(n: u32, tagged: bool, sketched: bool) -> f64 {
    (0..n)
        .map(|_| switch_forwarding_fps(tagged, sketched))
        .fold(0.0f64, f64::max)
}
