//! Shared experiment harness: topology builders and scenario runners used
//! by every table/figure reproduction.

use flextoe_apps::{
    ClientConfig, FlexToeStack, RpcClientApp, RpcServerApp, ServerConfig, StackApi,
};
use flextoe_ccp::FoldSpec;
use flextoe_control::{CcAlgo, ControlPlane, CtrlConfig};
use flextoe_core::{FlexToeNic, NicConfig, PipeCfg};
use flextoe_hoststack::{build_host, host_socket_api, HostStackNode, StackKind};
use flextoe_netsim::{Faults, Link, PortConfig, Switch};
use flextoe_sim::{Duration, Histogram, NodeId, Sim, Tick, Time};
use flextoe_wire::{Ip4, MacAddr};

/// Which transport stack a host runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stack {
    FlexToe,
    Linux,
    Tas,
    Chelsio,
    FlexBaselineFpc,
}

impl Stack {
    pub fn name(self) -> &'static str {
        match self {
            Stack::FlexToe => "FlexTOE",
            Stack::Linux => "Linux",
            Stack::Tas => "TAS",
            Stack::Chelsio => "Chelsio",
            Stack::FlexBaselineFpc => "Flex-Baseline",
        }
    }
    pub fn all4() -> [Stack; 4] {
        [Stack::Linux, Stack::Chelsio, Stack::Tas, Stack::FlexToe]
    }
    fn kind(self) -> StackKind {
        match self {
            Stack::Linux => StackKind::Linux,
            Stack::Tas => StackKind::Tas,
            Stack::Chelsio => StackKind::Chelsio,
            Stack::FlexBaselineFpc => StackKind::FlexBaselineFpc,
            Stack::FlexToe => unreachable!(),
        }
    }
}

/// One host endpoint: either a FlexTOE NIC + control plane, or a baseline
/// stack node. `ingress` is where the peer's frames must be delivered.
pub struct Endpoint {
    pub ip: Ip4,
    pub mac: MacAddr,
    pub ingress: NodeId,
    pub flextoe: Option<(FlexToeNic, NodeId)>, // (nic, ctrl)
    pub baseline: Option<NodeId>,
}

impl Endpoint {
    /// Stack factory for an application node on this endpoint.
    pub fn stack_init(
        &self,
        stack: Stack,
        ctx_id: u16,
    ) -> flextoe_apps::StackInit<Box<dyn StackApi>> {
        match stack {
            Stack::FlexToe => {
                let (nic, ctrl) = self.flextoe.as_ref().expect("flextoe endpoint");
                let handle = nic.handle();
                let ctrl = *ctrl;
                Box::new(move |ctx, app| {
                    Box::new(FlexToeStack::new(ctx, ctx_id, handle, ctrl, app)) as Box<dyn StackApi>
                })
            }
            other => {
                let node = self.baseline.expect("baseline endpoint");
                let kind = other.kind();
                Box::new(move |_ctx, app| {
                    Box::new(host_socket_api(kind, node, app)) as Box<dyn StackApi>
                })
            }
        }
    }
}

pub struct PairOpts {
    pub cfg: PipeCfg,
    pub cc: CcAlgo,
    /// Control-loop (RTO / teardown) iteration interval.
    pub cc_interval: Duration,
    /// Datapath fold report interval.
    pub report_interval: Duration,
    /// Fold installed for new flows (native builtin or compiled eBPF).
    pub fold: FoldSpec,
    pub propagation: Duration,
    pub faults: Faults,
}

impl Default for PairOpts {
    fn default() -> Self {
        let ctrl = CtrlConfig::default();
        PairOpts {
            cfg: PipeCfg::agilio_full(),
            cc: CcAlgo::Dctcp,
            cc_interval: ctrl.cc_interval,
            report_interval: ctrl.report_interval,
            fold: FoldSpec::Builtin,
            propagation: Duration::from_us(2),
            faults: Faults::default(),
        }
    }
}

/// Build one endpoint of kind `stack` whose egress goes to `link_out`.
fn build_endpoint(
    sim: &mut Sim,
    stack: Stack,
    id: u8,
    link_out: NodeId,
    opts: &PairOpts,
) -> Endpoint {
    let ip = Ip4::host(id);
    let mac = MacAddr::local(id);
    match stack {
        Stack::FlexToe => {
            let ctrl = sim.reserve_node();
            let nic =
                FlexToeNic::build(sim, opts.cfg.clone(), NicConfig { mac, ip }, link_out, ctrl);
            let cp = ControlPlane::new(
                CtrlConfig {
                    cc: opts.cc,
                    cc_interval: opts.cc_interval,
                    report_interval: opts.report_interval,
                    fold: opts.fold.clone(),
                    ..Default::default()
                },
                nic.handle(),
            );
            sim.fill_node(ctrl, cp);
            Endpoint {
                ip,
                mac,
                ingress: nic.mac,
                flextoe: Some((nic, ctrl)),
                baseline: None,
            }
        }
        other => {
            let node = build_host(sim, other.kind(), mac, ip, link_out);
            Endpoint {
                ip,
                mac,
                ingress: node,
                flextoe: None,
                baseline: Some(node),
            }
        }
    }
}

fn add_arp(sim: &mut Sim, ep: &Endpoint, peer_ip: Ip4, peer_mac: MacAddr) {
    if let Some((_, ctrl)) = &ep.flextoe {
        sim.node_mut::<ControlPlane>(*ctrl)
            .add_peer(peer_ip, peer_mac);
    }
    if let Some(node) = ep.baseline {
        sim.node_mut::<HostStackNode>(node)
            .add_peer(peer_ip, peer_mac);
    }
}

/// Two hosts of possibly different stacks, joined by a link pair.
pub fn build_pair(sim: &mut Sim, a: Stack, b: Stack, opts: &PairOpts) -> (Endpoint, Endpoint) {
    let l_ab = sim.reserve_node();
    let l_ba = sim.reserve_node();
    let ea = build_endpoint(sim, a, 1, l_ab, opts);
    let eb = build_endpoint(sim, b, 2, l_ba, opts);
    sim.fill_node(
        l_ab,
        Link::with_faults(eb.ingress, opts.propagation, opts.faults),
    );
    sim.fill_node(
        l_ba,
        Link::with_faults(ea.ingress, opts.propagation, opts.faults),
    );
    add_arp(sim, &ea, eb.ip, eb.mac);
    add_arp(sim, &eb, ea.ip, ea.mac);
    (ea, eb)
}

/// N client hosts and one server host through a switch (incast topology).
pub fn build_star(
    sim: &mut Sim,
    stack: Stack,
    n_clients: u8,
    server_port_cfg: PortConfig,
    opts: &PairOpts,
) -> (Vec<Endpoint>, Endpoint, NodeId) {
    let sw = sim.reserve_node();
    let mut switch = Switch::new();
    // server = host id 1
    let server_link = sim.reserve_node();
    let server = build_endpoint(sim, stack, 1, sw, opts);
    sim.fill_node(server_link, Link::new(server.ingress, opts.propagation));
    let sport = switch.add_port(server_link, server_port_cfg);
    switch.learn(server.mac, sport);

    let mut clients = Vec::new();
    for i in 0..n_clients {
        let id = 2 + i;
        let clink = sim.reserve_node();
        let ep = build_endpoint(sim, stack, id, sw, opts);
        sim.fill_node(clink, Link::new(ep.ingress, opts.propagation));
        let p = switch.add_port(clink, PortConfig::default());
        switch.learn(ep.mac, p);
        clients.push(ep);
    }
    sim.fill_node(sw, switch);
    // everybody resolves everybody
    let all: Vec<(Ip4, MacAddr)> = std::iter::once((server.ip, server.mac))
        .chain(clients.iter().map(|c| (c.ip, c.mac)))
        .collect();
    for ep in clients.iter().chain(std::iter::once(&server)) {
        for &(ip, mac) in &all {
            if ip != ep.ip {
                add_arp(sim, ep, ip, mac);
            }
        }
    }
    (clients, server, sw)
}

pub type DynClient = RpcClientApp<Box<dyn StackApi>>;
pub type DynServer = RpcServerApp<Box<dyn StackApi>>;

/// Result metrics of one echo scenario.
pub struct EchoResult {
    pub rps: f64,
    pub goodput_bps: f64,
    pub latency: Histogram,
    /// Measured (post-warmup) responses — used by fixed-work experiments.
    #[allow(dead_code)]
    pub measured: u64,
    pub per_conn_bytes: Vec<u64>,
}

/// Run a client/server echo scenario between two stacks and harvest
/// client-side metrics.
pub fn run_echo(
    seed: u64,
    client_stack: Stack,
    server_stack: Stack,
    opts: PairOpts,
    server_cfg: ServerConfig,
    client_cfg: ClientConfig,
    deadline: Time,
) -> (Sim, EchoResult) {
    let mut sim = Sim::new(seed);
    let (ea, eb) = build_pair(&mut sim, client_stack, server_stack, &opts);
    let server = sim.add_node(DynServer::new(server_cfg, eb.stack_init(server_stack, 1)));
    let client = sim.add_node(DynClient::new(
        ClientConfig {
            server_ip: eb.ip,
            ..client_cfg
        },
        ea.stack_init(client_stack, 1),
    ));
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(20), client, Tick);
    sim.run_until(deadline);
    let c = sim.node_ref::<DynClient>(client);
    let res = EchoResult {
        rps: c.throughput_rps(),
        goodput_bps: c.goodput_bps(),
        latency: c.latency.clone(),
        measured: c.measured,
        per_conn_bytes: c.per_conn_bytes(),
    };
    (sim, res)
}

/// Format bits/second.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:6.2} Gbps", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:6.2} Mbps", bps / 1e6)
    } else {
        format!("{:6.2} Kbps", bps / 1e3)
    }
}

pub fn fmt_ops(ops: f64) -> String {
    if ops >= 1e6 {
        format!("{:5.2} MOps", ops / 1e6)
    } else {
        format!("{:5.1} kOps", ops / 1e3)
    }
}

/// Jain's fairness index over per-flow goodputs (Fig. 16, Table 4).
pub fn jain_index(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().map(|&x| x as f64).sum();
    let sum_sq: f64 = xs.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n * sum_sq)
}
