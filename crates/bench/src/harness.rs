//! Shared experiment harness: scenario runners and metric helpers used by
//! every table/figure reproduction. Topology building (endpoints, the
//! pair and star testbeds, and the declarative leaf-spine/fat-tree
//! fabrics) lives in `flextoe-topo`; the long-standing names are
//! re-exported here so experiments keep reading naturally.

use flextoe_apps::{ClientConfig, RpcClientApp, RpcServerApp, ServerConfig, StackApi};
use flextoe_sim::{Histogram, Sim, Tick, Time};

pub use flextoe_topo::{
    add_arp, build_endpoint, build_fabric, build_pair, build_star, BuiltFabric, DynFramedServer,
    DynOpenLoopClient, Endpoint, PairOpts, Stack,
};

pub type DynClient = RpcClientApp<Box<dyn StackApi>>;
pub type DynServer = RpcServerApp<Box<dyn StackApi>>;

/// Result metrics of one echo scenario.
pub struct EchoResult {
    pub rps: f64,
    pub goodput_bps: f64,
    pub latency: Histogram,
    /// Measured (post-warmup) responses — used by fixed-work experiments.
    #[allow(dead_code)]
    pub measured: u64,
    pub per_conn_bytes: Vec<u64>,
}

/// Run a client/server echo scenario between two stacks and harvest
/// client-side metrics.
pub fn run_echo(
    seed: u64,
    client_stack: Stack,
    server_stack: Stack,
    opts: PairOpts,
    server_cfg: ServerConfig,
    client_cfg: ClientConfig,
    deadline: Time,
) -> (Sim, EchoResult) {
    let mut sim = Sim::new(seed);
    let (ea, eb) = build_pair(&mut sim, client_stack, server_stack, &opts);
    let server = sim.add_node(DynServer::new(server_cfg, eb.stack_init(server_stack, 1)));
    let client = sim.add_node(DynClient::new(
        ClientConfig {
            server_ip: eb.ip,
            ..client_cfg
        },
        ea.stack_init(client_stack, 1),
    ));
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(20), client, Tick);
    sim.run_until(deadline);
    let c = sim.node_ref::<DynClient>(client);
    let res = EchoResult {
        rps: c.throughput_rps(),
        goodput_bps: c.goodput_bps(),
        latency: c.latency.clone(),
        measured: c.measured,
        per_conn_bytes: c.per_conn_bytes(),
    };
    (sim, res)
}

/// Format bits/second.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:6.2} Gbps", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:6.2} Mbps", bps / 1e6)
    } else {
        format!("{:6.2} Kbps", bps / 1e3)
    }
}

pub fn fmt_ops(ops: f64) -> String {
    if ops >= 1e6 {
        format!("{:5.2} MOps", ops / 1e6)
    } else {
        format!("{:5.1} kOps", ops / 1e3)
    }
}

/// Jain's fairness index over per-flow goodputs (Fig. 16, Table 4).
pub fn jain_index(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().map(|&x| x as f64).sum();
    let sum_sq: f64 = xs.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n * sum_sq)
}
