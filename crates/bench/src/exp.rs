//! One runner per table and figure of the paper's evaluation (§5).
//! Absolute numbers come from the simulation substrate; the reproduction
//! target is the *shape* (DESIGN.md §3). EXPERIMENTS.md records
//! paper-vs-measured for every run.

use flextoe_apps::{ClientConfig, LoadMode, ServerConfig};
use flextoe_control::CcAlgo;
use flextoe_core::module::{xdp_with_maps, Hook, TcpdumpModule};
use flextoe_core::stages::pre::PreStage;
use flextoe_core::PipeCfg;
use flextoe_ebpf::programs;
use flextoe_hoststack::HostStackNode;
use flextoe_netsim::{Faults, PortConfig, WredParams};
use flextoe_sim::{Duration, Sim, Tick, Time};

use crate::harness::*;

fn client(n_conns: u32, msg: u32, resp: u32, pipeline: u32, warmup_ms: u64) -> ClientConfig {
    ClientConfig {
        n_conns,
        msg_size: msg,
        resp_size: resp,
        mode: LoadMode::Closed { pipeline },
        warmup: Time::from_ms(warmup_ms),
        connect_spacing: Duration::from_us(3),
        ..Default::default()
    }
}

fn server(msg: u32, resp: u32, app_cycles: u64) -> ServerConfig {
    ServerConfig {
        msg_size: msg,
        resp_size: resp,
        app_cycles,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------

/// Table 1: per-request CPU impact of TCP processing (modeled costs +
/// measured single-core memcached-style throughput).
pub fn table1() {
    println!("# Table 1 — per-request CPU impact of TCP processing");
    println!("# (kc = kilocycles @ 2 GHz per request; measured 1-core RPC rate alongside)");
    println!(
        "{:<14} {:>8} {:>8} {:>9} {:>6} {:>7} {:>8} {:>12}",
        "stack", "driver", "tcp/ip", "sockets", "app", "other", "total", "measured"
    );
    for stack in Stack::all4() {
        let (driver, tcpip, sockets, other) = match stack {
            Stack::Linux => (0.71, 4.25, 2.48, 3.42),
            Stack::Chelsio => (1.28, 0.40, 2.61, 3.28),
            Stack::Tas => (0.18, 1.44, 0.79, 0.09),
            Stack::FlexToe => (0.0, 0.0, 0.74, 0.04),
            _ => unreachable!(),
        };
        let app = match stack {
            Stack::Linux => 1.26,
            Stack::Chelsio => 1.31,
            Stack::Tas => 0.85,
            _ => 0.89,
        };
        let total = driver + tcpip + sockets + app + other;
        // measured: saturating closed-loop KV-like RPC on one server core
        let (_sim, res) = run_echo(
            1,
            Stack::Tas, // saturating client on a fast stack
            stack,
            PairOpts::default(),
            server(64, 64, 890),
            client(16, 64, 64, 4, 2),
            Time::from_ms(12),
        );
        println!(
            "{:<14} {:>8.2} {:>8.2} {:>9.2} {:>6.2} {:>7.2} {:>8.2} {:>12}",
            stack.name(),
            driver,
            tcpip,
            sockets,
            app,
            other,
            total,
            fmt_ops(res.rps)
        );
    }
}

/// Table 2: data-path throughput with flexible extensions.
pub fn table2() {
    println!("# Table 2 — performance with flexible extensions (echo, 64 conns)");
    let run = |label: &str, cfg: PipeCfg, install: &dyn Fn(&mut Sim, &Endpoint)| {
        let opts = PairOpts {
            cfg,
            ..Default::default()
        };
        let mut sim = Sim::new(5);
        let (ea, eb) = build_pair(&mut sim, Stack::FlexToe, Stack::FlexToe, &opts);
        install(&mut sim, &eb);
        let srv = sim.add_node(DynServer::new(
            server(32, 32, 0),
            eb.stack_init(Stack::FlexToe, 1),
        ));
        let cli = sim.add_node(DynClient::new(
            ClientConfig {
                server_ip: eb.ip,
                ..client(64, 32, 32, 4, 2)
            },
            ea.stack_init(Stack::FlexToe, 1),
        ));
        sim.schedule(Time::ZERO, srv, Tick);
        sim.schedule(Time::from_us(20), cli, Tick);
        sim.run_until(Time::from_ms(12));
        let c = sim.node_ref::<DynClient>(cli);
        println!("{:<28} {:>12}", label, fmt_ops(c.throughput_rps()));
    };
    run("Baseline FlexTOE", PipeCfg::agilio_full(), &|_, _| {});
    run(
        "Statistics and profiling",
        PipeCfg {
            tracepoints: true,
            ..PipeCfg::agilio_full()
        },
        &|_, _| {},
    );
    run("tcpdump (no filter)", PipeCfg::agilio_full(), &|sim, ep| {
        let pre = ep.flextoe.as_ref().unwrap().0.pre;
        sim.node_mut::<PreStage>(pre)
            .ingress
            .push(Box::new(TcpdumpModule::new(Hook::RxIngress)));
    });
    run("XDP (null)", PipeCfg::agilio_full(), &|sim, ep| {
        let pre = ep.flextoe.as_ref().unwrap().0.pre;
        let (m, _) = xdp_with_maps("null", Hook::RxIngress, |_| programs::null_pass());
        sim.node_mut::<PreStage>(pre).ingress.push(Box::new(m));
    });
    run("XDP (vlan-strip)", PipeCfg::agilio_full(), &|sim, ep| {
        let pre = ep.flextoe.as_ref().unwrap().0.pre;
        let (m, _) = xdp_with_maps("vlan", Hook::RxIngress, |_| programs::vlan_strip());
        sim.node_mut::<PreStage>(pre).ingress.push(Box::new(m));
    });
}

/// Table 3: data-path parallelism breakdown (64 conns, 2 KB echo, 1 in
/// flight each).
pub fn table3() {
    println!("# Table 3 — FlexTOE data-path parallelism breakdown");
    println!(
        "{:<24} {:>12} {:>10} {:>12}",
        "design", "tput", "p50 us", "p99.99 us"
    );
    let mut base_tput = 0.0;
    let mut run = |label: &str, stack: Stack, cfg: PipeCfg| {
        let (_sim, res) = run_echo(
            3,
            stack,
            stack,
            PairOpts {
                cfg,
                ..Default::default()
            },
            server(2048, 2048, 0),
            client(64, 2048, 2048, 1, 3),
            Time::from_ms(15),
        );
        let bps = res.goodput_bps * 2.0; // bidirectional echo: count both dirs
        if base_tput == 0.0 {
            base_tput = bps;
        }
        println!(
            "{:<24} {:>12} {:>10.0} {:>12.0}   (x{:.0})",
            label,
            fmt_bps(bps),
            res.latency.median() as f64 / 1000.0,
            res.latency.p9999() as f64 / 1000.0,
            bps / base_tput
        );
    };
    run(
        "Baseline (run-to-compl.)",
        Stack::FlexBaselineFpc,
        PipeCfg::agilio_full(),
    );
    run(
        "+ Pipelining",
        Stack::FlexToe,
        PipeCfg::agilio_pipelined_only(),
    );
    run(
        "+ Intra-FPC parallelism",
        Stack::FlexToe,
        PipeCfg::agilio_intra_fpc(),
    );
    run(
        "+ Replicated pre/post",
        Stack::FlexToe,
        PipeCfg::agilio_replicated(),
    );
    run(
        "+ Flow-group islands",
        Stack::FlexToe,
        PipeCfg::agilio_full(),
    );
}

/// Table 4: congestion control under incast.
pub fn table4() {
    println!("# Table 4 — FlexTOE congestion control under incast");
    println!(
        "{:<6} {:>6} {:>5} {:>12} {:>14} {:>7}",
        "deg", "conns", "cc", "tput", "p99.99 ms", "JFI"
    );
    for (deg, conns_per_client) in [(4u8, 4u32), (8, 2)] {
        for cc_on in [true, false] {
            let opts = PairOpts {
                cc: if cc_on { CcAlgo::Dctcp } else { CcAlgo::None },
                ..Default::default()
            };
            let mut sim = Sim::new(17);
            // shaped server port: line/deg, WRED tail-drops on exhaustion
            let port = PortConfig {
                rate_bps: 40_000_000_000 / deg as u64,
                buf_bytes: 128 * 1024,
                ecn_threshold: Some(24 * 1024),
                wred: Some(WredParams {
                    min_bytes: 64 * 1024,
                    max_bytes: 128 * 1024,
                    max_p: 0.3,
                }),
            };
            let (clients, srv_ep, _sw) = build_star(&mut sim, Stack::FlexToe, deg, port, &opts);
            let srv = sim.add_node(DynServer::new(
                server(65_536, 32, 0),
                srv_ep.stack_init(Stack::FlexToe, 1),
            ));
            sim.schedule(Time::ZERO, srv, Tick);
            let mut client_nodes = Vec::new();
            for (i, ep) in clients.iter().enumerate() {
                let c = sim.add_node(DynClient::new(
                    ClientConfig {
                        server_ip: srv_ep.ip,
                        ..client(conns_per_client, 65_536, 32, 1, 5)
                    },
                    ep.stack_init(Stack::FlexToe, 1),
                ));
                sim.schedule(Time::from_us(30 + i as u64), c, Tick);
                client_nodes.push(c);
            }
            sim.run_until(Time::from_ms(40));
            let mut bytes = Vec::new();
            let mut lat = flextoe_sim::Histogram::new();
            let mut total_resp = 0u64;
            let mut span = Duration::ZERO;
            for &c in &client_nodes {
                let cl = sim.node_ref::<DynClient>(c);
                // goodput counts the 64KB requests delivered
                bytes.extend(cl.per_conn_bytes().iter().map(|&b| b / 32 * 65_536));
                lat.merge(&cl.latency);
                total_resp += cl.measured;
                span = span.max(cl.last_measured_at.saturating_since(cl.first_measured_at));
            }
            let tput = if span > Duration::ZERO {
                total_resp as f64 * 65_536.0 * 8.0 / span.as_secs_f64()
            } else {
                0.0
            };
            println!(
                "{:<6} {:>6} {:>5} {:>12} {:>14.2} {:>7.2}",
                deg,
                deg as u32 * conns_per_client,
                if cc_on { "on" } else { "off" },
                fmt_bps(tput),
                lat.p9999() as f64 / 1e6,
                jain_index(&bytes)
            );
        }
    }
}

/// Table 5: connection state partitioning (static check).
pub fn table5() {
    use flextoe_core::{PostState, PreState, ProtoState, CONN_STATE_BYTES};
    println!("# Table 5 — connection state partitioning");
    println!("pre-processor  {:>3} B (paper: 15 B)", PreState::WIRE_SIZE);
    println!(
        "protocol       {:>3} B (paper: 43 B)",
        ProtoState::WIRE_SIZE
    );
    println!("post-processor {:>3} B (paper: 51 B)", PostState::WIRE_SIZE);
    println!("total          {:>3} B (paper: 108 B)", CONN_STATE_BYTES);
}

/// Table 6: TAS per-packet TCP/IP processing breakdown (model inputs).
pub fn table6() {
    println!("# Table 6 — TAS TCP/IP per-packet breakdown (cycles, model)");
    for (f, c, pct) in [
        ("Segment generation", 130, 9),
        ("Loss detection (and recovery)", 606, 42),
        ("Payload transfer", 10, 1),
        ("Application notification", 381, 26),
        ("Flow scheduling", 172, 12),
        ("Miscellaneous", 141, 10),
    ] {
        println!("{:<32} {:>5}  {:>3}%", f, c, pct);
    }
    println!("{:<32} {:>5}  100%", "Total", 1440);
    // measured: TAS packet rate on the echo scenario
    let (_s, res) = run_echo(
        1,
        Stack::Tas,
        Stack::Tas,
        PairOpts::default(),
        server(64, 64, 890),
        client(16, 64, 64, 4, 2),
        Time::from_ms(12),
    );
    println!("measured TAS 1-core echo rate: {}", fmt_ops(res.rps));
}

/// Fig. 8: memcached-style throughput scalability with server cores.
pub fn fig8() {
    println!("# Fig. 8 — RPC server throughput scalability (MOps vs cores)");
    print!("{:<10}", "cores");
    let cores_list = [1u32, 2, 4, 8, 12, 16];
    for c in cores_list {
        print!(" {:>9}", c);
    }
    println!();
    for stack in Stack::all4() {
        print!("{:<10}", stack.name());
        for cores in cores_list {
            // one server app per core (per-core context queues / ports)
            let opts = PairOpts::default();
            let mut sim = Sim::new(23 + cores as u64);
            let (ea, eb) = build_pair(&mut sim, Stack::Tas, stack, &opts);
            if let Some(node) = eb.baseline {
                sim.node_mut::<HostStackNode>(node).n_app_cores = cores;
            }
            let mut client_nodes = Vec::new();
            for core in 0..cores {
                let port = 7800 + core as u16;
                let srv = sim.add_node(DynServer::new(
                    ServerConfig {
                        port,
                        ..server(64, 64, 890)
                    },
                    eb.stack_init(stack, 1 + core as u16),
                ));
                sim.schedule(Time::ZERO, srv, Tick);
                let cli = sim.add_node(DynClient::new(
                    ClientConfig {
                        server_ip: eb.ip,
                        server_port: port,
                        ..client(8, 64, 64, 4, 2)
                    },
                    ea.stack_init(Stack::Tas, 100 + core as u16),
                ));
                sim.schedule(Time::from_us(20 + core as u64), cli, Tick);
                client_nodes.push(cli);
            }
            sim.run_until(Time::from_ms(10));
            let total: f64 = client_nodes
                .iter()
                .map(|&c| sim.node_ref::<DynClient>(c).throughput_rps())
                .sum();
            print!(" {:>9.2}", total / 1e6);
        }
        println!();
    }
}

/// Fig. 9: RPC latency for all server/client stack combinations.
pub fn fig9() {
    println!("# Fig. 9 — echo latency, all server x client combinations (us)");
    println!(
        "{:<10} {:<10} {:>8} {:>8} {:>10}",
        "server", "client", "p50", "p99", "p99.99"
    );
    for server_stack in Stack::all4() {
        for client_stack in Stack::all4() {
            let (_sim, res) = run_echo(
                9,
                client_stack,
                server_stack,
                PairOpts::default(),
                server(32, 32, 890),
                client(1, 32, 32, 1, 1),
                Time::from_ms(10),
            );
            println!(
                "{:<10} {:<10} {:>8.1} {:>8.1} {:>10.1}",
                server_stack.name(),
                client_stack.name(),
                res.latency.median() as f64 / 1000.0,
                res.latency.p99() as f64 / 1000.0,
                res.latency.p9999() as f64 / 1000.0
            );
        }
    }
}

/// Fig. 10: RX/TX RPC throughput for a saturated single-core server.
pub fn fig10() {
    println!("# Fig. 10 — RPC throughput, saturated server (Gbps of payload)");
    for app_cycles in [250u64, 1000] {
        println!("## {} cycles/message", app_cycles);
        println!("{:<10} {:>6} {:>12} {:>12}", "stack", "size", "RX", "TX");
        for stack in Stack::all4() {
            for size in [32u32, 128, 512, 2048] {
                // RX: clients send `size`, server replies 32 B
                let (_s, rx) = run_echo(
                    31,
                    Stack::Tas,
                    stack,
                    PairOpts::default(),
                    server(size, 32, app_cycles),
                    client(128, size, 32, 2, 2),
                    Time::from_ms(10),
                );
                // TX: clients send 32 B, server replies `size`
                let (_s, tx) = run_echo(
                    32,
                    Stack::Tas,
                    stack,
                    PairOpts::default(),
                    server(32, size, app_cycles),
                    client(128, 32, size, 2, 2),
                    Time::from_ms(10),
                );
                println!(
                    "{:<10} {:>6} {:>12} {:>12}",
                    stack.name(),
                    size,
                    fmt_bps(rx.rps * size as f64 * 8.0),
                    fmt_bps(tx.goodput_bps)
                );
            }
        }
    }
}

/// Fig. 11: single-connection RPC RTT percentiles vs message size.
pub fn fig11() {
    println!("# Fig. 11 — single-connection RPC RTT (us)");
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>10}",
        "stack", "size", "p50", "p99", "p99.99"
    );
    for stack in Stack::all4() {
        for size in [32u32, 256, 1024, 2048] {
            let (_s, res) = run_echo(
                41,
                stack,
                stack,
                PairOpts::default(),
                server(size, size, 0),
                client(1, size, size, 1, 1),
                Time::from_ms(10),
            );
            println!(
                "{:<10} {:>6} {:>8.1} {:>8.1} {:>10.1}",
                stack.name(),
                size,
                res.latency.median() as f64 / 1000.0,
                res.latency.p99() as f64 / 1000.0,
                res.latency.p9999() as f64 / 1000.0
            );
        }
    }
}

/// Fig. 12: large-RPC per-connection goodput, uni- and bidirectional.
pub fn fig12() {
    println!("# Fig. 12 — large-RPC goodput (client->server transfer)");
    println!(
        "{:<10} {:>8} {:>14} {:>14}",
        "stack", "size", "unidirectional", "bidirectional"
    );
    for stack in Stack::all4() {
        for size in [128 * 1024u32, 1 << 20, 8 << 20] {
            let uni = {
                let (_s, r) = run_echo(
                    51,
                    stack,
                    stack,
                    PairOpts::default(),
                    server(size, 32, 0),
                    client(1, size, 32, 1, 2),
                    Time::from_ms(60),
                );
                r.rps * size as f64 * 8.0
            };
            let bidi = {
                let (_s, r) = run_echo(
                    52,
                    stack,
                    stack,
                    PairOpts::default(),
                    server(size, size, 0),
                    client(1, size, size, 1, 2),
                    Time::from_ms(60),
                );
                r.goodput_bps
            };
            println!(
                "{:<10} {:>7}K {:>14} {:>14}",
                stack.name(),
                size / 1024,
                fmt_bps(uni),
                fmt_bps(bidi)
            );
        }
    }
}

/// Fig. 13: connection scalability (single 64 B RPC in flight per conn).
pub fn fig13() {
    println!("# Fig. 13 — connection scalability (64 B echo, 1 in flight)");
    print!("{:<10}", "conns");
    let conn_counts = [512u32, 2048, 4096, 8192];
    for n in conn_counts {
        print!(" {:>10}", n);
    }
    println!();
    for stack in Stack::all4() {
        print!("{:<10}", stack.name());
        for n in conn_counts {
            let (_s, res) = run_echo(
                61,
                Stack::Tas,
                stack,
                PairOpts::default(),
                server(64, 64, 0),
                ClientConfig {
                    connect_spacing: Duration::from_ns(800),
                    ..client(n, 64, 64, 1, 12)
                },
                Time::from_ms(28),
            );
            print!(" {:>9.2}M", res.rps / 1e6);
        }
        println!();
    }
}

/// Fig. 14: data-path parallelism generalization (x86 / BlueField ports).
pub fn fig14() {
    println!("# Fig. 14 — single-connection pipelined RPC goodput on the ports");
    for (pname, platform, tas_clock, tas_copy) in [
        (
            "x86",
            flextoe_nfp::x86_port(),
            flextoe_sim::clocks::X86_2350MHZ,
            0.06f64,
        ),
        (
            "bluefield",
            flextoe_nfp::bluefield_port(),
            flextoe_sim::clocks::BLUEFIELD_800MHZ,
            0.5,
        ),
    ] {
        println!("## {pname}");
        println!(
            "{:<16} {:>6} {:>6} {:>6} {:>6}  (MSS; Gbps)",
            "config", "1448", "512", "128", "64"
        );
        for (label, kind) in [
            ("TAS", Some(false)),
            ("TAS-nocopy", Some(true)),
            ("FlexTOE-scalar", None),
            ("FlexTOE", None),
        ] {
            let replicated = label == "FlexTOE";
            print!("{:<16}", label);
            for mss in [1448u32, 512, 128, 64] {
                let gbps = match kind {
                    Some(nocopy) => {
                        // TAS on this platform's cores
                        let opts = PairOpts::default();
                        let mut sim = Sim::new(71);
                        let (ea, eb) = build_pair(&mut sim, Stack::Tas, Stack::Tas, &opts);
                        for ep in [&ea, &eb] {
                            let n = ep.baseline.unwrap();
                            let h = sim.node_mut::<HostStackNode>(n);
                            h.set_platform(tas_clock, platform.mac_bps);
                            h.copy_cycles_per_byte = if nocopy { 0.0 } else { tas_copy };
                        }
                        run_sink(&mut sim, &ea, &eb, Stack::Tas, mss)
                    }
                    None => {
                        let cfg = PipeCfg {
                            mss,
                            ..PipeCfg::port(platform, replicated)
                        };
                        let opts = PairOpts {
                            cfg,
                            ..Default::default()
                        };
                        let mut sim = Sim::new(72);
                        let (ea, eb) = build_pair(&mut sim, Stack::FlexToe, Stack::FlexToe, &opts);
                        run_sink(&mut sim, &ea, &eb, Stack::FlexToe, mss)
                    }
                };
                print!(" {:>6.2}", gbps / 1e9);
            }
            println!();
        }
    }
}

/// Helper: single-connection pipelined RPC sink throughput.
fn run_sink(sim: &mut Sim, ea: &Endpoint, eb: &Endpoint, stack: Stack, _mss: u32) -> f64 {
    let srv = sim.add_node(DynServer::new(
        server(16_384, 32, 0),
        eb.stack_init(stack, 1),
    ));
    let cli = sim.add_node(DynClient::new(
        ClientConfig {
            server_ip: eb.ip,
            ..client(1, 16_384, 32, 4, 3)
        },
        ea.stack_init(stack, 1),
    ));
    sim.schedule(Time::ZERO, srv, Tick);
    sim.schedule(Time::from_us(20), cli, Tick);
    sim.run_until(Time::from_ms(25));
    let c = sim.node_ref::<DynClient>(cli);
    c.throughput_rps() * 16_384.0 * 8.0
}

/// Fig. 15: throughput under random packet loss.
pub fn fig15() {
    println!("# Fig. 15a — 100 conns, 64 B echo x8 pipelined, vs loss rate");
    let rates = [0.0f64, 1e-5, 1e-4, 1e-3, 0.02];
    print!("{:<10}", "loss");
    for r in rates {
        print!(" {:>10}", format!("{}%", r * 100.0));
    }
    println!();
    for stack in Stack::all4() {
        print!("{:<10}", stack.name());
        for rate in rates {
            let opts = PairOpts {
                faults: Faults {
                    drop_chance: rate,
                    ..Default::default()
                },
                ..Default::default()
            };
            let (_s, res) = run_echo(
                81,
                stack,
                stack,
                opts,
                server(64, 64, 0),
                client(100, 64, 64, 8, 4),
                Time::from_ms(24),
            );
            print!(" {:>10}", fmt_ops(res.rps));
        }
        println!();
    }
    println!("# Fig. 15b — 8 conns, unidirectional 1 MB RPCs, vs loss rate");
    print!("{:<10}", "loss");
    for r in rates {
        print!(" {:>12}", format!("{}%", r * 100.0));
    }
    println!();
    for stack in Stack::all4() {
        print!("{:<10}", stack.name());
        for rate in rates {
            let opts = PairOpts {
                faults: Faults {
                    drop_chance: rate,
                    ..Default::default()
                },
                ..Default::default()
            };
            let (_s, res) = run_echo(
                82,
                stack,
                stack,
                opts,
                server(1 << 20, 32, 0),
                client(8, 1 << 20, 32, 1, 4),
                Time::from_ms(40),
            );
            print!(" {:>12}", fmt_bps(res.rps * (1u64 << 20) as f64 * 8.0));
        }
        println!();
    }
}

/// Fig. 16: per-connection fairness at line rate.
pub fn fig16() {
    println!("# Fig. 16 — goodput/fair-share distribution (bulk flows)");
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>7}",
        "stack", "conns", "p50/fs", "p1/fs", "JFI"
    );
    for stack in [Stack::FlexToe, Stack::Linux] {
        for conns in [64u32, 256, 1024] {
            let (_s, res) = run_echo(
                91,
                stack,
                stack,
                PairOpts::default(),
                server(16_384, 32, 0),
                ClientConfig {
                    connect_spacing: Duration::from_us(1),
                    ..client(conns, 16_384, 32, 1, 8)
                },
                Time::from_ms(30),
            );
            let mut per: Vec<u64> = res.per_conn_bytes;
            per.sort_unstable();
            let n = per.len().max(1);
            let total: u64 = per.iter().sum();
            let fair = total as f64 / n as f64;
            let p50 = per[n / 2] as f64 / fair.max(1.0);
            let p1 = per[n / 100] as f64 / fair.max(1.0);
            println!(
                "{:<10} {:>6} {:>8.2} {:>8.2} {:>7.2}",
                stack.name(),
                conns,
                p50,
                p1,
                jain_index(&per)
            );
        }
    }
}

/// Bonus ablation: sequencing/reordering disabled (§3.2).
pub fn ablate_reorder() {
    println!("# Ablation — §3.2 sequencing/reordering on vs off (2 KB echo, 64 conns)");
    for reorder in [true, false] {
        let cfg = PipeCfg {
            reorder,
            ..PipeCfg::agilio_full()
        };
        let (sim, res) = run_echo(
            95,
            Stack::FlexToe,
            Stack::FlexToe,
            PairOpts {
                cfg,
                ..Default::default()
            },
            server(2048, 2048, 0),
            client(64, 2048, 2048, 1, 3),
            Time::from_ms(15),
        );
        println!(
            "reorder={:<5}  tput {:>12}  spurious-OOO {:>8}  p99.99 {:>8.0} us",
            reorder,
            fmt_bps(res.goodput_bps * 2.0),
            sim.stats.get_named("proto.ooo"),
            res.latency.p9999() as f64 / 1000.0,
        );
    }
}

// ---------------------------------------------------------------------------

/// Engine perf snapshot: micro events/sec (wheel+typed vs the heap+boxed
/// reconstruction of the pre-optimization engine), the switch-forwarding
/// micro (fabric fast path), plus an end-to-end echo run with wall-clock
/// and simulated rates. Emits `BENCH_pipeline.json` so future PRs can
/// track regressions. `--seed` varies the echo run; `--out` redirects
/// the artifact. Because every number here is a wall-clock measurement,
/// the micros run serially by default and the e2e run always measures
/// alone; passing `--jobs N` explicitly opts the micro variants into
/// concurrent workers (their absolute numbers then include contention).
/// `--smoke` is a no-op: the snapshot is already CI-sized.
pub fn bench_pipeline(opts: &crate::cli::RunOpts) {
    use flextoe_sim::QueueKind;
    use std::time::Instant;

    println!("# bench-pipeline — engine event-core performance snapshot");

    // --- micros: pipeline ring variants + the switch hop ------------------
    // The true pre-PR engine (seed Box<dyn Any> + BinaryHeap + buffered
    // send path), measured on this host from a git worktree at the seed
    // commit with the same ring workload. The in-tree heap_boxed
    // reconstruction below is *conservative*: it still benefits from this
    // PR's direct-push send path, so it runs faster than the real seed.
    const SEED_BASELINE_EPS: f64 = 12_620_000.0;
    enum Micro {
        Ring(QueueKind, bool),
        /// Switch-forwarding micro: (tagged, sketched).
        Switch(bool, bool),
        /// Engine-dispatch micro: (nodes, burst).
        Dispatch(usize, bool),
    }
    let variants = [
        Micro::Ring(QueueKind::Heap, false),
        Micro::Ring(QueueKind::Heap, true),
        Micro::Ring(QueueKind::Wheel, false),
        Micro::Ring(QueueKind::Wheel, true),
        Micro::Switch(false, false),
        Micro::Switch(true, false),
        Micro::Switch(true, true),
        Micro::Dispatch(1, true),
        Micro::Dispatch(1, false),
        Micro::Dispatch(8, true),
        Micro::Dispatch(8, false),
    ];
    // Micros are *wall-clock* measurements: fanning them out over every
    // core would measure mutual contention, not the engine. They run
    // serially unless --jobs is given explicitly (an informed opt-in —
    // e.g. a quick comparative run where absolute numbers don't matter).
    let micro_jobs = opts.jobs.unwrap_or(1);
    let measured = crate::par::run_indexed(micro_jobs, variants.len(), |i| match variants[i] {
        Micro::Ring(kind, typed) => crate::enginebench::best_of(5, kind, typed),
        Micro::Switch(tagged, sketched) => crate::enginebench::switch_best_of(3, tagged, sketched),
        Micro::Dispatch(nodes, burst) => crate::enginebench::dispatch_best_of(3, nodes, burst),
    });
    let (heap_boxed, heap_typed, wheel_boxed, wheel_typed) =
        (measured[0], measured[1], measured[2], measured[3]);
    let (switch_raw, switch_tagged, switch_sketched) = (measured[4], measured[5], measured[6]);
    let (self_burst, self_noburst, ring8_burst, ring8_noburst) =
        (measured[7], measured[8], measured[9], measured[10]);
    let speedup = wheel_typed / heap_boxed;
    let speedup_vs_seed = wheel_typed / SEED_BASELINE_EPS;
    println!(
        "engine micro: seed {:.2}M  heap+boxed {:.2}M  wheel+typed {:.2}M  speedup {:.2}x (vs seed {:.2}x)",
        SEED_BASELINE_EPS / 1e6,
        heap_boxed / 1e6,
        wheel_typed / 1e6,
        speedup,
        speedup_vs_seed
    );
    let sketch_overhead = 1.0 - switch_sketched / switch_tagged;
    println!(
        "switch micro: raw {:.2}M frames/s  tagged {:.2}M frames/s  (parse-once x{:.2})  sketched {:.2}M frames/s (overhead {:.1}%)",
        switch_raw / 1e6,
        switch_tagged / 1e6,
        switch_tagged / switch_raw,
        switch_sketched / 1e6,
        sketch_overhead * 100.0,
    );
    println!(
        "dispatch micro: self-send {:.2}M (noburst {:.2}M, burst x{:.2})  ring8 {:.2}M (noburst {:.2}M)",
        self_burst / 1e6,
        self_noburst / 1e6,
        self_burst / self_noburst,
        ring8_burst / 1e6,
        ring8_noburst / 1e6,
    );

    // --- e2e: FlexTOE<->FlexTOE echo, wall + simulated rates --------------
    // Best-of-2 for the wall clock (the same least-disturbed-run policy
    // as the micros); the simulated results are identical every run by
    // construction, which the second run double-checks.
    let run = || {
        let wall0 = Instant::now();
        let (sim, res) = run_echo(
            opts.seed.unwrap_or(7),
            Stack::FlexToe,
            Stack::FlexToe,
            PairOpts::default(),
            server(64, 64, 0),
            client(16, 64, 64, 4, 2),
            Time::from_ms(30),
        );
        (wall0.elapsed().as_secs_f64(), sim, res)
    };
    let (wall_a, sim, res) = run();
    let (wall_b, sim_b, res_b) = run();
    assert_eq!(
        (sim.events_processed(), res.rps.to_bits()),
        (sim_b.events_processed(), res_b.rps.to_bits()),
        "e2e echo must be deterministic across repeat runs"
    );
    let wall = wall_a.min(wall_b);
    let sim_events = sim.events_processed();
    let wall_eps = sim_events as f64 / wall;
    let p50_us = res.latency.quantile(0.5) as f64 / 1000.0;
    let p99_us = res.latency.quantile(0.99) as f64 / 1000.0;
    println!(
        "e2e echo: {:.0} simulated rps, {} events in {:.2}s wall ({:.2}M events/s), p50 {:.1}us p99 {:.1}us",
        res.rps, sim_events, wall, wall_eps / 1e6, p50_us, p99_us
    );

    // --- prof: per-kind delivery counts + burst-length histogram ----------
    // A dedicated profiler-armed replay of the same echo scenario: the
    // best-of-2 timing runs above stay unperturbed, and since profiling
    // never changes simulated results the counts describe exactly the run
    // measured above (the replay's event count is asserted to match).
    let (prof_kinds, prof_burst) = {
        let mut psim = Sim::new(opts.seed.unwrap_or(7));
        psim.set_prof(true);
        let (ea, eb) = build_pair(
            &mut psim,
            Stack::FlexToe,
            Stack::FlexToe,
            &PairOpts::default(),
        );
        let srv = psim.add_node(DynServer::new(
            server(64, 64, 0),
            eb.stack_init(Stack::FlexToe, 1),
        ));
        let cli = psim.add_node(DynClient::new(
            ClientConfig {
                server_ip: eb.ip,
                ..client(16, 64, 64, 4, 2)
            },
            ea.stack_init(Stack::FlexToe, 1),
        ));
        psim.schedule(Time::ZERO, srv, Tick);
        psim.schedule(Time::from_us(20), cli, Tick);
        psim.run_until(Time::from_ms(30));
        assert_eq!(
            psim.events_processed(),
            sim_events,
            "prof replay must reproduce the measured run"
        );
        (psim.prof_kind_dump(), psim.prof_burst_hist())
    };
    let prof_kinds_json = prof_kinds
        .iter()
        .map(|(name, n)| format!("\"{name}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let prof_burst_json = prof_burst
        .iter()
        .map(|(len, n)| format!("\"{len}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let top = prof_kinds.first().map(|(n, _)| *n).unwrap_or("-");
    println!(
        "prof: {} msg kinds delivered (top {top}), {} burst-length buckets",
        prof_kinds.len(),
        prof_burst.len()
    );

    // --- machine-readable snapshot ----------------------------------------
    let json = format!(
        "{{\n  \"benchmark\": \"pipeline\",\n  \"engine_micro\": {{\n    \"events\": {},\n    \"seed_baseline_eps\": {:.0},\n    \"heap_boxed_eps\": {:.0},\n    \"heap_typed_eps\": {:.0},\n    \"wheel_boxed_eps\": {:.0},\n    \"wheel_typed_eps\": {:.0},\n    \"speedup_wheel_typed_vs_heap_boxed\": {:.3},\n    \"speedup_wheel_typed_vs_seed\": {:.3},\n    \"notes\": \"seed_baseline_eps is the true pre-PR engine (Box<dyn Any>+BinaryHeap+buffered sends) measured from a git worktree at the seed commit on this host; heap_boxed reconstructs it in-tree but still benefits from this PR's direct-push send path, so it over-estimates the baseline\"\n  }},\n  \"switch_micro\": {{\n    \"config\": \"one ECMP leaf hop, 64 flows, 130B frames, 2 uplinks\",\n    \"frames\": {},\n    \"raw_frames_per_sec\": {:.0},\n    \"tagged_frames_per_sec\": {:.0},\n    \"speedup_tagged_vs_raw\": {:.3},\n    \"sketched_frames_per_sec\": {:.0},\n    \"sketch_overhead_frac\": {:.4}\n  }},\n  \"engine_dispatch\": {{\n    \"config\": \"token forwarders; self_send = 1 node zero-delay (all same-slot direct drain), ring8 = 8 nodes 25ns hops (all singleton bursts)\",\n    \"events\": {},\n    \"self_send_burst_eps\": {:.0},\n    \"self_send_noburst_eps\": {:.0},\n    \"ring8_burst_eps\": {:.0},\n    \"ring8_noburst_eps\": {:.0},\n    \"burst_speedup_self_send\": {:.3},\n    \"burst_speedup_ring8\": {:.3}\n  }},\n  \"e2e_echo\": {{\n    \"config\": \"FlexTOE<->FlexTOE, 16 conns, 64B echo, 30ms simulated\",\n    \"simulated_rps\": {:.0},\n    \"simulated_goodput_bps\": {:.0},\n    \"sim_events\": {},\n    \"wall_secs\": {:.3},\n    \"wall_events_per_sec\": {:.0},\n    \"latency_us_p50\": {:.1},\n    \"latency_us_p99\": {:.1}\n  }},\n  \"prof\": {{\n    \"config\": \"profiler-armed replay of the e2e echo run (FLEXTOE_SIM_PROF counts; simulated results identical)\",\n    \"events\": {},\n    \"msg_kinds\": {{{}}},\n    \"burst_hist\": {{{}}}\n  }}\n}}\n",
        crate::enginebench::PIPE_EVENTS,
        SEED_BASELINE_EPS,
        heap_boxed,
        heap_typed,
        wheel_boxed,
        wheel_typed,
        speedup,
        speedup_vs_seed,
        crate::enginebench::SWITCH_FRAMES,
        switch_raw,
        switch_tagged,
        switch_tagged / switch_raw,
        switch_sketched,
        sketch_overhead,
        crate::enginebench::DISPATCH_EVENTS,
        self_burst,
        self_noburst,
        ring8_burst,
        ring8_noburst,
        self_burst / self_noburst,
        ring8_burst / ring8_noburst,
        res.rps,
        res.goodput_bps,
        sim_events,
        wall,
        wall_eps,
        p50_us,
        p99_us,
        sim_events,
        prof_kinds_json,
        prof_burst_json,
    );
    let path = opts.out_path("BENCH_pipeline.json");
    std::fs::write(&path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {}", path.display());
}
