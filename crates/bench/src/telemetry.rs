//! The telemetry experiment: ground-truth differential accuracy of the
//! per-switch fast-path sketches, and the heavy-hitter ECMP ablation.
//! This is the one evaluation a hardware testbed cannot run — the sim
//! records exact per-flow byte counts next to every switch's sketch, so
//! sketch error is measured against truth instead of estimated.
//!
//! Three row kinds share `BENCH_telemetry.json`:
//!
//! * **accuracy** — a pump injects pre-built tagged frames for 1k→100k
//!   synthetic flows straight into the switches (dst IP deliberately
//!   unrouted: the fast path observes each frame, then flood-drops the
//!   buffer back into the pool). Flow sizes follow a harmonic skew
//!   (`1 + C/(rank+1)`) or an adversarial uniform spread — the count-min
//!   worst case, where no flow clears the heavy-hitter threshold and
//!   collision noise dominates the small-flow relative error. Rows score
//!   the collector's merged per-switch views against per-switch truth:
//!   ARE for the plain count-min and the LSB-sharing variant,
//!   heavy-hitter recall/precision, and an exactness check that every
//!   observed byte landed in a swept epoch.
//! * **faults** — the chaos plane's spine-kill and link-flap schedules
//!   re-run with telemetry enabled (the reconnecting-session workload of
//!   `BENCH_faults.json`). A killed switch loses its un-swept epoch while
//!   ground truth survives, so sketch-vs-truth error *is* the blast
//!   radius; the rows also audit that report frames obey the
//!   buffer-conservation invariant under fire.
//! * **hh_ecmp** — elephants (bulk sessions) and mice (small RPC
//!   sessions) share the fabric with collector-fed heavy-hitter ECMP off
//!   vs on; rows report goodput, Jain fairness over the client hosts, and
//!   how many frames were rank-steered.
//!
//! `BENCH_telemetry.json` minus its wall block is byte-identical per seed
//! across runs, `--jobs` values, and the burst vs. reference engine.

use flextoe_apps::{CloseAll, FramedServerConfig, SessionConfig};
use flextoe_netsim::{Collector, Switch, TelemetrySpec};
use flextoe_sim::{Ctx, Duration, Msg, Node, NodeId, Sim, Tick, Time};
use flextoe_telemetry::score_sketch;
use flextoe_topo::{
    build_fabric, BuiltFabric, DynSessionClient, Fabric, FaultEvent, FaultTarget, HostSpec, Role,
    Scenario, Stack,
};
use flextoe_wire::{Frame, FrameMeta, Ip4, MacAddr, SegmentSpec};

use crate::cli::RunOpts;
use crate::faults::{buf_balance, chaos_scenario, ChaosRow, FaultsPlan};
use crate::harness::jain_index;
use crate::par::run_indexed;
use crate::scale::{with_wall_block, HOSTS_PER_LEAF, LEAVES, SPINES};

const N_SWITCHES: usize = LEAVES + SPINES;

/// One experiment row.
enum TRow {
    /// Synthetic pump: `flows` distinct flows, sized `1 + skew_c/(rank+1)`
    /// frames each, or `uniform_frames` each when `skew_c == 0`.
    Accuracy {
        name: &'static str,
        flows: u32,
        skew_c: u32,
        uniform_frames: u32,
    },
    /// A chaos schedule re-run with telemetry enabled.
    Fault { name: &'static str },
    /// Elephants + mice with heavy-hitter ECMP off/on.
    Hh { name: &'static str, on: bool },
}

/// Row sweep + the chaos plan its fault rows reuse.
pub struct TelemetryPlan {
    rows: Vec<TRow>,
    faults: FaultsPlan,
    hh_t_end: Time,
    hh_t_drain: Time,
}

impl TelemetryPlan {
    pub fn full() -> TelemetryPlan {
        TelemetryPlan {
            rows: vec![
                TRow::Accuracy {
                    name: "skew-1k",
                    flows: 1_000,
                    skew_c: 2_000,
                    uniform_frames: 0,
                },
                TRow::Accuracy {
                    name: "skew-10k",
                    flows: 10_000,
                    skew_c: 5_000,
                    uniform_frames: 0,
                },
                TRow::Accuracy {
                    name: "skew-100k",
                    flows: 100_000,
                    skew_c: 20_000,
                    uniform_frames: 0,
                },
                TRow::Accuracy {
                    name: "adversarial-uniform-100k",
                    flows: 100_000,
                    skew_c: 0,
                    uniform_frames: 3,
                },
                TRow::Fault {
                    name: "faults-spine-kill",
                },
                TRow::Fault {
                    name: "faults-link-flap",
                },
                TRow::Hh {
                    name: "hh-ecmp-off",
                    on: false,
                },
                TRow::Hh {
                    name: "hh-ecmp-on",
                    on: true,
                },
            ],
            faults: FaultsPlan::full(),
            hh_t_end: Time::from_ms(10),
            hh_t_drain: Time::from_ms(14),
        }
    }

    pub fn smoke() -> TelemetryPlan {
        TelemetryPlan {
            rows: vec![
                TRow::Accuracy {
                    name: "skew-1k",
                    flows: 1_000,
                    skew_c: 2_000,
                    uniform_frames: 0,
                },
                TRow::Accuracy {
                    name: "skew-5k",
                    flows: 5_000,
                    skew_c: 3_000,
                    uniform_frames: 0,
                },
                TRow::Accuracy {
                    name: "adversarial-uniform-20k",
                    flows: 20_000,
                    skew_c: 0,
                    uniform_frames: 3,
                },
                TRow::Fault {
                    name: "faults-spine-kill",
                },
                TRow::Fault {
                    name: "faults-link-flap",
                },
                TRow::Hh {
                    name: "hh-ecmp-off",
                    on: false,
                },
                TRow::Hh {
                    name: "hh-ecmp-on",
                    on: true,
                },
            ],
            faults: FaultsPlan::smoke(),
            hh_t_end: Time::from_ms(4),
            hh_t_drain: Time::from_ms(6),
        }
    }
}

/// One finished row: a console line and a JSON object string. Both are
/// derived purely from simulated state, so the JSON is deterministic.
pub struct TelemetryRow {
    pub line: String,
    pub json: String,
    pub sim_events: u64,
}

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

// ---- accuracy rows --------------------------------------------------------

/// One pre-built flow: its target switch and a ready-to-clone frame.
struct PumpFlow {
    to: NodeId,
    bytes: Vec<u8>,
    meta: FrameMeta,
}

/// Paced frame injector: walks a pre-shuffled flow schedule, one pooled
/// tagged frame per wake, straight into the switches.
struct AccuracyPump {
    flows: Vec<PumpFlow>,
    schedule: Vec<u32>,
    pos: usize,
    gap: Duration,
}

impl Node for AccuracyPump {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        let Some(&f) = self.schedule.get(self.pos) else {
            return;
        };
        self.pos += 1;
        let fl = &self.flows[f as usize];
        let mut buf = ctx.pool.take();
        buf.extend_from_slice(&fl.bytes);
        ctx.send(fl.to, Duration::ZERO, Frame::tagged(buf, fl.meta));
        if self.pos < self.schedule.len() {
            ctx.wake(self.gap, Tick);
        }
    }

    fn name(&self) -> String {
        "telemetry-pump".to_string()
    }
}

/// Per-fabric accuracy aggregate: per-switch `score_sketch` results
/// combined flow-weighted (ARE) and set-size-weighted (recall/precision).
struct AggScore {
    flows: u64,
    truth_bytes: u64,
    cm_are: f64,
    lsb_are: f64,
    cm_under: u64,
    lsb_under: u64,
    hh_truth: u64,
    hh_est: u64,
    hh_recall: f64,
    hh_precision: f64,
    candidates: u64,
    /// Every switch's merged-view byte total equals its exact truth —
    /// i.e. no observed traffic was lost to an un-swept or killed epoch.
    complete: bool,
}

fn score_fabric(sim: &Sim, fab: &BuiltFabric, theta: f64) -> AggScore {
    let col = sim.node_ref::<Collector>(fab.collector.expect("telemetry plane wired"));
    let mut agg = AggScore {
        flows: 0,
        truth_bytes: 0,
        cm_are: 0.0,
        lsb_are: 0.0,
        cm_under: 0,
        lsb_under: 0,
        hh_truth: 0,
        hh_est: 0,
        hh_recall: 1.0,
        hh_precision: 1.0,
        candidates: 0,
        complete: true,
    };
    let (mut cm_are_w, mut lsb_are_w) = (0.0f64, 0.0f64);
    let (mut recall_w, mut precision_w) = (0.0f64, 0.0f64);
    for (i, &s) in fab.switches.iter().enumerate() {
        let sw = sim.node_ref::<Switch>(s);
        let Some(truth_map) = sw.telemetry_truth() else {
            continue;
        };
        let mut truth: Vec<(u64, u64)> = truth_map.iter().map(|(&k, &v)| (k, v)).collect();
        truth.sort_unstable();
        let truth_bytes: u64 = truth.iter().map(|&(_, v)| v).sum();
        let v = &col.views()[i];
        let cands: Vec<u64> = v.keys.iter().copied().collect();
        let s_cm = score_sketch(&truth, |k| v.cm.estimate(k), &cands, v.bytes, theta);
        let s_lsb = score_sketch(&truth, |k| v.lsb.estimate(k), &cands, v.bytes, theta);
        let n = truth.len() as f64;
        agg.flows += truth.len() as u64;
        agg.truth_bytes += truth_bytes;
        cm_are_w += s_cm.are * n;
        lsb_are_w += s_lsb.are * n;
        agg.cm_under += s_cm.underestimates;
        agg.lsb_under += s_lsb.underestimates;
        recall_w += s_cm.hh_recall * s_cm.hh_truth as f64;
        precision_w += s_cm.hh_precision * s_cm.hh_est as f64;
        agg.hh_truth += s_cm.hh_truth as u64;
        agg.hh_est += s_cm.hh_est as u64;
        agg.candidates += cands.len() as u64;
        agg.complete &= v.bytes == truth_bytes;
    }
    if agg.flows > 0 {
        agg.cm_are = cm_are_w / agg.flows as f64;
        agg.lsb_are = lsb_are_w / agg.flows as f64;
    }
    if agg.hh_truth > 0 {
        agg.hh_recall = recall_w / agg.hh_truth as f64;
    }
    if agg.hh_est > 0 {
        agg.hh_precision = precision_w / agg.hh_est as f64;
    }
    agg
}

fn run_accuracy(
    seed: u64,
    name: &'static str,
    n_flows: u32,
    skew_c: u32,
    uniform_frames: u32,
) -> TelemetryRow {
    let mut sc = Scenario::idle(
        seed,
        Fabric::LeafSpine {
            leaves: LEAVES,
            spines: SPINES,
            hosts_per_leaf: HOSTS_PER_LEAF,
        },
        Stack::FlexToe,
    );
    let spec = TelemetrySpec::default(); // 1ms epochs, 8 sweeps: covers the pump
    sc.telemetry = Some(spec);
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);

    // flow f lands on switch f % 6 (injected directly, every tier gets
    // its own disjoint population); the 5-tuple is unique per flow and
    // the dst IP is deliberately unrouted — observe, then flood-drop
    let flows: Vec<PumpFlow> = (0..n_flows)
        .map(|f| {
            let seg = SegmentSpec {
                src_mac: MacAddr::local(200),
                dst_mac: MacAddr::local(201), // in no MAC table
                src_ip: Ip4::host(220),
                dst_ip: Ip4::host(240), // no route on any switch
                src_port: 1_024 + (f % 60_000) as u16,
                dst_port: 7_000 + (f / 60_000) as u16,
                payload_len: 64 + (f as usize % 4) * 64,
                ..Default::default()
            };
            PumpFlow {
                to: fab.switches[f as usize % N_SWITCHES],
                bytes: seg.emit_zeroed(),
                meta: seg.meta(),
            }
        })
        .collect();

    // harmonic skew (rank 0 is the biggest elephant) or adversarial
    // uniform, then a seeded Fisher–Yates shuffle so epochs interleave
    let mut schedule: Vec<u32> = Vec::new();
    for f in 0..n_flows {
        let n = if skew_c > 0 {
            1 + skew_c / (f + 1)
        } else {
            uniform_frames
        };
        for _ in 0..n {
            schedule.push(f);
        }
    }
    let mut st = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for i in (1..schedule.len()).rev() {
        let j = (xorshift64(&mut st) % (i as u64 + 1)) as usize;
        schedule.swap(i, j);
    }
    let frames = schedule.len() as u64;

    let pump = sim.add_node(AccuracyPump {
        flows,
        schedule,
        pos: 0,
        gap: Duration::from_ns(20),
    });
    sim.schedule(Time::ZERO, pump, Tick);
    sim.run();

    let agg = score_fabric(&sim, &fab, spec.hh_theta);
    let col = sim.node_ref::<Collector>(fab.collector.expect("telemetry plane wired"));
    let (reports, report_bytes) = (col.reports, col.report_bytes);
    let sim_events = sim.events_processed();
    TelemetryRow {
        line: format!(
            "{:<24} {:>7} {:>8} {:>9.4} {:>9.4} {:>7.3} {:>7.3} {:>9}",
            name, agg.flows, frames, agg.cm_are, agg.lsb_are, agg.hh_recall, agg.hh_precision,
            agg.complete
        ),
        json: format!(
            "{{\"name\": \"{}\", \"kind\": \"accuracy\", \"flows\": {}, \"frames\": {}, \"truth_bytes\": {}, \"complete\": {}, \"cm_are\": {:.4}, \"lsb_are\": {:.4}, \"cm_underestimates\": {}, \"lsb_underestimates\": {}, \"hh_truth\": {}, \"hh_est\": {}, \"hh_recall\": {:.4}, \"hh_precision\": {:.4}, \"candidates\": {}, \"reports\": {}, \"report_bytes\": {}, \"sim_events\": {}}}",
            name,
            agg.flows,
            frames,
            agg.truth_bytes,
            agg.complete,
            agg.cm_are,
            agg.lsb_are,
            agg.cm_under,
            agg.lsb_under,
            agg.hh_truth,
            agg.hh_est,
            agg.hh_recall,
            agg.hh_precision,
            agg.candidates,
            reports,
            report_bytes,
            sim_events,
        ),
        sim_events,
    }
}

// ---- fault rows -----------------------------------------------------------

/// Telemetry spec for the chaos rows: fast epochs, sweeps ending 1ms
/// before the drain checkpoint so every report lands inside the run.
fn fault_spec(plan: &FaultsPlan) -> TelemetrySpec {
    let epoch = Duration::from_us(500);
    TelemetrySpec {
        epoch,
        sweeps: ((plan.t_drain.as_ns() - 1_000_000) / epoch.as_ns()) as u32,
        hh_theta: 0.01,
        ..Default::default()
    }
}

fn fault_schedule(name: &str, plan: &FaultsPlan) -> Vec<FaultEvent> {
    match name {
        "faults-spine-kill" => {
            let spine0 = FaultTarget::Switch { index: LEAVES };
            vec![
                FaultEvent::down(plan.t_fault, spine0),
                FaultEvent::up(plan.t_heal, spine0),
            ]
        }
        "faults-link-flap" => {
            // 4 down/up cycles on the first leaf↔spine link pair
            let link = FaultTarget::FabricLink { index: 0 };
            let n = 4u64;
            let period = Duration::from_ns(plan.t_heal.saturating_since(plan.t_fault).as_ns() / n);
            let half = Duration::from_ns(period.as_ns() / 2);
            (0..n)
                .flat_map(|k| {
                    let t0 = plan.t_fault + period * k;
                    [FaultEvent::down(t0, link), FaultEvent::up(t0 + half, link)]
                })
                .collect()
        }
        other => panic!("unknown fault row {other}"),
    }
}

fn run_fault(seed: u64, name: &'static str, plan: &FaultsPlan) -> TelemetryRow {
    let row = ChaosRow {
        name,
        schedule: fault_schedule(name, plan),
    };
    let mut sc = chaos_scenario(seed, &row, plan);
    let spec = fault_spec(plan);
    sc.telemetry = Some(spec);
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    let sessions: Vec<NodeId> = fab.hosts.iter().filter_map(|h| h.session()).collect();
    sim.run_until(plan.t_end);
    for &n in &sessions {
        sim.schedule(sim.now(), n, CloseAll);
    }
    sim.run_until(plan.t_drain);

    let agg = score_fabric(&sim, &fab, spec.hh_theta);
    let col = sim.node_ref::<Collector>(fab.collector.expect("telemetry plane wired"));
    let (reports, bad_reports, sweeps_sent) = (col.reports, col.bad_reports, col.sweeps_sent);
    // a dead switch ignores SweepNow, so kill windows show up as holes
    let missed_reports = sweeps_sent * N_SWITCHES as u64 - reports;
    let completed: u64 = sessions
        .iter()
        .map(|&n| sim.node_ref::<DynSessionClient>(n).completed)
        .sum();
    let buf_delta = buf_balance(&sim, &fab);
    let sim_events = sim.events_processed();
    TelemetryRow {
        line: format!(
            "{:<24} {:>7} {:>8} {:>9.4} {:>9} {:>7.3} {:>7.3} {:>9}",
            name,
            agg.flows,
            missed_reports,
            agg.cm_are,
            agg.cm_under,
            agg.hh_recall,
            agg.hh_precision,
            buf_delta == 0,
        ),
        json: format!(
            "{{\"name\": \"{}\", \"kind\": \"faults\", \"flows\": {}, \"truth_bytes\": {}, \"complete\": {}, \"cm_are\": {:.4}, \"cm_underestimates\": {}, \"hh_recall\": {:.4}, \"hh_precision\": {:.4}, \"reports\": {}, \"bad_reports\": {}, \"missed_reports\": {}, \"completed\": {}, \"buf_delta\": {}, \"conserved\": {}, \"sim_events\": {}}}",
            name,
            agg.flows,
            agg.truth_bytes,
            agg.complete,
            agg.cm_are,
            agg.cm_under,
            agg.hh_recall,
            agg.hh_precision,
            reports,
            bad_reports,
            missed_reports,
            completed,
            buf_delta,
            buf_delta == 0,
            sim_events,
        ),
        sim_events,
    }
}

// ---- heavy-hitter ECMP rows -----------------------------------------------

/// Elephants + mice: bulk sessions (big responses) and small-RPC
/// sessions share every leaf pair across the spines.
fn hh_scenario(seed: u64, on: bool, t_drain: Time) -> Scenario {
    let fabric = Fabric::LeafSpine {
        leaves: LEAVES,
        spines: SPINES,
        hosts_per_leaf: HOSTS_PER_LEAF,
    };
    let hosts = (0..fabric.n_hosts())
        .map(|i| {
            let role = if i % 2 == 0 {
                let leaf = i / HOSTS_PER_LEAF;
                let target = ((leaf + 1) % LEAVES) * HOSTS_PER_LEAF + 1;
                let bulk = i % 4 == 0;
                Role::Session {
                    cfg: SessionConfig {
                        n_sessions: if bulk { 2 } else { 8 },
                        req_size: 128,
                        resp_size: if bulk { 16_384 } else { 256 },
                        think: Duration::from_us(10),
                        warmup: Time::from_us(500),
                        ..Default::default()
                    },
                    target,
                }
            } else {
                Role::FramedServer(FramedServerConfig::default())
            };
            HostSpec {
                stack: Stack::FlexToe,
                role,
            }
        })
        .collect();
    let epoch = Duration::from_us(250);
    Scenario {
        seed,
        fabric,
        hosts,
        links: Default::default(),
        opts: Default::default(),
        fault_schedule: Vec::new(),
        telemetry: Some(TelemetrySpec {
            epoch,
            sweeps: ((t_drain.as_ns() - 1_000_000) / epoch.as_ns()) as u32,
            hh_theta: 0.05,
            hh_ecmp: on,
            ground_truth: false,
            ..Default::default()
        }),
        client_start: Time::from_us(20),
        client_stagger: Duration::from_us(1),
        // the telemetry plane is not shardable (collector fan-in
        // crosses non-link edges) — partition_fabric enforces this
        shards: 1,
    }
}

fn run_hh(seed: u64, name: &'static str, on: bool, t_end: Time, t_drain: Time) -> TelemetryRow {
    let sc = hh_scenario(seed, on, t_drain);
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    let sessions: Vec<NodeId> = fab.hosts.iter().filter_map(|h| h.session()).collect();
    sim.run_until(t_end);
    for &n in &sessions {
        sim.schedule(sim.now(), n, CloseAll);
    }
    sim.run_until(t_drain);

    let mut per_client_bytes = Vec::with_capacity(sessions.len());
    let mut completed = 0u64;
    for &n in &sessions {
        let c = sim.node_ref::<DynSessionClient>(n);
        per_client_bytes.push(c.bytes_in);
        completed += c.completed;
    }
    let bytes_in: u64 = per_client_bytes.iter().sum();
    let goodput_gbps = bytes_in as f64 * 8.0 / t_end.as_ns() as f64; // bits/ns == Gbps
    let jfi = jain_index(&per_client_bytes);
    let steered = sim.stats.get_named("switch.hh_steered");
    let reroutes = sim.stats.get_named("switch.ecmp_rerouted");
    let elephants: usize = fab
        .switches
        .iter()
        .map(|&s| sim.node_ref::<Switch>(s).telemetry_elephants().len())
        .sum();
    let buf_delta = buf_balance(&sim, &fab);
    let sim_events = sim.events_processed();
    TelemetryRow {
        line: format!(
            "{:<24} {:>7} {:>8} {:>9.3} {:>9.4} {:>7} {:>7} {:>9}",
            name,
            completed,
            elephants,
            goodput_gbps,
            jfi,
            steered,
            reroutes,
            buf_delta == 0,
        ),
        json: format!(
            "{{\"name\": \"{}\", \"kind\": \"hh_ecmp\", \"hh_ecmp\": {}, \"completed\": {}, \"bytes_in\": {}, \"goodput_gbps\": {:.3}, \"jfi\": {:.4}, \"steered\": {}, \"reroutes\": {}, \"elephants\": {}, \"buf_delta\": {}, \"conserved\": {}, \"sim_events\": {}}}",
            name,
            on,
            completed,
            bytes_in,
            goodput_gbps,
            jfi,
            steered,
            reroutes,
            elephants,
            buf_delta,
            buf_delta == 0,
            sim_events,
        ),
        sim_events,
    }
}

// ---- driver ---------------------------------------------------------------

fn run_row(seed: u64, row: &TRow, plan: &TelemetryPlan) -> TelemetryRow {
    match *row {
        TRow::Accuracy {
            name,
            flows,
            skew_c,
            uniform_frames,
        } => run_accuracy(seed, name, flows, skew_c, uniform_frames),
        TRow::Fault { name } => run_fault(seed, name, &plan.faults),
        TRow::Hh { name, on } => run_hh(seed, name, on, plan.hh_t_end, plan.hh_t_drain),
    }
}

/// The whole sweep over `jobs` worker threads; every row builds its own
/// `Sim` from the same seed, so any `--jobs` merges byte-identically.
pub fn run_telemetry_jobs(seed: u64, plan: &TelemetryPlan, jobs: usize) -> Vec<TelemetryRow> {
    run_indexed(jobs, plan.rows.len(), |i| {
        run_row(seed, &plan.rows[i], plan)
    })
}

/// Serialize the sweep deterministically (byte-identical per seed — the
/// acceptance contract on `BENCH_telemetry.json`).
pub fn telemetry_json(seed: u64, results: &[TelemetryRow]) -> String {
    let cfg = flextoe_telemetry::SketchCfg::default();
    let mut s = String::new();
    s.push_str("{\n  \"benchmark\": \"telemetry\",\n");
    s.push_str(&format!(
        "  \"scenario\": {{\n    \"seed\": {seed},\n    \"fabric\": \"leafspine-{LEAVES}x{SPINES}\",\n    \"switches\": {N_SWITCHES},\n    \"sketch\": {{\"depth\": {}, \"width\": {}, \"key_slots\": {}}}\n  }},\n",
        cfg.depth, cfg.width, cfg.key_slots,
    ));
    s.push_str("  \"rows\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&r.json);
        s.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `telemetry` experiment: sketch accuracy vs ground truth across
/// flow scales, under chaos schedules, and the heavy-hitter ECMP
/// ablation. Writes `BENCH_telemetry.json`.
pub fn telemetry(opts: &RunOpts) {
    let plan = if opts.smoke {
        TelemetryPlan::smoke()
    } else {
        TelemetryPlan::full()
    };
    let seed = opts.seed.unwrap_or(29);
    let jobs = opts.jobs();
    println!(
        "# telemetry — sketch accuracy vs exact truth on the {LEAVES}-leaf/{SPINES}-spine fabric{} [jobs={jobs}]",
        if opts.smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:<24} {:>7} {:>8} {:>9} {:>9} {:>7} {:>7} {:>9}",
        "row", "flows", "frames*", "cm_are*", "lsb_are*", "recall", "precis", "ok"
    );
    println!("# (* fault rows: missed reports / underestimates; hh rows: completed / elephants / goodput / jfi / steered)");
    let wall0 = std::time::Instant::now();
    let results = run_telemetry_jobs(seed, &plan, jobs);
    let wall = wall0.elapsed().as_secs_f64();
    for r in &results {
        println!("{}", r.line);
    }
    let sim_events: u64 = results.iter().map(|r| r.sim_events).sum();
    println!(
        "sweep wall: {:.2}s, {} events ({:.2}M events/s, jobs={})",
        wall,
        sim_events,
        sim_events as f64 / wall / 1e6,
        jobs
    );
    let json = with_wall_block(telemetry_json(seed, &results), wall, sim_events, jobs);
    let path = opts.out_path("BENCH_telemetry.json");
    std::fs::write(&path, &json).expect("write BENCH_telemetry.json");
    println!("wrote {}", path.display());
}
