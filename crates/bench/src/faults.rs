//! The chaos experiment: hard fault injection on the 4-leaf/2-spine
//! fabric under a reconnecting closed-loop session workload. Each row
//! fails part of the fabric at `t_fault` — probabilistic drop storms,
//! fabric-link flap trains, spine kills (ECMP failover), leaf kills
//! (blackholed hosts → RTO give-up → abort → reconnection storm) — and
//! explicitly heals it at `t_heal`. The driver samples goodput in fixed
//! time buckets around the window and reports recovery metrics: dip
//! depth, time-to-recover after heal, and the reroute / retransmit /
//! abort / reconnect counts behind them.
//!
//! Every row ends with a conservation audit: after `CloseAll` + drain,
//! each issued request is accounted exactly once (`issued == completed +
//! dead_requests`), no session holds an in-flight request, and the
//! FlexTOE pool gauges (work slots, pktbuf segments) are back to zero
//! in-flight across every NIC. `BENCH_faults.json` is byte-identical per
//! seed across runs, `--jobs` values, and the burst vs. reference engine.

use flextoe_apps::{CloseAll, FramedServerConfig, SessionConfig};
use flextoe_core::PoolGauges;
use flextoe_netsim::{Faults, GeParams, Link, Switch};
use flextoe_shard::{ShardedSim, SyncStats};
use flextoe_sim::{Duration, Histogram, NodeId, Sim, Stats, Time};
use flextoe_topo::{
    build_fabric, partition_fabric, BuiltFabric, DynSessionClient, Fabric, FaultEvent, FaultTarget,
    HostSpec, LinkScope, PairOpts, Role, Scenario, Stack,
};

use crate::cli::RunOpts;
use crate::par::run_indexed;
use crate::scale::{with_wall_extras, HOSTS_PER_LEAF, LEAVES, SPINES};

/// One chaos case: a named fault schedule over the shared timeline.
#[derive(Clone)]
pub struct ChaosRow {
    pub name: &'static str,
    pub schedule: Vec<FaultEvent>,
}

/// Chaos-sweep configuration. All instants must be multiples of
/// `bucket` (the goodput series is sampled on bucket boundaries).
#[derive(Clone)]
pub struct FaultsPlan {
    pub rows: Vec<ChaosRow>,
    pub n_sessions_per_host: u32,
    pub req_size: u32,
    pub resp_size: u32,
    /// Closed-loop think time between a response and the next request.
    pub think: Duration,
    /// RTO floor and give-up budget, sized so a blackholed flow aborts
    /// *inside* the fault window (stall → abort ≈ `min_rto × 2^give_up`).
    pub min_rto: Duration,
    pub rto_give_up: u32,
    /// Base SYN retransmission interval for reconnect attempts.
    pub syn_retry: Duration,
    /// Goodput sampling bucket.
    pub bucket: Duration,
    /// Pre-fault baseline goodput is averaged over `[warmup, t_fault)`.
    pub warmup: Time,
    pub t_fault: Time,
    pub t_heal: Time,
    /// Clients stop (`CloseAll`) here; recovery is judged on
    /// `[t_heal, t_end)`.
    pub t_end: Time,
    /// Conservation checkpoint: everything must have drained by here.
    pub t_drain: Time,
}

/// The fault-intensity sweep: drop percentage, flap rate, kill count.
fn chaos_rows(t_fault: Time, t_heal: Time, full: bool) -> Vec<ChaosRow> {
    let spine0 = FaultTarget::Switch { index: LEAVES };
    let leaf1 = FaultTarget::Switch { index: 1 };
    let degrade = |p: f64| {
        vec![
            FaultEvent::degrade(
                t_fault,
                LinkScope::Fabric,
                Faults {
                    drop_chance: p,
                    ..Default::default()
                },
            ),
            FaultEvent::degrade(t_heal, LinkScope::Fabric, Faults::default()),
        ]
    };
    let kill = |targets: &[FaultTarget]| -> Vec<FaultEvent> {
        let mut v: Vec<FaultEvent> = targets
            .iter()
            .map(|&t| FaultEvent::down(t_fault, t))
            .collect();
        v.extend(targets.iter().map(|&t| FaultEvent::up(t_heal, t)));
        v
    };
    // flap train on one leaf0↔spine0 link: n down/up cycles across the
    // window, each link down for half its period, healed by the last Up
    let flap = |n: u64| -> Vec<ChaosRow> {
        let link = FaultTarget::FabricLink { index: 0 };
        let period = Duration::from_ns(t_heal.saturating_since(t_fault).as_ns() / n);
        let half = Duration::from_ns(period.as_ns() / 2);
        let schedule = (0..n)
            .flat_map(|k| {
                let t0 = t_fault + period * k;
                [FaultEvent::down(t0, link), FaultEvent::up(t0 + half, link)]
            })
            .collect();
        vec![ChaosRow {
            name: if n == 1 {
                "link-flap-x1"
            } else {
                "link-flap-x4"
            },
            schedule,
        }]
    };
    let mut rows = vec![
        ChaosRow {
            name: "baseline",
            schedule: vec![],
        },
        ChaosRow {
            name: "drop-10pct",
            schedule: degrade(0.10),
        },
        ChaosRow {
            name: "spine-kill",
            schedule: kill(&[spine0]),
        },
    ];
    if full {
        rows.insert(
            1,
            ChaosRow {
                name: "drop-1pct",
                schedule: degrade(0.01),
            },
        );
        rows.extend(flap(1));
        rows.extend(flap(4));
        rows.push(ChaosRow {
            name: "leaf-kill",
            schedule: kill(&[leaf1]),
        });
        rows.push(ChaosRow {
            name: "spine-leaf-kill",
            schedule: kill(&[spine0, leaf1]),
        });
    }
    rows
}

/// The gray-failure rows (`--gray`): faults that degrade without
/// killing anything — bursty Gilbert–Elliott loss, a duplication storm,
/// reorder-inducing jitter, and spine0 limping at 8× serialization
/// latency. All heal at `t_heal`. Every probabilistic draw comes from
/// the afflicted link's own RNG stream, so the rows are byte-identical
/// per seed across engines, `--jobs`, and `--shards`.
fn gray_rows(t_fault: Time, t_heal: Time) -> Vec<ChaosRow> {
    let degrade = |name, faults: Faults| ChaosRow {
        name,
        schedule: vec![
            FaultEvent::degrade(t_fault, LinkScope::Fabric, faults),
            FaultEvent::degrade(t_heal, LinkScope::Fabric, Faults::default()),
        ],
    };
    vec![
        degrade(
            "dup-storm",
            Faults {
                dup_chance: 0.3,
                ..Default::default()
            },
        ),
        degrade(
            "reorder",
            Faults {
                jitter: Duration::from_us(5),
                ..Default::default()
            },
        ),
        degrade(
            "ge-loss",
            Faults {
                ge: Some(GeParams {
                    p_enter: 0.02,
                    p_exit: 0.2,
                    loss_good: 0.0,
                    loss_bad: 0.5,
                }),
                ..Default::default()
            },
        ),
        // 512× serialization on spine0 turns its 100G ports into ~200M
        // ones: slow enough to queue and dip the flows ECMP pinned to
        // it, while spine1's flows sail through — the canonical
        // differential gray failure (no port ever reports down).
        ChaosRow {
            name: "limping-spine",
            schedule: vec![
                FaultEvent::limp(t_fault, LEAVES, 512),
                FaultEvent::limp(t_heal, LEAVES, 1),
            ],
        },
    ]
}

impl FaultsPlan {
    pub fn full() -> FaultsPlan {
        let (t_fault, t_heal) = (Time::from_ms(4), Time::from_ms(8));
        FaultsPlan {
            rows: chaos_rows(t_fault, t_heal, true),
            n_sessions_per_host: 8,
            req_size: 128,
            resp_size: 512,
            think: Duration::from_us(20),
            min_rto: Duration::from_us(200),
            rto_give_up: 3,
            syn_retry: Duration::from_us(400),
            bucket: Duration::from_us(250),
            warmup: Time::from_us(1500),
            t_fault,
            t_heal,
            t_end: Time::from_ms(16),
            t_drain: Time::from_ms(20),
        }
    }

    pub fn smoke() -> FaultsPlan {
        let (t_fault, t_heal) = (Time::from_us(1500), Time::from_ms(3));
        FaultsPlan {
            rows: chaos_rows(t_fault, t_heal, false),
            n_sessions_per_host: 4,
            req_size: 128,
            resp_size: 512,
            think: Duration::from_us(20),
            min_rto: Duration::from_us(200),
            rto_give_up: 3,
            syn_retry: Duration::from_us(400),
            bucket: Duration::from_us(250),
            warmup: Time::from_us(750),
            t_fault,
            t_heal,
            t_end: Time::from_ms(5),
            t_drain: Time::from_ms(8),
        }
    }

    /// Append the gray-failure rows (`--gray`). The hard rows stay
    /// first and unchanged, so sweeps without the flag keep their exact
    /// artifact bytes.
    pub fn with_gray(mut self) -> FaultsPlan {
        let extra = gray_rows(self.t_fault, self.t_heal);
        self.rows.extend(extra);
        self
    }
}

/// One chaos row's outcome.
pub struct FaultsOutcome {
    pub name: &'static str,
    /// Completed responses per goodput bucket, `[0, t_end)`.
    pub timeline: Vec<u64>,
    /// Pre-fault baseline goodput (responses/s over `[warmup, t_fault)`).
    pub pre_rps: f64,
    /// Worst bucket inside the fault window, as responses/s.
    pub dip_rps: f64,
    /// `dip_rps / pre_rps` (1.0 = no dip).
    pub dip_frac: f64,
    /// Heal → first bucket back at ≥95% of baseline (µs; -1 = never).
    pub recover_us: i64,
    /// Goodput over the last 4 pre-`CloseAll` buckets ≥ 95% of baseline.
    pub recovered: bool,
    pub p50_us: f64,
    pub p99_us: f64,
    // session accounting
    pub issued: u64,
    pub completed: u64,
    pub dead_requests: u64,
    pub aborted_conns: u64,
    pub peer_closed: u64,
    pub reconnects: u64,
    pub connect_failures: u64,
    // control plane + fabric
    pub rto_fired: u64,
    pub ctrl_aborts: u64,
    pub reroutes: u64,
    pub blackholed: u64,
    pub dead_drops: u64,
    pub down_drops: u64,
    pub degrade_drops: u64,
    // gray-failure plane
    /// Frames the links delivered twice (`link.duplicated`).
    pub dup_frames: u64,
    /// Frames lost to the Gilbert–Elliott bursty-loss model
    /// (`link.ge_drops`; also included in `degrade_drops`).
    pub ge_drops: u64,
    /// Out-of-order segments the protocol stages buffered and later
    /// accepted (`proto.ooo`) — the reorder row's signature.
    pub ooo_accepted: u64,
    /// RX frames shed at the sequencer because a capped work/pktbuf
    /// pool had no headroom (`nic.pool_exhausted`).
    pub pool_exhausted: u64,
    /// Passive opens refused with an RST at the SYN admission cap
    /// (`ctrl.admission_refused`).
    pub admission_refused: u64,
    /// Duplicate SYN / SYN-ACK deliveries the control plane absorbed
    /// instead of double-installing (`ctrl.dup_handshake`) — the
    /// dup-storm row's handshake-path signature.
    pub dup_handshake: u64,
    // conservation audit
    pub in_flight_end: u64,
    pub gauges: PoolGauges,
    /// Global packet-buffer balance (takes − returns over the sim-wide
    /// pool and every NIC pool); 0 once everything drained.
    pub buf_delta: i64,
    pub conserved: bool,
    /// Per-switch field sums match the `Stats` named-counter totals
    /// (`switch.ecmp_rerouted` / `switch.blackholed` /
    /// `switch.dead_drops`) — the cross-check the aggregate-only rows
    /// never had.
    pub counters_consistent: bool,
    /// Name-sorted per-switch counter object (`Stats::export_json`):
    /// `faults.swNN.{reroutes,blackholed,dead_drops,down_drops}`, with
    /// each link's down-drops attributed to the switch that feeds it
    /// (host uplinks attribute to the edge switch).
    pub per_switch_json: String,
    pub sim_events: u64,
    /// Conservative-sync counters when the row ran sharded (`None` for
    /// the monolithic path). Never serialized into the body.
    pub sync: Option<SyncStats>,
}

/// The chaos scenario: every even host runs reconnecting sessions toward
/// the server on the next leaf (all traffic crosses the spines, same
/// pattern as the scale sweep), under `row`'s fault schedule. Public so
/// the telemetry experiment can run sketch accuracy under the exact
/// same fault rows.
pub fn chaos_scenario(seed: u64, row: &ChaosRow, plan: &FaultsPlan) -> Scenario {
    let fabric = Fabric::LeafSpine {
        leaves: LEAVES,
        spines: SPINES,
        hosts_per_leaf: HOSTS_PER_LEAF,
    };
    let opts = PairOpts {
        min_rto: plan.min_rto,
        syn_retry: plan.syn_retry,
        rto_give_up: Some(plan.rto_give_up),
        ..Default::default()
    };
    let hosts = (0..fabric.n_hosts())
        .map(|i| {
            let role = if i % 2 == 0 {
                let leaf = i / HOSTS_PER_LEAF;
                let target = ((leaf + 1) % LEAVES) * HOSTS_PER_LEAF + 1;
                Role::Session {
                    cfg: SessionConfig {
                        n_sessions: plan.n_sessions_per_host,
                        req_size: plan.req_size,
                        resp_size: plan.resp_size,
                        think: plan.think,
                        backoff_base: Duration::from_us(200),
                        backoff_cap: Duration::from_ms(2),
                        warmup: plan.warmup,
                        ..Default::default()
                    },
                    target,
                }
            } else {
                Role::FramedServer(FramedServerConfig::default())
            };
            HostSpec {
                stack: Stack::FlexToe,
                role,
            }
        })
        .collect();
    Scenario {
        seed,
        fabric,
        hosts,
        links: Default::default(),
        opts,
        fault_schedule: row.schedule.clone(),
        telemetry: None,
        client_start: Time::from_us(20),
        client_stagger: Duration::from_us(1),
        shards: 1,
    }
}

/// Global packet-buffer balance (takes − returns) over the simulation-
/// wide pool and every FlexTOE NIC segment pool. Buffers migrate between
/// pools — taken from the sending NIC's pool, returned to the receiver's,
/// or to the sim-wide pool when a switch or link drops the frame — so
/// only this global sum is invariant: zero once the fabric has drained.
/// Under sharding each shard contributes only its own activity (ghost
/// nodes never run, so their pools stay untouched), and the invariant
/// holds on the *sum over shards* — PR 6's conservation contract,
/// extended across shard pools.
pub fn buf_balance(sim: &Sim, fab: &BuiltFabric) -> i64 {
    let (mut takes, mut returns) = (sim.frame_pool.takes, sim.frame_pool.returns);
    for h in &fab.hosts {
        if let Some((nic, _)) = &h.ep.flextoe {
            let p = nic.seg_pool.borrow();
            takes += p.takes;
            returns += p.returns;
        }
    }
    takes as i64 - returns as i64
}

/// Commutative per-shard harvest of one chaos row after the drain.
/// The monolithic path runs the same harvest over a fully-owned `Sim`,
/// so sharded and single-shard outcomes are byte-identical merges.
struct FaultsPartial {
    latency: Histogram,
    issued: u64,
    completed: u64,
    dead_requests: u64,
    aborted_conns: u64,
    peer_closed: u64,
    reconnects: u64,
    connect_failures: u64,
    in_flight_end: u64,
    gauges: PoolGauges,
    buf_delta: i64,
    /// reroutes, blackholed, dead_drops, down_drops per switch (full
    /// length; zero rows for switches another shard owns).
    per_sw: Vec<[u64; 4]>,
    degrade_drops: u64,
    dup_frames: u64,
    ge_drops: u64,
    ooo_accepted: u64,
    pool_exhausted: u64,
    admission_refused: u64,
    dup_handshake: u64,
    rto_fired: u64,
    ctrl_aborts: u64,
    named_rerouted: u64,
    named_blackholed: u64,
    named_dead: u64,
    events: u64,
}

fn harvest_faults(sim: &Sim, fab: &BuiltFabric) -> FaultsPartial {
    let mut p = FaultsPartial {
        latency: Histogram::new(),
        issued: 0,
        completed: 0,
        dead_requests: 0,
        aborted_conns: 0,
        peer_closed: 0,
        reconnects: 0,
        connect_failures: 0,
        in_flight_end: 0,
        gauges: PoolGauges::default(),
        buf_delta: buf_balance(sim, fab),
        per_sw: vec![[0; 4]; fab.switches.len()],
        degrade_drops: 0,
        dup_frames: sim.stats.get_named("link.duplicated"),
        ge_drops: sim.stats.get_named("link.ge_drops"),
        ooo_accepted: sim.stats.get_named("proto.ooo"),
        pool_exhausted: sim.stats.get_named("nic.pool_exhausted"),
        admission_refused: sim.stats.get_named("ctrl.admission_refused"),
        dup_handshake: sim.stats.get_named("ctrl.dup_handshake"),
        rto_fired: sim.stats.get_named("ctrl.rto_fired"),
        ctrl_aborts: sim.stats.get_named("ctrl.abort"),
        named_rerouted: sim.stats.get_named("switch.ecmp_rerouted"),
        named_blackholed: sim.stats.get_named("switch.blackholed"),
        named_dead: sim.stats.get_named("switch.dead_drops"),
        events: sim.events_processed(),
    };
    for h in &fab.hosts {
        let Some(n) = h.session() else { continue };
        if !sim.owns(n) {
            continue;
        }
        let c = sim.node_ref::<DynSessionClient>(n);
        p.latency.merge(&c.latency);
        p.issued += c.issued;
        p.completed += c.completed;
        p.dead_requests += c.dead_requests;
        p.aborted_conns += c.aborted_conns;
        p.peer_closed += c.peer_closed;
        p.reconnects += c.reconnects;
        p.connect_failures += c.connect_failures;
        p.in_flight_end += c.in_flight() as u64;
    }
    for h in &fab.hosts {
        if !sim.owns(h.ep.ingress) {
            continue;
        }
        if let Some((nic, _)) = &h.ep.flextoe {
            p.gauges.merge(&nic.pool_gauges(sim));
        }
    }
    // Per-switch fields, each link's down-drops attributed to the
    // switch feeding it (host uplinks to the edge switch). The feeder
    // discipline of the partitioner guarantees a link and its feeding
    // switch share a shard, so each per_sw row is filled by one shard.
    for (i, &s) in fab.switches.iter().enumerate() {
        if !sim.owns(s) {
            continue;
        }
        let sw = sim.node_ref::<Switch>(s);
        p.per_sw[i][0] = sw.rerouted;
        p.per_sw[i][1] = sw.blackholed;
        p.per_sw[i][2] = sw.dead_drops;
    }
    let link_drops = |l: NodeId| -> u64 {
        if sim.owns(l) {
            sim.node_ref::<Link>(l).down_drops
        } else {
            0
        }
    };
    for pair in &fab.fabric_pairs {
        p.per_sw[pair.a][3] += link_drops(pair.l_ab);
        p.per_sw[pair.b][3] += link_drops(pair.l_ba);
    }
    for r in &fab.edge_recs {
        p.per_sw[r.edge][3] += link_drops(r.uplink) + link_drops(r.downlink);
    }
    for &l in fab.edge_links.iter().chain(fab.fabric_links.iter()) {
        if sim.owns(l) {
            p.degrade_drops += sim.node_ref::<Link>(l).dropped;
        }
    }
    p
}

/// Merge shard partials + the goodput timeline into one outcome —
/// identical math to what the pre-sharding monolithic harvest computed
/// inline.
fn assemble_faults(
    row: &ChaosRow,
    plan: &FaultsPlan,
    timeline: Vec<u64>,
    partials: Vec<FaultsPartial>,
    sync: Option<SyncStats>,
) -> FaultsOutcome {
    let bucket_ns = plan.bucket.as_ns();
    // goodput series → recovery metrics (bucket k covers
    // [k·bucket, (k+1)·bucket) in nanoseconds)
    let b = |t: Time| (t.as_ns() / bucket_ns) as usize;
    let bucket_secs = plan.bucket.as_secs_f64();
    let pre: Vec<u64> = timeline[b(plan.warmup)..b(plan.t_fault)].to_vec();
    let pre_avg = pre.iter().sum::<u64>() as f64 / pre.len().max(1) as f64;
    let pre_rps = pre_avg / bucket_secs;
    let window_end = (b(plan.t_heal) + 1).min(timeline.len());
    let dip = timeline[b(plan.t_fault)..window_end]
        .iter()
        .copied()
        .min()
        .unwrap_or(0);
    let dip_rps = dip as f64 / bucket_secs;
    let recover_us = timeline[b(plan.t_heal)..]
        .iter()
        .position(|&c| c as f64 >= 0.95 * pre_avg)
        .map(|i| ((i as u64 + 1) * bucket_ns / 1_000) as i64)
        .unwrap_or(-1);
    let tail = &timeline[timeline.len().saturating_sub(4)..];
    let tail_avg = tail.iter().sum::<u64>() as f64 / tail.len().max(1) as f64;
    let recovered = tail_avg >= 0.95 * pre_avg;

    let n_switches = partials[0].per_sw.len();
    let mut latency = Histogram::new();
    let (mut issued, mut completed, mut dead_requests) = (0u64, 0u64, 0u64);
    let (mut aborted_conns, mut peer_closed) = (0u64, 0u64);
    let (mut reconnects, mut connect_failures) = (0u64, 0u64);
    let mut in_flight_end = 0u64;
    let mut gauges = PoolGauges::default();
    let mut buf_delta = 0i64;
    let mut per_sw: Vec<[u64; 4]> = vec![[0; 4]; n_switches];
    let mut degrade_drops = 0u64;
    let (mut dup_frames, mut ge_drops, mut ooo_accepted) = (0u64, 0u64, 0u64);
    let (mut pool_exhausted, mut admission_refused, mut dup_handshake) = (0u64, 0u64, 0u64);
    let (mut rto_fired, mut ctrl_aborts) = (0u64, 0u64);
    let (mut named_rerouted, mut named_blackholed, mut named_dead) = (0u64, 0u64, 0u64);
    let mut sim_events = 0u64;
    for p in partials {
        latency.merge(&p.latency);
        issued += p.issued;
        completed += p.completed;
        dead_requests += p.dead_requests;
        aborted_conns += p.aborted_conns;
        peer_closed += p.peer_closed;
        reconnects += p.reconnects;
        connect_failures += p.connect_failures;
        in_flight_end += p.in_flight_end;
        gauges.merge(&p.gauges);
        buf_delta += p.buf_delta;
        for (acc, row_counts) in per_sw.iter_mut().zip(&p.per_sw) {
            for (a, v) in acc.iter_mut().zip(row_counts) {
                *a += v;
            }
        }
        degrade_drops += p.degrade_drops;
        dup_frames += p.dup_frames;
        ge_drops += p.ge_drops;
        ooo_accepted += p.ooo_accepted;
        pool_exhausted += p.pool_exhausted;
        admission_refused += p.admission_refused;
        dup_handshake += p.dup_handshake;
        rto_fired += p.rto_fired;
        ctrl_aborts += p.ctrl_aborts;
        named_rerouted += p.named_rerouted;
        named_blackholed += p.named_blackholed;
        named_dead += p.named_dead;
        sim_events += p.events;
    }
    let conserved = issued == completed + dead_requests
        && in_flight_end == 0
        && gauges.work_in_use == 0
        && buf_delta == 0;

    // land the per-switch fields on a fresh named-stats registry so the
    // row carries the name-sorted `Stats::export_json` snapshot
    let mut stats = Stats::new();
    let (mut reroutes, mut blackholed, mut dead_drops, mut down_drops) = (0u64, 0u64, 0u64, 0u64);
    for (i, row_counts) in per_sw.iter().enumerate() {
        let [rr, bh, dd, ld] = *row_counts;
        reroutes += rr;
        blackholed += bh;
        dead_drops += dd;
        down_drops += ld;
        for (field, v) in [
            ("reroutes", rr),
            ("blackholed", bh),
            ("dead_drops", dd),
            ("down_drops", ld),
        ] {
            stats.bump(&format!("faults.sw{i:02}.{field}"), v);
        }
    }
    let per_switch_json = stats.export_json("faults.sw");
    // the cross-check: per-switch field sums must equal what the
    // switches reported through their attached counter handles
    let counters_consistent =
        reroutes == named_rerouted && blackholed == named_blackholed && dead_drops == named_dead;

    FaultsOutcome {
        name: row.name,
        timeline,
        pre_rps,
        dip_rps,
        dip_frac: if pre_avg > 0.0 {
            dip as f64 / pre_avg
        } else {
            0.0
        },
        recover_us,
        recovered,
        p50_us: latency.median() as f64 / 1000.0,
        p99_us: latency.p99() as f64 / 1000.0,
        issued,
        completed,
        dead_requests,
        aborted_conns,
        peer_closed,
        reconnects,
        connect_failures,
        rto_fired,
        ctrl_aborts,
        reroutes,
        blackholed,
        dead_drops,
        down_drops,
        degrade_drops,
        dup_frames,
        ge_drops,
        ooo_accepted,
        pool_exhausted,
        admission_refused,
        dup_handshake,
        in_flight_end,
        gauges,
        buf_delta,
        conserved,
        counters_consistent,
        per_switch_json,
        sim_events,
        sync,
    }
}

/// Run one chaos row across `shards` conservative-PDES shards (`1` =
/// the classic monolithic path): sample goodput per bucket to `t_end`,
/// `CloseAll`, drain to `t_drain`, then audit conservation and harvest
/// counters. Every field of the outcome except `sync` is byte-identical
/// for any shard count.
pub fn run_faults_point(
    seed: u64,
    row: &ChaosRow,
    plan: &FaultsPlan,
    shards: usize,
) -> FaultsOutcome {
    let shards = shards.max(1);
    let bucket_ns = plan.bucket.as_ns();
    let n_buckets = (plan.t_end.as_ns() / bucket_ns) as usize;
    let mut timeline = Vec::with_capacity(n_buckets);
    let mut prev = 0u64;

    if shards == 1 {
        let sc = chaos_scenario(seed, row, plan);
        let mut sim = Sim::new(sc.seed);
        let fab = build_fabric(&mut sim, &sc);
        let sessions: Vec<NodeId> = fab.hosts.iter().filter_map(|h| h.session()).collect();
        for k in 1..=n_buckets {
            sim.run_until(Time::from_ns(k as u64 * bucket_ns));
            let done: u64 = sessions
                .iter()
                .map(|&n| sim.node_ref::<DynSessionClient>(n).completed)
                .sum();
            timeline.push(done - prev);
            prev = done;
        }
        for &n in &sessions {
            sim.schedule(plan.t_end, n, CloseAll);
        }
        sim.run_until(plan.t_drain);
        let partial = harvest_faults(&sim, &fab);
        return assemble_faults(row, plan, timeline, vec![partial], None);
    }

    let row_shard = row.clone();
    let plan_shard = plan.clone();
    let mut sharded = ShardedSim::launch(shards, move |_| {
        let mut sc = chaos_scenario(seed, &row_shard, &plan_shard);
        sc.shards = shards;
        let mut sim = Sim::new(sc.seed);
        let fab = build_fabric(&mut sim, &sc);
        let part = partition_fabric(&sim, &sc, &fab, sc.shards);
        (sim, fab, part)
    });
    for k in 1..=n_buckets {
        sharded.run_until(Time::from_ns(k as u64 * bucket_ns));
        let done: u64 = sharded
            .each(|_, sim, fab| {
                fab.hosts
                    .iter()
                    .filter_map(|h| h.session())
                    .filter(|&n| sim.owns(n))
                    .map(|n| sim.node_ref::<DynSessionClient>(n).completed)
                    .sum::<u64>()
            })
            .iter()
            .sum();
        timeline.push(done - prev);
        prev = done;
    }
    // CloseAll for *every* session on *every* shard: ghost externals
    // are dropped at the mask but still consume an external sequence
    // number, keeping admission order aligned with the monolithic run.
    let t_end = plan.t_end;
    sharded.each(move |_, sim, fab| {
        for n in fab.hosts.iter().filter_map(|h| h.session()) {
            sim.schedule(t_end, n, CloseAll);
        }
    });
    sharded.run_until(plan.t_drain);
    let partials = sharded.each(|_, sim, fab| harvest_faults(sim, fab));
    let sync = sharded.sync_stats();
    assemble_faults(row, plan, timeline, partials, Some(sync))
}

/// Run one chaos row (monolithic — the reference the sharded path is
/// proven byte-identical against).
pub fn run_faults_one(seed: u64, row: &ChaosRow, plan: &FaultsPlan) -> FaultsOutcome {
    run_faults_point(seed, row, plan, 1)
}

/// The whole sweep over `jobs` worker threads with each row split
/// across `shards` PDES shards; each row builds its own `Sim`(s) from
/// the same seed, so any `--jobs`/`--shards` merges byte-identically.
pub fn run_faults_jobs_shards(
    seed: u64,
    plan: &FaultsPlan,
    jobs: usize,
    shards: usize,
) -> Vec<FaultsOutcome> {
    run_indexed(jobs, plan.rows.len(), |i| {
        run_faults_point(seed, &plan.rows[i], plan, shards)
    })
}

/// The whole sweep over `jobs` worker threads.
pub fn run_faults_jobs(seed: u64, plan: &FaultsPlan, jobs: usize) -> Vec<FaultsOutcome> {
    run_faults_jobs_shards(seed, plan, jobs, 1)
}

pub fn run_faults(seed: u64, plan: &FaultsPlan) -> Vec<FaultsOutcome> {
    run_faults_jobs(seed, plan, 1)
}

/// Serialize the sweep deterministically (byte-identical per seed — the
/// acceptance contract on `BENCH_faults.json`).
pub fn faults_json(seed: u64, plan: &FaultsPlan, results: &[FaultsOutcome]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"benchmark\": \"faults\",\n");
    s.push_str(&format!(
        "  \"scenario\": {{\n    \"seed\": {seed},\n    \"fabric\": \"leafspine-{LEAVES}x{SPINES}\",\n    \"hosts\": {},\n    \"sessions_per_client\": {},\n    \"req_size\": {},\n    \"resp_size\": {},\n    \"think_us\": {},\n    \"min_rto_us\": {},\n    \"rto_give_up\": {},\n    \"syn_retry_us\": {},\n    \"bucket_us\": {},\n    \"t_fault_us\": {},\n    \"t_heal_us\": {},\n    \"t_end_us\": {},\n    \"t_drain_us\": {}\n  }},\n",
        LEAVES * HOSTS_PER_LEAF,
        plan.n_sessions_per_host,
        plan.req_size,
        plan.resp_size,
        plan.think.as_us(),
        plan.min_rto.as_us(),
        plan.rto_give_up,
        plan.syn_retry.as_us(),
        plan.bucket.as_us(),
        plan.t_fault.as_us(),
        plan.t_heal.as_us(),
        plan.t_end.as_us(),
        plan.t_drain.as_us(),
    ));
    s.push_str("  \"rows\": [\n");
    for (i, r) in results.iter().enumerate() {
        let g = &r.gauges;
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"pre_rps\": {:.0}, \"dip_rps\": {:.0}, \"dip_frac\": {:.4}, \"recover_us\": {}, \"recovered\": {}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"issued\": {}, \"completed\": {}, \"dead_requests\": {}, \"aborted_conns\": {}, \"peer_closed\": {}, \"reconnects\": {}, \"connect_failures\": {}, \"rto_fired\": {}, \"ctrl_aborts\": {}, \"reroutes\": {}, \"blackholed\": {}, \"dead_drops\": {}, \"down_drops\": {}, \"degrade_drops\": {}, \"dup_frames\": {}, \"ge_drops\": {}, \"ooo_accepted\": {}, \"pool_exhausted\": {}, \"admission_refused\": {}, \"dup_handshake\": {}, \"in_flight_end\": {}, \"pools\": {{\"work_in_use\": {}, \"buf_delta\": {}}}, \"conserved\": {}, \"counters_consistent\": {}, \"per_switch\": {}, \"sim_events\": {}, \"timeline\": [{}]}}{}\n",
            r.name,
            r.pre_rps,
            r.dip_rps,
            r.dip_frac,
            r.recover_us,
            r.recovered,
            r.p50_us,
            r.p99_us,
            r.issued,
            r.completed,
            r.dead_requests,
            r.aborted_conns,
            r.peer_closed,
            r.reconnects,
            r.connect_failures,
            r.rto_fired,
            r.ctrl_aborts,
            r.reroutes,
            r.blackholed,
            r.dead_drops,
            r.down_drops,
            r.degrade_drops,
            r.dup_frames,
            r.ge_drops,
            r.ooo_accepted,
            r.pool_exhausted,
            r.admission_refused,
            r.dup_handshake,
            r.in_flight_end,
            g.work_in_use,
            r.buf_delta,
            r.conserved,
            r.counters_consistent,
            r.per_switch_json,
            r.sim_events,
            r.timeline
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `faults` experiment: run the chaos sweep (fanned out under
/// `--jobs`), print a recovery table, write `BENCH_faults.json`.
pub fn faults(opts: &RunOpts) {
    let mut plan = if opts.smoke {
        FaultsPlan::smoke()
    } else {
        FaultsPlan::full()
    };
    if opts.gray {
        plan = plan.with_gray();
    }
    let seed = opts.seed.unwrap_or(23);
    let shards = opts.shards.max(1);
    let jobs = opts.point_jobs();
    println!(
        "# faults — chaos plane on the {LEAVES}-leaf/{SPINES}-spine fabric, reconnecting sessions{}{} [jobs={jobs} shards={shards}]",
        if opts.smoke { " [smoke]" } else { "" },
        if opts.gray { " [gray]" } else { "" }
    );
    println!(
        "{:<16} {:>9} {:>9} {:>6} {:>9} {:>6} {:>7} {:>7} {:>8} {:>8} {:>9}",
        "row",
        "pre rps",
        "dip rps",
        "dip",
        "recov us",
        "aborts",
        "reconn",
        "reroute",
        "blackh",
        "rto",
        "conserved"
    );
    let wall0 = std::time::Instant::now();
    let results = run_faults_jobs_shards(seed, &plan, jobs, shards);
    let wall = wall0.elapsed().as_secs_f64();
    for r in &results {
        println!(
            "{:<16} {:>9.0} {:>9.0} {:>6.3} {:>9} {:>6} {:>7} {:>7} {:>8} {:>8} {:>9}",
            r.name,
            r.pre_rps,
            r.dip_rps,
            r.dip_frac,
            r.recover_us,
            r.aborted_conns,
            r.reconnects,
            r.reroutes,
            r.blackholed,
            r.rto_fired,
            r.conserved,
        );
    }
    let sim_events: u64 = results.iter().map(|r| r.sim_events).sum();
    println!(
        "sweep wall: {:.2}s, {} events ({:.2}M events/s, jobs={}, shards={})",
        wall,
        sim_events,
        sim_events as f64 / wall / 1e6,
        jobs,
        shards
    );
    let mut extras = vec![
        format!("\"shards\": {shards}"),
        format!("\"threads_total\": {}", jobs * shards),
    ];
    if shards > 1 {
        let windows: u64 = results
            .iter()
            .filter_map(|r| r.sync.as_ref())
            .map(|s| s.windows)
            .sum();
        let envelopes: u64 = results
            .iter()
            .filter_map(|r| r.sync.as_ref())
            .map(|s| s.envelopes.iter().sum::<u64>())
            .sum();
        let blocked: u64 = results
            .iter()
            .filter_map(|r| r.sync.as_ref())
            .map(|s| s.blocked_ns.iter().sum::<u64>())
            .sum();
        extras.push(format!("\"shard_windows\": {windows}"));
        extras.push(format!("\"shard_envelopes\": {envelopes}"));
        extras.push(format!("\"shard_blocked_ns\": {blocked}"));
    }
    let json = with_wall_extras(
        faults_json(seed, &plan, &results),
        wall,
        sim_events,
        jobs,
        &extras,
    );
    let path = opts.out_path("BENCH_faults.json");
    std::fs::write(&path, &json).expect("write BENCH_faults.json");
    println!("wrote {}", path.display());
}
