//! Experiment harness library: topology builders, the per-table/figure
//! runners, and the congested-fabric `cc` scenario. The `flextoe-bench`
//! binary is a thin subcommand dispatcher over this; the integration
//! suite reuses the builders and the `cc` runner directly.

pub mod cc;
pub mod enginebench;
pub mod exp;
pub mod harness;
