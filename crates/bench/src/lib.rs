//! Experiment harness library: the per-table/figure runners, the
//! congested-fabric `cc` scenario, and the connection-scalability `scale`
//! sweep (topology building itself lives in `flextoe-topo`). The
//! `flextoe-bench` binary is a thin subcommand dispatcher over this; the
//! integration suite reuses the runners directly.

pub mod cc;
pub mod cli;
pub mod enginebench;
pub mod exp;
pub mod faults;
pub mod harness;
pub mod par;
pub mod scale;
pub mod telemetry;
