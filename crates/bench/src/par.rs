//! The parallel experiment runner.
//!
//! Sweep points (scale's connection counts, cc's algorithms,
//! bench-pipeline's engine variants) are independent simulations: each
//! worker thread builds its own `Sim` from the same seed and plan, so
//! every point computes exactly what it would have computed serially.
//! Results are collected **by input index**, which makes the merged
//! output deterministic regardless of completion order — `--jobs N`
//! must produce byte-identical BENCH JSON to `--jobs 1` for one seed
//! (CI diffs the two on every push).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads for `--jobs`' default: the machine's
/// available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical cores detected (distinct `(physical id, core id)` pairs in
/// `/proc/cpuinfo`), falling back to [`default_jobs`] when that can't
/// be read. Recorded in the BENCH wall block so speedup rows from
/// SMT-less or 1-CPU containers are self-describing.
pub fn physical_cores() -> usize {
    let Ok(txt) = std::fs::read_to_string("/proc/cpuinfo") else {
        return default_jobs();
    };
    let mut pairs = std::collections::HashSet::new();
    let (mut phys, mut core) = (None::<u64>, None::<u64>);
    for line in txt.lines() {
        let mut kv = line.splitn(2, ':');
        let key = kv.next().unwrap_or("").trim();
        let val = kv.next().map(|v| v.trim().parse::<u64>());
        match key {
            "physical id" => phys = val.and_then(Result::ok),
            "core id" => core = val.and_then(Result::ok),
            "" => {
                // blank line = end of one processor stanza
                if let (Some(p), Some(c)) = (phys, core) {
                    pairs.insert((p, c));
                }
                phys = None;
                core = None;
            }
            _ => {}
        }
    }
    if let (Some(p), Some(c)) = (phys, core) {
        pairs.insert((p, c));
    }
    if pairs.is_empty() {
        default_jobs()
    } else {
        pairs.len()
    }
}

/// Compose `--jobs` (sweep-point workers) with `--shards` (threads per
/// point): the product must not oversubscribe the thread budget, so a
/// sharded sweep gets `budget / shards` point workers (min 1). With one
/// shard this is exactly the historical `--jobs` behavior.
pub fn split_threads(requested_jobs: Option<usize>, shards: usize) -> usize {
    let budget = requested_jobs.unwrap_or_else(default_jobs).max(1);
    if shards > 1 {
        (budget / shards).max(1)
    } else {
        budget
    }
}

/// Run `f(0..n)` on `jobs` worker threads and return the results in
/// input order. `f` must be independent per index (each call builds its
/// own `Sim`); panics in workers propagate to the caller.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 || n <= 1 {
        return (0..n).map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                results.lock().unwrap()[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker completed every claimed index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order_regardless_of_jobs() {
        let serial = run_indexed(1, 17, |i| i * i);
        for jobs in [2, 4, 16, 64] {
            assert_eq!(run_indexed(jobs, 17, |i| i * i), serial, "jobs={jobs}");
        }
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn workers_actually_share_the_index_space() {
        use std::collections::HashSet;
        let ids = run_indexed(4, 32, |_| std::thread::current().id());
        let distinct: HashSet<_> = ids.into_iter().collect();
        // single-core machines may legitimately end up with one worker
        // doing everything; the contract is coverage, not spread
        assert!(!distinct.is_empty());
    }
}
