//! Shared experiment CLI options: `--seed N`, `--out DIR`, `--smoke`,
//! and `--jobs N` are understood uniformly by the experiments that take
//! options (`cc`, `scale`, `bench-pipeline`); the table/figure
//! reproductions are parameterless by design (they *are* the paper's
//! fixed configurations).

use std::path::PathBuf;

#[derive(Clone, Debug, Default)]
pub struct RunOpts {
    /// Simulation seed override (each experiment has its own default).
    pub seed: Option<u64>,
    /// Directory artifacts (`BENCH_*.json`) are written to (default: cwd).
    pub out_dir: Option<PathBuf>,
    /// Shrunken CI configuration.
    pub smoke: bool,
    /// Worker threads for independent sweep points (default: available
    /// cores). The merged results — and the BENCH JSON minus its
    /// wall-clock lines — are byte-identical for any value.
    pub jobs: Option<usize>,
    /// Conservative-PDES shards per scenario (`scale` / `faults`). Any
    /// value produces byte-identical BENCH bodies; >1 partitions each
    /// fabric across that many worker threads.
    pub shards: usize,
    /// Extend the `faults` sweep with the gray-failure rows (bursty
    /// Gilbert–Elliott loss, duplication storm, reorder jitter, limping
    /// spine) on top of the hard-fault rows.
    pub gray: bool,
}

impl RunOpts {
    /// Effective worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(crate::par::default_jobs).max(1)
    }
    /// Sweep-point workers after reserving threads for `--shards`
    /// (shards × point workers stay within the `--jobs` budget).
    pub fn point_jobs(&self) -> usize {
        crate::par::split_threads(self.jobs, self.shards)
    }
    /// Where to write artifact `name` (creates the directory if needed).
    pub fn out_path(&self, name: &str) -> PathBuf {
        match &self.out_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir).expect("create --out directory");
                dir.join(name)
            }
            None => PathBuf::from(name),
        }
    }

    /// Parse flags out of an argument list, returning the remaining
    /// positional arguments (experiment names). Exits with a message on
    /// malformed flags.
    pub fn parse(args: &[String]) -> (RunOpts, Vec<String>) {
        let mut opts = RunOpts {
            shards: 1,
            ..RunOpts::default()
        };
        let mut names = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--smoke" => opts.smoke = true,
                "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => opts.seed = Some(v),
                    None => die("--seed needs an integer value"),
                },
                "--out" => match it.next() {
                    Some(v) => opts.out_dir = Some(PathBuf::from(v)),
                    None => die("--out needs a directory"),
                },
                "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v >= 1 => opts.jobs = Some(v),
                    _ => die("--jobs needs an integer >= 1"),
                },
                "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v >= 1 => opts.shards = v,
                    _ => die("--shards needs an integer >= 1"),
                },
                "--gray" => opts.gray = true,
                flag if flag.starts_with("--") => die(&format!(
                    "unknown flag {flag} (have: --seed N, --out DIR, --smoke, --jobs N, --shards N, --gray)"
                )),
                name => names.push(name.to_string()),
            }
        }
        (opts, names)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("flextoe-bench: {msg}");
    std::process::exit(2);
}
