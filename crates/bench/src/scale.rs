//! The connection-scalability sweep: open-loop traffic over a 4-leaf /
//! 2-spine fabric, connection counts swept from dozens to thousands —
//! the regime where FlexTOE's per-flow state hierarchy (WorkPool,
//! PktBufPool, the CLS/EMEM connection-state caches) comes under
//! pressure and Fig. 13's scalability story plays out.
//!
//! Four client hosts each run a Poisson arrival process with heavy-tailed
//! (bounded-Pareto) response sizes toward a server on a *different* leaf,
//! so every RPC crosses the spine tier and ECMP spreads the flows. The
//! offered load is held constant across the sweep: what changes with the
//! connection count is per-request cache locality, exactly the variable
//! the paper isolates.
//!
//! Records per-stack achieved throughput, p50/p99 RPC latency (generation
//! to completion — open-loop, so queueing is visible), Jain fairness
//! across client hosts, and the pool/cache high-water gauges to
//! `BENCH_scale.json`. Byte-identical across runs of one seed.

use flextoe_apps::{FramedServerConfig, OpenLoopConfig, SizeDist};
use flextoe_core::PoolGauges;
use flextoe_netsim::Switch;
use flextoe_sim::{Duration, Histogram, Sim, Time};
use flextoe_topo::{build_fabric, Fabric, HostSpec, PairOpts, Role, Scenario, Stack};

use crate::cli::RunOpts;
use crate::harness::{jain_index, DynOpenLoopClient};
use crate::par::run_indexed;

/// The fabric every sweep point runs on.
pub const LEAVES: usize = 4;
pub const SPINES: usize = 2;
pub const HOSTS_PER_LEAF: usize = 2;

/// Sweep configuration (the CI smoke configuration shrinks everything).
#[derive(Clone, Debug)]
pub struct ScalePlan {
    /// (stack, total client connections) sweep points.
    pub points: Vec<(Stack, u32)>,
    pub duration: Time,
    pub warmup: Time,
    /// Poisson arrival rate per client host (requests/second).
    pub rate_rps_per_host: f64,
    /// Request size (including the 16-byte frame header).
    pub req_size: SizeDist,
    /// Response size — the heavy-tailed half of the generator pair.
    pub resp_size: SizeDist,
}

impl ScalePlan {
    pub fn full() -> ScalePlan {
        let flex = [64u32, 512, 2048, 4096, 8192];
        let mut points: Vec<(Stack, u32)> = flex.iter().map(|&c| (Stack::FlexToe, c)).collect();
        // one baseline rides along at the low end for per-stack contrast
        points.push((Stack::Tas, 64));
        points.push((Stack::Tas, 512));
        ScalePlan {
            points,
            // long enough (at this rate) that every connection is
            // re-touched several times after its CAM/CLS residency has
            // been evicted — the regime where the EMEM-SRAM tier (and
            // Fig. 13's cliff) actually engages. The old 12 ms / 120 krps
            // window gave most connections a single cold burst, so
            // conn_cache_sram_hits sat at zero across the whole sweep.
            duration: Time::from_ms(40),
            warmup: Time::from_ms(4),
            rate_rps_per_host: 240_000.0,
            req_size: SizeDist::Fixed(64),
            resp_size: SizeDist::Pareto {
                alpha: 1.15,
                min: 64,
                max: 16_384,
            },
        }
    }

    pub fn smoke() -> ScalePlan {
        ScalePlan {
            points: vec![(Stack::FlexToe, 16), (Stack::FlexToe, 64)],
            duration: Time::from_ms(4),
            warmup: Time::from_ms(2),
            rate_rps_per_host: 60_000.0,
            req_size: SizeDist::Fixed(64),
            resp_size: SizeDist::Pareto {
                alpha: 1.15,
                min: 64,
                max: 4_096,
            },
        }
    }
}

/// One sweep point's outcome.
pub struct ScaleOutcome {
    pub stack: &'static str,
    pub conns: u32,
    pub offered_rps: f64,
    pub achieved_rps: f64,
    pub goodput_gbps: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    /// Jain fairness over per-client-host measured response bytes.
    pub jain_hosts: f64,
    /// Requests still unanswered at the deadline (open-loop backlog).
    pub backlog: u64,
    /// Aggregated pool/cache gauges over all FlexTOE NICs (zero for
    /// baseline stacks, which have no NIC pools).
    pub gauges: PoolGauges,
    /// Frames each spine forwarded (ECMP spread proof).
    pub spine_frames: Vec<u64>,
    /// Simulation events this point processed (deterministic per seed —
    /// the numerator of the sweep's wall-clock events/sec).
    pub sim_events: u64,
}

/// The scenario for one sweep point.
fn scenario(seed: u64, stack: Stack, conns: u32, plan: &ScalePlan) -> Scenario {
    let fabric = Fabric::LeafSpine {
        leaves: LEAVES,
        spines: SPINES,
        hosts_per_leaf: HOSTS_PER_LEAF,
    };
    let n = fabric.n_hosts();
    let client_hosts = n / 2;
    let conns_per_host = (conns / client_hosts as u32).max(1);
    // thousands of sockets: shrink the per-socket shared buffers so the
    // footprint stays bounded (64 KB × 16 K sockets would be gigabytes)
    let mut opts = PairOpts::default();
    opts.cfg.rx_buf_size = 8 * 1024;
    opts.cfg.tx_buf_size = 8 * 1024;
    let hosts = (0..n)
        .map(|i| {
            // even hosts are clients, odd hosts are servers; a client on
            // leaf L targets the server on leaf (L+1) mod LEAVES, so all
            // traffic crosses the spines
            let role = if i % 2 == 0 {
                let leaf = i / HOSTS_PER_LEAF;
                let target_leaf = (leaf + 1) % LEAVES;
                let target = target_leaf * HOSTS_PER_LEAF + 1;
                Role::OpenLoop {
                    cfg: OpenLoopConfig {
                        n_conns: conns_per_host,
                        rate_rps: plan.rate_rps_per_host,
                        req_size: plan.req_size,
                        resp_size: plan.resp_size,
                        warmup: plan.warmup,
                        connect_spacing: Duration::from_ns(400),
                        ..Default::default()
                    },
                    target,
                }
            } else {
                Role::FramedServer(FramedServerConfig::default())
            };
            HostSpec { stack, role }
        })
        .collect();
    Scenario {
        seed,
        fabric,
        hosts,
        links: Default::default(),
        opts,
        fault_schedule: Vec::new(),
        telemetry: None,
        client_start: Time::from_us(20),
        client_stagger: Duration::from_us(1),
    }
}

/// Run one sweep point.
pub fn run_scale_one(seed: u64, stack: Stack, conns: u32, plan: &ScalePlan) -> ScaleOutcome {
    let sc = scenario(seed, stack, conns, plan);
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    sim.run_until(plan.duration);

    let clients: Vec<&DynOpenLoopClient> = fab
        .hosts
        .iter()
        .filter_map(|h| h.client().map(|a| sim.node_ref::<DynOpenLoopClient>(a)))
        .collect();
    let n_client_hosts = clients.len();
    let mut latency = Histogram::new();
    let mut measured = 0u64;
    let mut resp_bytes = 0u64;
    let mut backlog = 0u64;
    let mut per_host_bytes = Vec::new();
    let mut first = Time::from_ms(1 << 20);
    let mut last = Time::ZERO;
    for c in clients {
        latency.merge(&c.latency);
        measured += c.measured;
        resp_bytes += c.measured_resp_bytes();
        backlog += c.in_flight() as u64;
        per_host_bytes.push(c.measured_resp_bytes());
        if c.measured > 0 {
            first = first.min(c.first_measured_at);
            last = last.max(c.last_measured_at);
        }
    }
    let span = last.saturating_since(first);
    let achieved_rps = if measured >= 2 && span > Duration::ZERO {
        (measured - 1) as f64 / span.as_secs_f64()
    } else {
        0.0
    };
    let goodput_gbps = if span > Duration::ZERO {
        resp_bytes as f64 * 8.0 / span.as_secs_f64() / 1e9
    } else {
        0.0
    };

    // pool/cache pressure, aggregated over every FlexTOE NIC
    let mut gauges = PoolGauges::default();
    for h in &fab.hosts {
        if let Some((nic, _)) = &h.ep.flextoe {
            gauges.merge(&nic.pool_gauges(&sim));
        }
    }

    let spine_frames: Vec<u64> = (LEAVES..LEAVES + SPINES)
        .map(|s| {
            let sw = sim.node_ref::<Switch>(fab.switches[s]);
            (0..LEAVES).map(|p| sw.port_stats(p).0).sum()
        })
        .collect();

    ScaleOutcome {
        stack: stack.name(),
        sim_events: sim.events_processed(),
        conns,
        offered_rps: plan.rate_rps_per_host * n_client_hosts as f64,
        achieved_rps,
        goodput_gbps,
        p50_us: latency.median() as f64 / 1000.0,
        p99_us: latency.p99() as f64 / 1000.0,
        jain_hosts: jain_index(&per_host_bytes),
        backlog,
        gauges,
        spine_frames,
    }
}

/// The whole sweep, fanned out over `jobs` worker threads. Each point
/// builds its own `Sim` from the same seed, so the merged (input-order)
/// results are byte-identical to a serial run for any `jobs`.
pub fn run_scale_jobs(seed: u64, plan: &ScalePlan, jobs: usize) -> Vec<ScaleOutcome> {
    run_indexed(jobs, plan.points.len(), |i| {
        let (stack, conns) = plan.points[i];
        run_scale_one(seed, stack, conns, plan)
    })
}

/// The whole sweep, serially (the reference path `--jobs N` is proven
/// byte-identical against).
pub fn run_scale(seed: u64, plan: &ScalePlan) -> Vec<ScaleOutcome> {
    run_scale_jobs(seed, plan, 1)
}

fn dist_label(d: SizeDist) -> String {
    match d {
        SizeDist::Fixed(v) => format!("fixed({v})"),
        SizeDist::Uniform { lo, hi } => format!("uniform({lo},{hi})"),
        SizeDist::Pareto { alpha, min, max } => format!("pareto({alpha},{min},{max})"),
    }
}

/// Serialize a sweep deterministically (two runs of one seed must be
/// byte-identical — asserted by the integration suite and CI).
pub fn scale_json(seed: u64, plan: &ScalePlan, results: &[ScaleOutcome]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"benchmark\": \"scale\",\n");
    s.push_str(&format!(
        "  \"scenario\": {{\n    \"seed\": {seed},\n    \"fabric\": \"leafspine-{LEAVES}x{SPINES}\",\n    \"hosts\": {},\n    \"client_hosts\": {},\n    \"rate_rps_per_host\": {},\n    \"req_size\": \"{}\",\n    \"resp_size\": \"{}\",\n    \"duration_ms\": {},\n    \"warmup_ms\": {}\n  }},\n",
        LEAVES * HOSTS_PER_LEAF,
        LEAVES * HOSTS_PER_LEAF / 2,
        plan.rate_rps_per_host,
        dist_label(plan.req_size),
        dist_label(plan.resp_size),
        plan.duration.as_us() / 1_000,
        plan.warmup.as_us() / 1_000,
    ));
    s.push_str("  \"sweep\": [\n");
    for (i, r) in results.iter().enumerate() {
        let g = &r.gauges;
        s.push_str(&format!(
            "    {{\"stack\": \"{}\", \"conns\": {}, \"offered_rps\": {:.0}, \"achieved_rps\": {:.0}, \"goodput_gbps\": {:.3}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"jain_hosts\": {:.4}, \"backlog\": {}, \"sim_events\": {}, \"spine_frames\": [{}], \"pools\": {{\"work_hwm\": {}, \"work_in_use\": {}, \"pktbuf_hwm\": {}, \"pktbuf_in_flight\": {}, \"conn_cache_hwm\": {}, \"conn_cache_dram\": {}, \"conn_cache_sram_hits\": {}}}}}{}\n",
            r.stack,
            r.conns,
            r.offered_rps,
            r.achieved_rps,
            r.goodput_gbps,
            r.p50_us,
            r.p99_us,
            r.jain_hosts,
            r.backlog,
            r.sim_events,
            r.spine_frames
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            g.work_high_water,
            g.work_in_use,
            g.seg_high_water,
            g.seg_in_flight,
            g.cache_high_water,
            g.cache_dram_accesses,
            g.cache_sram_hits,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `scale` experiment: sweep (in parallel under `--jobs`), print,
/// write `BENCH_scale.json`.
pub fn scale(opts: &RunOpts) {
    let plan = if opts.smoke {
        ScalePlan::smoke()
    } else {
        ScalePlan::full()
    };
    let seed = opts.seed.unwrap_or(17);
    let jobs = opts.jobs();
    println!(
        "# scale — {LEAVES}-leaf/{SPINES}-spine fabric, open-loop Poisson + heavy-tailed RPCs{} [jobs={jobs}]",
        if opts.smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>9} {:>9} {:>9} {:>7} {:>9} {:>10} {:>10}",
        "stack",
        "conns",
        "offered",
        "achieved",
        "Gbps",
        "p50 us",
        "p99 us",
        "JFI",
        "work hwm",
        "cache hwm",
        "cache dram"
    );
    let wall0 = std::time::Instant::now();
    let results = run_scale_jobs(seed, &plan, jobs);
    let wall = wall0.elapsed().as_secs_f64();
    for r in &results {
        println!(
            "{:<14} {:>6} {:>10.0} {:>10.0} {:>9.3} {:>9.2} {:>9.2} {:>7.3} {:>9} {:>10} {:>10}",
            r.stack,
            r.conns,
            r.offered_rps,
            r.achieved_rps,
            r.goodput_gbps,
            r.p50_us,
            r.p99_us,
            r.jain_hosts,
            r.gauges.work_high_water,
            r.gauges.cache_high_water,
            r.gauges.cache_dram_accesses,
        );
    }
    let sim_events: u64 = results.iter().map(|r| r.sim_events).sum();
    println!(
        "sweep wall: {:.2}s, {} events ({:.2}M events/s, jobs={})",
        wall,
        sim_events,
        sim_events as f64 / wall / 1e6,
        jobs
    );
    let json = with_wall_block(scale_json(seed, &plan, &results), wall, sim_events, jobs);
    let path = opts.out_path("BENCH_scale.json");
    std::fs::write(&path, &json).expect("write BENCH_scale.json");
    println!("wrote {}", path.display());
}

/// Append the wall-clock block to a deterministic BENCH JSON body. The
/// three keys live on their own lines at the very end so determinism
/// checks can strip them (`grep -vE '"(wall_secs|wall_events_per_sec|jobs)"'`)
/// and compare the rest byte-for-byte.
pub fn with_wall_block(json: String, wall_secs: f64, sim_events: u64, jobs: usize) -> String {
    let body = json
        .strip_suffix("}\n")
        .expect("BENCH json ends with its closing brace");
    format!(
        "{body}  ,\"sim_events\": {sim_events},\n  \"wall_secs\": {wall_secs:.3},\n  \"wall_events_per_sec\": {:.0},\n  \"jobs\": {jobs}\n}}\n",
        sim_events as f64 / wall_secs.max(1e-9),
    )
}
