//! The connection-scalability sweep: open-loop traffic over a 4-leaf /
//! 2-spine fabric, connection counts swept from dozens to thousands —
//! the regime where FlexTOE's per-flow state hierarchy (WorkPool,
//! PktBufPool, the CLS/EMEM connection-state caches) comes under
//! pressure and Fig. 13's scalability story plays out.
//!
//! Four client hosts each run a Poisson arrival process with heavy-tailed
//! (bounded-Pareto) response sizes toward a server on a *different* leaf,
//! so every RPC crosses the spine tier and ECMP spreads the flows. The
//! offered load is held constant across the sweep: what changes with the
//! connection count is per-request cache locality, exactly the variable
//! the paper isolates.
//!
//! Records per-stack achieved throughput, p50/p99 RPC latency (generation
//! to completion — open-loop, so queueing is visible), Jain fairness
//! across client hosts, and the pool/cache high-water gauges to
//! `BENCH_scale.json`. Byte-identical across runs of one seed.

use flextoe_apps::{FramedServerConfig, OpenLoopConfig, SizeDist};
use flextoe_core::PoolGauges;
use flextoe_netsim::Switch;
use flextoe_shard::{ShardedSim, SyncStats};
use flextoe_sim::{Duration, Histogram, Sim, Time};
use flextoe_topo::{
    build_fabric, partition_fabric, BuiltFabric, Fabric, HostSpec, PairOpts, Role, Scenario, Stack,
};

use crate::cli::RunOpts;
use crate::harness::{jain_index, DynOpenLoopClient};
use crate::par::run_indexed;

/// The fabric every sweep point runs on.
pub const LEAVES: usize = 4;
pub const SPINES: usize = 2;
pub const HOSTS_PER_LEAF: usize = 2;

/// Sweep configuration (the CI smoke configuration shrinks everything).
#[derive(Clone, Debug)]
pub struct ScalePlan {
    /// (stack, total client connections) sweep points.
    pub points: Vec<(Stack, u32)>,
    pub duration: Time,
    pub warmup: Time,
    /// Poisson arrival rate per client host (requests/second).
    pub rate_rps_per_host: f64,
    /// Request size (including the 16-byte frame header).
    pub req_size: SizeDist,
    /// Response size — the heavy-tailed half of the generator pair.
    pub resp_size: SizeDist,
}

impl ScalePlan {
    pub fn full() -> ScalePlan {
        let flex = [64u32, 512, 2048, 4096, 8192];
        let mut points: Vec<(Stack, u32)> = flex.iter().map(|&c| (Stack::FlexToe, c)).collect();
        // one baseline rides along at the low end for per-stack contrast
        points.push((Stack::Tas, 64));
        points.push((Stack::Tas, 512));
        ScalePlan {
            points,
            // long enough (at this rate) that every connection is
            // re-touched several times after its CAM/CLS residency has
            // been evicted — the regime where the EMEM-SRAM tier (and
            // Fig. 13's cliff) actually engages. The old 12 ms / 120 krps
            // window gave most connections a single cold burst, so
            // conn_cache_sram_hits sat at zero across the whole sweep.
            duration: Time::from_ms(40),
            warmup: Time::from_ms(4),
            rate_rps_per_host: 240_000.0,
            req_size: SizeDist::Fixed(64),
            resp_size: SizeDist::Pareto {
                alpha: 1.15,
                min: 64,
                max: 16_384,
            },
        }
    }

    pub fn smoke() -> ScalePlan {
        ScalePlan {
            points: vec![(Stack::FlexToe, 16), (Stack::FlexToe, 64)],
            duration: Time::from_ms(4),
            warmup: Time::from_ms(2),
            rate_rps_per_host: 60_000.0,
            req_size: SizeDist::Fixed(64),
            resp_size: SizeDist::Pareto {
                alpha: 1.15,
                min: 64,
                max: 4_096,
            },
        }
    }
}

/// One sweep point's outcome.
pub struct ScaleOutcome {
    pub stack: &'static str,
    pub conns: u32,
    pub offered_rps: f64,
    pub achieved_rps: f64,
    pub goodput_gbps: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    /// Jain fairness over per-client-host measured response bytes.
    pub jain_hosts: f64,
    /// Requests still unanswered at the deadline (open-loop backlog).
    pub backlog: u64,
    /// Aggregated pool/cache gauges over all FlexTOE NICs (zero for
    /// baseline stacks, which have no NIC pools).
    pub gauges: PoolGauges,
    /// Frames each spine forwarded (ECMP spread proof).
    pub spine_frames: Vec<u64>,
    /// Simulation events this point processed (deterministic per seed —
    /// the numerator of the sweep's wall-clock events/sec). Identical
    /// under any `--shards` value.
    pub sim_events: u64,
    /// Conservative-sync counters when the point ran sharded (`None`
    /// for the monolithic path). `windows`/`envelopes`/`events` are
    /// deterministic; `blocked_ns` is wall clock.
    pub sync: Option<SyncStats>,
}

/// The scenario for one sweep point.
fn scenario(seed: u64, stack: Stack, conns: u32, plan: &ScalePlan, shards: usize) -> Scenario {
    let fabric = Fabric::LeafSpine {
        leaves: LEAVES,
        spines: SPINES,
        hosts_per_leaf: HOSTS_PER_LEAF,
    };
    let n = fabric.n_hosts();
    let client_hosts = n / 2;
    let conns_per_host = (conns / client_hosts as u32).max(1);
    // thousands of sockets: shrink the per-socket shared buffers so the
    // footprint stays bounded (64 KB × 16 K sockets would be gigabytes)
    let mut opts = PairOpts::default();
    opts.cfg.rx_buf_size = 8 * 1024;
    opts.cfg.tx_buf_size = 8 * 1024;
    let hosts = (0..n)
        .map(|i| {
            // even hosts are clients, odd hosts are servers; a client on
            // leaf L targets the server on leaf (L+1) mod LEAVES, so all
            // traffic crosses the spines
            let role = if i % 2 == 0 {
                let leaf = i / HOSTS_PER_LEAF;
                let target_leaf = (leaf + 1) % LEAVES;
                let target = target_leaf * HOSTS_PER_LEAF + 1;
                Role::OpenLoop {
                    cfg: OpenLoopConfig {
                        n_conns: conns_per_host,
                        rate_rps: plan.rate_rps_per_host,
                        req_size: plan.req_size,
                        resp_size: plan.resp_size,
                        warmup: plan.warmup,
                        connect_spacing: Duration::from_ns(400),
                        ..Default::default()
                    },
                    target,
                }
            } else {
                Role::FramedServer(FramedServerConfig::default())
            };
            HostSpec { stack, role }
        })
        .collect();
    Scenario {
        seed,
        fabric,
        hosts,
        links: Default::default(),
        opts,
        fault_schedule: Vec::new(),
        telemetry: None,
        client_start: Time::from_us(20),
        client_stagger: Duration::from_us(1),
        shards,
    }
}

/// Per-shard harvest of one run. Every field is either a commutative
/// merge (histograms, sums, gauges) or tagged with its global index
/// (per-host bytes, per-switch frames) so [`assemble_scale`] can
/// reassemble the exact monolithic ordering. The monolithic path runs
/// the *same* harvest over a fully-owned `Sim`, so sharded and
/// single-shard outcomes are byte-identical by construction.
struct ScalePartial {
    latency: Histogram,
    measured: u64,
    resp_bytes: u64,
    backlog: u64,
    host_bytes: Vec<(usize, u64)>,
    first: Time,
    last: Time,
    gauges: PoolGauges,
    sw_frames: Vec<(usize, u64)>,
    events: u64,
}

/// Harvest the client / NIC-gauge / switch-frame state this `Sim` owns.
/// `sw_range`/`sw_ports` select which switches count as the spreading
/// tier (spines for leaf-spine, cores for the fat-tree headline).
fn harvest_scale(
    sim: &Sim,
    fab: &BuiltFabric,
    sw_range: std::ops::Range<usize>,
    sw_ports: usize,
) -> ScalePartial {
    let mut p = ScalePartial {
        latency: Histogram::new(),
        measured: 0,
        resp_bytes: 0,
        backlog: 0,
        host_bytes: Vec::new(),
        first: Time::from_ms(1 << 20),
        last: Time::ZERO,
        gauges: PoolGauges::default(),
        sw_frames: Vec::new(),
        events: sim.events_processed(),
    };
    for (i, h) in fab.hosts.iter().enumerate() {
        let Some(app) = h.client() else { continue };
        if !sim.owns(app) {
            continue;
        }
        let c = sim.node_ref::<DynOpenLoopClient>(app);
        p.latency.merge(&c.latency);
        p.measured += c.measured;
        p.resp_bytes += c.measured_resp_bytes();
        p.backlog += c.in_flight() as u64;
        p.host_bytes.push((i, c.measured_resp_bytes()));
        if c.measured > 0 {
            p.first = p.first.min(c.first_measured_at);
            p.last = p.last.max(c.last_measured_at);
        }
    }
    for h in &fab.hosts {
        if !sim.owns(h.ep.ingress) {
            continue;
        }
        if let Some((nic, _)) = &h.ep.flextoe {
            p.gauges.merge(&nic.pool_gauges(sim));
        }
    }
    for s in sw_range {
        if !sim.owns(fab.switches[s]) {
            continue;
        }
        let sw = sim.node_ref::<Switch>(fab.switches[s]);
        p.sw_frames
            .push((s, (0..sw_ports).map(|q| sw.port_stats(q).0).sum()));
    }
    p
}

/// Merge shard partials into one outcome — identical math to what the
/// pre-sharding monolithic harvest computed inline.
fn assemble_scale(
    stack: Stack,
    conns: u32,
    plan: &ScalePlan,
    partials: Vec<ScalePartial>,
    sync: Option<SyncStats>,
) -> ScaleOutcome {
    let mut latency = Histogram::new();
    let mut measured = 0u64;
    let mut resp_bytes = 0u64;
    let mut backlog = 0u64;
    let mut host_bytes = Vec::new();
    let mut sw_frames = Vec::new();
    let mut first = Time::from_ms(1 << 20);
    let mut last = Time::ZERO;
    let mut gauges = PoolGauges::default();
    let mut sim_events = 0u64;
    for p in partials {
        latency.merge(&p.latency);
        measured += p.measured;
        resp_bytes += p.resp_bytes;
        backlog += p.backlog;
        host_bytes.extend(p.host_bytes);
        sw_frames.extend(p.sw_frames);
        first = first.min(p.first);
        last = last.max(p.last);
        gauges.merge(&p.gauges);
        sim_events += p.events;
    }
    host_bytes.sort_unstable_by_key(|&(i, _)| i);
    sw_frames.sort_unstable_by_key(|&(i, _)| i);
    let per_host_bytes: Vec<u64> = host_bytes.iter().map(|&(_, v)| v).collect();

    let span = last.saturating_since(first);
    let achieved_rps = if measured >= 2 && span > Duration::ZERO {
        (measured - 1) as f64 / span.as_secs_f64()
    } else {
        0.0
    };
    let goodput_gbps = if span > Duration::ZERO {
        resp_bytes as f64 * 8.0 / span.as_secs_f64() / 1e9
    } else {
        0.0
    };
    ScaleOutcome {
        stack: stack.name(),
        sim_events,
        conns,
        offered_rps: plan.rate_rps_per_host * per_host_bytes.len() as f64,
        achieved_rps,
        goodput_gbps,
        p50_us: latency.median() as f64 / 1000.0,
        p99_us: latency.p99() as f64 / 1000.0,
        jain_hosts: jain_index(&per_host_bytes),
        backlog,
        gauges,
        spine_frames: sw_frames.into_iter().map(|(_, v)| v).collect(),
        sync,
    }
}

/// Run one sweep point across `shards` conservative-PDES shards
/// (`1` = the classic monolithic path). Every field of the returned
/// outcome except `sync` is byte-identical for any shard count.
pub fn run_scale_point(
    seed: u64,
    stack: Stack,
    conns: u32,
    plan: &ScalePlan,
    shards: usize,
) -> ScaleOutcome {
    let shards = shards.max(1);
    let spines = LEAVES..LEAVES + SPINES;
    if shards == 1 {
        let sc = scenario(seed, stack, conns, plan, 1);
        let mut sim = Sim::new(sc.seed);
        let fab = build_fabric(&mut sim, &sc);
        sim.run_until(plan.duration);
        let partial = harvest_scale(&sim, &fab, spines, LEAVES);
        return assemble_scale(stack, conns, plan, vec![partial], None);
    }
    let plan_shard = plan.clone();
    let mut sharded = ShardedSim::launch(shards, move |_| {
        let sc = scenario(seed, stack, conns, &plan_shard, shards);
        let mut sim = Sim::new(sc.seed);
        let fab = build_fabric(&mut sim, &sc);
        let part = partition_fabric(&sim, &sc, &fab, sc.shards);
        (sim, fab, part)
    });
    sharded.run_until(plan.duration);
    let partials = sharded.each(move |_, sim, fab| harvest_scale(sim, fab, spines.clone(), LEAVES));
    assemble_scale(stack, conns, plan, partials, Some(sharded.sync_stats()))
}

/// Run one sweep point (monolithic — the reference the sharded path is
/// proven byte-identical against).
pub fn run_scale_one(seed: u64, stack: Stack, conns: u32, plan: &ScalePlan) -> ScaleOutcome {
    run_scale_point(seed, stack, conns, plan, 1)
}

/// The whole sweep, fanned out over `jobs` worker threads with each
/// point split across `shards` PDES shards. Each point builds its own
/// `Sim`(s) from the same seed, so the merged (input-order) results are
/// byte-identical to a serial monolithic run for any `jobs`/`shards`.
pub fn run_scale_jobs_shards(
    seed: u64,
    plan: &ScalePlan,
    jobs: usize,
    shards: usize,
) -> Vec<ScaleOutcome> {
    run_indexed(jobs, plan.points.len(), |i| {
        let (stack, conns) = plan.points[i];
        run_scale_point(seed, stack, conns, plan, shards)
    })
}

/// The whole sweep, fanned out over `jobs` worker threads.
pub fn run_scale_jobs(seed: u64, plan: &ScalePlan, jobs: usize) -> Vec<ScaleOutcome> {
    run_scale_jobs_shards(seed, plan, jobs, 1)
}

/// The whole sweep, serially (the reference path `--jobs N` is proven
/// byte-identical against).
pub fn run_scale(seed: u64, plan: &ScalePlan) -> Vec<ScaleOutcome> {
    run_scale_jobs(seed, plan, 1)
}

// ---------------------------------------------------------------------------
// Fat-tree headline: the sharding result the PR exists for. One k=8
// fat-tree (128 hosts, 64 clients × 1564 conns = 100,096 connections)
// run at shards ∈ {1, 2, 4, 8}; the deterministic metrics row must
// serialize byte-identically at every shard count (asserted here, every
// full run), and the per-shard sync counters are recorded alongside it.
// Wall-clock speedup is honest: on a 1-CPU container the sharded runs
// measure sync *overhead*, not speedup — `physical_cores` in the wall
// block says which regime a given artifact was produced in.
// ---------------------------------------------------------------------------

/// k=8 fat tree: 128 hosts, 16 per pod, 16 core switches.
pub const FT_K: usize = 8;
/// Connections per client host; 64 clients × 1564 = 100,096 total.
pub const FT_CONNS_PER_CLIENT: u32 = 1564;

fn fattree_plan() -> ScalePlan {
    ScalePlan {
        points: Vec::new(),
        // short window: the run is handshake-dominated by design (the
        // claim under test is *connection scale*, ~100k three-way
        // handshakes plus steady-state traffic, not throughput)
        duration: Time::from_ms(3),
        warmup: Time::from_ms(2),
        rate_rps_per_host: 40_000.0,
        req_size: SizeDist::Fixed(64),
        resp_size: SizeDist::Fixed(512),
    }
}

/// The headline scenario: every even host opens 1564 connections to the
/// odd host at the same offset in the *next* pod, so all traffic
/// crosses the core tier (and, at 8 shards = one pod per shard, every
/// RPC crosses shard boundaries).
fn fattree_scenario(seed: u64, shards: usize) -> Scenario {
    let fabric = Fabric::FatTree { k: FT_K };
    let n = fabric.n_hosts();
    let per_pod = FT_K * FT_K / 4;
    let plan = fattree_plan();
    let mut opts = PairOpts::default();
    // 100k sockets × 2 sides: shrink per-socket buffers to keep the
    // footprint in the low gigabytes
    opts.cfg.rx_buf_size = 4 * 1024;
    opts.cfg.tx_buf_size = 4 * 1024;
    let hosts = (0..n)
        .map(|i| {
            let role = if i % 2 == 0 {
                let pod = i / per_pod;
                let target = ((pod + 1) % FT_K) * per_pod + (i % per_pod) + 1;
                Role::OpenLoop {
                    cfg: OpenLoopConfig {
                        n_conns: FT_CONNS_PER_CLIENT,
                        rate_rps: plan.rate_rps_per_host,
                        req_size: plan.req_size,
                        resp_size: plan.resp_size,
                        warmup: plan.warmup,
                        connect_spacing: Duration::from_ns(400),
                        ..Default::default()
                    },
                    target,
                }
            } else {
                Role::FramedServer(FramedServerConfig::default())
            };
            HostSpec {
                stack: Stack::FlexToe,
                role,
            }
        })
        .collect();
    Scenario {
        seed,
        fabric,
        hosts,
        links: Default::default(),
        opts,
        fault_schedule: Vec::new(),
        telemetry: None,
        client_start: Time::from_us(20),
        client_stagger: Duration::from_us(1),
        shards,
    }
}

/// One fat-tree run at a given shard count.
pub struct FatTreeRun {
    pub shards: usize,
    /// Barrier windows the conservative synchronizer executed
    /// (deterministic; 0 for the monolithic run).
    pub windows: u64,
    /// Cross-shard envelopes shipped (deterministic; 0 monolithic).
    pub envelopes: u64,
    /// Events each shard processed (deterministic; sums to the
    /// monolithic event count).
    pub events_per_shard: Vec<u64>,
    /// Wall nanoseconds shards spent blocked at barriers (wall-only).
    pub blocked_ns: u64,
    /// Wall seconds for the whole run (wall-only).
    pub wall_secs: f64,
    /// The serialized deterministic metrics row — asserted identical
    /// across all shard counts.
    pub row_json: String,
}

fn fattree_row_json(o: &ScaleOutcome) -> String {
    let g = &o.gauges;
    format!(
        "{{\"fabric\": \"fattree-k{FT_K}\", \"hosts\": {}, \"conns\": {}, \"offered_rps\": {:.0}, \"achieved_rps\": {:.0}, \"goodput_gbps\": {:.3}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"jain_hosts\": {:.4}, \"backlog\": {}, \"sim_events\": {}, \"core_frames\": [{}], \"pools\": {{\"work_hwm\": {}, \"work_in_use\": {}, \"pktbuf_hwm\": {}, \"pktbuf_in_flight\": {}, \"conn_cache_hwm\": {}, \"conn_cache_dram\": {}, \"conn_cache_sram_hits\": {}}}}}",
        FT_K * FT_K * FT_K / 4,
        o.conns,
        o.offered_rps,
        o.achieved_rps,
        o.goodput_gbps,
        o.p50_us,
        o.p99_us,
        o.jain_hosts,
        o.backlog,
        o.sim_events,
        o.spine_frames
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        g.work_high_water,
        g.work_in_use,
        g.seg_high_water,
        g.seg_in_flight,
        g.cache_high_water,
        g.cache_dram_accesses,
        g.cache_sram_hits,
    )
}

/// Run the headline scenario once at `shards`.
pub fn run_fattree_point(seed: u64, shards: usize) -> FatTreeRun {
    let plan = fattree_plan();
    let n_edge = FT_K * FT_K / 2;
    let cores = 2 * n_edge..2 * n_edge + FT_K * FT_K / 4;
    let conns = FT_CONNS_PER_CLIENT * (FT_K * FT_K * FT_K / 8) as u32;
    let wall0 = std::time::Instant::now();
    let (outcome, sync) = if shards <= 1 {
        let sc = fattree_scenario(seed, 1);
        let mut sim = Sim::new(sc.seed);
        let fab = build_fabric(&mut sim, &sc);
        sim.run_until(plan.duration);
        let partial = harvest_scale(&sim, &fab, cores, FT_K);
        (
            assemble_scale(Stack::FlexToe, conns, &plan, vec![partial], None),
            None,
        )
    } else {
        let mut sharded = ShardedSim::launch(shards, move |_| {
            let sc = fattree_scenario(seed, shards);
            let mut sim = Sim::new(sc.seed);
            let fab = build_fabric(&mut sim, &sc);
            let part = partition_fabric(&sim, &sc, &fab, sc.shards);
            (sim, fab, part)
        });
        sharded.run_until(plan.duration);
        let partials =
            sharded.each(move |_, sim, fab| harvest_scale(sim, fab, cores.clone(), FT_K));
        let sync = sharded.sync_stats();
        (
            assemble_scale(Stack::FlexToe, conns, &plan, partials, None),
            Some(sync),
        )
    };
    let wall_secs = wall0.elapsed().as_secs_f64();
    let row_json = fattree_row_json(&outcome);
    match sync {
        None => FatTreeRun {
            shards: 1,
            windows: 0,
            envelopes: 0,
            events_per_shard: vec![outcome.sim_events],
            blocked_ns: 0,
            wall_secs,
            row_json,
        },
        Some(s) => FatTreeRun {
            shards,
            windows: s.windows,
            envelopes: s.envelopes.iter().sum(),
            events_per_shard: s.events,
            blocked_ns: s.blocked_ns.iter().sum(),
            wall_secs,
            row_json,
        },
    }
}

/// The full headline: shards ∈ {1, 2, 4, 8}, metrics row asserted
/// byte-identical across all four. Runs regardless of `--shards` so the
/// BENCH body never depends on the flag.
pub fn run_fattree_headline(seed: u64) -> Vec<FatTreeRun> {
    let mut runs: Vec<FatTreeRun> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let r = run_fattree_point(seed, shards);
        println!(
            "fattree-k{FT_K} shards={}: wall {:.2}s, {} windows, {} envelopes, blocked {:.2}s{}",
            r.shards,
            r.wall_secs,
            r.windows,
            r.envelopes,
            r.blocked_ns as f64 / 1e9,
            if r.shards == 1 { " (reference)" } else { "" },
        );
        if let Some(first) = runs.first() {
            assert_eq!(
                first.row_json, r.row_json,
                "fat-tree metrics diverged between 1 and {shards} shards"
            );
        }
        runs.push(r);
    }
    runs
}

/// Splice the fat-tree block into the (deterministic) scale body.
fn splice_fattree(json: String, runs: &[FatTreeRun]) -> String {
    let body = json
        .strip_suffix("}\n")
        .expect("BENCH json ends with its closing brace");
    let mut s = format!(
        "{body}  ,\"fattree\": {{\n    \"row\": {},\n    \"shard_sweep\": [\n",
        runs[0].row_json
    );
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"n_shards\": {}, \"windows\": {}, \"envelopes\": {}, \"events_per_shard\": [{}]}}{}\n",
            r.shards,
            r.windows,
            r.envelopes,
            r.events_per_shard
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 == runs.len() { "" } else { "," },
        ));
    }
    s.push_str("    ]\n  }\n}\n");
    s
}

fn dist_label(d: SizeDist) -> String {
    match d {
        SizeDist::Fixed(v) => format!("fixed({v})"),
        SizeDist::Uniform { lo, hi } => format!("uniform({lo},{hi})"),
        SizeDist::Pareto { alpha, min, max } => format!("pareto({alpha},{min},{max})"),
    }
}

/// Serialize a sweep deterministically (two runs of one seed must be
/// byte-identical — asserted by the integration suite and CI).
pub fn scale_json(seed: u64, plan: &ScalePlan, results: &[ScaleOutcome]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"benchmark\": \"scale\",\n");
    s.push_str(&format!(
        "  \"scenario\": {{\n    \"seed\": {seed},\n    \"fabric\": \"leafspine-{LEAVES}x{SPINES}\",\n    \"hosts\": {},\n    \"client_hosts\": {},\n    \"rate_rps_per_host\": {},\n    \"req_size\": \"{}\",\n    \"resp_size\": \"{}\",\n    \"duration_ms\": {},\n    \"warmup_ms\": {}\n  }},\n",
        LEAVES * HOSTS_PER_LEAF,
        LEAVES * HOSTS_PER_LEAF / 2,
        plan.rate_rps_per_host,
        dist_label(plan.req_size),
        dist_label(plan.resp_size),
        plan.duration.as_us() / 1_000,
        plan.warmup.as_us() / 1_000,
    ));
    s.push_str("  \"sweep\": [\n");
    for (i, r) in results.iter().enumerate() {
        let g = &r.gauges;
        s.push_str(&format!(
            "    {{\"stack\": \"{}\", \"conns\": {}, \"offered_rps\": {:.0}, \"achieved_rps\": {:.0}, \"goodput_gbps\": {:.3}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"jain_hosts\": {:.4}, \"backlog\": {}, \"sim_events\": {}, \"spine_frames\": [{}], \"pools\": {{\"work_hwm\": {}, \"work_in_use\": {}, \"pktbuf_hwm\": {}, \"pktbuf_in_flight\": {}, \"conn_cache_hwm\": {}, \"conn_cache_dram\": {}, \"conn_cache_sram_hits\": {}}}}}{}\n",
            r.stack,
            r.conns,
            r.offered_rps,
            r.achieved_rps,
            r.goodput_gbps,
            r.p50_us,
            r.p99_us,
            r.jain_hosts,
            r.backlog,
            r.sim_events,
            r.spine_frames
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            g.work_high_water,
            g.work_in_use,
            g.seg_high_water,
            g.seg_in_flight,
            g.cache_high_water,
            g.cache_dram_accesses,
            g.cache_sram_hits,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `scale` experiment: sweep (in parallel under `--jobs`, each
/// point split across `--shards` PDES shards), plus — in full mode —
/// the k=8 fat-tree / 100k-connection headline swept over shards
/// {1, 2, 4, 8}. Writes `BENCH_scale.json`; the body is byte-identical
/// for any `--jobs` / `--shards` combination.
pub fn scale(opts: &RunOpts) {
    let plan = if opts.smoke {
        ScalePlan::smoke()
    } else {
        ScalePlan::full()
    };
    let seed = opts.seed.unwrap_or(17);
    let shards = opts.shards.max(1);
    let jobs = opts.point_jobs();
    println!(
        "# scale — {LEAVES}-leaf/{SPINES}-spine fabric, open-loop Poisson + heavy-tailed RPCs{} [jobs={jobs} shards={shards}]",
        if opts.smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>9} {:>9} {:>9} {:>7} {:>9} {:>10} {:>10}",
        "stack",
        "conns",
        "offered",
        "achieved",
        "Gbps",
        "p50 us",
        "p99 us",
        "JFI",
        "work hwm",
        "cache hwm",
        "cache dram"
    );
    let wall0 = std::time::Instant::now();
    let results = run_scale_jobs_shards(seed, &plan, jobs, shards);
    let wall = wall0.elapsed().as_secs_f64();
    for r in &results {
        println!(
            "{:<14} {:>6} {:>10.0} {:>10.0} {:>9.3} {:>9.2} {:>9.2} {:>7.3} {:>9} {:>10} {:>10}",
            r.stack,
            r.conns,
            r.offered_rps,
            r.achieved_rps,
            r.goodput_gbps,
            r.p50_us,
            r.p99_us,
            r.jain_hosts,
            r.gauges.work_high_water,
            r.gauges.cache_high_water,
            r.gauges.cache_dram_accesses,
        );
    }
    let sim_events: u64 = results.iter().map(|r| r.sim_events).sum();
    println!(
        "sweep wall: {:.2}s, {} events ({:.2}M events/s, jobs={}, shards={})",
        wall,
        sim_events,
        sim_events as f64 / wall / 1e6,
        jobs,
        shards
    );
    let fattree = if opts.smoke {
        Vec::new()
    } else {
        run_fattree_headline(seed)
    };

    let mut body = scale_json(seed, &plan, &results);
    if !fattree.is_empty() {
        body = splice_fattree(body, &fattree);
    }
    let mut extras = vec![
        format!("\"shards\": {shards}"),
        format!("\"threads_total\": {}", jobs * shards),
    ];
    if shards > 1 {
        let windows: u64 = results
            .iter()
            .filter_map(|r| r.sync.as_ref())
            .map(|s| s.windows)
            .sum();
        let envelopes: u64 = results
            .iter()
            .filter_map(|r| r.sync.as_ref())
            .map(|s| s.envelopes.iter().sum::<u64>())
            .sum();
        let blocked: u64 = results
            .iter()
            .filter_map(|r| r.sync.as_ref())
            .map(|s| s.blocked_ns.iter().sum::<u64>())
            .sum();
        extras.push(format!("\"shard_windows\": {windows}"));
        extras.push(format!("\"shard_envelopes\": {envelopes}"));
        extras.push(format!("\"shard_blocked_ns\": {blocked}"));
    }
    if !fattree.is_empty() {
        extras.push(format!(
            "\"fattree_wall\": [{}]",
            fattree
                .iter()
                .map(|r| format!(
                    "{{\"n_shards\": {}, \"secs\": {:.3}, \"blocked_ns\": {}}}",
                    r.shards, r.wall_secs, r.blocked_ns
                ))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    let json = with_wall_extras(body, wall, sim_events, jobs, &extras);
    let path = opts.out_path("BENCH_scale.json");
    std::fs::write(&path, &json).expect("write BENCH_scale.json");
    println!("wrote {}", path.display());
}

/// Regex CI uses to strip every wall-clock-dependent line out of a
/// BENCH JSON before byte-comparing bodies. Everything
/// [`with_wall_extras`] emits must be covered here (and the body must
/// never use these key names).
pub const WALL_KEYS_RE: &str = "\"(wall_secs|wall_events_per_sec|jobs|physical_cores|shards|threads_total|shard_windows|shard_envelopes|shard_blocked_ns|fattree_wall)\"";

/// Append the wall-clock block to a deterministic BENCH JSON body. Each
/// key lives on its own line at the very end so determinism checks can
/// strip them (`grep -vE` with [`WALL_KEYS_RE`]) and compare the rest
/// byte-for-byte. (`sim_events` is deterministic and is *not* stripped.)
pub fn with_wall_block(json: String, wall_secs: f64, sim_events: u64, jobs: usize) -> String {
    with_wall_extras(json, wall_secs, sim_events, jobs, &[])
}

/// [`with_wall_block`] plus experiment-specific wall lines (`extras`
/// are raw `"key": value` fragments, one line each — every key must be
/// matched by [`WALL_KEYS_RE`]).
pub fn with_wall_extras(
    json: String,
    wall_secs: f64,
    sim_events: u64,
    jobs: usize,
    extras: &[String],
) -> String {
    let body = json
        .strip_suffix("}\n")
        .expect("BENCH json ends with its closing brace");
    let mut s = format!(
        "{body}  ,\"sim_events\": {sim_events},\n  \"wall_secs\": {wall_secs:.3},\n  \"wall_events_per_sec\": {:.0},\n  \"jobs\": {jobs},\n  \"physical_cores\": {}",
        sim_events as f64 / wall_secs.max(1e-9),
        crate::par::physical_cores(),
    );
    for e in extras {
        s.push_str(",\n  ");
        s.push_str(e);
    }
    s.push_str("\n}\n");
    s
}
