//! FlexTOE reproduction experiment harness: one subcommand per table and
//! figure of the paper's evaluation (see DESIGN.md §3 for the index),
//! plus the congested-fabric (`cc`) and connection-scalability (`scale`)
//! scenarios and the `bench-pipeline` perf snapshot.
//!
//! ```text
//! cargo run -p flextoe-bench --release -- all
//! cargo run -p flextoe-bench --release -- table3 fig15
//! cargo run -p flextoe-bench --release -- scale --smoke --seed 17 --out target
//! ```

use flextoe_bench::cli::RunOpts;
use flextoe_bench::{cc, exp, faults, scale, telemetry};

/// An experiment entry point: the paper reproductions are parameterless;
/// the scenario experiments take the shared `--seed/--out/--smoke` opts.
enum Runner {
    Plain(fn()),
    WithOpts(fn(&RunOpts)),
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, names) = RunOpts::parse(&args);
    let run_all = names.is_empty() || names.iter().any(|a| a == "all");
    // the perf snapshot and the scale sweep only run on explicit request,
    // not under `all`; `cc` stays in `all` (it reproduces the §D
    // congestion-control evaluation)
    let explicit_only = ["bench-pipeline", "scale", "faults", "telemetry"];
    let want = |name: &str| {
        if explicit_only.contains(&name) {
            return names.iter().any(|a| a == name);
        }
        run_all || names.iter().any(|a| a == name)
    };

    use Runner::*;
    let experiments: &[(&str, Runner)] = &[
        ("table1", Plain(exp::table1)),
        ("table2", Plain(exp::table2)),
        ("table3", Plain(exp::table3)),
        ("table4", Plain(exp::table4)),
        ("table5", Plain(exp::table5)),
        ("table6", Plain(exp::table6)),
        ("fig8", Plain(exp::fig8)),
        ("fig9", Plain(exp::fig9)),
        ("fig10", Plain(exp::fig10)),
        ("fig11", Plain(exp::fig11)),
        ("fig12", Plain(exp::fig12)),
        ("fig13", Plain(exp::fig13)),
        ("fig14", Plain(exp::fig14)),
        ("fig15", Plain(exp::fig15)),
        ("fig16", Plain(exp::fig16)),
        ("ablate-reorder", Plain(exp::ablate_reorder)),
        ("cc", WithOpts(cc::cc)),
        ("scale", WithOpts(scale::scale)),
        ("faults", WithOpts(faults::faults)),
        ("telemetry", WithOpts(telemetry::telemetry)),
        ("bench-pipeline", WithOpts(exp::bench_pipeline)),
    ];

    let mut ran = 0;
    for (name, f) in experiments {
        if want(name) {
            let t0 = std::time::Instant::now();
            match f {
                Plain(f) => f(),
                WithOpts(f) => f(&opts),
            }
            eprintln!("[{name} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("unknown experiment; available:");
        for (name, _) in experiments {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    }
}
