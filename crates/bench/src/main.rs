//! FlexTOE reproduction experiment harness: one subcommand per table and
//! figure of the paper's evaluation (see DESIGN.md §3 for the index).
//!
//! ```text
//! cargo run -p flextoe-bench --release -- all
//! cargo run -p flextoe-bench --release -- table3 fig15
//! ```

use flextoe_bench::{cc, exp};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| {
        if name == "bench-pipeline" {
            return args.iter().any(|a| a == name);
        }
        run_all || args.iter().any(|a| a == name)
    };

    let experiments: &[(&str, fn())] = &[
        ("table1", exp::table1),
        ("table2", exp::table2),
        ("table3", exp::table3),
        ("table4", exp::table4),
        ("table5", exp::table5),
        ("table6", exp::table6),
        ("fig8", exp::fig8),
        ("fig9", exp::fig9),
        ("fig10", exp::fig10),
        ("fig11", exp::fig11),
        ("fig12", exp::fig12),
        ("fig13", exp::fig13),
        ("fig14", exp::fig14),
        ("fig15", exp::fig15),
        ("fig16", exp::fig16),
        ("ablate-reorder", exp::ablate_reorder),
        ("cc", cc::cc),
        ("bench-pipeline", exp::bench_pipeline),
    ];
    // bench-pipeline is a perf snapshot, not a paper experiment: only on
    // explicit request, not under `all`

    let mut ran = 0;
    for (name, f) in experiments {
        if want(name) {
            let t0 = std::time::Instant::now();
            f();
            eprintln!("[{name} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("unknown experiment; available:");
        for (name, _) in experiments {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    }
}
