//! The congested-fabric scenario: N FlexTOE senders incast through one
//! ECN-marking, WRED-armed switch port into a single receiver — the
//! fabric the out-of-band congestion-control plane exists for. The `cc`
//! experiment sweeps every registry algorithm (dctcp, timely, cubic,
//! reno — plus dctcp once more on the compiled-eBPF fold path) over the
//! same seed and records per-algorithm convergence time, Jain fairness,
//! switch-queue occupancy, and report-batching counters to
//! `BENCH_cc.json`.

use flextoe_apps::{ClientConfig, LoadMode, ServerConfig};
use flextoe_ccp::{FoldProg, FoldSpec};
use flextoe_control::CcAlgo;
use flextoe_netsim::{PortConfig, Switch, WredParams};
use flextoe_sim::{Duration, Sim, Tick, Time};

use crate::harness::*;
use crate::par::run_indexed;

/// ECN step-marking threshold K on the bottleneck port (bytes).
pub const ECN_K: usize = 24 * 1024;
/// Bottleneck port rate (bits/s): the 40G endpoints incast into 10G.
pub const BOTTLENECK_BPS: u64 = 10_000_000_000;
/// Request size of each sender (the incast unit).
const MSG: u32 = 65_536;

/// Windowed-fairness threshold and hold requirement for convergence.
const JAIN_CONVERGED: f64 = 0.95;
const HOLD_WINDOWS: usize = 3;

/// One algorithm's outcome on the congested fabric.
pub struct AlgoOutcome {
    pub algo: &'static str,
    pub fold: &'static str,
    pub goodput_gbps: f64,
    /// Jain fairness over post-warmup per-flow goodput.
    pub jain: f64,
    /// First time (ms from start) windowed Jain ≥ 0.95 held for
    /// `HOLD_WINDOWS` consecutive sampling windows; -1 if never.
    pub convergence_ms: f64,
    pub peak_queue_kb: f64,
    pub avg_queue_kb: f64,
    pub ecn_marked: u64,
    pub drops: u64,
    /// Report batches / flow reports / folded ACK events (batching proof:
    /// batches ≪ events, reports ≥ batches).
    pub report_batches: u64,
    pub flow_reports: u64,
    pub acks_folded: u64,
    /// Simulation events this run processed (deterministic per seed).
    pub sim_events: u64,
}

/// Scenario scale: the CI smoke configuration shrinks senders and time.
#[derive(Clone, Copy, Debug)]
pub struct CcScale {
    pub senders: u8,
    pub duration: Time,
    pub warmup: Time,
    /// Fairness-sampling window: wide enough that several 64 KB requests
    /// complete per flow per window, or discreteness drowns the signal.
    pub window: Duration,
}

impl CcScale {
    pub fn full() -> CcScale {
        CcScale {
            senders: 4,
            duration: Time::from_ms(30),
            warmup: Time::from_ms(4),
            window: Duration::from_ms(2),
        }
    }

    pub fn smoke() -> CcScale {
        CcScale {
            senders: 2,
            duration: Time::from_ms(10),
            warmup: Time::from_ms(2),
            window: Duration::from_ms(1),
        }
    }
}

/// Run one algorithm over the incast fabric.
pub fn run_cc_one(seed: u64, algo: CcAlgo, fold: FoldSpec, scale: CcScale) -> AlgoOutcome {
    let fold_label = match fold {
        FoldSpec::Builtin => "native",
        FoldSpec::Program(_) => "ebpf",
    };
    // shallow enough that loss-based algorithms (cubic, reno) actually
    // reach the WRED band and tail: their signal is loss, not marks
    let port = PortConfig {
        rate_bps: BOTTLENECK_BPS,
        buf_bytes: 192 * 1024,
        ecn_threshold: Some(ECN_K),
        wred: Some(WredParams {
            min_bytes: 64 * 1024,
            max_bytes: 192 * 1024,
            max_p: 0.3,
        }),
    };
    let opts = PairOpts {
        cc: algo,
        fold,
        ..Default::default()
    };
    let mut sim = Sim::new(seed);
    let (clients, srv_ep, sw) = build_star(&mut sim, Stack::FlexToe, scale.senders, port, &opts);
    let srv = sim.add_node(DynServer::new(
        ServerConfig {
            msg_size: MSG,
            resp_size: 32,
            app_cycles: 0,
            ..Default::default()
        },
        srv_ep.stack_init(Stack::FlexToe, 1),
    ));
    sim.schedule(Time::ZERO, srv, Tick);
    let mut client_nodes = Vec::new();
    for (i, ep) in clients.iter().enumerate() {
        let c = sim.add_node(DynClient::new(
            ClientConfig {
                server_ip: srv_ep.ip,
                n_conns: 1,
                msg_size: MSG,
                resp_size: 32,
                mode: LoadMode::Closed { pipeline: 2 },
                warmup: scale.warmup,
                connect_spacing: Duration::from_us(3),
                ..Default::default()
            },
            ep.stack_init(Stack::FlexToe, 1),
        ));
        sim.schedule(Time::from_us(30 + i as u64), c, Tick);
        client_nodes.push(c);
    }

    // windowed sampling from outside the simulation: per-flow delivered
    // bytes per window drive the convergence detector
    let window = scale.window;
    let n_windows = (scale.duration.as_ns() / window.as_ns()) as usize;
    let warmup_windows = (scale.warmup.as_ns() / window.as_ns()) as usize;
    let mut prev = vec![0u64; client_nodes.len()];
    let mut at_warmup = vec![0u64; client_nodes.len()];
    let mut window_deltas: Vec<Vec<u64>> = Vec::with_capacity(n_windows);
    for w in 0..n_windows {
        sim.run_until(Time::ZERO + window * (w as u64 + 1));
        let totals: Vec<u64> = client_nodes
            .iter()
            .map(|&c| sim.node_ref::<DynClient>(c).per_conn_bytes().iter().sum())
            .collect();
        let deltas: Vec<u64> = totals
            .iter()
            .zip(&prev)
            .map(|(t, p)| t.saturating_sub(*p))
            .collect();
        window_deltas.push(deltas.clone());
        if std::env::var("FLEXTOE_CC_DEBUG").is_ok() {
            let ivals: Vec<u64> = clients
                .iter()
                .map(|ep| {
                    let nic = &ep.flextoe.as_ref().unwrap().0;
                    sim.node_ref::<flextoe_core::stages::schedn::SchedNode>(nic.sched)
                        .carousel
                        .rate_of(0)
                })
                .collect();
            let (_, qavg) = sim
                .node_ref::<Switch>(sw)
                .queue_occupancy(0, sim.now().as_ns());
            let proto: Vec<String> = clients
                .iter()
                .map(|ep| {
                    let nic = &ep.flextoe.as_ref().unwrap().0;
                    let table = nic.table.borrow();
                    match table.get(0) {
                        Some(e) => format!(
                            "sent={} avail={} win={} una={} rto={}",
                            e.proto.tx_sent,
                            e.proto.tx_avail,
                            e.proto.remote_win,
                            e.proto.snd_una().0,
                            sim.stats.get_named("ctrl.rto_fired"),
                        ),
                        None => "gone".into(),
                    }
                })
                .collect();
            eprintln!(
                "w{:>3} deltas {:?} intervals {:?} qavg {:.0} {:?}",
                w, deltas, ivals, qavg, proto
            );
        }
        prev = totals.clone();
        if w + 1 == warmup_windows {
            at_warmup = totals;
        }
    }

    // convergence: Jain over sliding two-window sums (the per-flow
    // sawtooth plus 64 KB request granularity makes single windows too
    // noisy) holds ≥ threshold for HOLD_WINDOWS consecutive positions
    let pair_jain: Vec<f64> = window_deltas
        .windows(2)
        .map(|pair| {
            let sums: Vec<u64> = pair[0].iter().zip(&pair[1]).map(|(a, b)| a + b).collect();
            jain_index(&sums)
        })
        .collect();
    let mut convergence_ms = -1.0;
    for start in warmup_windows..pair_jain.len().saturating_sub(HOLD_WINDOWS - 1) {
        if pair_jain[start..start + HOLD_WINDOWS]
            .iter()
            .all(|&j| j >= JAIN_CONVERGED)
        {
            convergence_ms = (start + 2) as f64 * window.as_us_f64() / 1_000.0;
            break;
        }
    }

    // post-warmup fairness + goodput
    let post: Vec<u64> = prev
        .iter()
        .zip(&at_warmup)
        .map(|(t, w)| t.saturating_sub(*w))
        .collect();
    let jain = jain_index(&post);
    let measured: u64 = client_nodes
        .iter()
        .map(|&c| sim.node_ref::<DynClient>(c).measured)
        .sum();
    let span = scale.duration.saturating_since(scale.warmup);
    let goodput_gbps = measured as f64 * MSG as f64 * 8.0 / span.as_secs_f64() / 1e9;

    let switch = sim.node_ref::<Switch>(sw);
    let (_tx, drops, ecn_marked) = switch.port_stats(0);
    let (peak, avg) = switch.queue_occupancy(0, sim.now().as_ns());

    AlgoOutcome {
        algo: algo.name(),
        fold: fold_label,
        sim_events: sim.events_processed(),
        goodput_gbps,
        jain,
        convergence_ms,
        peak_queue_kb: peak as f64 / 1024.0,
        avg_queue_kb: avg / 1024.0,
        ecn_marked,
        drops,
        report_batches: sim.stats.get_named("ccp.batches"),
        flow_reports: sim.stats.get_named("ccp.reports"),
        acks_folded: sim.stats.get_named("ccp.events"),
    }
}

/// The full sweep: every registry algorithm on the native fold, plus
/// DCTCP once more on the compiled-eBPF fold path. Runs are independent
/// sims fanned out over `jobs` threads; results merge in configuration
/// order, byte-identical to a serial run.
pub fn run_cc_jobs(seed: u64, scale: CcScale, jobs: usize) -> Vec<AlgoOutcome> {
    let mut configs: Vec<(CcAlgo, FoldSpec)> = CcAlgo::all()
        .into_iter()
        .map(|algo| (algo, FoldSpec::Builtin))
        .collect();
    configs.push((CcAlgo::Dctcp, FoldSpec::Program(FoldProg::builtin())));
    run_indexed(jobs, configs.len(), |i| {
        let (algo, fold) = configs[i].clone();
        run_cc_one(seed, algo, fold, scale)
    })
}

/// The serial reference sweep.
pub fn run_cc(seed: u64, scale: CcScale) -> Vec<AlgoOutcome> {
    run_cc_jobs(seed, scale, 1)
}

/// Serialize a sweep deterministically (the integration suite asserts
/// byte-identical output for identical seeds).
pub fn cc_json(seed: u64, scale: CcScale, results: &[AlgoOutcome]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"benchmark\": \"cc\",\n");
    s.push_str(&format!(
        "  \"scenario\": {{\n    \"seed\": {seed},\n    \"senders\": {},\n    \"bottleneck_gbps\": {},\n    \"ecn_threshold_kb\": {},\n    \"duration_ms\": {},\n    \"warmup_ms\": {}\n  }},\n",
        scale.senders,
        BOTTLENECK_BPS / 1_000_000_000,
        ECN_K / 1024,
        scale.duration.as_us() / 1_000,
        scale.warmup.as_us() / 1_000,
    ));
    s.push_str("  \"algorithms\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"algo\": \"{}\", \"fold\": \"{}\", \"goodput_gbps\": {:.3}, \"jain\": {:.4}, \"convergence_ms\": {:.1}, \"peak_queue_kb\": {:.1}, \"avg_queue_kb\": {:.2}, \"ecn_marked\": {}, \"drops\": {}, \"report_batches\": {}, \"flow_reports\": {}, \"acks_folded\": {}, \"sim_events\": {}}}{}\n",
            r.algo,
            r.fold,
            r.goodput_gbps,
            r.jain,
            r.convergence_ms,
            r.peak_queue_kb,
            r.avg_queue_kb,
            r.ecn_marked,
            r.drops,
            r.report_batches,
            r.flow_reports,
            r.acks_folded,
            r.sim_events,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `cc` experiment: sweep, print, write `BENCH_cc.json`.
/// `--smoke` (or the legacy `FLEXTOE_CC_SMOKE=1`) selects the short CI
/// configuration; `--seed`/`--out` override the defaults.
pub fn cc(opts: &crate::cli::RunOpts) {
    let smoke = opts.smoke || std::env::var("FLEXTOE_CC_SMOKE").is_ok_and(|v| v == "1");
    let scale = if smoke {
        CcScale::smoke()
    } else {
        CcScale::full()
    };
    let seed = opts.seed.unwrap_or(11);
    let jobs = opts.jobs();
    println!(
        "# cc — congested fabric: {} senders incast into {} Gbps (K = {} KB){}",
        scale.senders,
        BOTTLENECK_BPS / 1_000_000_000,
        ECN_K / 1024,
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:<8} {:<7} {:>9} {:>7} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9} {:>9}",
        "algo",
        "fold",
        "goodput",
        "JFI",
        "conv ms",
        "peak KB",
        "avg KB",
        "marks",
        "drops",
        "batches",
        "acks"
    );
    let wall0 = std::time::Instant::now();
    let results = run_cc_jobs(seed, scale, jobs);
    let wall = wall0.elapsed().as_secs_f64();
    for r in &results {
        println!(
            "{:<8} {:<7} {:>8.2}G {:>7.3} {:>9.1} {:>9.1} {:>9.2} {:>7} {:>7} {:>9} {:>9}",
            r.algo,
            r.fold,
            r.goodput_gbps,
            r.jain,
            r.convergence_ms,
            r.peak_queue_kb,
            r.avg_queue_kb,
            r.ecn_marked,
            r.drops,
            r.report_batches,
            r.acks_folded,
        );
    }
    let sim_events: u64 = results.iter().map(|r| r.sim_events).sum();
    println!(
        "sweep wall: {:.2}s, {} events ({:.2}M events/s, jobs={})",
        wall,
        sim_events,
        sim_events as f64 / wall / 1e6,
        jobs
    );
    let json =
        crate::scale::with_wall_block(cc_json(seed, scale, &results), wall, sim_events, jobs);
    let path = opts.out_path("BENCH_cc.json");
    std::fs::write(&path, &json).expect("write BENCH_cc.json");
    println!("wrote {}", path.display());
}
