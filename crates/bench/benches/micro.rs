//! Microbenchmarks on the data-path's hot structures — the engine's event
//! core (typed messages + event wheel vs. boxed messages + binary heap),
//! the checksum/CRC paths, segment build/parse, the reorder buffer, the
//! Carousel wheel, the protocol state machine, and the eBPF VM.
//!
//! The container has no third-party crates, so this is a hand-rolled
//! harness (`harness = false`): each benchmark reports its median ns/op
//! over several timed runs. Run with:
//!
//! ```sh
//! cargo bench -p flextoe-bench
//! # engine comparison only:
//! cargo bench -p flextoe-bench -- engine
//! ```

use std::hint::black_box;
use std::time::Instant;

use flextoe_core::proto::{self, RxSummary};
use flextoe_core::reorder::Reorder;
use flextoe_core::sched::Carousel;
use flextoe_core::ProtoState;
use flextoe_ebpf::{programs, Map, MapSet, Vm};
use flextoe_sim::{Duration, QueueKind, Time};
use flextoe_wire::{crc32, SegmentSpec, SegmentView, SeqNum, TcpFlags};

// ---- harness -------------------------------------------------------------

const RUNS: usize = 5;

/// Time `f` (which performs `iters` operations) RUNS times; report the
/// median ns/op.
fn bench_n(name: &str, iters: u64, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let med = samples[RUNS / 2];
    println!("{name:<44} {med:>10.1} ns/op   ({:.1} Mops/s)", 1e3 / med);
    med
}

fn selected(filter: &Option<String>, group: &str) -> bool {
    filter.as_deref().is_none_or(|f| group.contains(f))
}

// ---- engine pipeline benchmark (shared with the bench binary) ------------

#[path = "../src/enginebench.rs"]
mod enginebench;
use enginebench::{
    best_of, dispatch_best_of, switch_best_of, DISPATCH_EVENTS, PIPE_EVENTS, SWITCH_FRAMES,
};

pub fn bench_engine(results: &mut Vec<(String, f64)>) {
    println!("-- engine: {PIPE_EVENTS} events through a 6-stage pipeline ring --");
    let combos = [
        (
            "engine/heap_boxed (pre-optimization baseline)",
            QueueKind::Heap,
            false,
        ),
        ("engine/heap_typed", QueueKind::Heap, true),
        ("engine/wheel_boxed", QueueKind::Wheel, false),
        (
            "engine/wheel_typed (default configuration)",
            QueueKind::Wheel,
            true,
        ),
    ];
    for (name, kind, typed) in combos {
        let eps = best_of(3, kind, typed);
        println!("{name:<44} {:>10.2} M events/s", eps / 1e6);
        results.push((name.to_string(), eps));
    }
    let base = results[0].1;
    let best = results[3].1;
    println!(
        "engine/speedup (wheel+typed vs heap+boxed)   {:>10.2}x",
        best / base
    );

    println!("-- switch: {SWITCH_FRAMES} frames through one ECMP leaf hop --");
    for (name, tagged, sketched) in [
        ("switch/forward_raw (reparse per hop)", false, false),
        ("switch/forward_tagged (parse-once meta)", true, false),
        ("switch/forward_sketched (telemetry armed)", true, true),
    ] {
        let fps = switch_best_of(2, tagged, sketched);
        println!("{name:<44} {:>10.2} M frames/s", fps / 1e6);
        results.push((name.to_string(), fps));
    }

    println!("-- dispatch: {DISPATCH_EVENTS} raw token deliveries --");
    for (name, nodes, burst) in [
        ("dispatch/self_send_burst (direct drain)", 1, true),
        ("dispatch/self_send_noburst", 1, false),
        ("dispatch/ring8_burst (singleton probes)", 8, true),
        ("dispatch/ring8_noburst", 8, false),
    ] {
        let eps = dispatch_best_of(2, nodes, burst);
        println!("{name:<44} {:>10.2} M events/s", eps / 1e6);
        results.push((name.to_string(), eps));
    }
}

// ---- data-structure microbenchmarks (ported from the criterion suite) ----

fn bench_wire() {
    let payload = vec![0xabu8; 1448];
    let spec = SegmentSpec {
        src_port: 1,
        dst_port: 2,
        flags: TcpFlags::ACK | TcpFlags::PSH,
        payload_len: payload.len(),
        ..Default::default()
    };
    let frame = spec.emit(&payload);

    bench_n("wire/emit_mtu_segment", 10_000, || {
        for _ in 0..10_000 {
            black_box(spec.emit(black_box(&payload)));
        }
    });
    bench_n("wire/emit_mtu_segment_pooled", 10_000, || {
        let mut buf = Vec::new();
        for _ in 0..10_000 {
            spec.emit_payload_into(&mut buf, black_box(&payload));
            black_box(&buf);
        }
    });
    bench_n("wire/parse_mtu_segment", 10_000, || {
        for _ in 0..10_000 {
            black_box(SegmentView::parse(black_box(&frame), true).unwrap());
        }
    });
    bench_n("wire/crc32_4tuple", 100_000, || {
        for _ in 0..100_000 {
            black_box(crc32(black_box(&frame[26..38])));
        }
    });
}

fn bench_proto() {
    bench_n("proto/rx_in_order", 100_000, || {
        let mut ps = ProtoState {
            ack: SeqNum(0),
            rx_avail: u32::MAX / 2,
            remote_win: u16::MAX,
            ..Default::default()
        };
        let mut seq = 0u32;
        for _ in 0..100_000 {
            let sum = RxSummary {
                seq: SeqNum(seq),
                flags: TcpFlags::ACK | TcpFlags::PSH,
                window: u16::MAX,
                payload_len: 1448,
                ..Default::default()
            };
            seq = seq.wrapping_add(1448);
            black_box(proto::rx_segment(&mut ps, &sum));
        }
    });
    bench_n("proto/tx_next", 100_000, || {
        let mut ps = ProtoState {
            remote_win: u16::MAX,
            tx_avail: u32::MAX / 2,
            ..Default::default()
        };
        for _ in 0..100_000 {
            if ps.tx_sent > 40_000 {
                ps.tx_sent = 0; // "ack" everything
            }
            black_box(proto::tx_next(&mut ps, 1448));
        }
    });
}

fn bench_reorder() {
    bench_n("reorder/in_order_push", 100_000, || {
        let mut r = Reorder::new();
        for seq in 0..100_000u64 {
            black_box(r.push(seq, seq));
        }
    });
    bench_n("reorder/window_of_8_shuffled", 100_000, || {
        let mut r: Reorder<u64> = Reorder::new();
        let mut base = 0u64;
        for _ in 0..100_000 / 8 {
            for i in (0..8).rev() {
                black_box(r.push(base + i, base + i));
            }
            base += 8;
        }
    });
}

fn bench_carousel() {
    bench_n("carousel/trigger_uncongested", 100_000, || {
        let mut car = Carousel::with_defaults();
        for conn in 0..64 {
            car.register(conn);
            car.update_sendable(conn, u32::MAX / 2, Time::ZERO);
        }
        for _ in 0..100_000 {
            black_box(car.next_trigger(Time::ZERO, 1448));
        }
    });
    bench_n("carousel/trigger_paced", 100_000, || {
        let mut car = Carousel::with_defaults();
        for conn in 0..64 {
            car.register(conn);
            car.set_rate(conn, 100); // 100 ps/byte
            car.update_sendable(conn, u32::MAX / 2, Time::ZERO);
        }
        let mut now = Time::ZERO;
        for _ in 0..100_000 {
            now += Duration::from_ns(200);
            black_box(car.next_trigger(now, 1448));
        }
    });
}

fn bench_ebpf() {
    let mut frame = vec![0u8; 64];
    frame[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
    frame[14] = 0x45;
    frame[23] = 6;
    bench_n("ebpf/null_program", 100_000, || {
        let prog = programs::null_pass();
        let mut vm = Vm::new();
        let mut maps = MapSet::new();
        for _ in 0..100_000 {
            black_box(vm.run(&prog, &mut frame, &mut maps).unwrap());
        }
    });
    bench_n("ebpf/splice_miss", 100_000, || {
        let mut maps = MapSet::new();
        let fd = maps.add(Map::hash(
            programs::SPLICE_KEY_SIZE,
            programs::SPLICE_VALUE_SIZE,
            64,
        ));
        let prog = programs::splice(fd);
        let mut vm = Vm::new();
        for _ in 0..100_000 {
            black_box(vm.run(&prog, &mut frame, &mut maps).unwrap());
        }
    });
}

fn main() {
    let filter: Option<String> = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && a != "--bench");
    let mut engine_results = Vec::new();
    if selected(&filter, "engine") {
        bench_engine(&mut engine_results);
    }
    if selected(&filter, "wire") {
        bench_wire();
    }
    if selected(&filter, "proto") {
        bench_proto();
    }
    if selected(&filter, "reorder") {
        bench_reorder();
    }
    if selected(&filter, "carousel") {
        bench_carousel();
    }
    if selected(&filter, "ebpf") {
        bench_ebpf();
    }
}
