//! Criterion microbenchmarks on the data-path's hot structures: the
//! checksum/CRC paths, segment build/parse, the reorder buffer, the
//! Carousel wheel, the protocol state machine, and the eBPF VM.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use flextoe_core::proto::{self, RxSummary};
use flextoe_core::reorder::Reorder;
use flextoe_core::sched::Carousel;
use flextoe_core::ProtoState;
use flextoe_ebpf::{programs, Map, MapSet, Vm};
use flextoe_sim::{Duration, Time};
use flextoe_wire::{crc32, SegmentSpec, SegmentView, SeqNum, TcpFlags};

fn bench_wire(c: &mut Criterion) {
    let payload = vec![0xabu8; 1448];
    let spec = SegmentSpec {
        src_port: 1,
        dst_port: 2,
        flags: TcpFlags::ACK | TcpFlags::PSH,
        payload_len: payload.len(),
        ..Default::default()
    };
    let frame = spec.emit(&payload);

    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_function("emit_mtu_segment", |b| b.iter(|| spec.emit(black_box(&payload))));
    g.bench_function("parse_mtu_segment", |b| {
        b.iter(|| SegmentView::parse(black_box(&frame), true).unwrap())
    });
    g.bench_function("crc32_4tuple", |b| b.iter(|| crc32(black_box(&frame[26..38]))));
    g.finish();
}

fn bench_proto(c: &mut Criterion) {
    c.bench_function("proto/rx_in_order", |b| {
        let mut ps = ProtoState {
            ack: SeqNum(0),
            rx_avail: u32::MAX / 2,
            remote_win: u16::MAX,
            ..Default::default()
        };
        let mut seq = 0u32;
        b.iter(|| {
            let sum = RxSummary {
                seq: SeqNum(seq),
                flags: TcpFlags::ACK | TcpFlags::PSH,
                window: u16::MAX,
                payload_len: 1448,
                ..Default::default()
            };
            seq = seq.wrapping_add(1448);
            black_box(proto::rx_segment(&mut ps, &sum))
        })
    });
    c.bench_function("proto/tx_next", |b| {
        let mut ps = ProtoState {
            remote_win: u16::MAX,
            tx_avail: u32::MAX / 2,
            ..Default::default()
        };
        b.iter(|| {
            if ps.tx_sent > 40_000 {
                ps.tx_sent = 0; // "ack" everything
            }
            black_box(proto::tx_next(&mut ps, 1448))
        })
    });
}

fn bench_reorder(c: &mut Criterion) {
    c.bench_function("reorder/in_order_push", |b| {
        let mut r = Reorder::new();
        let mut seq = 0u64;
        b.iter(|| {
            let out = r.push(seq, seq);
            seq += 1;
            black_box(out)
        })
    });
    c.bench_function("reorder/window_of_8_shuffled", |b| {
        let mut r: Reorder<u64> = Reorder::new();
        let mut base = 0u64;
        b.iter(|| {
            // deliver a window of 8 in worst-case (reversed) order
            for i in (0..8).rev() {
                black_box(r.push(base + i, base + i));
            }
            base += 8;
        })
    });
}

fn bench_carousel(c: &mut Criterion) {
    c.bench_function("carousel/trigger_uncongested", |b| {
        let mut car = Carousel::with_defaults();
        for conn in 0..64 {
            car.register(conn);
            car.update_sendable(conn, u32::MAX / 2, Time::ZERO);
        }
        b.iter(|| black_box(car.next_trigger(Time::ZERO, 1448)))
    });
    c.bench_function("carousel/trigger_paced", |b| {
        let mut car = Carousel::with_defaults();
        for conn in 0..64 {
            car.register(conn);
            car.set_rate(conn, 100); // 100 ps/byte
            car.update_sendable(conn, u32::MAX / 2, Time::ZERO);
        }
        let mut now = Time::ZERO;
        b.iter(|| {
            now = now + Duration::from_ns(200);
            black_box(car.next_trigger(now, 1448))
        })
    });
}

fn bench_ebpf(c: &mut Criterion) {
    let mut frame = vec![0u8; 64];
    frame[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
    frame[14] = 0x45;
    frame[23] = 6;
    c.bench_function("ebpf/null_program", |b| {
        let prog = programs::null_pass();
        let mut vm = Vm::new();
        let mut maps = MapSet::new();
        b.iter(|| black_box(vm.run(&prog, &mut frame, &mut maps).unwrap()))
    });
    c.bench_function("ebpf/splice_miss", |b| {
        let mut maps = MapSet::new();
        let fd = maps.add(Map::hash(
            programs::SPLICE_KEY_SIZE,
            programs::SPLICE_VALUE_SIZE,
            64,
        ));
        let prog = programs::splice(fd);
        let mut vm = Vm::new();
        b.iter(|| black_box(vm.run(&prog, &mut frame, &mut maps).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_wire,
    bench_proto,
    bench_reorder,
    bench_carousel,
    bench_ebpf
);
criterion_main!(benches);
