//! Host endpoint construction — one FlexTOE NIC + control plane, or one
//! baseline stack node — plus the two hand-wired topologies the paper's
//! point experiments use (a link pair and a single-switch star). The
//! declarative multi-switch fabrics live in [`crate::build`].

use flextoe_apps::{FlexToeStack, StackApi};
use flextoe_ccp::FoldSpec;
use flextoe_control::{CcAlgo, ControlPlane, CtrlConfig};
use flextoe_core::{FlexToeNic, NicConfig, PipeCfg};
use flextoe_hoststack::{build_host, host_socket_api, HostStackNode, StackKind};
use flextoe_netsim::{Faults, Link, PortConfig, Switch};
use flextoe_sim::{Duration, NodeId, Sim};
use flextoe_wire::{Ip4, MacAddr};

/// Which transport stack a host runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stack {
    FlexToe,
    Linux,
    Tas,
    Chelsio,
    FlexBaselineFpc,
}

impl Stack {
    pub fn name(self) -> &'static str {
        match self {
            Stack::FlexToe => "FlexTOE",
            Stack::Linux => "Linux",
            Stack::Tas => "TAS",
            Stack::Chelsio => "Chelsio",
            Stack::FlexBaselineFpc => "Flex-Baseline",
        }
    }
    pub fn all4() -> [Stack; 4] {
        [Stack::Linux, Stack::Chelsio, Stack::Tas, Stack::FlexToe]
    }
    fn kind(self) -> StackKind {
        match self {
            Stack::Linux => StackKind::Linux,
            Stack::Tas => StackKind::Tas,
            Stack::Chelsio => StackKind::Chelsio,
            Stack::FlexBaselineFpc => StackKind::FlexBaselineFpc,
            Stack::FlexToe => unreachable!(),
        }
    }
}

/// One host endpoint: either a FlexTOE NIC + control plane, or a baseline
/// stack node. `ingress` is where the peer's frames must be delivered.
pub struct Endpoint {
    pub ip: Ip4,
    pub mac: MacAddr,
    pub ingress: NodeId,
    pub flextoe: Option<(FlexToeNic, NodeId)>, // (nic, ctrl)
    pub baseline: Option<NodeId>,
}

impl Endpoint {
    /// Stack factory for an application node on this endpoint.
    pub fn stack_init(
        &self,
        stack: Stack,
        ctx_id: u16,
    ) -> flextoe_apps::StackInit<Box<dyn StackApi>> {
        match stack {
            Stack::FlexToe => {
                let (nic, ctrl) = self.flextoe.as_ref().expect("flextoe endpoint");
                let handle = nic.handle();
                let ctrl = *ctrl;
                Box::new(move |ctx, app| {
                    Box::new(FlexToeStack::new(ctx, ctx_id, handle, ctrl, app)) as Box<dyn StackApi>
                })
            }
            other => {
                let node = self.baseline.expect("baseline endpoint");
                let kind = other.kind();
                Box::new(move |_ctx, app| {
                    Box::new(host_socket_api(kind, node, app)) as Box<dyn StackApi>
                })
            }
        }
    }
}

/// Per-host transport options. `propagation`/`faults` configure the links
/// of the hand-wired pair/star topologies; the declarative fabrics take
/// link parameters from their [`crate::LinkSpec`] instead.
pub struct PairOpts {
    pub cfg: PipeCfg,
    pub cc: CcAlgo,
    /// Control-loop (RTO / teardown) iteration interval.
    pub cc_interval: Duration,
    /// Datapath fold report interval.
    pub report_interval: Duration,
    /// Fold installed for new flows (native builtin or compiled eBPF).
    pub fold: FoldSpec,
    /// Consecutive no-progress RTOs before the control plane aborts a
    /// flow (`None` = retry forever; see `CtrlConfig::rto_give_up`).
    pub rto_give_up: Option<u32>,
    /// RTO floor (`RTO = max(min_rto, 4 × sRTT)`). The chaos experiments
    /// shrink this so give-up fits inside a millisecond-scale fault window.
    pub min_rto: Duration,
    /// Base SYN retransmission interval (exponential backoff + jitter).
    pub syn_retry: Duration,
    /// SYN admission cap: refuse passive opens with an RST past this many
    /// installed connections (`None` = unbounded; see
    /// `CtrlConfig::max_conns`).
    pub max_conns: Option<u32>,
    pub propagation: Duration,
    pub faults: Faults,
}

impl Default for PairOpts {
    fn default() -> Self {
        let ctrl = CtrlConfig::default();
        PairOpts {
            cfg: PipeCfg::agilio_full(),
            cc: CcAlgo::Dctcp,
            cc_interval: ctrl.cc_interval,
            report_interval: ctrl.report_interval,
            fold: FoldSpec::Builtin,
            rto_give_up: ctrl.rto_give_up,
            min_rto: ctrl.min_rto,
            syn_retry: ctrl.syn_retry,
            max_conns: ctrl.max_conns,
            propagation: Duration::from_us(2),
            faults: Faults::default(),
        }
    }
}

/// Build one endpoint of kind `stack` whose egress goes to `link_out`.
pub fn build_endpoint(
    sim: &mut Sim,
    stack: Stack,
    id: u8,
    link_out: NodeId,
    opts: &PairOpts,
) -> Endpoint {
    let ip = Ip4::host(id);
    let mac = MacAddr::local(id);
    match stack {
        Stack::FlexToe => {
            let ctrl = sim.reserve_node();
            let nic =
                FlexToeNic::build(sim, opts.cfg.clone(), NicConfig { mac, ip }, link_out, ctrl);
            let cp = ControlPlane::new(
                CtrlConfig {
                    cc: opts.cc,
                    cc_interval: opts.cc_interval,
                    report_interval: opts.report_interval,
                    fold: opts.fold.clone(),
                    rto_give_up: opts.rto_give_up,
                    min_rto: opts.min_rto,
                    syn_retry: opts.syn_retry,
                    max_conns: opts.max_conns,
                    ..Default::default()
                },
                nic.handle(),
            );
            sim.fill_node(ctrl, cp);
            Endpoint {
                ip,
                mac,
                ingress: nic.mac,
                flextoe: Some((nic, ctrl)),
                baseline: None,
            }
        }
        other => {
            let node = build_host(sim, other.kind(), mac, ip, link_out);
            Endpoint {
                ip,
                mac,
                ingress: node,
                flextoe: None,
                baseline: Some(node),
            }
        }
    }
}

/// Static ARP: make `ep` resolve `peer_ip` to `peer_mac`.
pub fn add_arp(sim: &mut Sim, ep: &Endpoint, peer_ip: Ip4, peer_mac: MacAddr) {
    if let Some((_, ctrl)) = &ep.flextoe {
        sim.node_mut::<ControlPlane>(*ctrl)
            .add_peer(peer_ip, peer_mac);
    }
    if let Some(node) = ep.baseline {
        sim.node_mut::<HostStackNode>(node)
            .add_peer(peer_ip, peer_mac);
    }
}

/// Two hosts of possibly different stacks, joined by a link pair.
pub fn build_pair(sim: &mut Sim, a: Stack, b: Stack, opts: &PairOpts) -> (Endpoint, Endpoint) {
    let l_ab = sim.reserve_node();
    let l_ba = sim.reserve_node();
    let ea = build_endpoint(sim, a, 1, l_ab, opts);
    let eb = build_endpoint(sim, b, 2, l_ba, opts);
    sim.fill_node(
        l_ab,
        Link::with_faults(eb.ingress, opts.propagation, opts.faults),
    );
    sim.fill_node(
        l_ba,
        Link::with_faults(ea.ingress, opts.propagation, opts.faults),
    );
    add_arp(sim, &ea, eb.ip, eb.mac);
    add_arp(sim, &eb, ea.ip, ea.mac);
    (ea, eb)
}

/// N client hosts and one server host through a switch (incast topology).
pub fn build_star(
    sim: &mut Sim,
    stack: Stack,
    n_clients: u8,
    server_port_cfg: PortConfig,
    opts: &PairOpts,
) -> (Vec<Endpoint>, Endpoint, NodeId) {
    let sw = sim.reserve_node();
    let mut switch = Switch::new();
    // server = host id 1
    let server_link = sim.reserve_node();
    let server = build_endpoint(sim, stack, 1, sw, opts);
    sim.fill_node(server_link, Link::new(server.ingress, opts.propagation));
    let sport = switch.add_port(server_link, server_port_cfg);
    switch.learn(server.mac, sport);

    let mut clients = Vec::new();
    for i in 0..n_clients {
        let id = 2 + i;
        let clink = sim.reserve_node();
        let ep = build_endpoint(sim, stack, id, sw, opts);
        sim.fill_node(clink, Link::new(ep.ingress, opts.propagation));
        let p = switch.add_port(clink, PortConfig::default());
        switch.learn(ep.mac, p);
        clients.push(ep);
    }
    sim.fill_node(sw, switch);
    // everybody resolves everybody
    let all: Vec<(Ip4, MacAddr)> = std::iter::once((server.ip, server.mac))
        .chain(clients.iter().map(|c| (c.ip, c.mac)))
        .collect();
    for ep in clients.iter().chain(std::iter::once(&server)) {
        for &(ip, mac) in &all {
            if ip != ep.ip {
                add_arp(sim, ep, ip, mac);
            }
        }
    }
    (clients, server, sw)
}
