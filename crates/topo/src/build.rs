//! Fabric instantiation: turn a [`Scenario`] into a wired simulation —
//! switches with ECMP routing tables, bidirectional links, host
//! endpoints, full-mesh ARP, application nodes, kick-off events, and the
//! fault schedule.
//!
//! ```text
//!        spine0          spine1            ┐ routes: host ip → leaf port
//!       ╱  |  ╲  ╳      ╱  |  ╲            ┘ (single path down)
//!   leaf0  leaf1  leaf2  leaf3             ┐ local hosts: MAC table
//!    │ │    │ │    │ │    │ │              │ remote hosts: ECMP over
//!   h0 h1  h2 h3  h4 h5  h6 h7             ┘ all spine uplinks
//! ```
//!
//! Every switch gets its own ECMP hash salt drawn from the simulation's
//! seeded generator, so path selection is deterministic per seed but
//! decorrelated between switches (no fabric-wide polarization).

use flextoe_apps::{FramedServerApp, OpenLoopClientApp, SessionClientApp, StackApi};
use flextoe_netsim::{
    Collector, Link, SetFaults, SetLinkUp, SetPortUp, SetSwitchAlive, SetSwitchLimp, Switch,
};
use flextoe_sim::{NodeId, Sim, Tick, Time};
use flextoe_wire::{Ip4, MacAddr};

use crate::host::{add_arp, build_endpoint, Endpoint, Stack};
use crate::spec::{Fabric, FaultKind, FaultTarget, LinkClass, LinkScope, Role, Scenario};

/// `FramedServerApp` / `OpenLoopClientApp` over any stack (the builder
/// erases the stack type, like the bench harness's `DynServer`).
pub type DynFramedServer = FramedServerApp<Box<dyn StackApi>>;
pub type DynOpenLoopClient = OpenLoopClientApp<Box<dyn StackApi>>;
pub type DynSessionClient = SessionClientApp<Box<dyn StackApi>>;

/// What kind of application a built host ended up with (consumers select
/// client/server nodes by this instead of re-deriving the scenario's
/// host-layout convention).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuiltRole {
    Idle,
    Server,
    Client,
    /// A reconnecting session client ([`DynSessionClient`]).
    Session,
}

/// Wiring record for one bidirectional switch↔switch connection: which
/// switch/port feeds which link node. Hard fault events resolve through
/// these so a link going down also marks the feeding port dead (and ECMP
/// finalization stops hashing onto it).
#[derive(Clone, Copy, Debug)]
pub struct FabricPair {
    /// Switch indices (into [`BuiltFabric::switches`]).
    pub a: usize,
    pub b: usize,
    /// Port on `a` feeding `l_ab`, port on `b` feeding `l_ba`.
    pub port_a: usize,
    pub port_b: usize,
    /// Link nodes a→b and b→a.
    pub l_ab: NodeId,
    pub l_ba: NodeId,
}

/// Wiring record for one host's edge attachment.
#[derive(Clone, Copy, Debug)]
pub struct EdgeRec {
    pub host: usize,
    /// Index of the edge switch (into [`BuiltFabric::switches`]).
    pub edge: usize,
    /// Host→switch link node.
    pub uplink: NodeId,
    /// Switch→host link node and the edge-switch port feeding it.
    pub downlink: NodeId,
    pub down_port: usize,
}

pub struct BuiltHost {
    pub ep: Endpoint,
    pub stack: Stack,
    /// The host's application node, if its role has one.
    pub app: Option<NodeId>,
    pub role: BuiltRole,
    /// Index into [`BuiltFabric::switches`] of the host's edge switch.
    pub edge_switch: usize,
}

impl BuiltHost {
    /// The open-loop client node, if this host runs one.
    pub fn client(&self) -> Option<NodeId> {
        (self.role == BuiltRole::Client)
            .then_some(self.app)
            .flatten()
    }

    /// The reconnecting session-client node, if this host runs one.
    pub fn session(&self) -> Option<NodeId> {
        (self.role == BuiltRole::Session)
            .then_some(self.app)
            .flatten()
    }
}

/// A fully wired fabric. Switch order: leaf-spine lists leaves then
/// spines; fat-tree lists edges (pod-major), then aggregations
/// (pod-major), then cores.
pub struct BuiltFabric {
    pub hosts: Vec<BuiltHost>,
    pub switches: Vec<NodeId>,
    /// Host↔edge-switch links (both directions).
    pub edge_links: Vec<NodeId>,
    /// Switch↔switch links (both directions).
    pub fabric_links: Vec<NodeId>,
    /// Switch↔switch wiring records, in wiring order —
    /// `FaultTarget::FabricLink { index }` indexes this list.
    pub fabric_pairs: Vec<FabricPair>,
    /// Per-host edge wiring records (one per host, host order).
    pub edge_recs: Vec<EdgeRec>,
    /// The telemetry collector node, when the scenario wires a
    /// telemetry plane ([`crate::spec::Scenario::telemetry`]).
    pub collector: Option<NodeId>,
}

impl BuiltFabric {
    pub fn host_ips(&self) -> Vec<Ip4> {
        self.hosts.iter().map(|h| h.ep.ip).collect()
    }
}

/// In-flight switch state while the topology is being wired (the node id
/// is reserved up front because links point at switches and vice versa).
struct Sw {
    node: NodeId,
    sw: Switch,
}

fn make_switches(sim: &mut Sim, count: usize) -> Vec<Sw> {
    (0..count)
        .map(|_| {
            let node = sim.reserve_node();
            let mut sw = Switch::new();
            // key the ECMP hash off the sim's seeded xoshiro stream: one
            // salt per switch, drawn in wiring order
            sw.set_ecmp_salt(sim.rng.next_u64());
            Sw { node, sw }
        })
        .collect()
}

/// Bidirectional switch↔switch connection; returns the port ids
/// `(on_a, on_b)` and records the two link nodes.
fn connect_switches(
    sim: &mut Sim,
    switches: &mut [Sw],
    a: usize,
    b: usize,
    class: &LinkClass,
    links: &mut Vec<NodeId>,
    pairs: &mut Vec<FabricPair>,
) -> (usize, usize) {
    let l_ab = sim.reserve_node();
    let l_ba = sim.reserve_node();
    let pa = switches[a].sw.add_port(l_ab, class.port);
    let pb = switches[b].sw.add_port(l_ba, class.port);
    sim.fill_node(
        l_ab,
        Link::with_faults(switches[b].node, class.propagation, class.faults),
    );
    sim.fill_node(
        l_ba,
        Link::with_faults(switches[a].node, class.propagation, class.faults),
    );
    links.push(l_ab);
    links.push(l_ba);
    pairs.push(FabricPair {
        a,
        b,
        port_a: pa,
        port_b: pb,
        l_ab,
        l_ba,
    });
    (pa, pb)
}

/// Attach every host to its edge switch (uplink + downlink links, MAC
/// learning). Returns endpoints and the edge link nodes.
fn attach_hosts(
    sim: &mut Sim,
    sc: &Scenario,
    edge_of_host: &[usize],
    switches: &mut [Sw],
) -> (Vec<Endpoint>, Vec<NodeId>, Vec<EdgeRec>) {
    let class = &sc.links.edge;
    let mut eps = Vec::new();
    let mut links = Vec::new();
    let mut recs = Vec::new();
    for (i, spec) in sc.hosts.iter().enumerate() {
        let edge = edge_of_host[i];
        let uplink = sim.reserve_node();
        let ep = build_endpoint(sim, spec.stack, (i + 1) as u8, uplink, &sc.opts);
        sim.fill_node(
            uplink,
            Link::with_faults(switches[edge].node, class.propagation, class.faults),
        );
        let downlink = sim.reserve_node();
        let port = switches[edge].sw.add_port(downlink, class.port);
        switches[edge].sw.learn(ep.mac, port);
        sim.fill_node(
            downlink,
            Link::with_faults(ep.ingress, class.propagation, class.faults),
        );
        links.push(uplink);
        links.push(downlink);
        recs.push(EdgeRec {
            host: i,
            edge,
            uplink,
            downlink,
            down_port: port,
        });
        eps.push(ep);
    }
    (eps, links, recs)
}

/// ARP full mesh, app instantiation, kick-off events, fault schedule —
/// everything downstream of the wiring, shared by both fabric shapes.
#[allow(clippy::too_many_arguments)]
fn finalize(
    sim: &mut Sim,
    sc: &Scenario,
    eps: Vec<Endpoint>,
    edge_of_host: Vec<usize>,
    mut switches: Vec<Sw>,
    edge_links: Vec<NodeId>,
    fabric_links: Vec<NodeId>,
    fabric_pairs: Vec<FabricPair>,
    edge_recs: Vec<EdgeRec>,
) -> BuiltFabric {
    let switch_ids: Vec<NodeId> = switches.iter().map(|s| s.node).collect();

    // Telemetry plane: a collector node, per-switch sketch state, and
    // pre-scheduled epoch sweeps (pre-scheduled so an idle fabric still
    // terminates — the collector never self-wakes). Everything here is
    // conditional on the knob: a telemetry-less scenario reserves no
    // node and draws nothing from the RNG, keeping existing fabrics
    // byte-identical.
    let mut collector = None;
    if let Some(tel) = &sc.telemetry {
        let col_node = sim.reserve_node();
        for (i, s) in switches.iter_mut().enumerate() {
            s.sw.enable_telemetry(i as u32, col_node, tel);
        }
        sim.fill_node(col_node, Collector::new(*tel, switch_ids.clone()));
        for k in 1..=tel.sweeps {
            sim.schedule(Time::ZERO + tel.epoch * k as u64, col_node, Tick);
        }
        collector = Some(col_node);
    }

    for s in switches {
        sim.fill_node(s.node, s.sw);
    }

    // every host resolves every other host
    let all: Vec<(Ip4, MacAddr)> = eps.iter().map(|e| (e.ip, e.mac)).collect();
    for ep in &eps {
        for &(ip, mac) in &all {
            if ip != ep.ip {
                add_arp(sim, ep, ip, mac);
            }
        }
    }

    // applications
    let mut hosts = Vec::new();
    let mut n_clients = 0u64;
    for ((i, spec), ep) in sc.hosts.iter().enumerate().zip(eps) {
        let (app, role) = match &spec.role {
            Role::Idle => (None, BuiltRole::Idle),
            Role::FramedServer(cfg) => {
                let node = sim.add_node(DynFramedServer::new(*cfg, ep.stack_init(spec.stack, 1)));
                sim.schedule(Time::ZERO, node, Tick);
                (Some(node), BuiltRole::Server)
            }
            Role::OpenLoop { cfg, target } => {
                assert!(*target < sc.hosts.len(), "client target out of range");
                assert_ne!(*target, i, "client targeting itself");
                let mut cfg = *cfg;
                cfg.server_ip = Ip4::host((*target + 1) as u8);
                // the target's address is authoritative — port included,
                // so a reconfigured server port can't silently strand
                // every connect on the default
                if let Role::FramedServer(scfg) = &sc.hosts[*target].role {
                    cfg.server_port = scfg.port;
                }
                let node = sim.add_node(DynOpenLoopClient::new(cfg, ep.stack_init(spec.stack, 1)));
                sim.schedule(sc.client_start + sc.client_stagger * n_clients, node, Tick);
                n_clients += 1;
                (Some(node), BuiltRole::Client)
            }
            Role::Session { cfg, target } => {
                assert!(*target < sc.hosts.len(), "session target out of range");
                assert_ne!(*target, i, "session client targeting itself");
                let mut cfg = *cfg;
                cfg.server_ip = Ip4::host((*target + 1) as u8);
                if let Role::FramedServer(scfg) = &sc.hosts[*target].role {
                    cfg.server_port = scfg.port;
                }
                let node = sim.add_node(DynSessionClient::new(cfg, ep.stack_init(spec.stack, 1)));
                sim.schedule(sc.client_start + sc.client_stagger * n_clients, node, Tick);
                n_clients += 1;
                (Some(node), BuiltRole::Session)
            }
        };
        hosts.push(BuiltHost {
            ep,
            stack: spec.stack,
            app,
            role,
            edge_switch: edge_of_host[i],
        });
    }

    // Fault schedule. Same-timestamp events must apply in a deterministic
    // order: sort by (at, schedule index) — the event wheel preserves
    // enqueue order within a timestamp, so scheduling in this order fixes
    // the application order of flap trains touching one target at one
    // instant. Overlapping targets are last-writer-wins; healing is
    // always an explicit scheduled `Up`/`Degrade(default)` event.
    let mut schedule: Vec<(usize, &crate::spec::FaultEvent)> =
        sc.fault_schedule.iter().enumerate().collect();
    schedule.sort_by_key(|&(i, ev)| (ev.at, i));
    for (_, ev) in schedule {
        apply_fault_event(sim, ev, &switch_ids, &fabric_pairs, &edge_recs);
    }

    BuiltFabric {
        hosts,
        switches: switch_ids,
        edge_links,
        fabric_links,
        fabric_pairs,
        edge_recs,
        collector,
    }
}

/// Expand one [`crate::spec::FaultEvent`] into the admin messages the
/// netsim nodes understand: `SetFaults` for probabilistic degradation,
/// `SetLinkUp` + `SetPortUp` for hard link state (the feeding switch port
/// dies with its link so ECMP finalization excludes it), and
/// `SetSwitchAlive` + neighbor `SetPortUp` for switch kill/heal.
fn apply_fault_event(
    sim: &mut Sim,
    ev: &crate::spec::FaultEvent,
    switch_ids: &[NodeId],
    fabric_pairs: &[FabricPair],
    edge_recs: &[EdgeRec],
) {
    // (link node, Some((switch node, port)) feeding it) sets per target
    let scope_links = |scope: LinkScope| -> Vec<(NodeId, Option<(NodeId, usize)>)> {
        let edge = edge_recs.iter().flat_map(|r| {
            [
                (r.uplink, None), // host→switch: the NIC has no port health
                (r.downlink, Some((switch_ids[r.edge], r.down_port))),
            ]
        });
        let fabric = fabric_pairs.iter().flat_map(|p| {
            [
                (p.l_ab, Some((switch_ids[p.a], p.port_a))),
                (p.l_ba, Some((switch_ids[p.b], p.port_b))),
            ]
        });
        match scope {
            LinkScope::Edge => edge.collect(),
            LinkScope::Fabric => fabric.collect(),
            LinkScope::All => edge.chain(fabric).collect(),
        }
    };
    let targets: Vec<(NodeId, Option<(NodeId, usize)>)> = match ev.target {
        FaultTarget::Links(scope) => scope_links(scope),
        FaultTarget::EdgeLink { host } => {
            let r = edge_recs[host];
            vec![
                (r.uplink, None),
                (r.downlink, Some((switch_ids[r.edge], r.down_port))),
            ]
        }
        FaultTarget::FabricLink { index } => {
            let p = fabric_pairs[index];
            vec![
                (p.l_ab, Some((switch_ids[p.a], p.port_a))),
                (p.l_ba, Some((switch_ids[p.b], p.port_b))),
            ]
        }
        FaultTarget::Switch { index } => {
            let alive = match ev.kind {
                FaultKind::Up => true,
                FaultKind::Down => false,
                FaultKind::Degrade(_) => {
                    panic!("FaultKind::Degrade needs a link target, not a switch")
                }
                FaultKind::Limp { factor } => {
                    // gray: the switch keeps forwarding, just slower —
                    // neighbor ports stay up so ECMP keeps hashing onto it
                    sim.schedule(ev.at, switch_ids[index], SetSwitchLimp(factor));
                    return;
                }
            };
            sim.schedule(ev.at, switch_ids[index], SetSwitchAlive(alive));
            // every neighbor's facing port follows the switch state, so
            // surviving switches reroute/blackhole instead of queueing
            // onto a dead path; attached hosts' links stay up (frames
            // reaching the dead switch are dropped and counted there)
            for p in fabric_pairs {
                if p.a == index {
                    sim.schedule(
                        ev.at,
                        switch_ids[p.b],
                        SetPortUp {
                            port: p.port_b,
                            up: alive,
                        },
                    );
                } else if p.b == index {
                    sim.schedule(
                        ev.at,
                        switch_ids[p.a],
                        SetPortUp {
                            port: p.port_a,
                            up: alive,
                        },
                    );
                }
            }
            return;
        }
    };
    match ev.kind {
        FaultKind::Degrade(faults) => {
            for (link, _) in targets {
                sim.schedule(ev.at, link, SetFaults(faults));
            }
        }
        FaultKind::Down | FaultKind::Up => {
            let up = matches!(ev.kind, FaultKind::Up);
            for (link, feed) in targets {
                sim.schedule(ev.at, link, SetLinkUp(up));
                if let Some((sw, port)) = feed {
                    sim.schedule(ev.at, sw, SetPortUp { port, up });
                }
            }
        }
        FaultKind::Limp { .. } => {
            panic!("FaultKind::Limp needs a switch target; limp a link via Degrade + latency_mult")
        }
    }
}

/// Instantiate a scenario into `sim`. Panics on malformed specs (host
/// count mismatch, degenerate fabric shapes) — scenario bugs, not inputs.
pub fn build_fabric(sim: &mut Sim, sc: &Scenario) -> BuiltFabric {
    let n = sc.fabric.n_hosts();
    assert_eq!(
        sc.hosts.len(),
        n,
        "scenario must specify exactly one host per fabric slot"
    );
    assert!(n > 0 && n <= 250, "host id space is 1..=250");
    match sc.fabric {
        Fabric::LeafSpine {
            leaves,
            spines,
            hosts_per_leaf,
        } => build_leaf_spine(sim, sc, leaves, spines, hosts_per_leaf),
        Fabric::FatTree { k } => build_fat_tree(sim, sc, k),
    }
}

fn build_leaf_spine(
    sim: &mut Sim,
    sc: &Scenario,
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
) -> BuiltFabric {
    assert!(leaves >= 1 && spines >= 1 && hosts_per_leaf >= 1);
    let mut switches = make_switches(sim, leaves + spines);
    let mut fabric_links = Vec::new();
    let mut fabric_pairs = Vec::new();

    // leaf l ↔ spine s, remembering the uplink/downlink port ids
    let mut uplinks = vec![Vec::new(); leaves]; // leaf → its spine ports
    let mut downs = vec![vec![0usize; leaves]; spines]; // spine → leaf port
    for l in 0..leaves {
        for (s, down) in downs.iter_mut().enumerate() {
            let (pl, ps) = connect_switches(
                sim,
                &mut switches,
                l,
                leaves + s,
                &sc.links.fabric,
                &mut fabric_links,
                &mut fabric_pairs,
            );
            uplinks[l].push(pl);
            down[l] = ps;
        }
    }

    let edge_of_host: Vec<usize> = (0..sc.hosts.len()).map(|i| i / hosts_per_leaf).collect();
    let (eps, edge_links, edge_recs) = attach_hosts(sim, sc, &edge_of_host, &mut switches);

    // routes: leaves ECMP remote hosts over all spines; spines route each
    // host down its leaf
    for (i, ep) in eps.iter().enumerate() {
        let leaf = edge_of_host[i];
        for (l, sw) in switches.iter_mut().enumerate().take(leaves) {
            if l != leaf {
                sw.sw.route(ep.ip, uplinks[l].clone());
            }
        }
        for (s, down) in downs.iter().enumerate() {
            switches[leaves + s].sw.route(ep.ip, vec![down[leaf]]);
        }
    }

    finalize(
        sim,
        sc,
        eps,
        edge_of_host,
        switches,
        edge_links,
        fabric_links,
        fabric_pairs,
        edge_recs,
    )
}

fn build_fat_tree(sim: &mut Sim, sc: &Scenario, k: usize) -> BuiltFabric {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let n_edge = k * half;
    let n_agg = k * half;
    let n_core = half * half;
    // switch index layout: [edges (pod-major) | aggs (pod-major) | cores]
    let edge_idx = |pod: usize, e: usize| pod * half + e;
    let agg_idx = |pod: usize, a: usize| n_edge + pod * half + a;
    let core_idx = |c: usize| n_edge + n_agg + c;

    let mut switches = make_switches(sim, n_edge + n_agg + n_core);
    let mut fabric_links = Vec::new();
    let mut fabric_pairs = Vec::new();

    // edge(p,e) ↔ agg(p,a): full bipartite per pod
    let mut edge_up = vec![Vec::new(); n_edge]; // edge → agg ports
    let mut agg_down = vec![vec![0usize; half]; n_agg]; // agg → edge e port
    for p in 0..k {
        for e in 0..half {
            for a in 0..half {
                let (pe, pa) = connect_switches(
                    sim,
                    &mut switches,
                    edge_idx(p, e),
                    agg_idx(p, a),
                    &sc.links.fabric,
                    &mut fabric_links,
                    &mut fabric_pairs,
                );
                edge_up[edge_idx(p, e)].push(pe);
                agg_down[pod_local_agg(p, a, half)][e] = pa;
            }
        }
    }
    // agg(p,a) ↔ core group a: cores a*half..(a+1)*half
    let mut agg_up = vec![Vec::new(); n_agg]; // agg → core ports
    let mut core_down = vec![vec![0usize; k]; n_core]; // core → pod port
    for p in 0..k {
        for a in 0..half {
            for j in 0..half {
                let c = a * half + j;
                let (pa, pc) = connect_switches(
                    sim,
                    &mut switches,
                    agg_idx(p, a),
                    core_idx(c),
                    &sc.links.fabric,
                    &mut fabric_links,
                    &mut fabric_pairs,
                );
                agg_up[pod_local_agg(p, a, half)].push(pa);
                core_down[c][p] = pc;
            }
        }
    }

    // host i lives in pod i/(half²), under edge (i mod half²)/half
    let hosts_per_pod = half * half;
    let edge_of_host: Vec<usize> = (0..sc.hosts.len())
        .map(|i| edge_idx(i / hosts_per_pod, (i % hosts_per_pod) / half))
        .collect();
    let (eps, edge_links, edge_recs) = attach_hosts(sim, sc, &edge_of_host, &mut switches);

    for (i, ep) in eps.iter().enumerate() {
        let pod = i / hosts_per_pod;
        let edge = edge_of_host[i];
        // edges: every non-local host ECMPs over all pod aggregations
        for e in 0..n_edge {
            if e != edge {
                switches[e].sw.route(ep.ip, edge_up[e].clone());
            }
        }
        // aggregations: down within the pod, up (ECMP over cores) across
        let host_edge_local = (i % hosts_per_pod) / half;
        for p in 0..k {
            for a in 0..half {
                let gi = pod_local_agg(p, a, half);
                let sw = &mut switches[agg_idx(p, a)].sw;
                if p == pod {
                    sw.route(ep.ip, vec![agg_down[gi][host_edge_local]]);
                } else {
                    sw.route(ep.ip, agg_up[gi].clone());
                }
            }
        }
        // cores: straight down to the host's pod
        for c in 0..n_core {
            switches[core_idx(c)]
                .sw
                .route(ep.ip, vec![core_down[c][pod]]);
        }
    }

    finalize(
        sim,
        sc,
        eps,
        edge_of_host,
        switches,
        edge_links,
        fabric_links,
        fabric_pairs,
        edge_recs,
    )
}

/// Index into the pod-major aggregation-switch arrays.
fn pod_local_agg(pod: usize, a: usize, half: usize) -> usize {
    pod * half + a
}
