//! # flextoe-topo — declarative multi-host fabrics
//!
//! The paper's testbed is two hosts and one switch; its *claims* are about
//! scale. This crate closes that gap: a [`Scenario`] declares a complete
//! experiment — fabric shape (leaf-spine or fat-tree), per-host stack
//! choice, applications and traffic mix, link rates/latencies, fault
//! schedules — and [`build_fabric`] instantiates it into a `flextoe-sim`
//! simulation: switches with seeded-deterministic ECMP routing tables,
//! bidirectional links, host endpoints (FlexTOE NIC + control plane, or a
//! baseline stack), full-mesh ARP, application nodes, and kick-off events.
//!
//! The hand-wired point topologies the paper's tables use (`build_pair`,
//! `build_star`) live here too, shared with the bench harness.
//!
//! Determinism: all randomness — ECMP path selection included — flows from
//! the scenario seed, so two runs of the same `Scenario` produce
//! byte-identical results.

pub mod build;
pub mod host;
pub mod shard;
pub mod spec;

pub use build::{
    build_fabric, BuiltFabric, BuiltHost, BuiltRole, DynFramedServer, DynOpenLoopClient,
    DynSessionClient, EdgeRec, FabricPair,
};
pub use host::{add_arp, build_endpoint, build_pair, build_star, Endpoint, PairOpts, Stack};
pub use shard::partition_fabric;
pub use spec::{
    Fabric, FaultEvent, FaultKind, FaultTarget, HostSpec, LinkClass, LinkScope, LinkSpec, Role,
    Scenario,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_host_counts() {
        assert_eq!(
            Fabric::LeafSpine {
                leaves: 4,
                spines: 2,
                hosts_per_leaf: 2
            }
            .n_hosts(),
            8
        );
        assert_eq!(Fabric::FatTree { k: 4 }.n_hosts(), 16);
        assert_eq!(Fabric::FatTree { k: 8 }.n_hosts(), 128);
    }

    #[test]
    fn idle_scenario_is_well_formed() {
        let sc = Scenario::idle(
            1,
            Fabric::LeafSpine {
                leaves: 2,
                spines: 2,
                hosts_per_leaf: 1,
            },
            Stack::FlexToe,
        );
        assert_eq!(sc.hosts.len(), 2);
        let mut sim = flextoe_sim::Sim::new(sc.seed);
        let fab = build_fabric(&mut sim, &sc);
        assert_eq!(fab.hosts.len(), 2);
        assert_eq!(fab.switches.len(), 4);
        // 2 hosts × 2 links + 2 leaves × 2 spines × 2 directions
        assert_eq!(fab.edge_links.len(), 4);
        assert_eq!(fab.fabric_links.len(), 8);
        sim.run_until(flextoe_sim::Time::from_ms(1));
    }
}
