//! Fabric partitioner: cut a built fabric at link boundaries so it can
//! run as N conservative-PDES shards (see the `flextoe-shard` crate).
//!
//! The cut discipline keeps every *zero-lookahead* edge inside one
//! shard and only ever cuts at a link node's final delivery hop, which
//! carries the link's propagation delay:
//!
//! - A **host unit** — every node reserved between the host's uplink
//!   and downlink link nodes (NIC stages, control plane or baseline
//!   stack) plus its application node — is indivisible: app ↔ stack ↔
//!   NIC messaging is same-timestamp shared-state traffic.
//! - A **link node lives with its feeder** (the host for uplinks, the
//!   egress switch otherwise), so the only message that can cross a
//!   shard boundary is the link's `Frame` delivery, delayed by the
//!   link's propagation — which is exactly the conservative lookahead.
//! - Hosts take contiguous index blocks (`i * n_shards / n_hosts`), so
//!   a k=8 fat-tree across 8 shards is one pod per shard and the only
//!   cut links are pod↔core. Edge switches follow their first attached
//!   host; aggregation switches follow their pod; spines and cores are
//!   dealt round-robin.
//!
//! The telemetry plane is rejected under `n_shards > 1`: per-switch
//! sketch sweeps fan into the collector over non-link edges, which the
//! cut discipline cannot honor.

use flextoe_shard::Partition;
use flextoe_sim::{Duration, Sim};

use crate::build::BuiltFabric;
use crate::spec::{Fabric, Scenario};

/// Assign every node of a built fabric to one of `n_shards` shards.
/// Any `n_shards` in `1..=n_hosts` yields byte-identical results; the
/// choice only affects parallelism and sync overhead.
pub fn partition_fabric(sim: &Sim, sc: &Scenario, fab: &BuiltFabric, n_shards: usize) -> Partition {
    let n_hosts = fab.hosts.len();
    assert!(n_shards >= 1, "need at least one shard");
    assert!(
        n_shards <= n_hosts,
        "more shards ({n_shards}) than hosts ({n_hosts})"
    );
    assert!(
        fab.collector.is_none() || n_shards == 1,
        "telemetry plane is not shardable: sketch sweeps fan into the \
         collector over non-link edges"
    );

    let host_shard = |i: usize| (i * n_shards / n_hosts) as u32;
    let mut owner = vec![u32::MAX; sim.n_nodes()];

    // Host units: uplink link + everything reserved while building the
    // endpoint (attach_hosts reserves uplink, builds the endpoint, then
    // reserves downlink — so the unit is the contiguous id range).
    for rec in &fab.edge_recs {
        let s = host_shard(rec.host);
        owner[rec.uplink..rec.downlink].fill(s);
    }
    for (i, h) in fab.hosts.iter().enumerate() {
        if let Some(app) = h.app {
            owner[app] = host_shard(i);
        }
    }

    // Switches: edges follow their first attached host, the rest by
    // fabric-shape policy.
    let mut sw_shard = vec![u32::MAX; fab.switches.len()];
    for rec in &fab.edge_recs {
        if sw_shard[rec.edge] == u32::MAX {
            sw_shard[rec.edge] = host_shard(rec.host);
        }
    }
    match sc.fabric {
        Fabric::LeafSpine { leaves, spines, .. } => {
            for s in 0..spines {
                sw_shard[leaves + s] = (s % n_shards) as u32;
            }
        }
        Fabric::FatTree { k } => {
            let half = k / 2;
            let n_edge = k * half;
            for p in 0..k {
                let pod_shard = sw_shard[p * half];
                for a in 0..half {
                    sw_shard[n_edge + p * half + a] = pod_shard;
                }
            }
            for c in 0..half * half {
                sw_shard[2 * n_edge + c] = (c % n_shards) as u32;
            }
        }
    }
    for (i, &node) in fab.switches.iter().enumerate() {
        assert_ne!(sw_shard[i], u32::MAX, "switch {i} unassigned");
        owner[node] = sw_shard[i];
    }

    // Link nodes live with their feeder.
    for rec in &fab.edge_recs {
        owner[rec.downlink] = sw_shard[rec.edge];
    }
    for p in &fab.fabric_pairs {
        owner[p.l_ab] = sw_shard[p.a];
        owner[p.l_ba] = sw_shard[p.b];
    }
    if let Some(col) = fab.collector {
        owner[col] = 0; // only reachable with n_shards == 1 (asserted)
    }

    assert!(
        owner.iter().all(|&s| (s as usize) < n_shards),
        "partition left nodes unassigned"
    );

    let lookahead = sc.links.edge.propagation.min(sc.links.fabric.propagation);
    assert!(
        lookahead > Duration::ZERO,
        "cut links need nonzero propagation to provide lookahead"
    );
    Partition { owner, lookahead }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_fabric;
    use crate::host::Stack;

    fn partition_of(fabric: Fabric, n_shards: usize) -> (Partition, BuiltFabric) {
        let sc = Scenario::idle(1, fabric, Stack::FlexToe);
        let mut sim = Sim::new(sc.seed);
        let fab = build_fabric(&mut sim, &sc);
        (partition_fabric(&sim, &sc, &fab, n_shards), fab)
    }

    #[test]
    fn leaf_spine_partition_covers_everything() {
        let fabric = Fabric::LeafSpine {
            leaves: 4,
            spines: 2,
            hosts_per_leaf: 2,
        };
        for n in [1, 2, 4, 8] {
            let (p, fab) = partition_of(fabric, n);
            // every shard owns at least one host unit
            let mut seen = vec![false; n];
            for rec in &fab.edge_recs {
                seen[p.owner[rec.uplink] as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "{n} shards: empty shard");
            assert_eq!(p.lookahead, Duration::from_ns(500));
        }
    }

    #[test]
    fn fat_tree_k4_pods_stay_whole_at_4_shards() {
        let (p, fab) = partition_of(Fabric::FatTree { k: 4 }, 4);
        // 16 hosts, 4 pods: one pod per shard, so a pod's edge + agg
        // switches and its hosts all share a shard.
        let half = 2;
        for pod in 0..4 {
            let s = p.owner[fab.switches[pod * half]];
            for e in 0..half {
                assert_eq!(p.owner[fab.switches[pod * half + e]], s);
                assert_eq!(p.owner[fab.switches[8 + pod * half + e]], s);
            }
            for h in pod * 4..(pod + 1) * 4 {
                assert_eq!(p.owner[fab.edge_recs[h].uplink], s);
            }
        }
    }

    #[test]
    fn link_nodes_follow_their_feeder() {
        let (p, fab) = partition_of(
            Fabric::LeafSpine {
                leaves: 2,
                spines: 2,
                hosts_per_leaf: 2,
            },
            4,
        );
        for pair in &fab.fabric_pairs {
            assert_eq!(p.owner[pair.l_ab], p.owner[fab.switches[pair.a]]);
            assert_eq!(p.owner[pair.l_ba], p.owner[fab.switches[pair.b]]);
        }
        for rec in &fab.edge_recs {
            assert_eq!(
                p.owner[rec.downlink], p.owner[fab.switches[rec.edge]],
                "downlink is fed by the edge switch"
            );
            assert_eq!(
                p.owner[rec.uplink],
                p.owner[rec.uplink + 1],
                "uplink is fed by the host"
            );
        }
    }
}
