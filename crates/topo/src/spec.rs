//! The declarative scenario spec: a complete multi-host experiment —
//! fabric shape, per-host stack choice, applications and traffic mix,
//! link rates/latencies, and fault schedules — as one value handed to
//! [`crate::build_fabric`]. Everything downstream (switch wiring, ECMP
//! routing tables, ARP, app nodes, kick-off events) is derived from it,
//! in the simulator-composition style of the NS-2 tutorials: describe the
//! scenario, let the builder instantiate it.

use flextoe_apps::{FramedServerConfig, OpenLoopConfig, SessionConfig};
use flextoe_netsim::{Faults, PortConfig, TelemetrySpec};
use flextoe_sim::{Duration, Time};

use crate::host::{PairOpts, Stack};

/// Fabric shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fabric {
    /// Two-tier Clos: every leaf connects to every spine; hosts hang off
    /// leaves. Flows between leaves spread across spines by ECMP.
    LeafSpine {
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
    },
    /// Three-tier k-ary fat-tree (k even): k pods of k/2 edge + k/2
    /// aggregation switches, (k/2)² core switches, k³/4 hosts.
    FatTree { k: usize },
}

impl Fabric {
    /// Number of hosts this fabric attaches.
    pub fn n_hosts(&self) -> usize {
        match *self {
            Fabric::LeafSpine {
                leaves,
                hosts_per_leaf,
                ..
            } => leaves * hosts_per_leaf,
            Fabric::FatTree { k } => k * k * k / 4,
        }
    }
}

/// What a host does in the scenario.
pub enum Role {
    /// Attached but idle (background state pressure, future workloads).
    Idle,
    /// Serves the framed open-loop RPC protocol.
    FramedServer(FramedServerConfig),
    /// Generates open-loop traffic at `cfg` toward host `target` (a host
    /// index into [`Scenario::hosts`]; the builder fills `cfg.server_ip`).
    OpenLoop { cfg: OpenLoopConfig, target: usize },
    /// A reconnecting session client toward host `target`: long-lived
    /// closed-loop sessions that back off (seeded exponential + jitter)
    /// and reconnect after aborts — the reconnection-storm workload.
    Session { cfg: SessionConfig, target: usize },
}

/// One host: its transport stack and its application.
pub struct HostSpec {
    pub stack: Stack,
    pub role: Role,
}

impl HostSpec {
    pub fn idle(stack: Stack) -> HostSpec {
        HostSpec {
            stack,
            role: Role::Idle,
        }
    }
}

/// One class of links (edge = host↔leaf, fabric = switch↔switch).
#[derive(Clone, Copy, Debug)]
pub struct LinkClass {
    /// One-way propagation delay per link.
    pub propagation: Duration,
    /// Switch egress port configuration on this tier (rate, buffer, ECN,
    /// WRED).
    pub port: PortConfig,
    /// Initial fault model on the links.
    pub faults: Faults,
}

impl Default for LinkClass {
    fn default() -> Self {
        LinkClass {
            propagation: Duration::from_ns(500),
            port: PortConfig::default(),
            faults: Faults::default(),
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
pub struct LinkSpec {
    pub edge: LinkClass,
    pub fabric: LinkClass,
}

/// Which links a fault event applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkScope {
    Edge,
    Fabric,
    All,
}

/// What a fault event targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every link in a [`LinkScope`] (the probabilistic-degradation
    /// scope the `SetFaults` schedule has always used).
    Links(LinkScope),
    /// The bidirectional edge link pair of one host (by host index).
    EdgeLink { host: usize },
    /// One bidirectional fabric link (by index into the builder's
    /// fabric-link pair list — wiring order, see `BuiltFabric::fabric_pairs`).
    FabricLink { index: usize },
    /// A whole switch (by index into `BuiltFabric::switches`).
    Switch { index: usize },
}

/// What happens to the target.
#[derive(Clone, Copy, Debug)]
pub enum FaultKind {
    /// Probabilistic degradation: set the `Faults` model on the target
    /// links (`Faults::default()` heals). Only valid for link targets.
    Degrade(Faults),
    /// Hard failure: links go down (and the feeding switch ports are
    /// marked dead so ECMP stops hashing onto them); a switch target is
    /// killed outright (all its ports and attached links die with it).
    Down,
    /// Explicit heal of a prior `Down`. **Healing is never implicit** —
    /// a fault persists until a scheduled `Up` event restores it.
    Up,
    /// Gray failure: the target switch limps — every egress serializes
    /// `factor`× slower without the switch being dead. `Limp { factor: 1 }`
    /// heals. Only valid for switch targets (limping *links* are expressed
    /// as `Degrade` with `Faults::latency_mult`).
    Limp { factor: u32 },
}

/// A scheduled fault-plane change. Same-timestamp events apply in
/// schedule order: the builder sorts the schedule by `(at, index)` —
/// index being the position in [`Scenario::fault_schedule`] — so flap
/// trains touching the same target at one instant stay deterministic.
#[derive(Clone, Copy, Debug)]
pub struct FaultEvent {
    pub at: Time,
    pub target: FaultTarget,
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Probabilistic degradation of every link in `scope` (the
    /// historical schedule shape).
    pub fn degrade(at: Time, scope: LinkScope, faults: Faults) -> FaultEvent {
        FaultEvent {
            at,
            target: FaultTarget::Links(scope),
            kind: FaultKind::Degrade(faults),
        }
    }

    /// Hard-fail `target` at `at`.
    pub fn down(at: Time, target: FaultTarget) -> FaultEvent {
        FaultEvent {
            at,
            target,
            kind: FaultKind::Down,
        }
    }

    /// Explicitly heal `target` at `at`.
    pub fn up(at: Time, target: FaultTarget) -> FaultEvent {
        FaultEvent {
            at,
            target,
            kind: FaultKind::Up,
        }
    }

    /// Make switch `index` limp at `factor`× slower serialization from
    /// `at` (factor 1 heals).
    pub fn limp(at: Time, index: usize, factor: u32) -> FaultEvent {
        FaultEvent {
            at,
            target: FaultTarget::Switch { index },
            kind: FaultKind::Limp { factor },
        }
    }
}

/// A complete declarative scenario.
pub struct Scenario {
    /// Simulation seed — also salts every switch's ECMP hash, so path
    /// selection reruns byte-identically.
    pub seed: u64,
    pub fabric: Fabric,
    /// One spec per host; must have exactly `fabric.n_hosts()` entries.
    pub hosts: Vec<HostSpec>,
    pub links: LinkSpec,
    /// Transport options shared by all hosts (pipeline config, CC
    /// algorithm, fold, report cadence). The pair/star-only `propagation`
    /// and `faults` fields are ignored here — `links` governs the fabric.
    pub opts: PairOpts,
    /// Scheduled fault-plane changes: probabilistic degradation and hard
    /// link/switch down/up events. Applied in `(at, index)` order.
    pub fault_schedule: Vec<FaultEvent>,
    /// Sketch telemetry plane: `Some` wires per-switch fast-path
    /// sketches, a collector node, and pre-scheduled epoch sweeps.
    /// `None` (the default) builds the fabric byte-identically to a
    /// telemetry-less build — no extra nodes, no extra RNG draws.
    pub telemetry: Option<TelemetrySpec>,
    /// When client applications start (servers start at t = 0; clients
    /// are staggered one `client_stagger` apart from `client_start`).
    pub client_start: Time,
    pub client_stagger: Duration,
    /// How many conservative-PDES shards to run the scenario across
    /// (see `crate::partition_fabric` and the `flextoe-shard` crate).
    /// 1 (the default) runs the classic monolithic engine; any value
    /// produces byte-identical results by construction.
    pub shards: usize,
}

impl Scenario {
    /// A scenario with every host idle on `stack` — attach apps by
    /// editing `hosts`, or drive the endpoints directly from a test.
    pub fn idle(seed: u64, fabric: Fabric, stack: Stack) -> Scenario {
        Scenario {
            seed,
            fabric,
            hosts: (0..fabric.n_hosts())
                .map(|_| HostSpec::idle(stack))
                .collect(),
            links: LinkSpec::default(),
            opts: PairOpts::default(),
            fault_schedule: Vec::new(),
            telemetry: None,
            client_start: Time::from_us(20),
            client_stagger: Duration::from_us(1),
            shards: 1,
        }
    }
}
