//! Per-stack host-CPU cost models, calibrated to Table 1 (per-request
//! cycle breakdowns at 2 GHz) and Table 6 (TAS per-packet fast path).
//!
//! Category semantics:
//! * `per_packet_stack` — TCP/IP + driver cycles per data packet,
//!   executed on the stack's processing core (the *application* core for
//!   in-kernel stacks; dedicated fast-path cores for TAS).
//! * `sockets_per_op` — POSIX-sockets cycles per send/recv/poll, always on
//!   the application core.
//! * `other_per_req` — Table 1's "Other" row (mode switches, scheduling).

/// Which baseline a host-stack node models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackKind {
    /// In-kernel Linux TCP: bulky but robust (SACK-like reassembly).
    Linux,
    /// TAS: user-space fast path on dedicated cores; go-back-N.
    Tas,
    /// Chelsio Terminator TOE: TCP in NIC ASIC; kernel socket interface;
    /// drops all out-of-order segments.
    Chelsio,
    /// FlexTOE's Table 3 "Baseline": the same data-path run-to-completion
    /// on a single FPC, no pipelining.
    FlexBaselineFpc,
}

#[derive(Clone, Copy, Debug)]
pub struct StackCosts {
    /// TCP/IP + driver cycles per data packet on the stack core.
    pub per_packet_stack: u64,
    /// Memory-wait share of per-packet processing (overlappable on
    /// multi-threaded cores; stalls single-threaded ones).
    pub per_packet_mem: u64,
    /// Sockets cycles per send/recv call on the app core.
    pub sockets_send: u64,
    pub sockets_recv: u64,
    /// Readiness-poll cycles per round on the app core (Chelsio's epoll
    /// pain grows with connection count — see `poll_per_conn`).
    pub sockets_poll: u64,
    /// Additional poll cycles per open connection (epoll scan factor).
    pub poll_per_conn: u64,
    /// "Other" per request on the app core.
    pub other_per_req: u64,
    /// Kernel-lock contention: stack cycles multiply by
    /// `1 + contention * (cores - 1)` when the stack runs on n app cores.
    pub contention: f64,
}

/// Linux (Table 1): 12.13 kc/request total — driver 0.71, stack 4.25,
/// sockets 2.48, other 3.42. A memcached request is ~2 data packets +
/// 1 ACK at the server, so stack+driver ≈ 1.9 kc/packet.
pub const LINUX: StackCosts = StackCosts {
    per_packet_stack: 1900,
    per_packet_mem: 700,
    sockets_send: 1240,
    sockets_recv: 1240,
    sockets_poll: 600,
    poll_per_conn: 2,
    other_per_req: 3420,
    contention: 0.35,
};

/// TAS (Tables 1 and 6): fast path 1.44 kc + driver 0.18 kc per request on
/// dedicated cores; sockets 0.79 kc, other 0.09 kc on the app core.
pub const TAS: StackCosts = StackCosts {
    per_packet_stack: 640, // (1440+180)/2.5 packets
    per_packet_mem: 220,
    sockets_send: 395,
    sockets_recv: 395,
    sockets_poll: 90,
    poll_per_conn: 0,
    other_per_req: 90,
    contention: 0.0,
};

/// Chelsio (Table 1): host TCP cycles nearly gone (0.40 kc) but the
/// kernel interface stays: driver 1.28, sockets 2.61, other 3.28 kc.
/// The ASIC data path itself is fast (per-packet cost charged on the NIC
/// engine at 100 ns/packet equivalent).
pub const CHELSIO_HOST: StackCosts = StackCosts {
    per_packet_stack: 670, // (0.40+1.28) kc per ~2.5 packets
    per_packet_mem: 250,
    sockets_send: 1300,
    sockets_recv: 1300,
    sockets_poll: 900,
    poll_per_conn: 12, // epoll dominates at high connection counts (§5.2)
    other_per_req: 3280,
    contention: 0.25,
};

/// FlexTOE Table 3 Baseline: the entire TCP processing run-to-completion
/// on one 800 MHz FPC, including serialized PCIe waits. Cycle budget is
/// the sum of all pipeline-stage budgets (no overlap) plus descriptor
/// management.
pub const FLEX_BASELINE_FPC: StackCosts = StackCosts {
    per_packet_stack: 900,
    per_packet_mem: 2600, // every memory/PCIe wait fully exposed
    sockets_send: 280,
    sockets_recv: 280,
    sockets_poll: 220,
    poll_per_conn: 0,
    other_per_req: 40,
    contention: 0.0,
};

impl StackKind {
    pub fn costs(self) -> StackCosts {
        match self {
            StackKind::Linux => LINUX,
            StackKind::Tas => TAS,
            StackKind::Chelsio => CHELSIO_HOST,
            StackKind::FlexBaselineFpc => FLEX_BASELINE_FPC,
        }
    }

    /// Does TCP processing share the application core? (In-kernel stacks.)
    pub fn stack_on_app_core(self) -> bool {
        matches!(self, StackKind::Linux | StackKind::Chelsio)
    }

    pub fn name(self) -> &'static str {
        match self {
            StackKind::Linux => "linux",
            StackKind::Tas => "tas",
            StackKind::Chelsio => "chelsio",
            StackKind::FlexBaselineFpc => "flextoe-baseline",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_per_request_totals_roughly_match() {
        // request ≈ recv + send + poll + other (app core) + 2.5 packets of
        // stack processing. Check each stack's total against Table 1.
        let total = |c: &StackCosts| {
            c.sockets_send
                + c.sockets_recv
                + c.sockets_poll
                + c.other_per_req
                + (2.5 * c.per_packet_stack as f64) as u64
        };
        let linux = total(&LINUX) + 1260; // + app cycles (Table 1: 1.26 kc)
        assert!(
            (11_000..=13_500).contains(&linux),
            "linux {linux} vs 12.13 kc"
        );
        let tas = total(&TAS) + 850;
        assert!((3_000..=3_800).contains(&tas), "tas {tas} vs 3.34 kc");
        let chelsio = total(&CHELSIO_HOST) + 1310;
        assert!(
            (8_000..=9_800).contains(&chelsio),
            "chelsio {chelsio} vs 8.89 kc"
        );
    }

    #[test]
    fn host_tcp_cycles_ordering_matches_paper() {
        // Table 1 TCP/IP+driver rows: Linux 4.96 >> Chelsio 1.68 > TAS's
        // host share (TAS's stack cycles run on dedicated cores).
        const { assert!(LINUX.per_packet_stack > CHELSIO_HOST.per_packet_stack) };
        const { assert!(LINUX.per_packet_stack > TAS.per_packet_stack) };
    }

    #[test]
    fn kind_properties() {
        assert!(StackKind::Linux.stack_on_app_core());
        assert!(StackKind::Chelsio.stack_on_app_core());
        assert!(!StackKind::Tas.stack_on_app_core());
        assert_eq!(StackKind::Tas.name(), "tas");
    }
}
