//! The baseline host TCP engine: a complete run-to-completion TCP stack
//! (handshake, data path, recovery, AIMD congestion control) in one
//! simulation node, parameterized by [`StackKind`].
//!
//! The *protocol* logic reuses `flextoe_core::proto` — the same code the
//! FlexTOE protocol stage executes — so baselines interoperate with
//! FlexTOE on the wire byte-for-byte. The differences the paper measures
//! are expressed as policies:
//!
//! * **receiver reassembly** — one OOO interval (TAS / FlexTOE-baseline),
//!   multi-interval SACK-like (Linux), or drop-all-OOO (Chelsio, §5.3:
//!   "Chelsio has a very steep decline in throughput"),
//! * **sender retransmission** — go-back-N, or first-segment-only
//!   (NewReno-ish Linux: "more sophisticated reassembly and recovery"),
//! * **cost model** — per-packet cycles on the processing core
//!   ([`StackCosts`]), which is the application core for in-kernel stacks.

use flextoe_core::hostmem::{shared_buf, AppToNic, SharedBuf};
use flextoe_core::proto::{self, RxSummary};
use flextoe_core::ProtoState;
use flextoe_nfp::{Cost, FpcTimer};
use flextoe_sim::{try_cast, Ctx, Duration, FxHashMap, Msg, Node, NodeId, Tick, Time};
use flextoe_wire::{
    Ecn, FourTuple, Frame, Ip4, MacAddr, SegmentSpec, SegmentView, SeqNum, TcpFlags, TcpOptions,
    MSS_WITH_TS,
};

use crate::costs::{StackCosts, StackKind};
use crate::shared::{AppSock, HostConnect, HostListen, HostSyscall, HostWake, SharedAppSide};
use flextoe_apps::SockEvent;

const MSS: u32 = MSS_WITH_TS as u32;
const INIT_CWND: u32 = 10 * MSS;
const BUF_SIZE: u32 = 64 * 1024;
/// Max extra OOO intervals for the Linux receiver (plus the primary one).
const LINUX_INTERVALS: usize = 31;
/// SYN retransmission base timeout (doubles per attempt).
const SYN_RETRY_BASE: Duration = Duration::from_ms(5);
/// Total SYN transmissions before `ConnectFailed`.
const SYN_ATTEMPTS: u32 = 4;
/// Consecutive no-progress RTO firings before the stack aborts the
/// connection (RST + `SockEvent::Aborted`) instead of retrying forever.
const RTO_GIVE_UP: u32 = 8;

struct HostConn {
    ps: ProtoState,
    tuple_rx: FourTuple,
    peer_mac: MacAddr,
    rx_buf: SharedBuf,
    tx_buf: SharedBuf,
    side: SharedAppSide,
    app: NodeId,
    /// Peer's true advertised window (ps.remote_win is clamped by cwnd).
    peer_win: u16,
    cwnd: u32,
    ssthresh: u32,
    /// Extra reassembly intervals beyond the primary (Linux only).
    extra: Vec<(SeqNum, u32)>,
    // RTO state
    last_una: SeqNum,
    stall_since: Time,
    backoff: u32,
    srtt_us: u32,
    active: bool,
}

impl HostConn {
    fn clamp_window(&mut self) {
        let cwnd16 = self.cwnd.min(u16::MAX as u32) as u16;
        self.ps.remote_win = self.peer_win.min(cwnd16);
    }
}

struct PendingActive {
    iss: u32,
    local_port: u16,
    remote_ip: Ip4,
    remote_port: u16,
    opaque: u64,
    side: SharedAppSide,
    app: NodeId,
    /// When the most recent SYN went out (retry timer).
    sent_at: Time,
    /// SYNs transmitted so far (1 after the initial send).
    attempts: u32,
}

struct Listener {
    side: SharedAppSide,
    app: NodeId,
}

struct PendingPassive {
    iss: u32,
    port: u16,
}

/// Resume transmission after backpressure.
struct PumpTx {
    conn: u32,
}
flextoe_sim::custom_msg!(PumpTx);

pub struct HostStackNode {
    pub kind: StackKind,
    costs: StackCosts,
    clock: flextoe_sim::Clock,
    pub mac: MacAddr,
    pub ip: Ip4,
    link_out: NodeId,
    mac_bps: u64,
    mac_free: Time,
    /// Processing core(s) for TCP work.
    core: FpcTimer,
    /// Extra fixed latency per packet (Chelsio's ASIC pipeline).
    nic_latency: Duration,
    conns: Vec<Option<HostConn>>,
    lookup: FxHashMap<FourTuple, u32>,
    listeners: FxHashMap<u16, Listener>,
    active: FxHashMap<FourTuple, PendingActive>,
    passive: FxHashMap<FourTuple, PendingPassive>,
    arp: FxHashMap<Ip4, MacAddr>,
    next_port: u16,
    rto_armed: bool,
    /// Lock-contention multiplier (set by multi-core experiments).
    pub n_app_cores: u32,
    /// Payload-copy cycles per byte (socket-buffer copies; §E's
    /// TAS-nocopy variant sets this to zero).
    pub copy_cycles_per_byte: f64,
    pub rx_packets: u64,
    pub tx_packets: u64,
    pub retransmits: u64,
    pub established: u64,
    /// SYN retransmissions (connect-phase loss recovery).
    pub syn_retries: u64,
    /// Active opens abandoned after `SYN_ATTEMPTS` transmissions.
    pub connect_give_ups: u64,
    /// Established connections aborted after `RTO_GIVE_UP` RTOs.
    pub aborts: u64,
}

impl HostStackNode {
    pub fn new(kind: StackKind, mac: MacAddr, ip: Ip4, link_out: NodeId) -> Self {
        let (clock, threads, mac_bps, nic_latency) = match kind {
            StackKind::FlexBaselineFpc => (
                flextoe_sim::clocks::FPC_800MHZ,
                1,
                40_000_000_000,
                Duration::ZERO,
            ),
            StackKind::Chelsio => (
                flextoe_sim::clocks::HOST_2GHZ,
                1,
                100_000_000_000, // Terminator T62100: 100 Gbps
                Duration::from_us(2),
            ),
            _ => (
                flextoe_sim::clocks::HOST_2GHZ,
                1,
                40_000_000_000,
                Duration::ZERO,
            ),
        };
        HostStackNode {
            kind,
            costs: kind.costs(),
            clock,
            mac,
            ip,
            link_out,
            mac_bps,
            mac_free: Time::ZERO,
            core: FpcTimer::new(clock, threads),
            nic_latency,
            conns: Vec::new(),
            lookup: FxHashMap::default(),
            listeners: FxHashMap::default(),
            active: FxHashMap::default(),
            passive: FxHashMap::default(),
            arp: FxHashMap::default(),
            next_port: 42_000,
            rto_armed: false,
            n_app_cores: 1,
            copy_cycles_per_byte: 0.07,
            rx_packets: 0,
            tx_packets: 0,
            retransmits: 0,
            established: 0,
            syn_retries: 0,
            connect_give_ups: 0,
            aborts: 0,
        }
    }

    pub fn add_peer(&mut self, ip: Ip4, mac: MacAddr) {
        self.arp.insert(ip, mac);
    }

    /// Per-packet TCP processing cost with lock contention and the
    /// payload-length-dependent copy share.
    fn pkt_cost_len(&self, payload: usize) -> Cost {
        let scale = 1.0 + self.costs.contention * (self.n_app_cores.saturating_sub(1)) as f64;
        Cost::new(
            (self.costs.per_packet_stack as f64 * scale) as u64
                + (payload as f64 * self.copy_cycles_per_byte) as u64,
            self.costs.per_packet_mem,
        )
    }

    fn pkt_cost(&self) -> Cost {
        self.pkt_cost_len(0)
    }

    /// Re-platform this stack (Fig. 14 ports): change the processing
    /// clock and NIC rate.
    pub fn set_platform(&mut self, clock: flextoe_sim::Clock, mac_bps: u64) {
        self.clock = clock;
        self.core = FpcTimer::new(clock, 1);
        self.mac_bps = mac_bps;
    }

    fn charge(&mut self, now: Time, cost: Cost) -> Duration {
        let done = self.core.execute(now, cost);
        done.saturating_since(now)
    }

    /// Transmit a frame, serialized on the NIC at line rate. The frame
    /// arrives tagged with parse-once metadata by the spec that built it.
    fn emit(&mut self, ctx: &mut Ctx<'_>, after: Duration, frame: Frame) {
        self.tx_packets += 1;
        let bits = frame.len() as u64 * 8;
        let ser = Duration::from_ps(bits.saturating_mul(1_000_000_000_000) / self.mac_bps);
        let start = (ctx.now() + after + self.nic_latency).max(self.mac_free);
        self.mac_free = start + ser;
        ctx.send_at(self.link_out, self.mac_free, frame);
    }

    fn take(&mut self, id: u32) -> Option<HostConn> {
        self.conns.get_mut(id as usize)?.take()
    }

    fn put(&mut self, id: u32, c: HostConn) {
        self.conns[id as usize] = Some(c);
    }

    fn arm_rto(&mut self, ctx: &mut Ctx<'_>) {
        if !self.rto_armed {
            self.rto_armed = true;
            ctx.wake(Duration::from_ms(1), Tick);
        }
    }

    // ---- transmission -------------------------------------------------------

    fn pump_tx(&mut self, ctx: &mut Ctx<'_>, id: u32) {
        let Some(mut c) = self.take(id) else { return };
        let (my_mac, my_ip) = (self.mac, self.ip);
        let mut budget = 64;
        let now = ctx.now();
        let mut sent_any = false;
        loop {
            c.clamp_window();
            if budget == 0 {
                ctx.wake(Duration::from_us(1), PumpTx { conn: id });
                break;
            }
            let Some(seg) = proto::tx_next(&mut c.ps, MSS) else {
                break;
            };
            budget -= 1;
            sent_any = true;
            let payload = c.tx_buf.borrow().read_vec(seg.buf_pos, seg.len);
            let mut spec = spec_for(my_mac, my_ip, &c);
            spec.seq = seg.seq;
            spec.ack = seg.ack;
            spec.window = seg.window;
            spec.flags =
                TcpFlags::ACK | TcpFlags::PSH | if seg.fin { TcpFlags::FIN } else { TcpFlags(0) };
            spec.options = TcpOptions {
                timestamp: Some((now.as_us() as u32, seg.ts_echo)),
                ..Default::default()
            };
            spec.payload_len = payload.len();
            let frame = spec.emit_frame_into(ctx.pool.take(), |b| b.copy_from_slice(&payload));
            let cost = self.pkt_cost_len(payload.len());
            let d = self.charge(now, cost);
            self.emit(ctx, d, frame);
        }
        self.put(id, c);
        if sent_any {
            self.arm_rto(ctx);
        }
    }

    /// Retransmit after loss, per sender policy.
    fn retransmit(&mut self, ctx: &mut Ctx<'_>, id: u32, first_seg_only: bool) {
        self.retransmits += 1;
        let now = ctx.now();
        let Some(mut c) = self.take(id) else { return };
        let (my_mac, my_ip) = (self.mac, self.ip);
        if first_seg_only && c.ps.tx_sent > 0 {
            // NewReno-lite: resend only the first unacknowledged segment.
            let len = c.ps.tx_sent.min(MSS);
            let una = c.ps.snd_una();
            let pos = c.ps.tx_pos.wrapping_sub(c.ps.tx_sent);
            let payload = c.tx_buf.borrow().read_vec(pos, len);
            let mut spec = spec_for(my_mac, my_ip, &c);
            spec.seq = una;
            spec.ack = c.ps.ack;
            spec.window = proto::advertised_window(&c.ps);
            spec.flags = TcpFlags::ACK | TcpFlags::PSH;
            spec.options = TcpOptions {
                timestamp: Some((now.as_us() as u32, c.ps.next_ts)),
                ..Default::default()
            };
            spec.payload_len = payload.len();
            let frame = spec.emit_frame_into(ctx.pool.take(), |b| b.copy_from_slice(&payload));
            let cost = self.pkt_cost();
            let d = self.charge(now, cost);
            self.emit(ctx, d, frame);
            self.put(id, c);
        } else {
            proto::go_back_n(&mut c.ps);
            self.put(id, c);
            self.pump_tx(ctx, id);
        }
    }

    // ---- receive --------------------------------------------------------------

    fn on_data_segment(&mut self, ctx: &mut Ctx<'_>, id: u32, view: &SegmentView, frame: &[u8]) {
        let now = ctx.now();
        let kind = self.kind;
        let cost = self.pkt_cost_len(view.payload_len);
        let d = self.charge(now, cost);
        let Some(mut c) = self.take(id) else {
            return;
        };
        let c = &mut c;
        let mut sum = RxSummary {
            seq: view.seq,
            ack: view.ack,
            flags: view.flags,
            window: view.window,
            payload_len: view.payload_len as u32,
            tsval: view.tsval,
            tsecr: view.tsecr,
            has_ts: view.has_ts,
            ecn_ce: view.ecn.is_ce(),
        };
        // Track the peer's true window; cwnd clamping happens on send.
        if sum.flags.ack() {
            c.peer_win = sum.window;
        }

        // Chelsio: "RDMA-like" receiver — drop all out-of-order payload.
        if kind == StackKind::Chelsio && sum.payload_len > 0 && sum.seq.after(c.ps.ack) {
            sum.payload_len = 0; // process ACK side only
            sum.flags = TcpFlags(sum.flags.0 & !TcpFlags::FIN.0);
            let out = proto::rx_segment(&mut c.ps, &sum);
            let _ = out;
            // duplicate ACK to trigger sender retransmission
            let taken = std::mem::replace(c, dummy_conn());
            self.put(id, taken);
            self.send_ack(ctx, id, d, false);
            return;
        }

        let out = proto::rx_segment(&mut c.ps, &sum);
        let old_cwnd_acked = out.acked_bytes;

        // payload placement into the host receive buffer
        if let Some(p) = out.placement {
            let base = view.payload_off;
            let src = &frame[base + p.frame_off as usize..base + (p.frame_off + p.len) as usize];
            c.rx_buf.borrow_mut().write(p.buf_pos, src);
        }

        // Linux: absorb disjoint OOO segments into extra intervals.
        let mut delivered = out.delivered;
        let fin_delivered = out.fin_delivered;
        if kind == StackKind::Linux {
            if out.dropped && out.out_of_order && c.extra.len() < LINUX_INTERVALS {
                let seg_seq = sum.seq.max(c.ps.ack);
                let len = sum.payload_len - (seg_seq - sum.seq);
                let within = (seg_seq - c.ps.ack) + len <= c.ps.rx_avail;
                if len > 0 && within {
                    let pos = c.ps.rx_pos.wrapping_add(seg_seq - c.ps.ack);
                    let base = view.payload_off + (seg_seq - sum.seq) as usize;
                    c.rx_buf
                        .borrow_mut()
                        .write(pos, &frame[base..base + len as usize]);
                    merge_interval(&mut c.extra, seg_seq, len);
                }
            }
            // flush side intervals reachable from the new rcv_nxt
            #[allow(clippy::while_let_loop)]
            loop {
                let Some(idx) = c
                    .extra
                    .iter()
                    .position(|(s, l)| s.before_eq(c.ps.ack) && (*s + *l).after(c.ps.ack))
                else {
                    break;
                };
                let (s, l) = c.extra.remove(idx);
                let flush = (s + l) - c.ps.ack;
                c.ps.ack += flush;
                c.ps.rx_pos = c.ps.rx_pos.wrapping_add(flush);
                c.ps.rx_avail -= flush;
                delivered += flush;
            }
            c.extra.retain(|(s, l)| (*s + *l).after(c.ps.ack));
        }

        // AIMD congestion control
        if old_cwnd_acked > 0 {
            if c.cwnd < c.ssthresh {
                c.cwnd += old_cwnd_acked.min(MSS); // slow start
            } else {
                c.cwnd += (MSS as u64 * old_cwnd_acked as u64 / c.cwnd as u64) as u32;
            }
            c.cwnd = c.cwnd.min(BUF_SIZE);
            c.backoff = 0;
        }
        if let Some(tsecr) = out.rtt_sample_ts {
            let rtt = (now.as_us() as u32).wrapping_sub(tsecr);
            if rtt < 1_000_000 {
                c.srtt_us = if c.srtt_us == 0 {
                    rtt
                } else {
                    (c.srtt_us * 7 + rtt) / 8
                };
            }
        }
        let fast_retx = out.fast_retransmit;
        if fast_retx {
            c.ssthresh = (c.cwnd / 2).max(2 * MSS);
            c.cwnd = c.ssthresh;
        }

        // application notifications
        if delivered > 0 || fin_delivered || out.acked_bytes > 0 {
            let mut side = c.side.borrow_mut();
            if let Some(s) = side.socks.get_mut(&id) {
                if delivered > 0 {
                    s.rx_ready += delivered;
                }
                if out.acked_bytes > 0 {
                    s.tx_free += out.acked_bytes;
                }
            }
            drop(side);
            if delivered > 0 {
                wake_app(
                    ctx,
                    c,
                    d,
                    SockEvent::Readable {
                        conn: id,
                        available: delivered,
                    },
                );
            }
            if out.acked_bytes > 0 {
                wake_app(
                    ctx,
                    c,
                    d,
                    SockEvent::Writable {
                        conn: id,
                        free: out.acked_bytes,
                    },
                );
            }
            if fin_delivered {
                wake_app(ctx, c, d, SockEvent::Eof { conn: id });
            }
        }

        let taken = std::mem::replace(c, dummy_conn());
        self.put(id, taken);
        if out.send_ack {
            self.send_ack(ctx, id, d, out.ecn_echo);
        }
        if fast_retx {
            let first_only = kind == StackKind::Linux;
            self.retransmit(ctx, id, first_only);
        }
        // window/ack progress may allow more transmission
        self.pump_tx(ctx, id);
    }

    fn send_ack(&mut self, ctx: &mut Ctx<'_>, id: u32, after: Duration, ece: bool) {
        let now_us = ctx.now().as_us() as u32;
        let Some(c) = self.take(id) else {
            return;
        };
        let mut spec = spec_for(self.mac, self.ip, &c);
        spec.ecn = Ecn::NotEct;
        spec.seq = c.ps.seq;
        spec.ack = c.ps.ack;
        spec.window = proto::advertised_window(&c.ps);
        spec.flags = if ece {
            TcpFlags::ACK | TcpFlags::ECE
        } else {
            TcpFlags::ACK
        };
        spec.options = TcpOptions {
            timestamp: Some((now_us, c.ps.next_ts)),
            ..Default::default()
        };
        let frame = spec.emit_frame_into(ctx.pool.take(), |_| {});
        self.put(id, c);
        self.emit(ctx, after, frame);
    }

    // ---- handshake --------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn install(
        &mut self,
        peer_ip: Ip4,
        peer_port: u16,
        local_port: u16,
        iss: u32,
        peer_iss: u32,
        peer_win: u16,
        side: SharedAppSide,
        app: NodeId,
    ) -> u32 {
        let peer_mac = *self.arp.get(&peer_ip).expect("arp");
        let tuple_rx = FourTuple::new(peer_ip, peer_port, self.ip, local_port);
        let rx_buf = shared_buf(BUF_SIZE);
        let tx_buf = shared_buf(BUF_SIZE);
        let mut conn = HostConn {
            ps: ProtoState {
                seq: SeqNum(iss.wrapping_add(1)),
                ack: SeqNum(peer_iss.wrapping_add(1)),
                rx_avail: BUF_SIZE,
                remote_win: peer_win,
                ..Default::default()
            },
            tuple_rx,
            peer_mac,
            rx_buf: rx_buf.clone(),
            tx_buf: tx_buf.clone(),
            side: side.clone(),
            app,
            peer_win,
            cwnd: INIT_CWND,
            ssthresh: BUF_SIZE,
            extra: Vec::new(),
            last_una: SeqNum(iss.wrapping_add(1)),
            stall_since: Time::ZERO,
            backoff: 0,
            srtt_us: 0,
            active: true,
        };
        conn.clamp_window();
        let id = self
            .conns
            .iter()
            .position(|c| c.is_none())
            .unwrap_or(self.conns.len());
        if id == self.conns.len() {
            self.conns.push(None);
        }
        self.conns[id] = Some(conn);
        self.lookup.insert(tuple_rx, id as u32);
        side.borrow_mut().socks.insert(
            id as u32,
            AppSock {
                rx_buf,
                tx_buf,
                rx_pos: 0,
                rx_ready: 0,
                tx_pos: 0,
                tx_free: BUF_SIZE,
                closed: false,
            },
        );
        self.established += 1;
        id as u32
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: Frame) {
        self.rx_packets += 1;
        // frames still carrying emitter metadata are byte-identical to
        // what a trusted stack emitted: skip software checksum verify
        let verify = frame.meta.is_none();
        let frame = frame.bytes;
        let Ok(view) = SegmentView::parse(&frame, verify) else {
            return;
        };
        let tuple = view.four_tuple();
        if let Some(&id) = self.lookup.get(&tuple) {
            if view.flags.rst() {
                self.teardown(id);
                return;
            }
            if view.flags.is_datapath() {
                self.on_data_segment(ctx, id, &view, &frame);
                // payload has been copied into the socket buffer: the
                // frame's bytes go back to the sim-wide pool
                ctx.pool.put(frame);
                return;
            }
            return; // stray handshake segment for a live conn
        }
        let flags = view.flags;
        if flags.syn() && !flags.ack() {
            if let Some(listener) = self.listeners.get(&view.dst_port) {
                let iss = ctx.rng.next_u32();
                self.passive.insert(
                    tuple,
                    PendingPassive {
                        iss,
                        port: view.dst_port,
                    },
                );
                let _ = listener;
                let mut spec = SegmentSpec {
                    src_mac: self.mac,
                    dst_mac: view.src_mac,
                    src_ip: self.ip,
                    dst_ip: view.src_ip,
                    src_port: view.dst_port,
                    dst_port: view.src_port,
                    window: u16::MAX,
                    options: TcpOptions {
                        mss: Some(MSS as u16),
                        ..Default::default()
                    },
                    ..Default::default()
                };
                spec.seq = SeqNum(iss);
                spec.ack = view.seq + 1;
                spec.flags = TcpFlags::SYN | TcpFlags::ACK;
                let f = spec.emit_frame_into(ctx.pool.take(), |_| {});
                self.emit(ctx, Duration::ZERO, f);
            }
            return;
        }
        if flags.syn() && flags.ack() {
            if let Some(p) = self.active.remove(&tuple) {
                // final ACK
                let mut spec = SegmentSpec {
                    src_mac: self.mac,
                    dst_mac: view.src_mac,
                    src_ip: self.ip,
                    dst_ip: p.remote_ip,
                    src_port: p.local_port,
                    dst_port: p.remote_port,
                    window: u16::MAX,
                    ..Default::default()
                };
                spec.seq = SeqNum(p.iss.wrapping_add(1));
                spec.ack = view.seq + 1;
                spec.flags = TcpFlags::ACK;
                let f = spec.emit_frame_into(ctx.pool.take(), |_| {});
                self.emit(ctx, Duration::ZERO, f);
                let id = self.install(
                    p.remote_ip,
                    p.remote_port,
                    p.local_port,
                    p.iss,
                    view.seq.0,
                    view.window,
                    p.side.clone(),
                    p.app,
                );
                let c = self.conns[id as usize].as_ref().unwrap();
                wake_app(
                    ctx,
                    c,
                    Duration::ZERO,
                    SockEvent::Connected {
                        conn: id,
                        opaque: p.opaque,
                    },
                );
            }
            return;
        }
        if flags.ack() {
            if let Some(pp) = self.passive.remove(&tuple) {
                let listener = self.listeners.get(&pp.port).expect("listener");
                let (side, app) = (listener.side.clone(), listener.app);
                let id = self.install(
                    view.src_ip,
                    view.src_port,
                    view.dst_port,
                    pp.iss,
                    view.seq.0.wrapping_sub(1),
                    view.window,
                    side,
                    app,
                );
                let c = self.conns[id as usize].as_ref().unwrap();
                wake_app(
                    ctx,
                    c,
                    Duration::ZERO,
                    SockEvent::Accepted {
                        conn: id,
                        port: pp.port,
                        peer: (view.src_ip, view.src_port),
                    },
                );
                if view.payload_len > 0 || view.flags.fin() {
                    self.on_frame(ctx, Frame::raw(frame)); // replay: now an installed conn
                }
            }
        }
    }

    fn teardown(&mut self, id: u32) {
        if let Some(Some(c)) = self.conns.get_mut(id as usize) {
            c.active = false;
            let tuple = c.tuple_rx;
            self.conns[id as usize] = None;
            self.lookup.remove(&tuple);
        }
    }

    fn rto_scan(&mut self, ctx: &mut Ctx<'_>) {
        enum Action {
            Reclaim,
            Retx,
            Abort,
        }
        let now = ctx.now();
        let mut fire = Vec::new();
        for (id, slot) in self.conns.iter_mut().enumerate() {
            let Some(c) = slot else { continue };
            // fully closed -> reclaim
            if c.ps.fin_received && c.ps.fin_sent && !c.ps.fin_pending && c.ps.tx_sent == 0 {
                fire.push((id as u32, Action::Reclaim));
                continue;
            }
            if c.ps.tx_sent == 0 {
                c.backoff = 0;
                c.last_una = c.ps.snd_una();
                c.stall_since = now;
                continue;
            }
            let una = c.ps.snd_una();
            if una != c.last_una {
                c.last_una = una;
                c.stall_since = now;
                c.backoff = 0;
                continue;
            }
            let base = Duration::from_us(4 * c.srtt_us.max(250) as u64);
            let rto = base * (1 << c.backoff.min(6));
            if now.saturating_since(c.stall_since) >= rto {
                if c.backoff >= RTO_GIVE_UP {
                    // blackholed: the retry budget is spent
                    fire.push((id as u32, Action::Abort));
                    continue;
                }
                c.stall_since = now;
                c.backoff += 1;
                c.ssthresh = (c.cwnd / 2).max(2 * MSS);
                c.cwnd = 2 * MSS;
                fire.push((id as u32, Action::Retx));
            }
        }
        for (id, action) in fire {
            match action {
                Action::Reclaim => self.teardown(id),
                Action::Retx => self.retransmit(ctx, id, false), // RTO is always go-back-N
                Action::Abort => self.abort(ctx, id),
            }
        }
        self.syn_scan(ctx, now);
        if self.conns.iter().any(|c| c.is_some()) || !self.active.is_empty() {
            ctx.wake(Duration::from_ms(1), Tick);
        } else {
            self.rto_armed = false;
        }
    }

    /// Abort an established connection whose RTO budget is spent: RST the
    /// peer, surface [`SockEvent::Aborted`], reclaim the state.
    fn abort(&mut self, ctx: &mut Ctx<'_>, id: u32) {
        let Some(c) = self.take(id) else { return };
        self.aborts += 1;
        let mut spec = spec_for(self.mac, self.ip, &c);
        spec.seq = c.ps.seq;
        spec.ack = c.ps.ack;
        spec.flags = TcpFlags::RST | TcpFlags::ACK;
        let frame = spec.emit_frame_into(ctx.pool.take(), |_| {});
        if let Some(s) = c.side.borrow_mut().socks.get_mut(&id) {
            s.closed = true; // further send/recv are no-ops
        }
        wake_app(ctx, &c, Duration::ZERO, SockEvent::Aborted { conn: id });
        self.emit(ctx, Duration::ZERO, frame);
        // the slot is already vacated by `take`; drop the demux entry too
        self.lookup.remove(&c.tuple_rx);
    }

    /// Connect-phase loss recovery: retransmit unanswered SYNs with
    /// exponential backoff; after [`SYN_ATTEMPTS`] transmissions give up
    /// and surface `ConnectFailed`.
    fn syn_scan(&mut self, ctx: &mut Ctx<'_>, now: Time) {
        let mut retry = Vec::new();
        let mut give_up = Vec::new();
        for (tuple, p) in self.active.iter() {
            let timeout = SYN_RETRY_BASE * (1u64 << p.attempts.saturating_sub(1).min(5));
            if now.saturating_since(p.sent_at) >= timeout {
                if p.attempts >= SYN_ATTEMPTS {
                    give_up.push(*tuple);
                } else {
                    retry.push(*tuple);
                }
            }
        }
        for tuple in give_up {
            let p = self.active.remove(&tuple).unwrap();
            self.connect_give_ups += 1;
            p.side
                .borrow_mut()
                .events
                .push_back(SockEvent::ConnectFailed { opaque: p.opaque });
            ctx.send(p.app, Duration::from_us(1), HostWake);
        }
        for tuple in retry {
            let Some(&dst_mac) = self
                .active
                .get(&tuple)
                .and_then(|p| self.arp.get(&p.remote_ip))
            else {
                continue;
            };
            let p = self.active.get_mut(&tuple).unwrap();
            p.attempts += 1;
            p.sent_at = now;
            self.syn_retries += 1;
            let mut spec = SegmentSpec {
                src_mac: self.mac,
                dst_mac,
                src_ip: self.ip,
                dst_ip: p.remote_ip,
                src_port: p.local_port,
                dst_port: p.remote_port,
                window: u16::MAX,
                options: TcpOptions {
                    mss: Some(MSS as u16),
                    ..Default::default()
                },
                ..Default::default()
            };
            spec.seq = SeqNum(p.iss);
            spec.flags = TcpFlags::SYN;
            let f = spec.emit_frame_into(ctx.pool.take(), |_| {});
            self.emit(ctx, Duration::ZERO, f);
        }
    }

    fn on_syscall(&mut self, ctx: &mut Ctx<'_>, side: SharedAppSide) {
        let descs: Vec<AppToNic> = side.borrow_mut().to_stack.drain(..).collect();
        for desc in descs {
            match desc {
                AppToNic::TxAppend { conn, len } => {
                    if let Some(Some(c)) = self.conns.get_mut(conn as usize) {
                        proto::hc_tx_append(&mut c.ps, len);
                    }
                    self.pump_tx(ctx, conn);
                }
                AppToNic::RxConsumed { conn, len } => {
                    if let Some(Some(c)) = self.conns.get_mut(conn as usize) {
                        if proto::hc_rx_consumed(&mut c.ps, len, MSS) {
                            self.send_ack(ctx, conn, Duration::ZERO, false);
                        }
                    }
                }
                AppToNic::Close { conn } => {
                    if let Some(Some(c)) = self.conns.get_mut(conn as usize) {
                        proto::hc_close(&mut c.ps);
                    }
                    self.pump_tx(ctx, conn);
                }
                AppToNic::Retransmit { conn } => self.retransmit(ctx, conn, false),
            }
        }
    }
}

impl HostStackNode {
    fn deliver(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        // hot paths first: typed variants match without the repack boxes
        // the legacy try_cast chain below would pay
        let msg = match msg {
            Msg::Frame(frame) => {
                self.on_frame(ctx, frame);
                return;
            }
            Msg::Tick => {
                self.rto_scan(ctx);
                return;
            }
            m => m,
        };
        let msg = match try_cast::<HostSyscall>(msg) {
            Ok(s) => {
                self.on_syscall(ctx, s.side);
                return;
            }
            Err(m) => m,
        };
        let msg = match try_cast::<HostListen>(msg) {
            Ok(l) => {
                self.listeners.insert(
                    l.port,
                    Listener {
                        side: l.side,
                        app: l.app,
                    },
                );
                return;
            }
            Err(m) => m,
        };
        let msg = match try_cast::<HostConnect>(msg) {
            Ok(c) => {
                let local_port = self.next_port;
                self.next_port = self.next_port.wrapping_add(1).max(42_000);
                let iss = ctx.rng.next_u32();
                let Some(&dst_mac) = self.arp.get(&c.ip) else {
                    return;
                };
                let key = FourTuple::new(c.ip, c.port, self.ip, local_port);
                self.active.insert(
                    key,
                    PendingActive {
                        iss,
                        local_port,
                        remote_ip: c.ip,
                        remote_port: c.port,
                        opaque: c.opaque,
                        side: c.side,
                        app: c.app,
                        sent_at: ctx.now(),
                        attempts: 1,
                    },
                );
                let mut spec = SegmentSpec {
                    src_mac: self.mac,
                    dst_mac,
                    src_ip: self.ip,
                    dst_ip: c.ip,
                    src_port: local_port,
                    dst_port: c.port,
                    window: u16::MAX,
                    options: TcpOptions {
                        mss: Some(MSS as u16),
                        ..Default::default()
                    },
                    ..Default::default()
                };
                spec.seq = SeqNum(iss);
                spec.flags = TcpFlags::SYN;
                let f = spec.emit_frame_into(ctx.pool.take(), |_| {});
                self.emit(ctx, Duration::ZERO, f);
                self.arm_rto(ctx);
                return;
            }
            Err(m) => m,
        };
        let p = flextoe_sim::cast::<PumpTx>(msg);
        self.pump_tx(ctx, p.conn);
    }
}

impl Node for HostStackNode {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        self.deliver(ctx, msg);
    }

    // Trains of line-rate ingress frames coalesce through the default
    // `on_batch` loop (one node checkout, one Ctx); the per-frame demux
    // state is per-connection, so there is nothing to hoist per burst.

    fn name(&self) -> String {
        format!("hoststack-{}", self.kind.name())
    }
}

/// Placeholder used while a connection is checked out of the table.
fn dummy_conn() -> HostConn {
    HostConn {
        ps: ProtoState::default(),
        tuple_rx: FourTuple::new(Ip4(0), 0, Ip4(0), 0),
        peer_mac: MacAddr::ZERO,
        rx_buf: shared_buf(4),
        tx_buf: shared_buf(4),
        side: crate::shared::shared_app_side(),
        app: 0,
        peer_win: 0,
        cwnd: 0,
        ssthresh: 0,
        extra: Vec::new(),
        last_una: SeqNum(0),
        stall_since: Time::ZERO,
        backoff: 0,
        srtt_us: 0,
        active: false,
    }
}

fn spec_for(mac: MacAddr, ip: Ip4, conn: &HostConn) -> SegmentSpec {
    SegmentSpec {
        src_mac: mac,
        dst_mac: conn.peer_mac,
        src_ip: ip,
        dst_ip: conn.tuple_rx.src_ip,
        src_port: conn.tuple_rx.dst_port,
        dst_port: conn.tuple_rx.src_port,
        ecn: Ecn::Ect0,
        ..Default::default()
    }
}

fn wake_app(ctx: &mut Ctx<'_>, conn: &HostConn, after: Duration, ev: SockEvent) {
    conn.side.borrow_mut().events.push_back(ev);
    ctx.send(conn.app, after + Duration::from_us(1), HostWake);
}

/// Merge `[s, s+l)` into the side-interval list (overlap-coalescing).
fn merge_interval(list: &mut Vec<(SeqNum, u32)>, s: SeqNum, l: u32) {
    let mut new_s = s;
    let mut new_e = s + l;
    list.retain(|(is, il)| {
        let ie = *is + *il;
        if is.before_eq(new_e) && new_s.before_eq(ie) {
            new_s = new_s.min(*is);
            new_e = new_e.max(ie);
            false
        } else {
            true
        }
    });
    list.push((new_s, new_e - new_s));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_intervals_coalesces() {
        let mut l = Vec::new();
        merge_interval(&mut l, SeqNum(100), 50);
        merge_interval(&mut l, SeqNum(200), 50);
        assert_eq!(l.len(), 2);
        merge_interval(&mut l, SeqNum(150), 50); // bridges both
        assert_eq!(l.len(), 1);
        assert_eq!(l[0], (SeqNum(100), 150));
        // overlapping extension
        merge_interval(&mut l, SeqNum(240), 20);
        assert_eq!(l[0], (SeqNum(100), 160));
    }

    #[test]
    fn stack_kind_wiring() {
        let n = HostStackNode::new(StackKind::Chelsio, MacAddr::local(1), Ip4::host(1), 0);
        assert_eq!(n.mac_bps, 100_000_000_000, "Chelsio is a 100G NIC");
        assert_eq!(n.nic_latency, Duration::from_us(2));
        let n = HostStackNode::new(
            StackKind::FlexBaselineFpc,
            MacAddr::local(1),
            Ip4::host(1),
            0,
        );
        assert_eq!(n.clock.hz(), 800_000_000);
    }
}
