//! # flextoe-hoststack — the baseline TCP stacks (§2.1, §5)
//!
//! Linux, TAS, and the Chelsio Terminator TOE as interoperating simulation
//! models, plus FlexTOE's own Table 3 "Baseline" (the data-path
//! run-to-completion on one FPC). All share one TCP engine built on the
//! same `flextoe_core::proto` logic as the offloaded data-path, so every
//! stack speaks the same bytes on the wire; what differs is what the paper
//! measures — host cycle costs (Table 1), recovery policy (Fig. 15), NIC
//! capability (Chelsio's 100 Gbps streaming), and interface overheads
//! (Chelsio's epoll wall, Fig. 13).

pub mod costs;
pub mod engine;
pub mod shared;

use flextoe_sim::{Duration, NodeId, Sim};
use flextoe_wire::{Ip4, MacAddr};

pub use costs::{StackCosts, StackKind};
pub use engine::HostStackNode;
pub use shared::{shared_app_side, AppSide, HostSocketApi, SharedAppSide};

/// Build a baseline host (stack node) and return its node id. Apps attach
/// via [`host_socket_api`].
pub fn build_host(
    sim: &mut Sim,
    kind: StackKind,
    mac: MacAddr,
    ip: Ip4,
    link_out: NodeId,
) -> NodeId {
    sim.add_node(HostStackNode::new(kind, mac, ip, link_out))
}

/// Create the [`flextoe_apps::StackApi`] endpoint for an application node
/// attached to a baseline stack.
pub fn host_socket_api(kind: StackKind, stack_node: NodeId, app: NodeId) -> HostSocketApi {
    let syscall_latency = match kind {
        // in-kernel stacks pay a mode switch; user-level stacks poll shm
        StackKind::Linux | StackKind::Chelsio => Duration::from_ns(600),
        _ => Duration::from_ns(80),
    };
    HostSocketApi::new(
        shared_app_side(),
        stack_node,
        app,
        kind.costs(),
        kind.name(),
        syscall_latency,
    )
}
