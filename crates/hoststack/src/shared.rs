//! The application-side interface of a baseline host stack: shared-memory
//! state between the application node and the stack node, plus the
//! [`StackApi`] implementation so the same application binaries run
//! unmodified (§5 "We use identical application binaries across all
//! baselines").

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use flextoe_apps::{SockEvent, StackApi, StackOp};
use flextoe_core::hostmem::{AppToNic, SharedBuf};
use flextoe_sim::{try_cast, Ctx, Duration, Msg, NodeId};
use flextoe_wire::Ip4;

use crate::costs::StackCosts;

/// Application-side view of one socket.
pub struct AppSock {
    pub rx_buf: SharedBuf,
    pub tx_buf: SharedBuf,
    pub rx_pos: u32,
    pub rx_ready: u32,
    pub tx_pos: u32,
    pub tx_free: u32,
    pub closed: bool,
}

/// Shared between `HostSocketApi` (application node) and `HostStackNode`.
#[derive(Default)]
pub struct AppSide {
    pub events: VecDeque<SockEvent>,
    pub socks: HashMap<u32, AppSock>,
    pub to_stack: VecDeque<AppToNic>,
}

pub type SharedAppSide = Rc<RefCell<AppSide>>;

pub fn shared_app_side() -> SharedAppSide {
    Rc::new(RefCell::new(AppSide::default()))
}

// ---- messages app -> stack node ------------------------------------------

pub struct HostListen {
    pub port: u16,
    pub side: SharedAppSide,
    pub app: NodeId,
}
flextoe_sim::custom_msg!(HostListen);

pub struct HostConnect {
    pub ip: Ip4,
    pub port: u16,
    pub opaque: u64,
    pub side: SharedAppSide,
    pub app: NodeId,
}
flextoe_sim::custom_msg!(HostConnect);

/// "Syscall": descriptors are waiting in `to_stack`.
pub struct HostSyscall {
    pub side: SharedAppSide,
}
flextoe_sim::custom_msg!(HostSyscall);

/// Stack -> app: events are waiting (the baseline's epoll wakeup).
pub struct HostWake;
flextoe_sim::custom_msg!(HostWake);

/// The [`StackApi`] implementation for the baseline stacks.
pub struct HostSocketApi {
    pub side: SharedAppSide,
    stack_node: NodeId,
    app: NodeId,
    costs: StackCosts,
    name: &'static str,
    /// Syscall latency (mode switch) for in-kernel stacks.
    syscall_latency: Duration,
}

impl HostSocketApi {
    pub fn new(
        side: SharedAppSide,
        stack_node: NodeId,
        app: NodeId,
        costs: StackCosts,
        name: &'static str,
        syscall_latency: Duration,
    ) -> Self {
        HostSocketApi {
            side,
            stack_node,
            app,
            costs,
            name,
            syscall_latency,
        }
    }

    fn syscall(&self, ctx: &mut Ctx<'_>) {
        ctx.send(
            self.stack_node,
            self.syscall_latency,
            HostSyscall {
                side: self.side.clone(),
            },
        );
    }
}

impl StackApi for HostSocketApi {
    fn listen(&mut self, ctx: &mut Ctx<'_>, port: u16) {
        ctx.send(
            self.stack_node,
            self.syscall_latency,
            HostListen {
                port,
                side: self.side.clone(),
                app: self.app,
            },
        );
    }

    fn connect(&mut self, ctx: &mut Ctx<'_>, ip: Ip4, port: u16, opaque: u64) {
        ctx.send(
            self.stack_node,
            self.syscall_latency,
            HostConnect {
                ip,
                port,
                opaque,
                side: self.side.clone(),
                app: self.app,
            },
        );
    }

    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) -> Result<Vec<SockEvent>, Msg> {
        match try_cast::<HostWake>(msg) {
            Ok(_) => Ok(self.side.borrow_mut().events.drain(..).collect()),
            Err(m) => Err(m),
        }
    }

    fn send(&mut self, ctx: &mut Ctx<'_>, conn: u32, data: &[u8]) -> usize {
        let n = {
            let mut side = self.side.borrow_mut();
            let Some(s) = side.socks.get_mut(&conn) else {
                return 0;
            };
            if s.closed {
                return 0;
            }
            let n = (data.len() as u32).min(s.tx_free);
            if n == 0 {
                return 0;
            }
            s.tx_buf.borrow_mut().write(s.tx_pos, &data[..n as usize]);
            s.tx_pos = s.tx_pos.wrapping_add(n);
            s.tx_free -= n;
            side.to_stack.push_back(AppToNic::TxAppend { conn, len: n });
            n
        };
        self.syscall(ctx);
        n as usize
    }

    fn send_bytes(&mut self, ctx: &mut Ctx<'_>, conn: u32, len: u32) -> u32 {
        let n = {
            let mut side = self.side.borrow_mut();
            let Some(s) = side.socks.get_mut(&conn) else {
                return 0;
            };
            if s.closed {
                return 0;
            }
            let n = len.min(s.tx_free);
            if n == 0 {
                return 0;
            }
            s.tx_pos = s.tx_pos.wrapping_add(n);
            s.tx_free -= n;
            side.to_stack.push_back(AppToNic::TxAppend { conn, len: n });
            n
        };
        self.syscall(ctx);
        n
    }

    fn recv(&mut self, ctx: &mut Ctx<'_>, conn: u32, max: u32) -> Vec<u8> {
        let data = {
            let mut side = self.side.borrow_mut();
            let Some(s) = side.socks.get_mut(&conn) else {
                return Vec::new();
            };
            let n = s.rx_ready.min(max);
            if n == 0 {
                return Vec::new();
            }
            let data = s.rx_buf.borrow().read_vec(s.rx_pos, n);
            s.rx_pos = s.rx_pos.wrapping_add(n);
            s.rx_ready -= n;
            side.to_stack
                .push_back(AppToNic::RxConsumed { conn, len: n });
            data
        };
        self.syscall(ctx);
        data
    }

    fn recv_bytes(&mut self, ctx: &mut Ctx<'_>, conn: u32, max: u32) -> u32 {
        let n = {
            let mut side = self.side.borrow_mut();
            let Some(s) = side.socks.get_mut(&conn) else {
                return 0;
            };
            let n = s.rx_ready.min(max);
            if n == 0 {
                return 0;
            }
            s.rx_pos = s.rx_pos.wrapping_add(n);
            s.rx_ready -= n;
            side.to_stack
                .push_back(AppToNic::RxConsumed { conn, len: n });
            n
        };
        self.syscall(ctx);
        n
    }

    fn close(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        {
            let mut side = self.side.borrow_mut();
            let Some(s) = side.socks.get_mut(&conn) else {
                return;
            };
            if s.closed {
                return;
            }
            s.closed = true;
            side.to_stack.push_back(AppToNic::Close { conn });
        }
        self.syscall(ctx);
    }

    fn host_overhead(&self, op: StackOp) -> u64 {
        let n_conns = self.side.borrow().socks.len() as u64;
        match op {
            StackOp::Send => self.costs.sockets_send,
            StackOp::Recv => self.costs.sockets_recv,
            StackOp::Poll => {
                self.costs.sockets_poll
                    + self.costs.other_per_req
                    + self.costs.poll_per_conn * n_conns
            }
        }
    }

    fn stack_name(&self) -> &'static str {
        self.name
    }
}
