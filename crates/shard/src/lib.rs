//! # flextoe-shard — conservative-PDES sharding of one scenario
//!
//! Runs ONE scenario as N communicating [`Sim`] shards, one OS thread
//! each, synchronized with a **barrier-window** protocol (the
//! builder's-choice alternative to null messages — see ARCHITECTURE.md
//! "Sharded execution" for the full invariant list):
//!
//! 1. The coordinator computes `t` = the minimum next-event time across
//!    all shards and all in-flight cross-shard envelopes.
//! 2. Every shard is advanced to `window_end = min(deadline,
//!    t + lookahead − 1)` where `lookahead` is the minimum propagation
//!    delay of any cut link. Any event executed inside the window sits
//!    at time ≥ `t`, so a frame it sends across a cut arrives at
//!    ≥ `t + lookahead` > `window_end` — no shard can receive an event
//!    in its past, no matter how shards interleave within the window.
//! 3. Exports are collected, routed to their owner shard's pending
//!    queue, and shipped with the next `Advance`.
//!
//! Determinism contract: because every event (internal or imported)
//! carries the banded `(time, seq)` key the monolithic engine would
//! have assigned (see `flextoe_sim::engine` module docs), each shard's
//! delivery sequence is exactly the restriction of the monolithic
//! delivery sequence to the nodes it owns — byte-identical stats under
//! any partitioning, including the degenerate 1-shard cut.
//!
//! `Sim` is deliberately `!Send` (nodes are plain `Box<dyn Node>`), so
//! each worker thread *builds* its own full copy of the scenario from a
//! shared build closure, then masks ownership with [`Sim::set_owned`].
//! Build work is replicated, run work is partitioned.

use std::any::Any;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use flextoe_sim::{Duration, Envelope, Sim, Time};

// Envelopes cross thread boundaries; Frame is plain bytes + Copy meta.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Envelope>();
};

/// `ctx.halt()` fired inside a shard worker. Halting is a monolithic-only
/// facility: a local halt cannot be ordered against other shards'
/// events (the halting shard has no way to know whether an envelope in
/// flight would have preceded it), so sharded runs surface it as this
/// typed error instead of silently diverging — fuzzer schedules can't
/// hit undefined behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HaltUnsupported {
    /// Which shard halted.
    pub shard: usize,
    /// The barrier-window end at which the halt was observed.
    pub at: Time,
}

impl std::fmt::Display for HaltUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ctx.halt() is unsupported under sharding: shard {} halted at {} \
             and a local halt cannot be ordered against other shards' events",
            self.shard, self.at
        )
    }
}

impl std::error::Error for HaltUnsupported {}

/// How a fabric is cut across shards: `owner[node]` is the shard index
/// that runs the node, `lookahead` is the minimum propagation delay of
/// any link whose endpoints live on different shards (the conservative
/// synchronization window). Produced by `topo::partition_fabric`.
#[derive(Clone, Debug)]
pub struct Partition {
    pub owner: Vec<u32>,
    pub lookahead: Duration,
}

impl Partition {
    /// The trivial 1-shard partition (everything owned by shard 0).
    pub fn monolithic(n_nodes: usize) -> Partition {
        Partition {
            owner: vec![0; n_nodes],
            lookahead: Duration::from_ns(1),
        }
    }
}

/// Deterministic + wall-clock synchronization counters for one sharded
/// run. `windows` and `envelopes` depend only on the event schedule and
/// partition (identical across repeat runs); `blocked_ns` is wall time
/// each worker spent parked waiting for its next command and belongs in
/// the strippable wall block of any BENCH artifact.
#[derive(Clone, Debug, Default)]
pub struct SyncStats {
    /// Barrier rounds executed (each advances every shard one window).
    pub windows: u64,
    /// Cross-shard envelopes exported, per source shard.
    pub envelopes: Vec<u64>,
    /// Events processed, per shard (sums to the monolithic count).
    pub events: Vec<u64>,
    /// Wall nanoseconds each worker spent blocked on the command
    /// channel — nondeterministic, wall-block only.
    pub blocked_ns: Vec<u64>,
}

type CallFn<B> = Box<dyn FnOnce(usize, &mut Sim, &mut B) -> Box<dyn Any + Send> + Send>;

enum Cmd<B> {
    /// Import the envelopes, then `run_until(to)`.
    Advance {
        to: Time,
        imports: Vec<Envelope>,
    },
    /// Run a closure against the worker's `(Sim, B)` pair.
    Call(CallFn<B>),
    Stop,
}

enum Reply {
    Ready {
        partition: Partition,
        next_time: Option<Time>,
    },
    Advanced {
        exports: Vec<Envelope>,
        next_time: Option<Time>,
        events: u64,
        blocked_ns: u64,
        /// `ctx.halt()` fired inside this window — the coordinator turns
        /// it into a [`HaltUnsupported`] error.
        halted: bool,
    },
    /// `each` closures may schedule fresh events, so `Call` also
    /// refreshes the coordinator's view of the shard's next event.
    Called(Box<dyn Any + Send>, Option<Time>),
}

struct Worker<B> {
    cmds: Sender<Cmd<B>>,
    replies: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
}

fn worker_loop<B>(
    idx: usize,
    build: Arc<dyn Fn(usize) -> (Sim, B, Partition) + Send + Sync>,
    cmds: Receiver<Cmd<B>>,
    replies: Sender<Reply>,
) {
    let (mut sim, mut aux, partition) = build(idx);
    assert_eq!(
        partition.owner.len(),
        sim.n_nodes(),
        "partition must cover every node"
    );
    let mask: Vec<bool> = partition.owner.iter().map(|&s| s as usize == idx).collect();
    sim.set_owned(mask);
    let ready = Reply::Ready {
        partition,
        next_time: sim.next_event_time(),
    };
    if replies.send(ready).is_err() {
        return;
    }
    let mut blocked_ns = 0u64;
    loop {
        let parked = Instant::now();
        let cmd = match cmds.recv() {
            Ok(c) => c,
            Err(_) => return, // coordinator dropped
        };
        blocked_ns += parked.elapsed().as_nanos() as u64;
        match cmd {
            Cmd::Advance { to, imports } => {
                for env in imports {
                    sim.import(env);
                }
                sim.run_until(to);
                let halted = sim.halted();
                let reply = Reply::Advanced {
                    exports: sim.take_exports(),
                    next_time: sim.next_event_time(),
                    events: sim.events_processed(),
                    blocked_ns,
                    halted,
                };
                if replies.send(reply).is_err() {
                    return;
                }
            }
            Cmd::Call(f) => {
                let out = f(idx, &mut sim, &mut aux);
                if replies
                    .send(Reply::Called(out, sim.next_event_time()))
                    .is_err()
                {
                    return;
                }
            }
            Cmd::Stop => return,
        }
    }
}

/// One scenario spread over `n` shard threads. `B` is per-shard builder
/// baggage (app handles, stats registries) the driver wants to consult
/// after the run via [`ShardedSim::each`].
pub struct ShardedSim<B> {
    workers: Vec<Worker<B>>,
    owner: Arc<Vec<u32>>,
    lookahead_ps: u64,
    now: Time,
    /// Per-destination-shard envelopes awaiting the next window.
    pending: Vec<Vec<Envelope>>,
    next_times: Vec<Option<Time>>,
    windows: u64,
    envelopes: Vec<u64>,
    events: Vec<u64>,
    blocked_ns: Vec<u64>,
}

/// Tracks live shard worker threads across all `ShardedSim`s, so bench
/// sweep parallelism can be capped while a sharded point is running.
static LIVE_WORKERS: AtomicU64 = AtomicU64::new(0);

/// Number of shard worker threads currently alive, process-wide.
pub fn live_workers() -> u64 {
    LIVE_WORKERS.load(Ordering::Relaxed)
}

impl<B: 'static> ShardedSim<B> {
    /// Spawn `n` workers, each building its own full copy of the
    /// scenario via `build(shard_idx)` and masking to the nodes the
    /// returned [`Partition`] assigns it. All shards must return the
    /// same partition (it is derived from the scenario, not the shard).
    pub fn launch(
        n: usize,
        build: impl Fn(usize) -> (Sim, B, Partition) + Send + Sync + 'static,
    ) -> ShardedSim<B> {
        assert!(n >= 1, "need at least one shard");
        let build: Arc<dyn Fn(usize) -> (Sim, B, Partition) + Send + Sync> = Arc::new(build);
        let mut workers = Vec::with_capacity(n);
        for idx in 0..n {
            let (cmd_tx, cmd_rx) = channel::<Cmd<B>>();
            let (rep_tx, rep_rx) = channel::<Reply>();
            let build = Arc::clone(&build);
            LIVE_WORKERS.fetch_add(1, Ordering::Relaxed);
            let handle = std::thread::Builder::new()
                .name(format!("shard-{idx}"))
                .spawn(move || {
                    struct Live;
                    impl Drop for Live {
                        fn drop(&mut self) {
                            LIVE_WORKERS.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                    let _live = Live;
                    worker_loop(idx, build, cmd_rx, rep_tx)
                })
                .expect("spawn shard worker");
            workers.push(Worker {
                cmds: cmd_tx,
                replies: rep_rx,
                handle: Some(handle),
            });
        }
        let mut sharded = ShardedSim {
            workers,
            owner: Arc::new(Vec::new()),
            lookahead_ps: 0,
            now: Time::ZERO,
            pending: (0..n).map(|_| Vec::new()).collect(),
            next_times: vec![None; n],
            windows: 0,
            envelopes: vec![0; n],
            events: vec![0; n],
            blocked_ns: vec![0; n],
        };
        let mut first: Option<Partition> = None;
        for i in 0..n {
            match sharded.recv(i) {
                Reply::Ready {
                    partition,
                    next_time,
                } => {
                    sharded.next_times[i] = next_time;
                    match &first {
                        None => first = Some(partition),
                        Some(p) => {
                            assert_eq!(
                                p.owner, partition.owner,
                                "shard {i} derived a different partition"
                            );
                            assert_eq!(p.lookahead, partition.lookahead);
                        }
                    }
                }
                _ => unreachable!("first reply must be Ready"),
            }
        }
        let p = first.expect("at least one shard");
        assert!(
            p.owner.iter().all(|&s| (s as usize) < n),
            "partition references shard >= n"
        );
        assert!(p.lookahead > Duration::ZERO, "lookahead must be positive");
        sharded.lookahead_ps = p.lookahead.ps();
        sharded.owner = Arc::new(p.owner);
        sharded
    }

    pub fn n_shards(&self) -> usize {
        self.workers.len()
    }

    pub fn now(&self) -> Time {
        self.now
    }

    /// Which shard owns `node`.
    pub fn owner_of(&self, node: usize) -> usize {
        self.owner[node] as usize
    }

    fn recv(&mut self, i: usize) -> Reply {
        match self.workers[i].replies.recv() {
            Ok(r) => r,
            Err(_) => {
                // Worker is gone: join it and re-raise its panic so the
                // failure surfaces at the coordinator with the original
                // message instead of a bare RecvError.
                let handle = self.workers[i]
                    .handle
                    .take()
                    .expect("worker reply channel closed twice");
                match handle.join() {
                    Err(payload) => resume_unwind(payload),
                    Ok(()) => panic!("shard worker {i} exited without a reply"),
                }
            }
        }
    }

    /// Advance every shard to `deadline` in conservative barrier
    /// windows. On return all shards' clocks equal `deadline` and every
    /// cross-shard envelope with time ≤ `deadline` has been delivered.
    ///
    /// Panics with the [`HaltUnsupported`] message if any shard calls
    /// `ctx.halt()`; use [`ShardedSim::try_run_until`] to handle that as
    /// a typed error instead.
    pub fn run_until(&mut self, deadline: Time) {
        if let Err(halt) = self.try_run_until(deadline) {
            panic!("{halt}");
        }
    }

    /// [`ShardedSim::run_until`], but `ctx.halt()` inside a shard is
    /// reported as a typed [`HaltUnsupported`] error instead of a panic.
    /// The window in which the halt fired is still fully synchronized
    /// (all shards advanced, all replies drained) before returning, so
    /// the coordinator's channels stay consistent and the error is
    /// deterministic per seed.
    pub fn try_run_until(&mut self, deadline: Time) -> Result<(), HaltUnsupported> {
        assert!(deadline >= self.now, "run_until moving backwards");
        let n = self.workers.len();
        loop {
            // Earliest outstanding work: a shard's local queue or an
            // envelope still in flight between shards.
            let mut t = u64::MAX;
            for nt in self.next_times.iter().flatten() {
                t = t.min(nt.ps());
            }
            for q in &self.pending {
                for env in q {
                    t = t.min(env.time.ps());
                }
            }
            let window_end = if t <= deadline.ps() {
                deadline.ps().min(t + self.lookahead_ps - 1)
            } else {
                deadline.ps()
            };
            for i in 0..n {
                let imports = std::mem::take(&mut self.pending[i]);
                self.workers[i]
                    .cmds
                    .send(Cmd::Advance {
                        to: Time(window_end),
                        imports,
                    })
                    .unwrap_or_else(|_| {
                        // Surface the worker's panic, not the send error.
                        let _ = self.recv(i);
                        unreachable!("recv after closed cmd channel must panic")
                    });
            }
            self.windows += 1;
            let owner = Arc::clone(&self.owner);
            let mut halted_shard: Option<usize> = None;
            for i in 0..n {
                match self.recv(i) {
                    Reply::Advanced {
                        exports,
                        next_time,
                        events,
                        blocked_ns,
                        halted,
                    } => {
                        self.envelopes[i] += exports.len() as u64;
                        self.events[i] = events;
                        self.blocked_ns[i] = blocked_ns;
                        self.next_times[i] = next_time;
                        for env in exports {
                            self.pending[owner[env.to] as usize].push(env);
                        }
                        if halted && halted_shard.is_none() {
                            halted_shard = Some(i);
                        }
                    }
                    _ => unreachable!("Advance must be answered by Advanced"),
                }
            }
            self.now = Time(window_end);
            if let Some(shard) = halted_shard {
                return Err(HaltUnsupported {
                    shard,
                    at: self.now,
                });
            }
            if window_end == deadline.ps() {
                // Any envelope produced in the final window has time
                // > window_end == deadline; it stays pending for a
                // later run_until call.
                debug_assert!(self
                    .pending
                    .iter()
                    .all(|q| q.iter().all(|e| e.time > deadline)));
                return Ok(());
            }
        }
    }

    /// Run `f` once per shard (in parallel, in shard order) against the
    /// worker's `(Sim, B)` and collect the results in shard order. This
    /// is how drivers harvest stats after (or between) `run_until`s.
    pub fn each<R: Send + 'static>(
        &mut self,
        f: impl Fn(usize, &mut Sim, &mut B) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        let f = Arc::new(f);
        let n = self.workers.len();
        for worker in &self.workers {
            let f = Arc::clone(&f);
            let call: CallFn<B> =
                Box::new(move |idx, sim, aux| Box::new(f(idx, sim, aux)) as Box<dyn Any + Send>);
            // A dead worker is reported by the recv below.
            let _ = worker.cmds.send(Cmd::Call(call));
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match self.recv(i) {
                Reply::Called(any, next_time) => {
                    self.next_times[i] = next_time;
                    out.push(
                        *any.downcast::<R>()
                            .expect("each() closure returned a foreign type"),
                    );
                }
                _ => unreachable!("Call must be answered by Called"),
            }
        }
        out
    }

    /// Synchronization counters accumulated so far. `windows`,
    /// `envelopes` and `events` are deterministic; `blocked_ns` is wall
    /// clock.
    pub fn sync_stats(&self) -> SyncStats {
        SyncStats {
            windows: self.windows,
            envelopes: self.envelopes.clone(),
            events: self.events.clone(),
            blocked_ns: self.blocked_ns.clone(),
        }
    }

    /// Total events processed across shards (matches the monolithic
    /// engine's `events_processed` for the same scenario).
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }
}

impl<B> Drop for ShardedSim<B> {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.cmds.send(Cmd::Stop);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                // Don't double-panic during unwinding; the panic that
                // killed the worker has already been surfaced by recv()
                // if the coordinator was still listening.
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextoe_sim::{cast, Ctx, Msg, Node};
    use flextoe_wire::Frame;

    /// Echoes every received frame back to a peer on another shard
    /// after `delay`, up to `hops` times, logging receipt times.
    struct PingPong {
        peer: usize,
        delay: Duration,
        hops: u32,
        log: Vec<(u64, u8)>,
    }
    impl Node for PingPong {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let frame = match msg {
                Msg::Frame(f) => f,
                other => *cast::<Frame>(other),
            };
            self.log.push((ctx.now().ps(), frame.bytes[0]));
            if self.hops > 0 {
                self.hops -= 1;
                let mut next = frame;
                next.bytes[0] = next.bytes[0].wrapping_add(1);
                ctx.send(self.peer, self.delay, Msg::Frame(next));
            }
        }
    }

    fn build_pair(seed: u64) -> (Sim, Vec<usize>) {
        let mut sim = Sim::new(seed);
        let a = sim.add_node(PingPong {
            peer: 1,
            delay: Duration::from_ns(500),
            hops: 4,
            log: Vec::new(),
        });
        let b = sim.add_node(PingPong {
            peer: 0,
            delay: Duration::from_ns(500),
            hops: 4,
            log: Vec::new(),
        });
        sim.schedule(Time::ZERO, a, Msg::Frame(Frame::raw(vec![0u8; 8])));
        (sim, vec![a, b])
    }

    fn logs_of(sim: &Sim, ids: &[usize]) -> Vec<Vec<(u64, u8)>> {
        ids.iter()
            .map(|&id| {
                if sim.owns(id) {
                    sim.node_ref::<PingPong>(id).log.clone()
                } else {
                    Vec::new()
                }
            })
            .collect()
    }

    #[test]
    fn two_shard_ping_pong_matches_monolithic() {
        let deadline = Time::from_us(10);
        let (mut mono, ids) = build_pair(7);
        mono.run_until(deadline);
        let want = logs_of(&mono, &ids);
        let want_events = mono.events_processed();

        let mut sharded = ShardedSim::launch(2, |_idx| {
            let (sim, ids) = build_pair(7);
            let partition = Partition {
                owner: vec![0, 1],
                lookahead: Duration::from_ns(500),
            };
            (sim, ids, partition)
        });
        sharded.run_until(deadline);
        let got = sharded.each(|_idx, sim, ids| logs_of(sim, ids));
        // Each shard holds the log restriction for the nodes it owns;
        // merging (elementwise, empty-for-ghost) rebuilds the whole.
        let merged: Vec<Vec<(u64, u8)>> = (0..2)
            .map(|node| {
                got.iter()
                    .map(|per_shard| per_shard[node].clone())
                    .find(|l| !l.is_empty())
                    .unwrap_or_default()
            })
            .collect();
        assert_eq!(merged, want);
        assert_eq!(sharded.total_events(), want_events);
        // Each node forwards `hops = 4` times, all across the cut.
        let stats = sharded.sync_stats();
        assert!(stats.windows >= 8, "8 hops need at least 8 windows");
        assert_eq!(stats.envelopes.iter().sum::<u64>(), 8);
        assert_eq!(stats.envelopes, vec![4, 4]);
    }

    #[test]
    fn one_shard_degenerate_cut_is_exact() {
        let deadline = Time::from_us(10);
        let (mut mono, ids) = build_pair(11);
        mono.run_until(deadline);
        let want = logs_of(&mono, &ids);

        let mut sharded = ShardedSim::launch(1, |_| {
            let (sim, ids) = build_pair(11);
            (sim, ids, Partition::monolithic(2))
        });
        sharded.run_until(deadline);
        let got = sharded.each(|_, sim, ids| logs_of(sim, ids));
        assert_eq!(got[0], want);
        assert_eq!(sharded.sync_stats().envelopes.iter().sum::<u64>(), 0);
    }

    /// A node that halts its local engine on the first message — the
    /// monolithic-only facility the sharded coordinator must reject.
    struct Halter;
    impl Node for Halter {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.halt();
        }
    }

    fn build_halting(_idx: usize) -> (Sim, (), Partition) {
        let mut sim = Sim::new(5);
        let h = sim.add_node(Halter);
        sim.add_node(PingPong {
            peer: h,
            delay: Duration::from_ns(500),
            hops: 0,
            log: Vec::new(),
        });
        sim.schedule(Time::from_ns(100), h, Msg::Frame(Frame::raw(vec![1u8; 8])));
        let partition = Partition {
            owner: vec![0, 1],
            lookahead: Duration::from_ns(500),
        };
        (sim, (), partition)
    }

    #[test]
    fn halt_under_sharding_is_a_typed_error() {
        let mut sharded = ShardedSim::launch(2, build_halting);
        let err = sharded
            .try_run_until(Time::from_us(1))
            .expect_err("ctx.halt() inside a shard must surface as an error");
        assert_eq!(err.shard, 0, "the Halter lives on shard 0");
        assert!(
            err.to_string().contains("unsupported under sharding"),
            "got: {err}"
        );

        // The panicking wrapper re-raises the same typed message.
        let result = std::panic::catch_unwind(|| {
            let mut sharded = ShardedSim::launch(2, build_halting);
            sharded.run_until(Time::from_us(1));
        });
        let payload = result.expect_err("run_until must panic on a shard halt");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("ctx.halt() is unsupported under sharding"),
            "got: {msg}"
        );
    }

    #[test]
    fn worker_panic_surfaces_at_coordinator() {
        let result = std::panic::catch_unwind(|| {
            let mut sharded = ShardedSim::launch(2, |_| {
                let (sim, ids) = build_pair(3);
                let partition = Partition {
                    owner: vec![0, 1],
                    lookahead: Duration::from_ns(500),
                };
                (sim, ids, partition)
            });
            sharded.each(|idx, _sim, _ids| {
                if idx == 1 {
                    panic!("boom from shard 1");
                }
            });
        });
        let payload = result.expect_err("coordinator must re-raise");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom from shard 1"), "got: {msg}");
    }
}
