//! The eBPF interpreter.
//!
//! A register VM over virtual address regions: the packet, a 512-byte
//! stack, the `xdp_md` context, and map values returned by lookups. All
//! accesses are bounds-checked at runtime (the static verifier in
//! `verifier.rs` catches structural problems before a program is loaded).

use crate::insn::*;
use crate::maps::MapSet;

pub const STACK_SIZE: usize = 512;

const PKT_BASE: u64 = 0x1_0000_0000;
const STACK_BASE: u64 = 0x2_0000_0000;
const CTX_BASE: u64 = 0x3_0000_0000;
const MAP_BASE: u64 = 0x4_0000_0000;
const MAP_STRIDE: u64 = 0x1_0000;

/// `xdp_md` field offsets in our VM (u64 virtual pointers).
pub const MD_DATA: i16 = 0;
pub const MD_DATA_END: i16 = 8;

/// Why a program trapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    OutOfBounds { addr: u64, size: u8 },
    BadOpcode(u8),
    BadRegister(u8),
    WriteToFp,
    InsnLimit,
    BadHelper(i32),
    BadMapFd(u32),
    PcOutOfRange(i64),
    AdjustHeadOutOfRange,
}

/// Result of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    pub ret: u64,
    /// Instructions executed (drives the FPC cost model in the data-path).
    pub insns: u64,
    /// Bytes trimmed from the packet front by `bpf_xdp_adjust_head`.
    pub head_adjust: i32,
}

/// Additional helper: `bpf_xdp_adjust_head(ctx, delta)` (Linux id 44).
pub const HELPER_ADJUST_HEAD: i32 = 44;

struct MapRef {
    fd: u32,
    key: Vec<u8>,
}

pub struct Vm {
    max_insns: u64,
    prandom_state: u64,
}

impl Default for Vm {
    fn default() -> Self {
        Self::new()
    }
}

impl Vm {
    pub fn new() -> Vm {
        Vm {
            max_insns: 65_536,
            prandom_state: 0x5eed_1234_abcd_9876,
        }
    }

    pub fn with_insn_limit(max_insns: u64) -> Vm {
        Vm {
            max_insns,
            ..Vm::new()
        }
    }

    /// Run `prog` over `packet` with `maps`. The packet may be mutated;
    /// on a positive `head_adjust` the caller must trim that many bytes
    /// from the front (the data-path harness does this).
    pub fn run(
        &mut self,
        prog: &[Insn],
        packet: &mut [u8],
        maps: &mut MapSet,
    ) -> Result<RunResult, Trap> {
        let mut reg = [0u64; 11];
        let mut stack = [0u8; STACK_SIZE];
        let mut pkt_off: usize = 0; // adjust_head offset into `packet`
        let mut map_refs: Vec<MapRef> = Vec::new();
        // r1 = ctx pointer, r10 = frame pointer (top of stack)
        reg[R1 as usize] = CTX_BASE;
        reg[R10 as usize] = STACK_BASE + STACK_SIZE as u64;

        let mut pc: i64 = 0;
        let mut executed = 0u64;

        macro_rules! load_region {
            ($addr:expr, $n:expr) => {{
                let addr: u64 = $addr;
                let n: usize = $n;
                let mut buf = [0u8; 8];
                if addr >= PKT_BASE && addr + n as u64 <= PKT_BASE + packet.len() as u64 {
                    let a = (addr - PKT_BASE) as usize;
                    if a < pkt_off {
                        return Err(Trap::OutOfBounds {
                            addr,
                            size: n as u8,
                        });
                    }
                    buf[..n].copy_from_slice(&packet[a..a + n]);
                } else if addr >= STACK_BASE && addr + n as u64 <= STACK_BASE + STACK_SIZE as u64 {
                    let a = (addr - STACK_BASE) as usize;
                    buf[..n].copy_from_slice(&stack[a..a + n]);
                } else if addr >= CTX_BASE && addr + n as u64 <= CTX_BASE + 16 {
                    // materialize xdp_md on the fly
                    let data = PKT_BASE + pkt_off as u64;
                    let data_end = PKT_BASE + packet.len() as u64;
                    let mut md = [0u8; 16];
                    md[0..8].copy_from_slice(&data.to_le_bytes());
                    md[8..16].copy_from_slice(&data_end.to_le_bytes());
                    let a = (addr - CTX_BASE) as usize;
                    buf[..n].copy_from_slice(&md[a..a + n]);
                } else if addr >= MAP_BASE {
                    let slot = ((addr - MAP_BASE) / MAP_STRIDE) as usize;
                    let off = ((addr - MAP_BASE) % MAP_STRIDE) as usize;
                    let mr = map_refs.get(slot).ok_or(Trap::OutOfBounds {
                        addr,
                        size: n as u8,
                    })?;
                    let map = maps.get_mut(mr.fd).map_err(|_| Trap::BadMapFd(mr.fd))?;
                    let val = map.value_mut(&mr.key).ok_or(Trap::OutOfBounds {
                        addr,
                        size: n as u8,
                    })?;
                    if off + n > val.len() {
                        return Err(Trap::OutOfBounds {
                            addr,
                            size: n as u8,
                        });
                    }
                    buf[..n].copy_from_slice(&val[off..off + n]);
                } else {
                    return Err(Trap::OutOfBounds {
                        addr,
                        size: n as u8,
                    });
                }
                u64::from_le_bytes(buf)
            }};
        }

        macro_rules! store_region {
            ($addr:expr, $n:expr, $val:expr) => {{
                let addr: u64 = $addr;
                let n: usize = $n;
                let bytes = ($val as u64).to_le_bytes();
                if addr >= PKT_BASE && addr + n as u64 <= PKT_BASE + packet.len() as u64 {
                    let a = (addr - PKT_BASE) as usize;
                    if a < pkt_off {
                        return Err(Trap::OutOfBounds {
                            addr,
                            size: n as u8,
                        });
                    }
                    packet[a..a + n].copy_from_slice(&bytes[..n]);
                } else if addr >= STACK_BASE && addr + n as u64 <= STACK_BASE + STACK_SIZE as u64 {
                    let a = (addr - STACK_BASE) as usize;
                    stack[a..a + n].copy_from_slice(&bytes[..n]);
                } else if addr >= MAP_BASE {
                    let slot = ((addr - MAP_BASE) / MAP_STRIDE) as usize;
                    let off = ((addr - MAP_BASE) % MAP_STRIDE) as usize;
                    let mr = map_refs.get(slot).ok_or(Trap::OutOfBounds {
                        addr,
                        size: n as u8,
                    })?;
                    let map = maps.get_mut(mr.fd).map_err(|_| Trap::BadMapFd(mr.fd))?;
                    let val = map.value_mut(&mr.key).ok_or(Trap::OutOfBounds {
                        addr,
                        size: n as u8,
                    })?;
                    if off + n > val.len() {
                        return Err(Trap::OutOfBounds {
                            addr,
                            size: n as u8,
                        });
                    }
                    val[off..off + n].copy_from_slice(&bytes[..n]);
                } else {
                    // ctx is read-only
                    return Err(Trap::OutOfBounds {
                        addr,
                        size: n as u8,
                    });
                }
            }};
        }

        loop {
            if executed >= self.max_insns {
                return Err(Trap::InsnLimit);
            }
            if pc < 0 || pc as usize >= prog.len() {
                return Err(Trap::PcOutOfRange(pc));
            }
            let insn = prog[pc as usize];
            executed += 1;
            let dst = insn.dst as usize;
            let src = insn.src as usize;
            if dst > 10 || src > 10 {
                return Err(Trap::BadRegister(insn.dst.max(insn.src)));
            }
            let class = insn.op & 0x07;
            match class {
                BPF_ALU64 | BPF_ALU => {
                    let is64 = class == BPF_ALU64;
                    let op = insn.op & 0xf0;
                    if op == BPF_END {
                        // byte order conversion (we model a little-endian
                        // host, so TO_BE swaps, TO_LE masks)
                        let v = reg[dst];
                        let to_be = insn.op & 0x08 != 0;
                        reg[dst] = match (insn.imm, to_be) {
                            (16, true) => (v as u16).swap_bytes() as u64,
                            (32, true) => (v as u32).swap_bytes() as u64,
                            (64, true) => v.swap_bytes(),
                            (16, false) => v & 0xffff,
                            (32, false) => v & 0xffff_ffff,
                            (64, false) => v,
                            _ => return Err(Trap::BadOpcode(insn.op)),
                        };
                        pc += 1;
                        continue;
                    }
                    if insn.dst == R10 {
                        return Err(Trap::WriteToFp);
                    }
                    let rhs = if insn.op & BPF_X != 0 {
                        reg[src]
                    } else {
                        insn.imm as i64 as u64
                    };
                    let lhs = reg[dst];
                    let (l, r) = if is64 {
                        (lhs, rhs)
                    } else {
                        (lhs as u32 as u64, rhs as u32 as u64)
                    };
                    let result = match op {
                        BPF_ADD => l.wrapping_add(r),
                        BPF_SUB => l.wrapping_sub(r),
                        BPF_MUL => l.wrapping_mul(r),
                        BPF_DIV => l.checked_div(r).unwrap_or(0),
                        BPF_MOD => l.checked_rem(r).unwrap_or(l),
                        BPF_OR => l | r,
                        BPF_AND => l & r,
                        BPF_XOR => l ^ r,
                        BPF_LSH => {
                            if is64 {
                                l.wrapping_shl(r as u32)
                            } else {
                                (l as u32).wrapping_shl(r as u32) as u64
                            }
                        }
                        BPF_RSH => {
                            if is64 {
                                l.wrapping_shr(r as u32)
                            } else {
                                (l as u32).wrapping_shr(r as u32) as u64
                            }
                        }
                        BPF_ARSH => {
                            if is64 {
                                (l as i64).wrapping_shr(r as u32) as u64
                            } else {
                                ((l as u32 as i32).wrapping_shr(r as u32)) as u32 as u64
                            }
                        }
                        BPF_NEG => (l as i64).wrapping_neg() as u64,
                        BPF_MOV => r,
                        _ => return Err(Trap::BadOpcode(insn.op)),
                    };
                    reg[dst] = if is64 { result } else { result as u32 as u64 };
                    pc += 1;
                }
                BPF_JMP | BPF_JMP32 => {
                    let op = insn.op & 0xf0;
                    match op {
                        BPF_CALL => {
                            self.helper_call(
                                insn.imm,
                                &mut reg,
                                &mut map_refs,
                                maps,
                                packet,
                                &mut pkt_off,
                                &mut stack,
                            )?;
                            pc += 1;
                            continue;
                        }
                        BPF_EXIT => {
                            return Ok(RunResult {
                                ret: reg[R0 as usize],
                                insns: executed,
                                head_adjust: pkt_off as i32,
                            });
                        }
                        BPF_JA => {
                            pc += 1 + insn.off as i64;
                            continue;
                        }
                        _ => {}
                    }
                    let rhs = if insn.op & BPF_X != 0 {
                        reg[src]
                    } else {
                        insn.imm as i64 as u64
                    };
                    let lhs = reg[dst];
                    let (l, r) = if class == BPF_JMP32 {
                        (lhs as u32 as u64, rhs as u32 as u64)
                    } else {
                        (lhs, rhs)
                    };
                    let take = match op {
                        BPF_JEQ => l == r,
                        BPF_JNE => l != r,
                        BPF_JGT => l > r,
                        BPF_JGE => l >= r,
                        BPF_JLT => l < r,
                        BPF_JLE => l <= r,
                        BPF_JSET => l & r != 0,
                        BPF_JSGT => (l as i64) > (r as i64),
                        BPF_JSGE => (l as i64) >= (r as i64),
                        BPF_JSLT => (l as i64) < (r as i64),
                        BPF_JSLE => (l as i64) <= (r as i64),
                        _ => return Err(Trap::BadOpcode(insn.op)),
                    };
                    pc += if take { 1 + insn.off as i64 } else { 1 };
                }
                BPF_LDX => {
                    let n = size_of(insn.op)?;
                    let addr = reg[src].wrapping_add(insn.off as i64 as u64);
                    reg[dst] = load_region!(addr, n);
                    pc += 1;
                }
                BPF_STX => {
                    let n = size_of(insn.op)?;
                    let addr = reg[dst].wrapping_add(insn.off as i64 as u64);
                    store_region!(addr, n, reg[src]);
                    pc += 1;
                }
                BPF_ST => {
                    let n = size_of(insn.op)?;
                    let addr = reg[dst].wrapping_add(insn.off as i64 as u64);
                    store_region!(addr, n, insn.imm as i64 as u64);
                    pc += 1;
                }
                BPF_LD => {
                    // LD_IMM64: two slots
                    #[allow(clippy::collapsible_match)]
                    if insn.op == (BPF_LD | BPF_IMM | BPF_DW) {
                        if pc as usize + 1 >= prog.len() {
                            return Err(Trap::PcOutOfRange(pc + 1));
                        }
                        let hi = prog[pc as usize + 1].imm as u32 as u64;
                        if insn.dst == R10 {
                            return Err(Trap::WriteToFp);
                        }
                        reg[dst] = (insn.imm as u32 as u64) | (hi << 32);
                        pc += 2;
                    } else {
                        return Err(Trap::BadOpcode(insn.op));
                    }
                }
                _ => return Err(Trap::BadOpcode(insn.op)),
            }

            // helper closures capture these macros; nothing here
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn helper_call(
        &mut self,
        id: i32,
        reg: &mut [u64; 11],
        map_refs: &mut Vec<MapRef>,
        maps: &mut MapSet,
        packet: &mut [u8],
        pkt_off: &mut usize,
        stack: &mut [u8; STACK_SIZE],
    ) -> Result<(), Trap> {
        // local byte readers for helper arguments (stack or packet only)
        let read = |addr: u64, len: usize| -> Result<Vec<u8>, Trap> {
            let mut v = vec![0u8; len];
            for (i, b) in v.iter_mut().enumerate() {
                let a = addr + i as u64;
                *b = if a >= PKT_BASE && a < PKT_BASE + packet.len() as u64 {
                    packet[(a - PKT_BASE) as usize]
                } else if a >= STACK_BASE && a < STACK_BASE + STACK_SIZE as u64 {
                    stack[(a - STACK_BASE) as usize]
                } else {
                    return Err(Trap::OutOfBounds { addr: a, size: 1 });
                };
            }
            Ok(v)
        };
        match id {
            helpers::MAP_LOOKUP => {
                let fd = reg[R1 as usize] as u32;
                let map = maps.get(fd).map_err(|_| Trap::BadMapFd(fd))?;
                let key = read(reg[R2 as usize], map.key_size())?;
                let found = map.lookup(&key).map_err(|_| Trap::BadMapFd(fd))?.is_some();
                reg[R0 as usize] = if found {
                    let slot = map_refs.len() as u64;
                    map_refs.push(MapRef { fd, key });
                    MAP_BASE + slot * MAP_STRIDE
                } else {
                    0
                };
            }
            helpers::MAP_UPDATE => {
                let fd = reg[R1 as usize] as u32;
                let (ksz, vsz) = {
                    let map = maps.get(fd).map_err(|_| Trap::BadMapFd(fd))?;
                    (map.key_size(), map.value_size())
                };
                let key = read(reg[R2 as usize], ksz)?;
                let val = read(reg[R3 as usize], vsz)?;
                let map = maps.get_mut(fd).map_err(|_| Trap::BadMapFd(fd))?;
                reg[R0 as usize] = match map.update(&key, &val) {
                    Ok(()) => 0,
                    Err(_) => (-1i64) as u64,
                };
            }
            helpers::MAP_DELETE => {
                let fd = reg[R1 as usize] as u32;
                let ksz = maps.get(fd).map_err(|_| Trap::BadMapFd(fd))?.key_size();
                let key = read(reg[R2 as usize], ksz)?;
                let map = maps.get_mut(fd).map_err(|_| Trap::BadMapFd(fd))?;
                reg[R0 as usize] = match map.delete(&key) {
                    Ok(true) => 0,
                    _ => (-1i64) as u64,
                };
            }
            helpers::PRANDOM => {
                self.prandom_state = self
                    .prandom_state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                reg[R0 as usize] = (self.prandom_state >> 33) as u32 as u64;
            }
            HELPER_ADJUST_HEAD => {
                let delta = reg[R2 as usize] as i64 as i32;
                let new = *pkt_off as i64 + delta as i64;
                if new < 0 || new as usize > packet.len() {
                    return Err(Trap::AdjustHeadOutOfRange);
                }
                *pkt_off = new as usize;
                reg[R0 as usize] = 0;
            }
            other => return Err(Trap::BadHelper(other)),
        }
        Ok(())
    }
}

fn size_of(op: u8) -> Result<usize, Trap> {
    match op & 0x18 {
        BPF_W => Ok(4),
        BPF_H => Ok(2),
        BPF_B => Ok(1),
        BPF_DW => Ok(8),
        _ => Err(Trap::BadOpcode(op)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::{Map, MapSet};

    fn run(prog: &[Insn], pkt: &mut Vec<u8>) -> RunResult {
        let mut maps = MapSet::new();
        let res = Vm::new().run(prog, pkt, &mut maps).unwrap();
        if res.head_adjust > 0 {
            pkt.drain(..res.head_adjust as usize);
        }
        res
    }

    #[test]
    fn mov_add_exit() {
        let mut b = ProgBuilder::new();
        b.mov64_imm(R0, 40).alu64_imm(BPF_ADD, R0, 2).exit();
        let mut pkt = vec![];
        assert_eq!(run(&b.build(), &mut pkt).ret, 42);
    }

    #[test]
    fn alu32_truncates() {
        let mut b = ProgBuilder::new();
        b.ld_imm64(R0, 0xffff_ffff_ffff_ffff)
            .alu32_imm(BPF_ADD, R0, 1) // 32-bit add wraps to 0
            .exit();
        let mut pkt = vec![];
        assert_eq!(run(&b.build(), &mut pkt).ret, 0);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let mut b = ProgBuilder::new();
        b.mov64_imm(R0, 100)
            .mov64_imm(R1, 0)
            .alu64_reg(BPF_DIV, R0, R1)
            .exit();
        let mut pkt = vec![];
        assert_eq!(run(&b.build(), &mut pkt).ret, 0);
    }

    #[test]
    fn packet_load_and_store() {
        // read byte 0, add 1, store to byte 1, return byte1
        let mut b = ProgBuilder::new();
        b.ldx(BPF_DW, R2, R1, MD_DATA) // r2 = data ptr
            .ldx(BPF_B, R0, R2, 0)
            .alu64_imm(BPF_ADD, R0, 1)
            .stx(BPF_B, R2, R0, 1)
            .ldx(BPF_B, R0, R2, 1)
            .exit();
        let mut pkt = vec![10u8, 0, 0];
        let r = run(&b.build(), &mut pkt);
        assert_eq!(r.ret, 11);
        assert_eq!(pkt, vec![10, 11, 0]);
    }

    #[test]
    fn bounds_check_data_end() {
        // standard XDP pattern: if data + 4 > data_end -> return DROP
        let build = |need: i32| {
            let mut b = ProgBuilder::new();
            b.ldx(BPF_DW, R2, R1, MD_DATA)
                .ldx(BPF_DW, R3, R1, MD_DATA_END)
                .mov64_reg(R4, R2)
                .alu64_imm(BPF_ADD, R4, need)
                .jmp_reg(BPF_JGT, R4, R3, "oob")
                .ret(XdpAction::Pass)
                .label("oob")
                .ret(XdpAction::Drop);
            b.build()
        };
        let mut pkt = vec![0u8; 4];
        assert_eq!(run(&build(4), &mut pkt).ret, XdpAction::Pass as u64);
        assert_eq!(run(&build(5), &mut pkt).ret, XdpAction::Drop as u64);
    }

    #[test]
    fn out_of_bounds_load_traps() {
        let mut b = ProgBuilder::new();
        b.ldx(BPF_DW, R2, R1, MD_DATA)
            .ldx(BPF_W, R0, R2, 100)
            .exit();
        let prog = b.build();
        let mut pkt = vec![0u8; 8];
        let mut maps = MapSet::new();
        let err = Vm::new().run(&prog, &mut pkt, &mut maps).unwrap_err();
        assert!(matches!(err, Trap::OutOfBounds { .. }));
    }

    #[test]
    fn stack_roundtrip() {
        let mut b = ProgBuilder::new();
        b.mov64_imm(R2, 0x1234)
            .stx(BPF_W, R10, R2, -8)
            .ldx(BPF_W, R0, R10, -8)
            .exit();
        let mut pkt = vec![];
        assert_eq!(run(&b.build(), &mut pkt).ret, 0x1234);
    }

    #[test]
    fn write_to_fp_traps() {
        let mut b = ProgBuilder::new();
        b.mov64_imm(R10, 0).exit();
        let mut pkt = vec![];
        let mut maps = MapSet::new();
        assert_eq!(
            Vm::new().run(&b.build(), &mut pkt, &mut maps).unwrap_err(),
            Trap::WriteToFp
        );
    }

    #[test]
    fn infinite_loop_hits_insn_limit() {
        let mut b = ProgBuilder::new();
        b.label("loop").ja("loop");
        let mut pkt = vec![];
        let mut maps = MapSet::new();
        assert_eq!(
            Vm::with_insn_limit(1000)
                .run(&b.build(), &mut pkt, &mut maps)
                .unwrap_err(),
            Trap::InsnLimit
        );
    }

    #[test]
    fn byte_order_swap() {
        let mut b = ProgBuilder::new();
        b.ld_imm64(R0, 0x1122).be(R0, 16).exit();
        let mut pkt = vec![];
        assert_eq!(run(&b.build(), &mut pkt).ret, 0x2211);
        let mut b = ProgBuilder::new();
        b.ld_imm64(R0, 0x11223344).be(R0, 32).exit();
        let mut pkt = vec![];
        assert_eq!(run(&b.build(), &mut pkt).ret, 0x44332211);
    }

    #[test]
    fn map_lookup_update_through_pointer() {
        let mut maps = MapSet::new();
        let fd = maps.add(Map::hash(4, 8, 16));
        maps.get_mut(fd)
            .unwrap()
            .update(&[1, 2, 3, 4], &[5, 0, 0, 0, 0, 0, 0, 0])
            .unwrap();
        // key on stack; lookup; increment value via returned pointer
        let mut b = ProgBuilder::new();
        b.st_imm(BPF_B, R10, -4, 1)
            .st_imm(BPF_B, R10, -3, 2)
            .st_imm(BPF_B, R10, -2, 3)
            .st_imm(BPF_B, R10, -1, 4)
            .mov64_imm(R1, fd as i32)
            .mov64_reg(R2, R10)
            .alu64_imm(BPF_ADD, R2, -4)
            .call(helpers::MAP_LOOKUP)
            .jmp_imm(BPF_JEQ, R0, 0, "miss")
            .ldx(BPF_DW, R3, R0, 0)
            .alu64_imm(BPF_ADD, R3, 10)
            .stx(BPF_DW, R0, R3, 0)
            .mov64_reg(R0, R3)
            .exit()
            .label("miss")
            .mov64_imm(R0, -1)
            .exit();
        let prog = b.build();
        let mut pkt = vec![];
        let res = Vm::new().run(&prog, &mut pkt, &mut maps).unwrap();
        assert_eq!(res.ret, 15);
        // the write persisted into the map
        assert_eq!(
            maps.get(fd)
                .unwrap()
                .lookup(&[1, 2, 3, 4])
                .unwrap()
                .unwrap()[0],
            15
        );
    }

    #[test]
    fn map_lookup_miss_returns_null() {
        let mut maps = MapSet::new();
        let fd = maps.add(Map::hash(4, 4, 4));
        let mut b = ProgBuilder::new();
        b.st_imm(BPF_W, R10, -4, 0x55)
            .mov64_imm(R1, fd as i32)
            .mov64_reg(R2, R10)
            .alu64_imm(BPF_ADD, R2, -4)
            .call(helpers::MAP_LOOKUP)
            .exit();
        let mut pkt = vec![];
        let res = Vm::new().run(&b.build(), &mut pkt, &mut maps).unwrap();
        assert_eq!(res.ret, 0);
    }

    #[test]
    fn map_delete_via_helper() {
        let mut maps = MapSet::new();
        let fd = maps.add(Map::hash(4, 4, 4));
        maps.get_mut(fd)
            .unwrap()
            .update(&[9, 9, 9, 9], &[1, 1, 1, 1])
            .unwrap();
        let mut b = ProgBuilder::new();
        b.st_imm(BPF_B, R10, -4, 9)
            .st_imm(BPF_B, R10, -3, 9)
            .st_imm(BPF_B, R10, -2, 9)
            .st_imm(BPF_B, R10, -1, 9)
            .mov64_imm(R1, fd as i32)
            .mov64_reg(R2, R10)
            .alu64_imm(BPF_ADD, R2, -4)
            .call(helpers::MAP_DELETE)
            .exit();
        let mut pkt = vec![];
        let res = Vm::new().run(&b.build(), &mut pkt, &mut maps).unwrap();
        assert_eq!(res.ret, 0);
        assert!(maps.get(fd).unwrap().is_empty());
    }

    #[test]
    fn adjust_head_strips_front_bytes() {
        let mut b = ProgBuilder::new();
        b.mov64_imm(R2, 4)
            .call(HELPER_ADJUST_HEAD)
            .ldx(BPF_DW, R2, R1, MD_DATA) // reload data after adjust
            .ldx(BPF_B, R0, R2, 0)
            .exit();
        let mut pkt = vec![1u8, 2, 3, 4, 5, 6];
        let r = run(&b.build(), &mut pkt);
        assert_eq!(r.head_adjust, 4);
        assert_eq!(r.ret, 5); // first byte after the strip
        assert_eq!(pkt, vec![5, 6]);
    }

    #[test]
    fn insn_count_reported() {
        let mut b = ProgBuilder::new();
        b.mov64_imm(R0, 0);
        for _ in 0..10 {
            b.alu64_imm(BPF_ADD, R0, 1);
        }
        b.exit();
        let mut pkt = vec![];
        let r = run(&b.build(), &mut pkt);
        assert_eq!(r.ret, 10);
        assert_eq!(r.insns, 12);
    }

    #[test]
    fn jmp32_compares_low_word() {
        let mut b = ProgBuilder::new();
        b.ld_imm64(R1, 0xffff_ffff_0000_0005u64)
            // JMP32 JEQ r1, 5 -> taken (low 32 bits equal)
            .jmp32_imm(BPF_JEQ, R1, 5, "yes")
            .ret(XdpAction::Drop)
            .label("yes")
            .ret(XdpAction::Pass);
        let mut pkt = vec![];
        assert_eq!(run(&b.build(), &mut pkt).ret, XdpAction::Pass as u64);
    }
}
