//! # flextoe-ebpf — a from-scratch eBPF subset VM for XDP data-path modules
//!
//! FlexTOE "supports C and XDP programs written in eBPF … eBPF programs
//! can be compiled to NFP assembly" (§3.3, §5.1). This crate provides the
//! equivalent substrate for the reproduction: an interpreter for the
//! classic 64-bit eBPF instruction set (ALU64/ALU32, jumps, memory,
//! byte-order ops, helper calls), BPF hash/array maps shared with the
//! control plane, a load-time verifier, an assembler-style program
//! builder, and the prebuilt programs the paper evaluates — null,
//! vlan-strip, firewall, and AccelTCP-style connection splicing
//! (Listing 1).
//!
//! The VM reports executed instruction counts so the data-path can charge
//! XDP stages against the FPC cost model (Table 2's overhead rows).

pub mod insn;
pub mod maps;
pub mod programs;
pub mod verifier;
pub mod vm;

pub use insn::{helpers, Insn, ProgBuilder, XdpAction};
pub use maps::{shared_maps, Map, MapError, MapSet, SharedMaps};
pub use verifier::{verify, VerifyError};
pub use vm::{RunResult, Trap, Vm, HELPER_ADJUST_HEAD, MD_DATA, MD_DATA_END};
