//! A static verifier for XDP programs loaded into the data-path.
//!
//! Much lighter than the kernel's: the VM bounds-checks every access at
//! runtime, so the verifier only rejects structurally broken programs
//! (bad opcodes, wild jumps, missing exit) before they are installed —
//! the same contract the NFP offload toolchain enforces at load time.

use crate::insn::*;

pub const MAX_INSNS: usize = 4096;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    Empty,
    TooLong(usize),
    BadOpcode { pc: usize, op: u8 },
    BadRegister { pc: usize, reg: u8 },
    JumpOutOfRange { pc: usize, target: i64 },
    NoExit,
    TruncatedLdImm64 { pc: usize },
    WriteToFp { pc: usize },
}

pub fn verify(prog: &[Insn]) -> Result<(), VerifyError> {
    if prog.is_empty() {
        return Err(VerifyError::Empty);
    }
    if prog.len() > MAX_INSNS {
        return Err(VerifyError::TooLong(prog.len()));
    }
    let mut has_exit = false;
    let mut pc = 0usize;
    while pc < prog.len() {
        let insn = prog[pc];
        if insn.dst > 10 || insn.src > 10 {
            return Err(VerifyError::BadRegister {
                pc,
                reg: insn.dst.max(insn.src),
            });
        }
        let class = insn.op & 0x07;
        match class {
            BPF_ALU | BPF_ALU64 => {
                let op = insn.op & 0xf0;
                let known = matches!(
                    op,
                    BPF_ADD
                        | BPF_SUB
                        | BPF_MUL
                        | BPF_DIV
                        | BPF_OR
                        | BPF_AND
                        | BPF_LSH
                        | BPF_RSH
                        | BPF_NEG
                        | BPF_MOD
                        | BPF_XOR
                        | BPF_MOV
                        | BPF_ARSH
                        | BPF_END
                );
                if !known {
                    return Err(VerifyError::BadOpcode { pc, op: insn.op });
                }
                if insn.dst == R10 {
                    return Err(VerifyError::WriteToFp { pc });
                }
            }
            BPF_JMP | BPF_JMP32 => {
                let op = insn.op & 0xf0;
                match op {
                    BPF_EXIT => has_exit = true,
                    BPF_CALL => {}
                    BPF_JA | BPF_JEQ | BPF_JNE | BPF_JGT | BPF_JGE | BPF_JLT | BPF_JLE
                    | BPF_JSET | BPF_JSGT | BPF_JSGE | BPF_JSLT | BPF_JSLE => {
                        let target = pc as i64 + 1 + insn.off as i64;
                        if target < 0 || target as usize >= prog.len() {
                            return Err(VerifyError::JumpOutOfRange { pc, target });
                        }
                    }
                    _ => return Err(VerifyError::BadOpcode { pc, op: insn.op }),
                }
            }
            BPF_LDX | BPF_ST | BPF_STX => {
                // all four size encodings (W/H/B/DW) are legal here
                if class == BPF_STX || class == BPF_ST {
                    // stores *through* r10 are fine; overwriting r10 is not
                    // (register writes happen only via LDX dst)
                }
                if class == BPF_LDX && insn.dst == R10 {
                    return Err(VerifyError::WriteToFp { pc });
                }
            }
            BPF_LD => {
                #[allow(clippy::collapsible_match)]
                if insn.op == (BPF_LD | BPF_IMM | BPF_DW) {
                    if pc + 1 >= prog.len() {
                        return Err(VerifyError::TruncatedLdImm64 { pc });
                    }
                    if insn.dst == R10 {
                        return Err(VerifyError::WriteToFp { pc });
                    }
                    pc += 1; // skip the second slot
                } else {
                    return Err(VerifyError::BadOpcode { pc, op: insn.op });
                }
            }
            _ => return Err(VerifyError::BadOpcode { pc, op: insn.op }),
        }
        pc += 1;
    }
    if !has_exit {
        return Err(VerifyError::NoExit);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_minimal_program() {
        let mut b = ProgBuilder::new();
        b.ret(XdpAction::Pass);
        assert_eq!(verify(&b.build()), Ok(()));
    }

    #[test]
    fn rejects_empty_and_no_exit() {
        assert_eq!(verify(&[]), Err(VerifyError::Empty));
        let mut b = ProgBuilder::new();
        b.mov64_imm(R0, 2);
        assert_eq!(verify(&b.build()), Err(VerifyError::NoExit));
    }

    #[test]
    fn rejects_wild_jump() {
        let prog = [Insn {
            op: BPF_JMP | BPF_JA,
            dst: 0,
            src: 0,
            off: 100,
            imm: 0,
        }];
        assert!(matches!(
            verify(&prog),
            Err(VerifyError::JumpOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_bad_register_and_opcode() {
        let prog = [Insn {
            op: BPF_ALU64 | BPF_MOV,
            dst: 12,
            src: 0,
            off: 0,
            imm: 0,
        }];
        assert!(matches!(
            verify(&prog),
            Err(VerifyError::BadRegister { .. })
        ));
        let prog = [Insn {
            op: 0xff,
            dst: 0,
            src: 0,
            off: 0,
            imm: 0,
        }];
        assert!(matches!(verify(&prog), Err(VerifyError::BadOpcode { .. })));
    }

    #[test]
    fn rejects_truncated_ld_imm64() {
        let prog = [Insn {
            op: BPF_LD | BPF_IMM | BPF_DW,
            dst: 1,
            src: 0,
            off: 0,
            imm: 0,
        }];
        assert!(matches!(
            verify(&prog),
            Err(VerifyError::TruncatedLdImm64 { .. })
        ));
    }

    #[test]
    fn rejects_fp_overwrite() {
        let mut b = ProgBuilder::new();
        b.mov64_imm(R10, 0).exit();
        assert!(matches!(
            verify(&b.build()),
            Err(VerifyError::WriteToFp { .. })
        ));
    }

    #[test]
    fn accepts_prebuilt_programs() {
        for prog in [
            crate::programs::null_pass(),
            crate::programs::vlan_strip(),
            crate::programs::firewall(0),
            crate::programs::splice(0),
        ] {
            assert_eq!(verify(&prog), Ok(()), "prebuilt program failed verify");
        }
    }
}
