//! Prebuilt XDP programs — the data-path extensions the paper implements
//! and measures (Table 2, §3.3, Appendix B).
//!
//! Frame layout assumed by these programs (no VLAN unless stated):
//! ```text
//! 0   dst MAC        6   src MAC       12  ethertype
//! 14  IPv4 header    23  protocol      26  src IP    30  dst IP
//! 34  TCP src port   36  TCP dst port  38  seq       42  ack
//! 47  TCP flags
//! ```

use crate::insn::*;
use crate::vm::{HELPER_ADJUST_HEAD, MD_DATA, MD_DATA_END};

/// Byte offsets into a TCP/IPv4/Ethernet frame.
pub mod off {
    pub const ETHERTYPE: i16 = 12;
    pub const IP_PROTO: i16 = 23;
    pub const IP_SRC: i16 = 26;
    pub const IP_DST: i16 = 30;
    pub const TCP_SPORT: i16 = 34;
    pub const TCP_DPORT: i16 = 36;
    pub const TCP_SEQ: i16 = 38;
    pub const TCP_ACK: i16 = 42;
    pub const TCP_FLAGS: i16 = 47;
}

const SYN_FIN_RST: i32 = 0x02 | 0x01 | 0x04;

/// The splice-table value (`struct tcp_splice_t` in Listing 1), 24 bytes:
/// ```text
/// 0  remote_mac[6]   6  pad[2]   8  remote_ip[4]   12 local_port[2]
/// 14 remote_port[2]  16 seq_delta[4]               20 ack_delta[4]
/// ```
pub const SPLICE_VALUE_SIZE: usize = 24;
/// The splice-table key (`struct pkt_4tuple_t`): src ip, dst ip, sport,
/// dport — 12 bytes starting at the segment's source IP.
pub const SPLICE_KEY_SIZE: usize = 12;

/// Null program: `return XDP_PASS;` (Table 2's "XDP (null)" row).
pub fn null_pass() -> Vec<Insn> {
    let mut b = ProgBuilder::new();
    b.ret(XdpAction::Pass);
    b.build()
}

/// Drop everything (used in tests and as a kill switch).
pub fn drop_all() -> Vec<Insn> {
    let mut b = ProgBuilder::new();
    b.ret(XdpAction::Drop);
    b.build()
}

/// Emit the common prologue: r6 = data, r7 = data_end; branch to `out` if
/// the first `need` bytes are not present.
fn prologue(b: &mut ProgBuilder, need: i32, out: &str) {
    b.ldx(BPF_DW, R6, R1, MD_DATA)
        .ldx(BPF_DW, R7, R1, MD_DATA_END)
        .mov64_reg(R8, R6)
        .add64_imm(R8, need)
        .jmp_reg(BPF_JGT, R8, R7, out);
}

/// Strip an 802.1Q VLAN tag on ingress (Table 2's "XDP (vlan-strip)").
/// Untagged frames pass through untouched.
pub fn vlan_strip() -> Vec<Insn> {
    let mut b = ProgBuilder::new();
    prologue(&mut b, 18, "pass");
    // if ethertype != 0x8100 -> pass
    b.ldx(BPF_H, R2, R6, off::ETHERTYPE)
        .be(R2, 16)
        .jmp_imm(BPF_JNE, R2, 0x8100, "pass");
    // save both MACs (12 bytes): r2 = dst[0..8], r3 = macs[8..12]
    b.ldx(BPF_DW, R2, R6, 0).ldx(BPF_W, R3, R6, 8);
    // shift them right by 4 (into the tag's space)
    b.stx(BPF_DW, R6, R2, 4).stx(BPF_W, R6, R3, 12);
    // trim 4 bytes from the front
    b.mov64_imm(R2, 4).call(HELPER_ADJUST_HEAD);
    b.ret(XdpAction::Pass);
    b.label("pass").ret(XdpAction::Pass);
    b.build()
}

/// Firewall: drop packets whose source IP is in the blacklist hash map
/// (key: 4-byte IP in network order, value: 8-byte hit counter). §3.3's
/// worked example; the control plane adds/removes entries dynamically.
pub fn firewall(blacklist_fd: u32) -> Vec<Insn> {
    let mut b = ProgBuilder::new();
    prologue(&mut b, 34, "pass");
    // only IPv4 is filtered
    b.ldx(BPF_H, R2, R6, off::ETHERTYPE)
        .be(R2, 16)
        .jmp_imm(BPF_JNE, R2, 0x0800, "pass");
    // key = src IP (4 bytes, network order) on the stack
    b.ldx(BPF_W, R2, R6, off::IP_SRC)
        .stx(BPF_W, R10, R2, -4)
        .mov64_imm(R1, blacklist_fd as i32)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -4)
        .call(helpers::MAP_LOOKUP)
        .jmp_imm(BPF_JEQ, R0, 0, "pass");
    // blacklisted: bump the hit counter, then drop
    b.ldx(BPF_DW, R3, R0, 0)
        .add64_imm(R3, 1)
        .stx(BPF_DW, R0, R3, 0)
        .ret(XdpAction::Drop);
    b.label("pass").ret(XdpAction::Pass);
    b.build()
}

/// Connection splicing (Listing 1 / Appendix B): AccelTCP-style layer-4
/// proxying entirely on the NIC. 24 lines of C in the paper; here the
/// equivalent eBPF.
///
/// * non-IPv4/TCP → `XDP_REDIRECT` (control plane)
/// * SYN/FIN/RST → delete the map entry, `XDP_REDIRECT`
/// * 4-tuple not in `splice_tbl` → `XDP_PASS` (normal data-path)
/// * hit → rewrite MACs/IPs/ports, translate seq/ack, `XDP_TX`
///
/// The harness re-checksums transmitted frames ("FlexTOE handles
/// sequencing and updating the checksum of the segment").
pub fn splice(splice_fd: u32) -> Vec<Insn> {
    let mut b = ProgBuilder::new();
    prologue(&mut b, 54, "redirect");
    // Filter non-IPv4/TCP segments to control-plane
    b.ldx(BPF_H, R2, R6, off::ETHERTYPE)
        .be(R2, 16)
        .jmp_imm(BPF_JNE, R2, 0x0800, "redirect")
        .ldx(BPF_B, R2, R6, off::IP_PROTO)
        .jmp_imm(BPF_JNE, R2, 6, "redirect");
    // key = 12 bytes at IP_SRC (src ip, dst ip, sport, dport) -> stack[-12]
    b.ldx(BPF_DW, R2, R6, off::IP_SRC)
        .stx(BPF_DW, R10, R2, -12)
        .ldx(BPF_W, R2, R6, off::IP_SRC + 8)
        .stx(BPF_W, R10, R2, -4);
    // Connection control: segments with SYN/FIN/RST remove the entry and
    // go to the control plane.
    b.ldx(BPF_B, R2, R6, off::TCP_FLAGS)
        .alu64_imm(BPF_AND, R2, SYN_FIN_RST)
        .jmp_imm(BPF_JEQ, R2, 0, "lookup")
        .mov64_imm(R1, splice_fd as i32)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -12)
        .call(helpers::MAP_DELETE)
        .ja("redirect");
    b.label("lookup")
        .mov64_imm(R1, splice_fd as i32)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -12)
        .call(helpers::MAP_LOOKUP)
        .jmp_imm(BPF_JEQ, R0, 0, "pass"); // miss -> normal data-path
                                          // --- patch_headers (r0 = &tcp_splice_t) ---
                                          // eth.src <- eth.dst ; eth.dst <- state.remote_mac
    b.ldx(BPF_DW, R2, R6, 0) // old dst (6B used)
        .stx(BPF_W, R6, R2, 6) // src[0..4] = dst[0..4]
        .alu64_imm(BPF_RSH, R2, 32)
        .stx(BPF_H, R6, R2, 10) // src[4..6] = dst[4..6]
        .ldx(BPF_W, R3, R0, 0)
        .stx(BPF_W, R6, R3, 0) // dst[0..4] = remote_mac[0..4]
        .ldx(BPF_H, R3, R0, 4)
        .stx(BPF_H, R6, R3, 4); // dst[4..6] = remote_mac[4..6]
                                // ip.src <- ip.dst ; ip.dst <- state.remote_ip
    b.ldx(BPF_W, R2, R6, off::IP_DST)
        .stx(BPF_W, R6, R2, off::IP_SRC)
        .ldx(BPF_W, R3, R0, 8)
        .stx(BPF_W, R6, R3, off::IP_DST);
    // tcp ports <- state.local_port / state.remote_port
    b.ldx(BPF_H, R3, R0, 12)
        .stx(BPF_H, R6, R3, off::TCP_SPORT)
        .ldx(BPF_H, R3, R0, 14)
        .stx(BPF_H, R6, R3, off::TCP_DPORT);
    // seq += seq_delta ; ack += ack_delta (values are big-endian on wire)
    b.ldx(BPF_W, R2, R6, off::TCP_SEQ)
        .be(R2, 32)
        .ldx(BPF_W, R3, R0, 16)
        .alu32_reg(BPF_ADD, R2, R3)
        .be(R2, 32)
        .stx(BPF_W, R6, R2, off::TCP_SEQ);
    b.ldx(BPF_W, R2, R6, off::TCP_ACK)
        .be(R2, 32)
        .ldx(BPF_W, R3, R0, 20)
        .alu32_reg(BPF_ADD, R2, R3)
        .be(R2, 32)
        .stx(BPF_W, R6, R2, off::TCP_ACK);
    b.ret(XdpAction::Tx); // send out the MAC
    b.label("pass").ret(XdpAction::Pass);
    b.label("redirect").ret(XdpAction::Redirect);
    b.build()
}

/// Encode a `tcp_splice_t` value for the splice table.
#[allow(clippy::too_many_arguments)]
pub fn splice_value(
    remote_mac: [u8; 6],
    remote_ip: [u8; 4],
    local_port: u16,
    remote_port: u16,
    seq_delta: u32,
    ack_delta: u32,
) -> [u8; SPLICE_VALUE_SIZE] {
    let mut v = [0u8; SPLICE_VALUE_SIZE];
    v[0..6].copy_from_slice(&remote_mac);
    v[8..12].copy_from_slice(&remote_ip);
    v[12..14].copy_from_slice(&local_port.to_be_bytes());
    v[14..16].copy_from_slice(&remote_port.to_be_bytes());
    // deltas are read with LDX_W (little-endian load) and added in host
    // order after the wire value is byte-swapped, so store them LE.
    v[16..20].copy_from_slice(&seq_delta.to_le_bytes());
    v[20..24].copy_from_slice(&ack_delta.to_le_bytes());
    v
}

/// Build the 12-byte splice key from a frame (src ip, dst ip, ports).
pub fn splice_key(frame: &[u8]) -> [u8; SPLICE_KEY_SIZE] {
    let mut k = [0u8; SPLICE_KEY_SIZE];
    k.copy_from_slice(&frame[off::IP_SRC as usize..off::IP_SRC as usize + 12]);
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::{Map, MapSet};
    use crate::vm::Vm;

    /// Build a minimal TCP/IPv4 frame for program tests (64 bytes).
    fn tcp_frame(src_ip: [u8; 4], dst_ip: [u8; 4], sport: u16, dport: u16, flags: u8) -> Vec<u8> {
        let mut f = vec![0u8; 64];
        f[0..6].copy_from_slice(&[0xaa; 6]); // dst mac
        f[6..12].copy_from_slice(&[0xbb; 6]); // src mac
        f[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
        f[14] = 0x45;
        f[23] = 6; // TCP
        f[26..30].copy_from_slice(&src_ip);
        f[30..34].copy_from_slice(&dst_ip);
        f[34..36].copy_from_slice(&sport.to_be_bytes());
        f[36..38].copy_from_slice(&dport.to_be_bytes());
        f[38..42].copy_from_slice(&1000u32.to_be_bytes()); // seq
        f[42..46].copy_from_slice(&2000u32.to_be_bytes()); // ack
        f[47] = flags;
        f
    }

    fn exec(prog: &[Insn], frame: &mut Vec<u8>, maps: &mut MapSet) -> XdpAction {
        let res = Vm::new().run(prog, frame, maps).unwrap();
        if res.head_adjust > 0 {
            frame.drain(..res.head_adjust as usize);
        }
        XdpAction::from_ret(res.ret)
    }

    #[test]
    fn null_program_passes() {
        let mut maps = MapSet::new();
        let mut f = tcp_frame([1, 1, 1, 1], [2, 2, 2, 2], 10, 20, 0x10);
        assert_eq!(exec(&null_pass(), &mut f, &mut maps), XdpAction::Pass);
    }

    #[test]
    fn vlan_strip_removes_tag() {
        let mut maps = MapSet::new();
        let mut f = tcp_frame([1, 1, 1, 1], [2, 2, 2, 2], 10, 20, 0x10);
        let orig = f.clone();
        // insert a VLAN tag by hand: splice 4 bytes after the MACs
        let mut tagged = Vec::new();
        tagged.extend_from_slice(&f[0..12]);
        tagged.extend_from_slice(&[0x81, 0x00, 0x00, 0x2a]); // vid 42
        tagged.extend_from_slice(&f[12..]);
        f = tagged;
        assert_eq!(exec(&vlan_strip(), &mut f, &mut maps), XdpAction::Pass);
        assert_eq!(f, orig, "tag stripped, frame restored");
        // untagged frames untouched
        let mut f2 = orig.clone();
        assert_eq!(exec(&vlan_strip(), &mut f2, &mut maps), XdpAction::Pass);
        assert_eq!(f2, orig);
    }

    #[test]
    fn firewall_drops_blacklisted_and_counts() {
        let mut maps = MapSet::new();
        let fd = maps.add(Map::hash(4, 8, 64));
        maps.get_mut(fd)
            .unwrap()
            .update(&[9, 9, 9, 9], &[0; 8])
            .unwrap();
        let prog = firewall(fd);
        let mut bad = tcp_frame([9, 9, 9, 9], [2, 2, 2, 2], 1, 2, 0x10);
        let mut good = tcp_frame([8, 8, 8, 8], [2, 2, 2, 2], 1, 2, 0x10);
        assert_eq!(exec(&prog, &mut bad, &mut maps), XdpAction::Drop);
        assert_eq!(exec(&prog, &mut bad, &mut maps), XdpAction::Drop);
        assert_eq!(exec(&prog, &mut good, &mut maps), XdpAction::Pass);
        let hits = maps
            .get(fd)
            .unwrap()
            .lookup(&[9, 9, 9, 9])
            .unwrap()
            .unwrap();
        assert_eq!(u64::from_le_bytes(hits.try_into().unwrap()), 2);
    }

    #[test]
    fn splice_miss_passes_to_datapath() {
        let mut maps = MapSet::new();
        let fd = maps.add(Map::hash(SPLICE_KEY_SIZE, SPLICE_VALUE_SIZE, 64));
        let mut f = tcp_frame([1, 1, 1, 1], [2, 2, 2, 2], 100, 200, 0x10);
        assert_eq!(exec(&splice(fd), &mut f, &mut maps), XdpAction::Pass);
    }

    #[test]
    fn splice_hit_patches_and_transmits() {
        let mut maps = MapSet::new();
        let fd = maps.add(Map::hash(SPLICE_KEY_SIZE, SPLICE_VALUE_SIZE, 64));
        let mut f = tcp_frame([1, 1, 1, 1], [2, 2, 2, 2], 100, 200, 0x10);
        let key = splice_key(&f);
        let val = splice_value([0xcc; 6], [3, 3, 3, 3], 500, 600, 10_000, 20_000);
        maps.get_mut(fd).unwrap().update(&key, &val).unwrap();

        assert_eq!(exec(&splice(fd), &mut f, &mut maps), XdpAction::Tx);
        assert_eq!(&f[0..6], &[0xcc; 6], "dst mac = remote_mac");
        assert_eq!(&f[6..12], &[0xaa; 6], "src mac = old dst mac");
        assert_eq!(&f[26..30], &[2, 2, 2, 2], "src ip = old dst ip");
        assert_eq!(&f[30..34], &[3, 3, 3, 3], "dst ip = remote ip");
        assert_eq!(u16::from_be_bytes([f[34], f[35]]), 500);
        assert_eq!(u16::from_be_bytes([f[36], f[37]]), 600);
        assert_eq!(
            u32::from_be_bytes(f[38..42].try_into().unwrap()),
            1000 + 10_000,
            "seq translated"
        );
        assert_eq!(
            u32::from_be_bytes(f[42..46].try_into().unwrap()),
            2000 + 20_000,
            "ack translated"
        );
    }

    #[test]
    fn splice_control_flags_remove_entry_and_redirect() {
        let mut maps = MapSet::new();
        let fd = maps.add(Map::hash(SPLICE_KEY_SIZE, SPLICE_VALUE_SIZE, 64));
        let mut f = tcp_frame([1, 1, 1, 1], [2, 2, 2, 2], 100, 200, 0x11); // FIN|ACK
        let key = splice_key(&f);
        let val = splice_value([0xcc; 6], [3, 3, 3, 3], 500, 600, 0, 0);
        maps.get_mut(fd).unwrap().update(&key, &val).unwrap();
        assert_eq!(exec(&splice(fd), &mut f, &mut maps), XdpAction::Redirect);
        assert!(maps.get(fd).unwrap().is_empty(), "entry removed atomically");
    }

    #[test]
    fn splice_redirects_non_tcp() {
        let mut maps = MapSet::new();
        let fd = maps.add(Map::hash(SPLICE_KEY_SIZE, SPLICE_VALUE_SIZE, 64));
        let mut f = tcp_frame([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, 0x10);
        f[12..14].copy_from_slice(&0x0806u16.to_be_bytes()); // ARP
        assert_eq!(exec(&splice(fd), &mut f, &mut maps), XdpAction::Redirect);
        let mut f = tcp_frame([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, 0x10);
        f[23] = 17; // UDP
        assert_eq!(exec(&splice(fd), &mut f, &mut maps), XdpAction::Redirect);
    }

    #[test]
    fn splice_listing1_line_count_claim() {
        // Not a behaviour test: the paper implements splicing in 24 lines
        // of eBPF-C; our raw-eBPF version stays within a small multiple.
        assert!(splice(0).len() < 70, "{} insns", splice(0).len());
    }
}
