//! eBPF instruction encoding and an assembler-style program builder.
//!
//! We implement the classic 64-bit eBPF instruction format (the subset the
//! NFP eBPF offload supports): ALU64/ALU32, jumps, memory loads/stores,
//! byte-order conversions, helper calls, and the two-slot 64-bit immediate
//! load. FlexTOE "supports C and XDP programs written in eBPF" (§1); our
//! data-path executes these programs through `flextoe_ebpf::Vm`.

/// Registers r0–r10 (r10 = read-only frame pointer).
pub type Reg = u8;
pub const R0: Reg = 0;
pub const R1: Reg = 1;
pub const R2: Reg = 2;
pub const R3: Reg = 3;
pub const R4: Reg = 4;
pub const R5: Reg = 5;
pub const R6: Reg = 6;
pub const R7: Reg = 7;
pub const R8: Reg = 8;
pub const R9: Reg = 9;
pub const R10: Reg = 10;

/// One 8-byte instruction slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Insn {
    pub op: u8,
    pub dst: Reg,
    pub src: Reg,
    pub off: i16,
    pub imm: i32,
}

// ---- opcode classes ----
pub const BPF_LD: u8 = 0x00;
pub const BPF_LDX: u8 = 0x01;
pub const BPF_ST: u8 = 0x02;
pub const BPF_STX: u8 = 0x03;
pub const BPF_ALU: u8 = 0x04;
pub const BPF_JMP: u8 = 0x05;
pub const BPF_JMP32: u8 = 0x06;
pub const BPF_ALU64: u8 = 0x07;

// ---- size modifiers ----
pub const BPF_W: u8 = 0x00; // 4 bytes
pub const BPF_H: u8 = 0x08; // 2 bytes
pub const BPF_B: u8 = 0x10; // 1 byte
pub const BPF_DW: u8 = 0x18; // 8 bytes
pub const BPF_MEM: u8 = 0x60;
pub const BPF_IMM: u8 = 0x00;

// ---- source modifier ----
pub const BPF_K: u8 = 0x00; // immediate
pub const BPF_X: u8 = 0x08; // register

// ---- ALU / JMP operations (high nibble) ----
pub const BPF_ADD: u8 = 0x00;
pub const BPF_SUB: u8 = 0x10;
pub const BPF_MUL: u8 = 0x20;
pub const BPF_DIV: u8 = 0x30;
pub const BPF_OR: u8 = 0x40;
pub const BPF_AND: u8 = 0x50;
pub const BPF_LSH: u8 = 0x60;
pub const BPF_RSH: u8 = 0x70;
pub const BPF_NEG: u8 = 0x80;
pub const BPF_MOD: u8 = 0x90;
pub const BPF_XOR: u8 = 0xa0;
pub const BPF_MOV: u8 = 0xb0;
pub const BPF_ARSH: u8 = 0xc0;
pub const BPF_END: u8 = 0xd0;

pub const BPF_JA: u8 = 0x00;
pub const BPF_JEQ: u8 = 0x10;
pub const BPF_JGT: u8 = 0x20;
pub const BPF_JGE: u8 = 0x30;
pub const BPF_JSET: u8 = 0x40;
pub const BPF_JNE: u8 = 0x50;
pub const BPF_JSGT: u8 = 0x60;
pub const BPF_JSGE: u8 = 0x70;
pub const BPF_CALL: u8 = 0x80;
pub const BPF_EXIT: u8 = 0x90;
pub const BPF_JLT: u8 = 0xa0;
pub const BPF_JLE: u8 = 0xb0;
pub const BPF_JSLT: u8 = 0xc0;
pub const BPF_JSLE: u8 = 0xd0;

// ---- byte-order (BPF_END) flavours ----
pub const BPF_TO_LE: u8 = 0x00;
pub const BPF_TO_BE: u8 = 0x08;

/// Helper function ids (the subset our XDP data-path exposes).
pub mod helpers {
    /// `void *bpf_map_lookup_elem(map_fd, key_ptr)` → value ptr or 0.
    pub const MAP_LOOKUP: i32 = 1;
    /// `int bpf_map_update_elem(map_fd, key_ptr, value_ptr, flags)`.
    pub const MAP_UPDATE: i32 = 2;
    /// `int bpf_map_delete_elem(map_fd, key_ptr)`.
    pub const MAP_DELETE: i32 = 3;
    /// `u32 bpf_get_prandom_u32()` (deterministic in simulation).
    pub const PRANDOM: i32 = 7;
    /// `s64 bpf_csum_diff(from_ptr, from_size, to_ptr, to_size, seed)`.
    pub const CSUM_DIFF: i32 = 28;
}

/// XDP verdicts (§3.3): the result codes a module returns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XdpAction {
    Aborted = 0,
    /// Drop the packet.
    Drop = 1,
    /// Forward to the next FlexTOE pipeline stage.
    Pass = 2,
    /// Send the packet out the MAC.
    Tx = 3,
    /// Redirect the packet to the control plane.
    Redirect = 4,
}

impl XdpAction {
    pub fn from_ret(v: u64) -> XdpAction {
        match v {
            1 => XdpAction::Drop,
            2 => XdpAction::Pass,
            3 => XdpAction::Tx,
            4 => XdpAction::Redirect,
            _ => XdpAction::Aborted,
        }
    }
}

/// xdp_md context layout as seen by programs (offsets in bytes):
/// `data` (u32 @0), `data_end` (u32 @4).
pub const XDP_MD_DATA: i16 = 0;
pub const XDP_MD_DATA_END: i16 = 4;

/// Assembler-style builder with label-based jumps.
#[derive(Default)]
pub struct ProgBuilder {
    insns: Vec<Insn>,
    labels: std::collections::HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
}

impl ProgBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, i: Insn) -> &mut Self {
        self.insns.push(i);
        self
    }

    pub fn label(&mut self, name: &str) -> &mut Self {
        self.labels.insert(name.to_string(), self.insns.len());
        self
    }

    // ---- ALU64 ----
    pub fn alu64_imm(&mut self, op: u8, dst: Reg, imm: i32) -> &mut Self {
        self.push(Insn {
            op: BPF_ALU64 | BPF_K | op,
            dst,
            src: 0,
            off: 0,
            imm,
        })
    }
    pub fn alu64_reg(&mut self, op: u8, dst: Reg, src: Reg) -> &mut Self {
        self.push(Insn {
            op: BPF_ALU64 | BPF_X | op,
            dst,
            src,
            off: 0,
            imm: 0,
        })
    }
    pub fn alu32_imm(&mut self, op: u8, dst: Reg, imm: i32) -> &mut Self {
        self.push(Insn {
            op: BPF_ALU | BPF_K | op,
            dst,
            src: 0,
            off: 0,
            imm,
        })
    }
    pub fn alu32_reg(&mut self, op: u8, dst: Reg, src: Reg) -> &mut Self {
        self.push(Insn {
            op: BPF_ALU | BPF_X | op,
            dst,
            src,
            off: 0,
            imm: 0,
        })
    }
    pub fn mov64_imm(&mut self, dst: Reg, imm: i32) -> &mut Self {
        self.alu64_imm(BPF_MOV, dst, imm)
    }
    pub fn mov64_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.alu64_reg(BPF_MOV, dst, src)
    }
    pub fn add64_imm(&mut self, dst: Reg, imm: i32) -> &mut Self {
        self.alu64_imm(BPF_ADD, dst, imm)
    }
    /// Load a full 64-bit immediate (two instruction slots).
    pub fn ld_imm64(&mut self, dst: Reg, v: u64) -> &mut Self {
        self.push(Insn {
            op: BPF_LD | BPF_IMM | BPF_DW,
            dst,
            src: 0,
            off: 0,
            imm: v as u32 as i32,
        });
        self.push(Insn {
            op: 0,
            dst: 0,
            src: 0,
            off: 0,
            imm: (v >> 32) as u32 as i32,
        })
    }
    /// Byte-order conversion: to big-endian of width 16/32/64.
    pub fn be(&mut self, dst: Reg, bits: i32) -> &mut Self {
        self.push(Insn {
            op: BPF_ALU | BPF_TO_BE | BPF_END,
            dst,
            src: 0,
            off: 0,
            imm: bits,
        })
    }

    // ---- memory ----
    pub fn ldx(&mut self, size: u8, dst: Reg, src: Reg, off: i16) -> &mut Self {
        self.push(Insn {
            op: BPF_LDX | BPF_MEM | size,
            dst,
            src,
            off,
            imm: 0,
        })
    }
    pub fn stx(&mut self, size: u8, dst: Reg, src: Reg, off: i16) -> &mut Self {
        self.push(Insn {
            op: BPF_STX | BPF_MEM | size,
            dst,
            src,
            off,
            imm: 0,
        })
    }
    pub fn st_imm(&mut self, size: u8, dst: Reg, off: i16, imm: i32) -> &mut Self {
        self.push(Insn {
            op: BPF_ST | BPF_MEM | size,
            dst,
            src: 0,
            off,
            imm,
        })
    }

    // ---- control flow ----
    pub fn jmp_imm(&mut self, op: u8, dst: Reg, imm: i32, target: &str) -> &mut Self {
        self.fixups.push((self.insns.len(), target.to_string()));
        self.push(Insn {
            op: BPF_JMP | BPF_K | op,
            dst,
            src: 0,
            off: 0,
            imm,
        })
    }
    pub fn jmp_reg(&mut self, op: u8, dst: Reg, src: Reg, target: &str) -> &mut Self {
        self.fixups.push((self.insns.len(), target.to_string()));
        self.push(Insn {
            op: BPF_JMP | BPF_X | op,
            dst,
            src,
            off: 0,
            imm: 0,
        })
    }
    pub fn jmp32_imm(&mut self, op: u8, dst: Reg, imm: i32, target: &str) -> &mut Self {
        self.fixups.push((self.insns.len(), target.to_string()));
        self.push(Insn {
            op: BPF_JMP32 | BPF_K | op,
            dst,
            src: 0,
            off: 0,
            imm,
        })
    }
    pub fn ja(&mut self, target: &str) -> &mut Self {
        self.fixups.push((self.insns.len(), target.to_string()));
        self.push(Insn {
            op: BPF_JMP | BPF_JA,
            dst: 0,
            src: 0,
            off: 0,
            imm: 0,
        })
    }
    pub fn call(&mut self, helper: i32) -> &mut Self {
        self.push(Insn {
            op: BPF_JMP | BPF_CALL,
            dst: 0,
            src: 0,
            off: 0,
            imm: helper,
        })
    }
    pub fn exit(&mut self) -> &mut Self {
        self.push(Insn {
            op: BPF_JMP | BPF_EXIT,
            dst: 0,
            src: 0,
            off: 0,
            imm: 0,
        })
    }
    /// `mov r0, <action>; exit`.
    pub fn ret(&mut self, action: XdpAction) -> &mut Self {
        self.mov64_imm(R0, action as i32);
        self.exit()
    }

    /// Resolve labels and produce the instruction stream.
    pub fn build(&mut self) -> Vec<Insn> {
        for (at, name) in &self.fixups {
            let target = *self
                .labels
                .get(name)
                .unwrap_or_else(|| panic!("undefined label {name}"));
            // off is relative to the *next* instruction
            self.insns[*at].off = (target as i64 - *at as i64 - 1) as i16;
        }
        self.fixups.clear();
        self.insns.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let mut b = ProgBuilder::new();
        b.label("start")
            .mov64_imm(R0, 0)
            .jmp_imm(BPF_JEQ, R1, 0, "end")
            .ja("start")
            .label("end")
            .exit();
        let p = b.build();
        assert_eq!(p[1].off, 1); // skips the ja
        assert_eq!(p[2].off, -3); // back to start
    }

    #[test]
    fn ld_imm64_uses_two_slots() {
        let mut b = ProgBuilder::new();
        b.ld_imm64(R3, 0xdead_beef_1234_5678);
        let p = b.build();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].imm as u32, 0x1234_5678);
        assert_eq!(p[1].imm as u32, 0xdead_beef);
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn unresolved_label_panics() {
        let mut b = ProgBuilder::new();
        b.ja("nowhere");
        b.build();
    }

    #[test]
    fn xdp_action_mapping() {
        assert_eq!(XdpAction::from_ret(2), XdpAction::Pass);
        assert_eq!(XdpAction::from_ret(1), XdpAction::Drop);
        assert_eq!(XdpAction::from_ret(3), XdpAction::Tx);
        assert_eq!(XdpAction::from_ret(4), XdpAction::Redirect);
        assert_eq!(XdpAction::from_ret(99), XdpAction::Aborted);
    }
}
