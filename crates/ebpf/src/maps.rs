//! BPF maps (§3.3): "XDP modules may use BPF maps (arrays, hash tables) to
//! store and modify state atomically, which may be modified by the
//! control-plane. For example, a firewall module may store blacklisted IPs
//! in a hash map and the control-plane may add or remove entries
//! dynamically."
//!
//! Maps are shared between the data-path VM and the control plane through
//! `Rc<RefCell<MapSet>>`; single-threaded simulation makes every operation
//! trivially atomic, matching the hardware's atomic map engines.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    NoSuchMap,
    KeySize,
    ValueSize,
    Full,
    IndexOutOfBounds,
}

#[derive(Debug)]
pub enum Map {
    Hash {
        key_size: usize,
        value_size: usize,
        max_entries: usize,
        data: HashMap<Vec<u8>, Vec<u8>>,
    },
    Array {
        value_size: usize,
        data: Vec<Vec<u8>>,
    },
}

impl Map {
    pub fn hash(key_size: usize, value_size: usize, max_entries: usize) -> Map {
        Map::Hash {
            key_size,
            value_size,
            max_entries,
            data: HashMap::new(),
        }
    }

    pub fn array(value_size: usize, n_entries: usize) -> Map {
        Map::Array {
            value_size,
            data: vec![vec![0; value_size]; n_entries],
        }
    }

    pub fn key_size(&self) -> usize {
        match self {
            Map::Hash { key_size, .. } => *key_size,
            Map::Array { .. } => 4,
        }
    }

    pub fn value_size(&self) -> usize {
        match self {
            Map::Hash { value_size, .. } | Map::Array { value_size, .. } => *value_size,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Map::Hash { data, .. } => data.len(),
            Map::Array { data, .. } => data.len(),
        }
    }
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn lookup(&self, key: &[u8]) -> Result<Option<&[u8]>, MapError> {
        match self {
            Map::Hash { key_size, data, .. } => {
                if key.len() != *key_size {
                    return Err(MapError::KeySize);
                }
                Ok(data.get(key).map(|v| v.as_slice()))
            }
            Map::Array { data, .. } => {
                if key.len() != 4 {
                    return Err(MapError::KeySize);
                }
                let idx = u32::from_le_bytes(key.try_into().unwrap()) as usize;
                Ok(data.get(idx).map(|v| v.as_slice()))
            }
        }
    }

    pub fn update(&mut self, key: &[u8], value: &[u8]) -> Result<(), MapError> {
        match self {
            Map::Hash {
                key_size,
                value_size,
                max_entries,
                data,
            } => {
                if key.len() != *key_size {
                    return Err(MapError::KeySize);
                }
                if value.len() != *value_size {
                    return Err(MapError::ValueSize);
                }
                if !data.contains_key(key) && data.len() >= *max_entries {
                    return Err(MapError::Full);
                }
                data.insert(key.to_vec(), value.to_vec());
                Ok(())
            }
            Map::Array { value_size, data } => {
                if key.len() != 4 {
                    return Err(MapError::KeySize);
                }
                if value.len() != *value_size {
                    return Err(MapError::ValueSize);
                }
                let idx = u32::from_le_bytes(key.try_into().unwrap()) as usize;
                let slot = data.get_mut(idx).ok_or(MapError::IndexOutOfBounds)?;
                slot.copy_from_slice(value);
                Ok(())
            }
        }
    }

    pub fn delete(&mut self, key: &[u8]) -> Result<bool, MapError> {
        match self {
            Map::Hash { key_size, data, .. } => {
                if key.len() != *key_size {
                    return Err(MapError::KeySize);
                }
                Ok(data.remove(key).is_some())
            }
            // array entries are zeroed, not removed
            Map::Array { value_size, data } => {
                if key.len() != 4 {
                    return Err(MapError::KeySize);
                }
                let idx = u32::from_le_bytes(key.try_into().unwrap()) as usize;
                let slot = data.get_mut(idx).ok_or(MapError::IndexOutOfBounds)?;
                slot.iter_mut().for_each(|b| *b = 0);
                let _ = value_size;
                Ok(true)
            }
        }
    }

    /// Mutable view of a value (the VM writes through returned pointers).
    pub fn value_mut(&mut self, key: &[u8]) -> Option<&mut Vec<u8>> {
        match self {
            Map::Hash { data, .. } => data.get_mut(key),
            Map::Array { data, .. } => {
                let idx = u32::from_le_bytes(key.try_into().ok()?) as usize;
                data.get_mut(idx)
            }
        }
    }
}

/// The maps available to one XDP program (fd = index).
#[derive(Default, Debug)]
pub struct MapSet {
    maps: Vec<Map>,
}

impl MapSet {
    pub fn new() -> MapSet {
        MapSet::default()
    }

    pub fn add(&mut self, map: Map) -> u32 {
        self.maps.push(map);
        (self.maps.len() - 1) as u32
    }

    pub fn get(&self, fd: u32) -> Result<&Map, MapError> {
        self.maps.get(fd as usize).ok_or(MapError::NoSuchMap)
    }

    pub fn get_mut(&mut self, fd: u32) -> Result<&mut Map, MapError> {
        self.maps.get_mut(fd as usize).ok_or(MapError::NoSuchMap)
    }
}

pub type SharedMaps = Rc<RefCell<MapSet>>;

pub fn shared_maps() -> SharedMaps {
    Rc::new(RefCell::new(MapSet::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_map_crud() {
        let mut m = Map::hash(4, 8, 16);
        assert_eq!(m.lookup(&[1, 2, 3, 4]).unwrap(), None);
        m.update(&[1, 2, 3, 4], &[9; 8]).unwrap();
        assert_eq!(m.lookup(&[1, 2, 3, 4]).unwrap(), Some(&[9u8; 8][..]));
        assert!(m.delete(&[1, 2, 3, 4]).unwrap());
        assert!(!m.delete(&[1, 2, 3, 4]).unwrap());
    }

    #[test]
    fn hash_map_size_checks() {
        let mut m = Map::hash(4, 8, 2);
        assert_eq!(m.update(&[1, 2, 3], &[0; 8]), Err(MapError::KeySize));
        assert_eq!(m.update(&[1, 2, 3, 4], &[0; 7]), Err(MapError::ValueSize));
        m.update(&[1, 0, 0, 0], &[0; 8]).unwrap();
        m.update(&[2, 0, 0, 0], &[0; 8]).unwrap();
        assert_eq!(m.update(&[3, 0, 0, 0], &[0; 8]), Err(MapError::Full));
        // overwriting an existing key is allowed at capacity
        m.update(&[1, 0, 0, 0], &[1; 8]).unwrap();
    }

    #[test]
    fn array_map_semantics() {
        let mut m = Map::array(4, 3);
        m.update(&2u32.to_le_bytes(), &[7, 7, 7, 7]).unwrap();
        assert_eq!(
            m.lookup(&2u32.to_le_bytes()).unwrap(),
            Some(&[7u8, 7, 7, 7][..])
        );
        assert_eq!(
            m.update(&9u32.to_le_bytes(), &[0; 4]),
            Err(MapError::IndexOutOfBounds)
        );
        // delete zeroes
        m.delete(&2u32.to_le_bytes()).unwrap();
        assert_eq!(m.lookup(&2u32.to_le_bytes()).unwrap(), Some(&[0u8; 4][..]));
    }

    #[test]
    fn mapset_fds() {
        let mut s = MapSet::new();
        let a = s.add(Map::hash(4, 4, 8));
        let b = s.add(Map::array(8, 2));
        assert_eq!((a, b), (0, 1));
        assert!(s.get(0).is_ok());
        assert!(s.get(2).is_err());
        s.get_mut(1)
            .unwrap()
            .update(&0u32.to_le_bytes(), &[1; 8])
            .unwrap();
    }
}
