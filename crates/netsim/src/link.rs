//! Point-to-point links with propagation delay and fault injection.
//!
//! Fault injection follows the smoltcp example conventions: a drop
//! probability, a corruption probability (one octet mutated), and an
//! optional size limit. The §5.3 loss experiments "artificially induce
//! packet losses in the network by randomly dropping packets … with a
//! fixed probability" — that is this node.

use flextoe_sim::{CounterHandle, Ctx, Duration, Msg, MsgBurst, Node, NodeId, Stats};

#[derive(Clone, Copy, Debug)]
pub struct Faults {
    /// Probability a frame is silently dropped.
    pub drop_chance: f64,
    /// Probability one random octet is flipped.
    pub corrupt_chance: f64,
    /// Frames larger than this are dropped (None = no limit).
    pub size_limit: Option<usize>,
}

impl Default for Faults {
    fn default() -> Self {
        Faults {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            size_limit: None,
        }
    }
}

pub struct Link {
    pub to: NodeId,
    pub propagation: Duration,
    pub faults: Faults,
    /// Hard administrative state. A down link drops every frame (counted
    /// in `down_drops`); coming back up is an explicit `SetLinkUp(true)`
    /// event — there is no implicit healing.
    pub up: bool,
    pub forwarded: u64,
    pub dropped: u64,
    pub corrupted: u64,
    /// Frames blackholed while the link was administratively down.
    pub down_drops: u64,
    counters: Option<LinkCounters>,
}

#[derive(Clone, Copy)]
struct LinkCounters {
    size_drops: CounterHandle,
    drops: CounterHandle,
    corrupted: CounterHandle,
    down_drops: CounterHandle,
}

/// Reconfigure a link's fault model mid-run. Topology builders schedule
/// these from a `Scenario` fault schedule — e.g. a fabric link degrading
/// at t₁ and healing at t₂ — so experiments stay declarative and
/// deterministic.
pub struct SetFaults(pub Faults);
flextoe_sim::custom_msg!(SetFaults);

/// Hard link state change: `SetLinkUp(false)` takes the link down (every
/// frame blackholed, buffers recycled), `SetLinkUp(true)` restores it.
/// Like [`SetFaults`], healing is always an explicit scheduled event.
pub struct SetLinkUp(pub bool);
flextoe_sim::custom_msg!(SetLinkUp);

impl Link {
    pub fn new(to: NodeId, propagation: Duration) -> Link {
        Link {
            to,
            propagation,
            faults: Faults::default(),
            up: true,
            forwarded: 0,
            dropped: 0,
            corrupted: 0,
            down_drops: 0,
            counters: None,
        }
    }

    pub fn with_faults(to: NodeId, propagation: Duration, faults: Faults) -> Link {
        Link {
            faults,
            ..Link::new(to, propagation)
        }
    }

    /// No fault model active: forwarding is a pure delay (and, because
    /// `Rng::chance(0.0)` never draws, skipping the fault checks leaves
    /// the deterministic random stream untouched).
    #[inline]
    fn faults_inert(&self) -> bool {
        self.faults.drop_chance <= 0.0
            && self.faults.corrupt_chance <= 0.0
            && self.faults.size_limit.is_none()
    }
}

impl Node for Link {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let mut frame = match msg {
            Msg::Frame(frame) => frame,
            msg => {
                let msg = match flextoe_sim::try_cast::<SetFaults>(msg) {
                    Ok(sf) => {
                        self.faults = sf.0;
                        return;
                    }
                    Err(m) => m,
                };
                match flextoe_sim::try_cast::<SetLinkUp>(msg) {
                    Ok(s) => {
                        self.up = s.0;
                        return;
                    }
                    Err(m) => panic!("link: unexpected message {}", m.variant_name()),
                }
            }
        };
        let counters = self.counters.expect("link attached to a sim");
        if !self.up {
            self.dropped += 1;
            self.down_drops += 1;
            ctx.stats.inc(counters.down_drops);
            ctx.pool.put(frame.into_bytes());
            return;
        }
        if let Some(limit) = self.faults.size_limit {
            if frame.len() > limit {
                self.dropped += 1;
                ctx.stats.inc(counters.size_drops);
                ctx.pool.put(frame.into_bytes());
                return;
            }
        }
        if ctx.rng.chance(self.faults.drop_chance) {
            self.dropped += 1;
            ctx.stats.inc(counters.drops);
            ctx.pool.put(frame.into_bytes());
            return;
        }
        if ctx.rng.chance(self.faults.corrupt_chance) && !frame.is_empty() {
            let idx = ctx.rng.below(frame.len() as u64) as usize;
            let bit = 1u8 << ctx.rng.below(8);
            frame.bytes[idx] ^= bit;
            // the bytes no longer match what the emitter computed: drop
            // the parse-once tag so receivers take the checked slow path
            // (and re-verify checksums, catching the corruption)
            frame.meta = None;
            self.corrupted += 1;
            ctx.stats.inc(counters.corrupted);
        }
        self.forwarded += 1;
        ctx.send(self.to, self.propagation, frame);
    }

    fn on_batch(&mut self, ctx: &mut Ctx<'_>, burst: &mut MsgBurst) {
        while let Some(msg) = burst.next(ctx) {
            match msg {
                // healthy-link fast path: skip the per-frame fault checks
                // (re-checked per message — SetFaults / SetLinkUp can
                // arrive mid-burst)
                Msg::Frame(frame) if self.up && self.faults_inert() => {
                    self.forwarded += 1;
                    ctx.send(self.to, self.propagation, frame);
                }
                m => self.on_msg(ctx, m),
            }
        }
    }

    fn on_attach(&mut self, stats: &mut Stats) {
        self.counters = Some(LinkCounters {
            size_drops: stats.counter("link.size_drops"),
            drops: stats.counter("link.drops"),
            corrupted: stats.counter("link.corrupted"),
            down_drops: stats.counter("link.down_drops"),
        });
    }

    fn name(&self) -> String {
        "link".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextoe_sim::{Sim, Time};
    use flextoe_wire::Frame;

    struct Probe {
        frames: Vec<(u64, Vec<u8>)>,
    }
    impl Node for Probe {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let f = flextoe_sim::cast::<Frame>(msg);
            self.frames.push((ctx.now().as_ns(), f.into_bytes()));
        }
    }

    #[test]
    fn propagation_delay_applied() {
        let mut sim = Sim::new(1);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::new(probe, Duration::from_us(1)));
        sim.schedule(Time::from_ns(100), link, Frame::raw(vec![1, 2]));
        sim.run();
        let p = sim.node_ref::<Probe>(probe);
        assert_eq!(p.frames[0].0, 1100);
        assert_eq!(p.frames[0].1, vec![1, 2]);
    }

    #[test]
    fn drop_rate_respected() {
        let mut sim = Sim::new(7);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::with_faults(
            probe,
            Duration::ZERO,
            Faults {
                drop_chance: 0.25,
                ..Default::default()
            },
        ));
        for i in 0..10_000u64 {
            sim.schedule(Time::from_ns(i), link, Frame::raw(vec![0]));
        }
        sim.run();
        let got = sim.node_ref::<Probe>(probe).frames.len() as f64;
        assert!((got / 10_000.0 - 0.75).abs() < 0.02, "{got}");
        assert_eq!(sim.node_ref::<Link>(link).dropped, 10_000 - got as u64);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut sim = Sim::new(3);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::with_faults(
            probe,
            Duration::ZERO,
            Faults {
                corrupt_chance: 1.0,
                ..Default::default()
            },
        ));
        sim.schedule(Time::ZERO, link, Frame::raw(vec![0u8; 32]));
        sim.run();
        let p = &sim.node_ref::<Probe>(probe).frames[0].1;
        let set_bits: u32 = p.iter().map(|b| b.count_ones()).sum();
        assert_eq!(set_bits, 1);
    }

    #[test]
    fn set_faults_reconfigures_mid_run() {
        let mut sim = Sim::new(1);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::new(probe, Duration::ZERO));
        sim.schedule(Time::from_ns(0), link, Frame::raw(vec![1]));
        sim.schedule_in(
            Duration::from_ns(5),
            link,
            SetFaults(Faults {
                drop_chance: 1.0,
                ..Default::default()
            }),
        );
        sim.schedule(Time::from_ns(10), link, Frame::raw(vec![2]));
        sim.schedule_in(Duration::from_ns(15), link, SetFaults(Faults::default()));
        sim.schedule(Time::from_ns(20), link, Frame::raw(vec![3]));
        sim.run();
        let got: Vec<u8> = sim
            .node_ref::<Probe>(probe)
            .frames
            .iter()
            .map(|(_, f)| f[0])
            .collect();
        assert_eq!(got, vec![1, 3], "frame 2 dropped while degraded");
        assert_eq!(sim.node_ref::<Link>(link).dropped, 1);
    }

    #[test]
    fn hard_down_blackholes_until_explicit_up() {
        let mut sim = Sim::new(1);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::new(probe, Duration::ZERO));
        sim.schedule(Time::from_ns(0), link, Frame::raw(vec![1]));
        sim.schedule_in(Duration::from_ns(5), link, SetLinkUp(false));
        sim.schedule(Time::from_ns(10), link, Frame::raw(vec![2]));
        sim.schedule(Time::from_ns(11), link, Frame::raw(vec![3]));
        // healing is an explicit event: nothing forwards before it fires
        sim.schedule_in(Duration::from_ns(20), link, SetLinkUp(true));
        sim.schedule(Time::from_ns(30), link, Frame::raw(vec![4]));
        sim.run();
        let got: Vec<u8> = sim
            .node_ref::<Probe>(probe)
            .frames
            .iter()
            .map(|(_, f)| f[0])
            .collect();
        assert_eq!(got, vec![1, 4], "frames 2 and 3 blackholed while down");
        let l = sim.node_ref::<Link>(link);
        assert_eq!(l.down_drops, 2);
        assert_eq!(l.dropped, 2);
    }

    #[test]
    fn size_limit_drops_jumbo() {
        let mut sim = Sim::new(1);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::with_faults(
            probe,
            Duration::ZERO,
            Faults {
                size_limit: Some(100),
                ..Default::default()
            },
        ));
        sim.schedule(Time::ZERO, link, Frame::raw(vec![0; 101]));
        sim.schedule(Time::ZERO, link, Frame::raw(vec![0; 100]));
        sim.run();
        assert_eq!(sim.node_ref::<Probe>(probe).frames.len(), 1);
    }
}
