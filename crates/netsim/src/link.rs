//! Point-to-point links with propagation delay and fault injection.
//!
//! Fault injection follows the smoltcp example conventions: a drop
//! probability, a corruption probability (one octet mutated), and an
//! optional size limit. The §5.3 loss experiments "artificially induce
//! packet losses in the network by randomly dropping packets … with a
//! fixed probability" — that is this node.

use flextoe_sim::{CounterHandle, Ctx, Duration, Msg, MsgBurst, Node, NodeId, Stats};
use flextoe_wire::Frame;

/// Gilbert–Elliott two-state bursty-loss parameters. The link is in a
/// *good* or *bad* state; each frame first draws a state transition
/// (`p_enter`: good→bad, `p_exit`: bad→good), then a loss draw at the
/// state's loss probability. Correlated loss bursts emerge from low
/// `p_exit` with high `loss_bad` — the gray-failure signature a uniform
/// `drop_chance` cannot produce.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeParams {
    /// Per-frame probability of entering the bad state from good.
    pub p_enter: f64,
    /// Per-frame probability of returning to the good state from bad.
    pub p_exit: f64,
    /// Loss probability while in the good state (usually 0).
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

#[derive(Clone, Copy, Debug)]
pub struct Faults {
    /// Probability a frame is silently dropped.
    pub drop_chance: f64,
    /// Probability one random octet is flipped.
    pub corrupt_chance: f64,
    /// Frames larger than this are dropped (None = no limit).
    pub size_limit: Option<usize>,
    /// Probability a surviving frame is delivered twice.
    pub dup_chance: f64,
    /// Per-delivery extra-delay bound: each delivered copy draws a
    /// uniform extra delay in `[0, jitter)`, which can invert delivery
    /// order on this link (reordering without a separate queue model).
    pub jitter: Duration,
    /// Limping-link factor: propagation is multiplied by this (1 =
    /// healthy). Models a half-alive component serving at N× latency.
    pub latency_mult: u32,
    /// Gilbert–Elliott bursty loss (None = no burst-loss process).
    pub ge: Option<GeParams>,
}

impl Default for Faults {
    fn default() -> Self {
        Faults {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            size_limit: None,
            dup_chance: 0.0,
            jitter: Duration::ZERO,
            latency_mult: 1,
            ge: None,
        }
    }
}

pub struct Link {
    pub to: NodeId,
    pub propagation: Duration,
    pub faults: Faults,
    /// Hard administrative state. A down link drops every frame (counted
    /// in `down_drops`); coming back up is an explicit `SetLinkUp(true)`
    /// event — there is no implicit healing.
    pub up: bool,
    pub forwarded: u64,
    pub dropped: u64,
    pub corrupted: u64,
    /// Frames blackholed while the link was administratively down.
    pub down_drops: u64,
    /// Frames lost to the Gilbert–Elliott burst process (also counted in
    /// `dropped`, so degradation totals aggregate uniformly).
    pub ge_drops: u64,
    /// Extra copies emitted by the duplication model.
    pub duplicated: u64,
    /// Gilbert–Elliott state: currently in the bad (bursty-loss) state.
    /// Reset to good whenever a `SetFaults` reconfigures the model.
    ge_bad: bool,
    counters: Option<LinkCounters>,
}

#[derive(Clone, Copy)]
struct LinkCounters {
    size_drops: CounterHandle,
    drops: CounterHandle,
    corrupted: CounterHandle,
    down_drops: CounterHandle,
    ge_drops: CounterHandle,
    duplicated: CounterHandle,
}

/// Reconfigure a link's fault model mid-run. Topology builders schedule
/// these from a `Scenario` fault schedule — e.g. a fabric link degrading
/// at t₁ and healing at t₂ — so experiments stay declarative and
/// deterministic.
pub struct SetFaults(pub Faults);
flextoe_sim::custom_msg!(SetFaults);

/// Hard link state change: `SetLinkUp(false)` takes the link down (every
/// frame blackholed, buffers recycled), `SetLinkUp(true)` restores it.
/// Like [`SetFaults`], healing is always an explicit scheduled event.
pub struct SetLinkUp(pub bool);
flextoe_sim::custom_msg!(SetLinkUp);

impl Link {
    pub fn new(to: NodeId, propagation: Duration) -> Link {
        Link {
            to,
            propagation,
            faults: Faults::default(),
            up: true,
            forwarded: 0,
            dropped: 0,
            corrupted: 0,
            down_drops: 0,
            ge_drops: 0,
            duplicated: 0,
            ge_bad: false,
            counters: None,
        }
    }

    pub fn with_faults(to: NodeId, propagation: Duration, faults: Faults) -> Link {
        Link {
            faults,
            ..Link::new(to, propagation)
        }
    }

    /// No fault model active: forwarding is a pure delay (and, because
    /// `Rng::chance(0.0)` never draws, skipping the fault checks leaves
    /// the deterministic random stream untouched).
    #[inline]
    fn faults_inert(&self) -> bool {
        self.faults.drop_chance <= 0.0
            && self.faults.corrupt_chance <= 0.0
            && self.faults.size_limit.is_none()
            && self.faults.dup_chance <= 0.0
            && self.faults.jitter == Duration::ZERO
            && self.faults.latency_mult <= 1
            && self.faults.ge.is_none()
    }

    /// One-way delivery delay for one copy: propagation inflated by the
    /// limp factor plus a fresh jitter draw (when a jitter bound is set).
    /// Jitter is the *only* per-copy draw, so the draw order stays fixed:
    /// GE → size → drop → corrupt → jitter(original) → dup →
    /// jitter(duplicate).
    #[inline]
    fn copy_delay(&self, ctx: &mut Ctx<'_>) -> Duration {
        let base = self.propagation * self.faults.latency_mult.max(1) as u64;
        if self.faults.jitter == Duration::ZERO {
            base
        } else {
            base + Duration::from_ns(ctx.rng.below(self.faults.jitter.as_ns()))
        }
    }
}

impl Node for Link {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let mut frame = match msg {
            Msg::Frame(frame) => frame,
            msg => {
                let msg = match flextoe_sim::try_cast::<SetFaults>(msg) {
                    Ok(sf) => {
                        self.faults = sf.0;
                        // a reconfigured model starts from the good state;
                        // healing (Faults::default) must not leave the link
                        // stuck mid-burst
                        self.ge_bad = false;
                        return;
                    }
                    Err(m) => m,
                };
                match flextoe_sim::try_cast::<SetLinkUp>(msg) {
                    Ok(s) => {
                        self.up = s.0;
                        return;
                    }
                    Err(m) => panic!("link: unexpected message {}", m.variant_name()),
                }
            }
        };
        let counters = self.counters.expect("link attached to a sim");
        if !self.up {
            self.dropped += 1;
            self.down_drops += 1;
            ctx.stats.inc(counters.down_drops);
            ctx.pool.put(frame.into_bytes());
            return;
        }
        if let Some(ge) = self.faults.ge {
            // state transition first, then the loss draw at the new
            // state's probability — both from this link's RNG stream, so
            // the burst schedule is byte-identical per seed, across
            // engines, and under sharding
            self.ge_bad = if self.ge_bad {
                !ctx.rng.chance(ge.p_exit)
            } else {
                ctx.rng.chance(ge.p_enter)
            };
            let loss = if self.ge_bad {
                ge.loss_bad
            } else {
                ge.loss_good
            };
            if ctx.rng.chance(loss) {
                self.dropped += 1;
                self.ge_drops += 1;
                ctx.stats.inc(counters.ge_drops);
                ctx.pool.put(frame.into_bytes());
                return;
            }
        }
        if let Some(limit) = self.faults.size_limit {
            if frame.len() > limit {
                self.dropped += 1;
                ctx.stats.inc(counters.size_drops);
                ctx.pool.put(frame.into_bytes());
                return;
            }
        }
        if ctx.rng.chance(self.faults.drop_chance) {
            self.dropped += 1;
            ctx.stats.inc(counters.drops);
            ctx.pool.put(frame.into_bytes());
            return;
        }
        if ctx.rng.chance(self.faults.corrupt_chance) && !frame.is_empty() {
            let idx = ctx.rng.below(frame.len() as u64) as usize;
            let bit = 1u8 << ctx.rng.below(8);
            frame.bytes[idx] ^= bit;
            // the bytes no longer match what the emitter computed: drop
            // the parse-once tag so receivers take the checked slow path
            // (and re-verify checksums, catching the corruption)
            frame.meta = None;
            self.corrupted += 1;
            ctx.stats.inc(counters.corrupted);
        }
        self.forwarded += 1;
        let delay = self.copy_delay(ctx);
        let dup = if ctx.rng.chance(self.faults.dup_chance) {
            // clone into a pooled buffer so the extra copy participates in
            // the global take/return balance like any other frame; each
            // copy draws its own jitter, so duplication composes with
            // reordering
            let mut bytes = ctx.pool.take();
            bytes.extend_from_slice(frame.bytes());
            let copy = Frame {
                bytes,
                meta: frame.meta,
            };
            self.duplicated += 1;
            ctx.stats.inc(counters.duplicated);
            Some((copy, self.copy_delay(ctx)))
        } else {
            None
        };
        ctx.send(self.to, delay, frame);
        if let Some((copy, dup_delay)) = dup {
            ctx.send(self.to, dup_delay, copy);
        }
    }

    fn on_batch(&mut self, ctx: &mut Ctx<'_>, burst: &mut MsgBurst) {
        while let Some(msg) = burst.next(ctx) {
            match msg {
                // healthy-link fast path: skip the per-frame fault checks
                // (re-checked per message — SetFaults / SetLinkUp can
                // arrive mid-burst)
                Msg::Frame(frame) if self.up && self.faults_inert() => {
                    self.forwarded += 1;
                    ctx.send(self.to, self.propagation, frame);
                }
                m => self.on_msg(ctx, m),
            }
        }
    }

    fn on_attach(&mut self, stats: &mut Stats) {
        self.counters = Some(LinkCounters {
            size_drops: stats.counter("link.size_drops"),
            drops: stats.counter("link.drops"),
            corrupted: stats.counter("link.corrupted"),
            down_drops: stats.counter("link.down_drops"),
            ge_drops: stats.counter("link.ge_drops"),
            duplicated: stats.counter("link.duplicated"),
        });
    }

    fn name(&self) -> String {
        "link".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextoe_sim::{Sim, Time};
    use flextoe_wire::Frame;

    struct Probe {
        frames: Vec<(u64, Vec<u8>)>,
    }
    impl Node for Probe {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let f = flextoe_sim::cast::<Frame>(msg);
            self.frames.push((ctx.now().as_ns(), f.into_bytes()));
        }
    }

    #[test]
    fn propagation_delay_applied() {
        let mut sim = Sim::new(1);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::new(probe, Duration::from_us(1)));
        sim.schedule(Time::from_ns(100), link, Frame::raw(vec![1, 2]));
        sim.run();
        let p = sim.node_ref::<Probe>(probe);
        assert_eq!(p.frames[0].0, 1100);
        assert_eq!(p.frames[0].1, vec![1, 2]);
    }

    #[test]
    fn drop_rate_respected() {
        let mut sim = Sim::new(7);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::with_faults(
            probe,
            Duration::ZERO,
            Faults {
                drop_chance: 0.25,
                ..Default::default()
            },
        ));
        for i in 0..10_000u64 {
            sim.schedule(Time::from_ns(i), link, Frame::raw(vec![0]));
        }
        sim.run();
        let got = sim.node_ref::<Probe>(probe).frames.len() as f64;
        assert!((got / 10_000.0 - 0.75).abs() < 0.02, "{got}");
        assert_eq!(sim.node_ref::<Link>(link).dropped, 10_000 - got as u64);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut sim = Sim::new(3);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::with_faults(
            probe,
            Duration::ZERO,
            Faults {
                corrupt_chance: 1.0,
                ..Default::default()
            },
        ));
        sim.schedule(Time::ZERO, link, Frame::raw(vec![0u8; 32]));
        sim.run();
        let p = &sim.node_ref::<Probe>(probe).frames[0].1;
        let set_bits: u32 = p.iter().map(|b| b.count_ones()).sum();
        assert_eq!(set_bits, 1);
    }

    #[test]
    fn set_faults_reconfigures_mid_run() {
        let mut sim = Sim::new(1);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::new(probe, Duration::ZERO));
        sim.schedule(Time::from_ns(0), link, Frame::raw(vec![1]));
        sim.schedule_in(
            Duration::from_ns(5),
            link,
            SetFaults(Faults {
                drop_chance: 1.0,
                ..Default::default()
            }),
        );
        sim.schedule(Time::from_ns(10), link, Frame::raw(vec![2]));
        sim.schedule_in(Duration::from_ns(15), link, SetFaults(Faults::default()));
        sim.schedule(Time::from_ns(20), link, Frame::raw(vec![3]));
        sim.run();
        let got: Vec<u8> = sim
            .node_ref::<Probe>(probe)
            .frames
            .iter()
            .map(|(_, f)| f[0])
            .collect();
        assert_eq!(got, vec![1, 3], "frame 2 dropped while degraded");
        assert_eq!(sim.node_ref::<Link>(link).dropped, 1);
    }

    #[test]
    fn hard_down_blackholes_until_explicit_up() {
        let mut sim = Sim::new(1);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::new(probe, Duration::ZERO));
        sim.schedule(Time::from_ns(0), link, Frame::raw(vec![1]));
        sim.schedule_in(Duration::from_ns(5), link, SetLinkUp(false));
        sim.schedule(Time::from_ns(10), link, Frame::raw(vec![2]));
        sim.schedule(Time::from_ns(11), link, Frame::raw(vec![3]));
        // healing is an explicit event: nothing forwards before it fires
        sim.schedule_in(Duration::from_ns(20), link, SetLinkUp(true));
        sim.schedule(Time::from_ns(30), link, Frame::raw(vec![4]));
        sim.run();
        let got: Vec<u8> = sim
            .node_ref::<Probe>(probe)
            .frames
            .iter()
            .map(|(_, f)| f[0])
            .collect();
        assert_eq!(got, vec![1, 4], "frames 2 and 3 blackholed while down");
        let l = sim.node_ref::<Link>(link);
        assert_eq!(l.down_drops, 2);
        assert_eq!(l.dropped, 2);
    }

    #[test]
    fn ge_loss_is_bursty_and_counted() {
        let mut sim = Sim::new(11);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::with_faults(
            probe,
            Duration::ZERO,
            Faults {
                ge: Some(GeParams {
                    p_enter: 0.02,
                    p_exit: 0.2,
                    loss_good: 0.0,
                    loss_bad: 1.0,
                }),
                ..Default::default()
            },
        ));
        for i in 0..20_000u64 {
            sim.schedule(Time::from_ns(i), link, Frame::raw(vec![(i % 251) as u8]));
        }
        sim.run();
        let l = sim.node_ref::<Link>(link);
        assert!(l.ge_drops > 0, "bad state never lost a frame");
        assert_eq!(l.ge_drops, l.dropped, "GE losses aggregate into dropped");
        // steady-state bad-state occupancy is p_enter/(p_enter+p_exit) ≈ 9%;
        // with loss_bad = 1.0 the loss rate tracks it
        let rate = l.ge_drops as f64 / 20_000.0;
        assert!(
            (0.04..0.18).contains(&rate),
            "loss rate {rate} not bursty-plausible"
        );
        // burstiness: delivered frames must show at least one loss run ≥ 3
        // (uniform 9% loss makes runs of 3+ common only under correlation;
        // GE guarantees them by construction with p_exit = 0.2)
        let got: Vec<u64> = sim
            .node_ref::<Probe>(probe)
            .frames
            .iter()
            .map(|(t, _)| *t)
            .collect();
        let max_gap = got.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        assert!(
            max_gap >= 4,
            "no loss burst ≥ 3 consecutive frames (max gap {max_gap})"
        );
    }

    #[test]
    fn duplication_delivers_twice_and_balances_buffers() {
        let mut sim = Sim::new(5);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::with_faults(
            probe,
            Duration::from_us(1),
            Faults {
                dup_chance: 1.0,
                ..Default::default()
            },
        ));
        sim.schedule(Time::ZERO, link, Frame::raw(vec![7, 8, 9]));
        sim.run();
        let p = sim.node_ref::<Probe>(probe);
        assert_eq!(
            p.frames.len(),
            2,
            "dup_chance=1 delivers exactly two copies"
        );
        assert_eq!(p.frames[0].1, p.frames[1].1, "copies are byte-identical");
        assert_eq!(sim.node_ref::<Link>(link).duplicated, 1);
        // the Probe consumed (dropped) both buffers without returning them;
        // the extra copy came from the sim pool, so takes-over-returns
        // accounts exactly for the duplicate's allocation
        assert_eq!(
            sim.frame_pool.takes, 1,
            "only the duplicate drew from the pool"
        );
    }

    #[test]
    fn jitter_can_reorder_frames_on_one_link() {
        let mut sim = Sim::new(2);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::with_faults(
            probe,
            Duration::from_us(1),
            Faults {
                jitter: Duration::from_us(10),
                ..Default::default()
            },
        ));
        for i in 0..64u64 {
            sim.schedule(Time::from_ns(i * 100), link, Frame::raw(vec![i as u8]));
        }
        sim.run();
        let order: Vec<u8> = sim
            .node_ref::<Probe>(probe)
            .frames
            .iter()
            .map(|(_, f)| f[0])
            .collect();
        assert_eq!(order.len(), 64, "jitter must not lose frames");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_ne!(
            order, sorted,
            "a 10us jitter over 100ns spacing must invert some pair"
        );
    }

    #[test]
    fn latency_mult_inflates_delivery_without_loss() {
        let mut sim = Sim::new(1);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::with_faults(
            probe,
            Duration::from_us(1),
            Faults {
                latency_mult: 8,
                ..Default::default()
            },
        ));
        sim.schedule(Time::ZERO, link, Frame::raw(vec![1]));
        sim.run();
        let p = sim.node_ref::<Probe>(probe);
        assert_eq!(p.frames[0].0, 8_000, "8x limp on a 1us link lands at 8us");
        assert_eq!(sim.node_ref::<Link>(link).dropped, 0);
    }

    #[test]
    fn set_faults_resets_ge_state() {
        let mut sim = Sim::new(9);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::with_faults(
            probe,
            Duration::ZERO,
            Faults {
                ge: Some(GeParams {
                    p_enter: 1.0,
                    p_exit: 0.0,
                    loss_good: 0.0,
                    loss_bad: 1.0,
                }),
                ..Default::default()
            },
        ));
        // first frame forces the bad state and is lost
        sim.schedule(Time::ZERO, link, Frame::raw(vec![1]));
        // healing resets to the good state; with the model cleared no
        // further frame can be GE-dropped
        sim.schedule_in(Duration::from_ns(5), link, SetFaults(Faults::default()));
        sim.schedule(Time::from_ns(10), link, Frame::raw(vec![2]));
        sim.run();
        let got: Vec<u8> = sim
            .node_ref::<Probe>(probe)
            .frames
            .iter()
            .map(|(_, f)| f[0])
            .collect();
        assert_eq!(got, vec![2]);
        assert_eq!(sim.node_ref::<Link>(link).ge_drops, 1);
    }

    #[test]
    fn size_limit_drops_jumbo() {
        let mut sim = Sim::new(1);
        let probe = sim.add_node(Probe { frames: vec![] });
        let link = sim.add_node(Link::with_faults(
            probe,
            Duration::ZERO,
            Faults {
                size_limit: Some(100),
                ..Default::default()
            },
        ));
        sim.schedule(Time::ZERO, link, Frame::raw(vec![0; 101]));
        sim.schedule(Time::ZERO, link, Frame::raw(vec![0; 100]));
        sim.run();
        assert_eq!(sim.node_ref::<Probe>(probe).frames.len(), 1);
    }
}
