//! # flextoe-netsim — the network substrate
//!
//! Links with propagation delay and smoltcp-style fault injection, plus an
//! output-queued switch with per-port shaping, DCTCP ECN marking, and
//! WRED — everything the paper's robustness experiments (§5.3) exercise.

pub mod link;
pub mod switch;

pub use link::{Faults, Link};
pub use switch::{PortConfig, Switch, WredParams};
