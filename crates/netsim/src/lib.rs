//! # flextoe-netsim — the network substrate
//!
//! Links with propagation delay and smoltcp-style fault injection, plus an
//! output-queued switch with per-port shaping, DCTCP ECN marking, and
//! WRED — everything the paper's robustness experiments (§5.3) exercise.
//! For multi-switch fabrics the switch additionally routes by destination
//! IP with seeded-deterministic ECMP flow hashing (`flextoe-topo` builds
//! leaf-spine and fat-tree topologies on top of it).

pub mod link;
pub mod switch;
pub mod telemetry;

pub use link::{Faults, GeParams, Link, SetFaults, SetLinkUp};
pub use switch::{
    ecmp_hash, PortConfig, SetPortUp, SetSwitchAlive, SetSwitchLimp, Switch, WredParams,
};
pub use telemetry::{Collector, SetElephants, SweepNow, TelemetrySpec};
