//! The telemetry plane: a collector node that drives epoch sweeps,
//! merges per-switch sketch reports, tracks heavy hitters, and (opt-in)
//! feeds confirmed elephants back to the switches for load-aware ECMP.
//!
//! Data flow per epoch:
//!
//! ```text
//!   collector --Tick--> SweepNow to every switch (index order)
//!   switch: encode_sweep() -> pooled report frame -> collector
//!   collector: decode, MergedView::absorb, update counters
//!             `-- hh_ecmp on: SetElephants(sorted basis list) back
//! ```
//!
//! Report frames are plain pooled byte buffers (`Frame::raw`), sent
//! point-to-point switch→collector — the telemetry channel is
//! out-of-band, like the CCP report plane. The collector returns every
//! buffer to the sim pool, so the fault suite's buffer-conservation
//! invariant holds with telemetry enabled.

use flextoe_sim::{CounterHandle, Ctx, Duration, Msg, Node, NodeId, Stats};
use flextoe_telemetry::{decode_report, heavy_hitters, MergedView, SketchCfg};
use flextoe_wire::Frame;

/// Scenario knob: presence turns the telemetry plane on (the default
/// `Scenario` has none — fabrics without it are wired byte-identically
/// to before the plane existed).
#[derive(Clone, Copy, Debug)]
pub struct TelemetrySpec {
    /// Sweep period.
    pub epoch: Duration,
    /// Number of sweeps the builder schedules (sweeps are pre-scheduled
    /// so an idle fabric still terminates).
    pub sweeps: u32,
    pub sketch: SketchCfg,
    /// Heavy-hitter threshold as a fraction of observed bytes.
    pub hh_theta: f64,
    /// Load-aware ECMP: push collector-confirmed elephants back to the
    /// switches, which steer them by rank instead of hash. Default off —
    /// and when off, forwarding is bit-for-bit the historical hash.
    pub hh_ecmp: bool,
    /// Record exact per-flow byte counts beside the sketch on every
    /// switch (the ground-truth differential; costs a hash map insert
    /// per frame, so benchmarks measuring sketch cost turn it off).
    pub ground_truth: bool,
}

impl Default for TelemetrySpec {
    fn default() -> TelemetrySpec {
        TelemetrySpec {
            epoch: Duration::from_ms(1),
            sweeps: 8,
            sketch: SketchCfg::default(),
            hh_theta: 0.001,
            hh_ecmp: false,
            ground_truth: true,
        }
    }
}

/// Collector→switch: snapshot-and-report your sketch epoch now.
pub struct SweepNow;
flextoe_sim::custom_msg!(SweepNow);

/// Collector→switch: the current confirmed-elephant set (sorted
/// `flow_basis` values) for rank-steered ECMP.
pub struct SetElephants(pub Vec<u64>);
flextoe_sim::custom_msg!(SetElephants);

#[derive(Clone, Copy)]
struct CollectorCounters {
    reports: CounterHandle,
    report_bytes: CounterHandle,
    sweeps: CounterHandle,
    bad_reports: CounterHandle,
}

/// The telemetry collector node: one per fabric, wired by
/// `topo::build_fabric` when the scenario carries a [`TelemetrySpec`].
pub struct Collector {
    spec: TelemetrySpec,
    /// Switch nodes in `BuiltFabric::switches` order; report index i is
    /// switch i.
    switch_nodes: Vec<NodeId>,
    views: Vec<MergedView>,
    pub reports: u64,
    pub report_bytes: u64,
    pub sweeps_sent: u64,
    pub bad_reports: u64,
    counters: Option<CollectorCounters>,
}

impl Collector {
    pub fn new(spec: TelemetrySpec, switch_nodes: Vec<NodeId>) -> Collector {
        let views = switch_nodes
            .iter()
            .map(|_| MergedView::new(&spec.sketch))
            .collect();
        Collector {
            spec,
            switch_nodes,
            views,
            reports: 0,
            report_bytes: 0,
            sweeps_sent: 0,
            bad_reports: 0,
            counters: None,
        }
    }

    /// Merged per-switch views, switch order.
    pub fn views(&self) -> &[MergedView] {
        &self.views
    }

    /// Collector-confirmed elephants of one switch's merged view:
    /// candidate keys whose count-min estimate clears `hh_theta` of the
    /// switch's observed bytes. Sorted ascending (deterministic).
    pub fn elephants(&self, switch: usize) -> Vec<u64> {
        let v = &self.views[switch];
        let flows: Vec<(u64, u64)> = v.keys.iter().map(|&k| (k, v.cm.estimate(k))).collect();
        heavy_hitters(&flows, v.bytes, self.spec.hh_theta)
    }

    /// Snapshot the merged state onto named stats (idempotent `set`s,
    /// name-sorted by `Stats::export_json` consumers): per-switch
    /// observed bytes/frames/epochs/candidate counts.
    pub fn export(&self, stats: &mut Stats) {
        for (i, v) in self.views.iter().enumerate() {
            for (field, val) in [
                ("bytes", v.bytes),
                ("frames", v.frames),
                ("epochs", v.epochs as u64),
                ("keys", v.keys.len() as u64),
            ] {
                let h = stats.counter(&format!("telemetry.sw{i:02}.{field}"));
                stats.set(h, val);
            }
        }
    }

    fn on_report(&mut self, ctx: &mut Ctx<'_>, frame: Frame) {
        let counters = self.counters.expect("collector attached to a sim");
        match decode_report(frame.bytes()) {
            Some(rep) if (rep.switch as usize) < self.views.len() => {
                let idx = rep.switch as usize;
                self.reports += 1;
                self.report_bytes += frame.len() as u64;
                ctx.stats.inc(counters.reports);
                ctx.stats.add(counters.report_bytes, frame.len() as u64);
                if !self.views[idx].absorb(&rep) {
                    self.bad_reports += 1;
                    ctx.stats.inc(counters.bad_reports);
                } else if self.spec.hh_ecmp {
                    let hh = self.elephants(idx);
                    ctx.send(self.switch_nodes[idx], Duration::ZERO, SetElephants(hh));
                }
            }
            _ => {
                self.bad_reports += 1;
                ctx.stats.inc(counters.bad_reports);
            }
        }
        ctx.pool.put(frame.into_bytes());
    }
}

impl Node for Collector {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg {
            Msg::Tick => {
                let counters = self.counters.expect("collector attached to a sim");
                self.sweeps_sent += 1;
                ctx.stats.inc(counters.sweeps);
                for i in 0..self.switch_nodes.len() {
                    ctx.send(self.switch_nodes[i], Duration::ZERO, SweepNow);
                }
            }
            Msg::Frame(frame) => self.on_report(ctx, frame),
            m => panic!("collector: unexpected message {}", m.variant_name()),
        }
    }

    fn on_attach(&mut self, stats: &mut Stats) {
        self.counters = Some(CollectorCounters {
            reports: stats.counter("telemetry.reports"),
            report_bytes: stats.counter("telemetry.report_bytes"),
            sweeps: stats.counter("telemetry.sweeps"),
            bad_reports: stats.counter("telemetry.bad_reports"),
        });
    }

    fn name(&self) -> String {
        "telemetry-collector".to_string()
    }
}
