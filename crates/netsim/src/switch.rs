//! An output-queued Ethernet switch with ECN marking, WRED, and per-port
//! shaping — the testbed's "100 Gbps Ethernet switch" plus the knobs the
//! paper turns: random drops for §5.3, and for the incast experiment
//! (Table 4) "traffic shaping on the switch to restrict port bandwidth …
//! and WRED to perform tail drops when the switch buffer is exhausted."
//!
//! DCTCP needs the switch to mark ECN-capable packets with CE once the
//! output queue exceeds the step threshold K \[1\]; marking rewrites the IP
//! header ECN bits and refreshes the IPv4 checksum.
//!
//! For multi-switch fabrics (leaf-spine, fat-tree) the switch also routes
//! at L3: [`Switch::route`] installs a destination-IP → candidate-port set
//! and [`ecmp_hash`] picks among equal-cost ports by a flow hash, so one
//! connection always rides one path (no reordering) while distinct flows
//! spread across the fabric. The hash is salted from the simulation's
//! xoshiro seed ([`Switch::set_ecmp_salt`]), keeping path selection — and
//! therefore every delivery log — byte-identical across reruns of a seed.

use std::collections::VecDeque;

use flextoe_sim::{CounterHandle, Ctx, Duration, FxHashMap, Msg, MsgBurst, Node, NodeId, Stats};
use flextoe_telemetry::SwitchSketch;
use flextoe_wire::{
    ecmp_basis, ecmp_hash_with_basis, Ecn, Frame, FrameMeta, Ip4, Ipv4Packet, MacAddr, ETH_HDR_LEN,
};

use crate::telemetry::{SetElephants, SweepNow, TelemetrySpec};

/// Flow hash for ECMP port selection: a splitmix64 finalizer over the
/// directed 4-tuple mixed with a per-switch `salt` derived from the sim
/// seed. Deterministic for (flow, salt); different salts decorrelate
/// switches so a fabric doesn't polarize onto one spine.
///
/// Split into [`ecmp_basis`] (salt-independent, precomputed once into
/// [`FrameMeta::flow_basis`] at frame emission) and
/// [`ecmp_hash_with_basis`] (per-switch finalize) so forwarding never
/// re-reads the headers; this composition is bit-identical to the
/// historical whole-header hash.
pub fn ecmp_hash(src_ip: Ip4, dst_ip: Ip4, src_port: u16, dst_port: u16, salt: u64) -> u64 {
    ecmp_hash_with_basis(ecmp_basis(src_ip, dst_ip, src_port, dst_port), salt)
}

#[derive(Clone, Copy, Debug)]
pub struct WredParams {
    /// Queue depth (bytes) where random early drop begins.
    pub min_bytes: usize,
    /// Depth where the drop probability reaches `max_p` (beyond: tail drop).
    pub max_bytes: usize,
    pub max_p: f64,
}

#[derive(Clone, Copy, Debug)]
pub struct PortConfig {
    /// Egress rate in bits/second.
    pub rate_bps: u64,
    /// Output buffer capacity in bytes.
    pub buf_bytes: usize,
    /// DCTCP step-marking threshold K in bytes (None = no ECN marking).
    pub ecn_threshold: Option<usize>,
    pub wred: Option<WredParams>,
}

impl Default for PortConfig {
    fn default() -> Self {
        PortConfig {
            rate_bps: 100_000_000_000,
            buf_bytes: 512 * 1024,
            // K ≈ 65 packets at 100G per the DCTCP guideline, scaled down
            // to our shallow-buffer testbed switch.
            ecn_threshold: Some(96 * 1024),
            wred: None,
        }
    }
}

struct Port {
    cfg: PortConfig,
    to: NodeId,
    queue: VecDeque<Frame>,
    queue_bytes: usize,
    transmitting: bool,
    /// Port health: a down port is excluded from ECMP finalization and
    /// transmits nothing; taking it down flushes its output queue.
    up: bool,
    pub tx_frames: u64,
    pub drops: u64,
    pub ecn_marked: u64,
    /// Occupancy tracking for the congestion experiments: highest depth
    /// seen, and the byte·ns integral for the time-weighted average.
    peak_bytes: usize,
    occ_integral: u128,
    occ_since_ns: u64,
}

impl Port {
    /// Integrate occupancy up to `now` before `queue_bytes` changes.
    fn occ_update(&mut self, now_ns: u64) {
        self.occ_integral +=
            self.queue_bytes as u128 * now_ns.saturating_sub(self.occ_since_ns) as u128;
        self.occ_since_ns = now_ns;
    }
}

pub struct Switch {
    ports: Vec<Port>,
    mac_table: FxHashMap<MacAddr, usize>,
    /// L3 routes: destination IP → equal-cost candidate ports (consulted
    /// on MAC-table miss; fabrics route remote hosts by IP).
    routes: FxHashMap<Ip4, Vec<usize>>,
    /// Per-switch ECMP hash salt (derived from the sim seed by topology
    /// builders).
    ecmp_salt: u64,
    /// Forwarding latency (lookup + crossbar).
    pub latency: Duration,
    /// Hard administrative state: a killed switch drops every arriving
    /// frame and its port queues are flushed. Heal is an explicit
    /// [`SetSwitchAlive`] event.
    pub alive: bool,
    /// Limp factor: every port's serialization delay is multiplied by
    /// this, modelling a half-alive switch forwarding at 1/N of its rate
    /// without being dead (gray failure). 1 = healthy; heal is an
    /// explicit [`SetSwitchLimp`]`(1)`.
    pub limp: u32,
    pub flooded: u64,
    /// Frames forwarded through an L3 route (ECMP or single-path).
    pub routed: u64,
    /// Frames whose primary ECMP pick was a dead port and that were
    /// re-finalized onto a surviving candidate.
    pub rerouted: u64,
    /// Frames dropped because no live egress remained (every ECMP
    /// candidate down, or the learned MAC port down).
    pub blackholed: u64,
    /// Frames dropped because the switch itself was dead, plus queued
    /// frames flushed by a port-down/switch-kill event.
    pub dead_drops: u64,
    /// Elephant flows routed by collector rank instead of hash (the
    /// heavy-hitter ECMP mode; always 0 when `hh_ecmp` is off).
    pub steered: u64,
    /// Sketch telemetry state, present only when the scenario wires a
    /// telemetry plane ([`Switch::enable_telemetry`]). Boxed so the
    /// telemetry-off fast path carries one pointer, not sketch arrays.
    telemetry: Option<Box<SwitchTelemetry>>,
    /// Counter handles resolved at attach — per-frame paths never do a
    /// string-keyed stats lookup.
    counters: Option<SwitchCounters>,
}

/// Per-switch telemetry plane state (see `crate::telemetry`).
struct SwitchTelemetry {
    sketch: SwitchSketch,
    /// Exact per-flow byte counts observed since attach — the ground
    /// truth for the differential harness. Never reset: sweep loss and
    /// kill-time state loss show up as sketch-vs-truth error, which is
    /// the measurement. `None` when the scenario doesn't need it (it
    /// costs a hash-map upsert per frame).
    truth: Option<FxHashMap<u64, u64>>,
    collector: NodeId,
    index: u32,
    epoch_seq: u32,
    hh_ecmp: bool,
    /// Collector-confirmed elephants (sorted `flow_basis` values).
    elephants: Vec<u64>,
}

impl SwitchTelemetry {
    /// The fast-path update: one mix of the precomputed basis into both
    /// sketches and the key table. No parse, no alloc, no new hash of
    /// key material (`SwitchSketch::update` is multiply-shift only).
    #[inline]
    fn observe(&mut self, basis: u64, len: u64) {
        self.sketch.update(basis, len);
        if let Some(t) = &mut self.truth {
            *t.entry(basis).or_insert(0) += len;
        }
    }
}

#[derive(Clone, Copy)]
struct SwitchCounters {
    tail_drops: CounterHandle,
    wred_drops: CounterHandle,
    ecn_marked: CounterHandle,
    routed: CounterHandle,
    flooded: CounterHandle,
    rerouted: CounterHandle,
    blackholed: CounterHandle,
    dead_drops: CounterHandle,
    steered: CounterHandle,
}

/// Take one switch port administratively down (`up: false`) or up.
/// Topology builders schedule these alongside the neighbor link's
/// [`crate::SetLinkUp`] so ECMP finalization stops hashing onto a dead
/// path. Taking a port down flushes its output queue (counted in
/// [`Switch::dead_drops`]); bringing it up is always explicit.
pub struct SetPortUp {
    pub port: usize,
    pub up: bool,
}
flextoe_sim::custom_msg!(SetPortUp);

/// Kill (`false`) or heal (`true`) a whole switch. Killing flushes every
/// port queue and blackholes all arriving frames; healing restores
/// forwarding (per-port `up` state is tracked separately and survives a
/// kill/heal cycle).
pub struct SetSwitchAlive(pub bool);
flextoe_sim::custom_msg!(SetSwitchAlive);

/// Set the switch's limp factor: `SetSwitchLimp(n)` makes every egress
/// serialize n× slower (effective rate divided by n) without taking the
/// switch down — the "limping component" gray failure. `SetSwitchLimp(1)`
/// heals; like every fault in the plane, healing is always explicit.
pub struct SetSwitchLimp(pub u32);
flextoe_sim::custom_msg!(SetSwitchLimp);

/// Egress resolution outcome for an L3-routed frame.
enum RouteOutcome {
    /// The primary ECMP pick (byte-identical to the healthy-fabric hash).
    Port(usize),
    /// Primary pick was down; re-finalized over the live candidates.
    Rerouted(usize),
    /// A collector-confirmed elephant steered by rank (heavy-hitter
    /// ECMP mode) instead of by hash.
    Steered(usize),
    /// A route exists but every candidate port is down.
    Blackhole,
    /// No route (or unparseable headers): flood-and-drop as before.
    NoRoute,
}

impl Switch {
    pub fn new() -> Switch {
        Switch {
            ports: Vec::new(),
            mac_table: FxHashMap::default(),
            routes: FxHashMap::default(),
            ecmp_salt: 0,
            latency: Duration::from_ns(500),
            alive: true,
            limp: 1,
            flooded: 0,
            routed: 0,
            rerouted: 0,
            blackholed: 0,
            dead_drops: 0,
            steered: 0,
            telemetry: None,
            counters: None,
        }
    }

    /// Add a port facing `to` (a link or MAC node); returns the port id.
    pub fn add_port(&mut self, to: NodeId, cfg: PortConfig) -> usize {
        self.ports.push(Port {
            cfg,
            to,
            queue: VecDeque::new(),
            queue_bytes: 0,
            transmitting: false,
            up: true,
            tx_frames: 0,
            drops: 0,
            ecn_marked: 0,
            peak_bytes: 0,
            occ_integral: 0,
            occ_since_ns: 0,
        });
        self.ports.len() - 1
    }

    /// Static MAC learning (testbed configuration).
    pub fn learn(&mut self, mac: MacAddr, port: usize) {
        self.mac_table.insert(mac, port);
    }

    /// Install an L3 route: frames for `ip` whose MAC is not directly
    /// attached leave through one of `ports`, chosen per-flow by
    /// [`ecmp_hash`]. A single-element set is a plain next-hop route.
    pub fn route(&mut self, ip: Ip4, ports: Vec<usize>) {
        debug_assert!(!ports.is_empty(), "route with no candidate ports");
        self.routes.insert(ip, ports);
    }

    /// Salt the ECMP hash (topology builders derive this from the sim
    /// seed, one value per switch).
    pub fn set_ecmp_salt(&mut self, salt: u64) {
        self.ecmp_salt = salt;
    }

    /// Attach the telemetry plane: sketch tagged frames on the
    /// forwarding fast path, answer [`SweepNow`] with epoch reports to
    /// `collector` (this switch is report index `index`), and — when
    /// `spec.hh_ecmp` — steer [`SetElephants`]-confirmed flows by rank.
    pub fn enable_telemetry(&mut self, index: u32, collector: NodeId, spec: &TelemetrySpec) {
        self.telemetry = Some(Box::new(SwitchTelemetry {
            sketch: SwitchSketch::new(spec.sketch),
            truth: spec.ground_truth.then(FxHashMap::default),
            collector,
            index,
            epoch_seq: 0,
            hh_ecmp: spec.hh_ecmp,
            elephants: Vec::new(),
        }));
    }

    /// Exact per-flow byte counts this switch observed (ground truth),
    /// if telemetry with `ground_truth` is enabled.
    pub fn telemetry_truth(&self) -> Option<&FxHashMap<u64, u64>> {
        self.telemetry.as_deref().and_then(|t| t.truth.as_ref())
    }

    /// The confirmed-elephant set currently steering this switch.
    pub fn telemetry_elephants(&self) -> &[u64] {
        self.telemetry
            .as_deref()
            .map(|t| t.elephants.as_slice())
            .unwrap_or(&[])
    }

    /// Resolve the egress port for an IP-routed frame, if a route exists.
    /// Tagged frames route off their parse-once [`FrameMeta`] (no header
    /// inspection); untagged frames take the checked reparse path. Both
    /// feed the same hash, so for well-formed frames port selection is
    /// byte-identical either way. The checked path is deliberately
    /// stricter than the pre-metadata parser: frames whose L4 header
    /// does not parse (e.g. a fault-corrupted TCP data offset) are no
    /// longer routed on garbage port bytes — they count as `flooded` and
    /// are dropped here instead of at the receiving host's checksum.
    /// ECMP finalization excludes dead ports: while every candidate is
    /// live the pick is the historical hash (byte-identical fabrics when
    /// nothing has failed); a dead primary pick re-finalizes the same
    /// hash over the surviving candidates (flows stay path-stable for a
    /// given health state); no live candidate is a total blackhole.
    fn route_port(&self, frame: &Frame) -> RouteOutcome {
        let meta;
        let m = match &frame.meta {
            Some(m) => m,
            None => match FrameMeta::parse(frame.bytes()) {
                Some(parsed) => {
                    meta = parsed;
                    &meta
                }
                None => return RouteOutcome::NoRoute,
            },
        };
        let Some(candidates) = self.routes.get(&m.dst_ip) else {
            return RouteOutcome::NoRoute;
        };
        // Heavy-hitter ECMP: collector-confirmed elephants are spread
        // round-robin by their rank in the (sorted, deterministic)
        // elephant set instead of hashed — two elephants can no longer
        // collide onto one uplink. Everything else (and everything,
        // when the mode is off) takes the historical hash unchanged.
        if let Some(tel) = self.telemetry.as_deref() {
            if tel.hh_ecmp && !tel.elephants.is_empty() {
                if let Ok(rank) = tel.elephants.binary_search(&m.flow_basis) {
                    let pick = candidates[rank % candidates.len()];
                    if self.ports[pick].up {
                        return RouteOutcome::Steered(pick);
                    }
                    let live: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&p| self.ports[p].up)
                        .collect();
                    if live.is_empty() {
                        return RouteOutcome::Blackhole;
                    }
                    return RouteOutcome::Steered(live[rank % live.len()]);
                }
            }
        }
        let h = ecmp_hash_with_basis(m.flow_basis, self.ecmp_salt);
        let pick = candidates[(h % candidates.len() as u64) as usize];
        if self.ports[pick].up {
            return RouteOutcome::Port(pick);
        }
        let live: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&p| self.ports[p].up)
            .collect();
        if live.is_empty() {
            return RouteOutcome::Blackhole;
        }
        RouteOutcome::Rerouted(live[(h % live.len() as u64) as usize])
    }

    /// Is `port` administratively up?
    pub fn port_up(&self, port: usize) -> bool {
        self.ports[port].up
    }

    pub fn port_stats(&self, port: usize) -> (u64, u64, u64) {
        let p = &self.ports[port];
        (p.tx_frames, p.drops, p.ecn_marked)
    }

    /// Output-queue occupancy of `port` over the run so far:
    /// `(peak_bytes, time-weighted average bytes)` — the Table 4 /
    /// congested-fabric view of how close the queue rides to the ECN
    /// threshold K.
    pub fn queue_occupancy(&self, port: usize, now_ns: u64) -> (usize, f64) {
        let p = &self.ports[port];
        let integral =
            p.occ_integral + p.queue_bytes as u128 * now_ns.saturating_sub(p.occ_since_ns) as u128;
        let avg = if now_ns == 0 {
            0.0
        } else {
            integral as f64 / now_ns as f64
        };
        (p.peak_bytes, avg)
    }

    pub fn set_port_rate(&mut self, port: usize, rate_bps: u64) {
        self.ports[port].cfg.rate_bps = rate_bps;
    }

    fn serialize(cfg: &PortConfig, bytes: usize) -> Duration {
        Duration::from_ps((bytes as u64 * 8).saturating_mul(1_000_000_000_000) / cfg.rate_bps)
    }

    fn start_tx(&mut self, ctx: &mut Ctx<'_>, port: usize) {
        let p = &mut self.ports[port];
        if p.transmitting || !p.up {
            return;
        }
        let Some(frame) = p.queue.pop_front() else {
            return;
        };
        p.occ_update(ctx.now().as_ns());
        p.queue_bytes -= frame.len();
        p.transmitting = true;
        p.tx_frames += 1;
        // a limping switch serializes N× slower on every port — reduced
        // effective rate is the gray signature (forwarding latency is
        // charged on the adjacent links, so rate is the right lever here)
        let d = Self::serialize(&p.cfg, frame.len()) * self.limp.max(1) as u64;
        ctx.send(p.to, d, frame);
        // self-wake token: serialization on `port` finished
        ctx.wake(d, port as u64);
    }

    fn enqueue(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: usize,
        mut frame: Frame,
        counters: SwitchCounters,
    ) {
        let p = &mut self.ports[port];
        let len = frame.len();

        // tail drop at capacity — the buffer goes back to the sim pool
        if p.queue_bytes + len > p.cfg.buf_bytes {
            p.drops += 1;
            ctx.stats.inc(counters.tail_drops);
            ctx.pool.put(frame.into_bytes());
            return;
        }
        // WRED random early drop
        if let Some(w) = p.cfg.wred {
            if p.queue_bytes > w.min_bytes {
                let span = (w.max_bytes - w.min_bytes).max(1) as f64;
                let x = ((p.queue_bytes - w.min_bytes) as f64 / span).min(1.0);
                if ctx.rng.chance(x * w.max_p) {
                    p.drops += 1;
                    ctx.stats.inc(counters.wred_drops);
                    ctx.pool.put(frame.into_bytes());
                    return;
                }
            }
        }
        // DCTCP step marking: CE above K, for ECN-capable packets
        if let Some(k) = p.cfg.ecn_threshold {
            if p.queue_bytes > k && mark_ce(&mut frame) {
                p.ecn_marked += 1;
                ctx.stats.inc(counters.ecn_marked);
            }
        }
        p.occ_update(ctx.now().as_ns());
        p.queue_bytes += len;
        p.peak_bytes = p.peak_bytes.max(p.queue_bytes);
        p.queue.push_back(frame);
        self.start_tx(ctx, port);
    }

    /// Recycle everything queued on `port` — a dead port (or switch)
    /// cannot transmit, and leaked buffers would break the pool-gauge
    /// conservation invariant.
    fn flush_port(&mut self, ctx: &mut Ctx<'_>, port: usize, counters: SwitchCounters) {
        let now_ns = ctx.now().as_ns();
        self.ports[port].occ_update(now_ns);
        while let Some(frame) = self.ports[port].queue.pop_front() {
            self.dead_drops += 1;
            ctx.stats.inc(counters.dead_drops);
            ctx.pool.put(frame.into_bytes());
        }
        self.ports[port].queue_bytes = 0;
    }

    /// Hard fault-state admin messages ([`SetPortUp`], [`SetSwitchAlive`])
    /// and the telemetry plane's sweep/steering control
    /// ([`SweepNow`], [`SetElephants`]).
    fn admin(&mut self, ctx: &mut Ctx<'_>, msg: Msg, counters: SwitchCounters) {
        let msg = match flextoe_sim::try_cast::<SetPortUp>(msg) {
            Ok(s) => {
                self.ports[s.port].up = s.up;
                if s.up {
                    self.start_tx(ctx, s.port);
                } else {
                    self.flush_port(ctx, s.port, counters);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match flextoe_sim::try_cast::<SetSwitchAlive>(msg) {
            Ok(s) => {
                self.alive = s.0;
                if !s.0 {
                    for port in 0..self.ports.len() {
                        self.flush_port(ctx, port, counters);
                    }
                    // the monitoring plane dies with the switch: the
                    // un-swept partial epoch is lost (ground truth
                    // survives — that gap is what the differential
                    // harness measures under fault schedules)
                    if let Some(tel) = self.telemetry.as_deref_mut() {
                        tel.sketch.reset();
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match flextoe_sim::try_cast::<SetSwitchLimp>(msg) {
            Ok(s) => {
                self.limp = s.0.max(1);
                return;
            }
            Err(m) => m,
        };
        let msg = match flextoe_sim::try_cast::<SweepNow>(msg) {
            Ok(_) => {
                self.sweep(ctx);
                return;
            }
            Err(m) => m,
        };
        match flextoe_sim::try_cast::<SetElephants>(msg) {
            Ok(e) => {
                if let Some(tel) = self.telemetry.as_deref_mut() {
                    tel.elephants = e.0;
                }
            }
            Err(m) => panic!("switch: unexpected message {}", m.variant_name()),
        }
    }

    /// Answer a collector [`SweepNow`]: snapshot-and-reset the sketch
    /// epoch into a pooled report frame. A dead switch reports nothing
    /// (the epoch number still advances, so the loss is visible in the
    /// collector's per-switch epoch counts); a telemetry-less switch
    /// ignores the sweep.
    fn sweep(&mut self, ctx: &mut Ctx<'_>) {
        let latency = self.latency;
        let Some(tel) = self.telemetry.as_deref_mut() else {
            return;
        };
        if !self.alive {
            tel.epoch_seq += 1;
            return;
        }
        let mut buf = ctx.pool.take();
        tel.sketch.encode_sweep(tel.index, tel.epoch_seq, &mut buf);
        tel.epoch_seq += 1;
        ctx.send(tel.collector, latency, Frame::raw(buf));
    }
}

impl Default for Switch {
    fn default() -> Self {
        Self::new()
    }
}

/// Set CE on an ECN-capable IPv4 frame; returns whether it was marked.
/// Tagged frames decide off their metadata (one enum compare instead of
/// a header parse); the rewrite updates bytes, checksum, *and* metadata
/// so the carried summary stays equal to a reparse.
fn mark_ce(frame: &mut Frame) -> bool {
    match frame.meta {
        Some(ref mut m) => match m.ecn {
            Ecn::Ect0 | Ecn::Ect1 => {
                let off = m.ip_off as usize;
                let mut ip = Ipv4Packet(&mut frame.bytes[off..]);
                ip.set_ecn(Ecn::Ce);
                ip.fill_checksum();
                m.ecn = Ecn::Ce;
                true
            }
            Ecn::Ce => true,
            Ecn::NotEct => false,
        },
        None => mark_ce_raw(&mut frame.bytes),
    }
}

/// The checked slow path of [`mark_ce`] for untagged frames.
fn mark_ce_raw(frame: &mut [u8]) -> bool {
    if frame.len() < ETH_HDR_LEN + 20 {
        return false;
    }
    let Ok(ip) = Ipv4Packet::new_checked(&frame[ETH_HDR_LEN..]) else {
        return false;
    };
    match ip.ecn() {
        Ecn::Ect0 | Ecn::Ect1 => {
            let mut ip = Ipv4Packet(&mut frame[ETH_HDR_LEN..]);
            ip.set_ecn(Ecn::Ce);
            ip.fill_checksum();
            true
        }
        Ecn::Ce => true,
        Ecn::NotEct => false,
    }
}

impl Switch {
    /// One delivery with the stat handles already resolved
    /// ([`Node::on_batch`] hoists the lookup out of the loop).
    fn deliver(&mut self, ctx: &mut Ctx<'_>, msg: Msg, counters: SwitchCounters) {
        let frame = match msg {
            Msg::Token(port) => {
                // always clear the serialization state — a kill between
                // send and Token must not wedge the port forever
                self.ports[port as usize].transmitting = false;
                self.start_tx(ctx, port as usize);
                return;
            }
            Msg::Frame(frame) => frame,
            m => {
                self.admin(ctx, m, counters);
                return;
            }
        };
        if !self.alive {
            self.dead_drops += 1;
            ctx.stats.inc(counters.dead_drops);
            ctx.pool.put(frame.into_bytes());
            return;
        }
        // destination MAC: the first six bytes — no header parse needed
        if frame.len() < ETH_HDR_LEN {
            return;
        }
        // telemetry observes every frame a live switch handles, keyed by
        // the parse-once flow basis — untagged frames (no metadata) are
        // invisible to the sketch *and* to the truth map, so the
        // differential stays exact
        if let Some(tel) = self.telemetry.as_deref_mut() {
            if let Some(m) = frame.meta.as_ref() {
                tel.observe(m.flow_basis, frame.len() as u64);
            }
        }
        let dst = MacAddr(frame.bytes()[0..6].try_into().unwrap());
        match self.mac_table.get(&dst) {
            Some(&port) if self.ports[port].up => {
                // model forwarding latency by delaying our own enqueue via
                // a self-send would re-order against PortDone; charge it on
                // the wire instead: enqueue now, the egress serialization
                // dominates. (The 500ns forwarding latency is added by the
                // adjacent links in topology builders.)
                self.enqueue(ctx, port, frame, counters);
            }
            Some(_) => {
                self.blackholed += 1;
                ctx.stats.inc(counters.blackholed);
                ctx.pool.put(frame.into_bytes());
            }
            None => match self.route_port(&frame) {
                RouteOutcome::Port(port) => {
                    self.routed += 1;
                    ctx.stats.inc(counters.routed);
                    self.enqueue(ctx, port, frame, counters);
                }
                RouteOutcome::Rerouted(port) => {
                    self.routed += 1;
                    self.rerouted += 1;
                    ctx.stats.inc(counters.routed);
                    ctx.stats.inc(counters.rerouted);
                    self.enqueue(ctx, port, frame, counters);
                }
                RouteOutcome::Steered(port) => {
                    self.routed += 1;
                    self.steered += 1;
                    ctx.stats.inc(counters.routed);
                    ctx.stats.inc(counters.steered);
                    self.enqueue(ctx, port, frame, counters);
                }
                RouteOutcome::Blackhole => {
                    self.blackholed += 1;
                    ctx.stats.inc(counters.blackholed);
                    ctx.pool.put(frame.into_bytes());
                }
                RouteOutcome::NoRoute => {
                    self.flooded += 1;
                    ctx.stats.inc(counters.flooded);
                    ctx.pool.put(frame.into_bytes());
                }
            },
        }
    }
}

impl Node for Switch {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let counters = self.counters.expect("switch attached to a sim");
        self.deliver(ctx, msg, counters);
    }

    fn on_batch(&mut self, ctx: &mut Ctx<'_>, burst: &mut MsgBurst) {
        let counters = self.counters.expect("switch attached to a sim");
        while let Some(msg) = burst.next(ctx) {
            self.deliver(ctx, msg, counters);
        }
    }

    fn on_attach(&mut self, stats: &mut Stats) {
        self.counters = Some(SwitchCounters {
            tail_drops: stats.counter("switch.tail_drops"),
            wred_drops: stats.counter("switch.wred_drops"),
            ecn_marked: stats.counter("switch.ecn_marked"),
            routed: stats.counter("switch.routed"),
            flooded: stats.counter("switch.flooded"),
            rerouted: stats.counter("switch.ecmp_rerouted"),
            blackholed: stats.counter("switch.blackholed"),
            dead_drops: stats.counter("switch.dead_drops"),
            steered: stats.counter("switch.hh_steered"),
        });
    }

    fn name(&self) -> String {
        "switch".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextoe_sim::{Sim, Time};
    use flextoe_wire::{Ecn, SegmentSpec, SegmentView};

    struct Probe {
        frames: Vec<(u64, Vec<u8>)>,
    }
    impl Node for Probe {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let f = flextoe_sim::cast::<Frame>(msg);
            self.frames.push((ctx.now().as_ns(), f.into_bytes()));
        }
    }

    fn tcp_frame(ecn: Ecn, len: usize) -> Vec<u8> {
        SegmentSpec {
            src_mac: MacAddr::local(1),
            dst_mac: MacAddr::local(2),
            src_ip: flextoe_wire::Ip4::host(1),
            dst_ip: flextoe_wire::Ip4::host(2),
            ecn,
            payload_len: len,
            ..Default::default()
        }
        .emit_zeroed()
    }

    fn one_port_switch(cfg: PortConfig) -> (Sim, flextoe_sim::NodeId, flextoe_sim::NodeId) {
        let mut sim = Sim::new(1);
        let probe = sim.add_node(Probe { frames: vec![] });
        let mut sw = Switch::new();
        let port = sw.add_port(probe, cfg);
        sw.learn(MacAddr::local(2), port);
        let swid = sim.add_node(sw);
        (sim, swid, probe)
    }

    #[test]
    fn forwards_by_mac_and_serializes() {
        let (mut sim, sw, probe) = one_port_switch(PortConfig {
            rate_bps: 10_000_000_000, // 10G
            ..Default::default()
        });
        let f = tcp_frame(Ecn::NotEct, 1000);
        let flen = f.len();
        sim.schedule(Time::ZERO, sw, Frame::raw(f.clone()));
        sim.schedule(Time::ZERO, sw, Frame::raw(f));
        sim.run();
        let p = sim.node_ref::<Probe>(probe);
        assert_eq!(p.frames.len(), 2);
        let ser_ns = (flen as u64 * 8) / 10; // bits / 10Gbps in ns
        assert_eq!(p.frames[0].0, ser_ns);
        assert_eq!(p.frames[1].0, 2 * ser_ns);
    }

    #[test]
    fn unknown_mac_counted_not_forwarded() {
        let (mut sim, sw, probe) = one_port_switch(Default::default());
        let mut f = tcp_frame(Ecn::NotEct, 10);
        f[0..6].copy_from_slice(&[9; 6]); // unknown dst
        sim.schedule(Time::ZERO, sw, Frame::raw(f));
        sim.run();
        assert!(sim.node_ref::<Probe>(probe).frames.is_empty());
        assert_eq!(sim.node_ref::<Switch>(sw).flooded, 1);
    }

    #[test]
    fn tail_drop_at_buffer_cap() {
        let (mut sim, sw, probe) = one_port_switch(PortConfig {
            rate_bps: 1_000_000, // 1 Mbps: queue builds instantly
            buf_bytes: 3000,
            ecn_threshold: None,
            wred: None,
        });
        for _ in 0..10 {
            sim.schedule(Time::ZERO, sw, Frame::raw(tcp_frame(Ecn::NotEct, 1000)));
        }
        sim.run_until(Time::from_ms(1));
        let s = sim.node_ref::<Switch>(sw);
        assert!(s.port_stats(0).1 >= 7, "drops {}", s.port_stats(0).1);
        let _ = probe;
    }

    #[test]
    fn ecn_marking_above_threshold() {
        let (mut sim, sw, probe) = one_port_switch(PortConfig {
            rate_bps: 1_000_000,
            buf_bytes: 1 << 20,
            ecn_threshold: Some(2000),
            wred: None,
        });
        for _ in 0..10 {
            sim.schedule(Time::ZERO, sw, Frame::raw(tcp_frame(Ecn::Ect0, 1000)));
        }
        sim.run_until(Time::from_ms(1000));
        let marked = sim.node_ref::<Switch>(sw).port_stats(0).2;
        assert!(marked >= 7, "marked {marked}");
        // marked frames carry CE and still parse with a valid checksum
        let p = sim.node_ref::<Probe>(probe);
        let mut ce = 0;
        for (_, f) in &p.frames {
            let v = SegmentView::parse(f, true).expect("checksum refreshed");
            if v.ecn == Ecn::Ce {
                ce += 1;
            }
        }
        assert_eq!(ce as u64, marked);
    }

    #[test]
    fn not_ect_frames_never_marked() {
        let (mut sim, sw, _probe) = one_port_switch(PortConfig {
            rate_bps: 1_000_000,
            buf_bytes: 1 << 20,
            ecn_threshold: Some(0),
            wred: None,
        });
        for _ in 0..5 {
            sim.schedule(Time::ZERO, sw, Frame::raw(tcp_frame(Ecn::NotEct, 500)));
        }
        sim.run_until(Time::from_ms(1000));
        assert_eq!(sim.node_ref::<Switch>(sw).port_stats(0).2, 0);
    }

    #[test]
    fn queue_occupancy_tracks_peak_and_average() {
        let (mut sim, sw, _probe) = one_port_switch(PortConfig {
            rate_bps: 1_000_000, // slow: the burst queues up
            buf_bytes: 1 << 20,
            ecn_threshold: None,
            wred: None,
        });
        for _ in 0..5 {
            sim.schedule(Time::ZERO, sw, Frame::raw(tcp_frame(Ecn::NotEct, 1000)));
        }
        sim.run_until(Time::from_ms(100)); // long past full drain
        let s = sim.node_ref::<Switch>(sw);
        let (peak, avg) = s.queue_occupancy(0, sim.now().as_ns());
        // one frame is in serialization immediately; four sit queued
        assert!(peak >= 4_000, "peak {peak}");
        assert!(avg > 0.0 && avg < peak as f64, "avg {avg}");
        // a fully idle port reports zero
        let (mut sim2, sw2, _p2) = one_port_switch(PortConfig::default());
        sim2.run_until(Time::from_ms(1));
        let (peak2, avg2) = sim2
            .node_ref::<Switch>(sw2)
            .queue_occupancy(0, sim2.now().as_ns());
        assert_eq!((peak2, avg2), (0, 0.0));
    }

    /// Two-uplink "leaf": frames for a remote host IP leave through one of
    /// two ECMP candidate ports, each feeding a probe.
    fn ecmp_leaf(seed: u64) -> (Sim, flextoe_sim::NodeId, [flextoe_sim::NodeId; 2]) {
        let mut sim = Sim::new(seed);
        let up0 = sim.add_node(Probe { frames: vec![] });
        let up1 = sim.add_node(Probe { frames: vec![] });
        let mut sw = Switch::new();
        let p0 = sw.add_port(up0, PortConfig::default());
        let p1 = sw.add_port(up1, PortConfig::default());
        sw.route(flextoe_wire::Ip4::host(2), vec![p0, p1]);
        sw.set_ecmp_salt(sim.rng.next_u64());
        let swid = sim.add_node(sw);
        (sim, swid, [up0, up1])
    }

    fn flow_frame(src_port: u16) -> Vec<u8> {
        SegmentSpec {
            src_mac: MacAddr::local(1),
            // unknown to the MAC table: forces the L3 route path
            dst_mac: MacAddr::local(2),
            src_ip: flextoe_wire::Ip4::host(1),
            dst_ip: flextoe_wire::Ip4::host(2),
            src_port,
            dst_port: 7777,
            payload_len: 64,
            ..Default::default()
        }
        .emit_zeroed()
    }

    /// The delivery logs of every ECMP port are byte-identical across
    /// reruns of the same seed — the fabric determinism contract.
    #[test]
    fn ecmp_delivery_log_identical_across_reruns_of_same_seed() {
        let run = |seed: u64| -> Vec<Vec<(u64, Vec<u8>)>> {
            let (mut sim, sw, probes) = ecmp_leaf(seed);
            for i in 0..200u16 {
                sim.schedule(
                    Time::from_ns(i as u64 * 1000),
                    sw,
                    Frame::raw(flow_frame(10_000 + i)),
                );
            }
            sim.run();
            probes
                .iter()
                .map(|&p| sim.node_ref::<Probe>(p).frames.clone())
                .collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must reproduce identical delivery logs");
        // both uplinks carry traffic (the hash actually spreads flows)
        assert!(!a[0].is_empty() && !a[1].is_empty(), "ECMP spreads flows");
        // a different seed salts the hash differently: some flow moves
        let c = run(43);
        assert_ne!(
            (a[0].len(), a[1].len()),
            (c[0].len(), c[1].len()),
            "different seeds should shuffle the port split (200 flows)"
        );
    }

    /// One flow always takes one path: no packet reordering via ECMP.
    #[test]
    fn ecmp_is_per_flow_stable() {
        let (mut sim, sw, probes) = ecmp_leaf(7);
        for i in 0..50u64 {
            sim.schedule(Time::from_ns(i * 1000), sw, Frame::raw(flow_frame(5555)));
        }
        sim.run();
        let counts: Vec<usize> = probes
            .iter()
            .map(|&p| sim.node_ref::<Probe>(p).frames.len())
            .collect();
        assert!(
            counts.contains(&50) && counts.contains(&0),
            "one flow pinned to one port, got {counts:?}"
        );
    }

    /// A limping switch serializes N× slower (delivery time scales with
    /// the limp factor) without dropping anything; `SetSwitchLimp(1)`
    /// restores the healthy rate exactly.
    #[test]
    fn limping_switch_inflates_serialization_without_loss() {
        let arrival = |limp: Option<u32>| -> u64 {
            let mut sim = Sim::new(1);
            let probe = sim.add_node(Probe { frames: vec![] });
            let mut sw = Switch::new();
            // 1 Gbps: serialization is a whole number of ns, so the ×N
            // arithmetic below is exact in the probe's ns timestamps
            let cfg = PortConfig {
                rate_bps: 1_000_000_000,
                ..Default::default()
            };
            let p = sw.add_port(probe, cfg);
            sw.learn(MacAddr::local(2), p);
            let swid = sim.add_node(sw);
            if let Some(n) = limp {
                sim.schedule(Time::ZERO, swid, SetSwitchLimp(n));
            }
            sim.schedule(Time::from_ns(10), swid, Frame::raw(flow_frame(1)));
            sim.run();
            let pr = sim.node_ref::<Probe>(probe);
            assert_eq!(pr.frames.len(), 1, "limping must not drop");
            pr.frames[0].0
        };
        let healthy = arrival(None);
        let limped = arrival(Some(8));
        let healed = arrival(Some(1));
        assert_eq!(healed, healthy, "SetSwitchLimp(1) is the healthy rate");
        assert_eq!(
            limped - 10,
            (healthy - 10) * 8,
            "8x limp scales serialization"
        );
    }

    /// A directly-attached MAC wins over an IP route for the same host.
    #[test]
    fn mac_table_takes_precedence_over_route() {
        let mut sim = Sim::new(1);
        let direct = sim.add_node(Probe { frames: vec![] });
        let up = sim.add_node(Probe { frames: vec![] });
        let mut sw = Switch::new();
        let pd = sw.add_port(direct, PortConfig::default());
        let pu = sw.add_port(up, PortConfig::default());
        sw.learn(MacAddr::local(2), pd);
        sw.route(flextoe_wire::Ip4::host(2), vec![pu]);
        let swid = sim.add_node(sw);
        sim.schedule(Time::ZERO, swid, Frame::raw(flow_frame(1)));
        sim.run();
        assert_eq!(sim.node_ref::<Probe>(direct).frames.len(), 1);
        assert!(sim.node_ref::<Probe>(up).frames.is_empty());
    }

    /// ECMP failover: killing one uplink port moves every flow onto the
    /// survivor (counted as rerouted); killing both blackholes; healing
    /// restores the original hash-based split exactly.
    #[test]
    fn ecmp_excludes_dead_ports_and_blackholes_when_none_live() {
        let (mut sim, sw, probes) = ecmp_leaf(42);
        // establish the healthy split
        for i in 0..100u16 {
            sim.schedule(
                Time::from_ns(i as u64 * 1000),
                sw,
                Frame::raw(flow_frame(10_000 + i)),
            );
        }
        sim.run();
        let healthy: Vec<usize> = probes
            .iter()
            .map(|&p| sim.node_ref::<Probe>(p).frames.len())
            .collect();
        assert!(healthy[0] > 0 && healthy[1] > 0);

        // port 0 down: everything lands on port 1
        sim.schedule_in(Duration::from_ns(10), sw, SetPortUp { port: 0, up: false });
        for i in 0..100u16 {
            sim.schedule_in(
                Duration::from_ns(1000 + i as u64 * 1000),
                sw,
                Frame::raw(flow_frame(10_000 + i)),
            );
        }
        sim.run();
        {
            let s = sim.node_ref::<Switch>(sw);
            assert_eq!(s.rerouted as usize, healthy[0], "port-0 flows rerouted");
            assert_eq!(s.blackholed, 0);
        }
        assert_eq!(
            sim.node_ref::<Probe>(probes[0]).frames.len(),
            healthy[0],
            "no new frames on the dead port"
        );
        assert_eq!(
            sim.node_ref::<Probe>(probes[1]).frames.len(),
            healthy[1] + 100
        );

        // both down: total blackhole
        sim.schedule_in(Duration::from_ns(10), sw, SetPortUp { port: 1, up: false });
        for i in 0..10u16 {
            sim.schedule_in(
                Duration::from_ns(1000 + i as u64 * 1000),
                sw,
                Frame::raw(flow_frame(10_000 + i)),
            );
        }
        sim.run();
        assert_eq!(sim.node_ref::<Switch>(sw).blackholed, 10);

        // heal both: the original split comes back byte-for-byte
        sim.schedule_in(Duration::from_ns(10), sw, SetPortUp { port: 0, up: true });
        sim.schedule_in(Duration::from_ns(10), sw, SetPortUp { port: 1, up: true });
        for i in 0..100u16 {
            sim.schedule_in(
                Duration::from_ns(1000 + i as u64 * 1000),
                sw,
                Frame::raw(flow_frame(10_000 + i)),
            );
        }
        sim.run();
        assert_eq!(
            sim.node_ref::<Probe>(probes[0]).frames.len(),
            2 * healthy[0],
            "healed fabric re-selects the healthy paths"
        );
    }

    /// A killed switch drops everything (flushing queued frames back to
    /// the pool) and resumes forwarding after an explicit heal.
    #[test]
    fn switch_kill_flushes_and_heal_restores() {
        let (mut sim, sw, probe) = one_port_switch(PortConfig {
            rate_bps: 1_000_000, // slow: frames queue up before the kill
            buf_bytes: 1 << 20,
            ecn_threshold: None,
            wred: None,
        });
        for _ in 0..5 {
            sim.schedule(Time::ZERO, sw, Frame::raw(tcp_frame(Ecn::NotEct, 1000)));
        }
        sim.schedule(Time::from_us(1), sw, SetSwitchAlive(false));
        // arrives while dead: dropped at the door
        sim.schedule(
            Time::from_us(2),
            sw,
            Frame::raw(tcp_frame(Ecn::NotEct, 1000)),
        );
        sim.schedule(Time::from_ms(50), sw, SetSwitchAlive(true));
        sim.schedule(
            Time::from_ms(51),
            sw,
            Frame::raw(tcp_frame(Ecn::NotEct, 1000)),
        );
        sim.run_until(Time::from_ms(100));
        let s = sim.node_ref::<Switch>(sw);
        assert!(s.dead_drops >= 5, "flushed + at-the-door: {}", s.dead_drops);
        let delivered = sim.node_ref::<Probe>(probe).frames.len();
        assert!(
            (2..=3).contains(&delivered),
            "one in-flight at kill plus one after heal, got {delivered}"
        );
    }

    #[test]
    fn wred_drops_between_thresholds() {
        let (mut sim, sw, probe) = one_port_switch(PortConfig {
            rate_bps: 1_000_000,
            buf_bytes: 1 << 20,
            ecn_threshold: None,
            wred: Some(WredParams {
                min_bytes: 1000,
                max_bytes: 20_000,
                max_p: 1.0,
            }),
        });
        for _ in 0..50 {
            sim.schedule(Time::ZERO, sw, Frame::raw(tcp_frame(Ecn::NotEct, 1000)));
        }
        sim.run_until(Time::from_ms(2000));
        let drops = sim.node_ref::<Switch>(sw).port_stats(0).1;
        assert!(drops > 10, "wred drops {drops}");
        assert!(!sim.node_ref::<Probe>(probe).frames.is_empty());
    }
}
