//! Congestion-control framework (§D).
//!
//! "FlexTOE provides a generic control-plane framework to implement
//! different rate and window-based congestion control algorithms … The
//! control-plane runs a loop over the set of active flows to compute a new
//! transmission rate, periodically. … In each iteration, the control-plane
//! reads per-flow congestion control statistics from the data-path to
//! calculate a new rate or window for the flow."
//!
//! Algorithms are pure: `(stats, state) -> new rate`. The control plane
//! converts rates to the scheduler's interval-per-byte representation
//! (the NFP cannot divide, §3.4).

pub mod dctcp;
pub mod timely;

pub use dctcp::Dctcp;
pub use timely::Timely;

/// Statistics harvested from the data-path post-processor each iteration
/// (Table 5 post partition: `cnt_ackb`, `cnt_ecnb`, `cnt_fretx`,
/// `rtt_est`).
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowStats {
    /// Bytes acknowledged since the last harvest.
    pub acked_bytes: u32,
    /// ECN-marked bytes since the last harvest.
    pub ecn_bytes: u32,
    /// Fast retransmits since the last harvest.
    pub fast_retx: u8,
    /// Smoothed RTT estimate, microseconds.
    pub rtt_us: u32,
    /// Whether an RTO fired since the last harvest.
    pub rto_fired: bool,
}

/// A rate-based congestion-control algorithm.
pub trait CongestionControl {
    /// One control iteration for one flow; returns the new rate in
    /// bytes/second.
    fn update(&mut self, stats: &FlowStats) -> u64;
    /// Current rate without updating.
    fn rate(&self) -> u64;
    fn name(&self) -> &'static str;
}

/// Convert a rate to the scheduler's pacing interval (ps per byte).
/// A rate at or above `line_rate` is treated as uncongested (interval 0 —
/// the Carousel round-robin bypass, §3.4).
pub fn rate_to_interval(rate_bps_bytes: u64, line_rate_bytes: u64) -> u64 {
    if rate_bps_bytes == 0 {
        return u64::MAX;
    }
    if rate_bps_bytes >= line_rate_bytes {
        return 0;
    }
    1_000_000_000_000 / rate_bps_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_conversion() {
        let line = 5_000_000_000; // 40 Gbps in bytes/s
        assert_eq!(rate_to_interval(line, line), 0);
        assert_eq!(rate_to_interval(line * 2, line), 0);
        // 1 GB/s -> 1000 ps/byte
        assert_eq!(rate_to_interval(1_000_000_000, line), 1_000);
        // 1 MB/s -> 1_000_000 ps/byte
        assert_eq!(rate_to_interval(1_000_000, line), 1_000_000);
        assert_eq!(rate_to_interval(0, line), u64::MAX);
    }
}
