//! # flextoe-control — the FlexTOE control plane (§D, Figure 2)
//!
//! "Connection management, retransmission, and congestion control are part
//! of a separate control-plane, which executes in its own protection
//! domain, either on control cores of the SmartNIC or on the host."
//!
//! This crate implements that control plane as a simulation node:
//!
//! * **Connection control**: the TCP handshake state machine for passive
//!   (listen/accept) and active (connect) opens, port and buffer
//!   allocation, data-path state install/teardown (§D "Connection
//!   control"). Non-data-path segments reach it via the pre-processing
//!   stage's redirect path.
//! * **Congestion control**: an event-driven runtime (`flextoe-ccp`, the
//!   CCP architecture): the data-path folds per-ACK measurements in-line
//!   and sends batched reports out-of-band; per-flow algorithm instances
//!   (DCTCP, TIMELY, CUBIC, Reno — selected by name from [`CtrlConfig`])
//!   consume them and program pacing intervals into the NIC flow
//!   scheduler via MMIO (§3.4).
//! * **Retransmission timeouts**: stall detection injecting HC retransmit
//!   descriptors (§3.1.1).
//!
//! ARP is statically configured (`add_peer`) — the testbed's address
//! resolution, not an experiment subject.

pub mod cc;
pub mod rto;

use flextoe_ccp::{FlowReport, FoldSpec, Insn};
use flextoe_core::hostmem::{shared_buf, AppToNic, SharedBuf, SharedCtxQueue};
use flextoe_core::segment::ConnEntry;
use flextoe_core::stages::{Doorbell, NotifyJob, Redirect, RegisterCtx, SchedCtl};
use flextoe_core::{NicHandle, PostState, PreState, ProtoState};
use flextoe_nfp::MacTx;
use flextoe_sim::{
    try_cast, CounterHandle, Ctx, Duration, FxHashMap, Msg, Node, NodeId, ReportBatchToken, Stats,
    Tick,
};
use flextoe_wire::{
    Ecn, FourTuple, Frame, Ip4, MacAddr, SegmentSpec, SegmentView, SeqNum, TcpFlags, TcpOptions,
};

use cc::{rate_to_interval, Algorithm, FlowStats, Registry, Urgent};
use rto::{RtoTracker, RtoVerdict};

/// The control plane's own context-queue id (for HC injections).
pub const CTRL_CTX: u16 = u16::MAX;

/// Which congestion-control policy the control plane runs. Resolution
/// goes through the `flextoe-ccp` algorithm registry by [`CcAlgo::name`];
/// custom registrations use [`ControlPlane::register_algorithm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcAlgo {
    Dctcp,
    Timely,
    Cubic,
    Reno,
    /// Congestion control disabled — the Table 4 "off" rows.
    None,
}

impl CcAlgo {
    /// The registry key this policy resolves to.
    pub fn name(self) -> &'static str {
        match self {
            CcAlgo::Dctcp => "dctcp",
            CcAlgo::Timely => "timely",
            CcAlgo::Cubic => "cubic",
            CcAlgo::Reno => "reno",
            CcAlgo::None => "none",
        }
    }

    /// Parse a registry key (experiment CLI / config files).
    pub fn by_name(name: &str) -> Option<CcAlgo> {
        match name {
            "dctcp" => Some(CcAlgo::Dctcp),
            "timely" => Some(CcAlgo::Timely),
            "cubic" => Some(CcAlgo::Cubic),
            "reno" => Some(CcAlgo::Reno),
            "none" => Some(CcAlgo::None),
            _ => None,
        }
    }

    /// All selectable algorithms (the `cc` experiment sweep).
    pub fn all() -> [CcAlgo; 4] {
        [CcAlgo::Dctcp, CcAlgo::Timely, CcAlgo::Cubic, CcAlgo::Reno]
    }
}

#[derive(Clone, Debug)]
pub struct CtrlConfig {
    pub cc: CcAlgo,
    /// Control-loop iteration interval (RTO monitoring, teardown
    /// detection, stale-report flushing — no longer a stats harvest).
    pub cc_interval: Duration,
    /// Per-flow datapath report interval (the fold layer's cadence).
    pub report_interval: Duration,
    /// Datapath fold installed for new flows: the built-in native fold,
    /// or a custom program compiled to eBPF.
    pub fold: FoldSpec,
    pub min_rto: Duration,
    /// Base SYN retransmission interval. Retries back off exponentially
    /// (base ≪ attempt-1, capped at 32×) with ±25% jitter drawn from the
    /// simulation's seeded generator — deterministic per seed, but
    /// reconnection storms don't phase-lock.
    pub syn_retry: Duration,
    /// Total SYN attempts before the connect aborts with
    /// [`AppReply::ConnectFailed`].
    pub syn_attempts: u32,
    /// Consecutive no-progress RTO firings before an established
    /// connection is aborted (RST + teardown + a typed
    /// `NicToApp::Aborted` to the app) instead of retrying forever.
    /// `None` restores the legacy retry-forever behavior.
    pub rto_give_up: Option<u32>,
    /// SYN admission control: refuse new passive opens with an RST once
    /// this many connections are installed (counted in
    /// `ctrl.admission_refused`). Admission recovers by itself as
    /// connections tear down. `None` = unbounded (the historical
    /// behavior).
    pub max_conns: Option<u32>,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig {
            cc: CcAlgo::Dctcp,
            cc_interval: Duration::from_us(50),
            report_interval: Duration::from_us(50),
            fold: FoldSpec::Builtin,
            min_rto: Duration::from_ms(1),
            syn_retry: Duration::from_ms(5),
            syn_attempts: 4,
            rto_give_up: Some(8),
            max_conns: None,
        }
    }
}

// ---- application interface (used by libTOE) ------------------------------

pub enum AppRequest {
    /// Listen on `port`; incoming connections are auto-accepted and
    /// announced with [`AppReply::Accepted`].
    Listen {
        port: u16,
        ctx: u16,
        queue: SharedCtxQueue,
        reply_to: NodeId,
    },
    Connect {
        remote_ip: Ip4,
        remote_port: u16,
        ctx: u16,
        queue: SharedCtxQueue,
        reply_to: NodeId,
        /// Application cookie echoed in the reply.
        opaque: u64,
    },
    /// Fully tear down a closed connection's data-path state.
    Teardown { conn: u32 },
}

pub enum AppReply {
    Accepted {
        conn: u32,
        port: u16,
        peer: (Ip4, u16),
        rx_buf: SharedBuf,
        tx_buf: SharedBuf,
    },
    Connected {
        conn: u32,
        opaque: u64,
        rx_buf: SharedBuf,
        tx_buf: SharedBuf,
    },
    ConnectFailed {
        opaque: u64,
    },
}

// ---- internal records ------------------------------------------------------

struct Listener {
    ctx: u16,
    queue: SharedCtxQueue,
    reply_to: NodeId,
}

struct PendingActive {
    local_port: u16,
    remote_ip: Ip4,
    remote_port: u16,
    iss: u32,
    ctx: u16,
    queue: SharedCtxQueue,
    reply_to: NodeId,
    opaque: u64,
    attempts: u32,
}

struct PendingPassive {
    iss: u32,
    listen_port: u16,
}

flextoe_sim::custom_msg!(AppRequest, AppReply);

struct SynRetry {
    key: FourTuple,
}
flextoe_sim::custom_msg!(SynRetry);

pub struct ControlPlane {
    counters: Option<CtrlCounters>,
    cfg: CtrlConfig,
    nic: NicHandle,
    arp: FxHashMap<Ip4, MacAddr>,
    listeners: FxHashMap<u16, Listener>,
    /// Active opens in flight, keyed by the *RX* 4-tuple we expect.
    active: FxHashMap<FourTuple, PendingActive>,
    /// Passive opens awaiting the final ACK, keyed by RX 4-tuple.
    passive: FxHashMap<FourTuple, PendingPassive>,
    next_port: u16,
    cc: Vec<Option<Box<dyn Algorithm>>>,
    registry: Registry,
    /// `cfg.fold` compiled once for every flow install.
    compiled_fold: Option<(std::rc::Rc<Vec<Insn>>, [u32; flextoe_ccp::fold::N_STATE])>,
    rto: RtoTracker,
    kernel_q: SharedCtxQueue,
    registered_kernel_q: bool,
    cc_armed: bool,
    pub established: u64,
    pub resets_sent: u64,
    /// Established connections aborted after the RTO give-up threshold.
    pub aborts: u64,
    /// Passive opens refused with an RST by SYN admission control
    /// ([`CtrlConfig::max_conns`]).
    pub admission_refused: u64,
    /// Duplicate handshake segments absorbed without side effects: SYN
    /// retransmits answered by re-emitting the original SYN-ACK, and
    /// handshake segments for already-installed connections dropped
    /// instead of RST'ing the healthy peer (the dup-storm hazard).
    pub dup_handshake: u64,
    pub redirected_frames: u64,
    /// Report batches processed / flow reports consumed (diagnostics).
    pub report_batches: u64,
    pub flow_reports: u64,
}

impl ControlPlane {
    pub fn new(cfg: CtrlConfig, nic: NicHandle) -> ControlPlane {
        let min_rto = cfg.min_rto;
        // program the measurement layer's cadence
        {
            let mut ccp = nic.ccp.borrow_mut();
            let mut mcfg = ccp.cfg();
            mcfg.report_interval = cfg.report_interval;
            mcfg.linger = Duration::from_us((cfg.report_interval.as_us() / 5).max(1));
            ccp.set_cfg(mcfg);
        }
        let compiled_fold = cfg.fold.compile_for_install();
        let mut rto = RtoTracker::new(min_rto);
        rto.give_up_after = cfg.rto_give_up;
        ControlPlane {
            counters: None,
            cfg,
            nic,
            arp: FxHashMap::default(),
            listeners: FxHashMap::default(),
            active: FxHashMap::default(),
            passive: FxHashMap::default(),
            next_port: 40_000,
            cc: Vec::new(),
            registry: Registry::builtin(),
            compiled_fold,
            rto,
            kernel_q: flextoe_core::hostmem::shared_ctxq(1024),
            registered_kernel_q: false,
            cc_armed: false,
            established: 0,
            resets_sent: 0,
            aborts: 0,
            admission_refused: 0,
            dup_handshake: 0,
            redirected_frames: 0,
            report_batches: 0,
            flow_reports: 0,
        }
    }

    /// Register a custom congestion-control algorithm; select it by
    /// constructing a config whose [`CcAlgo::name`] matches, or use the
    /// registry name directly via [`CcAlgo::by_name`].
    pub fn register_algorithm(
        &mut self,
        name: &str,
        factory: impl Fn(u64) -> Box<dyn Algorithm> + 'static,
    ) {
        self.registry.add(name, factory);
    }

    /// Static ARP entry (testbed configuration).
    pub fn add_peer(&mut self, ip: Ip4, mac: MacAddr) {
        self.arp.insert(ip, mac);
    }

    fn local_ip(&self) -> Ip4 {
        self.nic.table.borrow().nic.ip
    }
    fn local_mac(&self) -> MacAddr {
        self.nic.table.borrow().nic.mac
    }

    /// Host → NIC frame injection latency (driver + MMIO + DMA).
    fn inject_latency(&self) -> Duration {
        self.nic.cfg.platform.pcie.write_latency + Duration::from_ns(600)
    }

    fn send_frame(&self, ctx: &mut Ctx<'_>, frame: Vec<u8>) {
        ctx.send(
            self.nic.mac,
            self.inject_latency(),
            MacTx(Frame::parsed(frame)),
        );
    }

    fn mmio(&self, ctx: &mut Ctx<'_>, msg: SchedCtl) {
        ctx.send(self.nic.sched, self.nic.cfg.platform.pcie.mmio_latency, msg);
    }

    fn handshake_spec(&self, dst_mac: MacAddr, dst_ip: Ip4, sport: u16, dport: u16) -> SegmentSpec {
        SegmentSpec {
            src_mac: self.local_mac(),
            dst_mac,
            src_ip: self.local_ip(),
            dst_ip,
            src_port: sport,
            dst_port: dport,
            ecn: Ecn::NotEct,
            window: u16::MAX,
            options: TcpOptions {
                mss: Some(self.nic.cfg.mss as u16),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn ensure_kernel_q(&mut self, ctx: &mut Ctx<'_>) {
        if !self.registered_kernel_q {
            self.registered_kernel_q = true;
            ctx.send(
                self.nic.ctxq,
                self.nic.cfg.platform.pcie.mmio_latency,
                RegisterCtx {
                    ctx: CTRL_CTX,
                    queue: self.kernel_q.clone(),
                    app: None,
                },
            );
        }
    }

    fn arm_cc(&mut self, ctx: &mut Ctx<'_>) {
        if !self.cc_armed {
            self.cc_armed = true;
            ctx.wake(self.cfg.cc_interval, Tick);
        }
    }

    /// Deterministic ISS (a real stack uses a clock + hash; determinism
    /// matters more here).
    fn iss(&mut self, ctx: &mut Ctx<'_>) -> u32 {
        ctx.rng.next_u32()
    }

    /// Jittered exponential backoff before SYN attempt `attempts + 1`:
    /// base · 2^(attempts−1), shift capped at 5 (32× base), ±25% jitter
    /// from the seeded generator. Deterministic per seed; the jitter
    /// keeps a reconnection storm's retries from phase-locking.
    fn syn_backoff(&self, ctx: &mut Ctx<'_>, attempts: u32) -> Duration {
        let base = self.cfg.syn_retry.as_ns().max(1);
        let d = base.saturating_mul(1u64 << attempts.saturating_sub(1).min(5));
        Duration::from_ns(ctx.rng.range(d - d / 4, d + d / 4))
    }

    // ---- handshake ---------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn start_connect(
        &mut self,
        ctx: &mut Ctx<'_>,
        remote_ip: Ip4,
        remote_port: u16,
        app_ctx: u16,
        queue: SharedCtxQueue,
        reply_to: NodeId,
        opaque: u64,
    ) {
        let Some(&dst_mac) = self.arp.get(&remote_ip) else {
            ctx.send(reply_to, Duration::ZERO, AppReply::ConnectFailed { opaque });
            return;
        };
        let local_port = self.next_port;
        self.next_port = self.next_port.wrapping_add(1).max(40_000);
        let iss = self.iss(ctx);
        let mut spec = self.handshake_spec(dst_mac, remote_ip, local_port, remote_port);
        spec.seq = SeqNum(iss);
        spec.flags = TcpFlags::SYN;
        let mut frame = ctx.pool.take();
        spec.emit_zeroed_into(&mut frame);
        self.send_frame(ctx, frame);
        // key: the SYN-ACK we expect (src = peer)
        let key = FourTuple::new(remote_ip, remote_port, self.local_ip(), local_port);
        self.active.insert(
            key,
            PendingActive {
                local_port,
                remote_ip,
                remote_port,
                iss,
                ctx: app_ctx,
                queue,
                reply_to,
                opaque,
                attempts: 1,
            },
        );
        let delay = self.syn_backoff(ctx, 1);
        ctx.wake(delay, SynRetry { key });
    }

    fn retry_syn(&mut self, ctx: &mut Ctx<'_>, key: FourTuple) {
        let give_up = {
            let Some(p) = self.active.get_mut(&key) else {
                return; // established or failed meanwhile
            };
            p.attempts += 1;
            p.attempts > self.cfg.syn_attempts
        };
        if give_up {
            let p = self.active.remove(&key).unwrap();
            ctx.send(
                p.reply_to,
                Duration::ZERO,
                AppReply::ConnectFailed { opaque: p.opaque },
            );
            return;
        }
        let p = &self.active[&key];
        let attempts = p.attempts;
        let Some(&dst_mac) = self.arp.get(&p.remote_ip) else {
            return;
        };
        let mut spec = self.handshake_spec(dst_mac, p.remote_ip, p.local_port, p.remote_port);
        spec.seq = SeqNum(p.iss);
        spec.flags = TcpFlags::SYN;
        let mut frame = ctx.pool.take();
        spec.emit_zeroed_into(&mut frame);
        self.send_frame(ctx, frame);
        let delay = self.syn_backoff(ctx, attempts);
        ctx.wake(delay, SynRetry { key });
    }

    /// Install an established connection into the data path (§D).
    #[allow(clippy::too_many_arguments)]
    fn install(
        &mut self,
        ctx: &mut Ctx<'_>,
        peer_ip: Ip4,
        peer_port: u16,
        local_port: u16,
        iss: u32,
        peer_iss: u32,
        remote_win: u16,
        app_ctx: u16,
        queue: SharedCtxQueue,
    ) -> (u32, SharedBuf, SharedBuf) {
        let peer_mac = *self.arp.get(&peer_ip).expect("peer in arp table");
        let cfg = self.nic.cfg.clone();
        let tuple_rx = FourTuple::new(peer_ip, peer_port, self.local_ip(), local_port);
        let group = (tuple_rx.flow_hash() as usize) % cfg.n_groups;
        let rx_buf = shared_buf(cfg.rx_buf_size);
        let tx_buf = shared_buf(cfg.tx_buf_size);

        let proto = ProtoState {
            seq: SeqNum(iss.wrapping_add(1)),
            ack: SeqNum(peer_iss.wrapping_add(1)),
            rx_avail: cfg.rx_buf_size,
            remote_win,
            ..Default::default()
        };
        let entry = ConnEntry {
            pre: PreState {
                peer_mac,
                peer_ip,
                local_port,
                remote_port: peer_port,
                flow_group: group as u8,
            },
            proto,
            post: PostState {
                context: app_ctx,
                rx_size: cfg.rx_buf_size,
                tx_size: cfg.tx_buf_size,
                ..Default::default()
            },
            tuple_rx,
            tx_buf: tx_buf.clone(),
            rx_buf: rx_buf.clone(),
            ctxq: queue,
            active: true,
        };
        let conn = self.nic.table.borrow_mut().install(entry);
        self.nic.db.borrow_mut().insert(tuple_rx, conn);
        self.mmio(ctx, SchedCtl::Register { conn, group });

        // per-flow congestion control (via the ccp registry) + fold
        // install + RTO monitoring
        let line = self.nic.cfg.platform.mac_bps / 8;
        let algo: Option<Box<dyn Algorithm>> = match self.cfg.cc {
            CcAlgo::None => None,
            named => self.registry.create(named.name(), line),
        };
        if self.cc.len() <= conn as usize {
            self.cc.resize_with(conn as usize + 1, || None);
        }
        let has_cc = algo.is_some();
        self.cc[conn as usize] = algo;
        if has_cc {
            self.nic.ccp.borrow_mut().install(
                conn,
                self.compiled_fold.clone(),
                ctx.now().as_us() as u32,
            );
        }
        self.rto.register(conn);
        self.established += 1;
        self.ensure_kernel_q(ctx);
        self.arm_cc(ctx);
        (conn, rx_buf, tx_buf)
    }

    fn send_rst(&mut self, ctx: &mut Ctx<'_>, view: &SegmentView) {
        self.resets_sent += 1;
        let mut spec = self.handshake_spec(view.src_mac, view.src_ip, view.dst_port, view.src_port);
        spec.options = TcpOptions::default();
        spec.seq = view.ack;
        spec.ack = view.seq_end();
        spec.flags = TcpFlags::RST | TcpFlags::ACK;
        let mut frame = ctx.pool.take();
        spec.emit_zeroed_into(&mut frame);
        self.send_frame(ctx, frame);
    }

    /// Slow-path frame handling. The frame buffer is pooled: every path
    /// that consumes the frame here returns it to the pool, and the two
    /// replay paths hand it back to the NIC (which recycles it after RX
    /// processing) — the conservation invariant the chaos suite audits.
    fn on_redirect(&mut self, ctx: &mut Ctx<'_>, frame: Vec<u8>) {
        self.redirected_frames += 1;
        let Ok(view) = SegmentView::parse(&frame, true) else {
            ctx.pool.put(frame);
            return;
        };
        let tuple = view.four_tuple();
        let flags = view.flags;

        if flags.rst() {
            // peer reset: tear down any matching connection or pending open
            if let Some(p) = self.active.remove(&tuple) {
                ctx.send(
                    p.reply_to,
                    Duration::ZERO,
                    AppReply::ConnectFailed { opaque: p.opaque },
                );
            }
            self.passive.remove(&tuple);
            let conn = self.nic.db.borrow().get(&tuple);
            if let Some(conn) = conn {
                self.teardown_now(ctx, conn);
            }
            ctx.pool.put(frame);
            return;
        }

        if flags.syn() && !flags.ack() {
            // passive open
            if !self.listeners.contains_key(&view.dst_port) {
                self.send_rst(ctx, &view);
                ctx.pool.put(frame);
                return;
            }
            // a duplicated/retransmitted SYN for a connection the final
            // ACK already installed: the handshake is done — absorb it
            // without resetting the healthy peer
            if self.nic.db.borrow().get(&tuple).is_some() {
                self.dup_handshake += 1;
                ctx.stats
                    .inc(self.counters.expect("control plane attached").dup_handshake);
                ctx.pool.put(frame);
                return;
            }
            // a duplicated SYN while the handshake is pending must reuse
            // the pending ISS (a fresh draw would desynchronize the final
            // ACK's sequence check) — re-emit the same SYN-ACK
            let pending_iss = self.passive.get(&tuple).map(|pp| pp.iss);
            let iss = match pending_iss {
                Some(iss) => {
                    self.dup_handshake += 1;
                    ctx.stats
                        .inc(self.counters.expect("control plane attached").dup_handshake);
                    iss
                }
                None => {
                    // SYN admission control: at the connection cap, refuse
                    // with an RST instead of wedging the pool — the peer
                    // sees a failed connect and may retry later; admission
                    // recovers as connections tear down
                    if let Some(max) = self.cfg.max_conns {
                        let installed = self.nic.table.borrow().len() as u32;
                        if installed + self.passive.len() as u32 >= max {
                            self.admission_refused += 1;
                            ctx.stats.inc(
                                self.counters
                                    .expect("control plane attached")
                                    .admission_refused,
                            );
                            self.send_rst(ctx, &view);
                            ctx.pool.put(frame);
                            return;
                        }
                    }
                    let iss = self.iss(ctx);
                    self.passive.insert(
                        tuple,
                        PendingPassive {
                            iss,
                            listen_port: view.dst_port,
                        },
                    );
                    iss
                }
            };
            let mut spec =
                self.handshake_spec(view.src_mac, view.src_ip, view.dst_port, view.src_port);
            spec.seq = SeqNum(iss);
            spec.ack = view.seq + 1;
            spec.flags = TcpFlags::SYN | TcpFlags::ACK;
            let mut synack = ctx.pool.take();
            spec.emit_zeroed_into(&mut synack);
            self.send_frame(ctx, synack);
            ctx.pool.put(frame);
            return;
        }

        if flags.syn() && flags.ack() {
            // SYN-ACK for an active open
            let Some(p) = self.active.remove(&tuple) else {
                // a duplicated SYN-ACK arriving after the connection was
                // installed must not RST the healthy peer — absorb it
                if self.nic.db.borrow().get(&tuple).is_some() {
                    self.dup_handshake += 1;
                    ctx.stats
                        .inc(self.counters.expect("control plane attached").dup_handshake);
                } else {
                    self.send_rst(ctx, &view);
                }
                ctx.pool.put(frame);
                return;
            };
            // final handshake ACK
            let mut spec =
                self.handshake_spec(view.src_mac, p.remote_ip, p.local_port, p.remote_port);
            spec.options = TcpOptions::default();
            spec.seq = SeqNum(p.iss.wrapping_add(1));
            spec.ack = view.seq + 1;
            spec.flags = TcpFlags::ACK;
            let mut ackframe = ctx.pool.take();
            spec.emit_zeroed_into(&mut ackframe);
            self.send_frame(ctx, ackframe);
            let (conn, rx_buf, tx_buf) = self.install(
                ctx,
                p.remote_ip,
                p.remote_port,
                p.local_port,
                p.iss,
                view.seq.0,
                view.window,
                p.ctx,
                p.queue.clone(),
            );
            ctx.send(
                p.reply_to,
                Duration::ZERO,
                AppReply::Connected {
                    conn,
                    opaque: p.opaque,
                    rx_buf,
                    tx_buf,
                },
            );
            ctx.pool.put(frame);
            return;
        }

        if flags.ack() {
            // final ACK of a passive handshake (redirected as unknown flow)
            if let Some(pp) = self.passive.remove(&tuple) {
                let listener = self
                    .listeners
                    .get(&pp.listen_port)
                    .expect("listener for pending passive");
                let (l_ctx, l_queue, l_reply) =
                    (listener.ctx, listener.queue.clone(), listener.reply_to);
                let (conn, rx_buf, tx_buf) = self.install(
                    ctx,
                    view.src_ip,
                    view.src_port,
                    view.dst_port,
                    pp.iss,
                    view.seq.0.wrapping_sub(1),
                    view.window,
                    l_ctx,
                    l_queue,
                );
                ctx.send(
                    l_reply,
                    Duration::ZERO,
                    AppReply::Accepted {
                        conn,
                        port: pp.listen_port,
                        peer: (view.src_ip, view.src_port),
                        rx_buf,
                        tx_buf,
                    },
                );
                // data may have ridden on the ACK (or raced it): replay the
                // frame through the NIC so the data-path processes it.
                if view.payload_len > 0 || view.flags.fin() {
                    ctx.send(self.nic.mac, self.inject_latency(), Frame::raw(frame));
                } else {
                    ctx.pool.put(frame);
                }
                return;
            }
            // A data segment can race the handshake's final ACK through
            // the redirect path: both miss the db at pre-stage time, and
            // by now the ACK has installed the connection. Replay it
            // through the NIC rather than treating it as stray.
            if self.nic.db.borrow().get(&tuple).is_some() {
                ctx.send(self.nic.mac, self.inject_latency(), Frame::raw(frame));
                return;
            }
            // A segment for a connection this host genuinely does not
            // know gets a reset, as in real TCP: a peer retransmitting
            // its FIN out of LAST-ACK (because our final ACK was lost, or
            // we tore down first) would otherwise retry forever against
            // silence.
            self.send_rst(ctx, &view);
            ctx.stats
                .inc(self.counters.expect("control plane attached").stray_rst);
        }
        ctx.pool.put(frame);
    }

    // ---- CC runtime (event-driven, flextoe-ccp) -----------------------------

    /// Program the scheduler if the algorithm's rate decision changed.
    fn apply_rate(&mut self, ctx: &mut Ctx<'_>, conn: u32, old: u64, new: u64) {
        if new != old {
            let line = self.nic.cfg.platform.mac_bps / 8;
            self.mmio(
                ctx,
                SchedCtl::SetRate {
                    conn,
                    interval_ps_per_byte: rate_to_interval(new, line),
                },
            );
        }
    }

    /// Consume one sealed report batch from the shared pool.
    fn on_report_batch(&mut self, ctx: &mut Ctx<'_>, token: ReportBatchToken) {
        let entries = self.nic.ccp.borrow_mut().take(token.slot);
        self.report_batches += 1;
        // every sealed batch funnels through here (post-stage seals and
        // control-plane flushes alike), so these are the authoritative
        // batching counters
        let c = self.counters.expect("control plane attached to a sim");
        ctx.stats.inc(c.ccp_batches);
        ctx.stats.add(c.ccp_reports, entries.len() as u64);
        ctx.stats.inc(c.report_batches);
        self.process_reports(ctx, &entries);
        self.nic.ccp.borrow_mut().release(token.slot, entries);
    }

    fn process_reports(&mut self, ctx: &mut Ctx<'_>, entries: &[FlowReport]) {
        for r in entries {
            self.flow_reports += 1;
            // connection ids are reused: a report folded under an older
            // install generation must not feed the id's next flow
            if self.nic.ccp.borrow().flow_epoch(r.conn) != r.epoch {
                continue;
            }
            let Some(Some(algo)) = self.cc.get_mut(r.conn as usize) else {
                continue; // torn down since the batch was sealed
            };
            let stats = FlowStats {
                acked_bytes: r.acked_bytes,
                ecn_bytes: r.ecn_bytes,
                fast_retx: r.fast_retx.min(u8::MAX as u32) as u8,
                rtt_us: r.rtt_us,
                rto_fired: false,
                elapsed_us: r.elapsed_us,
            };
            let old = algo.rate();
            let new = algo.on_report(&stats);
            self.apply_rate(ctx, r.conn, old, new);
        }
    }

    // ---- control loop (RTO / teardown; no longer a stats harvest) -----------

    fn control_iteration(&mut self, ctx: &mut Ctx<'_>) {
        let conns: Vec<u32> = self.nic.table.borrow().iter().map(|(c, _)| c).collect();
        if conns.is_empty() {
            // going quiet: deliver any still-open batch now — with no
            // flows and no further ticks, nothing else would flush it
            let open = self.nic.ccp.borrow_mut().flush_open();
            if let Some(token) = open {
                self.on_report_batch(ctx, token);
            }
            self.cc_armed = false;
            return;
        }
        let mut to_teardown = Vec::new();
        let mut to_abort = Vec::new();
        for conn in conns {
            let table = self.nic.table.borrow();
            let Some(entry) = table.get(conn) else {
                continue;
            };
            let rtt_est = entry.post.rtt_est;
            let snd_una = entry.proto.snd_una();
            let in_flight = entry.proto.tx_sent;
            let closed = entry.proto.fin_received
                && entry.proto.fin_sent
                && !entry.proto.fin_pending
                && entry.proto.tx_sent == 0;
            drop(table);

            if closed {
                to_teardown.push(conn);
                continue;
            }

            // RTO monitoring — the urgent-event path into the algorithm
            match self
                .rto
                .observe(conn, snd_una, in_flight, ctx.now(), rtt_est.max(20))
            {
                RtoVerdict::Idle => {}
                RtoVerdict::Fire => {
                    ctx.stats
                        .inc(self.counters.expect("control plane attached").rto_fired);
                    let _ = self
                        .kernel_q
                        .borrow_mut()
                        .to_nic
                        .push(AppToNic::Retransmit { conn });
                    ctx.send(
                        self.nic.ctxq,
                        self.nic.cfg.platform.pcie.mmio_latency,
                        Doorbell { ctx: CTRL_CTX },
                    );
                    if let Some(Some(algo)) = self.cc.get_mut(conn as usize) {
                        let old = algo.rate();
                        let new = algo.on_urgent(Urgent::Rto);
                        self.apply_rate(ctx, conn, old, new);
                    }
                }
                RtoVerdict::GiveUp => to_abort.push(conn),
            }
        }
        for conn in to_teardown {
            self.teardown_now(ctx, conn);
        }
        for conn in to_abort {
            self.abort_now(ctx, conn);
        }
        // backstop: a report appended by a flow that then went idle would
        // otherwise sit in the open batch forever
        let now_us = ctx.now().as_us() as u32;
        let stale = self.nic.ccp.borrow_mut().flush_stale(now_us);
        if let Some(token) = stale {
            self.on_report_batch(ctx, token);
        }
        ctx.wake(self.cfg.cc_interval, Tick);
    }

    /// Abort an established connection whose retry budget is spent: send
    /// an RST built from our own connection state (there is no inbound
    /// segment to echo — the path is blackholed), surface a typed
    /// [`flextoe_core::hostmem::NicToApp::Aborted`] descriptor to the
    /// owning application context, and reclaim all data-path state.
    fn abort_now(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        let info = {
            let table = self.nic.table.borrow();
            table.get(conn).map(|e| {
                (
                    e.pre.peer_mac,
                    e.pre.peer_ip,
                    e.pre.local_port,
                    e.pre.remote_port,
                    e.proto.seq,
                    e.proto.ack,
                    e.post.context,
                )
            })
        };
        let Some((peer_mac, peer_ip, local_port, remote_port, seq, ack, app_ctx)) = info else {
            return; // raced a teardown
        };
        self.resets_sent += 1;
        let mut spec = self.handshake_spec(peer_mac, peer_ip, local_port, remote_port);
        spec.options = TcpOptions::default();
        spec.seq = seq;
        spec.ack = ack;
        spec.flags = TcpFlags::RST | TcpFlags::ACK;
        let mut frame = ctx.pool.take();
        spec.emit_zeroed_into(&mut frame);
        self.send_frame(ctx, frame);
        // typed error to the app, through the normal notification DMA
        // path so it serializes behind any in-flight completions
        ctx.send(
            self.nic.ctxq,
            self.nic.cfg.platform.pcie.mmio_latency,
            NotifyJob {
                ctx: app_ctx,
                desc: flextoe_core::hostmem::NicToApp::Aborted { conn },
            },
        );
        self.aborts += 1;
        ctx.stats
            .inc(self.counters.expect("control plane attached").abort);
        self.teardown_now(ctx, conn);
    }

    fn teardown_now(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        let mut table = self.nic.table.borrow_mut();
        if let Some(entry) = table.remove(conn) {
            self.nic.db.borrow_mut().remove(&entry.tuple_rx);
        }
        drop(table);
        self.mmio(ctx, SchedCtl::Unregister { conn });
        self.rto.unregister(conn);
        self.nic.ccp.borrow_mut().uninstall(conn);
        if let Some(slot) = self.cc.get_mut(conn as usize) {
            *slot = None;
        }
        ctx.stats
            .inc(self.counters.expect("control plane attached").teardown);
    }
}

#[derive(Clone, Copy)]
struct CtrlCounters {
    ccp_batches: CounterHandle,
    ccp_reports: CounterHandle,
    report_batches: CounterHandle,
    rto_fired: CounterHandle,
    teardown: CounterHandle,
    stray_rst: CounterHandle,
    abort: CounterHandle,
    admission_refused: CounterHandle,
    dup_handshake: CounterHandle,
}

impl Node for ControlPlane {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        // batched congestion reports are the hot control-plane message:
        // match the typed variant directly, no downcast
        let msg = match msg {
            Msg::Report(token) => {
                self.on_report_batch(ctx, token);
                return;
            }
            m => m,
        };
        let msg = match try_cast::<Redirect>(msg) {
            Ok(r) => {
                self.on_redirect(ctx, r.0.into_bytes());
                return;
            }
            Err(m) => m,
        };
        let msg = match try_cast::<Tick>(msg) {
            Ok(_) => {
                self.control_iteration(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match try_cast::<SynRetry>(msg) {
            Ok(r) => {
                self.retry_syn(ctx, r.key);
                return;
            }
            Err(m) => m,
        };
        let req = flextoe_sim::cast::<AppRequest>(msg);
        match *req {
            AppRequest::Listen {
                port,
                ctx: app_ctx,
                ref queue,
                reply_to,
            } => {
                self.listeners.insert(
                    port,
                    Listener {
                        ctx: app_ctx,
                        queue: queue.clone(),
                        reply_to,
                    },
                );
            }
            AppRequest::Connect {
                remote_ip,
                remote_port,
                ctx: app_ctx,
                ref queue,
                reply_to,
                opaque,
            } => {
                self.start_connect(
                    ctx,
                    remote_ip,
                    remote_port,
                    app_ctx,
                    queue.clone(),
                    reply_to,
                    opaque,
                );
            }
            AppRequest::Teardown { conn } => self.teardown_now(ctx, conn),
        }
    }

    fn on_attach(&mut self, stats: &mut Stats) {
        self.counters = Some(CtrlCounters {
            ccp_batches: stats.counter("ccp.batches"),
            ccp_reports: stats.counter("ccp.reports"),
            report_batches: stats.counter("ctrl.report_batches"),
            rto_fired: stats.counter("ctrl.rto_fired"),
            teardown: stats.counter("ctrl.teardown"),
            stray_rst: stats.counter("ctrl.stray_rst"),
            abort: stats.counter("ctrl.abort"),
            admission_refused: stats.counter("ctrl.admission_refused"),
            dup_handshake: stats.counter("ctrl.dup_handshake"),
        });
    }

    fn name(&self) -> String {
        "control-plane".to_string()
    }
}
