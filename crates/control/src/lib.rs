//! # flextoe-control — the FlexTOE control plane (§D, Figure 2)
//!
//! "Connection management, retransmission, and congestion control are part
//! of a separate control-plane, which executes in its own protection
//! domain, either on control cores of the SmartNIC or on the host."
//!
//! This crate implements that control plane as a simulation node:
//!
//! * **Connection control**: the TCP handshake state machine for passive
//!   (listen/accept) and active (connect) opens, port and buffer
//!   allocation, data-path state install/teardown (§D "Connection
//!   control"). Non-data-path segments reach it via the pre-processing
//!   stage's redirect path.
//! * **Congestion control**: a per-flow policy loop (DCTCP or TIMELY)
//!   harvesting post-processor statistics and programming pacing
//!   intervals into the NIC flow scheduler via MMIO (§3.4).
//! * **Retransmission timeouts**: stall detection injecting HC retransmit
//!   descriptors (§3.1.1).
//!
//! ARP is statically configured (`add_peer`) — the testbed's address
//! resolution, not an experiment subject.

pub mod cc;
pub mod rto;

use std::collections::HashMap;

use flextoe_core::hostmem::{shared_buf, AppToNic, SharedBuf, SharedCtxQueue};
use flextoe_core::segment::ConnEntry;
use flextoe_core::stages::{Doorbell, Redirect, RegisterCtx, SchedCtl};
use flextoe_core::{NicHandle, PostState, PreState, ProtoState};
use flextoe_nfp::MacTx;
use flextoe_sim::{try_cast, Ctx, Duration, Msg, Node, NodeId, Tick};
use flextoe_wire::{
    Ecn, FourTuple, Frame, Ip4, MacAddr, SegmentSpec, SegmentView, SeqNum, TcpFlags, TcpOptions,
};

use cc::{rate_to_interval, CongestionControl, Dctcp, FlowStats, Timely};
use rto::RtoTracker;

/// The control plane's own context-queue id (for HC injections).
pub const CTRL_CTX: u16 = u16::MAX;

/// Which congestion-control policy the control plane runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcAlgo {
    Dctcp,
    Timely,
    /// Congestion control disabled — the Table 4 "off" rows.
    None,
}

#[derive(Clone, Copy, Debug)]
pub struct CtrlConfig {
    pub cc: CcAlgo,
    /// Control-loop iteration interval (§D: per-RTT per flow; we run a
    /// fixed loop over all flows).
    pub cc_interval: Duration,
    pub min_rto: Duration,
    /// SYN retransmission interval and attempt limit.
    pub syn_retry: Duration,
    pub syn_attempts: u32,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig {
            cc: CcAlgo::Dctcp,
            cc_interval: Duration::from_us(50),
            min_rto: Duration::from_ms(1),
            syn_retry: Duration::from_ms(5),
            syn_attempts: 4,
        }
    }
}

// ---- application interface (used by libTOE) ------------------------------

pub enum AppRequest {
    /// Listen on `port`; incoming connections are auto-accepted and
    /// announced with [`AppReply::Accepted`].
    Listen {
        port: u16,
        ctx: u16,
        queue: SharedCtxQueue,
        reply_to: NodeId,
    },
    Connect {
        remote_ip: Ip4,
        remote_port: u16,
        ctx: u16,
        queue: SharedCtxQueue,
        reply_to: NodeId,
        /// Application cookie echoed in the reply.
        opaque: u64,
    },
    /// Fully tear down a closed connection's data-path state.
    Teardown { conn: u32 },
}

pub enum AppReply {
    Accepted {
        conn: u32,
        port: u16,
        peer: (Ip4, u16),
        rx_buf: SharedBuf,
        tx_buf: SharedBuf,
    },
    Connected {
        conn: u32,
        opaque: u64,
        rx_buf: SharedBuf,
        tx_buf: SharedBuf,
    },
    ConnectFailed {
        opaque: u64,
    },
}

// ---- internal records ------------------------------------------------------

struct Listener {
    ctx: u16,
    queue: SharedCtxQueue,
    reply_to: NodeId,
}

struct PendingActive {
    local_port: u16,
    remote_ip: Ip4,
    remote_port: u16,
    iss: u32,
    ctx: u16,
    queue: SharedCtxQueue,
    reply_to: NodeId,
    opaque: u64,
    attempts: u32,
}

struct PendingPassive {
    iss: u32,
    listen_port: u16,
}

flextoe_sim::custom_msg!(AppRequest, AppReply);

struct SynRetry {
    key: FourTuple,
}
flextoe_sim::custom_msg!(SynRetry);

pub struct ControlPlane {
    cfg: CtrlConfig,
    nic: NicHandle,
    arp: HashMap<Ip4, MacAddr>,
    listeners: HashMap<u16, Listener>,
    /// Active opens in flight, keyed by the *RX* 4-tuple we expect.
    active: HashMap<FourTuple, PendingActive>,
    /// Passive opens awaiting the final ACK, keyed by RX 4-tuple.
    passive: HashMap<FourTuple, PendingPassive>,
    next_port: u16,
    cc: Vec<Option<Box<dyn CongestionControl>>>,
    rto: RtoTracker,
    rto_fired_since: Vec<bool>,
    kernel_q: SharedCtxQueue,
    registered_kernel_q: bool,
    cc_armed: bool,
    pub established: u64,
    pub resets_sent: u64,
    pub redirected_frames: u64,
}

impl ControlPlane {
    pub fn new(cfg: CtrlConfig, nic: NicHandle) -> ControlPlane {
        let min_rto = cfg.min_rto;
        ControlPlane {
            cfg,
            nic,
            arp: HashMap::new(),
            listeners: HashMap::new(),
            active: HashMap::new(),
            passive: HashMap::new(),
            next_port: 40_000,
            cc: Vec::new(),
            rto: RtoTracker::new(min_rto),
            rto_fired_since: Vec::new(),
            kernel_q: flextoe_core::hostmem::shared_ctxq(1024),
            registered_kernel_q: false,
            cc_armed: false,
            established: 0,
            resets_sent: 0,
            redirected_frames: 0,
        }
    }

    /// Static ARP entry (testbed configuration).
    pub fn add_peer(&mut self, ip: Ip4, mac: MacAddr) {
        self.arp.insert(ip, mac);
    }

    fn local_ip(&self) -> Ip4 {
        self.nic.table.borrow().nic.ip
    }
    fn local_mac(&self) -> MacAddr {
        self.nic.table.borrow().nic.mac
    }

    /// Host → NIC frame injection latency (driver + MMIO + DMA).
    fn inject_latency(&self) -> Duration {
        self.nic.cfg.platform.pcie.write_latency + Duration::from_ns(600)
    }

    fn send_frame(&self, ctx: &mut Ctx<'_>, frame: Vec<u8>) {
        ctx.send(self.nic.mac, self.inject_latency(), MacTx(Frame(frame)));
    }

    fn mmio(&self, ctx: &mut Ctx<'_>, msg: SchedCtl) {
        ctx.send(self.nic.sched, self.nic.cfg.platform.pcie.mmio_latency, msg);
    }

    fn handshake_spec(&self, dst_mac: MacAddr, dst_ip: Ip4, sport: u16, dport: u16) -> SegmentSpec {
        SegmentSpec {
            src_mac: self.local_mac(),
            dst_mac,
            src_ip: self.local_ip(),
            dst_ip,
            src_port: sport,
            dst_port: dport,
            ecn: Ecn::NotEct,
            window: u16::MAX,
            options: TcpOptions {
                mss: Some(self.nic.cfg.mss as u16),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn ensure_kernel_q(&mut self, ctx: &mut Ctx<'_>) {
        if !self.registered_kernel_q {
            self.registered_kernel_q = true;
            ctx.send(
                self.nic.ctxq,
                self.nic.cfg.platform.pcie.mmio_latency,
                RegisterCtx {
                    ctx: CTRL_CTX,
                    queue: self.kernel_q.clone(),
                    app: None,
                },
            );
        }
    }

    fn arm_cc(&mut self, ctx: &mut Ctx<'_>) {
        if !self.cc_armed {
            self.cc_armed = true;
            ctx.wake(self.cfg.cc_interval, Tick);
        }
    }

    /// Deterministic ISS (a real stack uses a clock + hash; determinism
    /// matters more here).
    fn iss(&mut self, ctx: &mut Ctx<'_>) -> u32 {
        ctx.rng.next_u32()
    }

    // ---- handshake ---------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn start_connect(
        &mut self,
        ctx: &mut Ctx<'_>,
        remote_ip: Ip4,
        remote_port: u16,
        app_ctx: u16,
        queue: SharedCtxQueue,
        reply_to: NodeId,
        opaque: u64,
    ) {
        let Some(&dst_mac) = self.arp.get(&remote_ip) else {
            ctx.send(reply_to, Duration::ZERO, AppReply::ConnectFailed { opaque });
            return;
        };
        let local_port = self.next_port;
        self.next_port = self.next_port.wrapping_add(1).max(40_000);
        let iss = self.iss(ctx);
        let mut spec = self.handshake_spec(dst_mac, remote_ip, local_port, remote_port);
        spec.seq = SeqNum(iss);
        spec.flags = TcpFlags::SYN;
        let frame = spec.emit_zeroed();
        self.send_frame(ctx, frame);
        // key: the SYN-ACK we expect (src = peer)
        let key = FourTuple::new(remote_ip, remote_port, self.local_ip(), local_port);
        self.active.insert(
            key,
            PendingActive {
                local_port,
                remote_ip,
                remote_port,
                iss,
                ctx: app_ctx,
                queue,
                reply_to,
                opaque,
                attempts: 1,
            },
        );
        ctx.wake(self.cfg.syn_retry, SynRetry { key });
    }

    fn retry_syn(&mut self, ctx: &mut Ctx<'_>, key: FourTuple) {
        let give_up = {
            let Some(p) = self.active.get_mut(&key) else {
                return; // established or failed meanwhile
            };
            p.attempts += 1;
            p.attempts > self.cfg.syn_attempts
        };
        if give_up {
            let p = self.active.remove(&key).unwrap();
            ctx.send(
                p.reply_to,
                Duration::ZERO,
                AppReply::ConnectFailed { opaque: p.opaque },
            );
            return;
        }
        let p = &self.active[&key];
        let Some(&dst_mac) = self.arp.get(&p.remote_ip) else {
            return;
        };
        let mut spec = self.handshake_spec(dst_mac, p.remote_ip, p.local_port, p.remote_port);
        spec.seq = SeqNum(p.iss);
        spec.flags = TcpFlags::SYN;
        let frame = spec.emit_zeroed();
        self.send_frame(ctx, frame);
        ctx.wake(self.cfg.syn_retry, SynRetry { key });
    }

    /// Install an established connection into the data path (§D).
    #[allow(clippy::too_many_arguments)]
    fn install(
        &mut self,
        ctx: &mut Ctx<'_>,
        peer_ip: Ip4,
        peer_port: u16,
        local_port: u16,
        iss: u32,
        peer_iss: u32,
        remote_win: u16,
        app_ctx: u16,
        queue: SharedCtxQueue,
    ) -> (u32, SharedBuf, SharedBuf) {
        let peer_mac = *self.arp.get(&peer_ip).expect("peer in arp table");
        let cfg = self.nic.cfg.clone();
        let tuple_rx = FourTuple::new(peer_ip, peer_port, self.local_ip(), local_port);
        let group = (tuple_rx.flow_hash() as usize) % cfg.n_groups;
        let rx_buf = shared_buf(cfg.rx_buf_size);
        let tx_buf = shared_buf(cfg.tx_buf_size);

        let proto = ProtoState {
            seq: SeqNum(iss.wrapping_add(1)),
            ack: SeqNum(peer_iss.wrapping_add(1)),
            rx_avail: cfg.rx_buf_size,
            remote_win,
            ..Default::default()
        };
        let entry = ConnEntry {
            pre: PreState {
                peer_mac,
                peer_ip,
                local_port,
                remote_port: peer_port,
                flow_group: group as u8,
            },
            proto,
            post: PostState {
                context: app_ctx,
                rx_size: cfg.rx_buf_size,
                tx_size: cfg.tx_buf_size,
                ..Default::default()
            },
            tuple_rx,
            tx_buf: tx_buf.clone(),
            rx_buf: rx_buf.clone(),
            ctxq: queue,
            active: true,
        };
        let conn = self.nic.table.borrow_mut().install(entry);
        self.nic.db.borrow_mut().insert(tuple_rx, conn);
        self.mmio(ctx, SchedCtl::Register { conn, group });

        // per-flow congestion control + RTO monitoring
        let line = self.nic.cfg.platform.mac_bps / 8;
        let algo: Option<Box<dyn CongestionControl>> = match self.cfg.cc {
            CcAlgo::Dctcp => Some(Box::new(Dctcp::new(line))),
            CcAlgo::Timely => Some(Box::new(Timely::new(line))),
            CcAlgo::None => None,
        };
        if self.cc.len() <= conn as usize {
            self.cc.resize_with(conn as usize + 1, || None);
            self.rto_fired_since.resize(conn as usize + 1, false);
        }
        self.cc[conn as usize] = algo;
        self.rto_fired_since[conn as usize] = false;
        self.rto.register(conn);
        self.established += 1;
        self.ensure_kernel_q(ctx);
        self.arm_cc(ctx);
        (conn, rx_buf, tx_buf)
    }

    fn send_rst(&mut self, ctx: &mut Ctx<'_>, view: &SegmentView) {
        self.resets_sent += 1;
        let mut spec = self.handshake_spec(view.src_mac, view.src_ip, view.dst_port, view.src_port);
        spec.options = TcpOptions::default();
        spec.seq = view.ack;
        spec.ack = view.seq_end();
        spec.flags = TcpFlags::RST | TcpFlags::ACK;
        let frame = spec.emit_zeroed();
        self.send_frame(ctx, frame);
    }

    fn on_redirect(&mut self, ctx: &mut Ctx<'_>, frame: Vec<u8>) {
        self.redirected_frames += 1;
        let Ok(view) = SegmentView::parse(&frame, true) else {
            return;
        };
        let tuple = view.four_tuple();
        let flags = view.flags;

        if flags.rst() {
            // peer reset: tear down any matching connection or pending open
            if let Some(p) = self.active.remove(&tuple) {
                ctx.send(
                    p.reply_to,
                    Duration::ZERO,
                    AppReply::ConnectFailed { opaque: p.opaque },
                );
            }
            self.passive.remove(&tuple);
            let conn = self.nic.db.borrow().get(&tuple);
            if let Some(conn) = conn {
                self.teardown_now(ctx, conn);
            }
            return;
        }

        if flags.syn() && !flags.ack() {
            // passive open
            if !self.listeners.contains_key(&view.dst_port) {
                self.send_rst(ctx, &view);
                return;
            }
            let iss = self.iss(ctx);
            self.passive.insert(
                tuple,
                PendingPassive {
                    iss,
                    listen_port: view.dst_port,
                },
            );
            let mut spec =
                self.handshake_spec(view.src_mac, view.src_ip, view.dst_port, view.src_port);
            spec.seq = SeqNum(iss);
            spec.ack = view.seq + 1;
            spec.flags = TcpFlags::SYN | TcpFlags::ACK;
            let frame = spec.emit_zeroed();
            self.send_frame(ctx, frame);
            return;
        }

        if flags.syn() && flags.ack() {
            // SYN-ACK for an active open
            let Some(p) = self.active.remove(&tuple) else {
                self.send_rst(ctx, &view);
                return;
            };
            // final handshake ACK
            let mut spec =
                self.handshake_spec(view.src_mac, p.remote_ip, p.local_port, p.remote_port);
            spec.options = TcpOptions::default();
            spec.seq = SeqNum(p.iss.wrapping_add(1));
            spec.ack = view.seq + 1;
            spec.flags = TcpFlags::ACK;
            let ackframe = spec.emit_zeroed();
            self.send_frame(ctx, ackframe);
            let (conn, rx_buf, tx_buf) = self.install(
                ctx,
                p.remote_ip,
                p.remote_port,
                p.local_port,
                p.iss,
                view.seq.0,
                view.window,
                p.ctx,
                p.queue.clone(),
            );
            ctx.send(
                p.reply_to,
                Duration::ZERO,
                AppReply::Connected {
                    conn,
                    opaque: p.opaque,
                    rx_buf,
                    tx_buf,
                },
            );
            return;
        }

        if flags.ack() {
            // final ACK of a passive handshake (redirected as unknown flow)
            if let Some(pp) = self.passive.remove(&tuple) {
                let listener = self
                    .listeners
                    .get(&pp.listen_port)
                    .expect("listener for pending passive");
                let (l_ctx, l_queue, l_reply) =
                    (listener.ctx, listener.queue.clone(), listener.reply_to);
                let (conn, rx_buf, tx_buf) = self.install(
                    ctx,
                    view.src_ip,
                    view.src_port,
                    view.dst_port,
                    pp.iss,
                    view.seq.0.wrapping_sub(1),
                    view.window,
                    l_ctx,
                    l_queue,
                );
                ctx.send(
                    l_reply,
                    Duration::ZERO,
                    AppReply::Accepted {
                        conn,
                        port: pp.listen_port,
                        peer: (view.src_ip, view.src_port),
                        rx_buf,
                        tx_buf,
                    },
                );
                // data may have ridden on the ACK (or raced it): replay the
                // frame through the NIC so the data-path processes it.
                if view.payload_len > 0 || view.flags.fin() {
                    ctx.send(self.nic.mac, self.inject_latency(), Frame(frame));
                }
            }
            // otherwise: stray segment for an unknown connection — ignore.
        }
    }

    // ---- CC / RTO loop ------------------------------------------------------

    fn cc_iteration(&mut self, ctx: &mut Ctx<'_>) {
        let conns: Vec<u32> = self.nic.table.borrow().iter().map(|(c, _)| c).collect();
        if conns.is_empty() {
            self.cc_armed = false;
            return;
        }
        let mut to_teardown = Vec::new();
        for conn in conns {
            let mut table = self.nic.table.borrow_mut();
            let Some(entry) = table.get_mut(conn) else {
                continue;
            };
            let stats_raw = (
                entry.post.cnt_ackb,
                entry.post.cnt_ecnb,
                entry.post.cnt_fretx,
                entry.post.rtt_est,
            );
            entry.post.cnt_ackb = 0;
            entry.post.cnt_ecnb = 0;
            entry.post.cnt_fretx = 0;
            let snd_una = entry.proto.snd_una();
            let in_flight = entry.proto.tx_sent;
            let closed = entry.proto.fin_received
                && entry.proto.fin_sent
                && !entry.proto.fin_pending
                && entry.proto.tx_sent == 0;
            drop(table);

            if closed {
                to_teardown.push(conn);
                continue;
            }

            // RTO monitoring
            let fired = self
                .rto
                .observe(conn, snd_una, in_flight, ctx.now(), stats_raw.3.max(20));
            if fired {
                ctx.stats.bump("ctrl.rto_fired", 1);
                if self.rto_fired_since.len() > conn as usize {
                    self.rto_fired_since[conn as usize] = true;
                }
                let _ = self
                    .kernel_q
                    .borrow_mut()
                    .to_nic
                    .push(AppToNic::Retransmit { conn });
                ctx.send(
                    self.nic.ctxq,
                    self.nic.cfg.platform.pcie.mmio_latency,
                    Doorbell { ctx: CTRL_CTX },
                );
            }

            // congestion control
            if let Some(Some(algo)) = self.cc.get_mut(conn as usize) {
                let stats = FlowStats {
                    acked_bytes: stats_raw.0,
                    ecn_bytes: stats_raw.1,
                    fast_retx: stats_raw.2,
                    rtt_us: stats_raw.3,
                    rto_fired: std::mem::take(&mut self.rto_fired_since[conn as usize]),
                };
                let old = algo.rate();
                let new = algo.update(&stats);
                if new != old {
                    let line = self.nic.cfg.platform.mac_bps / 8;
                    self.mmio(
                        ctx,
                        SchedCtl::SetRate {
                            conn,
                            interval_ps_per_byte: rate_to_interval(new, line),
                        },
                    );
                }
            }
        }
        for conn in to_teardown {
            self.teardown_now(ctx, conn);
        }
        ctx.wake(self.cfg.cc_interval, Tick);
    }

    fn teardown_now(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        let mut table = self.nic.table.borrow_mut();
        if let Some(entry) = table.remove(conn) {
            self.nic.db.borrow_mut().remove(&entry.tuple_rx);
        }
        drop(table);
        self.mmio(ctx, SchedCtl::Unregister { conn });
        self.rto.unregister(conn);
        if let Some(slot) = self.cc.get_mut(conn as usize) {
            *slot = None;
        }
        ctx.stats.bump("ctrl.teardown", 1);
    }
}

impl Node for ControlPlane {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match try_cast::<Redirect>(msg) {
            Ok(r) => {
                self.on_redirect(ctx, r.0 .0);
                return;
            }
            Err(m) => m,
        };
        let msg = match try_cast::<Tick>(msg) {
            Ok(_) => {
                self.cc_iteration(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match try_cast::<SynRetry>(msg) {
            Ok(r) => {
                self.retry_syn(ctx, r.key);
                return;
            }
            Err(m) => m,
        };
        let req = flextoe_sim::cast::<AppRequest>(msg);
        match *req {
            AppRequest::Listen {
                port,
                ctx: app_ctx,
                ref queue,
                reply_to,
            } => {
                self.listeners.insert(
                    port,
                    Listener {
                        ctx: app_ctx,
                        queue: queue.clone(),
                        reply_to,
                    },
                );
            }
            AppRequest::Connect {
                remote_ip,
                remote_port,
                ctx: app_ctx,
                ref queue,
                reply_to,
                opaque,
            } => {
                self.start_connect(
                    ctx,
                    remote_ip,
                    remote_port,
                    app_ctx,
                    queue.clone(),
                    reply_to,
                    opaque,
                );
            }
            AppRequest::Teardown { conn } => self.teardown_now(ctx, conn),
        }
    }

    fn name(&self) -> String {
        "control-plane".to_string()
    }
}
