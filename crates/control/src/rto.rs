//! Retransmission-timeout monitoring (§D: "We also monitor retransmission
//! timeouts in the control iteration").
//!
//! The control plane watches each flow's `snd_una` progress; when a flow
//! has unacknowledged data and no progress for an RTO, it injects an HC
//! retransmit descriptor (§3.1.1: "Retransmissions in response to timeouts
//! are triggered by the control-plane"). RTO = max(min_rto, 4 × sRTT) with
//! exponential backoff, as in TAS.

use flextoe_sim::{Duration, Time};
use flextoe_wire::SeqNum;

/// Outcome of one control-loop RTO observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtoVerdict {
    /// Nothing to do (timer armed/reset/idle).
    Idle,
    /// RTO expired: inject a retransmit and back off.
    Fire,
    /// The flow has exhausted its retry budget (`give_up_after`
    /// consecutive RTOs with zero progress): abort the connection instead
    /// of retrying forever. Backoff used to saturate at shift 6 and
    /// retransmit a blackholed flow indefinitely.
    GiveUp,
}

#[derive(Clone, Copy, Debug)]
struct FlowRto {
    last_una: SeqNum,
    /// When `last_una` last advanced (or data first appeared).
    since: Time,
    backoff: u32,
    armed: bool,
}

pub struct RtoTracker {
    flows: Vec<Option<FlowRto>>,
    pub min_rto: Duration,
    pub max_rto: Duration,
    /// Consecutive no-progress RTO firings a flow is allowed before
    /// [`RtoVerdict::GiveUp`] (`None` = legacy retry-forever).
    pub give_up_after: Option<u32>,
    pub fired: u64,
    pub gave_up: u64,
}

impl RtoTracker {
    pub fn new(min_rto: Duration) -> RtoTracker {
        RtoTracker {
            flows: Vec::new(),
            min_rto,
            max_rto: Duration::from_ms(200),
            give_up_after: None,
            fired: 0,
            gave_up: 0,
        }
    }

    pub fn register(&mut self, conn: u32) {
        let idx = conn as usize;
        if idx >= self.flows.len() {
            self.flows.resize(idx + 1, None);
        }
        self.flows[idx] = Some(FlowRto {
            last_una: SeqNum(0),
            since: Time::ZERO,
            backoff: 0,
            armed: false,
        });
    }

    pub fn unregister(&mut self, conn: u32) {
        if let Some(slot) = self.flows.get_mut(conn as usize) {
            *slot = None;
        }
    }

    /// One control-loop observation of a flow. [`RtoVerdict::Fire`] means
    /// the caller injects a retransmit and halves the rate;
    /// [`RtoVerdict::GiveUp`] means the retry budget is spent and the
    /// caller must abort the connection.
    pub fn observe(
        &mut self,
        conn: u32,
        snd_una: SeqNum,
        in_flight: u32,
        now: Time,
        srtt_us: u32,
    ) -> RtoVerdict {
        let Some(Some(f)) = self.flows.get_mut(conn as usize) else {
            return RtoVerdict::Idle;
        };
        if in_flight == 0 {
            f.armed = false;
            f.backoff = 0;
            f.last_una = snd_una;
            return RtoVerdict::Idle;
        }
        if !f.armed || snd_una != f.last_una {
            // progress (or newly armed): reset the timer
            let progressed = f.armed && snd_una != f.last_una;
            f.armed = true;
            f.last_una = snd_una;
            f.since = now;
            if progressed {
                f.backoff = 0;
            }
            return RtoVerdict::Idle;
        }
        let base = Duration::from_us(4 * srtt_us.max(1) as u64).max(self.min_rto);
        let rto = (base * (1u64 << f.backoff.min(6))).min(self.max_rto);
        if now.saturating_since(f.since) >= rto {
            if self.give_up_after.is_some_and(|limit| f.backoff >= limit) {
                self.gave_up += 1;
                return RtoVerdict::GiveUp;
            }
            f.since = now;
            f.backoff += 1;
            self.fired += 1;
            return RtoVerdict::Fire;
        }
        RtoVerdict::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use RtoVerdict::{Fire, Idle};

    const MIN: Duration = Duration::from_ms(1);

    #[test]
    fn fires_after_stall() {
        let mut t = RtoTracker::new(MIN);
        t.register(1);
        let una = SeqNum(1000);
        assert_eq!(t.observe(1, una, 500, Time::from_us(0), 100), Idle); // arms
        assert_eq!(t.observe(1, una, 500, Time::from_us(500), 100), Idle);
        assert_eq!(t.observe(1, una, 500, Time::from_us(1100), 100), Fire);
        assert_eq!(t.fired, 1);
    }

    #[test]
    fn progress_resets_timer() {
        let mut t = RtoTracker::new(MIN);
        t.register(1);
        t.observe(1, SeqNum(1000), 500, Time::from_us(0), 100);
        // ack progress at 900us
        assert_eq!(
            t.observe(1, SeqNum(1500), 500, Time::from_us(900), 100),
            Idle
        );
        // 0.95ms after progress (not 1.85ms after arming): no fire yet
        assert_eq!(
            t.observe(1, SeqNum(1500), 500, Time::from_us(1850), 100),
            Idle
        );
        // 1.05ms after progress: fires
        assert_eq!(
            t.observe(1, SeqNum(1500), 500, Time::from_us(1950), 100),
            Fire
        );
    }

    #[test]
    fn backoff_doubles() {
        let mut t = RtoTracker::new(MIN);
        t.register(1);
        let una = SeqNum(0);
        t.observe(1, una, 100, Time::from_us(0), 10);
        assert_eq!(t.observe(1, una, 100, Time::from_ms(1), 10), Fire); // first RTO at 1ms
                                                                        // second RTO needs 2ms more
        assert_eq!(t.observe(1, una, 100, Time::from_us(2500), 10), Idle);
        assert_eq!(t.observe(1, una, 100, Time::from_ms(3), 10), Fire);
        // third needs 4ms
        assert_eq!(t.observe(1, una, 100, Time::from_ms(6), 10), Idle);
        assert_eq!(t.observe(1, una, 100, Time::from_ms(7), 10), Fire);
    }

    #[test]
    fn empty_flight_disarms_and_clears_backoff() {
        let mut t = RtoTracker::new(MIN);
        t.register(1);
        t.observe(1, SeqNum(0), 100, Time::from_us(0), 10);
        assert_eq!(t.observe(1, SeqNum(0), 100, Time::from_ms(1), 10), Fire);
        assert_eq!(t.observe(1, SeqNum(100), 0, Time::from_ms(2), 10), Idle); // drained
                                                                              // re-armed fresh: base RTO again
        assert_eq!(t.observe(1, SeqNum(100), 50, Time::from_ms(3), 10), Idle);
        assert_eq!(t.observe(1, SeqNum(100), 50, Time::from_us(3900), 10), Idle);
        assert_eq!(t.observe(1, SeqNum(100), 50, Time::from_us(4100), 10), Fire);
    }

    #[test]
    fn srtt_scales_rto() {
        let mut t = RtoTracker::new(MIN);
        t.register(1);
        t.observe(1, SeqNum(0), 100, Time::ZERO, 1000); // srtt 1ms -> rto 4ms
        assert_eq!(t.observe(1, SeqNum(0), 100, Time::from_ms(2), 1000), Idle);
        assert_eq!(t.observe(1, SeqNum(0), 100, Time::from_ms(4), 1000), Fire);
    }

    #[test]
    fn unregistered_never_fires() {
        let mut t = RtoTracker::new(MIN);
        assert_eq!(t.observe(7, SeqNum(0), 100, Time::from_ms(100), 10), Idle);
        t.register(7);
        t.unregister(7);
        assert_eq!(t.observe(7, SeqNum(0), 100, Time::from_ms(100), 10), Idle);
    }

    /// Regression: a blackholed flow (100% loss, `snd_una` never moves)
    /// used to saturate at backoff shift 6 and retransmit forever. With a
    /// give-up threshold it fires exactly `give_up_after` times and then
    /// reports `GiveUp` so the caller aborts the connection.
    #[test]
    fn blackholed_flow_gives_up_after_budget() {
        let mut t = RtoTracker::new(MIN);
        t.give_up_after = Some(3);
        t.register(1);
        let una = SeqNum(0);
        t.observe(1, una, 100, Time::ZERO, 10); // arms
        let mut fires = 0;
        let mut now = Time::ZERO;
        let verdict = loop {
            now += Duration::from_ms(300); // > max_rto: always expired
            match t.observe(1, una, 100, now, 10) {
                Fire => fires += 1,
                v => break v,
            }
            assert!(fires < 100, "must give up eventually");
        };
        assert_eq!(verdict, RtoVerdict::GiveUp);
        assert_eq!(fires, 3, "retry budget honored exactly");
        assert_eq!(t.gave_up, 1);
        // progress after the verdict (e.g. the path healed right at the
        // boundary) re-opens the budget
        t.observe(1, SeqNum(500), 100, now + Duration::from_ms(1), 10);
        assert_eq!(
            t.observe(1, SeqNum(500), 100, now + Duration::from_ms(301), 10),
            Fire
        );
    }

    /// `give_up_after: None` preserves the legacy retry-forever behavior.
    #[test]
    fn no_threshold_retries_forever() {
        let mut t = RtoTracker::new(MIN);
        t.register(1);
        let una = SeqNum(0);
        t.observe(1, una, 100, Time::ZERO, 10);
        let mut now = Time::ZERO;
        for _ in 0..50 {
            now += Duration::from_ms(300);
            assert_eq!(t.observe(1, una, 100, now, 10), Fire);
        }
        assert_eq!(t.gave_up, 0);
    }
}
