//! Retransmission-timeout monitoring (§D: "We also monitor retransmission
//! timeouts in the control iteration").
//!
//! The control plane watches each flow's `snd_una` progress; when a flow
//! has unacknowledged data and no progress for an RTO, it injects an HC
//! retransmit descriptor (§3.1.1: "Retransmissions in response to timeouts
//! are triggered by the control-plane"). RTO = max(min_rto, 4 × sRTT) with
//! exponential backoff, as in TAS.

use flextoe_sim::{Duration, Time};
use flextoe_wire::SeqNum;

#[derive(Clone, Copy, Debug)]
struct FlowRto {
    last_una: SeqNum,
    /// When `last_una` last advanced (or data first appeared).
    since: Time,
    backoff: u32,
    armed: bool,
}

pub struct RtoTracker {
    flows: Vec<Option<FlowRto>>,
    pub min_rto: Duration,
    pub max_rto: Duration,
    pub fired: u64,
}

impl RtoTracker {
    pub fn new(min_rto: Duration) -> RtoTracker {
        RtoTracker {
            flows: Vec::new(),
            min_rto,
            max_rto: Duration::from_ms(200),
            fired: 0,
        }
    }

    pub fn register(&mut self, conn: u32) {
        let idx = conn as usize;
        if idx >= self.flows.len() {
            self.flows.resize(idx + 1, None);
        }
        self.flows[idx] = Some(FlowRto {
            last_una: SeqNum(0),
            since: Time::ZERO,
            backoff: 0,
            armed: false,
        });
    }

    pub fn unregister(&mut self, conn: u32) {
        if let Some(slot) = self.flows.get_mut(conn as usize) {
            *slot = None;
        }
    }

    /// One control-loop observation of a flow. Returns `true` when an RTO
    /// fires (caller injects the retransmit and halves the rate).
    pub fn observe(
        &mut self,
        conn: u32,
        snd_una: SeqNum,
        in_flight: u32,
        now: Time,
        srtt_us: u32,
    ) -> bool {
        let Some(Some(f)) = self.flows.get_mut(conn as usize) else {
            return false;
        };
        if in_flight == 0 {
            f.armed = false;
            f.backoff = 0;
            f.last_una = snd_una;
            return false;
        }
        if !f.armed || snd_una != f.last_una {
            // progress (or newly armed): reset the timer
            let progressed = f.armed && snd_una != f.last_una;
            f.armed = true;
            f.last_una = snd_una;
            f.since = now;
            if progressed {
                f.backoff = 0;
            }
            return false;
        }
        let base = Duration::from_us(4 * srtt_us.max(1) as u64).max(self.min_rto);
        let rto = (base * (1u64 << f.backoff.min(6))).min(self.max_rto);
        if now.saturating_since(f.since) >= rto {
            f.since = now;
            f.backoff += 1;
            self.fired += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN: Duration = Duration::from_ms(1);

    #[test]
    fn fires_after_stall() {
        let mut t = RtoTracker::new(MIN);
        t.register(1);
        let una = SeqNum(1000);
        assert!(!t.observe(1, una, 500, Time::from_us(0), 100)); // arms
        assert!(!t.observe(1, una, 500, Time::from_us(500), 100));
        assert!(t.observe(1, una, 500, Time::from_us(1100), 100));
        assert_eq!(t.fired, 1);
    }

    #[test]
    fn progress_resets_timer() {
        let mut t = RtoTracker::new(MIN);
        t.register(1);
        t.observe(1, SeqNum(1000), 500, Time::from_us(0), 100);
        // ack progress at 900us
        assert!(!t.observe(1, SeqNum(1500), 500, Time::from_us(900), 100));
        // 0.95ms after progress (not 1.85ms after arming): no fire yet
        assert!(!t.observe(1, SeqNum(1500), 500, Time::from_us(1850), 100));
        // 1.05ms after progress: fires
        assert!(t.observe(1, SeqNum(1500), 500, Time::from_us(1950), 100));
    }

    #[test]
    fn backoff_doubles() {
        let mut t = RtoTracker::new(MIN);
        t.register(1);
        let una = SeqNum(0);
        t.observe(1, una, 100, Time::from_us(0), 10);
        assert!(t.observe(1, una, 100, Time::from_ms(1), 10)); // first RTO at 1ms
                                                               // second RTO needs 2ms more
        assert!(!t.observe(1, una, 100, Time::from_us(2500), 10));
        assert!(t.observe(1, una, 100, Time::from_ms(3), 10));
        // third needs 4ms
        assert!(!t.observe(1, una, 100, Time::from_ms(6), 10));
        assert!(t.observe(1, una, 100, Time::from_ms(7), 10));
    }

    #[test]
    fn empty_flight_disarms_and_clears_backoff() {
        let mut t = RtoTracker::new(MIN);
        t.register(1);
        t.observe(1, SeqNum(0), 100, Time::from_us(0), 10);
        assert!(t.observe(1, SeqNum(0), 100, Time::from_ms(1), 10));
        assert!(!t.observe(1, SeqNum(100), 0, Time::from_ms(2), 10)); // drained
                                                                      // re-armed fresh: base RTO again
        assert!(!t.observe(1, SeqNum(100), 50, Time::from_ms(3), 10));
        assert!(!t.observe(1, SeqNum(100), 50, Time::from_us(3900), 10));
        assert!(t.observe(1, SeqNum(100), 50, Time::from_us(4100), 10));
    }

    #[test]
    fn srtt_scales_rto() {
        let mut t = RtoTracker::new(MIN);
        t.register(1);
        t.observe(1, SeqNum(0), 100, Time::ZERO, 1000); // srtt 1ms -> rto 4ms
        assert!(!t.observe(1, SeqNum(0), 100, Time::from_ms(2), 1000));
        assert!(t.observe(1, SeqNum(0), 100, Time::from_ms(4), 1000));
    }

    #[test]
    fn unregistered_never_fires() {
        let mut t = RtoTracker::new(MIN);
        assert!(!t.observe(7, SeqNum(0), 100, Time::from_ms(100), 10));
        t.register(7);
        t.unregister(7);
        assert!(!t.observe(7, SeqNum(0), 100, Time::from_ms(100), 10));
    }
}
