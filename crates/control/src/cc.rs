//! Congestion-control framework (§D) — now the `flextoe-ccp` subsystem.
//!
//! The algorithms, the `Algorithm` runtime trait, the datapath fold
//! programs, and the batched report layer live in `flextoe-ccp`; this
//! module re-exports the names the control plane's callers historically
//! imported from `flextoe_control::cc`.

pub use flextoe_ccp::{
    rate_to_interval, Algorithm, Algorithm as CongestionControl, Cubic, Dctcp, FlowStats,
    GenericCongAvoid, Registry, Reno, Timely, Urgent,
};
