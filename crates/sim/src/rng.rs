//! Deterministic pseudo-random number generation.
//!
//! The engine owns a single seeded xoshiro256** generator so that every
//! experiment is exactly reproducible from its seed. We implement the
//! generator ourselves (~40 lines) rather than pulling `rand` into the
//! simulation core; workload crates that want `rand` distributions seed
//! their own generators from [`Rng::fork`].

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is invalid for xoshiro; splitmix64 of any seed
        // cannot produce four zeros, but be defensive anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Rng { s }
    }

    /// Derive an independent generator (for per-node or per-flow streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift (unbiased enough
    /// for simulation workloads; bound 0 returns 0).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi]` inclusive.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed sample with the given mean (for Poisson
    /// open-loop arrival processes).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty());
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let mean_target = 25.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean_target)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - mean_target).abs() / mean_target < 0.02,
            "mean {mean}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_independent() {
        let mut a = Rng::new(100);
        let mut c = a.fork();
        // forked stream differs from parent continuation
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
