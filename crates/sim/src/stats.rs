//! Named counters and histograms shared by all nodes of a simulation.
//!
//! Baseline-stack cost accounting (Table 1/6), drop counts, tracepoints
//! (Table 2's 48-tracepoint profiling build) all land here. Counters are
//! created on first use; lookups are by string key, which is fine because
//! hot paths cache [`CounterHandle`]s.

use std::collections::HashMap;

use crate::hist::Histogram;

/// Index into the counter table; cheap to copy into hot paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CounterHandle(usize);

/// Index into the histogram table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HistHandle(usize);

#[derive(Default)]
pub struct Stats {
    counter_names: HashMap<String, usize>,
    counters: Vec<u64>,
    hist_names: HashMap<String, usize>,
    hists: Vec<Histogram>,
}

impl Stats {
    pub fn new() -> Stats {
        Stats::default()
    }

    pub fn counter(&mut self, name: &str) -> CounterHandle {
        if let Some(&i) = self.counter_names.get(name) {
            return CounterHandle(i);
        }
        let i = self.counters.len();
        self.counters.push(0);
        self.counter_names.insert(name.to_string(), i);
        CounterHandle(i)
    }

    #[inline]
    pub fn add(&mut self, h: CounterHandle, v: u64) {
        self.counters[h.0] += v;
    }

    #[inline]
    pub fn inc(&mut self, h: CounterHandle) {
        self.add(h, 1);
    }

    /// Convenience: bump a counter by name (cold paths only).
    pub fn bump(&mut self, name: &str, v: u64) {
        let h = self.counter(name);
        self.add(h, v);
    }

    pub fn get(&self, h: CounterHandle) -> u64 {
        self.counters[h.0]
    }

    pub fn get_named(&self, name: &str) -> u64 {
        self.counter_names
            .get(name)
            .map(|&i| self.counters[i])
            .unwrap_or(0)
    }

    pub fn set(&mut self, h: CounterHandle, v: u64) {
        self.counters[h.0] = v;
    }

    pub fn hist(&mut self, name: &str) -> HistHandle {
        if let Some(&i) = self.hist_names.get(name) {
            return HistHandle(i);
        }
        let i = self.hists.len();
        self.hists.push(Histogram::new());
        self.hist_names.insert(name.to_string(), i);
        HistHandle(i)
    }

    #[inline]
    pub fn record(&mut self, h: HistHandle, v: u64) {
        self.hists[h.0].record(v);
    }

    pub fn hist_ref(&self, h: HistHandle) -> &Histogram {
        &self.hists[h.0]
    }

    pub fn hist_named(&self, name: &str) -> Option<&Histogram> {
        self.hist_names.get(name).map(|&i| &self.hists[i])
    }

    /// All counters sorted by name, for experiment reports.
    pub fn dump_counters(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .counter_names
            .iter()
            .map(|(k, &i)| (k.clone(), self.counters[i]))
            .collect();
        v.sort();
        v
    }

    /// Name-sorted JSON-object snapshot of every counter whose name
    /// starts with `prefix` (`""` exports everything). Keys are emitted
    /// in sorted order so the output is deterministic and diffable —
    /// experiment reports embed it verbatim.
    pub fn export_json(&self, prefix: &str) -> String {
        let body: Vec<String> = self
            .dump_counters()
            .into_iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefixed(&self, prefix: &str) -> u64 {
        self.counter_names
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &i)| self.counters[i])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_identity_and_accumulation() {
        let mut s = Stats::new();
        let a = s.counter("rx.pkts");
        let a2 = s.counter("rx.pkts");
        assert_eq!(a, a2);
        s.inc(a);
        s.add(a2, 9);
        assert_eq!(s.get(a), 10);
        assert_eq!(s.get_named("rx.pkts"), 10);
        assert_eq!(s.get_named("missing"), 0);
    }

    #[test]
    fn hist_records() {
        let mut s = Stats::new();
        let h = s.hist("rtt");
        for v in [10u64, 20, 30] {
            s.record(h, v);
        }
        assert_eq!(s.hist_ref(h).count(), 3);
        assert!(s.hist_named("rtt").is_some());
        assert!(s.hist_named("nope").is_none());
    }

    #[test]
    fn export_json_sorted_and_filtered() {
        let mut s = Stats::new();
        s.bump("z.last", 1);
        s.bump("a.first", 2);
        assert_eq!(s.export_json(""), "{\"a.first\": 2, \"z.last\": 1}");
        assert_eq!(s.export_json("a."), "{\"a.first\": 2}");
        assert_eq!(s.export_json("nope"), "{}");
    }

    #[test]
    fn dump_sorted_and_prefix_sum() {
        let mut s = Stats::new();
        s.bump("z.last", 1);
        s.bump("a.first", 2);
        s.bump("a.second", 3);
        let d = s.dump_counters();
        assert_eq!(d[0].0, "a.first");
        assert_eq!(d[2].0, "z.last");
        assert_eq!(s.sum_prefixed("a."), 5);
        assert_eq!(s.sum_prefixed("z."), 1);
    }
}
