//! Bounded FIFO with occupancy statistics.
//!
//! Inter-stage rings (CLS rings, IMEM/EMEM work queues) and switch port
//! queues are all bounded; overflow behaviour (drop / backpressure) is a
//! policy of the owner. This wrapper counts drops and tracks high-water
//! occupancy — the paper's Table 2 profiling build traces "inter-module
//! queue occupancies".

use std::collections::VecDeque;

#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    pub enqueued: u64,
    pub dropped: u64,
    pub high_water: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        BoundedQueue {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            enqueued: 0,
            dropped: 0,
            high_water: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
    pub fn len(&self) -> usize {
        self.items.len()
    }
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Enqueue; on overflow the item is rejected and returned.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.dropped += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.enqueued += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Enqueue dropping on overflow (tail-drop); returns whether accepted.
    pub fn push_or_drop(&mut self, item: T) -> bool {
        self.push(item).is_ok()
    }

    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    pub fn drain_all(&mut self) -> impl Iterator<Item = T> + '_ {
        self.items.drain(..)
    }

    /// Drain up to `n` items from the front in one call — batch consumers
    /// (event-wheel bucket refills, descriptor fetch batching) avoid the
    /// per-item `pop` loop.
    pub fn drain_batch(&mut self, n: usize) -> impl Iterator<Item = T> + '_ {
        let take = n.min(self.items.len());
        self.items.drain(..take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            assert!(q.push(i).is_ok());
        }
        assert!(q.is_full());
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.free(), 2);
    }

    #[test]
    fn overflow_rejects_and_counts() {
        let mut q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3));
        assert!(!q.push_or_drop(4));
        assert_eq!(q.dropped, 2);
        assert_eq!(q.enqueued, 2);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = BoundedQueue::new(10);
        for i in 0..7 {
            q.push(i).unwrap();
        }
        for _ in 0..5 {
            q.pop();
        }
        q.push(1).unwrap();
        assert_eq!(q.high_water, 7);
    }

    #[test]
    fn drain_batch_takes_front_and_caps_at_len() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let first: Vec<_> = q.drain_batch(2).collect();
        assert_eq!(first, vec![0, 1]);
        let rest: Vec<_> = q.drain_batch(99).collect();
        assert_eq!(rest, vec![2, 3, 4]);
        assert!(q.is_empty());
        // high_water unaffected by draining
        assert_eq!(q.high_water, 5);
    }

    #[test]
    fn high_water_tracked_on_every_push_path() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        assert_eq!(q.high_water, 1);
        assert!(q.push_or_drop(2));
        assert_eq!(q.high_water, 2);
        q.pop();
        q.push(3).unwrap();
        assert_eq!(q.high_water, 2, "peak, not current occupancy");
    }

    #[test]
    fn peek_and_drain() {
        let mut q = BoundedQueue::new(3);
        q.push("a").unwrap();
        q.push("b").unwrap();
        assert_eq!(q.peek(), Some(&"a"));
        let all: Vec<_> = q.drain_all().collect();
        assert_eq!(all, vec!["a", "b"]);
        assert!(q.is_empty());
    }
}
