//! Log-bucketed latency histograms (HDR-histogram style).
//!
//! The paper reports medians and deep tails (99p, 99.99p — Fig. 9, Fig. 11,
//! Table 3, Table 4). An HDR-style histogram records values with bounded
//! relative error at O(1) cost, which keeps multi-million-sample experiment
//! runs cheap while giving accurate tail percentiles.

/// Histogram over `u64` values with ~1.5 % worst-case relative error.
///
/// Layout: values are grouped by magnitude (position of the highest set
/// bit); each magnitude is split into `SUB` linear sub-buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const SUB_BITS: u32 = 6; // 64 sub-buckets per power of two -> <= 1.56% error
const SUB: u64 = 1 << SUB_BITS;
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let mag = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = mag - SUB_BITS;
    let sub = (v >> shift) - SUB; // 0..SUB
    (((mag - SUB_BITS + 1) as u64 * SUB) + sub) as usize
}

/// Midpoint value represented by a bucket index (inverse of `index_of`).
#[inline]
fn value_of(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let block = idx / SUB - 1;
    let sub = idx % SUB;
    let base = (SUB + sub) << block;
    let width = 1u64 << block;
    base + width / 2
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        self.counts[index_of(v)] += n;
        self.total += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.total
    }
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }
    pub fn max(&self) -> u64 {
        self.max
    }
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in [0, 1]. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based nearest-rank (upper) convention: floor(q*n)+1, clamped.
        let rank = ((q * self.total as f64).floor() as u64 + 1).min(self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // clamp to observed extremes for exactness at the edges
                return value_of(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn median(&self) -> u64 {
        self.quantile(0.50)
    }
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
    pub fn p9999(&self) -> u64 {
        self.quantile(0.9999)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// CDF points `(value, cum_fraction)` for plotting (Fig. 9), skipping
    /// empty buckets.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((value_of(i), cum as f64 / self.total as f64));
        }
        out
    }

    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_value_roundtrip_error_bounded() {
        for v in [
            0u64,
            1,
            17,
            63,
            64,
            65,
            127,
            128,
            1000,
            65_535,
            1 << 20,
            u64::MAX / 2,
        ] {
            let mid = value_of(index_of(v));
            let err = (mid as i128 - v as i128).unsigned_abs() as f64;
            let rel = if v == 0 { 0.0 } else { err / v as f64 };
            assert!(rel <= 0.016, "v={v} mid={mid} rel={rel}");
        }
    }

    #[test]
    fn small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB - 1);
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let med = h.median();
        assert!((med as f64 - 5000.0).abs() / 5000.0 < 0.02, "median {med}");
        let p99 = h.p99();
        assert!((p99 as f64 - 9900.0).abs() / 9900.0 < 0.02, "p99 {p99}");
        assert_eq!(h.count(), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.median(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn single_value_all_quantiles() {
        let mut h = Histogram::new();
        h.record(777);
        for q in [0.0, 0.5, 0.99, 0.9999, 1.0] {
            let v = h.quantile(q);
            assert!((v as f64 - 777.0).abs() / 777.0 < 0.016, "q={q} v={v}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..1000u64 {
            a.record(v * 3);
            c.record(v * 3);
        }
        for v in 0..500u64 {
            b.record(v * 7 + 1);
            c.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), c.quantile(q));
        }
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new();
        for v in [5u64, 10, 10, 1000, 50_000] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(12345, 10);
        for _ in 0..10 {
            b.record(12345);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.median(), b.median());
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn tail_quantile_reaches_max_bucket() {
        let mut h = Histogram::new();
        for _ in 0..9999 {
            h.record(100);
        }
        h.record(1_000_000);
        let p9999 = h.p9999();
        assert!(p9999 >= 990_000, "p9999 {p9999}");
    }
}
