//! Simulated time.
//!
//! The simulator counts **picoseconds** in a `u64`, which spans ~213 days of
//! simulated time — far more than any experiment needs — while still being
//! able to represent a single cycle of the fastest clock domain we model
//! (2.35 GHz x86 ≈ 425 ps) without rounding the per-cycle cost to zero.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time, in picoseconds since the start of
/// the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

pub const PS_PER_NS: u64 = 1_000;
pub const PS_PER_US: u64 = 1_000_000;
pub const PS_PER_MS: u64 = 1_000_000_000;
pub const PS_PER_S: u64 = 1_000_000_000_000;

impl Time {
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinitely far" deadline.
    pub const MAX: Time = Time(u64::MAX);

    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * PS_PER_NS)
    }
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * PS_PER_US)
    }
    #[inline]
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * PS_PER_MS)
    }
    #[inline]
    pub fn ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }
    #[inline]
    pub fn as_us(self) -> u64 {
        self.0 / PS_PER_US
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }
    /// Duration since an earlier instant. Panics (in debug) on time reversal.
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(self >= earlier, "time went backwards");
        Duration(self.0 - earlier.0)
    }
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);
    pub const MAX: Duration = Duration(u64::MAX);

    #[inline]
    pub const fn from_ps(ps: u64) -> Duration {
        Duration(ps)
    }
    #[inline]
    pub const fn from_ns(ns: u64) -> Duration {
        Duration(ns * PS_PER_NS)
    }
    #[inline]
    pub const fn from_us(us: u64) -> Duration {
        Duration(us * PS_PER_US)
    }
    #[inline]
    pub const fn from_ms(ms: u64) -> Duration {
        Duration(ms * PS_PER_MS)
    }
    #[inline]
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * PS_PER_S)
    }
    #[inline]
    pub fn from_secs_f64(s: f64) -> Duration {
        Duration((s * PS_PER_S as f64) as u64)
    }
    #[inline]
    pub fn ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }
    #[inline]
    pub fn as_us(self) -> u64 {
        self.0 / PS_PER_US
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}
impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}
impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}
impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}
impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}
impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}
impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        Duration(self.0 - rhs.0)
    }
}
impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}
impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ps(self.0))
    }
}
impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}
impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}
impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}

fn fmt_ps(ps: u64) -> String {
    if ps >= PS_PER_S {
        format!("{:.3}s", ps as f64 / PS_PER_S as f64)
    } else if ps >= PS_PER_MS {
        format!("{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        format!("{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        format!("{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        format!("{}ps", ps)
    }
}

/// A clock domain: converts between cycle counts and simulated time.
///
/// The paper's platforms: FPCs at 800 MHz, the host Xeon at 2 GHz, the x86
/// port's EPYC at 2.35 GHz, BlueField A72 cores at 800 MHz.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Clock {
    hz: u64,
}

impl Clock {
    pub const fn new(hz: u64) -> Clock {
        assert!(hz > 0);
        Clock { hz }
    }
    pub const fn mhz(mhz: u64) -> Clock {
        Clock::new(mhz * 1_000_000)
    }
    pub const fn hz(&self) -> u64 {
        self.hz
    }
    /// Duration of `n` cycles in this domain (rounded up to whole ps).
    #[inline]
    pub fn cycles(&self, n: u64) -> Duration {
        // ps = n * 1e12 / hz, computed with 128-bit intermediate to avoid overflow.
        let ps = (n as u128 * PS_PER_S as u128).div_ceil(self.hz as u128);
        Duration(ps as u64)
    }
    /// Number of whole cycles that fit in `d`.
    #[inline]
    pub fn to_cycles(&self, d: Duration) -> u64 {
        ((d.0 as u128 * self.hz as u128) / PS_PER_S as u128) as u64
    }
    /// Cycles per second expressed per-byte rate conversion helper:
    /// given a rate in bytes/sec, returns cycles/byte (floor, min 1).
    ///
    /// The NFP-4000 has no division unit, so the FlexTOE control plane
    /// converts rates to cycles/byte *on the host* and programs the result
    /// into NIC memory (§3.4). This helper is that host-side computation.
    #[inline]
    pub fn cycles_per_byte(&self, bytes_per_sec: u64) -> u64 {
        if bytes_per_sec == 0 {
            return u64::MAX;
        }
        (self.hz / bytes_per_sec).max(1)
    }
}

/// Well-known clock domains used across the workspace.
pub mod clocks {
    use super::Clock;
    /// NFP-4000 flow-processing core (Agilio CX40).
    pub const FPC_800MHZ: Clock = Clock::mhz(800);
    /// Agilio LX FPCs (the paper's footnote 7 upgrade path).
    pub const FPC_1200MHZ: Clock = Clock::mhz(1200);
    /// Testbed host: Intel Xeon Gold 6138 @ 2 GHz.
    pub const HOST_2GHZ: Clock = Clock::mhz(2000);
    /// x86 port host: AMD EPYC 7452 @ 2.35 GHz.
    pub const X86_2350MHZ: Clock = Clock::mhz(2350);
    /// BlueField MBF1M332A ARM A72 cores.
    pub const BLUEFIELD_800MHZ: Clock = Clock::mhz(800);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::from_us(3) + Duration::from_ns(500);
        assert_eq!(t.ps(), 3_500_000);
        assert_eq!(t.as_ns(), 3_500);
        assert_eq!((t - Time::from_us(3)).as_ns(), 500);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_ms(1), Duration::from_us(1000));
        assert_eq!(Duration::from_secs(1), Duration::from_ms(1000));
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_ms(500));
    }

    #[test]
    fn clock_cycle_conversion() {
        let c = clocks::FPC_800MHZ;
        // 800 MHz -> 1.25 ns/cycle = 1250 ps.
        assert_eq!(c.cycles(1), Duration::from_ps(1250));
        assert_eq!(c.cycles(800_000_000), Duration::from_secs(1));
        assert_eq!(c.to_cycles(Duration::from_ns(125)), 100);
    }

    #[test]
    fn clock_cycles_rounds_up() {
        // 3 cycles at 2.35GHz = 1276.59..ps, must not round to zero-loss 1276.
        let c = clocks::X86_2350MHZ;
        let d = c.cycles(3);
        assert!(d.ps() * c.hz() >= 3 * 1_000_000_000_000 - c.hz());
        assert_eq!(c.cycles(0), Duration::ZERO);
    }

    #[test]
    fn cycles_per_byte_for_scheduler() {
        let c = clocks::FPC_800MHZ;
        // 40 Gbps = 5e9 B/s -> 800e6/5e9 < 1 -> clamped to 1 cycle/byte.
        assert_eq!(c.cycles_per_byte(5_000_000_000), 1);
        // 1 MB/s -> 800 cycles/byte.
        assert_eq!(c.cycles_per_byte(1_000_000), 800);
        assert_eq!(c.cycles_per_byte(0), u64::MAX);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Time::MAX + Duration::from_secs(1), Time::MAX);
        assert_eq!(Time::ZERO - Duration::from_secs(1), Time::ZERO);
        assert_eq!(Duration::MAX + Duration::from_secs(1), Duration::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            format!("{}", Duration::from_ns(1500)),
            "1.500us".to_string()
        );
        assert_eq!(format!("{}", Duration::from_ps(999)), "999ps".to_string());
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000s".to_string());
    }
}
