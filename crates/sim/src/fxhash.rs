//! A deterministic multiply-rotate hasher for hot-path maps.
//!
//! `std::collections::HashMap`'s default `RandomState` costs a full
//! SipHash-1-3 pass per lookup — tens of nanoseconds for the small fixed
//! keys the data-path uses (connection ids, 4-tuples, MAC addresses). The
//! Fx-style combine below (rotate, xor, multiply per word) hashes those in
//! a few cycles, and — unlike `RandomState` — is *seed-free*: the same
//! keys hash identically in every process, so map behavior can never be a
//! hidden source of run-to-run divergence.
//!
//! This is a throughput hasher for trusted keys, not a DoS-resistant one;
//! simulation inputs are never adversarial.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (golden-ratio derived, as used by the Fx family
/// of compiler hashers).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            self.add(u64::from_le_bytes(rest[..8].try_into().unwrap()));
            rest = &rest[8..];
        }
        if rest.len() >= 4 {
            self.add(u64::from(u32::from_le_bytes(rest[..4].try_into().unwrap())));
            rest = &rest[4..];
        }
        for &b in rest {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the deterministic fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the deterministic fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world, this is a key");
        b.write(b"hello world, this is a key");
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn word_sizes_mix() {
        let mut h = FxHasher::default();
        h.write_u32(7);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write_u64(7);
        // different write widths may collide or not; just exercise them
        let _ = h.finish() == a;
        let mut h = FxHasher::default();
        h.write_u8(1);
        h.write_u16(2);
        h.write_usize(3);
        assert_ne!(h.finish(), 0);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }
}
