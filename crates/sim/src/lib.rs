//! # flextoe-sim — deterministic discrete-event simulation engine
//!
//! The substrate for the FlexTOE reproduction. The original system runs on
//! a Netronome Agilio-CX40 SmartNIC; that hardware is replaced here by a
//! cycle-cost model executed inside this engine (see `flextoe-nfp`), while
//! the TCP data-path logic itself is real code (see `flextoe-core`).
//!
//! Design (following the sans-IO idiom of smoltcp): protocol code never
//! performs I/O or reads clocks — the engine injects time through message
//! delivery, so every run is exactly reproducible from its seed.
//!
//! ```
//! use flextoe_sim::{Sim, Node, Ctx, Msg, cast, Time, Duration};
//!
//! struct Counter { n: u32 }
//! impl Node for Counter {
//!     fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
//!         self.n += *cast::<u32>(msg);
//!         if self.n < 10 { ctx.wake(Duration::from_us(1), 1u32); }
//!     }
//! }
//!
//! let mut sim = Sim::new(42);
//! let c = sim.add_node(Counter { n: 0 });
//! sim.schedule(Time::ZERO, c, 1u32);
//! sim.run();
//! assert_eq!(sim.node_ref::<Counter>(c).n, 10);
//! assert_eq!(sim.now().as_us(), 9);
//! ```

pub mod engine;
pub mod fxhash;
pub mod hist;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod wheel;

pub use engine::{
    cast, try_cast, Ctx, Doorbell, Envelope, FreeDesc, FsUpdate, IntoMsg, MacTx, Msg, MsgBurst,
    NbiFrame, Node, NodeId, QueueKind, ReportBatchToken, Sim, Tick, WorkToken, XferDone, XferReq,
    MSG_KIND_NAMES, N_MSG_KINDS,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use hist::Histogram;
pub use pool::PktBufPool;
pub use queue::BoundedQueue;
pub use rng::Rng;
pub use stats::{CounterHandle, HistHandle, Stats};
pub use time::{clocks, Clock, Duration, Time};
