//! Recycled byte-buffer pools.
//!
//! [`PktBufPool`] started life as the NFP's CTM/EMEM packet-buffer
//! free-list ("the NBI DMAs the packet into CTM" and the DMA stage
//! "transmits and frees it", FlexTOE §3.1.2) and is now the single
//! recycling discipline for every frame buffer in a simulation: each NIC
//! still owns one (its packet memory, with pressure gauges), and the
//! [`crate::Sim`] owns a fabric-wide one (exposed to every node as
//! [`crate::Ctx::pool`]) that host stacks draw emission buffers from and
//! that switches, links, and MAC queues return dropped frames to — so a
//! steady-state run allocates nothing per frame anywhere.

/// A free-list of per-packet byte buffers. Buffers are recycled with
/// their capacity, so the steady-state data path performs no per-packet
/// heap allocation.
#[derive(Debug, Default)]
pub struct PktBufPool {
    free: Vec<Vec<u8>>,
    /// Bound on pooled (idle) buffers; returns beyond it are dropped to
    /// the allocator, modelling the finite packet-buffer memory.
    max_pooled: usize,
    /// Optional bound on *outstanding* buffers (taken, not yet returned) —
    /// the finite packet memory of a real NIC. `take()` stays infallible;
    /// admission points consult [`PktBufPool::at_capacity`] and shed load
    /// (counted drops) instead of allocating past the cap.
    cap: Option<u64>,
    pub takes: u64,
    pub fresh_allocs: u64,
    pub returns: u64,
    pub dropped_returns: u64,
    /// Most buffers simultaneously outstanding (taken, not yet returned) —
    /// the pool-pressure gauge the connection-scalability sweep records.
    pub high_water: u64,
}

impl PktBufPool {
    pub fn new(max_pooled: usize) -> PktBufPool {
        PktBufPool {
            free: Vec::new(),
            max_pooled,
            cap: None,
            takes: 0,
            fresh_allocs: 0,
            returns: 0,
            dropped_returns: 0,
            high_water: 0,
        }
    }

    /// Cap the number of simultaneously outstanding buffers (None lifts
    /// the cap). Existing in-flight buffers are unaffected; pressure
    /// shows up at admission points that check [`PktBufPool::at_capacity`].
    pub fn set_capacity(&mut self, cap: Option<u64>) {
        self.cap = cap;
    }

    /// True when a capped pool has no headroom: taking another buffer
    /// would exceed the configured outstanding bound. Uncapped pools are
    /// never at capacity.
    pub fn at_capacity(&self) -> bool {
        self.cap.is_some_and(|c| self.in_flight() >= c)
    }

    /// Buffers currently outstanding (taken and not yet returned).
    /// Saturating: a pool can be handed more foreign buffers than it gave
    /// out (frames allocated on one NIC are consumed — and returned — on
    /// the peer's).
    pub fn in_flight(&self) -> u64 {
        self.takes.saturating_sub(self.returns)
    }

    /// Take a cleared buffer, reusing pooled capacity when available.
    pub fn take(&mut self) -> Vec<u8> {
        self.takes += 1;
        self.high_water = self.high_water.max(self.in_flight());
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => {
                self.fresh_allocs += 1;
                Vec::new()
            }
        }
    }

    /// Return a buffer to the pool (capacity kept for reuse).
    pub fn put(&mut self, buf: Vec<u8>) {
        self.returns += 1;
        if self.free.len() < self.max_pooled {
            self.free.push(buf);
        } else {
            self.dropped_returns += 1;
        }
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Fraction of takes served from the pool (1.0 = fully recycled).
    pub fn reuse_ratio(&self) -> f64 {
        if self.takes == 0 {
            return 1.0;
        }
        1.0 - self.fresh_allocs as f64 / self.takes as f64
    }
}

/// Default bound on the per-sim fabric frame pool: enough idle buffers
/// for every in-flight frame of a multi-switch fabric with margin.
pub const SIM_POOL_BOUND: usize = 8192;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_capacity() {
        let mut pool = PktBufPool::new(4);
        let mut a = pool.take();
        assert_eq!(pool.fresh_allocs, 1);
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take();
        assert!(b.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(b.capacity(), cap, "capacity survives the round-trip");
        assert_eq!(pool.fresh_allocs, 1, "second take reused the buffer");
        assert!(pool.reuse_ratio() > 0.49);
    }

    #[test]
    fn capacity_gates_admission_and_recovers() {
        let mut pool = PktBufPool::new(4);
        assert!(!pool.at_capacity(), "uncapped pool has headroom");
        pool.set_capacity(Some(2));
        let a = pool.take();
        assert!(!pool.at_capacity());
        let b = pool.take();
        assert!(pool.at_capacity(), "2 outstanding == cap 2");
        pool.put(a);
        assert!(!pool.at_capacity(), "a return restores headroom");
        pool.put(b);
        pool.set_capacity(None);
        assert!(!pool.at_capacity());
    }

    #[test]
    fn bounds_idle_buffers() {
        let mut pool = PktBufPool::new(2);
        for _ in 0..4 {
            let b = pool.take();
            pool.put(b);
        }
        let (x, y, z) = (pool.take(), pool.take(), pool.take());
        pool.put(x);
        pool.put(y);
        pool.put(z);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.dropped_returns, 1);
    }
}
