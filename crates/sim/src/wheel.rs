//! Bucketed event wheel (calendar queue) for the discrete-event engine.
//!
//! Classic event-driven network simulators get their scale from cheap
//! scheduling: most events land a few ten to a few thousand nanoseconds in
//! the future (pipeline hops, DMA completions, line-rate serialization),
//! so a calendar of fixed-width time buckets turns the O(log n) heap
//! push/pop into O(1) bucket appends plus an occupancy-bitmap scan. The
//! rare far-future timers (retransmission timeouts, millisecond pacing)
//! overflow into a small binary heap and migrate into the wheel when their
//! window arrives.
//!
//! # Ordering contract
//!
//! Every pop yields the minimum queued `(time, seq)` key — byte-identical
//! to the `BinaryHeap` reference scheduler, including the banded-seq
//! tie-break at equal timestamps. The integration suite proves this
//! differentially.
//!
//! # Windowing
//!
//! The wheel covers the fixed window `[base, base + N·W)`; `cursor` walks
//! its buckets in time order. Events inside the window go to bucket
//! `(t - base) / W`; later events go to the overflow heap (which is
//! therefore always strictly after every wheeled event). When the wheel
//! and its staging area drain, the window rotates: `base` jumps to the
//! earliest overflow timestamp and due overflow events migrate in.
//!
//! Because a bucket spans `W` picoseconds, its events are staged into a
//! sorted `ready` run when the cursor reaches it (an O(1) buffer swap; the
//! 4 ns bucket width makes multi-event buckets rare, so the sort usually
//! short-circuits).
//!
//! # Same-slot direct drain
//!
//! A handler that schedules new work due inside the *current* bucket — a
//! zero-delay hop, a doorbell, an `FsUpdate`, a same-cycle stage handoff —
//! takes the **hot deque** instead of the wheel proper: no bucket hashing,
//! no occupancy-bitmap update, no staging sort. Seq keys are banded per
//! source node (engine docs), so they are not globally monotone; the deque
//! is kept `(time, seq)`-sorted by full-key insertion, where zero-delay
//! self-sends — the common case — still append in O(1) (one source's keys
//! are monotone within one timestamp). Popping merges the deque with the
//! staged `ready` run by comparing fronts — two sorted runs, so every pop
//! yields the minimum queued key: exactly the reference heap's greedy
//! order. The deque is always empty by the time the cursor advances past
//! its bucket, so hot events can never be overtaken by later buckets or
//! the overflow heap.
//!
//! Pushes below `base` cannot happen — `base` never passes the sim clock
//! (rotation happens only while delivering an event at the new base), and
//! every push (including cross-shard imports, which a conservative
//! synchronizer admits strictly after the shard's clock) is at or after
//! the clock. `bucket_of` debug-asserts this.

use std::collections::{BinaryHeap, VecDeque};

use crate::engine::{Ev, Msg, NodeId};
use crate::time::Time;

/// log2 of the bucket width in picoseconds (4096 ps ≈ 4 ns).
const SHIFT: u32 = 12;
/// Number of buckets (must be a power of two). 16384 × 4 ns ≈ 67 µs of
/// horizon — wide enough for every data-path latency; RTO-scale timers
/// take the overflow path.
const NBUCKETS: usize = 16384;
const SPAN: u64 = (NBUCKETS as u64) << SHIFT;

/// Placeholder written over a popped slot of the staging run.
fn dummy_ev() -> Ev {
    Ev {
        time: Time(0),
        seq: 0,
        to: 0,
        msg: Msg::FreeDesc,
    }
}

pub(crate) struct EventWheel {
    /// Unsorted per-bucket event lists for the current window.
    buckets: Vec<Vec<Ev>>,
    /// One occupancy bit per bucket, for fast next-bucket scans.
    occ: Vec<u64>,
    /// Absolute time (ps) of bucket 0 of the current window.
    base: u64,
    /// Bucket currently staged in `ready`.
    cursor: usize,
    /// True once bucket `cursor` has been drained into `ready`; new events
    /// due in that bucket must then merge into `ready`, not the bucket.
    ready_active: bool,
    /// The staged (sorted) events of bucket `cursor`; `ready_pos` is the
    /// next undelivered index.
    ready: Vec<Ev>,
    ready_pos: usize,
    /// Same-slot direct-drain lane: events pushed into bucket `cursor`
    /// *while it is being drained*, kept `(time, seq)`-sorted (append-only
    /// in the common zero-delay case). Merged with `ready` on pop; always
    /// empty when the cursor moves on.
    hot: VecDeque<Ev>,
    /// Far-future events (time >= base + SPAN). `Ev`'s reversed `Ord`
    /// makes this max-heap pop earliest-first.
    overflow: BinaryHeap<Ev>,
    len: usize,
}

impl EventWheel {
    pub(crate) fn new() -> EventWheel {
        EventWheel {
            buckets: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            occ: vec![0; NBUCKETS / 64],
            base: 0,
            cursor: 0,
            ready_active: false,
            ready: Vec::new(),
            ready_pos: 0,
            hot: VecDeque::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        debug_assert!(t >= self.base && t - self.base < SPAN);
        ((t - self.base) >> SHIFT) as usize
    }

    #[inline]
    fn mark(&mut self, idx: usize) {
        self.occ[idx >> 6] |= 1 << (idx & 63);
    }

    #[inline]
    fn unmark(&mut self, idx: usize) {
        self.occ[idx >> 6] &= !(1 << (idx & 63));
    }

    #[inline]
    pub(crate) fn push(&mut self, ev: Ev) {
        let t = ev.time.ps();
        self.len += 1;
        if t >= self.base + SPAN {
            self.overflow.push(ev);
            return;
        }
        let idx = self.bucket_of(t);
        if idx == self.cursor && self.ready_active {
            // Same-slot direct drain: the cursor bucket is already staged,
            // so the event joins the hot deque instead of the wheel. Seq
            // keys are banded per source (not globally monotone), so the
            // deque is kept `(time, seq)`-sorted by full-key comparison;
            // zero-delay self-sends — the common case — still append,
            // since one source's keys are monotone at one timestamp.
            let key = (ev.time, ev.seq);
            if self.hot.back().is_none_or(|b| (b.time, b.seq) <= key) {
                self.hot.push_back(ev);
            } else {
                let pos = self.hot.partition_point(|e| (e.time, e.seq) <= key);
                self.hot.insert(pos, ev);
            }
        } else {
            self.buckets[idx].push(ev);
            self.mark(idx);
        }
    }

    /// Find the next occupied bucket at or after `from` (bitmap scan).
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= NBUCKETS {
            return None;
        }
        let mut word_i = from >> 6;
        let mut word = self.occ[word_i] & (!0u64 << (from & 63));
        loop {
            if word != 0 {
                return Some((word_i << 6) + word.trailing_zeros() as usize);
            }
            word_i += 1;
            if word_i >= self.occ.len() {
                return None;
            }
            word = self.occ[word_i];
        }
    }

    /// Make the staged front (`ready[ready_pos]` merged with the hot
    /// deque) the globally earliest event (staging / rotating as needed).
    /// Returns false iff the queue is empty. Split so the staged-run hit —
    /// the per-pop common case — inlines into the engine's step loop.
    #[inline(always)]
    fn ensure_front(&mut self) -> bool {
        if self.ready_pos < self.ready.len() || !self.hot.is_empty() {
            return true;
        }
        self.ensure_front_slow()
    }

    /// Stage the next bucket / rotate the window (out-of-line).
    fn ensure_front_slow(&mut self) -> bool {
        loop {
            if self.ready_pos < self.ready.len() || !self.hot.is_empty() {
                return true;
            }
            if self.len == 0 {
                return false;
            }
            let from = if self.ready_active {
                self.cursor + 1
            } else {
                self.cursor
            };
            if let Some(idx) = self.next_occupied(from) {
                self.cursor = idx;
                self.ready_active = true;
                self.unmark(idx);
                // O(1) staging: swap the bucket's contents in, handing the
                // bucket the retired run's capacity for reuse.
                self.ready.clear();
                self.ready_pos = 0;
                std::mem::swap(&mut self.ready, &mut self.buckets[idx]);
                if self.ready.len() > 1 {
                    self.ready.sort_unstable_by_key(|e| (e.time, e.seq));
                }
                return true;
            }
            // wheel empty: rotate the window to the earliest overflow event
            debug_assert!(!self.overflow.is_empty(), "len > 0 but nothing queued");
            self.base = self.overflow.peek().expect("overflow non-empty").time.ps();
            self.cursor = 0;
            self.ready_active = false;
            while let Some(ev) = self.overflow.peek() {
                if ev.time.ps() >= self.base + SPAN {
                    break;
                }
                let ev = self.overflow.pop().expect("peeked");
                let idx = self.bucket_of(ev.time.ps());
                self.buckets[idx].push(ev);
                self.mark(idx);
            }
        }
    }

    /// After `ensure_front`: does the hot deque hold the earliest event?
    /// Both runs are `(time, seq)`-sorted, so comparing fronts suffices.
    #[inline]
    fn hot_first(&self) -> bool {
        match (self.ready.get(self.ready_pos), self.hot.front()) {
            (Some(r), Some(h)) => (h.time, h.seq) < (r.time, r.seq),
            (None, _) => true,
            (_, None) => false,
        }
    }

    /// Remove and return the front event. Caller must have established it
    /// exists via `ensure_front`. The hot deque is empty in the vastly
    /// common case, so that test guards the merge logic.
    #[inline(always)]
    fn take_front(&mut self) -> Ev {
        self.len -= 1;
        if !self.hot.is_empty() && self.hot_first() {
            self.hot.pop_front().expect("hot_first implies non-empty")
        } else {
            let pos = self.ready_pos;
            self.ready_pos += 1;
            std::mem::replace(&mut self.ready[pos], dummy_ev())
        }
    }

    #[inline(always)]
    pub(crate) fn pop(&mut self) -> Option<Ev> {
        if !self.ensure_front() {
            return None;
        }
        Some(self.take_front())
    }

    /// Pop the front event only if it is addressed to `to` (and due no
    /// later than `limit`, when given) — the engine's burst-continuation
    /// probe. Deliberately looks only at the *staged* runs (the `ready`
    /// remainder and the hot deque): when both are exhausted it declines
    /// rather than rotating the window, so a failed probe — the common
    /// case — costs a bounds check and a compare, and never disturbs the
    /// wheel. Declining to coalesce is always order-safe; the next `pop`
    /// does the staging work instead.
    #[inline(always)]
    pub(crate) fn pop_front_if(&mut self, to: NodeId, limit: Option<Time>) -> Option<Ev> {
        let hot_first = !self.hot.is_empty() && self.hot_first();
        let front = if hot_first {
            // hot events live in the cursor bucket, which precedes every
            // unstaged bucket and the overflow heap: with `ready`
            // exhausted the hot front is still the global front
            self.hot.front().expect("checked non-empty")
        } else {
            self.ready.get(self.ready_pos)?
        };
        if front.to != to || limit.is_some_and(|l| front.time > l) {
            return None;
        }
        self.len -= 1;
        Some(if hot_first {
            self.hot.pop_front().expect("checked non-empty")
        } else {
            let pos = self.ready_pos;
            self.ready_pos += 1;
            std::mem::replace(&mut self.ready[pos], dummy_ev())
        })
    }

    /// Earliest queued timestamp without mutating the wheel (public
    /// `next_event_time` API; the hot path uses `ensure_front`).
    pub(crate) fn next_time(&self) -> Option<Time> {
        let staged = match (self.ready.get(self.ready_pos), self.hot.front()) {
            (Some(r), Some(h)) => Some(if (h.time, h.seq) < (r.time, r.seq) {
                h.time
            } else {
                r.time
            }),
            (Some(r), None) => Some(r.time),
            (None, Some(h)) => Some(h.time),
            (None, None) => None,
        };
        if staged.is_some() {
            return staged;
        }
        let from = if self.ready_active {
            self.cursor + 1
        } else {
            self.cursor
        };
        if let Some(idx) = self.next_occupied(from) {
            let t = self.buckets[idx]
                .iter()
                .map(|e| (e.time.ps(), e.seq))
                .min()
                .expect("occupied bucket is non-empty");
            return Some(Time(t.0));
        }
        self.overflow.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, seq: u64) -> Ev {
        Ev {
            time: Time(t),
            seq,
            to: 0,
            msg: Msg::Tick,
        }
    }

    /// Differential test against a sorted reference, with pushes
    /// interleaved into pops the way a running simulation does it.
    #[test]
    fn matches_sorted_reference_under_interleaving() {
        let mut rng = crate::rng::Rng::new(0xCAFE);
        for _case in 0..50 {
            let mut wheel = EventWheel::new();
            let mut reference: Vec<(u64, u64)> = Vec::new();
            let mut seq = 0u64;
            let mut out = Vec::new();
            // seed a few initial events
            for _ in 0..10 {
                let t = rng.below(1000) * 100;
                wheel.push(ev(t, seq));
                reference.push((t, seq));
                seq += 1;
            }
            while let Some(e) = wheel.pop() {
                let now = e.time.ps();
                out.push((now, e.seq));
                // occasionally schedule follow-ups relative to now,
                // spanning zero-delay, in-window and overflow distances
                if out.len() < 400 && rng.chance(0.7) {
                    let n = rng.below(3) + 1;
                    for _ in 0..n {
                        let d = match rng.below(4) {
                            0 => 0,
                            1 => rng.below(1 << SHIFT),
                            2 => rng.below(SPAN),
                            _ => SPAN + rng.below(SPAN * 4),
                        };
                        wheel.push(ev(now + d, seq));
                        reference.push((now + d, seq));
                        seq += 1;
                    }
                }
            }
            reference.sort_unstable();
            assert_eq!(out, reference);
            assert_eq!(wheel.len(), 0);
        }
    }

    #[test]
    fn next_time_is_nondestructive_and_correct() {
        let mut wheel = EventWheel::new();
        assert_eq!(wheel.next_time(), None);
        wheel.push(ev(SPAN * 3 + 17, 0)); // overflow
        assert_eq!(wheel.next_time(), Some(Time(SPAN * 3 + 17)));
        wheel.push(ev(500, 1));
        wheel.push(ev(300, 2));
        assert_eq!(wheel.next_time(), Some(Time(300)));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(2));
        assert_eq!(wheel.next_time(), Some(Time(500)));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(1));
        assert_eq!(wheel.next_time(), Some(Time(SPAN * 3 + 17)));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(0));
        assert_eq!(wheel.next_time(), None);
    }

    #[test]
    fn same_bucket_different_times_sort() {
        let mut wheel = EventWheel::new();
        // all land in bucket 0 (width 4096 ps), pushed out of order
        wheel.push(ev(4000, 0));
        wheel.push(ev(100, 1));
        wheel.push(ev(100, 2));
        wheel.push(ev(2000, 3));
        let order: Vec<(u64, u64)> =
            std::iter::from_fn(|| wheel.pop().map(|e| (e.time.ps(), e.seq))).collect();
        assert_eq!(order, vec![(100, 1), (100, 2), (2000, 3), (4000, 0)]);
    }

    #[test]
    fn zero_delay_insert_into_staged_bucket() {
        let mut wheel = EventWheel::new();
        wheel.push(ev(100, 0));
        wheel.push(ev(120, 1));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(0));
        // bucket 0 is staged now; a zero-delay follow-up at t=100 must
        // still come before the t=120 event (hot-deque direct drain)
        wheel.push(ev(100, 2));
        assert_eq!(wheel.pop().map(|e| (e.time.ps(), e.seq)), Some((100, 2)));
        assert_eq!(wheel.pop().map(|e| (e.time.ps(), e.seq)), Some((120, 1)));
    }

    /// The hot deque merges with the staged run in exact `(time, seq)`
    /// order, including the rare out-of-time-order same-slot insert.
    #[test]
    fn hot_deque_merges_with_staged_run() {
        let mut wheel = EventWheel::new();
        for (t, q) in [(100u64, 0u64), (200, 1), (300, 2)] {
            wheel.push(ev(t, q));
        }
        assert_eq!(wheel.pop().map(|e| e.seq), Some(0));
        // same-slot sends while draining: monotone appends...
        wheel.push(ev(150, 3));
        wheel.push(ev(250, 4));
        // ...and one earlier-time insert that must sort into the deque
        wheel.push(ev(120, 5));
        let order: Vec<(u64, u64)> =
            std::iter::from_fn(|| wheel.pop().map(|e| (e.time.ps(), e.seq))).collect();
        assert_eq!(
            order,
            vec![(120, 5), (150, 3), (200, 1), (250, 4), (300, 2)]
        );
        assert_eq!(wheel.len(), 0);
    }

    /// Banded seq keys are not globally monotone: a same-slot send from a
    /// low-band source must insert before staged higher-band events at
    /// the same timestamp, and the hot deque must order same-time pushes
    /// by full key, not arrival.
    #[test]
    fn hot_deque_orders_banded_seqs_at_equal_time() {
        const BAND: u64 = 1 << 40;
        let mut wheel = EventWheel::new();
        wheel.push(ev(100, 9 * BAND));
        wheel.push(ev(100, 7 * BAND));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(7 * BAND));
        // while bucket 0 is staged, same-time sends arrive from sources
        // whose bands straddle the staged front's band
        wheel.push(ev(100, 8 * BAND));
        wheel.push(ev(100, 2 * BAND));
        wheel.push(ev(100, 2 * BAND + 1));
        let order: Vec<u64> = std::iter::from_fn(|| wheel.pop().map(|e| e.seq)).collect();
        assert_eq!(order, vec![2 * BAND, 2 * BAND + 1, 8 * BAND, 9 * BAND]);
    }

    /// Greedy differential against the reference heap under banded keys:
    /// follow-up events carry `(random source band | per-band counter)`
    /// seqs, so the final key multiset is *not* delivered in sorted order
    /// (a later send can key below an already-delivered event). Wheel and
    /// heap must still realize the identical greedy order.
    #[test]
    fn matches_reference_heap_under_banded_seqs() {
        const BAND: u64 = 1 << 40;
        let mut rng = crate::rng::Rng::new(0xBA2D);
        for _case in 0..50 {
            let run = |heap: bool, rng: &mut crate::rng::Rng| {
                let mut wheel = EventWheel::new();
                let mut heapq: BinaryHeap<Ev> = BinaryHeap::new();
                let push = |e: Ev, w: &mut EventWheel, h: &mut BinaryHeap<Ev>| {
                    if heap {
                        h.push(e)
                    } else {
                        w.push(e)
                    }
                };
                let mut counters = [0u64; 8];
                let mut out = Vec::new();
                for i in 0..10u64 {
                    let t = rng.below(1000) * 100;
                    push(ev(t, i), &mut wheel, &mut heapq);
                }
                loop {
                    let e = if heap { heapq.pop() } else { wheel.pop() };
                    let Some(e) = e else { break };
                    let now = e.time.ps();
                    out.push((now, e.seq));
                    if out.len() < 400 && rng.chance(0.7) {
                        for _ in 0..rng.below(3) + 1 {
                            let d = match rng.below(4) {
                                0 => 0,
                                1 => rng.below(1 << SHIFT),
                                2 => rng.below(SPAN),
                                _ => SPAN + rng.below(SPAN * 4),
                            };
                            let band = rng.below(8) as usize;
                            let seq = (band as u64 + 1) * BAND + counters[band];
                            counters[band] += 1;
                            push(ev(now + d, seq), &mut wheel, &mut heapq);
                        }
                    }
                }
                out
            };
            // identical rng streams drive both runs
            let mut r1 = rng.fork();
            let mut r2 = r1.clone();
            assert_eq!(run(false, &mut r1), run(true, &mut r2));
        }
    }

    /// `pop_front_if` only surfaces staged-front events for the right
    /// node, never rotates the window, and honors the deadline limit.
    #[test]
    fn pop_front_if_is_a_safe_probe() {
        let mut wheel = EventWheel::new();
        let mk = |t: u64, seq: u64, to: usize| Ev {
            time: Time(t),
            seq,
            to,
            msg: Msg::Tick,
        };
        wheel.push(mk(100, 0, 1));
        wheel.push(mk(110, 1, 2));
        // nothing staged yet: the probe declines rather than staging
        assert!(wheel.pop_front_if(1, None).is_none());
        assert_eq!(wheel.pop().map(|e| e.seq), Some(0));
        // staged front is for node 2: probe for node 1 fails, node 2 hits
        assert!(wheel.pop_front_if(1, None).is_none());
        // deadline below the front time declines too
        assert!(wheel.pop_front_if(2, Some(Time(105))).is_none());
        assert_eq!(
            wheel.pop_front_if(2, Some(Time(110))).map(|e| e.seq),
            Some(1)
        );
        assert_eq!(wheel.len(), 0);
        // hot-deque front is probe-visible after the staged run empties
        wheel.push(mk(100, 2, 7));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(2));
        wheel.push(mk(100, 3, 7));
        assert_eq!(wheel.pop_front_if(7, None).map(|e| e.seq), Some(3));
    }
}
