//! The discrete-event engine.
//!
//! A simulation is a set of [`Node`]s (pipeline-stage FPCs, host cores,
//! links, switch ports, …) exchanging timestamped messages through a global
//! event queue. Execution is single-threaded and fully deterministic: ties
//! in time are broken by enqueue order, and all randomness flows from one
//! seeded generator.
//!
//! Latency travels in messages; genuinely shared memory (socket payload
//! buffers, context queues, NIC memories) is shared via `Rc<RefCell<…>>`
//! outside the engine, mirroring the real system's shared-memory design,
//! with *access costs* charged through the hardware model.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::rng::Rng;
use crate::stats::Stats;
use crate::time::{Duration, Time};

/// Identifies a node within one simulation.
pub type NodeId = usize;

/// A type-erased message. Receivers downcast with [`cast`] / [`try_cast`].
pub type Msg = Box<dyn Any>;

/// Downcast a message to a concrete type, panicking with a useful message
/// on mismatch (a mismatch is always a wiring bug, never a runtime input).
pub fn cast<T: 'static>(msg: Msg) -> Box<T> {
    msg.downcast::<T>().unwrap_or_else(|m| {
        panic!(
            "message type mismatch: expected {}, got {:?}",
            std::any::type_name::<T>(),
            (*m).type_id()
        )
    })
}

/// Downcast a message, returning it back on mismatch.
pub fn try_cast<T: 'static>(msg: Msg) -> Result<Box<T>, Msg> {
    msg.downcast::<T>()
}

/// A simulation actor.
///
/// `Any` is a supertrait so the harness can reach into concrete nodes
/// between runs (trait upcasting) for configuration and result collection.
pub trait Node: Any {
    /// Handle a message delivered at the current simulation time.
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg);

    /// Diagnostic name (used in panics and traces).
    fn name(&self) -> String {
        std::any::type_name::<Self>().to_string()
    }
}

/// Per-delivery context handed to a node. Outgoing sends are buffered and
/// committed to the event queue when the handler returns.
pub struct Ctx<'a> {
    now: Time,
    self_id: NodeId,
    out: &'a mut Vec<(Time, NodeId, Msg)>,
    pub rng: &'a mut Rng,
    pub stats: &'a mut Stats,
    halt: &'a mut bool,
}

impl<'a> Ctx<'a> {
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Send `msg` to node `to`, arriving `delay` from now.
    #[inline]
    pub fn send<M: Any>(&mut self, to: NodeId, delay: Duration, msg: M) {
        self.out.push((self.now + delay, to, Box::new(msg)));
    }

    /// Send an already-boxed message.
    #[inline]
    pub fn send_boxed(&mut self, to: NodeId, delay: Duration, msg: Msg) {
        self.out.push((self.now + delay, to, msg));
    }

    /// Send `msg` to node `to` at an absolute instant (>= now).
    #[inline]
    pub fn send_at<M: Any>(&mut self, to: NodeId, at: Time, msg: M) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.out.push((at.max(self.now), to, Box::new(msg)));
    }

    /// Schedule a message to self.
    #[inline]
    pub fn wake<M: Any>(&mut self, delay: Duration, msg: M) {
        let id = self.self_id;
        self.send(id, delay, msg);
    }

    /// Stop the simulation after this handler returns (used by experiment
    /// terminators, e.g. "stop after N requests").
    pub fn halt(&mut self) {
        *self.halt = true;
    }
}

struct Ev {
    time: Time,
    seq: u64,
    to: NodeId,
    msg: Msg,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulation: event queue + nodes + global RNG and statistics.
pub struct Sim {
    time: Time,
    seq: u64,
    queue: BinaryHeap<Ev>,
    nodes: Vec<Option<Box<dyn Node>>>,
    node_names: Vec<String>,
    pub rng: Rng,
    pub stats: Stats,
    events_processed: u64,
    halt: bool,
    out_buf: Vec<(Time, NodeId, Msg)>,
}

impl Sim {
    pub fn new(seed: u64) -> Sim {
        Sim {
            time: Time::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            node_names: Vec::new(),
            rng: Rng::new(seed),
            stats: Stats::new(),
            events_processed: 0,
            halt: false,
            out_buf: Vec::new(),
        }
    }

    pub fn now(&self) -> Time {
        self.time
    }

    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Add a node; returns its id.
    pub fn add_node<N: Node>(&mut self, node: N) -> NodeId {
        let id = self.nodes.len();
        self.node_names.push(node.name());
        self.nodes.push(Some(Box::new(node)));
        id
    }

    /// Reserve a node slot to be filled later (for cyclic wiring).
    pub fn reserve_node(&mut self) -> NodeId {
        let id = self.nodes.len();
        self.node_names.push("<reserved>".to_string());
        self.nodes.push(None);
        id
    }

    /// Fill a reserved slot.
    pub fn fill_node<N: Node>(&mut self, id: NodeId, node: N) {
        assert!(self.nodes[id].is_none(), "slot {id} already filled");
        self.node_names[id] = node.name();
        self.nodes[id] = Some(Box::new(node));
    }

    /// Mutable access to a concrete node (configuration, result harvest).
    pub fn node_mut<N: Node>(&mut self, id: NodeId) -> &mut N {
        let node = self.nodes[id]
            .as_mut()
            .unwrap_or_else(|| panic!("node {id} is vacant"));
        let any: &mut dyn Any = node.as_mut();
        any.downcast_mut::<N>().unwrap_or_else(|| {
            panic!(
                "node {id} is {}, not {}",
                std::any::type_name::<N>(),
                std::any::type_name::<N>()
            )
        })
    }

    /// Shared access to a concrete node.
    pub fn node_ref<N: Node>(&self, id: NodeId) -> &N {
        let node = self.nodes[id]
            .as_ref()
            .unwrap_or_else(|| panic!("node {id} is vacant"));
        let any: &dyn Any = node.as_ref();
        any.downcast_ref::<N>()
            .unwrap_or_else(|| panic!("node {id} has unexpected type"))
    }

    /// Schedule a message from outside any handler (experiment kick-off).
    pub fn schedule<M: Any>(&mut self, at: Time, to: NodeId, msg: M) {
        self.push(at.max(self.time), to, Box::new(msg));
    }

    pub fn schedule_in<M: Any>(&mut self, delay: Duration, to: NodeId, msg: M) {
        self.push(self.time + delay, to, Box::new(msg));
    }

    #[inline]
    fn push(&mut self, time: Time, to: NodeId, msg: Msg) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Ev { time, seq, to, msg });
    }

    /// Deliver the next event. Returns `false` when the queue is empty or
    /// the simulation was halted.
    pub fn step(&mut self) -> bool {
        if self.halt {
            return false;
        }
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.time, "event queue time reversal");
        self.time = ev.time;
        self.events_processed += 1;

        let mut node = self.nodes[ev.to].take().unwrap_or_else(|| {
            panic!(
                "message delivered to vacant node {} ({})",
                ev.to, self.node_names[ev.to]
            )
        });
        {
            let mut ctx = Ctx {
                now: self.time,
                self_id: ev.to,
                out: &mut self.out_buf,
                rng: &mut self.rng,
                stats: &mut self.stats,
                halt: &mut self.halt,
            };
            node.on_msg(&mut ctx, ev.msg);
        }
        self.nodes[ev.to] = Some(node);
        let outs = std::mem::take(&mut self.out_buf);
        for (time, to, msg) in outs {
            self.push(time, to, msg);
        }
        self.out_buf = Vec::new();
        true
    }

    /// Run until the queue drains, the halt flag is set, or `deadline` is
    /// reached (events at exactly `deadline` are delivered).
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(ev) = self.queue.peek() {
            if ev.time > deadline || self.halt {
                break;
            }
            self.step();
        }
        if !self.halt {
            self.time = self.time.max(deadline.min(self.next_event_time().unwrap_or(deadline)));
        }
    }

    /// Run until nothing is left or halted. Panics after `limit` events to
    /// catch runaway zero-delay loops.
    pub fn run_with_limit(&mut self, limit: u64) {
        let start = self.events_processed;
        while self.step() {
            if self.events_processed - start > limit {
                panic!("event limit {limit} exceeded — zero-delay loop?");
            }
        }
    }

    pub fn run(&mut self) {
        while self.step() {}
    }

    pub fn next_event_time(&self) -> Option<Time> {
        self.queue.peek().map(|e| e.time)
    }

    pub fn halted(&self) -> bool {
        self.halt
    }

    pub fn clear_halt(&mut self) {
        self.halt = false;
    }
}

/// A generic unit tick message for self-scheduled polling loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tick;

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        peer: Option<NodeId>,
        hops_left: u32,
        log: Vec<(u64, u32)>, // (ns, hops_left at receipt)
    }

    struct Ball(u32);

    impl Node for Echo {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let ball = cast::<Ball>(msg);
            self.log.push((ctx.now().as_ns(), ball.0));
            self.hops_left = ball.0;
            if ball.0 > 0 {
                if let Some(peer) = self.peer {
                    ctx.send(peer, Duration::from_ns(10), Ball(ball.0 - 1));
                }
            }
        }
    }

    #[test]
    fn ping_pong_timing() {
        let mut sim = Sim::new(1);
        let a = sim.reserve_node();
        let b = sim.add_node(Echo { peer: Some(a), hops_left: 0, log: vec![] });
        sim.fill_node(a, Echo { peer: Some(b), hops_left: 0, log: vec![] });
        sim.schedule(Time::ZERO, a, Ball(4));
        sim.run();
        let ea = sim.node_ref::<Echo>(a);
        let eb = sim.node_ref::<Echo>(b);
        assert_eq!(ea.log, vec![(0, 4), (20, 2), (40, 0)]);
        assert_eq!(eb.log, vec![(10, 3), (30, 1)]);
        assert_eq!(sim.now().as_ns(), 40);
        assert_eq!(sim.events_processed(), 5);
    }

    struct Recorder {
        seen: Vec<u32>,
    }
    impl Node for Recorder {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            self.seen.push(*cast::<u32>(msg));
        }
    }

    #[test]
    fn fifo_tiebreak_at_same_time() {
        let mut sim = Sim::new(1);
        let r = sim.add_node(Recorder { seen: vec![] });
        for i in 0..10u32 {
            sim.schedule(Time::from_ns(5), r, i);
        }
        sim.run();
        assert_eq!(sim.node_ref::<Recorder>(r).seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(1);
        let r = sim.add_node(Recorder { seen: vec![] });
        sim.schedule(Time::from_ns(10), r, 1u32);
        sim.schedule(Time::from_ns(20), r, 2u32);
        sim.schedule(Time::from_ns(30), r, 3u32);
        sim.run_until(Time::from_ns(20));
        assert_eq!(sim.node_ref::<Recorder>(r).seen, vec![1, 2]);
        sim.run();
        assert_eq!(sim.node_ref::<Recorder>(r).seen, vec![1, 2, 3]);
    }

    struct Halter;
    impl Node for Halter {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.halt();
        }
    }

    #[test]
    fn halt_stops_immediately() {
        let mut sim = Sim::new(1);
        let h = sim.add_node(Halter);
        let r = sim.add_node(Recorder { seen: vec![] });
        sim.schedule(Time::from_ns(1), h, Tick);
        sim.schedule(Time::from_ns(2), r, 9u32);
        sim.run();
        assert!(sim.halted());
        assert!(sim.node_ref::<Recorder>(r).seen.is_empty());
    }

    struct SelfWaker {
        fired: u32,
    }
    impl Node for SelfWaker {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            self.fired += 1;
            if self.fired < 5 {
                ctx.wake(Duration::from_us(1), Tick);
            }
        }
    }

    #[test]
    fn self_wake_polling_loop() {
        let mut sim = Sim::new(1);
        let w = sim.add_node(SelfWaker { fired: 0 });
        sim.schedule(Time::ZERO, w, Tick);
        sim.run();
        assert_eq!(sim.node_ref::<SelfWaker>(w).fired, 5);
        assert_eq!(sim.now().as_us(), 4);
    }

    #[test]
    fn determinism_across_runs() {
        let run = |seed| {
            let mut sim = Sim::new(seed);
            let r = sim.add_node(Recorder { seen: vec![] });
            for _ in 0..100 {
                let d = Duration::from_ns(sim.rng.below(1000));
                let v = sim.rng.next_u32();
                sim.schedule_in(d, r, v);
            }
            sim.run();
            sim.node_ref::<Recorder>(r).seen.clone()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn zero_delay_loop_detected() {
        struct Looper;
        impl Node for Looper {
            fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
                ctx.wake(Duration::ZERO, Tick);
            }
        }
        let mut sim = Sim::new(1);
        let l = sim.add_node(Looper);
        sim.schedule(Time::ZERO, l, Tick);
        sim.run_with_limit(1000);
    }

    #[test]
    fn try_cast_returns_msg_on_mismatch() {
        let m: Msg = Box::new(42u32);
        let m = try_cast::<String>(m).unwrap_err();
        assert_eq!(*cast::<u32>(m), 42);
    }
}
