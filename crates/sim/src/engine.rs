//! The discrete-event engine.
//!
//! A simulation is a set of [`Node`]s (pipeline-stage FPCs, host cores,
//! links, switch ports, …) exchanging timestamped messages through a global
//! event queue. Execution is single-threaded per [`Sim`] and fully
//! deterministic: delivery follows the total `(time, seq)` key order, and
//! randomness flows from seeded per-node generators.
//!
//! # Partition-independent event keys
//!
//! Event sequence numbers are **banded** so that the same simulation
//! produces the same keys no matter how it is partitioned across shards
//! (`flextoe-shard` runs one scenario as N communicating `Sim`s):
//!
//! - band 0 — events scheduled from outside any handler
//!   ([`Sim::schedule`] / [`Sim::schedule_in`]): `seq` is a global
//!   schedule-call counter, so externally scheduled ties deliver in call
//!   order, as they always have.
//! - band `id+1` — events sent from inside a handler ([`Ctx::send`] and
//!   friends): `seq = (source id + 1) << 40 | per-source counter`. The key
//!   depends only on the sending node's own history, never on the global
//!   interleaving — which is what makes a sharded run byte-identical to
//!   the monolithic one.
//!
//! At equal timestamps this orders all externally scheduled events first,
//! then runtime sends by `(source id, per-source send count)`. Every
//! scheduler (wheel, reference heap, sharded) delivers the greedy minimum
//! of the queued keys, so all of them realize the identical order.
//!
//! Latency travels in messages; genuinely shared memory (socket payload
//! buffers, context queues, NIC memories) is shared via `Rc<RefCell<…>>`
//! outside the engine, mirroring the real system's shared-memory design,
//! with *access costs* charged through the hardware model.
//!
//! # Messages
//!
//! [`Msg`] is an enum whose variants cover the data-path's hot message
//! vocabulary — raw frames, MAC egress submissions, pooled pipeline work
//! tokens, DMA transfer requests/completions, scheduler and context-queue
//! tokens — so the per-event fast path never touches the heap. Everything
//! else (control-plane requests, application messages, test fixtures)
//! rides in [`Msg::Custom`], a type-erased box with exactly the semantics
//! the engine had before the typed core: [`cast`] / [`try_cast`] keep
//! working for every message type, typed variants included.
//!
//! # Scheduling
//!
//! The default event queue is a bucketed event wheel (calendar queue,
//! [`crate::wheel`]) with a binary-heap overflow for far-future timers;
//! [`Sim::with_reference_queue`] selects the plain `BinaryHeap` reference
//! scheduler instead. Both deliver the exact same total order —
//! `(time, enqueue seq)` — which the integration suite proves by
//! differential testing.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::pool::{PktBufPool, SIM_POOL_BOUND};
use crate::rng::Rng;
use crate::stats::Stats;
use crate::time::{Duration, Time};
use crate::wheel::EventWheel;
use flextoe_wire::Frame;

/// Identifies a node within one simulation.
pub type NodeId = usize;

// ---- partition-independent event keys -----------------------------------

/// Bits of per-source sequence space below the band id (see the module
/// docs): 2^40 sends per source, 2^24 - 1 bands.
const SEQ_BAND_SHIFT: u32 = 40;
/// Per-band counter capacity.
const SEQ_BAND_SPAN: u64 = 1 << SEQ_BAND_SHIFT;
/// Highest admissible node id (band `id + 1` must fit above the shift).
const MAX_NODE_ID: usize = (1 << (64 - SEQ_BAND_SHIFT as usize)) - 2;

/// The seq band of runtime sends from node `id`.
#[inline]
fn node_band(id: NodeId) -> u64 {
    ((id as u64) + 1) << SEQ_BAND_SHIFT
}

/// A cross-shard event in flight: a frame crossing a cut link, carrying
/// the exact delivery key the monolithic engine would have used. Produced
/// by a send to a non-owned node (see [`Sim::set_owned`]), consumed by
/// [`Sim::import`] on the owning shard.
#[derive(Debug)]
pub struct Envelope {
    pub time: Time,
    pub seq: u64,
    pub to: NodeId,
    pub frame: Frame,
}

// ---- typed message vocabulary -------------------------------------------

/// A pooled pipeline work item: a slot in the owning NIC's work pool plus
/// the pipeline entry sequence number (`None` until the sequencer assigns
/// one). The engine never looks inside the pool — stages of one NIC share
/// it outside the message, exactly like the real system's NIC memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkToken {
    pub slot: u32,
    pub entry_seq: Option<u64>,
}

/// A frame submitted by the data-path to a MAC block for egress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MacTx(pub Frame);

/// A finished frame travelling to the sequencer for NBI admission (§3.2
/// of the paper): restored to protocol-emission order per flow group.
#[derive(Clone, Debug)]
pub struct NbiFrame {
    pub group: u32,
    pub nbi_seq: u64,
    pub frame: Frame,
}

/// An asynchronous transfer request to an engine node (the PCIe DMA
/// block). On completion the engine sends [`Msg::XferDone`] carrying
/// `token` back to `reply_to`; the token is an index the requester
/// interprets against its own pending table (no allocation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XferReq {
    pub bytes: u32,
    /// Direction: true = device writes host memory, false = reads it.
    pub write: bool,
    pub reply_to: NodeId,
    pub token: u64,
}

/// Completion of an [`XferReq`]. `to` is the requester the engine routes
/// the completion to (receivers can ignore it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XferDone {
    pub token: u64,
    pub to: NodeId,
}

/// Flow-scheduler feedback: the authoritative sendable-byte count for a
/// connection after the protocol stage ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsUpdate {
    pub conn: u32,
    pub sendable: u32,
}

/// MMIO doorbell to the context-queue stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Doorbell {
    pub ctx: u16,
}

/// Return one HC descriptor credit to the context-queue stage pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreeDesc;

/// A generic unit tick message for self-scheduled polling loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tick;

/// A sealed congestion-report batch travelling out-of-band from the
/// data-path measurement layer to the control plane. The payload is a
/// slot index into the NIC's shared report pool (`flextoe-ccp`): many
/// flow reports ride one message, and the buffers are pooled — no
/// allocation on the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReportBatchToken {
    pub slot: u32,
    /// The batch carries an urgent event (fast retransmit).
    pub urgent: bool,
}

/// A simulation message. Hot data-path messages are inline enum payloads
/// (no heap allocation per event); everything else is `Custom`.
#[derive(Debug)]
pub enum Msg {
    /// Generic tick for self-scheduled polling loops.
    Tick,
    /// A raw Ethernet frame on the wire / NBI ingress.
    Frame(Frame),
    /// A frame handed to a MAC block for egress.
    MacTx(MacTx),
    /// A pooled pipeline work item travelling between data-path stages.
    Work(WorkToken),
    /// A pipeline entry sequence number that left the pipeline early
    /// (dropped / redirected) — the sequencer's reorderer skips it.
    Skip(u64),
    /// A finished frame for NBI admission.
    Nbi(NbiFrame),
    /// Asynchronous transfer request (PCIe DMA).
    Xfer(XferReq),
    /// Transfer completion token, routed back to the requester.
    XferDone(XferDone),
    /// A small scalar token (self-wake markers, port ids, …).
    Token(u64),
    /// Flow-scheduler sendable update.
    FsUpdate(FsUpdate),
    /// Context-queue doorbell.
    Doorbell(Doorbell),
    /// Context-queue descriptor credit return.
    FreeDesc,
    /// A sealed congestion-report batch (pooled slot token).
    Report(ReportBatchToken),
    /// Anything else: control-plane, application and test messages.
    Custom(Box<dyn Any>),
}

impl Msg {
    /// Wrap an arbitrary value as a custom (type-erased) message.
    pub fn custom<T: Any>(value: T) -> Msg {
        Msg::Custom(Box::new(value))
    }

    pub fn variant_name(&self) -> &'static str {
        MSG_KIND_NAMES[self.kind_idx()]
    }

    /// Dense variant index (profiler bucketing; order of
    /// [`MSG_KIND_NAMES`]).
    #[inline]
    pub fn kind_idx(&self) -> usize {
        match self {
            Msg::Tick => 0,
            Msg::Frame(_) => 1,
            Msg::MacTx(_) => 2,
            Msg::Work(_) => 3,
            Msg::Skip(_) => 4,
            Msg::Nbi(_) => 5,
            Msg::Xfer(_) => 6,
            Msg::XferDone(_) => 7,
            Msg::Token(_) => 8,
            Msg::FsUpdate(_) => 9,
            Msg::Doorbell(_) => 10,
            Msg::FreeDesc => 11,
            Msg::Report(_) => 12,
            Msg::Custom(_) => 13,
        }
    }
}

/// Number of [`Msg`] variants (profiler bucket count).
pub const N_MSG_KINDS: usize = 14;

/// Variant names, indexed by [`Msg::kind_idx`].
pub const MSG_KIND_NAMES: [&str; N_MSG_KINDS] = [
    "Tick", "Frame", "MacTx", "Work", "Skip", "Nbi", "Xfer", "XferDone", "Token", "FsUpdate",
    "Doorbell", "FreeDesc", "Report", "Custom",
];

/// Conversion of a concrete message value into [`Msg`]. Hot data-path
/// types map to inline variants; custom message types opt in with
/// [`crate::custom_msg!`], which wraps them in [`Msg::Custom`].
pub trait IntoMsg {
    fn into_msg(self) -> Msg;
}

impl IntoMsg for Msg {
    #[inline]
    fn into_msg(self) -> Msg {
        self
    }
}

macro_rules! inline_msg {
    ($($ty:ident => $variant:ident),* $(,)?) => {
        $(impl IntoMsg for $ty {
            #[inline]
            fn into_msg(self) -> Msg {
                Msg::$variant(self)
            }
        })*
    };
}

inline_msg!(
    Frame => Frame,
    MacTx => MacTx,
    WorkToken => Work,
    NbiFrame => Nbi,
    XferReq => Xfer,
    XferDone => XferDone,
    FsUpdate => FsUpdate,
    Doorbell => Doorbell,
    ReportBatchToken => Report,
);

impl IntoMsg for Tick {
    #[inline]
    fn into_msg(self) -> Msg {
        Msg::Tick
    }
}

impl IntoMsg for FreeDesc {
    #[inline]
    fn into_msg(self) -> Msg {
        Msg::FreeDesc
    }
}

impl IntoMsg for u64 {
    #[inline]
    fn into_msg(self) -> Msg {
        Msg::Token(self)
    }
}

/// Register custom message types: generates [`IntoMsg`] impls that route
/// the value through [`Msg::Custom`]. Use in the crate that owns the type.
#[macro_export]
macro_rules! custom_msg {
    ($($ty:ty),* $(,)?) => {
        $(impl $crate::IntoMsg for $ty {
            #[inline]
            fn into_msg(self) -> $crate::Msg {
                $crate::Msg::Custom(Box::new(self))
            }
        })*
    };
}

// u32 is the conventional scalar payload in unit tests.
custom_msg!(u32);

/// Compatibility downcast helper: re-box a typed variant's payload so a
/// `cast::<T>` / `try_cast::<T>` written against the old fully-type-erased
/// engine still observes the same types. Costs an allocation, so hot
/// receivers match on [`Msg`] directly instead.
fn repack<T: 'static, U: Any>(value: U, back: impl FnOnce(U) -> Msg) -> Result<Box<T>, Msg> {
    let boxed: Box<dyn Any> = Box::new(value);
    boxed
        .downcast::<T>()
        .map_err(|b| back(*b.downcast::<U>().expect("repack round-trip")))
}

/// Downcast a message, returning it back on mismatch.
///
/// Typed variants still downcast to their payload type (`Tick`, `Frame`,
/// `MacTx`, …) so dispatch chains written before the typed core behave
/// identically — at the cost of a compatibility re-box. Hot receivers
/// should match on [`Msg`] directly.
pub fn try_cast<T: 'static>(msg: Msg) -> Result<Box<T>, Msg> {
    match msg {
        Msg::Custom(b) => b.downcast::<T>().map_err(Msg::Custom),
        Msg::Tick => repack(Tick, |_| Msg::Tick),
        Msg::Frame(f) => repack(f, Msg::Frame),
        Msg::MacTx(m) => repack(m, Msg::MacTx),
        Msg::Work(w) => repack(w, Msg::Work),
        Msg::Nbi(n) => repack(n, Msg::Nbi),
        Msg::Xfer(x) => repack(x, Msg::Xfer),
        Msg::XferDone(x) => repack(x, Msg::XferDone),
        Msg::Token(t) => repack(t, Msg::Token),
        Msg::FsUpdate(f) => repack(f, Msg::FsUpdate),
        Msg::Doorbell(d) => repack(d, Msg::Doorbell),
        Msg::FreeDesc => repack(FreeDesc, |_| Msg::FreeDesc),
        Msg::Report(r) => repack(r, Msg::Report),
        Msg::Skip(s) => Err(Msg::Skip(s)),
    }
}

/// Downcast a message to a concrete type, panicking with a useful message
/// on mismatch (a mismatch is always a wiring bug, never a runtime input).
pub fn cast<T: 'static>(msg: Msg) -> Box<T> {
    let variant = msg.variant_name();
    try_cast::<T>(msg).unwrap_or_else(|m| {
        panic!(
            "message type mismatch: expected {}, got {variant} variant ({:?})",
            std::any::type_name::<T>(),
            m.variant_name(),
        )
    })
}

// ---- nodes and delivery context -----------------------------------------

/// A simulation actor.
///
/// `Any` is a supertrait so the harness can reach into concrete nodes
/// between runs (trait upcasting) for configuration and result collection.
pub trait Node: Any {
    /// Handle a message delivered at the current simulation time.
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg);

    /// Handle a **burst continuation**: after [`Node::on_msg`] handled a
    /// delivery, the engine probes the queue front; when the very next
    /// ready event is addressed to this node too, the remaining run of
    /// consecutive same-node events is drained through one `on_batch`
    /// call — the node checkout and the [`Ctx`] are reused instead of
    /// being rebuilt per event. (The first message always goes through
    /// `on_msg`: singleton deliveries — the common case — pay nothing for
    /// the coalescing machinery beyond one failed probe.)
    ///
    /// The default implementation drains the burst through [`Node::on_msg`]
    /// one message at a time, so plain nodes behave identically with
    /// bursting on or off. Hot nodes override this to hoist per-event work
    /// (pool borrows, counter handles) out of the inner loop — routing
    /// both `on_msg` and `on_batch` through one shared `deliver` helper.
    ///
    /// # Ordering contract
    ///
    /// [`MsgBurst::next`] yields exactly the messages the per-event engine
    /// would have delivered, in the same order and at the same times
    /// ([`Ctx::now`] advances per message): each call re-probes the queue
    /// front, so a send issued mid-burst to *another* node ends the burst
    /// at precisely the point the global `(time, enqueue-seq)` order
    /// requires. An override must (a) call `next` until it returns `None`
    /// and (b) be observationally identical to the default loop — same
    /// sends in the same order, same statistics. No reordering or
    /// cross-message fusion is permitted.
    fn on_batch(&mut self, ctx: &mut Ctx<'_>, burst: &mut MsgBurst) {
        while let Some(msg) = burst.next(ctx) {
            self.on_msg(ctx, msg);
        }
    }

    /// Called once when the node joins a simulation
    /// ([`Sim::add_node`] / [`Sim::fill_node`]). Nodes resolve their
    /// [`crate::CounterHandle`]s here so per-event paths never pay a
    /// string-keyed counter lookup.
    fn on_attach(&mut self, _stats: &mut Stats) {}

    /// Diagnostic name (used in panics and traces).
    fn name(&self) -> String {
        std::any::type_name::<Self>().to_string()
    }
}

/// Per-delivery context handed to a node. Outgoing sends are pushed
/// straight into the event queue, keyed `(time, band | per-source seq)`:
/// same-time sends from one node deliver in call order, and the key never
/// depends on what other nodes are doing (partition independence).
///
/// `rng` is the *receiving node's* private random stream, seeded from
/// `(sim seed, node id)` — stable across runs, engines, and shardings.
pub struct Ctx<'a> {
    now: Time,
    self_id: NodeId,
    queue: &'a mut Queue,
    /// Per-source send counter of `self_id` (low bits of the seq key).
    send_seq: &'a mut u64,
    /// `node_band(self_id)`, precomputed.
    seq_base: u64,
    /// Shard ownership mask (`None` in monolithic runs).
    owned: Option<&'a [bool]>,
    /// Outbox for sends addressed to nodes another shard owns.
    exports: &'a mut Vec<Envelope>,
    pub rng: &'a mut Rng,
    pub stats: &'a mut Stats,
    /// The simulation-wide frame-buffer pool: emitters outside the NICs
    /// (host stacks, the control plane) draw buffers here; fabric
    /// elements (switches, links, MAC queues) return dropped frames.
    pub pool: &'a mut PktBufPool,
    halt: &'a mut bool,
    /// Per-kind delivered-event counters, present only under
    /// `FLEXTOE_SIM_PROF=1` (burst continuations count through here).
    prof_kinds: Option<&'a mut [u64; N_MSG_KINDS]>,
}

impl<'a> Ctx<'a> {
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    #[inline]
    fn push(&mut self, time: Time, to: NodeId, msg: Msg) {
        let seq = self.seq_base | *self.send_seq;
        *self.send_seq += 1;
        debug_assert!(
            *self.send_seq < SEQ_BAND_SPAN,
            "per-source seq band overflow"
        );
        if let Some(owned) = self.owned {
            if !owned[to] {
                // Cross-shard hop: only link traversals (frames with
                // nonzero propagation — the conservative lookahead) may
                // cross a cut; anything else is a partitioning bug.
                match msg {
                    Msg::Frame(frame) => self.exports.push(Envelope {
                        time,
                        seq,
                        to,
                        frame,
                    }),
                    m => panic!(
                        "cross-shard send to node {to} must be a Frame on a cut link, got {}",
                        m.variant_name()
                    ),
                }
                return;
            }
        }
        self.queue.push(Ev { time, seq, to, msg });
    }

    /// Send `msg` to node `to`, arriving `delay` from now.
    #[inline]
    pub fn send<M: IntoMsg>(&mut self, to: NodeId, delay: Duration, msg: M) {
        self.push(self.now + delay, to, msg.into_msg());
    }

    /// Send an already-converted message (kept for call sites that build
    /// a [`Msg`] up front).
    #[inline]
    pub fn send_boxed(&mut self, to: NodeId, delay: Duration, msg: Msg) {
        self.push(self.now + delay, to, msg);
    }

    /// Send `msg` to node `to` at an absolute instant (>= now).
    #[inline]
    pub fn send_at<M: IntoMsg>(&mut self, to: NodeId, at: Time, msg: M) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.push(at.max(self.now), to, msg.into_msg());
    }

    /// Schedule a message to self.
    #[inline]
    pub fn wake<M: IntoMsg>(&mut self, delay: Duration, msg: M) {
        let id = self.self_id;
        self.send(id, delay, msg);
    }

    /// Stop the simulation after this handler returns (used by experiment
    /// terminators, e.g. "stop after N requests").
    pub fn halt(&mut self) {
        *self.halt = true;
    }
}

/// Ceiling on events delivered per [`Node::on_batch`] call. Keeps
/// [`Sim::step`] bounded (so `run_with_limit`'s runaway-loop guard still
/// fires on zero-delay cycles) without measurably limiting coalescing —
/// real bursts are far shorter.
const BURST_CAP: u64 = 64;

/// The lazily-drained event burst handed to [`Node::on_batch`]: the event
/// that started the delivery plus every immediately following queue-front
/// event addressed to the same node.
pub struct MsgBurst {
    to: NodeId,
    first: Option<Msg>,
    /// Deadline limit (`run_until`): events after it stay queued.
    limit: Option<Time>,
    /// Events yielded so far (the first message counts).
    count: u64,
    last_time: Time,
}

impl MsgBurst {
    /// The next message of the burst, or `None` when the queue front moves
    /// to another node, passes the deadline, hits the burst cap, or the
    /// simulation was halted. Advances [`Ctx::now`] to the message's
    /// delivery time.
    #[inline]
    pub fn next(&mut self, ctx: &mut Ctx<'_>) -> Option<Msg> {
        if let Some(m) = self.first.take() {
            return Some(m);
        }
        if *ctx.halt || self.count >= BURST_CAP {
            return None;
        }
        let ev = ctx.queue.pop_front_if(self.to, self.limit)?;
        debug_assert!(ev.time >= self.last_time, "burst time reversal");
        ctx.now = ev.time;
        self.count += 1;
        self.last_time = ev.time;
        if let Some(kinds) = ctx.prof_kinds.as_deref_mut() {
            kinds[ev.msg.kind_idx()] += 1;
        }
        Some(ev.msg)
    }

    /// The node this burst is addressed to.
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// Messages delivered through this burst so far.
    pub fn delivered(&self) -> u64 {
        self.count
    }
}

// ---- the event queue -----------------------------------------------------

pub(crate) struct Ev {
    pub(crate) time: Time,
    pub(crate) seq: u64,
    pub(crate) to: NodeId,
    pub(crate) msg: Msg,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which event-queue implementation a [`Sim`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueKind {
    /// Bucketed event wheel (calendar queue) — the default.
    Wheel,
    /// Plain `BinaryHeap` — the reference scheduler, kept for
    /// differential ordering tests and benchmarking.
    Heap,
}

enum Queue {
    Wheel(EventWheel),
    Heap(BinaryHeap<Ev>),
}

impl Queue {
    #[inline]
    fn push(&mut self, ev: Ev) {
        match self {
            Queue::Wheel(w) => w.push(ev),
            Queue::Heap(h) => h.push(ev),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Ev> {
        match self {
            Queue::Wheel(w) => w.pop(),
            Queue::Heap(h) => h.pop(),
        }
    }

    /// Pop the front event only if it targets `to` (and, when `limit` is
    /// given, is due no later than it) — the burst-continuation probe.
    #[inline]
    fn pop_front_if(&mut self, to: NodeId, limit: Option<Time>) -> Option<Ev> {
        match self {
            Queue::Wheel(w) => w.pop_front_if(to, limit),
            Queue::Heap(h) => {
                let front = h.peek()?;
                if front.to != to || limit.is_some_and(|l| front.time > l) {
                    return None;
                }
                h.pop()
            }
        }
    }

    fn next_time(&self) -> Option<Time> {
        match self {
            Queue::Wheel(w) => w.next_time(),
            Queue::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    fn len(&self) -> usize {
        match self {
            Queue::Wheel(w) => w.len(),
            Queue::Heap(h) => h.len(),
        }
    }
}

/// The simulation: event queue + nodes + RNG streams and statistics.
pub struct Sim {
    time: Time,
    /// Band-0 counter: externally scheduled events (schedule-call order).
    ext_seq: u64,
    queue: Queue,
    nodes: Vec<Option<Box<dyn Node>>>,
    node_names: Vec<String>,
    /// The constructor seed; per-node streams derive from it.
    seed: u64,
    /// Per-source runtime send counters (seq key low bits).
    send_seqs: Vec<u64>,
    /// Per-node random streams, seeded from `(seed, node id)` — delivery
    /// handlers draw from their own stream only ([`Ctx::rng`]), so draws
    /// are independent of global event interleaving.
    node_rngs: Vec<Rng>,
    /// Shard ownership mask (`None` = monolithic: this sim owns every
    /// node). Sends to non-owned nodes become [`Envelope`] exports;
    /// external schedules to them are dropped (the owning shard makes the
    /// identical call).
    owned: Option<Vec<bool>>,
    exports: Vec<Envelope>,
    /// Build-time random stream (ECMP salts, wiring-order draws).
    /// Delivery handlers use [`Ctx::rng`] — their per-node streams —
    /// instead.
    pub rng: Rng,
    pub stats: Stats,
    /// Simulation-wide recycled frame buffers (see [`Ctx::pool`]).
    pub frame_pool: PktBufPool,
    events_processed: u64,
    halt: bool,
    /// Per-node delivery coalescing (`step` drains bursts through
    /// [`Node::on_batch`]). On by default; `set_burst(false)` — or the
    /// `FLEXTOE_SIM_REFERENCE=1` / `FLEXTOE_SIM_NOBURST=1` environment
    /// knobs — select strict per-event delivery for differential runs.
    burst: bool,
    /// Wall-clock self-profiling (`FLEXTOE_SIM_PROF=1`): per-node
    /// (ns, events) accumulated around each delivery. Off by default —
    /// the check is one predictable branch per event.
    prof_enabled: bool,
    pub prof: Vec<(u64, u64)>,
    /// Delivered-event counts per [`Msg`] kind (profiling only).
    prof_kinds: [u64; N_MSG_KINDS],
    /// Burst-length histogram (profiling only): index = burst length,
    /// capped at [`BURST_CAP`].
    prof_burst: Vec<u64>,
}

impl Sim {
    /// New simulation on the default (event wheel) scheduler.
    pub fn new(seed: u64) -> Sim {
        Sim::with_queue(seed, QueueKind::Wheel)
    }

    /// New simulation on the reference `BinaryHeap` scheduler.
    pub fn with_reference_queue(seed: u64) -> Sim {
        Sim::with_queue(seed, QueueKind::Heap)
    }

    pub fn with_queue(seed: u64, kind: QueueKind) -> Sim {
        let env_on = |name: &str| std::env::var_os(name).is_some_and(|v| v == "1");
        // FLEXTOE_SIM_REFERENCE=1 forces the reference configuration
        // (BinaryHeap scheduler, per-event delivery) regardless of what
        // the caller selected — CI uses it to diff whole experiments
        // against the burst engine. FLEXTOE_SIM_NOBURST=1 disables only
        // the coalescing.
        let reference = env_on("FLEXTOE_SIM_REFERENCE");
        let kind = if reference { QueueKind::Heap } else { kind };
        Sim {
            time: Time::ZERO,
            ext_seq: 0,
            queue: match kind {
                QueueKind::Wheel => Queue::Wheel(EventWheel::new()),
                QueueKind::Heap => Queue::Heap(BinaryHeap::new()),
            },
            nodes: Vec::new(),
            node_names: Vec::new(),
            seed,
            send_seqs: Vec::new(),
            node_rngs: Vec::new(),
            owned: None,
            exports: Vec::new(),
            rng: Rng::new(seed),
            stats: Stats::new(),
            frame_pool: PktBufPool::new(SIM_POOL_BOUND),
            events_processed: 0,
            halt: false,
            burst: !reference && !env_on("FLEXTOE_SIM_NOBURST"),
            prof_enabled: env_on("FLEXTOE_SIM_PROF"),
            prof: Vec::new(),
            prof_kinds: [0; N_MSG_KINDS],
            prof_burst: Vec::new(),
        }
    }

    /// Enable/disable per-node delivery coalescing (on by default). The
    /// delivery order — and therefore every simulated result — is
    /// identical either way; only wall-clock behavior differs.
    pub fn set_burst(&mut self, on: bool) {
        self.burst = on;
    }

    pub fn burst_enabled(&self) -> bool {
        self.burst
    }

    /// Enable/disable the event profiler programmatically (same switch
    /// as `FLEXTOE_SIM_PROF=1`; the profile vectors grow lazily, so
    /// this works any time before `run`). Simulated results are
    /// identical either way — profiling only observes wall time and
    /// event counts.
    pub fn set_prof(&mut self, on: bool) {
        self.prof_enabled = on;
    }

    /// Per-node-name wall-time totals (requires `FLEXTOE_SIM_PROF=1`),
    /// sorted by time descending: `(name, ns, events)`.
    pub fn prof_dump(&self) -> Vec<(String, u64, u64)> {
        let mut agg: std::collections::HashMap<String, (u64, u64)> = Default::default();
        for (i, &(ns, n)) in self.prof.iter().enumerate() {
            if n > 0 {
                let e = agg.entry(self.node_names[i].clone()).or_default();
                e.0 += ns;
                e.1 += n;
            }
        }
        let mut v: Vec<(String, u64, u64)> = agg.into_iter().map(|(k, (a, b))| (k, a, b)).collect();
        v.sort_by_key(|x| std::cmp::Reverse(x.1));
        v
    }

    /// Delivered-event counts per message kind (requires
    /// `FLEXTOE_SIM_PROF=1`), non-zero kinds sorted descending:
    /// `(kind name, events)`.
    pub fn prof_kind_dump(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<(&'static str, u64)> = MSG_KIND_NAMES
            .iter()
            .zip(self.prof_kinds.iter())
            .filter(|(_, &n)| n > 0)
            .map(|(&name, &n)| (name, n))
            .collect();
        v.sort_by_key(|x| std::cmp::Reverse(x.1));
        v
    }

    /// Burst-length histogram (requires `FLEXTOE_SIM_PROF=1`): non-empty
    /// `(burst length, bursts)` entries, ascending. The last bucket
    /// aggregates bursts at the engine's cap.
    pub fn prof_burst_hist(&self) -> Vec<(usize, u64)> {
        self.prof_burst
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(len, &n)| (len, n))
            .collect()
    }

    pub fn now(&self) -> Time {
        self.time
    }

    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events currently queued (diagnostics).
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Register per-node engine state for a new slot: the private random
    /// stream (a pure function of `(seed, id)`) and the send counter.
    fn register_slot(&mut self) -> NodeId {
        let id = self.nodes.len();
        assert!(id <= MAX_NODE_ID, "node id {id} exceeds the seq band space");
        assert!(
            self.owned.is_none(),
            "add every node before set_owned (ownership mask is fixed-size)"
        );
        self.send_seqs.push(0);
        self.node_rngs.push(Rng::new(
            self.seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ));
        id
    }

    /// Add a node; returns its id.
    pub fn add_node<N: Node>(&mut self, mut node: N) -> NodeId {
        let id = self.register_slot();
        node.on_attach(&mut self.stats);
        self.node_names.push(node.name());
        self.nodes.push(Some(Box::new(node)));
        id
    }

    /// Reserve a node slot to be filled later (for cyclic wiring).
    pub fn reserve_node(&mut self) -> NodeId {
        let id = self.register_slot();
        self.node_names.push("<reserved>".to_string());
        self.nodes.push(None);
        id
    }

    /// Fill a reserved slot.
    pub fn fill_node<N: Node>(&mut self, id: NodeId, mut node: N) {
        assert!(self.nodes[id].is_none(), "slot {id} already filled");
        node.on_attach(&mut self.stats);
        self.node_names[id] = node.name();
        self.nodes[id] = Some(Box::new(node));
    }

    /// Mutable access to a concrete node (configuration, result harvest).
    pub fn node_mut<N: Node>(&mut self, id: NodeId) -> &mut N {
        let node = self.nodes[id]
            .as_mut()
            .unwrap_or_else(|| panic!("node {id} is vacant"));
        let any: &mut dyn Any = node.as_mut();
        any.downcast_mut::<N>().unwrap_or_else(|| {
            panic!(
                "node {id} is {}, not {}",
                std::any::type_name::<N>(),
                std::any::type_name::<N>()
            )
        })
    }

    /// Shared access to a concrete node.
    pub fn node_ref<N: Node>(&self, id: NodeId) -> &N {
        let node = self.nodes[id]
            .as_ref()
            .unwrap_or_else(|| panic!("node {id} is vacant"));
        let any: &dyn Any = node.as_ref();
        any.downcast_ref::<N>()
            .unwrap_or_else(|| panic!("node {id} has unexpected type"))
    }

    /// Schedule a message from outside any handler (experiment kick-off).
    pub fn schedule<M: IntoMsg>(&mut self, at: Time, to: NodeId, msg: M) {
        self.push(at.max(self.time), to, msg.into_msg());
    }

    pub fn schedule_in<M: IntoMsg>(&mut self, delay: Duration, to: NodeId, msg: M) {
        self.push(self.time + delay, to, msg.into_msg());
    }

    #[inline]
    fn push(&mut self, time: Time, to: NodeId, msg: Msg) {
        // Band 0: externally scheduled ties deliver in schedule-call
        // order. Under sharding every shard makes the identical schedule
        // calls, so the counter stays aligned; calls addressed to nodes
        // another shard owns are dropped here (the owner enqueues them).
        let seq = self.ext_seq;
        self.ext_seq += 1;
        debug_assert!(seq < SEQ_BAND_SPAN, "external event band overflow");
        if let Some(owned) = &self.owned {
            if !owned[to] {
                return;
            }
        }
        self.queue.push(Ev { time, seq, to, msg });
    }

    // ---- shard ownership (see `flextoe-shard`) ---------------------------

    /// Restrict this sim to the nodes marked `true`: runtime frames sent
    /// to other nodes become [`Envelope`] exports ([`Sim::take_exports`]),
    /// external schedules to them are dropped (counting the band-0 seq
    /// either way). Call once, after the full — and partition-independent
    /// — build. Monolithic runs never call this.
    pub fn set_owned(&mut self, owned: Vec<bool>) {
        assert_eq!(
            owned.len(),
            self.nodes.len(),
            "ownership mask must cover every node"
        );
        assert_eq!(self.time, Time::ZERO, "set_owned must precede the run");
        // Build-time schedules (app kickoffs, fault events) are already
        // queued: purge the ones addressed to ghost nodes, keys intact,
        // on a fresh queue (draining may have rotated the wheel window).
        let mut kept = Vec::with_capacity(self.queue.len());
        while let Some(ev) = self.queue.pop() {
            if owned[ev.to] {
                kept.push(ev);
            }
        }
        self.queue = match self.queue {
            Queue::Wheel(_) => Queue::Wheel(EventWheel::new()),
            Queue::Heap(_) => Queue::Heap(BinaryHeap::new()),
        };
        for ev in kept {
            self.queue.push(ev);
        }
        self.owned = Some(owned);
    }

    /// Does this sim own (execute) node `id`? Always true in monolithic
    /// runs, so harvest code can filter by ownership unconditionally.
    #[inline]
    pub fn owns(&self, id: NodeId) -> bool {
        self.owned.as_ref().is_none_or(|o| o[id])
    }

    /// Admit a cross-shard envelope under its original delivery key. The
    /// conservative synchronizer guarantees `env.time` is not in this
    /// shard's past.
    pub fn import(&mut self, env: Envelope) {
        debug_assert!(env.time >= self.time, "cross-shard import in the past");
        self.queue.push(Ev {
            time: env.time,
            seq: env.seq,
            to: env.to,
            msg: Msg::Frame(env.frame),
        });
    }

    /// Drain the envelopes exported since the last call.
    pub fn take_exports(&mut self) -> Vec<Envelope> {
        std::mem::take(&mut self.exports)
    }

    /// Number of node slots (partitioners size ownership maps from this).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Deliver the next event — and, with bursting enabled, every
    /// immediately following queue-front event addressed to the same node
    /// (see [`Node::on_batch`]). Returns `false` when the queue is empty
    /// or the simulation was halted.
    pub fn step(&mut self) -> bool {
        self.step_limit(None)
    }

    /// [`Sim::step`] with an optional burst deadline: burst continuation
    /// never delivers an event later than `limit` (the first event is the
    /// caller's responsibility — `run_until` checks `next_time` first).
    fn step_limit(&mut self, limit: Option<Time>) -> bool {
        if self.halt {
            return false;
        }
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.time, "event queue time reversal");
        self.time = ev.time;

        let to = ev.to;
        let mut node = self.nodes[to].take().unwrap_or_else(|| {
            panic!(
                "message delivered to vacant node {} ({})",
                to, self.node_names[to]
            )
        });
        let t0 = self.prof_enabled.then(std::time::Instant::now);
        if self.prof_enabled {
            self.prof_kinds[ev.msg.kind_idx()] += 1;
        }
        let mut count = 1u64;
        let mut last_time = ev.time;
        {
            let mut ctx = Ctx {
                now: self.time,
                self_id: to,
                queue: &mut self.queue,
                send_seq: &mut self.send_seqs[to],
                seq_base: node_band(to),
                owned: self.owned.as_deref(),
                exports: &mut self.exports,
                rng: &mut self.node_rngs[to],
                stats: &mut self.stats,
                pool: &mut self.frame_pool,
                halt: &mut self.halt,
                prof_kinds: if self.prof_enabled {
                    Some(&mut self.prof_kinds)
                } else {
                    None
                },
            };
            // Deliver the first message through the plain path: bursts of
            // one are by far the common case, and this keeps them free of
            // any coalescing overhead beyond a single follow-up probe.
            node.on_msg(&mut ctx, ev.msg);
            if self.burst && !*ctx.halt {
                // the probe: is the very next event ours too?
                if let Some(ev2) = ctx.queue.pop_front_if(to, limit) {
                    ctx.now = ev2.time;
                    if let Some(kinds) = ctx.prof_kinds.as_deref_mut() {
                        kinds[ev2.msg.kind_idx()] += 1;
                    }
                    let mut burst = MsgBurst {
                        to,
                        first: Some(ev2.msg),
                        limit,
                        count: 2,
                        last_time: ev2.time,
                    };
                    node.on_batch(&mut ctx, &mut burst);
                    if let Some(m) = burst.first.take() {
                        // an on_batch override that never called next()
                        // violates the drain contract; deliver the
                        // stranded message rather than losing it
                        debug_assert!(false, "on_batch left its burst undrained");
                        node.on_msg(&mut ctx, m);
                    }
                    count = burst.count;
                    last_time = burst.last_time;
                }
            }
        }
        self.time = last_time;
        self.events_processed += count;
        if let Some(t0) = t0 {
            if self.prof.len() <= to {
                self.prof.resize(to + 1, (0, 0));
            }
            let p = &mut self.prof[to];
            p.0 += t0.elapsed().as_nanos() as u64;
            p.1 += count;
            let cap = BURST_CAP as usize;
            if self.prof_burst.len() <= cap {
                self.prof_burst.resize(cap + 1, 0);
            }
            self.prof_burst[(count as usize).min(cap)] += 1;
        }
        self.nodes[to] = Some(node);
        true
    }

    /// Run until the queue drains, the halt flag is set, or `deadline` is
    /// reached (events at exactly `deadline` are delivered — including
    /// ones scheduled *during* the final burst via the same-slot
    /// direct-drain path). Bursts are deadline-limited, so the post-burst
    /// clock never overshoots `deadline`.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(t) = self.queue.next_time() {
            if t > deadline || self.halt {
                break;
            }
            self.step_limit(Some(deadline));
        }
        if !self.halt {
            self.time = self
                .time
                .max(deadline.min(self.next_event_time().unwrap_or(deadline)));
        }
    }

    /// Run until nothing is left or halted. Panics after `limit` events to
    /// catch runaway zero-delay loops.
    pub fn run_with_limit(&mut self, limit: u64) {
        let start = self.events_processed;
        while self.step() {
            if self.events_processed - start > limit {
                panic!("event limit {limit} exceeded — zero-delay loop?");
            }
        }
    }

    pub fn run(&mut self) {
        while self.step() {}
    }

    pub fn next_event_time(&self) -> Option<Time> {
        self.queue.next_time()
    }

    pub fn halted(&self) -> bool {
        self.halt
    }

    pub fn clear_halt(&mut self) {
        self.halt = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_kinds(f: impl Fn(QueueKind)) {
        f(QueueKind::Wheel);
        f(QueueKind::Heap);
    }

    struct Echo {
        peer: Option<NodeId>,
        hops_left: u32,
        log: Vec<(u64, u32)>, // (ns, hops_left at receipt)
    }

    struct Ball(u32);
    crate::custom_msg!(Ball);

    impl Node for Echo {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let ball = cast::<Ball>(msg);
            self.log.push((ctx.now().as_ns(), ball.0));
            self.hops_left = ball.0;
            if ball.0 > 0 {
                if let Some(peer) = self.peer {
                    ctx.send(peer, Duration::from_ns(10), Ball(ball.0 - 1));
                }
            }
        }
    }

    #[test]
    fn ping_pong_timing() {
        both_kinds(|kind| {
            let mut sim = Sim::with_queue(1, kind);
            let a = sim.reserve_node();
            let b = sim.add_node(Echo {
                peer: Some(a),
                hops_left: 0,
                log: vec![],
            });
            sim.fill_node(
                a,
                Echo {
                    peer: Some(b),
                    hops_left: 0,
                    log: vec![],
                },
            );
            sim.schedule(Time::ZERO, a, Ball(4));
            sim.run();
            let ea = sim.node_ref::<Echo>(a);
            let eb = sim.node_ref::<Echo>(b);
            assert_eq!(ea.log, vec![(0, 4), (20, 2), (40, 0)]);
            assert_eq!(eb.log, vec![(10, 3), (30, 1)]);
            assert_eq!(sim.now().as_ns(), 40);
            assert_eq!(sim.events_processed(), 5);
        });
    }

    struct Recorder {
        seen: Vec<u32>,
    }
    impl Node for Recorder {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            self.seen.push(*cast::<u32>(msg));
        }
    }

    #[test]
    fn fifo_tiebreak_at_same_time() {
        both_kinds(|kind| {
            let mut sim = Sim::with_queue(1, kind);
            let r = sim.add_node(Recorder { seen: vec![] });
            for i in 0..10u32 {
                sim.schedule(Time::from_ns(5), r, i);
            }
            sim.run();
            assert_eq!(
                sim.node_ref::<Recorder>(r).seen,
                (0..10).collect::<Vec<_>>()
            );
        });
    }

    #[test]
    fn run_until_stops_at_deadline() {
        both_kinds(|kind| {
            let mut sim = Sim::with_queue(1, kind);
            let r = sim.add_node(Recorder { seen: vec![] });
            sim.schedule(Time::from_ns(10), r, 1u32);
            sim.schedule(Time::from_ns(20), r, 2u32);
            sim.schedule(Time::from_ns(30), r, 3u32);
            sim.run_until(Time::from_ns(20));
            assert_eq!(sim.node_ref::<Recorder>(r).seen, vec![1, 2]);
            sim.run();
            assert_eq!(sim.node_ref::<Recorder>(r).seen, vec![1, 2, 3]);
        });
    }

    struct Halter;
    impl Node for Halter {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.halt();
        }
    }

    #[test]
    fn halt_stops_immediately() {
        let mut sim = Sim::new(1);
        let h = sim.add_node(Halter);
        let r = sim.add_node(Recorder { seen: vec![] });
        sim.schedule(Time::from_ns(1), h, Tick);
        sim.schedule(Time::from_ns(2), r, 9u32);
        sim.run();
        assert!(sim.halted());
        assert!(sim.node_ref::<Recorder>(r).seen.is_empty());
    }

    struct SelfWaker {
        fired: u32,
    }
    impl Node for SelfWaker {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            self.fired += 1;
            if self.fired < 5 {
                ctx.wake(Duration::from_us(1), Tick);
            }
        }
    }

    #[test]
    fn self_wake_polling_loop() {
        let mut sim = Sim::new(1);
        let w = sim.add_node(SelfWaker { fired: 0 });
        sim.schedule(Time::ZERO, w, Tick);
        sim.run();
        assert_eq!(sim.node_ref::<SelfWaker>(w).fired, 5);
        assert_eq!(sim.now().as_us(), 4);
    }

    #[test]
    fn determinism_across_runs_and_queues() {
        let run = |seed, kind| {
            let mut sim = Sim::with_queue(seed, kind);
            let r = sim.add_node(Recorder { seen: vec![] });
            for _ in 0..100 {
                let d = Duration::from_ns(sim.rng.below(1000));
                let v = sim.rng.next_u32();
                sim.schedule_in(d, r, v);
            }
            sim.run();
            sim.node_ref::<Recorder>(r).seen.clone()
        };
        assert_eq!(run(99, QueueKind::Wheel), run(99, QueueKind::Wheel));
        assert_ne!(run(99, QueueKind::Wheel), run(100, QueueKind::Wheel));
        // the wheel and the reference heap deliver identical orders
        assert_eq!(run(99, QueueKind::Wheel), run(99, QueueKind::Heap));
        assert_eq!(run(1234, QueueKind::Wheel), run(1234, QueueKind::Heap));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn zero_delay_loop_detected() {
        struct Looper;
        impl Node for Looper {
            fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
                ctx.wake(Duration::ZERO, Tick);
            }
        }
        let mut sim = Sim::new(1);
        let l = sim.add_node(Looper);
        sim.schedule(Time::ZERO, l, Tick);
        sim.run_with_limit(1000);
    }

    #[test]
    fn try_cast_returns_msg_on_mismatch() {
        let m: Msg = Msg::custom(42u32);
        let m = try_cast::<String>(m).unwrap_err();
        assert_eq!(*cast::<u32>(m), 42);
    }

    #[test]
    fn typed_variants_survive_compat_cast() {
        // dispatch chains written against the old type-erased engine keep
        // working on typed variants via the repack path
        let m = Tick.into_msg();
        let m = try_cast::<Frame>(m).unwrap_err();
        assert!(try_cast::<Tick>(m).is_ok());

        let m = Frame::raw(vec![1, 2, 3]).into_msg();
        let m = try_cast::<MacTx>(m).unwrap_err();
        assert_eq!(cast::<Frame>(m).bytes, vec![1, 2, 3]);

        let m = MacTx(Frame::raw(vec![9])).into_msg();
        assert_eq!(cast::<MacTx>(m).0.bytes, vec![9]);

        let m = 7u64.into_msg();
        assert_eq!(*cast::<u64>(m), 7);
    }

    #[test]
    #[should_panic(expected = "message type mismatch")]
    fn cast_mismatch_panics_with_variant() {
        let _ = cast::<Frame>(Tick.into_msg());
    }

    /// A handler that fires at exactly the `run_until` deadline and
    /// schedules zero-delay work (which arrives via the wheel's same-slot
    /// direct-drain lane) still gets that work delivered inside the same
    /// `run_until` call — events at exactly `deadline` are in scope no
    /// matter which path they took into the queue.
    #[test]
    fn run_until_delivers_deadline_events_from_direct_drain() {
        struct Chain {
            peer: NodeId,
            left: u32,
        }
        impl Node for Chain {
            fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
                if self.left > 0 {
                    self.left -= 1;
                    ctx.send(self.peer, Duration::ZERO, Tick);
                }
            }
        }
        both_kinds(|kind| {
            let mut sim = Sim::with_queue(1, kind);
            let r = sim.reserve_node();
            let a = sim.add_node(Chain { peer: r, left: 3 });
            sim.fill_node(r, Chain { peer: a, left: 3 });
            let deadline = Time::from_ns(50);
            sim.schedule(deadline, a, Tick);
            // a later event that must stay queued
            sim.schedule(Time::from_ns(60), a, Tick);
            sim.run_until(deadline);
            // kickoff + 6 zero-delay hops, all at exactly t=deadline
            assert_eq!(sim.events_processed(), 7);
            assert_eq!(sim.now(), deadline);
            assert_eq!(sim.events_pending(), 1);
        });
    }

    /// Bursting is transparent: per-event delivery (reference) and burst
    /// delivery produce identical logs and identical `events_processed`.
    #[test]
    fn burst_and_per_event_delivery_are_identical() {
        let run = |burst: bool| {
            let mut sim = Sim::new(7);
            sim.set_burst(burst);
            let r = sim.add_node(Recorder { seen: vec![] });
            // several same-timestamp trains (classic burst shape) plus
            // spread-out singles
            for i in 0..40u32 {
                sim.schedule(Time::from_ns((i / 8) as u64 * 100), r, i);
            }
            sim.run();
            (
                sim.node_ref::<Recorder>(r).seen.clone(),
                sim.events_processed(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    /// A node overriding `on_batch` sees every message of its burst, in
    /// order, with `Ctx::now` advancing per message.
    #[test]
    fn on_batch_override_observes_whole_burst() {
        struct Batcher {
            bursts: Vec<Vec<(u64, u64)>>, // per burst: (ns, token)
        }
        impl Node for Batcher {
            fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
                let Msg::Token(v) = msg else { panic!() };
                self.bursts.push(vec![(ctx.now().as_ns(), v)]);
            }
            fn on_batch(&mut self, ctx: &mut Ctx<'_>, burst: &mut MsgBurst) {
                let mut got = Vec::new();
                while let Some(msg) = burst.next(ctx) {
                    let Msg::Token(v) = msg else { panic!() };
                    got.push((ctx.now().as_ns(), v));
                }
                self.bursts.push(got);
            }
        }
        let mut sim = Sim::new(1);
        let b = sim.add_node(Batcher { bursts: vec![] });
        let other = sim.add_node(Recorder { seen: vec![] });
        for i in 0..5u64 {
            sim.schedule(Time::from_ns(10), b, i);
        }
        // an interleaved event for another node at a later time ends the
        // burst there
        sim.schedule(Time::from_ns(20), other, 99u32);
        sim.schedule(Time::from_ns(30), b, 7u64);
        sim.run();
        let bursts = &sim.node_ref::<Batcher>(b).bursts;
        // the first message of a train goes through on_msg (singleton
        // fast path); the rest of the run arrives as one on_batch call
        assert_eq!(bursts[0], vec![(10, 0)]);
        assert_eq!(
            bursts[1],
            vec![(10, 1), (10, 2), (10, 3), (10, 4)],
            "rest of the same-time train in one burst continuation"
        );
        assert_eq!(bursts[2], vec![(30, 7)]);
        assert_eq!(sim.events_processed(), 7);
    }

    /// `ctx.halt()` inside a burst stops further burst continuation.
    #[test]
    fn halt_ends_burst_immediately() {
        struct HaltOnSecond {
            seen: u32,
        }
        impl Node for HaltOnSecond {
            fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
                self.seen += 1;
                if self.seen == 2 {
                    ctx.halt();
                }
            }
        }
        let mut sim = Sim::new(1);
        let h = sim.add_node(HaltOnSecond { seen: 0 });
        for _ in 0..5 {
            sim.schedule(Time::from_ns(1), h, Tick);
        }
        sim.run();
        assert!(sim.halted());
        assert_eq!(sim.node_ref::<HaltOnSecond>(h).seen, 2);
        assert_eq!(sim.events_processed(), 2);
        assert_eq!(sim.events_pending(), 3);
    }

    /// Ownership masks turn cross-boundary frames into exports with the
    /// key a monolithic run would have used, and `import` delivers them
    /// under that key. External schedules to ghost nodes burn their
    /// band-0 seq but deliver nothing.
    #[test]
    fn ownership_exports_and_imports_round_trip() {
        struct Fwd {
            peer: NodeId,
        }
        impl Node for Fwd {
            fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
                let f = cast::<Frame>(msg);
                ctx.send(self.peer, Duration::from_ns(500), *f);
            }
        }
        struct Sink {
            got: Vec<(u64, Vec<u8>)>,
        }
        impl Node for Sink {
            fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
                let f = cast::<Frame>(msg);
                self.got.push((ctx.now().as_ns(), f.bytes.clone()));
            }
        }

        // shard 0 owns the forwarder, shard 1 owns the sink; both build
        // the identical two-node sim
        let build = || {
            let mut sim = Sim::new(5);
            let sink = sim.reserve_node();
            let fwd = sim.add_node(Fwd { peer: sink });
            sim.fill_node(sink, Sink { got: vec![] });
            sim.schedule(Time::from_ns(10), fwd, Frame::raw(vec![7, 7]));
            // ghost-dropped on shard 0, delivered on shard 1
            sim.schedule(Time::from_ns(5), sink, Frame::raw(vec![1]));
            (sim, sink, fwd)
        };
        let (mut s0, sink, fwd) = build();
        s0.set_owned({
            let mut m = vec![false; s0.n_nodes()];
            m[fwd] = true;
            m
        });
        let (mut s1, _, _) = build();
        s1.set_owned({
            let mut m = vec![false; s1.n_nodes()];
            m[sink] = true;
            m
        });

        s0.run_until(Time::from_us(1));
        let exports = s0.take_exports();
        assert_eq!(exports.len(), 1);
        assert_eq!(exports[0].to, sink);
        assert_eq!(exports[0].time, Time::from_ns(510));
        s1.run_until(Time::from_ns(400));
        for env in exports {
            s1.import(env);
        }
        s1.run_until(Time::from_us(1));
        assert_eq!(
            s1.node_ref::<Sink>(sink).got,
            vec![(5, vec![1]), (510, vec![7, 7])]
        );
        // each event ran on exactly one shard
        assert_eq!(s0.events_processed() + s1.events_processed(), 3);
    }

    /// Per-node RNG streams depend only on `(seed, node id)` — a node
    /// draws the same values no matter what other nodes do around it.
    #[test]
    fn node_rng_streams_are_interleaving_independent() {
        struct Drawer {
            vals: Vec<u64>,
        }
        impl Node for Drawer {
            fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
                self.vals.push(ctx.rng.next_u64());
            }
        }
        let run = |noise: bool| {
            let mut sim = Sim::new(42);
            let a = sim.add_node(Drawer { vals: vec![] });
            let b = sim.add_node(Drawer { vals: vec![] });
            for i in 0..5u64 {
                sim.schedule(Time::from_ns(10 * i), a, Tick);
                if noise {
                    sim.schedule(Time::from_ns(10 * i), b, Tick);
                    sim.schedule(Time::from_ns(10 * i + 5), b, Tick);
                }
            }
            sim.run();
            sim.node_ref::<Drawer>(a).vals.clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn far_future_timers_through_overflow() {
        // exercise the wheel's overflow heap: ms-scale timers (RTO) far
        // beyond the wheel horizon, interleaved with near events
        let mut sim = Sim::new(1);
        let r = sim.add_node(Recorder { seen: vec![] });
        sim.schedule(Time::from_ms(250), r, 4u32);
        sim.schedule(Time::from_ns(5), r, 1u32);
        sim.schedule(Time::from_ms(2), r, 3u32);
        sim.schedule(Time::from_us(80), r, 2u32);
        sim.run();
        assert_eq!(sim.node_ref::<Recorder>(r).seen, vec![1, 2, 3, 4]);
        assert_eq!(sim.now().as_us(), 250_000);
    }
}
