//! The discrete-event engine.
//!
//! A simulation is a set of [`Node`]s (pipeline-stage FPCs, host cores,
//! links, switch ports, …) exchanging timestamped messages through a global
//! event queue. Execution is single-threaded and fully deterministic: ties
//! in time are broken by enqueue order, and all randomness flows from one
//! seeded generator.
//!
//! Latency travels in messages; genuinely shared memory (socket payload
//! buffers, context queues, NIC memories) is shared via `Rc<RefCell<…>>`
//! outside the engine, mirroring the real system's shared-memory design,
//! with *access costs* charged through the hardware model.
//!
//! # Messages
//!
//! [`Msg`] is an enum whose variants cover the data-path's hot message
//! vocabulary — raw frames, MAC egress submissions, pooled pipeline work
//! tokens, DMA transfer requests/completions, scheduler and context-queue
//! tokens — so the per-event fast path never touches the heap. Everything
//! else (control-plane requests, application messages, test fixtures)
//! rides in [`Msg::Custom`], a type-erased box with exactly the semantics
//! the engine had before the typed core: [`cast`] / [`try_cast`] keep
//! working for every message type, typed variants included.
//!
//! # Scheduling
//!
//! The default event queue is a bucketed event wheel (calendar queue,
//! [`crate::wheel`]) with a binary-heap overflow for far-future timers;
//! [`Sim::with_reference_queue`] selects the plain `BinaryHeap` reference
//! scheduler instead. Both deliver the exact same total order —
//! `(time, enqueue seq)` — which the integration suite proves by
//! differential testing.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::pool::{PktBufPool, SIM_POOL_BOUND};
use crate::rng::Rng;
use crate::stats::Stats;
use crate::time::{Duration, Time};
use crate::wheel::EventWheel;
use flextoe_wire::Frame;

/// Identifies a node within one simulation.
pub type NodeId = usize;

// ---- typed message vocabulary -------------------------------------------

/// A pooled pipeline work item: a slot in the owning NIC's work pool plus
/// the pipeline entry sequence number (`None` until the sequencer assigns
/// one). The engine never looks inside the pool — stages of one NIC share
/// it outside the message, exactly like the real system's NIC memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkToken {
    pub slot: u32,
    pub entry_seq: Option<u64>,
}

/// A frame submitted by the data-path to a MAC block for egress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MacTx(pub Frame);

/// A finished frame travelling to the sequencer for NBI admission (§3.2
/// of the paper): restored to protocol-emission order per flow group.
#[derive(Clone, Debug)]
pub struct NbiFrame {
    pub group: u32,
    pub nbi_seq: u64,
    pub frame: Frame,
}

/// An asynchronous transfer request to an engine node (the PCIe DMA
/// block). On completion the engine sends [`Msg::XferDone`] carrying
/// `token` back to `reply_to`; the token is an index the requester
/// interprets against its own pending table (no allocation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XferReq {
    pub bytes: u32,
    /// Direction: true = device writes host memory, false = reads it.
    pub write: bool,
    pub reply_to: NodeId,
    pub token: u64,
}

/// Completion of an [`XferReq`]. `to` is the requester the engine routes
/// the completion to (receivers can ignore it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XferDone {
    pub token: u64,
    pub to: NodeId,
}

/// Flow-scheduler feedback: the authoritative sendable-byte count for a
/// connection after the protocol stage ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsUpdate {
    pub conn: u32,
    pub sendable: u32,
}

/// MMIO doorbell to the context-queue stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Doorbell {
    pub ctx: u16,
}

/// Return one HC descriptor credit to the context-queue stage pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreeDesc;

/// A generic unit tick message for self-scheduled polling loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tick;

/// A sealed congestion-report batch travelling out-of-band from the
/// data-path measurement layer to the control plane. The payload is a
/// slot index into the NIC's shared report pool (`flextoe-ccp`): many
/// flow reports ride one message, and the buffers are pooled — no
/// allocation on the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReportBatchToken {
    pub slot: u32,
    /// The batch carries an urgent event (fast retransmit).
    pub urgent: bool,
}

/// A simulation message. Hot data-path messages are inline enum payloads
/// (no heap allocation per event); everything else is `Custom`.
#[derive(Debug)]
pub enum Msg {
    /// Generic tick for self-scheduled polling loops.
    Tick,
    /// A raw Ethernet frame on the wire / NBI ingress.
    Frame(Frame),
    /// A frame handed to a MAC block for egress.
    MacTx(MacTx),
    /// A pooled pipeline work item travelling between data-path stages.
    Work(WorkToken),
    /// A pipeline entry sequence number that left the pipeline early
    /// (dropped / redirected) — the sequencer's reorderer skips it.
    Skip(u64),
    /// A finished frame for NBI admission.
    Nbi(NbiFrame),
    /// Asynchronous transfer request (PCIe DMA).
    Xfer(XferReq),
    /// Transfer completion token, routed back to the requester.
    XferDone(XferDone),
    /// A small scalar token (self-wake markers, port ids, …).
    Token(u64),
    /// Flow-scheduler sendable update.
    FsUpdate(FsUpdate),
    /// Context-queue doorbell.
    Doorbell(Doorbell),
    /// Context-queue descriptor credit return.
    FreeDesc,
    /// A sealed congestion-report batch (pooled slot token).
    Report(ReportBatchToken),
    /// Anything else: control-plane, application and test messages.
    Custom(Box<dyn Any>),
}

impl Msg {
    /// Wrap an arbitrary value as a custom (type-erased) message.
    pub fn custom<T: Any>(value: T) -> Msg {
        Msg::Custom(Box::new(value))
    }

    pub fn variant_name(&self) -> &'static str {
        match self {
            Msg::Tick => "Tick",
            Msg::Frame(_) => "Frame",
            Msg::MacTx(_) => "MacTx",
            Msg::Work(_) => "Work",
            Msg::Skip(_) => "Skip",
            Msg::Nbi(_) => "Nbi",
            Msg::Xfer(_) => "Xfer",
            Msg::XferDone(_) => "XferDone",
            Msg::Token(_) => "Token",
            Msg::FsUpdate(_) => "FsUpdate",
            Msg::Doorbell(_) => "Doorbell",
            Msg::FreeDesc => "FreeDesc",
            Msg::Report(_) => "Report",
            Msg::Custom(_) => "Custom",
        }
    }
}

/// Conversion of a concrete message value into [`Msg`]. Hot data-path
/// types map to inline variants; custom message types opt in with
/// [`crate::custom_msg!`], which wraps them in [`Msg::Custom`].
pub trait IntoMsg {
    fn into_msg(self) -> Msg;
}

impl IntoMsg for Msg {
    #[inline]
    fn into_msg(self) -> Msg {
        self
    }
}

macro_rules! inline_msg {
    ($($ty:ident => $variant:ident),* $(,)?) => {
        $(impl IntoMsg for $ty {
            #[inline]
            fn into_msg(self) -> Msg {
                Msg::$variant(self)
            }
        })*
    };
}

inline_msg!(
    Frame => Frame,
    MacTx => MacTx,
    WorkToken => Work,
    NbiFrame => Nbi,
    XferReq => Xfer,
    XferDone => XferDone,
    FsUpdate => FsUpdate,
    Doorbell => Doorbell,
    ReportBatchToken => Report,
);

impl IntoMsg for Tick {
    #[inline]
    fn into_msg(self) -> Msg {
        Msg::Tick
    }
}

impl IntoMsg for FreeDesc {
    #[inline]
    fn into_msg(self) -> Msg {
        Msg::FreeDesc
    }
}

impl IntoMsg for u64 {
    #[inline]
    fn into_msg(self) -> Msg {
        Msg::Token(self)
    }
}

/// Register custom message types: generates [`IntoMsg`] impls that route
/// the value through [`Msg::Custom`]. Use in the crate that owns the type.
#[macro_export]
macro_rules! custom_msg {
    ($($ty:ty),* $(,)?) => {
        $(impl $crate::IntoMsg for $ty {
            #[inline]
            fn into_msg(self) -> $crate::Msg {
                $crate::Msg::Custom(Box::new(self))
            }
        })*
    };
}

// u32 is the conventional scalar payload in unit tests.
custom_msg!(u32);

/// Compatibility downcast helper: re-box a typed variant's payload so a
/// `cast::<T>` / `try_cast::<T>` written against the old fully-type-erased
/// engine still observes the same types. Costs an allocation, so hot
/// receivers match on [`Msg`] directly instead.
fn repack<T: 'static, U: Any>(value: U, back: impl FnOnce(U) -> Msg) -> Result<Box<T>, Msg> {
    let boxed: Box<dyn Any> = Box::new(value);
    boxed
        .downcast::<T>()
        .map_err(|b| back(*b.downcast::<U>().expect("repack round-trip")))
}

/// Downcast a message, returning it back on mismatch.
///
/// Typed variants still downcast to their payload type (`Tick`, `Frame`,
/// `MacTx`, …) so dispatch chains written before the typed core behave
/// identically — at the cost of a compatibility re-box. Hot receivers
/// should match on [`Msg`] directly.
pub fn try_cast<T: 'static>(msg: Msg) -> Result<Box<T>, Msg> {
    match msg {
        Msg::Custom(b) => b.downcast::<T>().map_err(Msg::Custom),
        Msg::Tick => repack(Tick, |_| Msg::Tick),
        Msg::Frame(f) => repack(f, Msg::Frame),
        Msg::MacTx(m) => repack(m, Msg::MacTx),
        Msg::Work(w) => repack(w, Msg::Work),
        Msg::Nbi(n) => repack(n, Msg::Nbi),
        Msg::Xfer(x) => repack(x, Msg::Xfer),
        Msg::XferDone(x) => repack(x, Msg::XferDone),
        Msg::Token(t) => repack(t, Msg::Token),
        Msg::FsUpdate(f) => repack(f, Msg::FsUpdate),
        Msg::Doorbell(d) => repack(d, Msg::Doorbell),
        Msg::FreeDesc => repack(FreeDesc, |_| Msg::FreeDesc),
        Msg::Report(r) => repack(r, Msg::Report),
        Msg::Skip(s) => Err(Msg::Skip(s)),
    }
}

/// Downcast a message to a concrete type, panicking with a useful message
/// on mismatch (a mismatch is always a wiring bug, never a runtime input).
pub fn cast<T: 'static>(msg: Msg) -> Box<T> {
    let variant = msg.variant_name();
    try_cast::<T>(msg).unwrap_or_else(|m| {
        panic!(
            "message type mismatch: expected {}, got {variant} variant ({:?})",
            std::any::type_name::<T>(),
            m.variant_name(),
        )
    })
}

// ---- nodes and delivery context -----------------------------------------

/// A simulation actor.
///
/// `Any` is a supertrait so the harness can reach into concrete nodes
/// between runs (trait upcasting) for configuration and result collection.
pub trait Node: Any {
    /// Handle a message delivered at the current simulation time.
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg);

    /// Called once when the node joins a simulation
    /// ([`Sim::add_node`] / [`Sim::fill_node`]). Nodes resolve their
    /// [`crate::CounterHandle`]s here so per-event paths never pay a
    /// string-keyed counter lookup.
    fn on_attach(&mut self, _stats: &mut Stats) {}

    /// Diagnostic name (used in panics and traces).
    fn name(&self) -> String {
        std::any::type_name::<Self>().to_string()
    }
}

/// Per-delivery context handed to a node. Outgoing sends are pushed
/// straight into the event queue (enqueue order — and therefore the FIFO
/// tie-break — is the order of the `send` calls, exactly as with the old
/// commit-on-return buffer, but without the extra copy).
pub struct Ctx<'a> {
    now: Time,
    self_id: NodeId,
    queue: &'a mut Queue,
    seq: &'a mut u64,
    pub rng: &'a mut Rng,
    pub stats: &'a mut Stats,
    /// The simulation-wide frame-buffer pool: emitters outside the NICs
    /// (host stacks, the control plane) draw buffers here; fabric
    /// elements (switches, links, MAC queues) return dropped frames.
    pub pool: &'a mut PktBufPool,
    halt: &'a mut bool,
}

impl<'a> Ctx<'a> {
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    #[inline]
    fn push(&mut self, time: Time, to: NodeId, msg: Msg) {
        let seq = *self.seq;
        *self.seq += 1;
        self.queue.push(Ev { time, seq, to, msg });
    }

    /// Send `msg` to node `to`, arriving `delay` from now.
    #[inline]
    pub fn send<M: IntoMsg>(&mut self, to: NodeId, delay: Duration, msg: M) {
        self.push(self.now + delay, to, msg.into_msg());
    }

    /// Send an already-converted message (kept for call sites that build
    /// a [`Msg`] up front).
    #[inline]
    pub fn send_boxed(&mut self, to: NodeId, delay: Duration, msg: Msg) {
        self.push(self.now + delay, to, msg);
    }

    /// Send `msg` to node `to` at an absolute instant (>= now).
    #[inline]
    pub fn send_at<M: IntoMsg>(&mut self, to: NodeId, at: Time, msg: M) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.push(at.max(self.now), to, msg.into_msg());
    }

    /// Schedule a message to self.
    #[inline]
    pub fn wake<M: IntoMsg>(&mut self, delay: Duration, msg: M) {
        let id = self.self_id;
        self.send(id, delay, msg);
    }

    /// Stop the simulation after this handler returns (used by experiment
    /// terminators, e.g. "stop after N requests").
    pub fn halt(&mut self) {
        *self.halt = true;
    }
}

// ---- the event queue -----------------------------------------------------

pub(crate) struct Ev {
    pub(crate) time: Time,
    pub(crate) seq: u64,
    pub(crate) to: NodeId,
    pub(crate) msg: Msg,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which event-queue implementation a [`Sim`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueKind {
    /// Bucketed event wheel (calendar queue) — the default.
    Wheel,
    /// Plain `BinaryHeap` — the reference scheduler, kept for
    /// differential ordering tests and benchmarking.
    Heap,
}

enum Queue {
    Wheel(EventWheel),
    Heap(BinaryHeap<Ev>),
}

impl Queue {
    #[inline]
    fn push(&mut self, ev: Ev) {
        match self {
            Queue::Wheel(w) => w.push(ev),
            Queue::Heap(h) => h.push(ev),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Ev> {
        match self {
            Queue::Wheel(w) => w.pop(),
            Queue::Heap(h) => h.pop(),
        }
    }

    fn next_time(&self) -> Option<Time> {
        match self {
            Queue::Wheel(w) => w.next_time(),
            Queue::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    fn len(&self) -> usize {
        match self {
            Queue::Wheel(w) => w.len(),
            Queue::Heap(h) => h.len(),
        }
    }
}

/// The simulation: event queue + nodes + global RNG and statistics.
pub struct Sim {
    time: Time,
    seq: u64,
    queue: Queue,
    nodes: Vec<Option<Box<dyn Node>>>,
    node_names: Vec<String>,
    pub rng: Rng,
    pub stats: Stats,
    /// Simulation-wide recycled frame buffers (see [`Ctx::pool`]).
    pub frame_pool: PktBufPool,
    events_processed: u64,
    halt: bool,
    /// Wall-clock self-profiling (`FLEXTOE_SIM_PROF=1`): per-node
    /// (ns, events) accumulated around each delivery. Off by default —
    /// the check is one predictable branch per event.
    prof_enabled: bool,
    pub prof: Vec<(u64, u64)>,
}

impl Sim {
    /// New simulation on the default (event wheel) scheduler.
    pub fn new(seed: u64) -> Sim {
        Sim::with_queue(seed, QueueKind::Wheel)
    }

    /// New simulation on the reference `BinaryHeap` scheduler.
    pub fn with_reference_queue(seed: u64) -> Sim {
        Sim::with_queue(seed, QueueKind::Heap)
    }

    pub fn with_queue(seed: u64, kind: QueueKind) -> Sim {
        Sim {
            time: Time::ZERO,
            seq: 0,
            queue: match kind {
                QueueKind::Wheel => Queue::Wheel(EventWheel::new()),
                QueueKind::Heap => Queue::Heap(BinaryHeap::new()),
            },
            nodes: Vec::new(),
            node_names: Vec::new(),
            rng: Rng::new(seed),
            stats: Stats::new(),
            frame_pool: PktBufPool::new(SIM_POOL_BOUND),
            events_processed: 0,
            halt: false,
            prof_enabled: std::env::var_os("FLEXTOE_SIM_PROF").is_some_and(|v| v == "1"),
            prof: Vec::new(),
        }
    }

    /// Per-node-name wall-time totals (requires `FLEXTOE_SIM_PROF=1`),
    /// sorted by time descending: `(name, ns, events)`.
    pub fn prof_dump(&self) -> Vec<(String, u64, u64)> {
        let mut agg: std::collections::HashMap<String, (u64, u64)> = Default::default();
        for (i, &(ns, n)) in self.prof.iter().enumerate() {
            if n > 0 {
                let e = agg.entry(self.node_names[i].clone()).or_default();
                e.0 += ns;
                e.1 += n;
            }
        }
        let mut v: Vec<(String, u64, u64)> = agg.into_iter().map(|(k, (a, b))| (k, a, b)).collect();
        v.sort_by_key(|x| std::cmp::Reverse(x.1));
        v
    }

    pub fn now(&self) -> Time {
        self.time
    }

    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events currently queued (diagnostics).
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Add a node; returns its id.
    pub fn add_node<N: Node>(&mut self, mut node: N) -> NodeId {
        let id = self.nodes.len();
        node.on_attach(&mut self.stats);
        self.node_names.push(node.name());
        self.nodes.push(Some(Box::new(node)));
        id
    }

    /// Reserve a node slot to be filled later (for cyclic wiring).
    pub fn reserve_node(&mut self) -> NodeId {
        let id = self.nodes.len();
        self.node_names.push("<reserved>".to_string());
        self.nodes.push(None);
        id
    }

    /// Fill a reserved slot.
    pub fn fill_node<N: Node>(&mut self, id: NodeId, mut node: N) {
        assert!(self.nodes[id].is_none(), "slot {id} already filled");
        node.on_attach(&mut self.stats);
        self.node_names[id] = node.name();
        self.nodes[id] = Some(Box::new(node));
    }

    /// Mutable access to a concrete node (configuration, result harvest).
    pub fn node_mut<N: Node>(&mut self, id: NodeId) -> &mut N {
        let node = self.nodes[id]
            .as_mut()
            .unwrap_or_else(|| panic!("node {id} is vacant"));
        let any: &mut dyn Any = node.as_mut();
        any.downcast_mut::<N>().unwrap_or_else(|| {
            panic!(
                "node {id} is {}, not {}",
                std::any::type_name::<N>(),
                std::any::type_name::<N>()
            )
        })
    }

    /// Shared access to a concrete node.
    pub fn node_ref<N: Node>(&self, id: NodeId) -> &N {
        let node = self.nodes[id]
            .as_ref()
            .unwrap_or_else(|| panic!("node {id} is vacant"));
        let any: &dyn Any = node.as_ref();
        any.downcast_ref::<N>()
            .unwrap_or_else(|| panic!("node {id} has unexpected type"))
    }

    /// Schedule a message from outside any handler (experiment kick-off).
    pub fn schedule<M: IntoMsg>(&mut self, at: Time, to: NodeId, msg: M) {
        self.push(at.max(self.time), to, msg.into_msg());
    }

    pub fn schedule_in<M: IntoMsg>(&mut self, delay: Duration, to: NodeId, msg: M) {
        self.push(self.time + delay, to, msg.into_msg());
    }

    #[inline]
    fn push(&mut self, time: Time, to: NodeId, msg: Msg) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Ev { time, seq, to, msg });
    }

    /// Deliver the next event. Returns `false` when the queue is empty or
    /// the simulation was halted.
    pub fn step(&mut self) -> bool {
        if self.halt {
            return false;
        }
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.time, "event queue time reversal");
        self.time = ev.time;
        self.events_processed += 1;

        let mut node = self.nodes[ev.to].take().unwrap_or_else(|| {
            panic!(
                "message delivered to vacant node {} ({})",
                ev.to, self.node_names[ev.to]
            )
        });
        let t0 = self.prof_enabled.then(std::time::Instant::now);
        {
            let mut ctx = Ctx {
                now: self.time,
                self_id: ev.to,
                queue: &mut self.queue,
                seq: &mut self.seq,
                rng: &mut self.rng,
                stats: &mut self.stats,
                pool: &mut self.frame_pool,
                halt: &mut self.halt,
            };
            node.on_msg(&mut ctx, ev.msg);
        }
        if let Some(t0) = t0 {
            if self.prof.len() <= ev.to {
                self.prof.resize(ev.to + 1, (0, 0));
            }
            let p = &mut self.prof[ev.to];
            p.0 += t0.elapsed().as_nanos() as u64;
            p.1 += 1;
        }
        self.nodes[ev.to] = Some(node);
        true
    }

    /// Run until the queue drains, the halt flag is set, or `deadline` is
    /// reached (events at exactly `deadline` are delivered).
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(t) = self.queue.next_time() {
            if t > deadline || self.halt {
                break;
            }
            self.step();
        }
        if !self.halt {
            self.time = self
                .time
                .max(deadline.min(self.next_event_time().unwrap_or(deadline)));
        }
    }

    /// Run until nothing is left or halted. Panics after `limit` events to
    /// catch runaway zero-delay loops.
    pub fn run_with_limit(&mut self, limit: u64) {
        let start = self.events_processed;
        while self.step() {
            if self.events_processed - start > limit {
                panic!("event limit {limit} exceeded — zero-delay loop?");
            }
        }
    }

    pub fn run(&mut self) {
        while self.step() {}
    }

    pub fn next_event_time(&self) -> Option<Time> {
        self.queue.next_time()
    }

    pub fn halted(&self) -> bool {
        self.halt
    }

    pub fn clear_halt(&mut self) {
        self.halt = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_kinds(f: impl Fn(QueueKind)) {
        f(QueueKind::Wheel);
        f(QueueKind::Heap);
    }

    struct Echo {
        peer: Option<NodeId>,
        hops_left: u32,
        log: Vec<(u64, u32)>, // (ns, hops_left at receipt)
    }

    struct Ball(u32);
    crate::custom_msg!(Ball);

    impl Node for Echo {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let ball = cast::<Ball>(msg);
            self.log.push((ctx.now().as_ns(), ball.0));
            self.hops_left = ball.0;
            if ball.0 > 0 {
                if let Some(peer) = self.peer {
                    ctx.send(peer, Duration::from_ns(10), Ball(ball.0 - 1));
                }
            }
        }
    }

    #[test]
    fn ping_pong_timing() {
        both_kinds(|kind| {
            let mut sim = Sim::with_queue(1, kind);
            let a = sim.reserve_node();
            let b = sim.add_node(Echo {
                peer: Some(a),
                hops_left: 0,
                log: vec![],
            });
            sim.fill_node(
                a,
                Echo {
                    peer: Some(b),
                    hops_left: 0,
                    log: vec![],
                },
            );
            sim.schedule(Time::ZERO, a, Ball(4));
            sim.run();
            let ea = sim.node_ref::<Echo>(a);
            let eb = sim.node_ref::<Echo>(b);
            assert_eq!(ea.log, vec![(0, 4), (20, 2), (40, 0)]);
            assert_eq!(eb.log, vec![(10, 3), (30, 1)]);
            assert_eq!(sim.now().as_ns(), 40);
            assert_eq!(sim.events_processed(), 5);
        });
    }

    struct Recorder {
        seen: Vec<u32>,
    }
    impl Node for Recorder {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            self.seen.push(*cast::<u32>(msg));
        }
    }

    #[test]
    fn fifo_tiebreak_at_same_time() {
        both_kinds(|kind| {
            let mut sim = Sim::with_queue(1, kind);
            let r = sim.add_node(Recorder { seen: vec![] });
            for i in 0..10u32 {
                sim.schedule(Time::from_ns(5), r, i);
            }
            sim.run();
            assert_eq!(
                sim.node_ref::<Recorder>(r).seen,
                (0..10).collect::<Vec<_>>()
            );
        });
    }

    #[test]
    fn run_until_stops_at_deadline() {
        both_kinds(|kind| {
            let mut sim = Sim::with_queue(1, kind);
            let r = sim.add_node(Recorder { seen: vec![] });
            sim.schedule(Time::from_ns(10), r, 1u32);
            sim.schedule(Time::from_ns(20), r, 2u32);
            sim.schedule(Time::from_ns(30), r, 3u32);
            sim.run_until(Time::from_ns(20));
            assert_eq!(sim.node_ref::<Recorder>(r).seen, vec![1, 2]);
            sim.run();
            assert_eq!(sim.node_ref::<Recorder>(r).seen, vec![1, 2, 3]);
        });
    }

    struct Halter;
    impl Node for Halter {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            ctx.halt();
        }
    }

    #[test]
    fn halt_stops_immediately() {
        let mut sim = Sim::new(1);
        let h = sim.add_node(Halter);
        let r = sim.add_node(Recorder { seen: vec![] });
        sim.schedule(Time::from_ns(1), h, Tick);
        sim.schedule(Time::from_ns(2), r, 9u32);
        sim.run();
        assert!(sim.halted());
        assert!(sim.node_ref::<Recorder>(r).seen.is_empty());
    }

    struct SelfWaker {
        fired: u32,
    }
    impl Node for SelfWaker {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
            self.fired += 1;
            if self.fired < 5 {
                ctx.wake(Duration::from_us(1), Tick);
            }
        }
    }

    #[test]
    fn self_wake_polling_loop() {
        let mut sim = Sim::new(1);
        let w = sim.add_node(SelfWaker { fired: 0 });
        sim.schedule(Time::ZERO, w, Tick);
        sim.run();
        assert_eq!(sim.node_ref::<SelfWaker>(w).fired, 5);
        assert_eq!(sim.now().as_us(), 4);
    }

    #[test]
    fn determinism_across_runs_and_queues() {
        let run = |seed, kind| {
            let mut sim = Sim::with_queue(seed, kind);
            let r = sim.add_node(Recorder { seen: vec![] });
            for _ in 0..100 {
                let d = Duration::from_ns(sim.rng.below(1000));
                let v = sim.rng.next_u32();
                sim.schedule_in(d, r, v);
            }
            sim.run();
            sim.node_ref::<Recorder>(r).seen.clone()
        };
        assert_eq!(run(99, QueueKind::Wheel), run(99, QueueKind::Wheel));
        assert_ne!(run(99, QueueKind::Wheel), run(100, QueueKind::Wheel));
        // the wheel and the reference heap deliver identical orders
        assert_eq!(run(99, QueueKind::Wheel), run(99, QueueKind::Heap));
        assert_eq!(run(1234, QueueKind::Wheel), run(1234, QueueKind::Heap));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn zero_delay_loop_detected() {
        struct Looper;
        impl Node for Looper {
            fn on_msg(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
                ctx.wake(Duration::ZERO, Tick);
            }
        }
        let mut sim = Sim::new(1);
        let l = sim.add_node(Looper);
        sim.schedule(Time::ZERO, l, Tick);
        sim.run_with_limit(1000);
    }

    #[test]
    fn try_cast_returns_msg_on_mismatch() {
        let m: Msg = Msg::custom(42u32);
        let m = try_cast::<String>(m).unwrap_err();
        assert_eq!(*cast::<u32>(m), 42);
    }

    #[test]
    fn typed_variants_survive_compat_cast() {
        // dispatch chains written against the old type-erased engine keep
        // working on typed variants via the repack path
        let m = Tick.into_msg();
        let m = try_cast::<Frame>(m).unwrap_err();
        assert!(try_cast::<Tick>(m).is_ok());

        let m = Frame::raw(vec![1, 2, 3]).into_msg();
        let m = try_cast::<MacTx>(m).unwrap_err();
        assert_eq!(cast::<Frame>(m).bytes, vec![1, 2, 3]);

        let m = MacTx(Frame::raw(vec![9])).into_msg();
        assert_eq!(cast::<MacTx>(m).0.bytes, vec![9]);

        let m = 7u64.into_msg();
        assert_eq!(*cast::<u64>(m), 7);
    }

    #[test]
    #[should_panic(expected = "message type mismatch")]
    fn cast_mismatch_panics_with_variant() {
        let _ = cast::<Frame>(Tick.into_msg());
    }

    #[test]
    fn far_future_timers_through_overflow() {
        // exercise the wheel's overflow heap: ms-scale timers (RTO) far
        // beyond the wheel horizon, interleaved with near events
        let mut sim = Sim::new(1);
        let r = sim.add_node(Recorder { seen: vec![] });
        sim.schedule(Time::from_ms(250), r, 4u32);
        sim.schedule(Time::from_ns(5), r, 1u32);
        sim.schedule(Time::from_ms(2), r, 3u32);
        sim.schedule(Time::from_us(80), r, 2u32);
        sim.run();
        assert_eq!(sim.node_ref::<Recorder>(r).seen, vec![1, 2, 3, 4]);
        assert_eq!(sim.now().as_us(), 250_000);
    }
}
