//! # flextoe-libtoe — the libTOE application library
//!
//! "Applications interface directly but transparently with the FlexTOE
//! datapath through the libTOE library that implements POSIX sockets"
//! (§1). libTOE "intercepts POSIX socket calls … and communicates directly
//! with the data-path" through per-thread context queues and per-socket
//! payload buffers in host memory (Figure 2).
//!
//! In the simulation, an application is a `Node` that owns a [`LibToe`]
//! context. Socket calls write/read the shared payload buffers directly
//! (zero kernel involvement) and post descriptors + MMIO doorbells to the
//! NIC — exactly the §4 communication scheme. Blocking is modeled with
//! MSI-X→eventfd wakeups ([`flextoe_core::AppNotify`]) so applications can
//! sleep instead of polling (§4 "Driver").

use std::collections::HashMap;

use flextoe_control::{AppReply, AppRequest};
use flextoe_core::hostmem::{shared_ctxq, AppToNic, NicToApp, SharedBuf, SharedCtxQueue};
use flextoe_core::stages::{Doorbell, RegisterCtx};
use flextoe_core::NicHandle;
use flextoe_sim::{Ctx, Duration, NodeId};
use flextoe_wire::Ip4;

/// Events surfaced to the application, epoll-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SockEvent {
    /// A connection was accepted on a listening port.
    Accepted {
        conn: u32,
        port: u16,
        peer: (Ip4, u16),
    },
    /// An active open completed.
    Connected {
        conn: u32,
        opaque: u64,
    },
    ConnectFailed {
        opaque: u64,
    },
    /// New bytes are readable.
    Readable {
        conn: u32,
        available: u32,
    },
    /// TX buffer space was freed (previously-blocked writes may proceed).
    Writable {
        conn: u32,
        free: u32,
    },
    /// Peer closed its direction (EOF after draining readable bytes).
    Eof {
        conn: u32,
    },
    /// The control plane aborted the connection (RTO retry budget
    /// exhausted — the path was blackholed). The socket is already torn
    /// down on the NIC side; the library marks it closed and the
    /// application must treat outstanding requests as failed.
    Aborted {
        conn: u32,
    },
}

/// Per-socket bookkeeping (the application's view of the shared buffers).
pub struct Socket {
    pub conn: u32,
    rx_buf: SharedBuf,
    tx_buf: SharedBuf,
    /// Application's read position (free-running, matches data-path
    /// `rx_pos` semantics).
    rx_pos: u32,
    /// Readable bytes (grown by RxAvail notifications).
    rx_ready: u32,
    /// Application's write position.
    tx_pos: u32,
    /// Free TX buffer space (shrunk by send, grown by TxFreed).
    tx_free: u32,
    pub eof: bool,
    pub closed: bool,
}

impl Socket {
    pub fn readable(&self) -> u32 {
        self.rx_ready
    }
    pub fn writable(&self) -> u32 {
        self.tx_free
    }
}

/// One application thread's libTOE context (one context queue).
pub struct LibToe {
    pub ctx_id: u16,
    queue: SharedCtxQueue,
    nic: NicHandle,
    ctrl: NodeId,
    /// The owning application node (wake target).
    app: NodeId,
    sockets: HashMap<u32, Socket>,
    /// Doorbell coalescing: descriptors pushed since the last doorbell.
    pending_db: bool,
    pub doorbells_sent: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
}

impl LibToe {
    /// Create a context and register it with the NIC's context-queue
    /// manager. `ctx_id` must be unique per NIC.
    pub fn new(
        ctx: &mut Ctx<'_>,
        ctx_id: u16,
        nic: NicHandle,
        ctrl: NodeId,
        app: NodeId,
    ) -> LibToe {
        let queue = shared_ctxq(4096);
        ctx.send(
            nic.ctxq,
            nic.cfg.platform.pcie.mmio_latency,
            RegisterCtx {
                ctx: ctx_id,
                queue: queue.clone(),
                app: Some(app),
            },
        );
        LibToe {
            ctx_id,
            queue,
            nic,
            ctrl,
            app,
            sockets: HashMap::new(),
            pending_db: false,
            doorbells_sent: 0,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    pub fn socket(&self, conn: u32) -> Option<&Socket> {
        self.sockets.get(&conn)
    }

    pub fn n_sockets(&self) -> usize {
        self.sockets.len()
    }

    /// POSIX `listen()` (connections are auto-accepted; `Accepted` events
    /// arrive via [`LibToe::on_reply`]).
    pub fn listen(&mut self, ctx: &mut Ctx<'_>, port: u16) {
        let msg = AppRequest::Listen {
            port,
            ctx: self.ctx_id,
            queue: self.queue.clone(),
            reply_to: self.app,
        };
        ctx.send(self.ctrl, Duration::from_us(1), msg);
    }

    /// POSIX `connect()` (non-blocking; completion via `Connected`).
    pub fn connect(&mut self, ctx: &mut Ctx<'_>, ip: Ip4, port: u16, opaque: u64) {
        let msg = AppRequest::Connect {
            remote_ip: ip,
            remote_port: port,
            ctx: self.ctx_id,
            queue: self.queue.clone(),
            reply_to: self.app,
            opaque,
        };
        ctx.send(self.ctrl, Duration::from_us(1), msg);
    }

    /// Feed a control-plane reply (delivered to the app node) into the
    /// library; returns the corresponding socket event.
    pub fn on_reply(&mut self, reply: AppReply) -> SockEvent {
        match reply {
            AppReply::Accepted {
                conn,
                port,
                peer,
                rx_buf,
                tx_buf,
            } => {
                self.add_socket(conn, rx_buf, tx_buf);
                SockEvent::Accepted { conn, port, peer }
            }
            AppReply::Connected {
                conn,
                opaque,
                rx_buf,
                tx_buf,
            } => {
                self.add_socket(conn, rx_buf, tx_buf);
                SockEvent::Connected { conn, opaque }
            }
            AppReply::ConnectFailed { opaque } => SockEvent::ConnectFailed { opaque },
        }
    }

    fn add_socket(&mut self, conn: u32, rx_buf: SharedBuf, tx_buf: SharedBuf) {
        let tx_free = tx_buf.borrow().size();
        self.sockets.insert(
            conn,
            Socket {
                conn,
                rx_buf,
                tx_buf,
                rx_pos: 0,
                rx_ready: 0,
                tx_pos: 0,
                tx_free,
                eof: false,
                closed: false,
            },
        );
    }

    /// Drain notification descriptors from the context queue (called on
    /// wake-up or when polling); returns readiness events.
    pub fn poll(&mut self) -> Vec<SockEvent> {
        let mut events = Vec::new();
        loop {
            let desc = self.queue.borrow_mut().to_app.pop();
            let Some(desc) = desc else { break };
            match desc {
                NicToApp::RxAvail { conn, len, fin } => {
                    if let Some(s) = self.sockets.get_mut(&conn) {
                        s.rx_ready += len;
                        if len > 0 {
                            events.push(SockEvent::Readable {
                                conn,
                                available: s.rx_ready,
                            });
                        }
                        if fin {
                            s.eof = true;
                            events.push(SockEvent::Eof { conn });
                        }
                    }
                }
                NicToApp::TxFreed { conn, len } => {
                    if let Some(s) = self.sockets.get_mut(&conn) {
                        s.tx_free += len;
                        events.push(SockEvent::Writable {
                            conn,
                            free: s.tx_free,
                        });
                    }
                }
                NicToApp::Aborted { conn } => {
                    // NIC-side state is already reclaimed; mark the socket
                    // dead so further send/recv are no-ops, and surface the
                    // abort exactly once.
                    if let Some(s) = self.sockets.get_mut(&conn) {
                        s.closed = true;
                        s.eof = true;
                        events.push(SockEvent::Aborted { conn });
                    }
                }
            }
        }
        events
    }

    fn push_desc(&mut self, desc: AppToNic) {
        let ok = self.queue.borrow_mut().to_nic.push(desc).is_ok();
        debug_assert!(ok, "to-NIC context queue overflow");
        self.pending_db = true;
    }

    /// Ring the doorbell for any descriptors queued since the last ring
    /// (MMIO write). Callers batch several sends before one flush.
    pub fn flush(&mut self, ctx: &mut Ctx<'_>) {
        if !self.pending_db {
            return;
        }
        self.pending_db = false;
        self.doorbells_sent += 1;
        ctx.send(
            self.nic.ctxq,
            self.nic.cfg.platform.pcie.mmio_latency,
            Doorbell { ctx: self.ctx_id },
        );
    }

    /// POSIX `send()`: copy into the socket TX buffer; returns bytes
    /// accepted (0 when the buffer is full — wait for `Writable`).
    pub fn send(&mut self, ctx: &mut Ctx<'_>, conn: u32, data: &[u8]) -> usize {
        let Some(s) = self.sockets.get_mut(&conn) else {
            return 0;
        };
        if s.closed {
            return 0;
        }
        let n = (data.len() as u32).min(s.tx_free);
        if n == 0 {
            return 0;
        }
        s.tx_buf.borrow_mut().write(s.tx_pos, &data[..n as usize]);
        s.tx_pos = s.tx_pos.wrapping_add(n);
        s.tx_free -= n;
        self.bytes_sent += n as u64;
        self.push_desc(AppToNic::TxAppend { conn, len: n });
        self.flush(ctx);
        n as usize
    }

    /// Like `send` but without copying real data (bulk benchmarks that
    /// only measure transport behaviour still move the descriptor and
    /// window state, and the payload region is part of the buffer).
    pub fn send_bytes(&mut self, ctx: &mut Ctx<'_>, conn: u32, len: u32) -> u32 {
        let Some(s) = self.sockets.get_mut(&conn) else {
            return 0;
        };
        if s.closed {
            return 0;
        }
        let n = len.min(s.tx_free);
        if n == 0 {
            return 0;
        }
        s.tx_pos = s.tx_pos.wrapping_add(n);
        s.tx_free -= n;
        self.bytes_sent += n as u64;
        self.push_desc(AppToNic::TxAppend { conn, len: n });
        self.flush(ctx);
        n
    }

    /// POSIX `recv()`: copy out up to `max` readable bytes.
    pub fn recv(&mut self, ctx: &mut Ctx<'_>, conn: u32, max: u32) -> Vec<u8> {
        let Some(s) = self.sockets.get_mut(&conn) else {
            return Vec::new();
        };
        let n = s.rx_ready.min(max);
        if n == 0 {
            return Vec::new();
        }
        let data = s.rx_buf.borrow().read_vec(s.rx_pos, n);
        s.rx_pos = s.rx_pos.wrapping_add(n);
        s.rx_ready -= n;
        self.bytes_received += n as u64;
        self.push_desc(AppToNic::RxConsumed { conn, len: n });
        self.flush(ctx);
        data
    }

    /// Consume readable bytes without copying (bulk benchmarks).
    pub fn recv_bytes(&mut self, ctx: &mut Ctx<'_>, conn: u32, max: u32) -> u32 {
        let Some(s) = self.sockets.get_mut(&conn) else {
            return 0;
        };
        let n = s.rx_ready.min(max);
        if n == 0 {
            return 0;
        }
        s.rx_pos = s.rx_pos.wrapping_add(n);
        s.rx_ready -= n;
        self.bytes_received += n as u64;
        self.push_desc(AppToNic::RxConsumed { conn, len: n });
        self.flush(ctx);
        n
    }

    /// POSIX `close()`/`shutdown(WR)`: FIN after pending data.
    pub fn close(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        if let Some(s) = self.sockets.get_mut(&conn) {
            if s.closed {
                return;
            }
            s.closed = true;
        } else {
            return;
        }
        self.push_desc(AppToNic::Close { conn });
        self.flush(ctx);
    }

    /// Forget a fully-closed socket (the control plane reclaims data-path
    /// state on its own once both directions are done).
    pub fn drop_socket(&mut self, conn: u32) {
        self.sockets.remove(&conn);
    }
}

#[cfg(test)]
mod tests {
    //! Socket bookkeeping is covered here; the full application loop
    //! (handshake + echo over the pipeline) lives in the workspace
    //! integration tests.
    use super::*;
    use flextoe_core::hostmem::shared_buf;

    fn sock() -> Socket {
        Socket {
            conn: 1,
            rx_buf: shared_buf(64),
            tx_buf: shared_buf(64),
            rx_pos: 0,
            rx_ready: 0,
            tx_pos: 0,
            tx_free: 64,
            eof: false,
            closed: false,
        }
    }

    #[test]
    fn socket_accessors() {
        let mut s = sock();
        assert_eq!(s.readable(), 0);
        assert_eq!(s.writable(), 64);
        s.rx_ready = 10;
        s.tx_free = 20;
        assert_eq!(s.readable(), 10);
        assert_eq!(s.writable(), 20);
    }

    #[test]
    fn event_equality() {
        assert_eq!(
            SockEvent::Readable {
                conn: 1,
                available: 5
            },
            SockEvent::Readable {
                conn: 1,
                available: 5
            }
        );
        assert_ne!(SockEvent::Eof { conn: 1 }, SockEvent::Eof { conn: 2 });
    }
}
