//! Sequencing and reordering (§3.2).
//!
//! "We assign a sequence number to each segment entering the pipeline. The
//! parallel pipeline stages can operate on each segment in any order. The
//! protocol stage requires in-order processing and we buffer and re-order
//! segments that arrive out-of-order before admitting them to the protocol
//! stage. Similarly, we buffer and re-order segments for transmission
//! before admitting them to the NBI."
//!
//! Items that leave the pipeline early (redirected to the control plane,
//! dropped by an XDP module, or filtered) are *skipped* so the stream
//! doesn't stall on a hole.

use std::collections::BTreeMap;

/// An in-order release buffer over dense sequence numbers.
pub struct Reorder<T> {
    next: u64,
    pending: BTreeMap<u64, T>,
    skipped: std::collections::BTreeSet<u64>,
    /// High-water mark of buffered items (a Table 2 tracepoint).
    pub max_held: usize,
    pub reordered: u64,
}

impl<T> Default for Reorder<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Reorder<T> {
    pub fn new() -> Reorder<T> {
        Reorder {
            next: 0,
            pending: BTreeMap::new(),
            skipped: Default::default(),
            max_held: 0,
            reordered: 0,
        }
    }

    pub fn held(&self) -> usize {
        self.pending.len()
    }

    pub fn next_expected(&self) -> u64 {
        self.next
    }

    fn drain_ready(&mut self, out: &mut Vec<T>) {
        loop {
            if let Some(item) = self.pending.remove(&self.next) {
                out.push(item);
                self.next += 1;
            } else if self.skipped.remove(&self.next) {
                self.next += 1;
            } else {
                break;
            }
        }
    }

    /// Offer item with sequence `seq`, appending all items now releasable
    /// (possibly none, possibly several, in order) to `out`. The caller
    /// owns `out` so the in-order fast path — by far the common case —
    /// allocates nothing: hot callers keep one scratch buffer alive across
    /// deliveries.
    pub fn push_into(&mut self, seq: u64, item: T, out: &mut Vec<T>) {
        debug_assert!(seq >= self.next, "sequence {seq} already released");
        if seq == self.next {
            out.push(item);
            self.next += 1;
            self.drain_ready(out);
        } else {
            self.reordered += 1;
            self.pending.insert(seq, item);
            self.max_held = self.max_held.max(self.pending.len());
        }
    }

    /// Mark `seq` as never arriving (item left the pipeline early),
    /// appending any items this unblocks to `out`.
    pub fn skip_into(&mut self, seq: u64, out: &mut Vec<T>) {
        if seq == self.next {
            self.next += 1;
            self.drain_ready(out);
        } else if seq > self.next {
            self.skipped.insert(seq);
        }
    }

    /// Allocating convenience wrapper over [`Reorder::push_into`].
    pub fn push(&mut self, seq: u64, item: T) -> Vec<T> {
        let mut out = Vec::new();
        self.push_into(seq, item, &mut out);
        out
    }

    /// Allocating convenience wrapper over [`Reorder::skip_into`].
    pub fn skip(&mut self, seq: u64) -> Vec<T> {
        let mut out = Vec::new();
        self.skip_into(seq, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_passthrough() {
        let mut r = Reorder::new();
        assert_eq!(r.push(0, "a"), vec!["a"]);
        assert_eq!(r.push(1, "b"), vec!["b"]);
        assert_eq!(r.held(), 0);
        assert_eq!(r.reordered, 0);
    }

    #[test]
    fn out_of_order_buffered_and_released_together() {
        let mut r = Reorder::new();
        assert!(r.push(2, "c").is_empty());
        assert!(r.push(1, "b").is_empty());
        assert_eq!(r.held(), 2);
        assert_eq!(r.push(0, "a"), vec!["a", "b", "c"]);
        assert_eq!(r.held(), 0);
        assert_eq!(r.max_held, 2);
        assert_eq!(r.reordered, 2);
    }

    #[test]
    fn skip_unblocks_stream() {
        let mut r = Reorder::new();
        assert!(r.push(1, "b").is_empty());
        assert_eq!(r.skip(0), vec!["b"]);
        assert_eq!(r.next_expected(), 2);
    }

    #[test]
    fn skip_in_the_middle() {
        let mut r = Reorder::new();
        assert!(r.push(3, "d").is_empty());
        r.skip(1);
        r.skip(2);
        assert_eq!(r.push(0, "a"), vec!["a", "d"]);
    }

    #[test]
    fn interleaved_skips_and_items() {
        let mut r = Reorder::new();
        let mut released = Vec::new();
        // arrival order: 4, skip 2, 0, 3, skip 1
        released.extend(r.push(4, 4));
        released.extend(r.skip(2));
        released.extend(r.push(0, 0));
        released.extend(r.push(3, 3));
        released.extend(r.skip(1));
        assert_eq!(released, vec![0, 3, 4]);
        assert_eq!(r.next_expected(), 5);
    }

    #[test]
    fn large_random_permutation_releases_in_order() {
        let mut r = Reorder::new();
        let n = 1000u64;
        // deterministic pseudo-random permutation
        let mut order: Vec<u64> = (0..n).collect();
        let mut s = 12345u64;
        for i in (1..order.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut released = Vec::new();
        for seq in order {
            released.extend(r.push(seq, seq));
        }
        assert_eq!(released, (0..n).collect::<Vec<_>>());
        assert_eq!(r.held(), 0);
    }
}
