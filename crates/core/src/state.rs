//! Per-connection state, partitioned across pipeline stages exactly as in
//! Table 5 of the paper (Appendix A).
//!
//! "To enable fine-grained parallelism, we partition connection state
//! across pipeline stages": the pre-processor holds connection identifiers
//! (15 B), the protocol stage holds the TCP state machine (43 B), and the
//! post-processor holds application-interface and congestion-control state
//! (51 B) — 108 B per connection in aggregate, which is what lets the NIC
//! "offload millions of connections".
//!
//! Each partition has an explicit byte encoding whose size is asserted to
//! match the paper's figures, so the partitioning claim is checkable.

use flextoe_wire::{Ip4, MacAddr, SeqNum};

/// Pre-processor partition: connection identification — 15 B (Table 5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreState {
    /// Remote MAC address (48 bits).
    pub peer_mac: MacAddr,
    /// Remote IP address (32 bits).
    pub peer_ip: Ip4,
    /// Local TCP port (16 bits).
    pub local_port: u16,
    /// Remote TCP port (16 bits).
    pub remote_port: u16,
    /// `hash(4-tuple) % 4` (2 bits in hardware; a byte here).
    pub flow_group: u8,
}

impl PreState {
    /// Table 5: 15 bytes.
    pub const WIRE_SIZE: usize = 15;

    pub fn encode(&self) -> [u8; Self::WIRE_SIZE] {
        let mut b = [0u8; Self::WIRE_SIZE];
        b[0..6].copy_from_slice(&self.peer_mac.0);
        b[6..10].copy_from_slice(&self.peer_ip.octets());
        b[10..12].copy_from_slice(&self.local_port.to_be_bytes());
        b[12..14].copy_from_slice(&self.remote_port.to_be_bytes());
        b[14] = self.flow_group & 0b11;
        b
    }

    pub fn decode(b: &[u8; Self::WIRE_SIZE]) -> PreState {
        PreState {
            peer_mac: MacAddr(b[0..6].try_into().unwrap()),
            peer_ip: Ip4(u32::from_be_bytes(b[6..10].try_into().unwrap())),
            local_port: u16::from_be_bytes([b[10], b[11]]),
            remote_port: u16::from_be_bytes([b[12], b[13]]),
            flow_group: b[14] & 0b11,
        }
    }
}

/// Protocol partition: the TCP state machine — 43 B (Table 5).
///
/// Field semantics follow the TAS fast path the data-path is derived from:
///
/// * `seq` is the next sequence number to transmit (`snd_nxt`);
///   `tx_sent` is `snd_nxt − snd_una` (sent but unacknowledged), so
///   `snd_una = seq − tx_sent`.
/// * `tx_pos` is the socket TX-buffer offset of byte `snd_nxt`;
///   `tx_avail` counts appended-but-unsent bytes.
/// * `ack` is the next expected receive sequence (`rcv_nxt`); `rx_pos` is
///   the RX-buffer offset where byte `rcv_nxt` lands; `rx_avail` is free
///   RX-buffer space (the advertised window).
/// * `ooo_start`/`ooo_len` track the single out-of-order interval
///   (§3.1.3): reassembly happens directly in the host receive buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtoState {
    pub rx_pos: u32,
    pub tx_pos: u32,
    pub tx_avail: u32,
    pub rx_avail: u32,
    pub remote_win: u16,
    pub tx_sent: u32,
    pub seq: SeqNum,
    pub ack: SeqNum,
    pub ooo_start: SeqNum,
    pub ooo_len: u32,
    /// Duplicate-ACK count (4 bits in hardware).
    pub dupack_cnt: u8,
    /// Peer timestamp to echo in our next ACK (TSecr).
    pub next_ts: u32,
    // -- not part of the 43-byte wire image (derived/flags) --
    /// FIN requested by local application (queued behind in-flight data).
    pub fin_pending: bool,
    /// Sequence of our FIN once sent (consumes one sequence number).
    pub fin_sent: bool,
    /// Peer's FIN has been received in order.
    pub fin_received: bool,
}

impl ProtoState {
    /// Table 5: 43 bytes.
    pub const WIRE_SIZE: usize = 43;

    /// First unacknowledged sequence number (`snd_una`).
    pub fn snd_una(&self) -> SeqNum {
        SeqNum(self.seq.0.wrapping_sub(self.tx_sent))
    }

    /// Effective send window left: bytes the peer + local buffer allow.
    pub fn send_window(&self) -> u32 {
        (self.remote_win as u32).saturating_sub(self.tx_sent)
    }

    /// Bytes eligible for transmission right now.
    pub fn sendable(&self) -> u32 {
        self.tx_avail.min(self.send_window())
    }

    /// Flow-scheduler view of sendable bytes: an unsent FIN counts as one
    /// pseudo-byte so the scheduler still triggers the (possibly empty)
    /// segment that carries it. Every FS feedback path must use this —
    /// a path reporting plain [`ProtoState::sendable`] after `close()`
    /// would overwrite the scheduler's count with 0 and discard the
    /// queued FIN trigger, deadlocking the teardown.
    pub fn sendable_with_fin(&self) -> u32 {
        self.sendable() + u32::from(self.fin_pending && !self.fin_sent)
    }

    pub fn encode(&self) -> [u8; Self::WIRE_SIZE] {
        let mut b = [0u8; Self::WIRE_SIZE];
        b[0..4].copy_from_slice(&self.rx_pos.to_be_bytes());
        b[4..8].copy_from_slice(&self.tx_pos.to_be_bytes());
        b[8..12].copy_from_slice(&self.tx_avail.to_be_bytes());
        b[12..16].copy_from_slice(&self.rx_avail.to_be_bytes());
        b[16..18].copy_from_slice(&self.remote_win.to_be_bytes());
        b[18..22].copy_from_slice(&self.tx_sent.to_be_bytes());
        b[22..26].copy_from_slice(&self.seq.0.to_be_bytes());
        b[26..30].copy_from_slice(&self.ack.0.to_be_bytes());
        b[30..34].copy_from_slice(&self.ooo_start.0.to_be_bytes());
        b[34..38].copy_from_slice(&self.ooo_len.to_be_bytes());
        b[38] = (self.dupack_cnt & 0x0f)
            | ((self.fin_pending as u8) << 4)
            | ((self.fin_sent as u8) << 5)
            | ((self.fin_received as u8) << 6);
        b[39..43].copy_from_slice(&self.next_ts.to_be_bytes());
        b
    }

    pub fn decode(b: &[u8; Self::WIRE_SIZE]) -> ProtoState {
        ProtoState {
            rx_pos: u32::from_be_bytes(b[0..4].try_into().unwrap()),
            tx_pos: u32::from_be_bytes(b[4..8].try_into().unwrap()),
            tx_avail: u32::from_be_bytes(b[8..12].try_into().unwrap()),
            rx_avail: u32::from_be_bytes(b[12..16].try_into().unwrap()),
            remote_win: u16::from_be_bytes([b[16], b[17]]),
            tx_sent: u32::from_be_bytes(b[18..22].try_into().unwrap()),
            seq: SeqNum(u32::from_be_bytes(b[22..26].try_into().unwrap())),
            ack: SeqNum(u32::from_be_bytes(b[26..30].try_into().unwrap())),
            ooo_start: SeqNum(u32::from_be_bytes(b[30..34].try_into().unwrap())),
            ooo_len: u32::from_be_bytes(b[34..38].try_into().unwrap()),
            dupack_cnt: b[38] & 0x0f,
            next_ts: u32::from_be_bytes(b[39..43].try_into().unwrap()),
            fin_pending: b[38] & 0x10 != 0,
            fin_sent: b[38] & 0x20 != 0,
            fin_received: b[38] & 0x40 != 0,
        }
    }
}

/// Post-processor partition: context queue + congestion control — 51 B.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PostState {
    /// Application connection id (opaque to the NIC).
    pub opaque: u64,
    /// Context-queue id (which per-thread queue to notify).
    pub context: u16,
    /// Host physical addresses of the RX/TX payload buffers.
    pub rx_base: u64,
    pub tx_base: u64,
    pub rx_size: u32,
    pub tx_size: u32,
    /// ACK'd bytes, free-running (DCTCP numerator base; the ccp fold
    /// layer keeps the windowed view, these wrap like hardware counters).
    pub cnt_ackb: u32,
    /// Bytes acknowledged under an ECE echo, free-running (DCTCP
    /// numerator).
    pub cnt_ecnb: u32,
    /// Fast retransmits, free-running (wraps like its siblings).
    pub cnt_fretx: u8,
    /// Smoothed RTT estimate in microseconds (TIMELY input).
    pub rtt_est: u32,
    /// Programmed pacing rate, in the scheduler's cycles/byte units.
    pub rate: u32,
}

impl PostState {
    /// Table 5: 51 bytes.
    pub const WIRE_SIZE: usize = 51;

    pub fn encode(&self) -> [u8; Self::WIRE_SIZE] {
        let mut b = [0u8; Self::WIRE_SIZE];
        b[0..8].copy_from_slice(&self.opaque.to_be_bytes());
        b[8..10].copy_from_slice(&self.context.to_be_bytes());
        b[10..18].copy_from_slice(&self.rx_base.to_be_bytes());
        b[18..26].copy_from_slice(&self.tx_base.to_be_bytes());
        b[26..30].copy_from_slice(&self.rx_size.to_be_bytes());
        b[30..34].copy_from_slice(&self.tx_size.to_be_bytes());
        b[34..38].copy_from_slice(&self.cnt_ackb.to_be_bytes());
        b[38..42].copy_from_slice(&self.cnt_ecnb.to_be_bytes());
        b[42] = self.cnt_fretx;
        b[43..47].copy_from_slice(&self.rtt_est.to_be_bytes());
        b[47..51].copy_from_slice(&self.rate.to_be_bytes());
        b
    }

    pub fn decode(b: &[u8; Self::WIRE_SIZE]) -> PostState {
        PostState {
            opaque: u64::from_be_bytes(b[0..8].try_into().unwrap()),
            context: u16::from_be_bytes([b[8], b[9]]),
            rx_base: u64::from_be_bytes(b[10..18].try_into().unwrap()),
            tx_base: u64::from_be_bytes(b[18..26].try_into().unwrap()),
            rx_size: u32::from_be_bytes(b[26..30].try_into().unwrap()),
            tx_size: u32::from_be_bytes(b[30..34].try_into().unwrap()),
            cnt_ackb: u32::from_be_bytes(b[34..38].try_into().unwrap()),
            cnt_ecnb: u32::from_be_bytes(b[38..42].try_into().unwrap()),
            cnt_fretx: b[42],
            rtt_est: u32::from_be_bytes(b[43..47].try_into().unwrap()),
            rate: u32::from_be_bytes(b[47..51].try_into().unwrap()),
        }
    }
}

/// Aggregate per-connection footprint. Table 5 reports 108 B, counting
/// the sub-byte fields bit-exactly (2-bit `flow_group`, 4-bit
/// `dupack_cnt`); our byte-aligned encodings sum to 109 B.
pub const CONN_STATE_BYTES: usize = 108;
/// Byte-aligned sum of the three partition encodings.
pub const CONN_STATE_BYTES_ALIGNED: usize =
    PreState::WIRE_SIZE + ProtoState::WIRE_SIZE + PostState::WIRE_SIZE;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_sizes_match_table5() {
        assert_eq!(PreState::WIRE_SIZE, 15);
        assert_eq!(ProtoState::WIRE_SIZE, 43);
        assert_eq!(PostState::WIRE_SIZE, 51);
        assert_eq!(CONN_STATE_BYTES, 108);
        assert_eq!(CONN_STATE_BYTES_ALIGNED, 109);
        // bit-exact total matches the paper: 114 + 340 + 408 bits -> 108 B
        let bits: usize = (6 + 4 + 2 + 2) * 8 + 2 // pre
            + (8 + 4 + 4 + 2 + 4 + 4 + 4 + 8 + 4) * 8 + 4 // proto
            + 51 * 8; // post
        assert_eq!(bits.div_ceil(8), 108);
    }

    #[test]
    fn capacity_claims_of_appendix_a() {
        // "16 connections per protocol FPC, 512 connections per flow-group,
        //  and 16K connections in the EMEM cache. Using all of EMEM, we can
        //  support up to 8M connections."
        let emem_bytes: usize = 2 * 1024 * 1024 * 1024;
        assert!(emem_bytes / CONN_STATE_BYTES >= 8_000_000);
        let emem_sram_cache: usize = 3 * 1024 * 1024 / 2; // shared with other uses
        assert!(emem_sram_cache / CONN_STATE_BYTES >= 14_000);
    }

    #[test]
    fn pre_state_roundtrip() {
        let s = PreState {
            peer_mac: MacAddr::local(9),
            peer_ip: Ip4::host(3),
            local_port: 11211,
            remote_port: 40123,
            flow_group: 3,
        };
        assert_eq!(PreState::decode(&s.encode()), s);
    }

    #[test]
    fn proto_state_roundtrip() {
        let s = ProtoState {
            rx_pos: 1,
            tx_pos: 2,
            tx_avail: 3,
            rx_avail: 4,
            remote_win: 5,
            tx_sent: 6,
            seq: SeqNum(7),
            ack: SeqNum(8),
            ooo_start: SeqNum(9),
            ooo_len: 10,
            dupack_cnt: 3,
            next_ts: 12,
            fin_pending: true,
            fin_sent: false,
            fin_received: true,
        };
        assert_eq!(ProtoState::decode(&s.encode()), s);
    }

    #[test]
    fn post_state_roundtrip() {
        let s = PostState {
            opaque: 0xdead_beef_cafe_f00d,
            context: 3,
            rx_base: 1 << 30,
            tx_base: (1 << 30) + 65536,
            rx_size: 65536,
            tx_size: 65536,
            cnt_ackb: 123,
            cnt_ecnb: 45,
            cnt_fretx: 2,
            rtt_est: 150,
            rate: 800,
        };
        assert_eq!(PostState::decode(&s.encode()), s);
    }

    #[test]
    fn derived_window_arithmetic() {
        let s = ProtoState {
            seq: SeqNum(1000),
            tx_sent: 300,
            tx_avail: 500,
            remote_win: 400,
            ..Default::default()
        };
        assert_eq!(s.snd_una(), SeqNum(700));
        assert_eq!(s.send_window(), 100);
        assert_eq!(s.sendable(), 100); // window-limited
        let s2 = ProtoState {
            tx_avail: 50,
            remote_win: 400,
            ..s
        };
        assert_eq!(s2.sendable(), 50); // data-limited
    }

    #[test]
    fn snd_una_wraps() {
        let s = ProtoState {
            seq: SeqNum(10),
            tx_sent: 20,
            ..Default::default()
        };
        assert_eq!(s.snd_una(), SeqNum(u32::MAX - 9));
    }
}
