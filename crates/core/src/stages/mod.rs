//! The data-path pipeline stages as simulation nodes (§3.1, Figure 3).
//!
//! Each stage node owns one or more FPC timers (replication, §3.3) and the
//! stage-private state of §A. Stages communicate through timestamped
//! messages; inter-stage queue latencies (CLS rings intra-island, IMEM
//! work queues across islands, §4.1 "FPC mapping") are charged on the
//! sending side.

pub mod ctxq;
pub mod dmast;
pub mod post;
pub mod pre;
pub mod proto_stage;
pub mod schedn;
pub mod seqr;

use std::rc::Rc;

use flextoe_nfp::Platform;
use flextoe_sim::Duration;

/// Pipeline configuration — the knobs behind Table 3, Figure 14 and the
/// Table 2 extension rows.
#[derive(Clone)]
pub struct PipeCfg {
    pub platform: Platform,
    pub mss: u32,
    /// Flow-group pipelines (protocol islands). Agilio CX40: 4.
    pub n_groups: usize,
    /// Pre-processor FPC pool size (pre-processors "handle segments for
    /// any flow", §4.1), shared across groups.
    pub pre_replicas: usize,
    /// Post-processor replicas per flow-group.
    pub post_replicas: usize,
    /// Hardware threads per FPC (1 disables intra-FPC parallelism —
    /// the Table 3 ablation knob).
    pub threads_per_fpc: usize,
    /// Sequencing + reordering enabled (§3.2; ablation knob).
    pub reorder: bool,
    /// Verify IP/TCP checksums on ingress (hardware offload on real NICs).
    pub verify_checksums: bool,
    /// Table 2 "Statistics and profiling": all 48 tracepoints enabled.
    pub tracepoints: bool,
    /// FPCs running the flow scheduler.
    pub sched_fpcs: usize,
    /// Default per-socket buffer sizes installed by the control plane.
    pub rx_buf_size: u32,
    pub tx_buf_size: u32,
    /// Cap on live [`crate::segment::WorkPool`] slots (None = unbounded,
    /// the historical behavior). When the pool is full, RX ingress sheds
    /// frames with a counted `nic.pool_exhausted` drop instead of growing
    /// the slab — backpressure as a degraded mode, not a panic.
    pub work_pool_cap: Option<usize>,
    /// Cap on outstanding NIC packet-buffer-pool buffers (None =
    /// unbounded); same admission point and counter as `work_pool_cap`.
    pub seg_pool_cap: Option<u64>,
}

impl PipeCfg {
    /// The full Agilio CX40 configuration (§4.1): four flow-group islands,
    /// 4 FPCs on pre/post per island, 8 hardware threads.
    pub fn agilio_full() -> PipeCfg {
        PipeCfg {
            platform: flextoe_nfp::agilio_cx40(),
            mss: flextoe_wire::MSS_WITH_TS as u32,
            n_groups: 4,
            pre_replicas: 8, // 2 per island
            post_replicas: 2,
            threads_per_fpc: 8,
            reorder: true,
            verify_checksums: true,
            tracepoints: false,
            sched_fpcs: 4,
            rx_buf_size: 64 * 1024,
            tx_buf_size: 64 * 1024,
            work_pool_cap: None,
            seg_pool_cap: None,
        }
    }

    /// Table 3 "+ Pipelining": one island, no replication, single-threaded
    /// FPCs.
    pub fn agilio_pipelined_only() -> PipeCfg {
        PipeCfg {
            n_groups: 1,
            pre_replicas: 1,
            post_replicas: 1,
            threads_per_fpc: 1,
            sched_fpcs: 1,
            ..Self::agilio_full()
        }
    }

    /// Table 3 "+ Intra-FPC parallelism".
    pub fn agilio_intra_fpc() -> PipeCfg {
        PipeCfg {
            threads_per_fpc: 8,
            ..Self::agilio_pipelined_only()
        }
    }

    /// Table 3 "+ Replicated pre/post".
    pub fn agilio_replicated() -> PipeCfg {
        PipeCfg {
            pre_replicas: 2,
            post_replicas: 2,
            sched_fpcs: 2,
            ..Self::agilio_intra_fpc()
        }
    }

    /// §E ports: single pipeline, platform-specific costs. `replicated`
    /// gives the FlexTOE-2x configuration (9 cores) vs FlexTOE-scalar (7).
    pub fn port(platform: Platform, replicated: bool) -> PipeCfg {
        PipeCfg {
            platform,
            n_groups: 1,
            pre_replicas: if replicated { 2 } else { 1 },
            post_replicas: if replicated { 2 } else { 1 },
            threads_per_fpc: platform.threads_per_fpc,
            sched_fpcs: 1,
            ..Self::agilio_full()
        }
    }

    /// Intra-island hop latency (CLS ring).
    pub fn hop_intra(&self) -> Duration {
        self.platform.cycles(self.platform.mem.cls)
    }

    /// Cross-island hop latency (IMEM/EMEM work queue).
    pub fn hop_cross(&self) -> Duration {
        self.platform.cycles(self.platform.mem.imem)
    }

    /// Tracepoint overhead per stage transition, when enabled.
    pub fn trace_cost(&self) -> flextoe_nfp::Cost {
        if self.tracepoints {
            crate::costs::ext::TRACEPOINTS_PER_STAGE
        } else {
            flextoe_nfp::Cost::ZERO
        }
    }
}

pub type SharedCfg = Rc<PipeCfg>;

/// Generates the `on_msg`/`on_batch` pair shared by every stage that
/// processes pooled work items in place: clone the shared work-pool
/// handle, borrow the pool once per delivery (or once per whole burst),
/// and route both entry points through the stage's `deliver`.
macro_rules! pool_batched_delivery {
    () => {
        fn on_msg(&mut self, ctx: &mut ::flextoe_sim::Ctx<'_>, msg: ::flextoe_sim::Msg) {
            let pool = ::std::rc::Rc::clone(&self.pool);
            self.deliver(ctx, msg, &mut pool.borrow_mut());
        }

        fn on_batch(
            &mut self,
            ctx: &mut ::flextoe_sim::Ctx<'_>,
            burst: &mut ::flextoe_sim::MsgBurst,
        ) {
            // one pool borrow for the whole burst instead of one per event
            let pool = ::std::rc::Rc::clone(&self.pool);
            let mut pool = pool.borrow_mut();
            while let Some(msg) = burst.next(ctx) {
                self.deliver(ctx, msg, &mut pool);
            }
        }
    };
}
pub(crate) use pool_batched_delivery;

// ---- inter-stage messages ------------------------------------------------
//
// The hot messages (work tokens, NBI frames, transfer completions,
// FS updates, doorbells, descriptor credits) are typed `flextoe_sim::Msg`
// variants — allocation-free. Only the cold control-plane messages below
// travel as `Msg::Custom`.

// Re-exported so existing `flextoe_core::stages::{Doorbell, …}` imports
// keep working.
pub use flextoe_sim::{Doorbell, FreeDesc, FsUpdate};

/// A frame redirected to the control plane (non-data-path segments,
/// XDP_REDIRECT verdicts).
pub struct Redirect(pub flextoe_wire::Frame);

/// Control plane → scheduler messages (rate programming is MMIO, §3.4).
pub enum SchedCtl {
    Register {
        conn: u32,
        group: usize,
    },
    Unregister {
        conn: u32,
    },
    /// Pacing interval in ps/byte (0 = uncongested). The control plane
    /// precomputes this — the NFP cannot divide.
    SetRate {
        conn: u32,
        interval_ps_per_byte: u64,
    },
}

/// Context-queue stage → application node: MSI-X/eventfd wakeup.
pub struct AppNotify {
    pub ctx: u16,
}

/// DMA stage → context-queue stage: deliver a notification descriptor to
/// an application context queue (after its payload DMA completed).
pub struct NotifyJob {
    pub ctx: u16,
    pub desc: crate::hostmem::NicToApp,
}

/// Register an application context with the context-queue stage (done by
/// the control plane at application startup, §D).
pub struct RegisterCtx {
    pub ctx: u16,
    pub queue: crate::hostmem::SharedCtxQueue,
    /// Application node to wake via MSI-X/eventfd (None = pure polling).
    pub app: Option<flextoe_sim::NodeId>,
}

flextoe_sim::custom_msg!(Redirect, SchedCtl, AppNotify, NotifyJob, RegisterCtx);
