//! The flow-scheduler node (§3.4) wrapping the Carousel time wheel.
//!
//! Emits TX triggers into the pipeline, paced by the SCH FPCs' decision
//! throughput and by line-rate serialization of the estimated segment —
//! keeping the MAC egress queue shallow while staying work-conserving.

use flextoe_nfp::FpcTimer;
use flextoe_sim::{Ctx, Duration, Msg, Node, NodeId, Tick, Time, WorkToken};

use crate::costs;
use crate::sched::Carousel;
use crate::segment::{SharedWorkPool, TxWork, Work};
use crate::stages::{SchedCtl, SharedCfg};

pub struct SchedNode {
    cfg: SharedCfg,
    fpcs: Vec<FpcTimer>,
    rr: usize,
    pool: SharedWorkPool,
    pub carousel: Carousel,
    /// Flow group per connection (for steering TX work).
    groups: Vec<usize>,
    /// Routing.
    pub seqr: NodeId,
    /// A wake tick is already scheduled for this time.
    armed: Option<Time>,
    /// Global emission gate: next instant a trigger may be emitted
    /// (line-rate pacing shared by all flows).
    next_allowed: Time,
    pub triggers_emitted: u64,
}

impl SchedNode {
    pub fn new(cfg: SharedCfg, pool: SharedWorkPool, seqr: NodeId) -> SchedNode {
        let fpcs = (0..cfg.sched_fpcs.max(1))
            .map(|_| FpcTimer::new(cfg.platform.clock, cfg.threads_per_fpc))
            .collect();
        SchedNode {
            cfg,
            fpcs,
            rr: 0,
            pool,
            carousel: Carousel::with_defaults(),
            groups: Vec::new(),
            seqr,
            armed: None,
            next_allowed: Time::ZERO,
            triggers_emitted: 0,
        }
    }

    fn group_of(&self, conn: u32) -> usize {
        self.groups.get(conn as usize).copied().unwrap_or(0)
    }

    /// Emit at most one trigger, then re-arm.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        if now < self.next_allowed {
            self.arm(ctx, self.next_allowed);
            return;
        }
        if let Some(trigger) = self.carousel.next_trigger(now, self.cfg.mss) {
            // SCH decision cost on one of the scheduler FPCs
            let i = self.rr % self.fpcs.len();
            self.rr += 1;
            let done = self.fpcs[i].execute(now, costs::SCHED_DECISION + self.cfg.trace_cost());
            self.triggers_emitted += 1;
            let slot = self.pool.borrow_mut().alloc(Work::Tx(TxWork {
                conn: trigger.conn,
                group: self.group_of(trigger.conn),
                seg: None,
                spec: None,
                sendable_after: None,
                nbi_seq: None,
                arrival: now,
            }));
            let d = done.saturating_since(now) + self.cfg.hop_cross();
            ctx.send(
                self.seqr,
                d,
                WorkToken {
                    slot,
                    entry_seq: None,
                },
            );

            // pace the next decision: SCH throughput and line-rate of the
            // frame just scheduled (whichever is slower)
            let frame_bytes = trigger.bytes_est as usize + flextoe_wire::FRAME_OVERHEAD_TS;
            let wire = self.cfg.platform.mac_serialize(frame_bytes);
            let decision = done.saturating_since(now);
            self.next_allowed = now + wire.max(decision);
            self.arm(ctx, self.next_allowed);
        } else if let Some(at) = self.carousel.earliest_work(now) {
            self.arm(ctx, at.max(now + Duration::from_ns(200)));
        }
    }

    fn arm(&mut self, ctx: &mut Ctx<'_>, at: Time) {
        let at = at.max(ctx.now());
        if let Some(armed) = self.armed {
            if armed <= at && armed >= ctx.now() {
                return; // an earlier-or-equal tick is already pending
            }
        }
        self.armed = Some(at);
        ctx.send_at(ctx.self_id(), at, Tick);
    }
}

impl Node for SchedNode {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg {
            Msg::Tick => {
                self.armed = None;
                self.pump(ctx);
            }
            Msg::FsUpdate(up) => {
                self.carousel
                    .update_sendable(up.conn, up.sendable, ctx.now());
                self.pump(ctx);
            }
            msg => {
                let ctl = flextoe_sim::cast::<SchedCtl>(msg);
                match *ctl {
                    SchedCtl::Register { conn, group } => {
                        self.carousel.register(conn);
                        if self.groups.len() <= conn as usize {
                            self.groups.resize(conn as usize + 1, 0);
                        }
                        self.groups[conn as usize] = group;
                    }
                    SchedCtl::Unregister { conn } => self.carousel.unregister(conn),
                    SchedCtl::SetRate {
                        conn,
                        interval_ps_per_byte,
                    } => self.carousel.set_rate(conn, interval_ps_per_byte),
                }
                self.pump(ctx);
            }
        }
    }

    fn name(&self) -> String {
        "sched".to_string()
    }
}
