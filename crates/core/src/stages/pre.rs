//! The pre-processing stage (§3.1).
//!
//! RX (Figure 6): **Val** — validate the segment header and filter
//! non-data-path segments to the control plane; **Id** — resolve the
//! connection index via the active-connection database; **Sum** — build
//! the header summary; **Steer** — route to the flow-group's protocol
//! stage. XDP ingress modules run here, on the raw frame.
//!
//! TX (Figure 5): **Alloc** — allocate a segment in NIC memory; **Head** —
//! prepare Ethernet and IP headers from pre-processor connection state;
//! **Steer**.
//!
//! HC (Figure 4): **Steer** the fetched descriptor to its flow group.

use std::cell::RefCell;
use std::rc::Rc;

use flextoe_nfp::{ConnDb, FpcTimer, LookupCache, MacTx};
use flextoe_sim::{CounterHandle, Ctx, Msg, Node, NodeId, Stats, WorkToken};
use flextoe_wire::{Ecn, Frame, SegmentSpec, SegmentView, TcpOptions};

use crate::costs;
use crate::module::{ModuleChain, ModuleVerdict};
use crate::proto::RxSummary;
use crate::segment::{SharedConnTable, SharedSegPool, SharedWorkPool, Work, WorkPool};
use crate::stages::{Redirect, SharedCfg};

pub struct PreStage {
    cfg: SharedCfg,
    fpcs: Vec<FpcTimer>,
    rr: usize,
    table: SharedConnTable,
    pool: SharedWorkPool,
    seg_pool: SharedSegPool,
    db: Rc<RefCell<ConnDb>>,
    lookup: LookupCache,
    /// XDP / extension modules at the RX-ingress hook (§3.3).
    pub ingress: ModuleChain,
    /// Routing.
    pub seqr: NodeId,
    pub ctrl: NodeId,
    pub mac: NodeId,
    // counters
    pub redirected: u64,
    pub xdp_tx: u64,
    pub dropped: u64,
    pub malformed: u64,
    pub unknown_flow: u64,
    malformed_ctr: Option<CounterHandle>,
}

impl PreStage {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SharedCfg,
        table: SharedConnTable,
        pool: SharedWorkPool,
        seg_pool: SharedSegPool,
        db: Rc<RefCell<ConnDb>>,
        seqr: NodeId,
        ctrl: NodeId,
        mac: NodeId,
    ) -> PreStage {
        let fpcs = (0..cfg.pre_replicas.max(1))
            .map(|_| FpcTimer::new(cfg.platform.clock, cfg.threads_per_fpc))
            .collect();
        let lookup = LookupCache::new(&cfg.platform);
        PreStage {
            cfg,
            fpcs,
            rr: 0,
            table,
            pool,
            seg_pool,
            db,
            lookup,
            ingress: ModuleChain::new(),
            seqr,
            ctrl,
            mac,
            redirected: 0,
            xdp_tx: 0,
            dropped: 0,
            malformed: 0,
            unknown_flow: 0,
            malformed_ctr: None,
        }
    }

    fn exec(&mut self, ctx: &mut Ctx<'_>, cost: flextoe_nfp::Cost) -> flextoe_sim::Duration {
        let i = self.rr % self.fpcs.len();
        self.rr += 1;
        let done = self.fpcs[i].execute(ctx.now(), cost + self.cfg.trace_cost());
        done.saturating_since(ctx.now())
    }

    /// Tell the sequencer this entry left the pipeline early; the item is
    /// still in flight in the pool, so retire it here (recycling an RX
    /// frame buffer when one is attached).
    fn skip(
        &mut self,
        ctx: &mut Ctx<'_>,
        pool: &mut WorkPool,
        slot: u32,
        entry_seq: u64,
        delay: flextoe_sim::Duration,
    ) {
        if let Work::Rx(w) = pool.retire(slot) {
            // exit paths that forwarded the frame elsewhere left an empty
            // buffer behind (mem::take) — only real buffers recycle
            if !w.frame.is_empty() {
                self.seg_pool.borrow_mut().put(w.frame);
            }
        }
        ctx.send(self.seqr, delay, Msg::Skip(entry_seq));
    }

    fn process_rx(&mut self, ctx: &mut Ctx<'_>, pool: &mut WorkPool, slot: u32, entry_seq: u64) {
        let mut cost = costs::PRE_RX;
        let w = pool.rx_mut(slot);

        // --- XDP / extension ingress modules (raw frame) ---
        if !self.ingress.is_empty() {
            // modules may rewrite bytes arbitrarily: the carried metadata
            // is no longer trustworthy, fall back to the checked path
            w.meta = None;
            let (verdict, mcost) = self.ingress.run(ctx.now(), &mut w.frame);
            cost += mcost;
            match verdict {
                ModuleVerdict::Pass => {}
                ModuleVerdict::Drop => {
                    self.dropped += 1;
                    let d = self.exec(ctx, cost);
                    self.skip(ctx, pool, slot, entry_seq, d);
                    return;
                }
                ModuleVerdict::Tx => {
                    // send out the MAC, bypassing the TCP data-path
                    self.xdp_tx += 1;
                    // the harness re-checksums spliced frames
                    fixup_checksums(&mut w.frame);
                    let frame = std::mem::take(&mut w.frame);
                    let d = self.exec(ctx, cost + costs::CHECKSUM);
                    ctx.send(self.mac, d, MacTx(Frame::parsed(frame)));
                    self.skip(ctx, pool, slot, entry_seq, d);
                    return;
                }
                ModuleVerdict::Redirect => {
                    self.redirected += 1;
                    let frame = std::mem::take(&mut w.frame);
                    let d = self.exec(ctx, cost);
                    let pcie = self.cfg.platform.pcie.write_latency;
                    ctx.send(self.ctrl, d + pcie, Redirect(Frame::raw(frame)));
                    self.skip(ctx, pool, slot, entry_seq, d);
                    return;
                }
            }
        }

        // --- Val ---
        // Frames that still carry emitter metadata are byte-identical to
        // what a trusted in-sim stack emitted (corruption and module
        // rewrites clear the tag), so their checksums were computed by us
        // and re-verifying is pure wall-clock waste. Untagged frames take
        // the checked slow path.
        let verify = self.cfg.verify_checksums && w.meta.is_none();
        let view = match SegmentView::parse(&w.frame, verify) {
            Ok(v) => v,
            Err(_) => {
                self.malformed += 1;
                ctx.stats
                    .inc(self.malformed_ctr.expect("pre stage attached"));
                let d = self.exec(ctx, cost);
                self.skip(ctx, pool, slot, entry_seq, d);
                return;
            }
        };
        // Non-data-path segments (SYN/RST/…) go to the control plane.
        if !view.flags.is_datapath() {
            self.redirected += 1;
            let frame = std::mem::take(&mut w.frame);
            let d = self.exec(ctx, cost);
            let pcie = self.cfg.platform.pcie.write_latency;
            ctx.send(self.ctrl, d + pcie, Redirect(Frame::raw(frame)));
            self.skip(ctx, pool, slot, entry_seq, d);
            return;
        }

        // --- Id (active-connection database lookup, §4.1) ---
        let tuple = view.four_tuple();
        let (conn, lcost) = self.lookup.resolve(&tuple, &mut self.db.borrow_mut());
        cost += lcost;
        let Some(conn) = conn else {
            // segment for an unknown connection -> control plane
            self.unknown_flow += 1;
            let frame = std::mem::take(&mut w.frame);
            let d = self.exec(ctx, cost);
            let pcie = self.cfg.platform.pcie.write_latency;
            ctx.send(self.ctrl, d + pcie, Redirect(Frame::raw(frame)));
            self.skip(ctx, pool, slot, entry_seq, d);
            return;
        };

        // --- Sum ---
        w.summary = RxSummary {
            seq: view.seq,
            ack: view.ack,
            flags: view.flags,
            window: view.window,
            payload_len: view.payload_len as u32,
            tsval: view.tsval,
            tsecr: view.tsecr,
            has_ts: view.has_ts,
            ecn_ce: view.ecn.is_ce(),
        };
        w.conn = conn;
        w.group = self
            .table
            .borrow()
            .get(conn)
            .map(|e| e.pre.flow_group as usize)
            .unwrap_or(0)
            % self.cfg.n_groups;
        w.view = Some(view);

        // --- Steer: back to the sequencer for in-order protocol admission
        let d = self.exec(ctx, cost);
        ctx.send(
            self.seqr,
            d,
            WorkToken {
                slot,
                entry_seq: Some(entry_seq),
            },
        );
    }

    fn process_tx(&mut self, ctx: &mut Ctx<'_>, pool: &mut WorkPool, slot: u32, entry_seq: u64) {
        let w = pool.tx_mut(slot);
        // --- Alloc + Head: Ethernet/IP identity from pre-processor state
        let table = self.table.borrow();
        let Some(entry) = table.get(w.conn) else {
            drop(table);
            let d = self.exec(ctx, costs::PRE_TX);
            self.skip(ctx, pool, slot, entry_seq, d);
            return;
        };
        let nic = table.nic;
        w.spec = Some(SegmentSpec {
            src_mac: nic.mac,
            dst_mac: entry.pre.peer_mac,
            src_ip: nic.ip,
            dst_ip: entry.pre.peer_ip,
            src_port: entry.pre.local_port,
            dst_port: entry.pre.remote_port,
            // DCTCP: data segments are ECT-marked (§3.1.3, [1])
            ecn: Ecn::Ect0,
            options: TcpOptions::default(),
            ..Default::default()
        });
        w.group = entry.pre.flow_group as usize % self.cfg.n_groups;
        drop(table);
        let d = self.exec(ctx, costs::PRE_TX);
        ctx.send(
            self.seqr,
            d,
            WorkToken {
                slot,
                entry_seq: Some(entry_seq),
            },
        );
    }

    fn process_hc(&mut self, ctx: &mut Ctx<'_>, pool: &mut WorkPool, slot: u32, entry_seq: u64) {
        let w = pool.hc_mut(slot);
        w.group = self
            .table
            .borrow()
            .get(w.conn)
            .map(|e| e.pre.flow_group as usize)
            .unwrap_or(0)
            % self.cfg.n_groups;
        let d = self.exec(ctx, costs::PRE_HC);
        ctx.send(
            self.seqr,
            d,
            WorkToken {
                slot,
                entry_seq: Some(entry_seq),
            },
        );
    }
}

/// Recompute IP + TCP checksums after a module rewrote headers.
pub fn fixup_checksums(frame: &mut [u8]) {
    use flextoe_wire::{Ipv4Packet, TcpPacket, ETH_HDR_LEN, IPV4_HDR_LEN};
    if frame.len() < ETH_HDR_LEN + IPV4_HDR_LEN {
        return;
    }
    let (src, dst, total) = {
        let Ok(ip) = Ipv4Packet::new_checked(&frame[ETH_HDR_LEN..]) else {
            return;
        };
        (ip.src(), ip.dst(), ip.total_len() as usize)
    };
    {
        let mut ip = Ipv4Packet(&mut frame[ETH_HDR_LEN..]);
        ip.fill_checksum();
    }
    let tcp_range = ETH_HDR_LEN + IPV4_HDR_LEN..ETH_HDR_LEN + total;
    if frame.len() >= tcp_range.end {
        if let Ok(mut tcp) = TcpPacket::new_checked(&mut frame[tcp_range]) {
            tcp.fill_checksum(src, dst);
        }
    }
}

impl PreStage {
    /// One delivery against an already-borrowed work pool
    /// ([`Node::on_batch`] borrows it once per burst).
    fn deliver(&mut self, ctx: &mut Ctx<'_>, msg: Msg, pool: &mut WorkPool) {
        let Msg::Work(token) = msg else {
            panic!("pre-stage: unexpected message {}", msg.variant_name())
        };
        let entry_seq = token.entry_seq.expect("pre-stage items carry an entry seq");
        // In-place processing: the item stays resident in the pool slab —
        // only the cold exit paths move the 300-byte Work out.
        match pool.get_mut(token.slot) {
            Work::Rx(_) => self.process_rx(ctx, pool, token.slot, entry_seq),
            Work::Tx(_) => self.process_tx(ctx, pool, token.slot, entry_seq),
            Work::Hc(_) => self.process_hc(ctx, pool, token.slot, entry_seq),
        }
    }
}

impl Node for PreStage {
    crate::stages::pool_batched_delivery!();

    fn on_attach(&mut self, stats: &mut Stats) {
        self.malformed_ctr = Some(stats.counter("pre.malformed"));
    }

    fn name(&self) -> String {
        "pre-stage".to_string()
    }
}
