//! The context-queue stage (§3.1.1, §4 "Context queues").
//!
//! Polls doorbells, fetches HC descriptors from host context queues over
//! PCIe, and delivers notification descriptors back — "the limited pool
//! size flow-controls host interactions. If allocation fails, processing
//! stops and is retried later." Applications are woken via MSI-X
//! interrupts converted to eventfds by the driver (§4 "Driver") when a
//! queue transitions from empty.
//!
//! DMA continuations (descriptor fetches, notification writes) are kept
//! in a local slab indexed by the transfer token (free slots recycle, so
//! the steady state neither allocates nor hashes), keeping the engine
//! round trip allocation-free.

use std::collections::{HashMap, VecDeque};

use flextoe_nfp::{dma_req, DmaDir, FpcTimer};
use flextoe_sim::{try_cast, CounterHandle, Ctx, Duration, Msg, Node, NodeId, Stats, WorkToken};

use crate::costs;
use crate::hostmem::{AppToNic, NicToApp, SharedCtxQueue};
use crate::segment::{HcWork, SharedWorkPool, Work};
use crate::stages::{AppNotify, NotifyJob, RegisterCtx, SharedCfg};

/// Descriptor-buffer pool size (flow control of host interactions).
pub const DESC_POOL: usize = 256;
/// HC descriptors fetched per DMA batch ("HC requests may be batched").
pub const FETCH_BATCH: usize = 16;
/// Size of one descriptor on the wire.
const DESC_BYTES: usize = 32;

pub struct CtxRegistration {
    pub queue: SharedCtxQueue,
    /// Application node to wake on notification (None = pure polling).
    pub app: Option<NodeId>,
}

/// Continuation of an outstanding PCIe transfer.
enum Pending {
    Fetch { descs: Vec<AppToNic> },
    Notify { ctx: u16, desc: NicToApp },
}

pub struct CtxqStage {
    cfg: SharedCfg,
    fpc: FpcTimer,
    contexts: HashMap<u16, CtxRegistration>,
    work_pool: SharedWorkPool,
    pool: usize,
    /// Contexts with undrained to-NIC entries, waiting for pool space.
    dirty: VecDeque<u16>,
    /// Outstanding transfer continuations: a slab indexed by the transfer
    /// token, with freed slots recycled through a free list.
    pending: Vec<Option<Pending>>,
    pending_free: Vec<u32>,
    /// Recycled descriptor-batch buffers (fetch continuations return
    /// their emptied `Vec` here instead of the allocator).
    desc_bufs: Vec<Vec<AppToNic>>,
    /// Routing.
    pub engine: NodeId,
    pub seqr: NodeId,
    pub doorbells: u64,
    pub hc_fetched: u64,
    pub notifies_delivered: u64,
    pub interrupts: u64,
    notify_drops: Option<CounterHandle>,
}

impl CtxqStage {
    pub fn new(
        cfg: SharedCfg,
        work_pool: SharedWorkPool,
        engine: NodeId,
        seqr: NodeId,
    ) -> CtxqStage {
        CtxqStage {
            fpc: FpcTimer::new(cfg.platform.clock, cfg.platform.threads_per_fpc),
            cfg,
            contexts: HashMap::new(),
            work_pool,
            pool: DESC_POOL,
            dirty: VecDeque::new(),
            pending: Vec::new(),
            pending_free: Vec::new(),
            desc_bufs: Vec::new(),
            engine,
            seqr,
            doorbells: 0,
            hc_fetched: 0,
            notifies_delivered: 0,
            interrupts: 0,
            notify_drops: None,
        }
    }

    pub fn register(&mut self, ctx_id: u16, reg: CtxRegistration) {
        self.contexts.insert(ctx_id, reg);
    }

    fn exec(&mut self, ctx: &mut Ctx<'_>, cost: flextoe_nfp::Cost) -> Duration {
        let done = self.fpc.execute(ctx.now(), cost + self.cfg.trace_cost());
        done.saturating_since(ctx.now())
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>, bytes: usize, dir: DmaDir, cont: Pending, d: Duration) {
        let token = match self.pending_free.pop() {
            Some(slot) => {
                self.pending[slot as usize] = Some(cont);
                u64::from(slot)
            }
            None => {
                self.pending.push(Some(cont));
                (self.pending.len() - 1) as u64
            }
        };
        if self.cfg.platform.hw_dma {
            ctx.send_boxed(
                self.engine,
                d,
                Msg::Xfer(dma_req(bytes, dir, ctx.self_id(), token)),
            );
        } else {
            let to = ctx.self_id();
            ctx.wake(d, flextoe_sim::XferDone { token, to });
        }
    }

    /// Start fetching descriptors for `ctx_id` if pool space allows.
    fn pump_fetch(&mut self, ctx: &mut Ctx<'_>, ctx_id: u16) {
        let Some(reg) = self.contexts.get(&ctx_id) else {
            return;
        };
        if self.pool == 0 {
            if !self.dirty.contains(&ctx_id) {
                self.dirty.push_back(ctx_id);
            }
            return;
        }
        let mut batch = self.desc_bufs.pop().unwrap_or_default();
        {
            let mut q = reg.queue.borrow_mut();
            let n = FETCH_BATCH.min(self.pool);
            q.to_nic.pop_batch_into(n, &mut batch);
        }
        if batch.is_empty() {
            self.desc_bufs.push(batch);
            return;
        }
        self.pool -= batch.len();
        let bytes = batch.len() * DESC_BYTES;
        let d = self.exec(ctx, costs::CTXQ_STAGE);
        self.issue(
            ctx,
            bytes,
            DmaDir::HostToNic,
            Pending::Fetch { descs: batch },
            d,
        );
        // more waiting? re-check after this batch completes
        let more = self
            .contexts
            .get(&ctx_id)
            .map(|r| !r.queue.borrow().to_nic.is_empty())
            .unwrap_or(false);
        if more && !self.dirty.contains(&ctx_id) {
            self.dirty.push_back(ctx_id);
        }
    }

    fn resume_dirty(&mut self, ctx: &mut Ctx<'_>) {
        if self.pool == 0 {
            return;
        }
        if let Some(ctx_id) = self.dirty.pop_front() {
            self.pump_fetch(ctx, ctx_id);
        }
    }

    fn conn_of(desc: &AppToNic) -> u32 {
        match *desc {
            AppToNic::TxAppend { conn, .. }
            | AppToNic::RxConsumed { conn, .. }
            | AppToNic::Close { conn }
            | AppToNic::Retransmit { conn } => conn,
        }
    }

    /// Descriptors arrived in NIC memory: enter the pipeline.
    fn complete_fetch(&mut self, ctx: &mut Ctx<'_>, mut descs: Vec<AppToNic>) {
        self.hc_fetched += descs.len() as u64;
        let d = self.exec(ctx, costs::CTXQ_STAGE);
        for desc in descs.drain(..) {
            let slot = self.work_pool.borrow_mut().alloc(Work::Hc(HcWork {
                conn: Self::conn_of(&desc),
                desc,
                group: 0,
                sendable_after: None,
                window_update: false,
                win_ack: None,
                ack_frame: None,
                nbi_seq: None,
                arrival: ctx.now(),
            }));
            ctx.send(
                self.seqr,
                d + self.cfg.hop_cross(),
                WorkToken {
                    slot,
                    entry_seq: None,
                },
            );
        }
        self.desc_bufs.push(descs);
    }

    /// A notification descriptor reached the host context queue.
    fn complete_notify(&mut self, ctx: &mut Ctx<'_>, ctx_id: u16, desc: NicToApp) {
        let Some(reg) = self.contexts.get(&ctx_id) else {
            return;
        };
        let was_empty = reg.queue.borrow().to_app.is_empty();
        let accepted = reg.queue.borrow_mut().to_app.push(desc).is_ok();
        if !accepted {
            ctx.stats
                .inc(self.notify_drops.expect("ctxq stage attached"));
            return;
        }
        self.notifies_delivered += 1;
        // interrupt on empty->nonempty transition (MSI-X -> eventfd)
        if was_empty {
            if let Some(app) = reg.app {
                self.interrupts += 1;
                // driver interrupt handling + eventfd wake
                let irq_latency = self.cfg.platform.pcie.write_latency + Duration::from_us(2);
                ctx.send(app, irq_latency, AppNotify { ctx: ctx_id });
            }
        }
    }
}

impl CtxqStage {
    fn deliver(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg {
            Msg::Doorbell(db) => {
                self.doorbells += 1;
                self.pump_fetch(ctx, db.ctx);
            }
            Msg::FreeDesc => {
                self.pool = (self.pool + 1).min(DESC_POOL);
                self.resume_dirty(ctx);
            }
            Msg::XferDone(done) => {
                let cont = self
                    .pending
                    .get_mut(done.token as usize)
                    .and_then(Option::take);
                if cont.is_some() {
                    self.pending_free.push(done.token as u32);
                }
                match cont {
                    Some(Pending::Fetch { descs, .. }) => self.complete_fetch(ctx, descs),
                    Some(Pending::Notify { ctx: ctx_id, desc }) => {
                        self.complete_notify(ctx, ctx_id, desc)
                    }
                    None => {}
                }
            }
            msg => {
                let msg = match try_cast::<RegisterCtx>(msg) {
                    Ok(reg) => {
                        self.register(
                            reg.ctx,
                            CtxRegistration {
                                queue: reg.queue,
                                app: reg.app,
                            },
                        );
                        return;
                    }
                    Err(m) => m,
                };
                let job = flextoe_sim::cast::<NotifyJob>(msg);
                // DMA the notification descriptor into the host queue
                let d = self.exec(ctx, costs::CTXQ_STAGE);
                self.issue(
                    ctx,
                    DESC_BYTES,
                    DmaDir::NicToHost,
                    Pending::Notify {
                        ctx: job.ctx,
                        desc: job.desc,
                    },
                    d,
                );
            }
        }
    }
}

impl Node for CtxqStage {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        self.deliver(ctx, msg);
    }

    // Doorbell/credit/completion trains coalesce through the default
    // `on_batch` loop: per-event state here is already slab-indexed and
    // free-listed, so there is nothing left to hoist per burst.

    fn on_attach(&mut self, stats: &mut Stats) {
        self.notify_drops = Some(stats.counter("ctxq.notify_drops"));
    }

    fn name(&self) -> String {
        "ctxq-stage".to_string()
    }
}
