//! The protocol stage — the pipeline's only hazard (§3.1).
//!
//! One node per flow group; it "executes data-path code that must
//! atomically modify protocol state" and "cannot execute in parallel with
//! other stages" *for the same connection*: the FPC's eight hardware
//! threads still interleave different connections, but items of one
//! connection serialize (modeled with a per-connection busy time).
//!
//! The connection-state cache hierarchy of §4.1 (local CAM → CLS →
//! EMEM-SRAM → EMEM-DRAM) charges the state-fetch cost — the mechanism
//! behind Fig. 13's connection-scalability curve.

use flextoe_nfp::{ConnStateCache, FpcTimer};
use flextoe_sim::{CounterHandle, Ctx, Msg, Node, NodeId, Stats, Time, WorkToken};

use crate::costs;
use crate::hostmem::AppToNic;
use crate::proto;
use crate::segment::{SharedConnTable, SharedSegPool, SharedWorkPool, Work, WorkPool};
use crate::stages::SharedCfg;

pub struct ProtoStage {
    cfg: SharedCfg,
    pub group: usize,
    fpc: FpcTimer,
    cache: ConnStateCache,
    /// Per-connection atomic-section serialization, indexed by connection
    /// id (dense per NIC — a vector beats hashing on the hottest path).
    conn_busy: Vec<Time>,
    table: SharedConnTable,
    pool: SharedWorkPool,
    seg_pool: SharedSegPool,
    /// Monotone per-group NBI sequence (frames emitted in protocol order).
    next_nbi: u64,
    /// Routing: this group's post-processing stage.
    pub post: NodeId,
    pub rx_segments: u64,
    pub tx_segments: u64,
    pub hc_events: u64,
    pub ooo_segments: u64,
    pub fast_retx: u64,
    pub empty_tx: u64,
    counters: Option<ProtoCounters>,
}

#[derive(Clone, Copy)]
struct ProtoCounters {
    ooo: CounterHandle,
    fast_retx: CounterHandle,
    rto_retx: CounterHandle,
}

impl ProtoStage {
    pub fn new(
        cfg: SharedCfg,
        group: usize,
        table: SharedConnTable,
        pool: SharedWorkPool,
        seg_pool: SharedSegPool,
        post: NodeId,
    ) -> ProtoStage {
        ProtoStage {
            fpc: FpcTimer::new(cfg.platform.clock, cfg.threads_per_fpc),
            cache: ConnStateCache::with_defaults(&cfg.platform),
            cfg,
            group,
            conn_busy: Vec::new(),
            table,
            pool,
            seg_pool,
            next_nbi: 0,
            post,
            rx_segments: 0,
            tx_segments: 0,
            hc_events: 0,
            ooo_segments: 0,
            fast_retx: 0,
            empty_tx: 0,
            counters: None,
        }
    }

    pub fn state_cache(&self) -> &ConnStateCache {
        &self.cache
    }

    fn exec(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: u32,
        logic_cost: flextoe_nfp::Cost,
    ) -> flextoe_sim::Duration {
        let (fetch, _) = self.cache.access(conn);
        let busy = self
            .conn_busy
            .get(conn as usize)
            .copied()
            .unwrap_or(Time::ZERO);
        let arrival = ctx.now().max(busy);
        let done = self
            .fpc
            .execute(arrival, logic_cost + fetch + self.cfg.trace_cost());
        if self.conn_busy.len() <= conn as usize {
            self.conn_busy.resize(conn as usize + 1, Time::ZERO);
        }
        self.conn_busy[conn as usize] = done;
        done.saturating_since(ctx.now())
    }

    /// Retire an in-flight item that dies in this stage, recycling its
    /// buffers (the cold path; live items are mutated in place).
    fn retire(&mut self, pool: &mut WorkPool, slot: u32) {
        if let Work::Rx(w) = pool.retire(slot) {
            self.seg_pool.borrow_mut().put(w.frame);
        }
    }
}

impl ProtoStage {
    /// One delivery against an already-borrowed work pool
    /// ([`Node::on_batch`] borrows it once per burst).
    fn deliver(&mut self, ctx: &mut Ctx<'_>, msg: Msg, pool: &mut WorkPool) {
        let Msg::Work(token) = msg else {
            panic!("proto-stage: unexpected message {}", msg.variant_name())
        };
        let slot = token.slot;
        // In-place processing: the item stays resident in the pool slab —
        // only the cold death paths move the 300-byte Work out.
        match pool.get_mut(slot) {
            Work::Rx(_) => self.rx(ctx, pool, slot),
            Work::Tx(_) => self.tx(ctx, pool, slot),
            Work::Hc(_) => self.hc(ctx, pool, slot),
        }
    }

    fn rx(&mut self, ctx: &mut Ctx<'_>, pool: &mut WorkPool, slot: u32) {
        self.rx_segments += 1;
        let w = pool.rx_mut(slot);
        let logic = if w.summary.payload_len == 0 && !w.summary.flags.fin() {
            costs::PROTO_RX_ACK
        } else {
            costs::PROTO_RX
        };
        let conn = w.conn;
        let d = self.exec(ctx, conn, logic);
        let mut table = self.table.borrow_mut();
        let Some(entry) = table.get_mut(conn) else {
            drop(table);
            self.retire(pool, slot); // torn down while in flight
            return;
        };
        let out = proto::rx_segment(&mut entry.proto, &w.summary);
        drop(table);
        let counters = self.counters.expect("proto stage attached to a sim");
        if out.out_of_order {
            self.ooo_segments += 1;
            ctx.stats.inc(counters.ooo);
        }
        if out.fast_retransmit {
            self.fast_retx += 1;
            ctx.stats.inc(counters.fast_retx);
        }
        if out.send_ack {
            w.nbi_seq = Some(self.next_nbi);
            self.next_nbi += 1;
        }
        w.outcome = Some(out);
        ctx.send(
            self.post,
            d + self.cfg.hop_intra(),
            WorkToken {
                slot,
                entry_seq: None,
            },
        );
        // A fast retransmit re-opens sendable bytes immediately:
        // the post stage forwards the FS update from the outcome.
    }

    fn tx(&mut self, ctx: &mut Ctx<'_>, pool: &mut WorkPool, slot: u32) {
        let w = pool.tx_mut(slot);
        let conn = w.conn;
        let d = self.exec(ctx, conn, costs::PROTO_TX);
        let mut table = self.table.borrow_mut();
        let Some(entry) = table.get_mut(conn) else {
            drop(table);
            self.retire(pool, slot);
            return;
        };
        let seg = proto::tx_next(&mut entry.proto, self.cfg.mss);
        let sendable = entry.proto.sendable();
        drop(table);
        match seg {
            Some(seg) => {
                self.tx_segments += 1;
                w.seg = Some(seg);
                w.sendable_after = Some(sendable);
                w.nbi_seq = Some(self.next_nbi);
                self.next_nbi += 1;
                ctx.send(
                    self.post,
                    d + self.cfg.hop_intra(),
                    WorkToken {
                        slot,
                        entry_seq: None,
                    },
                );
            }
            None => {
                // scheduler raced an ACK/window change; item dies
                self.empty_tx += 1;
                self.retire(pool, slot);
            }
        }
    }

    fn hc(&mut self, ctx: &mut Ctx<'_>, pool: &mut WorkPool, slot: u32) {
        self.hc_events += 1;
        let w = pool.hc_mut(slot);
        let conn = w.conn;
        let d = self.exec(ctx, conn, costs::PROTO_HC);
        let mut table = self.table.borrow_mut();
        let Some(entry) = table.get_mut(conn) else {
            drop(table);
            self.retire(pool, slot);
            return;
        };
        match w.desc {
            AppToNic::TxAppend { len, .. } => {
                proto::hc_tx_append(&mut entry.proto, len);
            }
            AppToNic::RxConsumed { len, .. } => {
                w.window_update = proto::hc_rx_consumed(&mut entry.proto, len, self.cfg.mss);
                if w.window_update {
                    w.win_ack = Some(crate::proto::TxSeg {
                        seq: entry.proto.seq,
                        ack: entry.proto.ack,
                        buf_pos: 0,
                        len: 0,
                        fin: false,
                        window: proto::advertised_window(&entry.proto),
                        ts_echo: entry.proto.next_ts,
                    });
                }
            }
            AppToNic::Close { .. } => {
                proto::hc_close(&mut entry.proto);
            }
            AppToNic::Retransmit { .. } => {
                proto::hc_retransmit(&mut entry.proto);
                ctx.stats
                    .inc(self.counters.expect("proto stage attached").rto_retx);
            }
        }
        w.sendable_after = Some(entry.proto.sendable_with_fin());
        drop(table);
        if w.win_ack.is_some() {
            w.nbi_seq = Some(self.next_nbi);
            self.next_nbi += 1;
        }
        ctx.send(
            self.post,
            d + self.cfg.hop_intra(),
            WorkToken {
                slot,
                entry_seq: None,
            },
        );
    }
}

impl Node for ProtoStage {
    crate::stages::pool_batched_delivery!();

    fn on_attach(&mut self, stats: &mut Stats) {
        self.counters = Some(ProtoCounters {
            ooo: stats.counter("proto.ooo"),
            fast_retx: stats.counter("proto.fast_retx"),
            rto_retx: stats.counter("proto.rto_retx"),
        });
    }

    fn name(&self) -> String {
        format!("proto-stage[{}]", self.group)
    }
}
